// Persistence: build a cluster store on the file-backed storage backend,
// save it to a single snapshot file, and reopen it without a rebuild — the
// reopened store reports the same storage statistics and answers the same
// queries with the same result sets.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	sc "spatialcluster"
)

func main() {
	dir, err := os.MkdirTemp("", "spatialcluster-persistence-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	// A cluster store whose pages live in a real file. FsyncOnFlush turns
	// every Flush into a durability barrier; the modelled I/O costs are
	// identical to the in-memory backend either way.
	s := sc.NewClusterStore(sc.StoreConfig{
		BufferPages:  128,
		SmaxBytes:    16 * 1024,
		Backend:      sc.BackendFile,
		Path:         filepath.Join(dir, "pages.db"),
		FsyncOnFlush: true,
	})

	// A small grid of streets.
	for i := 1; i <= 300; i++ {
		x, y := float64(i%20)/20, float64(i/20)/16
		obj := sc.NewObject(sc.ObjectID(i), sc.NewPolyline([]sc.Point{
			{X: x, Y: y}, {X: x + 0.01, Y: y + 0.02},
		}), 600)
		s.Insert(obj, obj.Bounds())
	}
	s.Flush()

	w := sc.R(0.2, 0.2, 0.7, 0.7)
	before := s.WindowQuery(w, sc.TechComplete)
	stats := s.Stats()
	fmt.Printf("built:    %d objects on %d pages, window answers %d, measured I/O %.3f s\n",
		stats.Objects, stats.OccupiedPages, len(before.IDs), sc.MeasuredIO(s).IOSeconds())

	// Save the whole store — page image plus all in-memory state — to one
	// snapshot file.
	snap := filepath.Join(dir, "store.sdb")
	if err := sc.Save(s, snap); err != nil {
		panic(err)
	}
	if err := sc.CloseStore(s); err != nil {
		panic(err)
	}
	fi, _ := os.Stat(snap)
	fmt.Printf("saved:    %s (%d bytes)\n", filepath.Base(snap), fi.Size())

	// Reopen without a rebuild. The organization kind, cluster config and
	// disk parameters come from the snapshot; here the pages are placed on
	// the in-memory backend.
	s2, err := sc.Open(snap, sc.StoreConfig{BufferPages: 128})
	if err != nil {
		panic(err)
	}
	defer sc.CloseStore(s2)

	after := s2.WindowQuery(w, sc.TechComplete)
	stats2 := s2.Stats()
	fmt.Printf("reopened: %d objects on %d pages, window answers %d\n",
		stats2.Objects, stats2.OccupiedPages, len(after.IDs))

	if stats2 != stats {
		panic("reopened store reports different storage statistics")
	}
	if len(after.IDs) != len(before.IDs) {
		panic("reopened store answers differently")
	}

	// The reopened store is fully mutable: inserts, deletes and queries
	// continue where the saved store left off.
	obj := sc.NewObject(10001, sc.NewPolyline([]sc.Point{
		{X: 0.45, Y: 0.45}, {X: 0.46, Y: 0.46},
	}), 600)
	s2.Insert(obj, obj.Bounds())
	s2.Flush()
	fmt.Printf("mutated:  %d objects after one more insert\n", s2.Stats().Objects)
}
