// Server: serve a cluster store over the HTTP/JSON API and drive it as a
// client — queries, mutations, a live snapshot, metrics, and a graceful
// shutdown. The same API is what cmd/sdbd exposes on a real port and what
// curl speaks; here the server runs in-process on a loopback listener.
package main

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	sc "spatialcluster"
	"spatialcluster/internal/geom"
	"spatialcluster/internal/server"
)

func main() {
	dir, err := os.MkdirTemp("", "spatialcluster-server-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	// A cluster store with a small grid of streets.
	s := sc.NewClusterStore(sc.StoreConfig{BufferPages: 128, SmaxBytes: 16 * 1024})
	for i := 1; i <= 300; i++ {
		x, y := float64(i%20)/20, float64(i/20)/16
		obj := sc.NewObject(sc.ObjectID(i), sc.NewPolyline([]sc.Point{
			{X: x, Y: y}, {X: x + 0.01, Y: y + 0.02},
		}), 600)
		s.Insert(obj, obj.Bounds())
	}
	s.Flush()

	// Serve it: micro-batched execution, bounded admission, and a snapshot
	// on shutdown.
	srv := server.New(s, server.Config{
		Workers:      4,
		MaxInFlight:  64,
		SnapshotPath: filepath.Join(dir, "exit.sdb"),
	})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	client := server.NewClient(hs.URL, 8)
	fmt.Printf("serving %s at %s\n", s.Name(), hs.URL)

	// Queries over HTTP.
	win, err := client.Window(geom.R(0.2, 0.2, 0.6, 0.6), "")
	check(err)
	fmt.Printf("window [0.2,0.2 - 0.6,0.6]: %d answers of %d candidates\n",
		len(win.IDs), win.Candidates)
	knn, err := client.KNN(geom.Pt(0.5, 0.5), 5)
	check(err)
	fmt.Printf("5-NN of (0.5,0.5): ids %v, nearest %.4f, furthest %.4f\n",
		knn.IDs, knn.Dists[0], knn.Dists[len(knn.Dists)-1])

	// A mutation round trip: insert a fresh object and find it.
	obj := sc.NewObject(9001, sc.NewPolyline([]sc.Point{
		{X: 0.401, Y: 0.401}, {X: 0.402, Y: 0.402},
	}), 400)
	check(client.Insert(obj, obj.Bounds()))
	pq, err := client.Point(geom.Pt(0.4015, 0.4015))
	check(err)
	fmt.Printf("point query after insert: %d answers\n", len(pq.IDs))

	// A live snapshot, then delete the object, then load the snapshot back.
	snap := filepath.Join(dir, "live.sdb")
	sv, err := client.Save(snap)
	check(err)
	fmt.Printf("live snapshot: %d bytes\n", sv.Bytes)
	existed, err := client.Delete(9001)
	check(err)
	fmt.Printf("deleted 9001 (existed=%v)\n", existed)
	st, err := client.Load(snap)
	check(err)
	fmt.Printf("loaded snapshot back: %d objects served\n", st.Objects)

	// Metrics: batch shape, buffer behaviour, modelled I/O.
	m, err := client.Metrics()
	check(err)
	fmt.Printf("metrics: %d batches over %d queries, buffer hit ratio %.2f, modelled I/O %.2f s\n",
		m.Batches, m.BatchedJobs, m.BufferHitRatio, m.ModelIOSec)

	// Graceful shutdown: drain, flush, snapshot.
	hs.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	check(srv.Shutdown(ctx))
	fi, err := os.Stat(filepath.Join(dir, "exit.sdb"))
	check(err)
	fmt.Printf("shutdown snapshot: %d bytes\n", fi.Size())
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
