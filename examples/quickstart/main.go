// Quickstart: build a small cluster-organized spatial store, insert a few
// objects, and run point and window queries with different read techniques.
package main

import (
	"fmt"

	sc "spatialcluster"
)

func main() {
	// A cluster store with 80 KB cluster units (series A of the paper).
	s := sc.NewClusterStore(sc.StoreConfig{
		BufferPages: 256,
		SmaxBytes:   80 * 1024,
	})

	// A few streets around a city center, each padded to ~600 bytes (the
	// paper's average object size for series A-1).
	streets := []*sc.Polyline{
		sc.NewPolyline([]sc.Point{sc.Pt(0.10, 0.10), sc.Pt(0.12, 0.10), sc.Pt(0.12, 0.13)}),
		sc.NewPolyline([]sc.Point{sc.Pt(0.11, 0.09), sc.Pt(0.11, 0.14)}),
		sc.NewPolyline([]sc.Point{sc.Pt(0.50, 0.52), sc.Pt(0.55, 0.52)}),
	}
	for i, st := range streets {
		obj := sc.NewObject(sc.ObjectID(i+1), st, 550)
		s.Insert(obj, obj.Bounds())
	}
	s.Flush()

	params := sc.DefaultDiskParams()

	// A window query around the first city: the whole cluster unit arrives
	// with a single read request. The buffer is cleared first so the query
	// runs cold and the modelled I/O cost is visible.
	s.Env().Buf.Clear()
	res := s.WindowQuery(sc.R(0.05, 0.05, 0.2, 0.2), sc.TechComplete)
	fmt.Printf("window query: %d answers, I/O %.1f ms (%v)\n",
		len(res.IDs), res.Cost.TimeMS(params), res.Cost)

	// A point query reads only the pages of the qualifying object.
	s.Env().Buf.Clear()
	res = s.PointQuery(sc.Pt(0.11, 0.10))
	fmt.Printf("point query:  %d answers, I/O %.1f ms\n",
		len(res.IDs), res.Cost.TimeMS(params))

	// Storage footprint.
	st := s.Stats()
	fmt.Printf("storage: %d objects on %d pages (%d directory, %d data, %d cluster-unit)\n",
		st.Objects, st.OccupiedPages, st.DirPages, st.LeafPages, st.ObjectPages)
}
