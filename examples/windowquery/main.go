// Windowquery compares the three organization models of the paper on a
// window-query workload over a synthetic street map — a miniature of the
// paper's Figure 8. The cluster organization's advantage grows with the
// window size because one read request fetches a whole cluster unit of
// spatially adjacent objects.
package main

import (
	"fmt"

	sc "spatialcluster"
)

func main() {
	// Map 1 (streets), series A object sizes, 1/64 of the paper's scale.
	ds := sc.GenerateMap(sc.MapSpec{Map: sc.Map1, Series: sc.SeriesA, Scale: 64})
	fmt.Printf("dataset %s: %d objects, avg %.0f bytes\n\n",
		ds.Spec.Name(), len(ds.Objects), ds.MeasuredAvgSize())

	build := func(name string, org sc.Organization) sc.Organization {
		for i, o := range ds.Objects {
			org.Insert(o, ds.MBRs[i])
		}
		org.Flush()
		return org
	}
	orgs := []sc.Organization{
		build("secondary", sc.NewSecondaryStore(sc.StoreConfig{BufferPages: 64})),
		build("primary", sc.NewPrimaryStore(sc.StoreConfig{BufferPages: 64})),
		build("cluster", sc.NewClusterStore(sc.StoreConfig{
			BufferPages: 64, SmaxBytes: ds.Spec.SmaxBytes(),
		})),
	}

	params := sc.DefaultDiskParams()
	fmt.Printf("%-12s", "window area")
	for _, org := range orgs {
		fmt.Printf("  %12s", org.Name())
	}
	fmt.Println("   (avg I/O ms per query)")

	for _, area := range []float64{0.0001, 0.001, 0.01, 0.1} {
		windows := ds.Windows(area, 100, 42)
		fmt.Printf("%-12s", fmt.Sprintf("%g%%", area*100))
		for _, org := range orgs {
			var total float64
			for _, w := range windows {
				org.Env().Buf.Clear() // cold queries, as in the paper
				res := org.WindowQuery(w, sc.TechComplete)
				total += res.Cost.TimeMS(params)
			}
			fmt.Printf("  %12.1f", total/float64(len(windows)))
		}
		fmt.Println()
	}
}
