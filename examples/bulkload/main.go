// Bulkload contrasts the two ways of achieving global clustering: the
// paper's dynamic cluster organization (insertions intermixed with queries,
// no reorganization) and static Hilbert packing (sort once, write cluster
// units sequentially). Packing constructs several times cheaper; the dynamic
// organization wins when the database must absorb updates continuously —
// which is exactly the paper's motivation.
package main

import (
	"fmt"

	sc "spatialcluster"
)

func main() {
	ds := sc.GenerateMap(sc.MapSpec{Map: sc.Map1, Series: sc.SeriesB, Scale: 64})
	fmt.Printf("dataset %s: %d objects\n\n", ds.Spec.Name(), len(ds.Objects))
	params := sc.DefaultDiskParams()

	// Dynamic construction: unsorted inserts through the modified R*-tree.
	dynamic := sc.NewClusterStore(sc.StoreConfig{BufferPages: 64, SmaxBytes: ds.Spec.SmaxBytes()})
	for i, o := range ds.Objects {
		dynamic.Insert(o, ds.MBRs[i])
	}
	dynamic.Flush()
	fmt.Printf("dynamic insertion:   %7.1f s modelled I/O, %5d pages\n",
		dynamic.Env().Disk.Cost().TimeSec(params), dynamic.Stats().OccupiedPages)

	// Static Hilbert packing: sort, group, write sequentially.
	packed := sc.NewClusterStore(sc.StoreConfig{BufferPages: 64, SmaxBytes: ds.Spec.SmaxBytes()})
	sc.BulkLoadHilbert(packed, ds.Objects, ds.MBRs, 0.9)
	fmt.Printf("Hilbert bulk load:   %7.1f s modelled I/O, %5d pages\n\n",
		packed.Env().Disk.Cost().TimeSec(params), packed.Stats().OccupiedPages)

	// Both answer queries identically. The packed store occupies fewer
	// pages but fills its units denser (0.9 vs the split-driven ~0.66), so
	// a complete-unit read moves more bytes per qualifying unit — query
	// costs end up close, slightly favouring the dynamic organization at
	// small windows.
	for _, area := range []float64{0.001, 0.01} {
		ws := ds.Windows(area, 100, 11)
		var dynMS, packMS float64
		var answers int
		for _, w := range ws {
			dynamic.Env().Buf.Clear()
			packed.Env().Buf.Clear()
			rd := dynamic.WindowQuery(w, sc.TechComplete)
			rp := packed.WindowQuery(w, sc.TechComplete)
			if len(rd.IDs) != len(rp.IDs) {
				panic("stores disagree")
			}
			answers += len(rd.IDs)
			dynMS += rd.Cost.TimeMS(params)
			packMS += rp.Cost.TimeMS(params)
		}
		fmt.Printf("windows %g%%: dynamic %.0f ms, packed %.0f ms (%d answers, identical)\n",
			area*100, dynMS, packMS, answers)
	}
}
