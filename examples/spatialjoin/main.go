// Spatialjoin runs the complete intersection join of the paper's section 6
// on miniature versions of maps C-1 and C-2, comparing the secondary and the
// cluster organization — a small-scale Figure 17. The join proceeds in three
// steps: MBR join on the R*-trees, object transfer through an LRU buffer,
// and the exact geometry test (0.75 ms per candidate pair).
package main

import (
	"fmt"

	sc "spatialcluster"
)

func main() {
	const scale = 64
	specR := sc.MapSpec{Map: sc.Map1, Series: sc.SeriesC, Scale: scale, MBRScale: 4}
	specS := sc.MapSpec{Map: sc.Map2, Series: sc.SeriesC, Scale: scale, MBRScale: 4}
	dsR, dsS := sc.GenerateMap(specR), sc.GenerateMap(specS)
	fmt.Printf("join %s (%d objects) with %s (%d objects), enlarged MBRs (version b)\n\n",
		dsR.Spec.Name(), len(dsR.Objects), dsS.Spec.Name(), len(dsS.Objects))

	params := sc.DefaultDiskParams()
	for _, kind := range []string{"secondary", "cluster"} {
		var mk func() sc.Organization
		switch kind {
		case "secondary":
			mk = func() sc.Organization { return sc.NewSecondaryStore(sc.StoreConfig{BufferPages: 128}) }
		case "cluster":
			mk = func() sc.Organization {
				return sc.NewClusterStore(sc.StoreConfig{
					BufferPages: 128, SmaxBytes: specR.SmaxBytes(),
				})
			}
		}
		build := func(ds *sc.Dataset) sc.Organization {
			org := mk()
			for i, o := range ds.Objects {
				org.Insert(o, ds.MBRs[i])
			}
			org.Flush()
			return org
		}
		orgR, orgS := build(dsR), build(dsS)

		res := sc.RunJoin(orgR, orgS, sc.JoinConfig{
			BufferPages: 400,
			Technique:   sc.TechComplete,
		})
		fmt.Printf("%-10s  MBR-join %6.1f s | transfer %6.1f s | exact test %5.1f s | total %6.1f s\n",
			kind,
			res.MBRJoinCost.TimeMS(params)/1000,
			res.TransferCost.TimeMS(params)/1000,
			res.ExactTestMS/1000,
			res.TotalTimeMS(params)/1000)
		fmt.Printf("%-10s  %d candidate pairs, %d intersecting pairs\n\n",
			"", res.MBRPairs, res.ResultPairs)
	}
}
