// Buddysystem demonstrates the storage-utilization effect of the restricted
// buddy system (paper section 5.3.1, Figure 7): fixed Smax cluster units
// waste the space of underfilled units, while three buddy sizes
// {Smax, Smax/2, Smax/4} bring the cluster organization close to the primary
// organization's footprint.
package main

import (
	"fmt"

	sc "spatialcluster"
)

func main() {
	ds := sc.GenerateMap(sc.MapSpec{Map: sc.Map1, Series: sc.SeriesB, Scale: 64})
	fmt.Printf("dataset %s: %d objects, %.1f MB of exact geometry\n\n",
		ds.Spec.Name(), len(ds.Objects), float64(ds.TotalBytes())/(1<<20))

	variants := []struct {
		name string
		org  sc.Organization
	}{
		{"primary (reference)", sc.NewPrimaryStore(sc.StoreConfig{BufferPages: 128})},
		{"cluster, fixed Smax units", sc.NewClusterStore(sc.StoreConfig{
			BufferPages: 128, SmaxBytes: ds.Spec.SmaxBytes(),
		})},
		{"cluster, restricted buddy (3 sizes)", sc.NewClusterStore(sc.StoreConfig{
			BufferPages: 128, SmaxBytes: ds.Spec.SmaxBytes(), BuddySizes: 3,
		})},
	}

	minBytes := float64(ds.TotalBytes()) / float64(sc.PageSize)
	for _, v := range variants {
		for i, o := range ds.Objects {
			v.org.Insert(o, ds.MBRs[i])
		}
		v.org.Flush()
		st := v.org.Stats()
		fmt.Printf("%-36s %6d pages occupied (%.0f%% of the data's minimum)\n",
			v.name, st.OccupiedPages, float64(st.OccupiedPages)/minBytes*100)
	}
}
