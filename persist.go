package spatialcluster

import (
	"fmt"

	"spatialcluster/internal/snapshot"
	"spatialcluster/internal/store"
)

// The snapshot file format, version 2:
//
//	section 1: magic          "SPCLSNAP\x02"        (9 bytes)
//	section 2: payload length uint64, little-endian (8 bytes)
//	section 3: payload CRC-32 uint32, little-endian (4 bytes, IEEE)
//	section 4: payload        gob-encoded store.Image
//
// The length and checksum exist so that a truncated or corrupted file is
// detected at every section boundary with a descriptive error — never a
// panic, and never a silently wrong store. Version 1 files (no length or
// checksum) are rejected by the magic comparison. The format lives in
// internal/snapshot (on the shared internal/framing discipline the
// write-ahead log reuses); this file wraps it into the public API.

// saveMagic identifies a spatialcluster snapshot file and its format
// version.
const saveMagic = snapshot.Magic

// saveHeaderSize is the fixed prefix before the payload: magic + length +
// CRC-32.
const saveHeaderSize = snapshot.HeaderSize

// Save serializes a built organization to a single snapshot file at path:
// the disk's page image plus all in-memory state (allocator free list,
// R*-tree shape, object maps, cluster units, open tail pages). The store is
// flushed first; it remains usable afterwards. A saved store reopens with
// Open without a rebuild, on any backend, with identical StorageStats and
// identical window/point/k-NN answer sets. A WAL-attached store (see
// StoreConfig.WALPath) saves its underlying organization — the snapshot is
// self-contained and does not need the log to reopen.
//
// Saving the same store twice produces byte-identical files: all map-backed
// state is sorted during capture.
func Save(org Organization, path string) error {
	img, err := store.Snapshot(org)
	if err != nil {
		return fmt.Errorf("spatialcluster: Save: %w", err)
	}
	if err := snapshot.Write(path, img); err != nil {
		return fmt.Errorf("spatialcluster: Save: %w", err)
	}
	return nil
}

// Open rebuilds an organization from a snapshot file written by Save,
// without re-running construction and without charging modelled I/O. The
// organization kind, cluster configuration and disk timing parameters come
// from the snapshot; cfg supplies the runtime environment — buffer size,
// parallelism, and the storage backend the restored pages are placed on
// (BackendMem by default, or BackendFile with a fresh Path). cfg.DiskParams,
// cfg.SmaxBytes and cfg.BuddySizes are ignored: those are properties of the
// saved store. cfg.WALPath is also ignored — use RecoverStore to reopen a
// WAL directory, which replays mutations past its snapshot.
//
// A truncated, corrupted or foreign file yields a descriptive error: the
// magic, the length field and a CRC-32 of the payload are verified before
// anything is decoded.
func Open(path string, cfg StoreConfig) (Organization, error) {
	img, err := snapshot.Read(path)
	if err != nil {
		return nil, fmt.Errorf("spatialcluster: Open: %w", err)
	}
	env, err := cfg.envWithParams(img.Params)
	if err != nil {
		return nil, err
	}
	org, err := store.Restore(img, env)
	if err != nil {
		env.Close()
		return nil, fmt.Errorf("spatialcluster: Open %s: %w", path, err)
	}
	return org, nil
}
