package spatialcluster

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"spatialcluster/internal/store"
)

// saveMagic identifies a spatialcluster snapshot file and its format
// version. Bump the trailing byte on incompatible Image changes.
const saveMagic = "SPCLSNAP\x01"

// Save serializes a built organization to a single snapshot file at path:
// the disk's page image plus all in-memory state (allocator free list,
// R*-tree shape, object maps, cluster units, open tail pages). The store is
// flushed first; it remains usable afterwards. A saved store reopens with
// Open without a rebuild, on any backend, with identical StorageStats and
// identical window/point/k-NN answer sets.
//
// Saving the same store twice produces byte-identical files: all map-backed
// state is sorted during capture.
func Save(org Organization, path string) error {
	img, err := store.Snapshot(org)
	if err != nil {
		return fmt.Errorf("spatialcluster: Save: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("spatialcluster: Save: %w", err)
	}
	w := bufio.NewWriter(f)
	if _, err := w.WriteString(saveMagic); err != nil {
		f.Close()
		return fmt.Errorf("spatialcluster: Save: %w", err)
	}
	if err := gob.NewEncoder(w).Encode(img); err != nil {
		f.Close()
		return fmt.Errorf("spatialcluster: Save: encoding snapshot: %w", err)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("spatialcluster: Save: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("spatialcluster: Save: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("spatialcluster: Save: %w", err)
	}
	return nil
}

// Open rebuilds an organization from a snapshot file written by Save,
// without re-running construction and without charging modelled I/O. The
// organization kind, cluster configuration and disk timing parameters come
// from the snapshot; cfg supplies the runtime environment — buffer size,
// parallelism, and the storage backend the restored pages are placed on
// (BackendMem by default, or BackendFile with a fresh Path). cfg.DiskParams,
// cfg.SmaxBytes and cfg.BuddySizes are ignored: those are properties of the
// saved store.
func Open(path string, cfg StoreConfig) (Organization, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("spatialcluster: Open: %w", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	magic := make([]byte, len(saveMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("spatialcluster: Open %s: reading header: %w", path, err)
	}
	if string(magic) != saveMagic {
		return nil, fmt.Errorf("spatialcluster: Open %s: not a spatialcluster snapshot", path)
	}
	var img store.Image
	if err := gob.NewDecoder(r).Decode(&img); err != nil {
		return nil, fmt.Errorf("spatialcluster: Open %s: decoding snapshot: %w", path, err)
	}
	env, err := cfg.envWithParams(img.Params)
	if err != nil {
		return nil, err
	}
	org, err := store.Restore(&img, env)
	if err != nil {
		env.Close()
		return nil, fmt.Errorf("spatialcluster: Open %s: %w", path, err)
	}
	return org, nil
}
