package spatialcluster

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"spatialcluster/internal/store"
)

// The snapshot file format, version 2:
//
//	section 1: magic          "SPCLSNAP\x02"        (9 bytes)
//	section 2: payload length uint64, little-endian (8 bytes)
//	section 3: payload CRC-32 uint32, little-endian (4 bytes, IEEE)
//	section 4: payload        gob-encoded store.Image
//
// The length and checksum exist so that a truncated or corrupted file is
// detected at every section boundary with a descriptive error — never a
// panic, and never a silently wrong store. Version 1 files (no length or
// checksum) are rejected by the magic comparison.

// saveMagic identifies a spatialcluster snapshot file and its format
// version. Bump the trailing byte on incompatible format changes.
const saveMagic = "SPCLSNAP\x02"

// saveHeaderSize is the fixed prefix before the payload: magic + length +
// CRC-32.
const saveHeaderSize = len(saveMagic) + 8 + 4

// Save serializes a built organization to a single snapshot file at path:
// the disk's page image plus all in-memory state (allocator free list,
// R*-tree shape, object maps, cluster units, open tail pages). The store is
// flushed first; it remains usable afterwards. A saved store reopens with
// Open without a rebuild, on any backend, with identical StorageStats and
// identical window/point/k-NN answer sets.
//
// Saving the same store twice produces byte-identical files: all map-backed
// state is sorted during capture.
func Save(org Organization, path string) error {
	img, err := store.Snapshot(org)
	if err != nil {
		return fmt.Errorf("spatialcluster: Save: %w", err)
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(img); err != nil {
		return fmt.Errorf("spatialcluster: Save: encoding snapshot: %w", err)
	}
	header := make([]byte, saveHeaderSize)
	copy(header, saveMagic)
	binary.LittleEndian.PutUint64(header[len(saveMagic):], uint64(payload.Len()))
	binary.LittleEndian.PutUint32(header[len(saveMagic)+8:], crc32.ChecksumIEEE(payload.Bytes()))

	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("spatialcluster: Save: %w", err)
	}
	if _, err := f.Write(header); err != nil {
		f.Close()
		return fmt.Errorf("spatialcluster: Save: %w", err)
	}
	if _, err := f.Write(payload.Bytes()); err != nil {
		f.Close()
		return fmt.Errorf("spatialcluster: Save: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("spatialcluster: Save: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("spatialcluster: Save: %w", err)
	}
	return nil
}

// Open rebuilds an organization from a snapshot file written by Save,
// without re-running construction and without charging modelled I/O. The
// organization kind, cluster configuration and disk timing parameters come
// from the snapshot; cfg supplies the runtime environment — buffer size,
// parallelism, and the storage backend the restored pages are placed on
// (BackendMem by default, or BackendFile with a fresh Path). cfg.DiskParams,
// cfg.SmaxBytes and cfg.BuddySizes are ignored: those are properties of the
// saved store.
//
// A truncated, corrupted or foreign file yields a descriptive error: the
// magic, the length field and a CRC-32 of the payload are verified before
// anything is decoded.
func Open(path string, cfg StoreConfig) (Organization, error) {
	img, err := readSnapshot(path)
	if err != nil {
		return nil, err
	}
	env, err := cfg.envWithParams(img.Params)
	if err != nil {
		return nil, err
	}
	org, err := store.Restore(img, env)
	if err != nil {
		env.Close()
		return nil, fmt.Errorf("spatialcluster: Open %s: %w", path, err)
	}
	return org, nil
}

// readSnapshot reads and verifies a snapshot file section by section.
func readSnapshot(path string) (*store.Image, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("spatialcluster: Open: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("spatialcluster: Open %s: %w", path, err)
	}

	header := make([]byte, saveHeaderSize)
	if _, err := io.ReadFull(f, header); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("spatialcluster: Open %s: truncated snapshot: file holds %d of the %d header bytes",
				path, fi.Size(), saveHeaderSize)
		}
		return nil, fmt.Errorf("spatialcluster: Open %s: reading snapshot header: %w", path, err)
	}
	if string(header[:len(saveMagic)]) != saveMagic {
		return nil, fmt.Errorf("spatialcluster: Open %s: not a spatialcluster snapshot (or an unsupported format version)", path)
	}
	length := binary.LittleEndian.Uint64(header[len(saveMagic):])
	sum := binary.LittleEndian.Uint32(header[len(saveMagic)+8:])

	// Check the length against the real file size before allocating: a
	// corrupted length field must fail cleanly, not OOM.
	want := int64(saveHeaderSize) + int64(length)
	if int64(length) < 0 || want != fi.Size() {
		if fi.Size() < want {
			return nil, fmt.Errorf("spatialcluster: Open %s: truncated snapshot: payload holds %d of %d bytes",
				path, fi.Size()-int64(saveHeaderSize), length)
		}
		return nil, fmt.Errorf("spatialcluster: Open %s: corrupted snapshot: %d trailing bytes after the %d-byte payload",
			path, fi.Size()-want, length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(f, payload); err != nil {
		return nil, fmt.Errorf("spatialcluster: Open %s: reading %d-byte payload: %w", path, length, err)
	}
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return nil, fmt.Errorf("spatialcluster: Open %s: corrupted snapshot: payload checksum %08x, header says %08x",
			path, got, sum)
	}

	var img store.Image
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&img); err != nil {
		return nil, fmt.Errorf("spatialcluster: Open %s: decoding snapshot: %w", path, err)
	}
	return &img, nil
}
