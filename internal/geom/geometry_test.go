package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSegmentIntersects(t *testing.T) {
	cases := []struct {
		name string
		s, u Segment
		want bool
	}{
		{"crossing", Segment{Pt(0, 0), Pt(2, 2)}, Segment{Pt(0, 2), Pt(2, 0)}, true},
		{"disjoint", Segment{Pt(0, 0), Pt(1, 0)}, Segment{Pt(0, 1), Pt(1, 1)}, false},
		{"touching endpoints", Segment{Pt(0, 0), Pt(1, 1)}, Segment{Pt(1, 1), Pt(2, 0)}, true},
		{"T touch", Segment{Pt(0, 0), Pt(2, 0)}, Segment{Pt(1, 0), Pt(1, 1)}, true},
		{"collinear overlap", Segment{Pt(0, 0), Pt(2, 0)}, Segment{Pt(1, 0), Pt(3, 0)}, true},
		{"collinear disjoint", Segment{Pt(0, 0), Pt(1, 0)}, Segment{Pt(2, 0), Pt(3, 0)}, false},
		{"parallel", Segment{Pt(0, 0), Pt(1, 1)}, Segment{Pt(0, 1), Pt(1, 2)}, false},
	}
	for _, c := range cases {
		if got := c.s.Intersects(c.u); got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
		if got := c.u.Intersects(c.s); got != c.want {
			t.Errorf("%s (swapped): got %v, want %v", c.name, got, c.want)
		}
	}
}

func TestSegmentIntersectsRect(t *testing.T) {
	r := R(0, 0, 2, 2)
	cases := []struct {
		name string
		s    Segment
		want bool
	}{
		{"inside", Segment{Pt(0.5, 0.5), Pt(1, 1)}, true},
		{"crossing through", Segment{Pt(-1, 1), Pt(3, 1)}, true},
		{"one endpoint inside", Segment{Pt(1, 1), Pt(5, 5)}, true},
		{"touching edge", Segment{Pt(-1, 2), Pt(3, 2)}, true},
		{"corner graze", Segment{Pt(-1, 3), Pt(3, -1)}, true},
		{"outside", Segment{Pt(3, 3), Pt(4, 4)}, false},
		{"near-miss diagonal", Segment{Pt(2.1, -1), Pt(4, 1)}, false},
	}
	for _, c := range cases {
		if got := c.s.IntersectsRect(r); got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
}

func TestSegmentDistToPoint(t *testing.T) {
	s := Segment{Pt(0, 0), Pt(2, 0)}
	if d := s.DistToPoint(Pt(1, 1)); d != 1 {
		t.Fatalf("perpendicular dist = %g", d)
	}
	if d := s.DistToPoint(Pt(3, 0)); d != 1 {
		t.Fatalf("beyond endpoint dist = %g", d)
	}
	deg := Segment{Pt(1, 1), Pt(1, 1)}
	if d := deg.DistToPoint(Pt(1, 3)); d != 2 {
		t.Fatalf("degenerate segment dist = %g", d)
	}
}

func TestPolylineBasics(t *testing.T) {
	l := NewPolyline([]Point{{0, 0}, {1, 0}, {1, 1}})
	if l.NumVertices() != 3 {
		t.Fatal("NumVertices")
	}
	if got := l.Bounds(); got != R(0, 0, 1, 1) {
		t.Fatalf("Bounds = %v", got)
	}
	if len(l.Segments()) != 2 {
		t.Fatal("Segments count")
	}
	if math.Abs(l.Length()-2) > 1e-12 {
		t.Fatalf("Length = %g", l.Length())
	}
	if !l.ContainsPoint(Pt(0.5, 0)) {
		t.Fatal("point on chain must be contained")
	}
	if l.ContainsPoint(Pt(0.5, 0.5)) {
		t.Fatal("point off chain must not be contained")
	}
}

func TestPolylinePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPolyline with 1 vertex must panic")
		}
	}()
	NewPolyline([]Point{{0, 0}})
}

func TestPolygonContainsPoint(t *testing.T) {
	pg := NewPolygon([]Point{{0, 0}, {4, 0}, {4, 4}, {0, 4}})
	if !pg.ContainsPoint(Pt(2, 2)) {
		t.Fatal("interior point")
	}
	if !pg.ContainsPoint(Pt(0, 2)) || !pg.ContainsPoint(Pt(4, 4)) {
		t.Fatal("boundary points count as contained")
	}
	if pg.ContainsPoint(Pt(5, 2)) || pg.ContainsPoint(Pt(-0.001, 2)) {
		t.Fatal("exterior point")
	}
	// Concave polygon.
	cc := NewPolygon([]Point{{0, 0}, {4, 0}, {4, 4}, {2, 2}, {0, 4}})
	if cc.ContainsPoint(Pt(2, 3)) {
		t.Fatal("notch point must be outside concave polygon")
	}
	if !cc.ContainsPoint(Pt(1, 1)) {
		t.Fatal("interior of concave polygon")
	}
}

func TestPolygonArea(t *testing.T) {
	pg := NewPolygon([]Point{{0, 0}, {4, 0}, {4, 4}, {0, 4}})
	if pg.Area() != 16 {
		t.Fatalf("Area = %g", pg.Area())
	}
	// Clockwise orientation yields the same absolute area.
	cw := NewPolygon([]Point{{0, 4}, {4, 4}, {4, 0}, {0, 0}})
	if cw.Area() != 16 {
		t.Fatalf("cw Area = %g", cw.Area())
	}
}

func TestPolygonIntersectsRect(t *testing.T) {
	pg := NewPolygon([]Point{{0, 0}, {4, 0}, {4, 4}, {0, 4}})
	if !pg.IntersectsRect(R(3, 3, 5, 5)) {
		t.Fatal("edge-crossing window")
	}
	if !pg.IntersectsRect(R(1, 1, 2, 2)) {
		t.Fatal("window entirely inside polygon")
	}
	if !pg.IntersectsRect(R(-1, -1, 5, 5)) {
		t.Fatal("polygon entirely inside window")
	}
	if pg.IntersectsRect(R(5, 5, 6, 6)) {
		t.Fatal("disjoint window")
	}
}

func TestGeometryIntersection(t *testing.T) {
	square := NewPolygon([]Point{{0, 0}, {4, 0}, {4, 4}, {0, 4}})
	inner := NewPolyline([]Point{{1, 1}, {2, 2}})
	crossing := NewPolyline([]Point{{-1, 2}, {5, 2}})
	outside := NewPolyline([]Point{{5, 5}, {6, 6}})

	if !square.IntersectsGeometry(crossing) || !crossing.IntersectsGeometry(square) {
		t.Fatal("crossing line intersects square")
	}
	if !square.IntersectsGeometry(inner) || !inner.IntersectsGeometry(square) {
		t.Fatal("contained line intersects square (no boundary crossing)")
	}
	if square.IntersectsGeometry(outside) || outside.IntersectsGeometry(square) {
		t.Fatal("outside line does not intersect square")
	}

	// Polygon fully inside polygon.
	tiny := NewPolygon([]Point{{1, 1}, {2, 1}, {2, 2}})
	if !square.IntersectsGeometry(tiny) || !tiny.IntersectsGeometry(square) {
		t.Fatal("nested polygons intersect")
	}

	// Two polylines crossing.
	a := NewPolyline([]Point{{0, 0}, {2, 2}})
	b := NewPolyline([]Point{{0, 2}, {2, 0}})
	if !a.IntersectsGeometry(b) {
		t.Fatal("crossing polylines")
	}
}

func randPolyline(rng *rand.Rand, n int) *Polyline {
	pts := make([]Point, n)
	x, y := rng.Float64(), rng.Float64()
	for i := range pts {
		pts[i] = Pt(x, y)
		x += (rng.Float64() - 0.5) * 0.1
		y += (rng.Float64() - 0.5) * 0.1
	}
	return NewPolyline(pts)
}

// Property: the decomposed representation agrees with the exact geometry on
// rectangle intersection and pairwise intersection.
func TestQuickDecomposedAgreesWithExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		rng.Seed(seed)
		g1 := randPolyline(rng, 3+rng.Intn(30))
		g2 := randPolyline(rng, 3+rng.Intn(30))
		d1, d2 := Decompose(g1), Decompose(g2)
		w := R(rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64())
		if d1.IntersectsRect(w) != g1.IntersectsRect(w) {
			return false
		}
		if d1.Intersects(d2) != g1.IntersectsGeometry(g2) {
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDecomposedPolygon(t *testing.T) {
	square := NewPolygon([]Point{{0, 0}, {4, 0}, {4, 4}, {0, 4}})
	d := Decompose(square)
	if d.Geometry() != Geometry(square) {
		t.Fatal("Geometry() must return the original")
	}
	if d.NumBuckets() < 1 {
		t.Fatal("expected at least one bucket")
	}
	if !d.IntersectsRect(R(1, 1, 2, 2)) {
		t.Fatal("window inside polygon via decomposed rep")
	}
	inner := Decompose(NewPolyline([]Point{{1, 1}, {2, 2}}))
	if !d.Intersects(inner) || !inner.Intersects(d) {
		t.Fatal("contained polyline via decomposed rep")
	}
	far := Decompose(NewPolyline([]Point{{9, 9}, {10, 10}}))
	if d.Intersects(far) {
		t.Fatal("disjoint geometries via decomposed rep")
	}
}

// Property: polygon ContainsPoint is consistent with IntersectsRect for
// degenerate query windows.
func TestQuickPolygonPointWindowConsistency(t *testing.T) {
	pg := NewPolygon([]Point{{0.1, 0.1}, {0.9, 0.2}, {0.8, 0.9}, {0.3, 0.8}})
	f := func(xRaw, yRaw uint16) bool {
		x := float64(xRaw) / 65535
		y := float64(yRaw) / 65535
		p := Pt(x, y)
		return pg.ContainsPoint(p) == pg.IntersectsRect(RectFromPoint(p))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
