package geom

// Polygon is a simple closed ring of vertices (the closing edge from the last
// back to the first vertex is implicit). Administrative boundaries in the
// TIGER-like test data are polygons.
type Polygon struct {
	Vertices []Point
}

// NewPolygon constructs a polygon; it panics if fewer than three vertices are
// supplied.
func NewPolygon(vertices []Point) *Polygon {
	if len(vertices) < 3 {
		panic("geom: polygon needs at least 3 vertices")
	}
	return &Polygon{Vertices: vertices}
}

// Bounds returns the MBR of the ring.
func (pg *Polygon) Bounds() Rect { return BoundingRect(pg.Vertices) }

// NumVertices returns the vertex count.
func (pg *Polygon) NumVertices() int { return len(pg.Vertices) }

// Segments returns the ring edges including the closing edge.
func (pg *Polygon) Segments() []Segment {
	n := len(pg.Vertices)
	segs := make([]Segment, n)
	for i := 0; i < n; i++ {
		segs[i] = Segment{A: pg.Vertices[i], B: pg.Vertices[(i+1)%n]}
	}
	return segs
}

// ContainsPoint reports whether p lies inside the polygon or on its boundary,
// using the ray-crossing rule with explicit boundary handling.
func (pg *Polygon) ContainsPoint(p Point) bool {
	n := len(pg.Vertices)
	inside := false
	for i := 0; i < n; i++ {
		a, b := pg.Vertices[i], pg.Vertices[(i+1)%n]
		seg := Segment{A: a, B: b}
		if cross(a, b, p) == 0 && onSegment(seg, p) {
			return true // on the boundary
		}
		if (a.Y > p.Y) != (b.Y > p.Y) {
			xCross := a.X + (p.Y-a.Y)*(b.X-a.X)/(b.Y-a.Y)
			if p.X < xCross {
				inside = !inside
			}
		}
	}
	return inside
}

// IntersectsRect reports whether the polygon shares a point with r: either an
// edge intersects the rectangle, the rectangle lies inside the polygon, or
// the polygon lies inside the rectangle.
func (pg *Polygon) IntersectsRect(r Rect) bool {
	if r.IsEmpty() || !pg.Bounds().Intersects(r) {
		return false
	}
	for _, s := range pg.Segments() {
		if s.IntersectsRect(r) {
			return true
		}
	}
	// No edge crosses the rectangle: one contains the other, or neither.
	if pg.ContainsPoint(r.Center()) {
		return true
	}
	return r.ContainsRect(pg.Bounds())
}

// IntersectsGeometry implements the exact intersection test.
func (pg *Polygon) IntersectsGeometry(g Geometry) bool {
	return geometriesIntersect(pg, g)
}

// Area returns the absolute area of the ring (shoelace formula).
func (pg *Polygon) Area() float64 {
	n := len(pg.Vertices)
	var sum float64
	for i := 0; i < n; i++ {
		a, b := pg.Vertices[i], pg.Vertices[(i+1)%n]
		sum += a.X*b.Y - b.X*a.Y
	}
	if sum < 0 {
		sum = -sum
	}
	return sum / 2
}
