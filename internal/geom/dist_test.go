package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestRectMinDist(t *testing.T) {
	r := R(1, 1, 3, 2)
	cases := []struct {
		p    Point
		want float64
	}{
		{Pt(2, 1.5), 0},        // inside
		{Pt(1, 1), 0},          // corner
		{Pt(3, 1.7), 0},        // on edge
		{Pt(0, 1.5), 1},        // left of
		{Pt(5, 1.5), 2},        // right of
		{Pt(2, 4), 2},          // above
		{Pt(2, -1), 2},         // below
		{Pt(0, 0), math.Sqrt2}, // diagonal to corner (1,1)
		{Pt(4, 3), math.Sqrt2}, // diagonal to corner (3,2)
	}
	for _, c := range cases {
		if got := r.MinDist(c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("MinDist(%v, %v) = %g, want %g", r, c.p, got, c.want)
		}
	}
	if got := EmptyRect().MinDist(Pt(0, 0)); !math.IsInf(got, 1) {
		t.Errorf("MinDist of empty rect = %g, want +Inf", got)
	}
}

// TestRectMinDistIsLowerBound: MinDist must never exceed the distance to any
// point inside the rectangle (the k-NN pruning correctness condition).
func TestRectMinDistIsLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		r := randRect(rng)
		p := Pt(4*rng.Float64()-2, 4*rng.Float64()-2)
		q := Pt(r.MinX+rng.Float64()*r.Width(), r.MinY+rng.Float64()*r.Height())
		if md := r.MinDist(p); md > p.Dist(q)+1e-12 {
			t.Fatalf("MinDist(%v, %v) = %g exceeds dist to inner point %v = %g",
				r, p, md, q, p.Dist(q))
		}
	}
}

func TestPolylineDistToPoint(t *testing.T) {
	l := NewPolyline([]Point{Pt(0, 0), Pt(1, 0), Pt(1, 1)})
	cases := []struct {
		p    Point
		want float64
	}{
		{Pt(0.5, 0), 0}, // on the chain
		{Pt(1, 1), 0},   // endpoint
		{Pt(0.5, 0.25), 0.25},
		{Pt(-1, 0), 1}, // beyond the first endpoint
		{Pt(2, 2), math.Sqrt2},
	}
	for _, c := range cases {
		if got := l.DistToPoint(c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("polyline DistToPoint(%v) = %g, want %g", c.p, got, c.want)
		}
	}
}

func TestPolygonDistToPoint(t *testing.T) {
	pg := NewPolygon([]Point{Pt(0, 0), Pt(2, 0), Pt(2, 2), Pt(0, 2)})
	cases := []struct {
		p    Point
		want float64
	}{
		{Pt(1, 1), 0}, // interior
		{Pt(0, 1), 0}, // boundary
		{Pt(3, 1), 1}, // outside, nearest edge x=2
		{Pt(-1, -1), math.Sqrt2},
	}
	for _, c := range cases {
		if got := pg.DistToPoint(c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("polygon DistToPoint(%v) = %g, want %g", c.p, got, c.want)
		}
	}
}

// TestDecomposedDistMatchesExact: the bucket-pruned distance must equal the
// brute-force distance of the underlying geometry.
func TestDecomposedDistMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		var g Geometry
		if trial%2 == 0 {
			verts := make([]Point, 0, 30)
			cur := Pt(rng.Float64(), rng.Float64())
			verts = append(verts, cur)
			for i := 0; i < 29; i++ {
				cur = Pt(cur.X+0.05*rng.NormFloat64(), cur.Y+0.05*rng.NormFloat64())
				verts = append(verts, cur)
			}
			g = NewPolyline(verts)
		} else {
			n := 8 + rng.Intn(20)
			c := Pt(rng.Float64(), rng.Float64())
			verts := make([]Point, 0, n)
			for i := 0; i < n; i++ {
				ang := 2 * math.Pi * float64(i) / float64(n)
				r := 0.1 + 0.2*rng.Float64()
				verts = append(verts, Pt(c.X+r*math.Cos(ang), c.Y+r*math.Sin(ang)))
			}
			g = NewPolygon(verts)
		}
		d := Decompose(g)
		for i := 0; i < 20; i++ {
			p := Pt(2*rng.Float64()-0.5, 2*rng.Float64()-0.5)
			want := g.DistToPoint(p)
			if got := d.DistToPoint(p); math.Abs(got-want) > 1e-12 {
				t.Fatalf("trial %d: decomposed dist %g, exact %g at %v", trial, got, want, p)
			}
		}
	}
}
