package geom

import "sort"

// Decomposed is a decomposed representation of a geometry in the spirit of
// the TR*-tree [SK91]: the segments are grouped into small buckets, each with
// a precomputed MBR, and the buckets are ordered by their lower x-coordinate.
// Exact predicates then prune whole buckets by MBR before touching individual
// segments, which makes the refinement step of queries and joins cheap for
// objects with many vertices.
type Decomposed struct {
	geom    Geometry
	buckets []segBucket
}

type segBucket struct {
	bounds Rect
	segs   []Segment
}

// bucketSize is the number of segments grouped per bucket. Small buckets keep
// the MBRs tight; the value trades pruning power against per-bucket overhead.
const bucketSize = 8

// Decompose builds the decomposed representation of g. The original geometry
// remains reachable through Geometry().
func Decompose(g Geometry) *Decomposed {
	segs := g.Segments()
	sort.Slice(segs, func(i, j int) bool {
		bi, bj := segs[i].Bounds(), segs[j].Bounds()
		if bi.MinX != bj.MinX {
			return bi.MinX < bj.MinX
		}
		return bi.MinY < bj.MinY
	})
	d := &Decomposed{geom: g}
	for start := 0; start < len(segs); start += bucketSize {
		end := start + bucketSize
		if end > len(segs) {
			end = len(segs)
		}
		b := segBucket{bounds: EmptyRect(), segs: segs[start:end]}
		for _, s := range b.segs {
			b.bounds = b.bounds.Union(s.Bounds())
		}
		d.buckets = append(d.buckets, b)
	}
	return d
}

// Geometry returns the underlying exact geometry.
func (d *Decomposed) Geometry() Geometry { return d.geom }

// Bounds returns the MBR of the underlying geometry.
func (d *Decomposed) Bounds() Rect { return d.geom.Bounds() }

// NumBuckets returns the number of segment buckets.
func (d *Decomposed) NumBuckets() int { return len(d.buckets) }

// IntersectsRect reports whether the geometry intersects r, pruning by
// bucket MBRs first. For polygons the interior case is delegated to the
// exact geometry.
func (d *Decomposed) IntersectsRect(r Rect) bool {
	if !d.Bounds().Intersects(r) {
		return false
	}
	hit := false
	for _, b := range d.buckets {
		if !b.bounds.Intersects(r) {
			continue
		}
		for _, s := range b.segs {
			if s.IntersectsRect(r) {
				hit = true
				break
			}
		}
		if hit {
			break
		}
	}
	if hit {
		return true
	}
	// No boundary segment intersects the window; for areal geometries the
	// window may still lie entirely inside.
	if pg, ok := d.geom.(*Polygon); ok {
		return pg.ContainsPoint(r.Center()) || r.ContainsRect(pg.Bounds())
	}
	return false
}

// Intersects reports whether two decomposed geometries share a point. Bucket
// MBR pairs are pruned before segment pair tests; containment without
// boundary crossing is delegated to the exact geometries.
func (d *Decomposed) Intersects(e *Decomposed) bool {
	if !d.Bounds().Intersects(e.Bounds()) {
		return false
	}
	for _, ba := range d.buckets {
		if !ba.bounds.Intersects(e.Bounds()) {
			continue
		}
		for _, bb := range e.buckets {
			if !ba.bounds.Intersects(bb.bounds) {
				continue
			}
			for _, sa := range ba.segs {
				ra := sa.Bounds()
				if !ra.Intersects(bb.bounds) {
					continue
				}
				for _, sb := range bb.segs {
					if ra.Intersects(sb.Bounds()) && sa.Intersects(sb) {
						return true
					}
				}
			}
		}
	}
	// No boundary crossing: test containment via the exact geometries.
	if pa, ok := d.geom.(*Polygon); ok {
		if segs := e.geom.Segments(); len(segs) > 0 && pa.ContainsPoint(segs[0].A) {
			return true
		}
	}
	if pb, ok := e.geom.(*Polygon); ok {
		if segs := d.geom.Segments(); len(segs) > 0 && pb.ContainsPoint(segs[0].A) {
			return true
		}
	}
	return false
}
