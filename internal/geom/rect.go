package geom

import (
	"fmt"
	"math"
)

// Rect is an axis-parallel rectangle, the minimum bounding rectangle (MBR)
// used as the spatial key of the R*-tree. A Rect is valid when MinX <= MaxX
// and MinY <= MaxY. Degenerate rectangles (points, horizontal or vertical
// segments) are valid.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// R constructs a Rect, swapping coordinates if necessary so the result is
// valid regardless of the argument order.
func R(x1, y1, x2, y2 float64) Rect {
	if x1 > x2 {
		x1, x2 = x2, x1
	}
	if y1 > y2 {
		y1, y2 = y2, y1
	}
	return Rect{MinX: x1, MinY: y1, MaxX: x2, MaxY: y2}
}

// RectFromPoint returns the degenerate rectangle covering exactly p.
func RectFromPoint(p Point) Rect {
	return Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y}
}

// EmptyRect returns the identity element for Union: every Union with it
// yields the other operand, and it intersects nothing.
func EmptyRect() Rect {
	return Rect{
		MinX: math.Inf(1), MinY: math.Inf(1),
		MaxX: math.Inf(-1), MaxY: math.Inf(-1),
	}
}

// IsEmpty reports whether r is the empty rectangle (or otherwise inverted).
func (r Rect) IsEmpty() bool { return r.MinX > r.MaxX || r.MinY > r.MaxY }

// Valid reports whether r is a well-formed (possibly degenerate) rectangle
// with finite coordinates.
func (r Rect) Valid() bool {
	return r.MinX <= r.MaxX && r.MinY <= r.MaxY &&
		!math.IsInf(r.MinX, 0) && !math.IsInf(r.MinY, 0) &&
		!math.IsInf(r.MaxX, 0) && !math.IsInf(r.MaxY, 0) &&
		!math.IsNaN(r.MinX) && !math.IsNaN(r.MinY) &&
		!math.IsNaN(r.MaxX) && !math.IsNaN(r.MaxY)
}

// Width returns the extension of r in x.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the extension of r in y.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Area returns the area of r; the empty rectangle has area 0.
func (r Rect) Area() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.Width() * r.Height()
}

// Margin returns half the perimeter of r (the R*-tree split heuristic
// minimizes the sum of margins).
func (r Rect) Margin() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.Width() + r.Height()
}

// Center returns the center point of r.
func (r Rect) Center() Point {
	return Point{X: (r.MinX + r.MaxX) / 2, Y: (r.MinY + r.MaxY) / 2}
}

// ContainsPoint reports whether p lies in r (boundary inclusive).
func (r Rect) ContainsPoint(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// ContainsRect reports whether s lies completely within r.
func (r Rect) ContainsRect(s Rect) bool {
	if s.IsEmpty() {
		return true
	}
	return s.MinX >= r.MinX && s.MaxX <= r.MaxX &&
		s.MinY >= r.MinY && s.MaxY <= r.MaxY
}

// Intersects reports whether r and s share at least one point (the window
// query predicate: boundary touch counts as intersection).
func (r Rect) Intersects(s Rect) bool {
	if r.IsEmpty() || s.IsEmpty() {
		return false
	}
	return r.MinX <= s.MaxX && s.MinX <= r.MaxX &&
		r.MinY <= s.MaxY && s.MinY <= r.MaxY
}

// Intersection returns the common rectangle of r and s; if they do not
// intersect the result IsEmpty.
func (r Rect) Intersection(s Rect) Rect {
	out := Rect{
		MinX: math.Max(r.MinX, s.MinX),
		MinY: math.Max(r.MinY, s.MinY),
		MaxX: math.Min(r.MaxX, s.MaxX),
		MaxY: math.Min(r.MaxY, s.MaxY),
	}
	return out
}

// OverlapArea returns the area of the intersection of r and s.
func (r Rect) OverlapArea(s Rect) float64 {
	return r.Intersection(s).Area()
}

// Union returns the minimum bounding rectangle of r and s.
func (r Rect) Union(s Rect) Rect {
	if r.IsEmpty() {
		return s
	}
	if s.IsEmpty() {
		return r
	}
	return Rect{
		MinX: math.Min(r.MinX, s.MinX),
		MinY: math.Min(r.MinY, s.MinY),
		MaxX: math.Max(r.MaxX, s.MaxX),
		MaxY: math.Max(r.MaxY, s.MaxY),
	}
}

// UnionPoint returns the minimum bounding rectangle of r and p.
func (r Rect) UnionPoint(p Point) Rect {
	return r.Union(RectFromPoint(p))
}

// Enlargement returns the area increase needed for r to cover s; this is the
// R-tree ChooseSubtree criterion of [Gut84].
func (r Rect) Enlargement(s Rect) float64 {
	return r.Union(s).Area() - r.Area()
}

// Expand returns r grown by d on every side (shrunk for negative d; the
// result is clipped to validity). The empty rectangle stays empty: growing
// ±Inf corners would produce NaN/collapsed coordinates that only blow up
// later as an invalid R*-tree insert.
func (r Rect) Expand(d float64) Rect {
	if r.IsEmpty() {
		return r
	}
	out := Rect{r.MinX - d, r.MinY - d, r.MaxX + d, r.MaxY + d}
	if out.MinX > out.MaxX {
		c := (out.MinX + out.MaxX) / 2
		out.MinX, out.MaxX = c, c
	}
	if out.MinY > out.MaxY {
		c := (out.MinY + out.MaxY) / 2
		out.MinY, out.MaxY = c, c
	}
	return out
}

// Scale returns r scaled by f around its center. f > 1 enlarges the MBR;
// the join evaluation (versions a and b, paper section 6.1) uses this to
// control the number of intersecting pairs. The empty rectangle stays empty
// (its ±Inf corners have no center to scale around).
func (r Rect) Scale(f float64) Rect {
	if r.IsEmpty() {
		return r
	}
	c := r.Center()
	hw, hh := r.Width()/2*f, r.Height()/2*f
	return Rect{MinX: c.X - hw, MinY: c.Y - hh, MaxX: c.X + hw, MaxY: c.Y + hh}
}

// MinDist returns the minimum Euclidean distance between p and any point of
// r — zero when r contains p, +Inf for the empty rectangle. It is the
// optimistic bound of the incremental nearest-neighbor traversal [HS95]: no
// object inside r can be closer to p than MinDist.
func (r Rect) MinDist(p Point) float64 {
	if r.IsEmpty() {
		return math.Inf(1)
	}
	var dx, dy float64
	switch {
	case p.X < r.MinX:
		dx = r.MinX - p.X
	case p.X > r.MaxX:
		dx = p.X - r.MaxX
	}
	switch {
	case p.Y < r.MinY:
		dy = r.MinY - p.Y
	case p.Y > r.MaxY:
		dy = p.Y - r.MaxY
	}
	if dx == 0 {
		return dy
	}
	if dy == 0 {
		return dx
	}
	return math.Hypot(dx, dy)
}

// CenterDist returns the distance between the centers of r and s (used by
// the R*-tree forced-reinsert selection).
func (r Rect) CenterDist(s Rect) float64 {
	return r.Center().Dist(s.Center())
}

// OverlapDegree returns the fraction of r's area covered by s, in [0,1].
// A degenerate r (zero area) counts as fully covered when the rectangles
// intersect at all. The geometric-threshold query technique (paper section
// 5.4.1) compares this degree against T(c).
func (r Rect) OverlapDegree(s Rect) float64 {
	if !r.Intersects(s) {
		return 0
	}
	a := r.Area()
	if a == 0 {
		return 1
	}
	return r.OverlapArea(s) / a
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%g,%g]x[%g,%g]", r.MinX, r.MaxX, r.MinY, r.MaxY)
}

// BoundingRect returns the MBR of a set of points; it is EmptyRect for an
// empty slice.
func BoundingRect(pts []Point) Rect {
	r := EmptyRect()
	for _, p := range pts {
		if p.X < r.MinX {
			r.MinX = p.X
		}
		if p.X > r.MaxX {
			r.MaxX = p.X
		}
		if p.Y < r.MinY {
			r.MinY = p.Y
		}
		if p.Y > r.MaxY {
			r.MaxY = p.Y
		}
	}
	return r
}
