package geom

import "math"

// Segment is a straight line segment between two points.
type Segment struct {
	A, B Point
}

// Bounds returns the MBR of the segment.
func (s Segment) Bounds() Rect {
	return RectFromPoint(s.A).UnionPoint(s.B)
}

// Length returns the Euclidean length of the segment.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// onSegment reports whether point p, known to be collinear with s, lies on s.
func onSegment(s Segment, p Point) bool {
	return math.Min(s.A.X, s.B.X) <= p.X && p.X <= math.Max(s.A.X, s.B.X) &&
		math.Min(s.A.Y, s.B.Y) <= p.Y && p.Y <= math.Max(s.A.Y, s.B.Y)
}

// Intersects reports whether segments s and t share at least one point,
// including touching endpoints and collinear overlap.
func (s Segment) Intersects(t Segment) bool {
	d1 := cross(t.A, t.B, s.A)
	d2 := cross(t.A, t.B, s.B)
	d3 := cross(s.A, s.B, t.A)
	d4 := cross(s.A, s.B, t.B)

	if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)) {
		return true
	}
	switch {
	case d1 == 0 && onSegment(t, s.A):
		return true
	case d2 == 0 && onSegment(t, s.B):
		return true
	case d3 == 0 && onSegment(s, t.A):
		return true
	case d4 == 0 && onSegment(s, t.B):
		return true
	}
	return false
}

// IntersectsRect reports whether the segment shares at least one point with
// rectangle r (boundary inclusive). It first tests the trivial accept
// (either endpoint inside) and then the four rectangle edges.
func (s Segment) IntersectsRect(r Rect) bool {
	if r.IsEmpty() {
		return false
	}
	if r.ContainsPoint(s.A) || r.ContainsPoint(s.B) {
		return true
	}
	if !s.Bounds().Intersects(r) {
		return false
	}
	corners := [4]Point{
		{r.MinX, r.MinY}, {r.MaxX, r.MinY},
		{r.MaxX, r.MaxY}, {r.MinX, r.MaxY},
	}
	for i := 0; i < 4; i++ {
		edge := Segment{A: corners[i], B: corners[(i+1)%4]}
		if s.Intersects(edge) {
			return true
		}
	}
	return false
}

// DistToPoint returns the minimum distance between the segment and point p.
func (s Segment) DistToPoint(p Point) float64 {
	ab := s.B.Sub(s.A)
	ap := p.Sub(s.A)
	denom := ab.X*ab.X + ab.Y*ab.Y
	if denom == 0 {
		return s.A.Dist(p)
	}
	t := (ap.X*ab.X + ap.Y*ab.Y) / denom
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	proj := s.A.Add(ab.Scale(t))
	return proj.Dist(p)
}
