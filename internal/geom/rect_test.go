package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randRect(rng *rand.Rand) Rect {
	return R(rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64())
}

func TestRectConstructionSwaps(t *testing.T) {
	r := R(3, 4, 1, 2)
	if r.MinX != 1 || r.MinY != 2 || r.MaxX != 3 || r.MaxY != 4 {
		t.Fatalf("R did not normalize coordinates: %v", r)
	}
	if !r.Valid() {
		t.Fatalf("normalized rect should be valid")
	}
}

func TestEmptyRect(t *testing.T) {
	e := EmptyRect()
	if !e.IsEmpty() {
		t.Fatal("EmptyRect should be empty")
	}
	if e.Area() != 0 || e.Margin() != 0 {
		t.Fatal("empty rect must have zero area and margin")
	}
	r := R(0, 0, 1, 1)
	if got := e.Union(r); got != r {
		t.Fatalf("Union with empty must be identity, got %v", got)
	}
	if got := r.Union(e); got != r {
		t.Fatalf("Union with empty must be identity, got %v", got)
	}
	if e.Intersects(r) || r.Intersects(e) {
		t.Fatal("empty rect intersects nothing")
	}
	if !r.ContainsRect(e) {
		t.Fatal("every rect contains the empty rect")
	}
}

func TestRectBasics(t *testing.T) {
	r := R(0, 0, 2, 1)
	if r.Area() != 2 {
		t.Errorf("Area = %g, want 2", r.Area())
	}
	if r.Margin() != 3 {
		t.Errorf("Margin = %g, want 3", r.Margin())
	}
	if c := r.Center(); c != Pt(1, 0.5) {
		t.Errorf("Center = %v", c)
	}
	if !r.ContainsPoint(Pt(0, 0)) || !r.ContainsPoint(Pt(2, 1)) {
		t.Error("boundary points must be contained")
	}
	if r.ContainsPoint(Pt(2.0001, 0.5)) {
		t.Error("outside point must not be contained")
	}
}

func TestRectIntersection(t *testing.T) {
	a := R(0, 0, 2, 2)
	b := R(1, 1, 3, 3)
	if !a.Intersects(b) {
		t.Fatal("a and b intersect")
	}
	got := a.Intersection(b)
	if got != R(1, 1, 2, 2) {
		t.Fatalf("Intersection = %v", got)
	}
	if a.OverlapArea(b) != 1 {
		t.Fatalf("OverlapArea = %g", a.OverlapArea(b))
	}

	// Boundary touch counts as intersection (window query semantics).
	c := R(2, 0, 3, 2)
	if !a.Intersects(c) {
		t.Fatal("touching rects must intersect")
	}
	if a.OverlapArea(c) != 0 {
		t.Fatal("touching rects have zero overlap area")
	}

	d := R(5, 5, 6, 6)
	if a.Intersects(d) {
		t.Fatal("disjoint rects must not intersect")
	}
	if !a.Intersection(d).IsEmpty() {
		t.Fatal("intersection of disjoint rects must be empty")
	}
}

func TestRectEnlargement(t *testing.T) {
	a := R(0, 0, 1, 1)
	if e := a.Enlargement(R(0.2, 0.2, 0.8, 0.8)); e != 0 {
		t.Fatalf("contained rect needs no enlargement, got %g", e)
	}
	if e := a.Enlargement(R(0, 0, 2, 1)); e != 1 {
		t.Fatalf("Enlargement = %g, want 1", e)
	}
}

func TestRectScale(t *testing.T) {
	r := R(1, 1, 3, 5)
	s := r.Scale(2)
	if s.Center() != r.Center() {
		t.Fatal("Scale must preserve the center")
	}
	if s.Width() != 2*r.Width() || s.Height() != 2*r.Height() {
		t.Fatalf("Scale(2) dims = %gx%g", s.Width(), s.Height())
	}
}

func TestOverlapDegree(t *testing.T) {
	r := R(0, 0, 2, 2)
	if d := r.OverlapDegree(R(0, 0, 1, 1)); d != 0.25 {
		t.Fatalf("OverlapDegree = %g, want 0.25", d)
	}
	if d := r.OverlapDegree(R(-1, -1, 3, 3)); d != 1 {
		t.Fatalf("full cover degree = %g, want 1", d)
	}
	if d := r.OverlapDegree(R(5, 5, 6, 6)); d != 0 {
		t.Fatalf("disjoint degree = %g, want 0", d)
	}
	pt := RectFromPoint(Pt(1, 1))
	if d := pt.OverlapDegree(r); d != 1 {
		t.Fatalf("degenerate rect degree = %g, want 1", d)
	}
}

func TestExpand(t *testing.T) {
	r := R(0, 0, 1, 1).Expand(0.5)
	if r != R(-0.5, -0.5, 1.5, 1.5) {
		t.Fatalf("Expand = %v", r)
	}
	// Shrinking past degeneracy collapses to the center, stays valid.
	s := R(0, 0, 1, 1).Expand(-2)
	if !s.Valid() {
		t.Fatalf("over-shrunk rect must stay valid: %v", s)
	}
}

// TestScaleExpandEmptyRect: Scale and Expand on the empty rect (±Inf corners)
// must preserve emptiness instead of producing NaN or collapsed rectangles
// that only blow up later as invalid R*-tree inserts.
func TestScaleExpandEmptyRect(t *testing.T) {
	e := EmptyRect()
	cases := []struct {
		name string
		got  Rect
	}{
		{"Scale(2)", e.Scale(2)},
		{"Scale(0.5)", e.Scale(0.5)},
		{"Scale(0)", e.Scale(0)},
		{"Expand(1)", e.Expand(1)},
		{"Expand(-1)", e.Expand(-1)},
		{"Expand(0)", e.Expand(0)},
	}
	for _, c := range cases {
		if !c.got.IsEmpty() {
			t.Errorf("empty rect %s = %v, want empty", c.name, c.got)
		}
		if math.IsNaN(c.got.MinX) || math.IsNaN(c.got.MinY) ||
			math.IsNaN(c.got.MaxX) || math.IsNaN(c.got.MaxY) {
			t.Errorf("empty rect %s = %v produced NaN coordinates", c.name, c.got)
		}
		if got := c.got.Union(R(0, 0, 1, 1)); got != R(0, 0, 1, 1) {
			t.Errorf("empty rect %s lost the Union identity: %v", c.name, got)
		}
	}
	// Non-empty behaviour is unchanged.
	if got := R(1, 1, 3, 5).Scale(2); got != R(0, -1, 4, 7) {
		t.Errorf("Scale(2) of non-empty = %v", got)
	}
	if got := R(0, 0, 1, 1).Expand(1); got != R(-1, -1, 2, 2) {
		t.Errorf("Expand(1) of non-empty = %v", got)
	}
}

func TestBoundingRect(t *testing.T) {
	if !BoundingRect(nil).IsEmpty() {
		t.Fatal("BoundingRect(nil) must be empty")
	}
	r := BoundingRect([]Point{{1, 5}, {3, 2}, {-1, 4}})
	if r != R(-1, 2, 3, 5) {
		t.Fatalf("BoundingRect = %v", r)
	}
}

// Property: Union is commutative, associative, and contains both operands.
func TestQuickUnionLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		rng.Seed(seed)
		a, b, c := randRect(rng), randRect(rng), randRect(rng)
		u := a.Union(b)
		if u != b.Union(a) {
			return false
		}
		if !u.ContainsRect(a) || !u.ContainsRect(b) {
			return false
		}
		if a.Union(b).Union(c) != a.Union(b.Union(c)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Intersects is symmetric and consistent with Intersection.
func TestQuickIntersectionLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		rng.Seed(seed)
		a, b := randRect(rng), randRect(rng)
		if a.Intersects(b) != b.Intersects(a) {
			return false
		}
		inter := a.Intersection(b)
		if a.Intersects(b) != !inter.IsEmpty() {
			return false
		}
		if !inter.IsEmpty() && (!a.ContainsRect(inter) || !b.ContainsRect(inter)) {
			return false
		}
		// Overlap area is bounded by both areas.
		ov := a.OverlapArea(b)
		return ov <= a.Area()+1e-12 && ov <= b.Area()+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: enlargement is non-negative and zero iff contained.
func TestQuickEnlargement(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		rng.Seed(seed)
		a, b := randRect(rng), randRect(rng)
		e := a.Enlargement(b)
		if e < -1e-12 {
			return false
		}
		if a.ContainsRect(b) && math.Abs(e) > 1e-12 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPointOps(t *testing.T) {
	p, q := Pt(1, 2), Pt(4, 6)
	if p.Dist(q) != 5 {
		t.Fatalf("Dist = %g", p.Dist(q))
	}
	if p.Dist2(q) != 25 {
		t.Fatalf("Dist2 = %g", p.Dist2(q))
	}
	if got := q.Sub(p); got != Pt(3, 4) {
		t.Fatalf("Sub = %v", got)
	}
	if got := p.Add(Pt(1, 1)); got != Pt(2, 3) {
		t.Fatalf("Add = %v", got)
	}
	if got := p.Scale(2); got != Pt(2, 4) {
		t.Fatalf("Scale = %v", got)
	}
	if !p.Eq(Pt(1, 2)) || p.Eq(q) {
		t.Fatal("Eq misbehaves")
	}
}
