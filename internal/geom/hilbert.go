package geom

// HilbertOrder is the resolution of the Hilbert curve used for spatial
// ordering: the unit square is discretized into 2^16 × 2^16 cells.
const HilbertOrder = 16

// HilbertSide is the cell-grid side length, 2^HilbertOrder.
const HilbertSide = 1 << HilbertOrder

// HilbertRange is the size of the Hilbert index space: every index returned
// by HilbertIndex lies in [0, HilbertRange).
const HilbertRange = uint64(HilbertSide) * uint64(HilbertSide)

// HilbertIndex maps a point of the unit square to its index on the Hilbert
// space-filling curve of order HilbertOrder. Points outside [0,1]² are
// clamped. Sorting rectangles by the Hilbert index of their centers is the
// classical static global-clustering order (Hilbert packing), used by the
// bulk loader as an alternative to the paper's dynamic cluster organization.
func HilbertIndex(p Point) uint64 {
	x, y := HilbertCellOf(p)
	return hilbertD(x, y)
}

// HilbertCellOf maps a point of the unit square to its grid cell; points
// outside [0,1]² are clamped (monotonically: moving a coordinate toward the
// unit interval never moves its cell the other way).
func HilbertCellOf(p Point) (x, y uint32) {
	return uint32(clampUnit(p.X) * (HilbertSide - 1)),
		uint32(clampUnit(p.Y) * (HilbertSide - 1))
}

// hilbertD computes the curve index of cell (x, y).
func hilbertD(x, y uint32) uint64 {
	var rx, ry uint32
	var d uint64
	for s := uint32(HilbertSide / 2); s > 0; s /= 2 {
		if x&s > 0 {
			rx = 1
		} else {
			rx = 0
		}
		if y&s > 0 {
			ry = 1
		} else {
			ry = 0
		}
		d += uint64(s) * uint64(s) * uint64((3*rx)^ry)
		// Rotate the quadrant.
		if ry == 0 {
			if rx == 1 {
				x = s - 1 - x
				y = s - 1 - y
			}
			x, y = y, x
		}
	}
	return d
}

// HilbertBlockRange returns the contiguous index interval [lo, hi) covered by
// the aligned size×size cell block with lower corner (x, y). The block must be
// aligned: size a power of two, x and y multiples of size. Aligned blocks are
// exactly the recursion squares of the curve, so their size² cells occupy one
// contiguous index run whose start is attained at the block's entry corner —
// the minimum over the four corner cells.
func HilbertBlockRange(x, y, size uint32) (lo, hi uint64) {
	lo = hilbertD(x, y)
	for _, d := range [3]uint64{
		hilbertD(x+size-1, y),
		hilbertD(x, y+size-1),
		hilbertD(x+size-1, y+size-1),
	} {
		if d < lo {
			lo = d
		}
	}
	return lo, lo + uint64(size)*uint64(size)
}

// HilbertBlockRect returns the region of the plane whose points fall (by
// HilbertCellOf's clamped rounding) into the size×size cell block at (x, y).
// The closed rectangle slightly overcovers the half-open cell preimages —
// the conservative direction for overlap tests and distance lower bounds.
func HilbertBlockRect(x, y, size uint32) Rect {
	const m = float64(HilbertSide - 1)
	return Rect{
		MinX: float64(x) / m, MinY: float64(y) / m,
		MaxX: float64(x+size) / m, MaxY: float64(y+size) / m,
	}
}

func clampUnit(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
