package geom

// HilbertOrder is the resolution of the Hilbert curve used for spatial
// ordering: the unit square is discretized into 2^16 × 2^16 cells.
const HilbertOrder = 16

// HilbertIndex maps a point of the unit square to its index on the Hilbert
// space-filling curve of order HilbertOrder. Points outside [0,1]² are
// clamped. Sorting rectangles by the Hilbert index of their centers is the
// classical static global-clustering order (Hilbert packing), used by the
// bulk loader as an alternative to the paper's dynamic cluster organization.
func HilbertIndex(p Point) uint64 {
	const n = 1 << HilbertOrder
	x := uint32(clampUnit(p.X) * (n - 1))
	y := uint32(clampUnit(p.Y) * (n - 1))
	var rx, ry uint32
	var d uint64
	for s := uint32(n / 2); s > 0; s /= 2 {
		if x&s > 0 {
			rx = 1
		} else {
			rx = 0
		}
		if y&s > 0 {
			ry = 1
		} else {
			ry = 0
		}
		d += uint64(s) * uint64(s) * uint64((3*rx)^ry)
		// Rotate the quadrant.
		if ry == 0 {
			if rx == 1 {
				x = s - 1 - x
				y = s - 1 - y
			}
			x, y = y, x
		}
	}
	return d
}

func clampUnit(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
