package geom

// Geometry is the exact representation of a spatial object. The organization
// models store serialized geometries in secondary storage; query refinement
// evaluates these predicates on the exact representation after the MBR filter
// step (filter/refinement per [Ore89]).
type Geometry interface {
	// Bounds returns the minimum bounding rectangle of the geometry.
	Bounds() Rect
	// ContainsPoint reports whether the geometry contains p. For line
	// features containment means p lies on the line (within exact
	// arithmetic); for areal features it is point-in-polygon.
	ContainsPoint(p Point) bool
	// IntersectsRect reports whether the geometry shares a point with r.
	IntersectsRect(r Rect) bool
	// IntersectsGeometry reports whether two exact geometries share at
	// least one point. This is the refinement predicate of the
	// intersection join.
	IntersectsGeometry(g Geometry) bool
	// DistToPoint returns the minimum Euclidean distance between the
	// geometry and p: zero when the geometry contains p (on the line, or
	// inside an areal geometry), else the distance to the nearest boundary
	// or line segment. This is the refinement predicate of the k-NN query.
	DistToPoint(p Point) float64
	// Segments exposes the boundary (or line) segments of the geometry;
	// the decomposed representation and the generic intersection test
	// are built on these.
	Segments() []Segment
	// NumVertices returns the number of stored vertices; the serialized
	// object size is a linear function of it.
	NumVertices() int
}

// Polyline is an open chain of vertices. Streets, rivers and railway tracks
// in the TIGER-like test data are polylines.
type Polyline struct {
	Vertices []Point
}

// NewPolyline constructs a polyline; it panics if fewer than two vertices are
// supplied, because a degenerate chain has no segments to test.
func NewPolyline(vertices []Point) *Polyline {
	if len(vertices) < 2 {
		panic("geom: polyline needs at least 2 vertices")
	}
	return &Polyline{Vertices: vertices}
}

// Bounds returns the MBR of all vertices.
func (l *Polyline) Bounds() Rect { return BoundingRect(l.Vertices) }

// NumVertices returns the vertex count.
func (l *Polyline) NumVertices() int { return len(l.Vertices) }

// Segments returns the chain segments in order.
func (l *Polyline) Segments() []Segment {
	segs := make([]Segment, len(l.Vertices)-1)
	for i := range segs {
		segs[i] = Segment{A: l.Vertices[i], B: l.Vertices[i+1]}
	}
	return segs
}

// ContainsPoint reports whether p lies on the polyline.
func (l *Polyline) ContainsPoint(p Point) bool {
	for i := 0; i+1 < len(l.Vertices); i++ {
		s := Segment{A: l.Vertices[i], B: l.Vertices[i+1]}
		if cross(s.A, s.B, p) == 0 && onSegment(s, p) {
			return true
		}
	}
	return false
}

// IntersectsRect reports whether any chain segment intersects r.
func (l *Polyline) IntersectsRect(r Rect) bool {
	if !l.Bounds().Intersects(r) {
		return false
	}
	for i := 0; i+1 < len(l.Vertices); i++ {
		if (Segment{A: l.Vertices[i], B: l.Vertices[i+1]}).IntersectsRect(r) {
			return true
		}
	}
	return false
}

// IntersectsGeometry implements the exact intersection test against any other
// geometry via pairwise segment tests (with polygon-interior handling when g
// is a polygon).
func (l *Polyline) IntersectsGeometry(g Geometry) bool {
	return geometriesIntersect(l, g)
}

// Length returns the total chain length.
func (l *Polyline) Length() float64 {
	var sum float64
	for i := 0; i+1 < len(l.Vertices); i++ {
		sum += l.Vertices[i].Dist(l.Vertices[i+1])
	}
	return sum
}

// geometriesIntersect is the shared exact intersection predicate. Two
// geometries intersect iff (a) some pair of segments intersects, or (b) one
// geometry lies entirely inside the other (only possible when the enclosing
// geometry is areal).
func geometriesIntersect(a, b Geometry) bool {
	if !a.Bounds().Intersects(b.Bounds()) {
		return false
	}
	segsA, segsB := a.Segments(), b.Segments()
	for _, sa := range segsA {
		ra := sa.Bounds()
		for _, sb := range segsB {
			if ra.Intersects(sb.Bounds()) && sa.Intersects(sb) {
				return true
			}
		}
	}
	// No boundary crossing: containment is the only remaining case.
	if pa, ok := a.(*Polygon); ok && len(segsB) > 0 {
		if pa.ContainsPoint(segsB[0].A) {
			return true
		}
	}
	if pb, ok := b.(*Polygon); ok && len(segsA) > 0 {
		if pb.ContainsPoint(segsA[0].A) {
			return true
		}
	}
	return false
}
