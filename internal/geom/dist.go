package geom

import (
	"math"
	"sort"
)

// This file implements the exact point-to-geometry distances that refine the
// k-nearest-neighbor query: the R*-tree browses MBRs by Rect.MinDist (the
// optimistic filter bound), and the candidates are ranked by these exact
// distances.

// DistToPoint implements Geometry: the minimum distance from p to the chain,
// zero when p lies on it.
func (l *Polyline) DistToPoint(p Point) float64 {
	best := math.Inf(1)
	for i := 0; i+1 < len(l.Vertices); i++ {
		d := (Segment{A: l.Vertices[i], B: l.Vertices[i+1]}).DistToPoint(p)
		if d < best {
			best = d
		}
	}
	return best
}

// DistToPoint implements Geometry: zero when p lies inside the polygon or on
// its boundary, else the distance to the nearest ring edge.
func (pg *Polygon) DistToPoint(p Point) float64 {
	if pg.ContainsPoint(p) {
		return 0
	}
	best := math.Inf(1)
	n := len(pg.Vertices)
	for i := 0; i < n; i++ {
		s := Segment{A: pg.Vertices[i], B: pg.Vertices[(i+1)%n]}
		if d := s.DistToPoint(p); d < best {
			best = d
		}
	}
	return best
}

// DistToPoint returns the exact distance from p to the decomposed geometry,
// pruning by bucket MBRs: buckets are visited in ascending MinDist order and
// the scan stops once a bucket's optimistic bound exceeds the best exact
// distance found so far. For areal geometries containment short-circuits to
// zero exactly like the underlying polygon.
func (d *Decomposed) DistToPoint(p Point) float64 {
	if pg, ok := d.geom.(*Polygon); ok && pg.ContainsPoint(p) {
		return 0
	}
	order := make([]int, len(d.buckets))
	bounds := make([]float64, len(d.buckets))
	for i := range d.buckets {
		order[i] = i
		bounds[i] = d.buckets[i].bounds.MinDist(p)
	}
	sort.Slice(order, func(a, b int) bool { return bounds[order[a]] < bounds[order[b]] })
	best := math.Inf(1)
	for _, i := range order {
		if bounds[i] > best {
			break
		}
		for _, s := range d.buckets[i].segs {
			if dd := s.DistToPoint(p); dd < best {
				best = dd
			}
		}
	}
	return best
}
