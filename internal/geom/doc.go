// Package geom provides the two-dimensional geometry kernel used by the
// spatial database reproduction: points, rectangles (minimum bounding
// rectangles, MBRs), segments, polylines and polygons, together with the
// predicates (intersection, containment) and the rectangle metrics (area,
// margin, overlap, enlargement) required by the R*-tree (internal/rtree) and
// by exact-geometry query refinement (internal/store, internal/join).
//
// Two specialized facilities sit next to the basic types: the decomposed
// representation (Decomposed, after the TR*-tree of [SK91]) groups a
// geometry's segments into MBR-tagged buckets so exact predicates and the
// point-distance refinement can prune by bucket before touching individual
// segments, and the Hilbert curve (HilbertIndex) supplies the spatial sort
// key used by static global clustering and the reclusterer's rebuilds.
// Rect.MinDist and Geometry.DistToPoint are the optimistic bound and exact
// refinement of the k-NN distance-browsing engine.
//
// All coordinates are float64 in an abstract data space; the experiments use
// the unit square [0,1]².
package geom
