package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestHilbertCorners(t *testing.T) {
	// The curve starts at the origin.
	if got := HilbertIndex(Pt(0, 0)); got != 0 {
		t.Fatalf("index(0,0) = %d", got)
	}
	// All indices lie inside the curve's range.
	max := uint64(1) << (2 * HilbertOrder)
	for _, p := range []Point{{0, 1}, {1, 0}, {1, 1}, {0.5, 0.5}} {
		if got := HilbertIndex(p); got >= max {
			t.Fatalf("index(%v) = %d out of range", p, got)
		}
	}
}

func TestHilbertClamps(t *testing.T) {
	if HilbertIndex(Pt(-3, -3)) != HilbertIndex(Pt(0, 0)) {
		t.Fatal("negative coordinates must clamp to the origin")
	}
	if HilbertIndex(Pt(7, 7)) != HilbertIndex(Pt(1, 1)) {
		t.Fatal("coordinates above 1 must clamp")
	}
}

func TestHilbertDistinctCells(t *testing.T) {
	// A coarse grid of points maps to pairwise distinct indices.
	seen := map[uint64]Point{}
	for i := 0; i < 32; i++ {
		for j := 0; j < 32; j++ {
			p := Pt(float64(i)/32+0.001, float64(j)/32+0.001)
			idx := HilbertIndex(p)
			if q, dup := seen[idx]; dup {
				t.Fatalf("points %v and %v share index %d", p, q, idx)
			}
			seen[idx] = p
		}
	}
}

// TestHilbertLocality checks the property bulk loading relies on: points
// close on the curve are close in space. Walking the curve in index order
// through a sample must yield a short total path compared to random order.
func TestHilbertLocality(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := make([]Point, 512)
	for i := range pts {
		pts[i] = Pt(rng.Float64(), rng.Float64())
	}
	byIndex := append([]Point(nil), pts...)
	for i := 1; i < len(byIndex); i++ {
		for j := i; j > 0 && HilbertIndex(byIndex[j]) < HilbertIndex(byIndex[j-1]); j-- {
			byIndex[j], byIndex[j-1] = byIndex[j-1], byIndex[j]
		}
	}
	pathLen := func(ps []Point) float64 {
		var sum float64
		for i := 1; i < len(ps); i++ {
			sum += ps[i].Dist(ps[i-1])
		}
		return sum
	}
	sorted := pathLen(byIndex)
	random := pathLen(pts)
	if sorted > random/3 {
		t.Fatalf("Hilbert order path %.1f not much shorter than random %.1f", sorted, random)
	}
	// The optimal tour through n random points in the unit square is
	// O(sqrt(n)); the Hilbert tour must be within a small constant of it.
	if bound := 3 * math.Sqrt(float64(len(pts))); sorted > bound {
		t.Fatalf("Hilbert tour %.1f above O(sqrt n) bound %.1f", sorted, bound)
	}
}

// TestHilbertBlockRange checks the contiguity property the shard router's
// range descent relies on: an aligned 2^k x 2^k block covers exactly the
// index interval [lo, hi) returned by HilbertBlockRange.
func TestHilbertBlockRange(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, size := range []uint32{1, 2, 4, 8} {
		for trial := 0; trial < 32; trial++ {
			x := (rng.Uint32() % (HilbertSide / size)) * size
			y := (rng.Uint32() % (HilbertSide / size)) * size
			lo, hi := HilbertBlockRange(x, y, size)
			if hi-lo != uint64(size)*uint64(size) {
				t.Fatalf("block (%d,%d,%d): range size %d", x, y, size, hi-lo)
			}
			min, max := uint64(math.MaxUint64), uint64(0)
			count := 0
			for dx := uint32(0); dx < size; dx++ {
				for dy := uint32(0); dy < size; dy++ {
					d := hilbertD(x+dx, y+dy)
					if d < min {
						min = d
					}
					if d > max {
						max = d
					}
					count++
				}
			}
			if min != lo || max != hi-1 {
				t.Fatalf("block (%d,%d,%d): cells span [%d,%d], want [%d,%d)",
					x, y, size, min, max, lo, hi)
			}
			if count != int(size*size) {
				t.Fatalf("enumerated %d cells", count)
			}
		}
	}
}

// TestHilbertBlockRect checks that the block rectangle covers the preimage of
// its cells: any point whose cell lies in the block must be inside the rect.
func TestHilbertBlockRect(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 2000; trial++ {
		p := Pt(rng.Float64(), rng.Float64())
		cx, cy := HilbertCellOf(p)
		const size = 16
		bx, by := cx/size*size, cy/size*size
		r := HilbertBlockRect(bx, by, size)
		if !r.ContainsPoint(p) {
			t.Fatalf("point %v (cell %d,%d) outside block rect %v", p, cx, cy, r)
		}
	}
	// The top-level block covers the whole unit square.
	if r := HilbertBlockRect(0, 0, HilbertSide); !r.ContainsRect(R(0, 0, 1, 1)) {
		t.Fatalf("root block rect %v does not cover the unit square", r)
	}
}

func TestHilbertRootRange(t *testing.T) {
	lo, hi := HilbertBlockRange(0, 0, HilbertSide)
	if lo != 0 || hi != HilbertRange {
		t.Fatalf("root block range [%d,%d), want [0,%d)", lo, hi, HilbertRange)
	}
}
