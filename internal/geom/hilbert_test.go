package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestHilbertCorners(t *testing.T) {
	// The curve starts at the origin.
	if got := HilbertIndex(Pt(0, 0)); got != 0 {
		t.Fatalf("index(0,0) = %d", got)
	}
	// All indices lie inside the curve's range.
	max := uint64(1) << (2 * HilbertOrder)
	for _, p := range []Point{{0, 1}, {1, 0}, {1, 1}, {0.5, 0.5}} {
		if got := HilbertIndex(p); got >= max {
			t.Fatalf("index(%v) = %d out of range", p, got)
		}
	}
}

func TestHilbertClamps(t *testing.T) {
	if HilbertIndex(Pt(-3, -3)) != HilbertIndex(Pt(0, 0)) {
		t.Fatal("negative coordinates must clamp to the origin")
	}
	if HilbertIndex(Pt(7, 7)) != HilbertIndex(Pt(1, 1)) {
		t.Fatal("coordinates above 1 must clamp")
	}
}

func TestHilbertDistinctCells(t *testing.T) {
	// A coarse grid of points maps to pairwise distinct indices.
	seen := map[uint64]Point{}
	for i := 0; i < 32; i++ {
		for j := 0; j < 32; j++ {
			p := Pt(float64(i)/32+0.001, float64(j)/32+0.001)
			idx := HilbertIndex(p)
			if q, dup := seen[idx]; dup {
				t.Fatalf("points %v and %v share index %d", p, q, idx)
			}
			seen[idx] = p
		}
	}
}

// TestHilbertLocality checks the property bulk loading relies on: points
// close on the curve are close in space. Walking the curve in index order
// through a sample must yield a short total path compared to random order.
func TestHilbertLocality(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := make([]Point, 512)
	for i := range pts {
		pts[i] = Pt(rng.Float64(), rng.Float64())
	}
	byIndex := append([]Point(nil), pts...)
	for i := 1; i < len(byIndex); i++ {
		for j := i; j > 0 && HilbertIndex(byIndex[j]) < HilbertIndex(byIndex[j-1]); j-- {
			byIndex[j], byIndex[j-1] = byIndex[j-1], byIndex[j]
		}
	}
	pathLen := func(ps []Point) float64 {
		var sum float64
		for i := 1; i < len(ps); i++ {
			sum += ps[i].Dist(ps[i-1])
		}
		return sum
	}
	sorted := pathLen(byIndex)
	random := pathLen(pts)
	if sorted > random/3 {
		t.Fatalf("Hilbert order path %.1f not much shorter than random %.1f", sorted, random)
	}
	// The optimal tour through n random points in the unit square is
	// O(sqrt(n)); the Hilbert tour must be within a small constant of it.
	if bound := 3 * math.Sqrt(float64(len(pts))); sorted > bound {
		t.Fatalf("Hilbert tour %.1f above O(sqrt n) bound %.1f", sorted, bound)
	}
}
