package geom

import "math"

// Point is a location in the two-dimensional data space.
type Point struct {
	X, Y float64
}

// Pt is shorthand for constructing a Point.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Sub returns the component-wise difference p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Add returns the component-wise sum p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Scale returns p scaled by f in both dimensions.
func (p Point) Scale(f float64) Point { return Point{p.X * f, p.Y * f} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared Euclidean distance between p and q. It avoids
// the square root where only comparisons are needed.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Eq reports whether p and q are exactly equal.
func (p Point) Eq(q Point) bool { return p.X == q.X && p.Y == q.Y }

// cross returns the z component of the cross product (b-a) × (c-a).
// It is positive if a→b→c turns counter-clockwise, negative if clockwise and
// zero if the three points are collinear.
func cross(a, b, c Point) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}
