// Package router is the scatter-gather tier in front of a sharded cluster
// of internal/server instances.
//
// A Router owns a shard.Map (the Hilbert-range partition) and one typed
// server.Client per shard. It speaks the same HTTP/JSON API as a single
// server, so clients, the load generator and curl cannot tell a cluster
// from one store:
//
//   - Window and point queries scatter to the shards whose Hilbert region
//     overlaps the (pad-expanded) window and merge the answers by ID dedup.
//   - k-NN queries run the wave protocol of shard.NextWave: shards are
//     queried in ascending order of their distance lower bound, each for the
//     full k, and the scatter stops once every unqueried shard's bound
//     strictly exceeds the k-th merged distance — the monotone stop of the
//     best-first leaf traversal lifted to whole shards. A queried shard's
//     answer is complete (it returned its local top k), so no re-query pass
//     is needed.
//   - Mutations route to exactly one shard — the owner of the key's Hilbert
//     center. A route cache (object ID → shard, populated by inserts and
//     updates that passed through the router) pins deletes and cross-shard
//     updates to the owning store; IDs never routed through the router
//     (data bulk-built shard-side) fall back to a broadcast delete.
//   - /recluster and /flush broadcast, so per-shard WAL and maintenance ride
//     the existing machinery unchanged; /stats and /metrics aggregate the
//     shards' answers next to the router's own counters.
//
// Transient shard failures (429 admission rejections, connection resets) are
// absorbed by the clients' retry/backoff; a shard failure that survives the
// retries surfaces as 502 (or the shard's own 429) to the caller.
package router
