package router

import (
	"fmt"
	"net/http"
	"sort"
	"time"

	"spatialcluster/internal/obs"
)

// Prometheus exposition of the router's /metrics. Only the router's own
// families appear here — a scrape must stay cheap and local, so the
// per-shard /metrics bodies (which the JSON view aggregates) are left to the
// shards' own scrape targets. The sdbrouter_* namespace keeps router series
// from colliding with the sdb_* series of the shards on a shared dashboard.

const promContentType = "text/plain; version=0.0.4; charset=utf-8"

func (rt *Router) writeProm(w http.ResponseWriter) {
	w.Header().Set("Content-Type", promContentType)

	obs.PromHead(w, "sdbrouter_info", "Served partition.", "gauge")
	obs.PromSample(w, "sdbrouter_info", [][2]string{{"partition", rt.pmap.String()}}, 1)
	obs.PromHead(w, "sdbrouter_uptime_seconds", "Seconds since the router started.", "gauge")
	obs.PromSample(w, "sdbrouter_uptime_seconds", nil, time.Since(rt.start).Seconds())
	obs.PromHead(w, "sdbrouter_shards", "Shards in the partition.", "gauge")
	obs.PromSample(w, "sdbrouter_shards", nil, float64(rt.pmap.N()))

	// Endpoint families walk a sorted path list so the exposition is
	// deterministic (sync.Map ranges in random order).
	var paths []string
	rt.endpoints.Range(func(k, _ any) bool {
		paths = append(paths, k.(string))
		return true
	})
	sort.Strings(paths)
	obs.PromHead(w, "sdbrouter_requests_total", "Completed requests by endpoint.", "counter")
	for _, p := range paths {
		c := rt.counter(p)
		obs.PromSample(w, "sdbrouter_requests_total", [][2]string{{"endpoint", p}}, float64(c.count.Load()))
	}
	obs.PromHead(w, "sdbrouter_request_errors_total", "4xx/5xx answers by endpoint.", "counter")
	for _, p := range paths {
		c := rt.counter(p)
		obs.PromSample(w, "sdbrouter_request_errors_total", [][2]string{{"endpoint", p}}, float64(c.errors.Load()))
	}
	obs.PromHead(w, "sdbrouter_requests_rejected_total", "429 admission rejections by endpoint.", "counter")
	for _, p := range paths {
		c := rt.counter(p)
		obs.PromSample(w, "sdbrouter_requests_rejected_total", [][2]string{{"endpoint", p}}, float64(c.rejected.Load()))
	}
	obs.PromHead(w, "sdbrouter_request_duration_seconds", "Request latency by endpoint.", "histogram")
	for _, p := range paths {
		c := rt.counter(p)
		obs.PromHistogram(w, "sdbrouter_request_duration_seconds", [][2]string{{"endpoint", p}}, c.hist.Snapshot())
	}

	obs.PromHead(w, "sdbrouter_in_flight", "Requests currently admitted.", "gauge")
	obs.PromSample(w, "sdbrouter_in_flight", nil, float64(len(rt.inflight)))
	obs.PromHead(w, "sdbrouter_max_in_flight", "Admission limit.", "gauge")
	obs.PromSample(w, "sdbrouter_max_in_flight", nil, float64(rt.cfg.MaxInFlight))
	obs.PromHead(w, "sdbrouter_routed_ids", "Object IDs in the route cache.", "gauge")
	obs.PromSample(w, "sdbrouter_routed_ids", nil, float64(rt.routeSize()))

	// Per-shard families, labelled by shard address.
	obs.PromHead(w, "sdbrouter_shard_requests_total", "Typed-client exchanges by shard.", "counter")
	for i := range rt.shardObs {
		obs.PromSample(w, "sdbrouter_shard_requests_total",
			[][2]string{{"shard", rt.addrs[i]}}, float64(rt.shardObs[i].calls.Load()))
	}
	obs.PromHead(w, "sdbrouter_shard_errors_total",
		"Failed shard exchanges (after client retries) by shard.", "counter")
	for i := range rt.shardObs {
		obs.PromSample(w, "sdbrouter_shard_errors_total",
			[][2]string{{"shard", rt.addrs[i]}}, float64(rt.shardObs[i].errors.Load()))
	}
	obs.PromHead(w, "sdbrouter_shard_duration_seconds", "Shard exchange latency by shard.", "histogram")
	for i := range rt.shardObs {
		obs.PromHistogram(w, "sdbrouter_shard_duration_seconds",
			[][2]string{{"shard", rt.addrs[i]}}, rt.shardObs[i].hist.Snapshot())
	}
	obs.PromHead(w, "sdbrouter_shard_attempts_total",
		"Request attempts by the shard clients (first tries included).", "counter")
	for i, c := range rt.shards {
		obs.PromSample(w, "sdbrouter_shard_attempts_total",
			[][2]string{{"shard", rt.addrs[i]}}, float64(c.Counters.Stats().Attempts))
	}
	obs.PromHead(w, "sdbrouter_shard_retries_total",
		"Retried shard requests by shard and cause.", "counter")
	for i, c := range rt.shards {
		st := c.Counters.Stats()
		obs.PromSample(w, "sdbrouter_shard_retries_total",
			[][2]string{{"shard", rt.addrs[i]}, {"cause", "overload"}}, float64(st.RetriedOverload))
		obs.PromSample(w, "sdbrouter_shard_retries_total",
			[][2]string{{"shard", rt.addrs[i]}, {"cause", "conn"}}, float64(st.RetriedConn))
	}

	rt.writePromFanout(w)

	obs.PromHead(w, "sdbrouter_knn_queries_total", "Wave-ordered k-NN scatters run.", "counter")
	obs.PromSample(w, "sdbrouter_knn_queries_total", nil, float64(rt.knnQueries.Load()))
	obs.PromHead(w, "sdbrouter_knn_waves_total", "k-NN scatter waves run.", "counter")
	obs.PromSample(w, "sdbrouter_knn_waves_total", nil, float64(rt.knnWaves.Load()))

	obs.PromHead(w, "sdbrouter_slowlog_total", "Slow-query log entries ever recorded.", "counter")
	obs.PromSample(w, "sdbrouter_slowlog_total", nil, float64(rt.slow.Total()))
}

// writePromFanout renders the scatter-width counters as a histogram whose
// buckets are exact widths: le="w" counts scatters touching at most w shards.
func (rt *Router) writePromFanout(w http.ResponseWriter) {
	obs.PromHead(w, "sdbrouter_fanout_shards", "Shards touched per scatter operation.", "histogram")
	counts := rt.fanoutCounts()
	var cum, sum int64
	for width, n := range counts {
		cum += n
		sum += int64(width) * n
		fmt.Fprintf(w, "sdbrouter_fanout_shards_bucket{le=\"%d\"} %d\n", width, cum)
	}
	fmt.Fprintf(w, "sdbrouter_fanout_shards_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "sdbrouter_fanout_shards_sum %d\n", sum)
	fmt.Fprintf(w, "sdbrouter_fanout_shards_count %d\n", cum)
}
