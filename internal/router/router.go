package router

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"spatialcluster/internal/geom"
	"spatialcluster/internal/object"
	"spatialcluster/internal/obs"
	"spatialcluster/internal/server"
	"spatialcluster/internal/shard"
)

// Config tunes a Router. The zero value serves with the server's defaults.
type Config struct {
	// MaxInFlight bounds admitted requests; excess requests are answered
	// with 429 immediately (default 256). Shard-side admission still
	// applies per shard underneath.
	MaxInFlight int
	// SlowLogMS is the slow-query log threshold in milliseconds: every
	// routed request at least this slow is kept in the /debug/slowlog ring
	// together with the slowest shard it touched. Zero selects the 250 ms
	// default; negative disables the log.
	SlowLogMS float64
	// Pprof mounts net/http/pprof under /debug/pprof/ on the handler tree.
	// Off by default, as on the shard daemons.
	Pprof bool
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 256
	}
	return c
}

// Router scatters the single-store HTTP API across a sharded cluster.
// Create it with New and mount Handler on an http.Server. A Router has no
// background goroutines and nothing to shut down; the shards it fronts are
// owned by their own daemons.
type Router struct {
	cfg    Config
	pmap   *shard.Map
	shards []*server.Client
	addrs  []string
	start  time.Time

	inflight chan struct{}

	// route remembers which shard owns an object ID that was inserted or
	// updated through the router, so deletes and cross-shard updates hit
	// exactly one store. IDs bulk-built shard-side are not in it; deletes
	// of those fall back to a broadcast.
	routeMu sync.RWMutex
	route   map[uint64]int

	endpoints sync.Map // path -> *epCounter
	shardObs  []shardCounters
	slow      *obs.SlowLog

	// fanout[w] counts scatter operations that touched exactly w shards
	// (index 0 covers degenerate empty scatters). knnWaves counts the
	// wave rounds the wave-ordered k-NN scatter ran.
	fanout     []atomic.Int64
	knnQueries atomic.Int64
	knnWaves   atomic.Int64
}

type epCounter struct {
	count, errors, rejected, totalNS atomic.Int64
	hist                             obs.Histogram
}

// shardCounters tracks the router's view of one shard: every typed-client
// exchange (queries, mutations, control), its latency, and its failures
// after the client's retries gave up.
type shardCounters struct {
	calls, errors atomic.Int64
	hist          obs.Histogram
}

// New builds a router over one typed client per shard of the partition.
// The clients should carry a Retry configuration — the router leans on it
// to absorb transient shard failures. Clients without retry counters get a
// fresh set attached, so /metrics can report retries per shard.
func New(pmap *shard.Map, shards []*server.Client, cfg Config) (*Router, error) {
	if len(shards) != pmap.N() {
		return nil, fmt.Errorf("router: %d clients for %d shards", len(shards), pmap.N())
	}
	addrs := make([]string, len(shards))
	for i, c := range shards {
		addrs[i] = c.Base
		if c.Counters == nil {
			c.Counters = &server.RetryCounters{}
		}
	}
	cfg = cfg.withDefaults()
	slowThreshold := time.Duration(cfg.SlowLogMS * float64(time.Millisecond))
	if cfg.SlowLogMS == 0 {
		slowThreshold = 250 * time.Millisecond
	}
	return &Router{
		cfg:      cfg,
		pmap:     pmap,
		shards:   shards,
		addrs:    addrs,
		start:    time.Now(),
		inflight: make(chan struct{}, cfg.MaxInFlight),
		route:    make(map[uint64]int),
		shardObs: make([]shardCounters, len(shards)),
		slow:     obs.NewSlowLog(slowThreshold, 128),
		fanout:   make([]atomic.Int64, len(shards)+1),
	}, nil
}

// Map exposes the partition the router serves.
func (rt *Router) Map() *shard.Map { return rt.pmap }

// Handler returns the HTTP handler tree — the same paths a single server
// mounts, minus the quiesced snapshot endpoints (each shard daemon owns its
// own /save and /load).
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query/window", rt.admitted(rt.handleWindow))
	mux.HandleFunc("/query/point", rt.admitted(rt.handlePoint))
	mux.HandleFunc("/query/knn", rt.admitted(rt.handleKNN))
	mux.HandleFunc("/insert", rt.admitted(rt.handleInsert))
	mux.HandleFunc("/update", rt.admitted(rt.handleUpdate))
	mux.HandleFunc("/delete", rt.admitted(rt.handleDelete))
	mux.HandleFunc("/bin/window", rt.admitted(rt.handleBinWindow))
	mux.HandleFunc("/bin/point", rt.admitted(rt.handleBinPoint))
	mux.HandleFunc("/bin/knn", rt.admitted(rt.handleBinKNN))
	mux.HandleFunc("/bin/insert", rt.admitted(rt.handleBinInsert))
	mux.HandleFunc("/bin/update", rt.admitted(rt.handleBinUpdate))
	mux.HandleFunc("/bin/delete", rt.admitted(rt.handleBinDelete))
	mux.HandleFunc("/recluster", rt.admitted(rt.handleRecluster))
	mux.HandleFunc("/flush", rt.admitted(rt.handleFlush))
	mux.HandleFunc("/stats", rt.observed(rt.handleStats))
	mux.HandleFunc("/metrics", rt.observed(rt.handleMetrics))
	mux.HandleFunc("/shards", rt.observed(rt.handleShards))
	mux.HandleFunc("/debug/slowlog", rt.observed(rt.handleSlowLog))
	mux.HandleFunc("/healthz", rt.handleHealthz)
	mux.HandleFunc("/readyz", rt.handleReadyz)
	if rt.cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// statusRecorder captures the response status for the metrics counters and
// the slowest shard a scatter touched for the slow-query log (the scatter
// cores hand it over through reqObs.finish).
type statusRecorder struct {
	http.ResponseWriter
	status int
	shard  string
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

func (rt *Router) counter(path string) *epCounter {
	if c, ok := rt.endpoints.Load(path); ok {
		return c.(*epCounter)
	}
	c, _ := rt.endpoints.LoadOrStore(path, &epCounter{})
	return c.(*epCounter)
}

func (rt *Router) instrument(path string, w http.ResponseWriter, r *http.Request, fn http.HandlerFunc) {
	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	start := time.Now()
	fn(rec, r)
	d := time.Since(start)
	c := rt.counter(path)
	c.count.Add(1)
	c.totalNS.Add(d.Nanoseconds())
	c.hist.Observe(d)
	if rec.status >= 400 {
		c.errors.Add(1)
	}
	rt.slow.Note(obs.SlowEntry{
		Endpoint: path,
		Status:   rec.status,
		Time:     start,
		WallMS:   d.Seconds() * 1000,
		Shard:    rec.shard,
	})
}

// admitted mirrors the server's admission control: bounded concurrency,
// immediate 429 past the bound.
func (rt *Router) admitted(fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "%s needs POST", r.URL.Path)
			return
		}
		select {
		case rt.inflight <- struct{}{}:
		default:
			rt.counter(r.URL.Path).rejected.Add(1)
			writeError(w, http.StatusTooManyRequests,
				"router overloaded: %d requests in flight", rt.cfg.MaxInFlight)
			return
		}
		defer func() { <-rt.inflight }()
		rt.instrument(r.URL.Path, w, r, fn)
	}
}

func (rt *Router) observed(fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "%s needs GET", r.URL.Path)
			return
		}
		rt.instrument(r.URL.Path, w, r, fn)
	}
}

// traceFor starts a trace when the request asked for one with ?trace=1,
// adopting a trace ID propagated in server.TraceIDHeader — the same contract
// the shards honor, so a traced request nests through any number of tiers.
func traceFor(r *http.Request) *obs.Trace {
	if v := r.URL.Query().Get("trace"); v != "" && v != "0" {
		if h := r.Header.Get(server.TraceIDHeader); h != "" {
			if id, err := strconv.ParseUint(h, 10, 64); err == nil {
				return obs.NewTraceWithID(id)
			}
		}
		return obs.NewTrace()
	}
	return nil
}

func traceInfo(tr *obs.Trace) *server.TraceInfo {
	if tr == nil {
		return nil
	}
	return &server.TraceInfo{TraceID: tr.ID(), TotalMS: tr.TotalMS(), Spans: tr.Spans()}
}

// scatter runs fn for every listed shard concurrently and returns the
// lowest-indexed failure (deterministic when several shards fail at once).
func (rt *Router) scatter(targets []int, fn func(s int) error) (int, error) {
	if len(targets) == 1 {
		return targets[0], fn(targets[0])
	}
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for i, s := range targets {
		wg.Add(1)
		go func(i, s int) {
			defer wg.Done()
			errs[i] = fn(s)
		}(i, s)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return targets[i], err
		}
	}
	return -1, nil
}

// reqObs carries one routed request's observability: per-shard latency and
// error accounting, the slowest shard for the slow-query log, the fan-out
// width, and — when the request is traced — the assembling span tree.
type reqObs struct {
	rt *Router
	tr *obs.Trace // nil when the request is untraced

	mu           sync.Mutex
	fanout       int
	slowestNS    int64
	slowestShard int
}

func (rt *Router) newReqObs(tr *obs.Trace) *reqObs {
	return &reqObs{rt: rt, tr: tr, slowestShard: -1}
}

// callShard runs one shard exchange under full accounting. fn returns the
// shard's sub-trace (nil when untraced or the answer doesn't carry one); the
// sub-trace is grafted under a fresh shard[i] span parented to parent, with
// its span starts rebased to this trace's clock.
func (ro *reqObs) callShard(s int, parent uint32, fn func() (*server.TraceInfo, error)) error {
	start := time.Now()
	ti, err := fn()
	d := time.Since(start)
	sc := &ro.rt.shardObs[s]
	sc.calls.Add(1)
	sc.hist.Observe(d)
	if err != nil {
		sc.errors.Add(1)
	}
	ro.mu.Lock()
	ro.fanout++
	if d.Nanoseconds() > ro.slowestNS || ro.slowestShard < 0 {
		ro.slowestNS = d.Nanoseconds()
		ro.slowestShard = s
	}
	ro.mu.Unlock()
	if ro.tr != nil && err == nil {
		id := ro.tr.NewSpanID()
		ro.tr.ObserveAs(id, parent, fmt.Sprintf("shard[%d]", s), start, d, int64(s), 0, nil)
		if ti != nil {
			ro.tr.Graft(id, start.Sub(ro.tr.Start()).Seconds()*1000, ti.Spans)
		}
	}
	return err
}

// finish records the fan-out width and hands the slowest shard to the
// instrumented wrapper's recorder for the slow-query log.
func (ro *reqObs) finish(w http.ResponseWriter) {
	ro.rt.noteFanout(ro.fanout)
	if ro.slowestShard >= 0 {
		if rec, ok := w.(*statusRecorder); ok {
			rec.shard = ro.rt.addrs[ro.slowestShard]
		}
	}
}

func (rt *Router) noteFanout(width int) {
	if width >= len(rt.fanout) {
		width = len(rt.fanout) - 1
	}
	if width < 0 {
		width = 0
	}
	rt.fanout[width].Add(1)
}

// timeShard is callShard without a request context: mutation and control
// exchanges still feed the per-shard histograms and error counters.
func (rt *Router) timeShard(s int, fn func() error) error {
	start := time.Now()
	err := fn()
	sc := &rt.shardObs[s]
	sc.calls.Add(1)
	sc.hist.Observe(time.Since(start))
	if err != nil {
		sc.errors.Add(1)
	}
	return err
}

func (rt *Router) allShards() []int {
	out := make([]int, rt.pmap.N())
	for i := range out {
		out[i] = i
	}
	return out
}

func (rt *Router) getRoute(id uint64) (int, bool) {
	rt.routeMu.RLock()
	defer rt.routeMu.RUnlock()
	s, ok := rt.route[id]
	return s, ok
}

func (rt *Router) setRoute(id uint64, s int) {
	rt.routeMu.Lock()
	rt.route[id] = s
	rt.routeMu.Unlock()
}

func (rt *Router) delRoute(id uint64) {
	rt.routeMu.Lock()
	delete(rt.route, id)
	rt.routeMu.Unlock()
}

func (rt *Router) routeSize() int {
	rt.routeMu.RLock()
	defer rt.routeMu.RUnlock()
	return len(rt.route)
}

// mergeQuery combines per-shard window/point answers: ID dedup (shards own
// disjoint sets, so this is belt-and-braces), ascending ID order for a
// deterministic wire answer, candidates summed.
func mergeQuery(resps []server.QueryResponse) server.QueryResponse {
	seen := make(map[uint64]bool)
	out := server.QueryResponse{IDs: []uint64{}}
	for _, r := range resps {
		out.Candidates += r.Candidates
		for _, id := range r.IDs {
			if !seen[id] {
				seen[id] = true
				out.IDs = append(out.IDs, id)
			}
		}
	}
	sort.Slice(out.IDs, func(a, b int) bool { return out.IDs[a] < out.IDs[b] })
	return out
}

// The scatter/merge cores below operate on engine-typed values and speak to
// the shards through the typed client methods, so the JSON and binary
// handlers share one routing semantics — and a Binary shard client carries
// the whole path end to end over the compact encoding. Each core returns the
// merged answer, or the failing shard index with its error. A non-nil trace
// on the reqObs rides to every shard (over whichever protocol the client
// speaks) and comes back as one tree: a scatter span whose Count is the
// fan-out width, one shard[i] child per shard touched with that shard's own
// queue/execute sub-trace grafted beneath it, and a merge span.

// scatterWindow runs a window query on every overlapping shard and merges.
func (rt *Router) scatterWindow(win geom.Rect, tech string, ro *reqObs) (server.QueryResponse, int, error) {
	targets := rt.pmap.Overlapping(win)
	resps := make([]server.QueryResponse, len(targets))
	idx := make(map[int]int, len(targets))
	for i, s := range targets {
		idx[s] = i
	}
	var scatterID uint32
	if ro.tr != nil {
		scatterID = ro.tr.NewSpanID()
	}
	scatterStart := time.Now()
	if s, err := rt.scatter(targets, func(s int) error {
		return ro.callShard(s, scatterID, func() (*server.TraceInfo, error) {
			var (
				resp server.QueryResponse
				err  error
			)
			if ro.tr != nil {
				resp, err = rt.shards[s].WindowTracedID(win, tech, ro.tr.ID())
			} else {
				resp, err = rt.shards[s].Window(win, tech)
			}
			resps[idx[s]] = resp
			return resp.Trace, err
		})
	}); err != nil {
		return server.QueryResponse{}, s, err
	}
	if ro.tr != nil {
		ro.tr.ObserveAs(scatterID, 0, "scatter", scatterStart, time.Since(scatterStart),
			int64(len(targets)), 0, nil)
	}
	mergeStart := time.Now()
	out := mergeQuery(resps)
	ro.tr.Observe("merge", mergeStart, time.Since(mergeStart))
	return out, -1, nil
}

// scatterPoint runs a point query on every shard whose region holds p.
func (rt *Router) scatterPoint(p geom.Point, ro *reqObs) (server.QueryResponse, int, error) {
	targets := rt.pmap.Overlapping(geom.RectFromPoint(p))
	resps := make([]server.QueryResponse, len(targets))
	idx := make(map[int]int, len(targets))
	for i, s := range targets {
		idx[s] = i
	}
	var scatterID uint32
	if ro.tr != nil {
		scatterID = ro.tr.NewSpanID()
	}
	scatterStart := time.Now()
	if s, err := rt.scatter(targets, func(s int) error {
		return ro.callShard(s, scatterID, func() (*server.TraceInfo, error) {
			var (
				resp server.QueryResponse
				err  error
			)
			if ro.tr != nil {
				resp, err = rt.shards[s].PointTracedID(p, ro.tr.ID())
			} else {
				resp, err = rt.shards[s].Point(p)
			}
			resps[idx[s]] = resp
			return resp.Trace, err
		})
	}); err != nil {
		return server.QueryResponse{}, s, err
	}
	if ro.tr != nil {
		ro.tr.ObserveAs(scatterID, 0, "scatter", scatterStart, time.Since(scatterStart),
			int64(len(targets)), 0, nil)
	}
	mergeStart := time.Now()
	out := mergeQuery(resps)
	ro.tr.Observe("merge", mergeStart, time.Since(mergeStart))
	return out, -1, nil
}

// maxFinite guards the wave Bound against the merger's +Inf "unbounded"
// sentinel, which JSON cannot carry.
const maxFinite = 1e300

// scatterKNN runs the wave-ordered k-NN scatter: nearest shards first, wider
// waves only while they could still improve the k-th distance. Each wave gets
// its own wave[i] span under the scatter span, carrying the wave's width as
// Count and the global k-th-distance bound after merging the wave as Bound.
func (rt *Router) scatterKNN(p geom.Point, k int, ro *reqObs) (server.KNNResponse, int, error) {
	rt.knnQueries.Add(1)
	bounds := rt.pmap.ShardDists(p)
	queried := make([]bool, rt.pmap.N())
	merger := shard.NewKNNMerger(k)
	candidates := 0
	var scatterID uint32
	if ro.tr != nil {
		scatterID = ro.tr.NewSpanID()
	}
	scatterStart := time.Now()
	touched := 0
	waveNo := 0
	for wave := shard.NextWave(bounds, queried, merger); wave != nil; wave = shard.NextWave(bounds, queried, merger) {
		rt.knnWaves.Add(1)
		waveStart := time.Now()
		var waveID uint32
		if ro.tr != nil {
			waveID = ro.tr.NewSpanID()
		}
		resps := make([]server.KNNResponse, len(wave))
		idx := make(map[int]int, len(wave))
		for i, s := range wave {
			idx[s] = i
			queried[s] = true
		}
		if s, err := rt.scatter(wave, func(s int) error {
			return ro.callShard(s, waveID, func() (*server.TraceInfo, error) {
				var (
					resp server.KNNResponse
					err  error
				)
				if ro.tr != nil {
					resp, err = rt.shards[s].KNNTracedID(p, k, ro.tr.ID())
				} else {
					resp, err = rt.shards[s].KNN(p, k)
				}
				resps[idx[s]] = resp
				return resp.Trace, err
			})
		}); err != nil {
			return server.KNNResponse{}, s, err
		}
		for _, resp := range resps {
			candidates += resp.Candidates
			for i := range resp.IDs {
				merger.Add(resp.IDs[i], resp.Dists[i])
			}
		}
		if ro.tr != nil {
			// Bound stays zero until the merger holds k hits — its +Inf
			// "unbounded" sentinel has no JSON encoding.
			bound := 0.0
			if b := merger.Bound(); b < maxFinite {
				bound = b
			}
			ro.tr.ObserveAs(waveID, scatterID, fmt.Sprintf("wave[%d]", waveNo),
				waveStart, time.Since(waveStart), int64(len(wave)), bound, nil)
		}
		touched += len(wave)
		waveNo++
	}
	if ro.tr != nil {
		ro.tr.ObserveAs(scatterID, 0, "scatter", scatterStart, time.Since(scatterStart),
			int64(touched), 0, nil)
	}
	mergeStart := time.Now()
	ids, dists := merger.Results()
	out := server.KNNResponse{IDs: ids, Dists: dists, Candidates: candidates}
	ro.tr.Observe("merge", mergeStart, time.Since(mergeStart))
	return out, -1, nil
}

func (rt *Router) handleWindow(w http.ResponseWriter, r *http.Request) {
	var req server.WindowRequest
	if err := readJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	win := geom.R(req.Window[0], req.Window[1], req.Window[2], req.Window[3])
	ro := rt.newReqObs(traceFor(r))
	out, s, err := rt.scatterWindow(win, req.Tech, ro)
	ro.finish(w)
	if err != nil {
		rt.shardError(w, s, err)
		return
	}
	out.Trace = traceInfo(ro.tr)
	writeJSON(w, http.StatusOK, out)
}

func (rt *Router) handlePoint(w http.ResponseWriter, r *http.Request) {
	var req server.PointRequest
	if err := readJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ro := rt.newReqObs(traceFor(r))
	out, s, err := rt.scatterPoint(geom.Pt(req.Point[0], req.Point[1]), ro)
	ro.finish(w)
	if err != nil {
		rt.shardError(w, s, err)
		return
	}
	out.Trace = traceInfo(ro.tr)
	writeJSON(w, http.StatusOK, out)
}

func (rt *Router) handleKNN(w http.ResponseWriter, r *http.Request) {
	var req server.KNNRequest
	if err := readJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.K < 1 {
		writeError(w, http.StatusBadRequest, "k must be positive, got %d", req.K)
		return
	}
	ro := rt.newReqObs(traceFor(r))
	out, s, err := rt.scatterKNN(geom.Pt(req.Point[0], req.Point[1]), req.K, ro)
	ro.finish(w)
	if err != nil {
		rt.shardError(w, s, err)
		return
	}
	out.Trace = traceInfo(ro.tr)
	writeJSON(w, http.StatusOK, out)
}

// keyOf resolves an insert/update request's routing key: the explicit key if
// the request names one, else the vertex bounding box — the same default the
// shard itself will apply.
func keyOf(req server.InsertRequest) (geom.Rect, error) {
	if req.Key != nil {
		return geom.R(req.Key[0], req.Key[1], req.Key[2], req.Key[3]), nil
	}
	if len(req.Object.Vertices) == 0 {
		return geom.Rect{}, errors.New("object has no vertices and no key")
	}
	pts := make([]geom.Point, len(req.Object.Vertices))
	for i, v := range req.Object.Vertices {
		pts[i] = geom.Pt(v[0], v[1])
	}
	return geom.BoundingRect(pts), nil
}

// insertCore places an object on the shard owning its key.
func (rt *Router) insertCore(o *object.Object, key geom.Rect) (int, error) {
	rt.pmap.Observe(key)
	s := rt.pmap.ShardOfKey(key)
	if err := rt.timeShard(s, func() error { return rt.shards[s].Insert(o, key) }); err != nil {
		return s, err
	}
	rt.setRoute(uint64(o.ID), s)
	return -1, nil
}

// updateCore replaces an object wherever it lives. An update is a no-op when
// the object exists nowhere (shard stores do not upsert), so a cross-shard
// move must first prove the object alive by deleting its old copy — only
// then is it re-created at the target.
func (rt *Router) updateCore(o *object.Object, key geom.Rect) (server.MutateResponse, int, error) {
	rt.pmap.Observe(key)
	target := rt.pmap.ShardOfKey(key)
	id := uint64(o.ID)
	prev, known := rt.getRoute(id)
	if known && prev != target {
		var existed bool
		err := rt.timeShard(prev, func() error {
			var err error
			existed, err = rt.shards[prev].Delete(o.ID)
			return err
		})
		if err != nil {
			return server.MutateResponse{}, prev, err
		}
		if existed {
			if err := rt.timeShard(target, func() error { return rt.shards[target].Insert(o, key) }); err != nil {
				return server.MutateResponse{}, target, err
			}
			rt.setRoute(id, target)
			return server.MutateResponse{Existed: true}, -1, nil
		}
		known = false // the cache was stale; fall through to the cold path
	}
	if !known {
		// Never routed through us (bulk-built shard-side, or the cache is
		// cold): the live copy may sit on any shard. Delete everywhere but
		// the target; a hit means the object moved — re-create it there.
		others := make([]int, 0, rt.pmap.N()-1)
		for i := 0; i < rt.pmap.N(); i++ {
			if i != target {
				others = append(others, i)
			}
		}
		dels := make([]bool, rt.pmap.N())
		if len(others) > 0 {
			if s, err := rt.scatter(others, func(s int) error {
				return rt.timeShard(s, func() error {
					existed, err := rt.shards[s].Delete(o.ID)
					dels[s] = existed
					return err
				})
			}); err != nil {
				return server.MutateResponse{}, s, err
			}
		}
		for _, d := range dels {
			if d {
				if err := rt.timeShard(target, func() error { return rt.shards[target].Insert(o, key) }); err != nil {
					return server.MutateResponse{}, target, err
				}
				rt.setRoute(id, target)
				return server.MutateResponse{Existed: true}, -1, nil
			}
		}
	}
	// The object lives at the target or nowhere; the shard decides which.
	var existed bool
	err := rt.timeShard(target, func() error {
		var err error
		existed, err = rt.shards[target].Update(o, key)
		return err
	})
	if err != nil {
		return server.MutateResponse{}, target, err
	}
	if existed {
		rt.setRoute(id, target)
	} else {
		rt.delRoute(id)
	}
	return server.MutateResponse{Existed: existed}, -1, nil
}

// deleteCore removes an object: one call when the route cache knows its
// shard, a broadcast when only that can find it (or prove it absent).
func (rt *Router) deleteCore(id uint64) (bool, int, error) {
	existed := false
	if s, ok := rt.getRoute(id); ok {
		err := rt.timeShard(s, func() error {
			ex, err := rt.shards[s].Delete(object.ID(id))
			existed = ex
			return err
		})
		if err != nil {
			return false, s, err
		}
	} else {
		outs := make([]bool, rt.pmap.N())
		if s, err := rt.scatter(rt.allShards(), func(s int) error {
			return rt.timeShard(s, func() error {
				ex, err := rt.shards[s].Delete(object.ID(id))
				outs[s] = ex
				return err
			})
		}); err != nil {
			return false, s, err
		}
		for _, ex := range outs {
			existed = existed || ex
		}
	}
	rt.delRoute(id)
	return existed, -1, nil
}

func (rt *Router) handleInsert(w http.ResponseWriter, r *http.Request) {
	var req server.InsertRequest
	if err := readJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	o, err := req.Object.ToObject()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	key, err := keyOf(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if s, err := rt.insertCore(o, key); err != nil {
		rt.shardError(w, s, err)
		return
	}
	writeJSON(w, http.StatusOK, server.MutateResponse{})
}

func (rt *Router) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var req server.InsertRequest
	if err := readJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	o, err := req.Object.ToObject()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	key, err := keyOf(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	out, s, err := rt.updateCore(o, key)
	if err != nil {
		rt.shardError(w, s, err)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

func (rt *Router) handleDelete(w http.ResponseWriter, r *http.Request) {
	var req server.DeleteRequest
	if err := readJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	existed, s, err := rt.deleteCore(req.ID)
	if err != nil {
		rt.shardError(w, s, err)
		return
	}
	writeJSON(w, http.StatusOK, server.MutateResponse{Existed: existed})
}

func (rt *Router) handleRecluster(w http.ResponseWriter, r *http.Request) {
	var req server.ReclusterRequest
	if err := readJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	outs := make([]server.ReclusterResponse, rt.pmap.N())
	if s, err := rt.scatter(rt.allShards(), func(s int) error {
		return rt.shards[s].Post("/recluster", req, &outs[s])
	}); err != nil {
		rt.shardError(w, s, err)
		return
	}
	var agg server.ReclusterResponse
	for _, o := range outs {
		agg.RepackedUnits += o.RepackedUnits
		agg.Rebuilt = agg.Rebuilt || o.Rebuilt
		if agg.Note == "" {
			agg.Note = o.Note
		}
	}
	writeJSON(w, http.StatusOK, agg)
}

func (rt *Router) handleFlush(w http.ResponseWriter, r *http.Request) {
	if s, err := rt.scatter(rt.allShards(), func(s int) error {
		return rt.shards[s].Flush()
	}); err != nil {
		rt.shardError(w, s, err)
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	stats := make([]server.StatsResponse, rt.pmap.N())
	if s, err := rt.scatter(rt.allShards(), func(s int) error {
		st, err := rt.shards[s].Stats()
		stats[s] = st
		return err
	}); err != nil {
		rt.shardError(w, s, err)
		return
	}
	out := StatsResponse{Shards: rt.pmap.N(), PerShard: stats}
	for _, st := range stats {
		out.Objects += st.Objects
		out.Units += st.Units
		out.Bytes += st.ObjectBytes
	}
	writeJSON(w, http.StatusOK, out)
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if server.PromWanted(r) {
		// The exposition view is the router's own families only — a scrape
		// must not fan out to every shard on every pull (each shard exposes
		// its own /metrics); the JSON view keeps the aggregated cluster sums.
		rt.writeProm(w)
		return
	}
	ms := make([]server.Metrics, rt.pmap.N())
	if s, err := rt.scatter(rt.allShards(), func(s int) error {
		m, err := rt.shards[s].Metrics()
		ms[s] = m
		return err
	}); err != nil {
		rt.shardError(w, s, err)
		return
	}
	px, py := rt.pmap.Pad()
	out := MetricsResponse{
		Shards:      rt.pmap.N(),
		Partition:   rt.pmap.String(),
		PadX:        px,
		PadY:        py,
		Uptime:      time.Since(rt.start).Seconds(),
		RoutedIDs:   rt.routeSize(),
		InFlight:    len(rt.inflight),
		MaxInFlight: rt.cfg.MaxInFlight,
		KNNQueries:  rt.knnQueries.Load(),
		KNNWaves:    rt.knnWaves.Load(),
		Fanout:      rt.fanoutCounts(),
		SlowLogMS:   rt.slow.Threshold().Seconds() * 1000,
		SlowLog:     rt.slow.Total(),
		Router:      make(map[string]EndpointMetrics),
		ShardTier:   rt.shardTierMetrics(),
		PerShard:    ms,
	}
	for _, m := range ms {
		out.Objects += m.Storage.Objects
		out.ModelIOSec += m.ModelIOSec
		out.Batches += m.Batches
		out.BatchedJobs += m.BatchedJobs
		out.Rejected += m.Rejected
		out.BufferHits += m.BufferHits
		out.BufferMisses += m.BufferMisses
	}
	rt.endpoints.Range(func(k, v any) bool {
		c := v.(*epCounter)
		hs := c.hist.Snapshot()
		ep := EndpointMetrics{
			Count:    c.count.Load(),
			Errors:   c.errors.Load(),
			Rejected: c.rejected.Load(),
			TotalMS:  float64(c.totalNS.Load()) / 1e6,
			P50MS:    hs.Quantile(0.50).Seconds() * 1000,
			P99MS:    hs.Quantile(0.99).Seconds() * 1000,
		}
		if ep.Count > 0 {
			ep.MeanMS = ep.TotalMS / float64(ep.Count)
		}
		out.Router[k.(string)] = ep
		return true
	})
	writeJSON(w, http.StatusOK, out)
}

// fanoutCounts snapshots the scatter-width counters (index = shards touched).
func (rt *Router) fanoutCounts() []int64 {
	out := make([]int64, len(rt.fanout))
	for i := range rt.fanout {
		out[i] = rt.fanout[i].Load()
	}
	return out
}

// shardTierMetrics snapshots the router's view of every shard client.
func (rt *Router) shardTierMetrics() []ShardClientMetrics {
	out := make([]ShardClientMetrics, len(rt.shards))
	for i := range rt.shards {
		sc := &rt.shardObs[i]
		hs := sc.hist.Snapshot()
		out[i] = ShardClientMetrics{
			Addr:   rt.addrs[i],
			Calls:  sc.calls.Load(),
			Errors: sc.errors.Load(),
			P50MS:  hs.Quantile(0.50).Seconds() * 1000,
			P95MS:  hs.Quantile(0.95).Seconds() * 1000,
			P99MS:  hs.Quantile(0.99).Seconds() * 1000,
			Retry:  rt.shards[i].Counters.Stats(),
		}
	}
	return out
}

func (rt *Router) handleShards(w http.ResponseWriter, r *http.Request) {
	px, py := rt.pmap.Pad()
	out := ShardsResponse{Shards: make([]ShardInfo, rt.pmap.N()), PadX: px, PadY: py}
	for i := range out.Shards {
		lo, hi := rt.pmap.Range(i)
		out.Shards[i] = ShardInfo{Addr: rt.addrs[i], Lo: lo, Hi: hi}
	}
	writeJSON(w, http.StatusOK, out)
}

func (rt *Router) handleSlowLog(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, server.SlowLogResponse{
		ThresholdMS: rt.slow.Threshold().Seconds() * 1000,
		Total:       rt.slow.Total(),
		Entries:     rt.slow.Entries(),
	})
}

// handleHealthz answers liveness: the router process serves HTTP. Always 200.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "%s needs GET", r.URL.Path)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write([]byte("ok\n"))
}

// handleReadyz answers readiness: the router can serve queries, which means
// every shard answers its own /healthz. A shard down means 503, naming the
// lowest-indexed unreachable shard.
func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "%s needs GET", r.URL.Path)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s, err := rt.scatter(rt.allShards(), func(s int) error {
		_, err := rt.shards[s].Raw("/healthz")
		return err
	}); err != nil {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "shard %d (shard=%s) unreachable: %v\n", s, rt.addrs[s], err)
		return
	}
	w.WriteHeader(http.StatusOK)
	w.Write([]byte("ok\n"))
}
