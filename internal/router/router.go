package router

import (
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"spatialcluster/internal/geom"
	"spatialcluster/internal/server"
	"spatialcluster/internal/shard"
)

// Config tunes a Router. The zero value serves with the server's defaults.
type Config struct {
	// MaxInFlight bounds admitted requests; excess requests are answered
	// with 429 immediately (default 256). Shard-side admission still
	// applies per shard underneath.
	MaxInFlight int
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 256
	}
	return c
}

// Router scatters the single-store HTTP API across a sharded cluster.
// Create it with New and mount Handler on an http.Server. A Router has no
// background goroutines and nothing to shut down; the shards it fronts are
// owned by their own daemons.
type Router struct {
	cfg    Config
	pmap   *shard.Map
	shards []*server.Client
	addrs  []string

	inflight chan struct{}

	// route remembers which shard owns an object ID that was inserted or
	// updated through the router, so deletes and cross-shard updates hit
	// exactly one store. IDs bulk-built shard-side are not in it; deletes
	// of those fall back to a broadcast.
	routeMu sync.RWMutex
	route   map[uint64]int

	endpoints sync.Map // path -> *epCounter
}

type epCounter struct {
	count, errors, totalNS atomic.Int64
}

// New builds a router over one typed client per shard of the partition.
// The clients should carry a Retry configuration — the router leans on it
// to absorb transient shard failures.
func New(pmap *shard.Map, shards []*server.Client, cfg Config) (*Router, error) {
	if len(shards) != pmap.N() {
		return nil, fmt.Errorf("router: %d clients for %d shards", len(shards), pmap.N())
	}
	addrs := make([]string, len(shards))
	for i, c := range shards {
		addrs[i] = c.Base
	}
	cfg = cfg.withDefaults()
	return &Router{
		cfg:      cfg,
		pmap:     pmap,
		shards:   shards,
		addrs:    addrs,
		inflight: make(chan struct{}, cfg.MaxInFlight),
		route:    make(map[uint64]int),
	}, nil
}

// Map exposes the partition the router serves.
func (rt *Router) Map() *shard.Map { return rt.pmap }

// Handler returns the HTTP handler tree — the same paths a single server
// mounts, minus the quiesced snapshot endpoints (each shard daemon owns its
// own /save and /load).
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query/window", rt.admitted(rt.handleWindow))
	mux.HandleFunc("/query/point", rt.admitted(rt.handlePoint))
	mux.HandleFunc("/query/knn", rt.admitted(rt.handleKNN))
	mux.HandleFunc("/insert", rt.admitted(rt.handleInsert))
	mux.HandleFunc("/update", rt.admitted(rt.handleUpdate))
	mux.HandleFunc("/delete", rt.admitted(rt.handleDelete))
	mux.HandleFunc("/recluster", rt.admitted(rt.handleRecluster))
	mux.HandleFunc("/flush", rt.admitted(rt.handleFlush))
	mux.HandleFunc("/stats", rt.observed(rt.handleStats))
	mux.HandleFunc("/metrics", rt.observed(rt.handleMetrics))
	mux.HandleFunc("/shards", rt.observed(rt.handleShards))
	return mux
}

type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

func (rt *Router) counter(path string) *epCounter {
	if c, ok := rt.endpoints.Load(path); ok {
		return c.(*epCounter)
	}
	c, _ := rt.endpoints.LoadOrStore(path, &epCounter{})
	return c.(*epCounter)
}

func (rt *Router) instrument(path string, w http.ResponseWriter, r *http.Request, fn http.HandlerFunc) {
	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	start := time.Now()
	fn(rec, r)
	c := rt.counter(path)
	c.count.Add(1)
	c.totalNS.Add(time.Since(start).Nanoseconds())
	if rec.status >= 400 {
		c.errors.Add(1)
	}
}

// admitted mirrors the server's admission control: bounded concurrency,
// immediate 429 past the bound.
func (rt *Router) admitted(fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "%s needs POST", r.URL.Path)
			return
		}
		select {
		case rt.inflight <- struct{}{}:
		default:
			writeError(w, http.StatusTooManyRequests,
				"router overloaded: %d requests in flight", rt.cfg.MaxInFlight)
			return
		}
		defer func() { <-rt.inflight }()
		rt.instrument(r.URL.Path, w, r, fn)
	}
}

func (rt *Router) observed(fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "%s needs GET", r.URL.Path)
			return
		}
		rt.instrument(r.URL.Path, w, r, fn)
	}
}

// scatter runs fn for every listed shard concurrently and returns the
// lowest-indexed failure (deterministic when several shards fail at once).
func (rt *Router) scatter(targets []int, fn func(s int) error) (int, error) {
	if len(targets) == 1 {
		return targets[0], fn(targets[0])
	}
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for i, s := range targets {
		wg.Add(1)
		go func(i, s int) {
			defer wg.Done()
			errs[i] = fn(s)
		}(i, s)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return targets[i], err
		}
	}
	return -1, nil
}

func (rt *Router) allShards() []int {
	out := make([]int, rt.pmap.N())
	for i := range out {
		out[i] = i
	}
	return out
}

func (rt *Router) getRoute(id uint64) (int, bool) {
	rt.routeMu.RLock()
	defer rt.routeMu.RUnlock()
	s, ok := rt.route[id]
	return s, ok
}

func (rt *Router) setRoute(id uint64, s int) {
	rt.routeMu.Lock()
	rt.route[id] = s
	rt.routeMu.Unlock()
}

func (rt *Router) delRoute(id uint64) {
	rt.routeMu.Lock()
	delete(rt.route, id)
	rt.routeMu.Unlock()
}

func (rt *Router) routeSize() int {
	rt.routeMu.RLock()
	defer rt.routeMu.RUnlock()
	return len(rt.route)
}

// mergeQuery combines per-shard window/point answers: ID dedup (shards own
// disjoint sets, so this is belt-and-braces), ascending ID order for a
// deterministic wire answer, candidates summed.
func mergeQuery(resps []server.QueryResponse) server.QueryResponse {
	seen := make(map[uint64]bool)
	out := server.QueryResponse{IDs: []uint64{}}
	for _, r := range resps {
		out.Candidates += r.Candidates
		for _, id := range r.IDs {
			if !seen[id] {
				seen[id] = true
				out.IDs = append(out.IDs, id)
			}
		}
	}
	sort.Slice(out.IDs, func(a, b int) bool { return out.IDs[a] < out.IDs[b] })
	return out
}

func (rt *Router) handleWindow(w http.ResponseWriter, r *http.Request) {
	var req server.WindowRequest
	if err := readJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	win := geom.R(req.Window[0], req.Window[1], req.Window[2], req.Window[3])
	targets := rt.pmap.Overlapping(win)
	resps := make([]server.QueryResponse, len(targets))
	idx := make(map[int]int, len(targets))
	for i, s := range targets {
		idx[s] = i
	}
	if s, err := rt.scatter(targets, func(s int) error {
		return rt.shards[s].Post("/query/window", req, &resps[idx[s]])
	}); err != nil {
		shardError(w, s, err)
		return
	}
	writeJSON(w, http.StatusOK, mergeQuery(resps))
}

func (rt *Router) handlePoint(w http.ResponseWriter, r *http.Request) {
	var req server.PointRequest
	if err := readJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	p := geom.Pt(req.Point[0], req.Point[1])
	targets := rt.pmap.Overlapping(geom.RectFromPoint(p))
	resps := make([]server.QueryResponse, len(targets))
	idx := make(map[int]int, len(targets))
	for i, s := range targets {
		idx[s] = i
	}
	if s, err := rt.scatter(targets, func(s int) error {
		return rt.shards[s].Post("/query/point", req, &resps[idx[s]])
	}); err != nil {
		shardError(w, s, err)
		return
	}
	writeJSON(w, http.StatusOK, mergeQuery(resps))
}

func (rt *Router) handleKNN(w http.ResponseWriter, r *http.Request) {
	var req server.KNNRequest
	if err := readJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.K < 1 {
		writeError(w, http.StatusBadRequest, "k must be positive, got %d", req.K)
		return
	}
	p := geom.Pt(req.Point[0], req.Point[1])
	bounds := rt.pmap.ShardDists(p)
	queried := make([]bool, rt.pmap.N())
	merger := shard.NewKNNMerger(req.K)
	candidates := 0
	for wave := shard.NextWave(bounds, queried, merger); wave != nil; wave = shard.NextWave(bounds, queried, merger) {
		resps := make([]server.KNNResponse, len(wave))
		idx := make(map[int]int, len(wave))
		for i, s := range wave {
			idx[s] = i
			queried[s] = true
		}
		if s, err := rt.scatter(wave, func(s int) error {
			return rt.shards[s].Post("/query/knn", req, &resps[idx[s]])
		}); err != nil {
			shardError(w, s, err)
			return
		}
		for _, resp := range resps {
			candidates += resp.Candidates
			for i := range resp.IDs {
				merger.Add(resp.IDs[i], resp.Dists[i])
			}
		}
	}
	ids, dists := merger.Results()
	writeJSON(w, http.StatusOK, server.KNNResponse{IDs: ids, Dists: dists, Candidates: candidates})
}

// keyOf resolves an insert/update request's routing key: the explicit key if
// the request names one, else the vertex bounding box — the same default the
// shard itself will apply.
func keyOf(req server.InsertRequest) (geom.Rect, error) {
	if req.Key != nil {
		return geom.R(req.Key[0], req.Key[1], req.Key[2], req.Key[3]), nil
	}
	if len(req.Object.Vertices) == 0 {
		return geom.Rect{}, errors.New("object has no vertices and no key")
	}
	pts := make([]geom.Point, len(req.Object.Vertices))
	for i, v := range req.Object.Vertices {
		pts[i] = geom.Pt(v[0], v[1])
	}
	return geom.BoundingRect(pts), nil
}

func (rt *Router) handleInsert(w http.ResponseWriter, r *http.Request) {
	var req server.InsertRequest
	if err := readJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	key, err := keyOf(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	rt.pmap.Observe(key)
	s := rt.pmap.ShardOfKey(key)
	var out server.MutateResponse
	if err := rt.shards[s].Post("/insert", req, &out); err != nil {
		shardError(w, s, err)
		return
	}
	rt.setRoute(req.Object.ID, s)
	writeJSON(w, http.StatusOK, out)
}

func (rt *Router) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var req server.InsertRequest
	if err := readJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	key, err := keyOf(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	rt.pmap.Observe(key)
	target := rt.pmap.ShardOfKey(key)
	// An update is a no-op when the object exists nowhere (shard stores do
	// not upsert), so a cross-shard move must first prove the object alive
	// by deleting its old copy — only then is it re-created at the target.
	prev, known := rt.getRoute(req.Object.ID)
	if known && prev != target {
		var del server.MutateResponse
		if err := rt.shards[prev].Post("/delete", server.DeleteRequest{ID: req.Object.ID}, &del); err != nil {
			shardError(w, prev, err)
			return
		}
		if del.Existed {
			if err := rt.shards[target].Post("/insert", req, nil); err != nil {
				shardError(w, target, err)
				return
			}
			rt.setRoute(req.Object.ID, target)
			writeJSON(w, http.StatusOK, server.MutateResponse{Existed: true})
			return
		}
		known = false // the cache was stale; fall through to the cold path
	}
	if !known {
		// Never routed through us (bulk-built shard-side, or the cache is
		// cold): the live copy may sit on any shard. Delete everywhere but
		// the target; a hit means the object moved — re-create it there.
		others := make([]int, 0, rt.pmap.N()-1)
		for i := 0; i < rt.pmap.N(); i++ {
			if i != target {
				others = append(others, i)
			}
		}
		dels := make([]server.MutateResponse, rt.pmap.N())
		if len(others) > 0 {
			if s, err := rt.scatter(others, func(s int) error {
				return rt.shards[s].Post("/delete", server.DeleteRequest{ID: req.Object.ID}, &dels[s])
			}); err != nil {
				shardError(w, s, err)
				return
			}
		}
		for _, d := range dels {
			if d.Existed {
				if err := rt.shards[target].Post("/insert", req, nil); err != nil {
					shardError(w, target, err)
					return
				}
				rt.setRoute(req.Object.ID, target)
				writeJSON(w, http.StatusOK, server.MutateResponse{Existed: true})
				return
			}
		}
	}
	// The object lives at the target or nowhere; the shard decides which.
	var out server.MutateResponse
	if err := rt.shards[target].Post("/update", req, &out); err != nil {
		shardError(w, target, err)
		return
	}
	if out.Existed {
		rt.setRoute(req.Object.ID, target)
	} else {
		rt.delRoute(req.Object.ID)
	}
	writeJSON(w, http.StatusOK, out)
}

func (rt *Router) handleDelete(w http.ResponseWriter, r *http.Request) {
	var req server.DeleteRequest
	if err := readJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	existed := false
	if s, ok := rt.getRoute(req.ID); ok {
		var out server.MutateResponse
		if err := rt.shards[s].Post("/delete", req, &out); err != nil {
			shardError(w, s, err)
			return
		}
		existed = out.Existed
	} else {
		// Unknown ID: only a broadcast can find it (or prove it absent).
		outs := make([]server.MutateResponse, rt.pmap.N())
		if s, err := rt.scatter(rt.allShards(), func(s int) error {
			return rt.shards[s].Post("/delete", req, &outs[s])
		}); err != nil {
			shardError(w, s, err)
			return
		}
		for _, o := range outs {
			existed = existed || o.Existed
		}
	}
	rt.delRoute(req.ID)
	writeJSON(w, http.StatusOK, server.MutateResponse{Existed: existed})
}

func (rt *Router) handleRecluster(w http.ResponseWriter, r *http.Request) {
	var req server.ReclusterRequest
	if err := readJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	outs := make([]server.ReclusterResponse, rt.pmap.N())
	if s, err := rt.scatter(rt.allShards(), func(s int) error {
		return rt.shards[s].Post("/recluster", req, &outs[s])
	}); err != nil {
		shardError(w, s, err)
		return
	}
	var agg server.ReclusterResponse
	for _, o := range outs {
		agg.RepackedUnits += o.RepackedUnits
		agg.Rebuilt = agg.Rebuilt || o.Rebuilt
		if agg.Note == "" {
			agg.Note = o.Note
		}
	}
	writeJSON(w, http.StatusOK, agg)
}

func (rt *Router) handleFlush(w http.ResponseWriter, r *http.Request) {
	if s, err := rt.scatter(rt.allShards(), func(s int) error {
		return rt.shards[s].Flush()
	}); err != nil {
		shardError(w, s, err)
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	stats := make([]server.StatsResponse, rt.pmap.N())
	if s, err := rt.scatter(rt.allShards(), func(s int) error {
		st, err := rt.shards[s].Stats()
		stats[s] = st
		return err
	}); err != nil {
		shardError(w, s, err)
		return
	}
	out := StatsResponse{Shards: rt.pmap.N(), PerShard: stats}
	for _, st := range stats {
		out.Objects += st.Objects
		out.Units += st.Units
		out.Bytes += st.ObjectBytes
	}
	writeJSON(w, http.StatusOK, out)
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	ms := make([]server.Metrics, rt.pmap.N())
	if s, err := rt.scatter(rt.allShards(), func(s int) error {
		m, err := rt.shards[s].Metrics()
		ms[s] = m
		return err
	}); err != nil {
		shardError(w, s, err)
		return
	}
	px, py := rt.pmap.Pad()
	out := MetricsResponse{
		Shards:      rt.pmap.N(),
		Partition:   rt.pmap.String(),
		PadX:        px,
		PadY:        py,
		RoutedIDs:   rt.routeSize(),
		InFlight:    len(rt.inflight),
		MaxInFlight: rt.cfg.MaxInFlight,
		Router:      make(map[string]EndpointMetrics),
		PerShard:    ms,
	}
	for _, m := range ms {
		out.Objects += m.Storage.Objects
		out.ModelIOSec += m.ModelIOSec
		out.Batches += m.Batches
		out.BatchedJobs += m.BatchedJobs
		out.Rejected += m.Rejected
		out.BufferHits += m.BufferHits
		out.BufferMisses += m.BufferMisses
	}
	rt.endpoints.Range(func(k, v any) bool {
		c := v.(*epCounter)
		ep := EndpointMetrics{
			Count:   c.count.Load(),
			Errors:  c.errors.Load(),
			TotalMS: float64(c.totalNS.Load()) / 1e6,
		}
		if ep.Count > 0 {
			ep.MeanMS = ep.TotalMS / float64(ep.Count)
		}
		out.Router[k.(string)] = ep
		return true
	})
	writeJSON(w, http.StatusOK, out)
}

func (rt *Router) handleShards(w http.ResponseWriter, r *http.Request) {
	px, py := rt.pmap.Pad()
	out := ShardsResponse{Shards: make([]ShardInfo, rt.pmap.N()), PadX: px, PadY: py}
	for i := range out.Shards {
		lo, hi := rt.pmap.Range(i)
		out.Shards[i] = ShardInfo{Addr: rt.addrs[i], Lo: lo, Hi: hi}
	}
	writeJSON(w, http.StatusOK, out)
}
