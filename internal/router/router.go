package router

import (
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"spatialcluster/internal/geom"
	"spatialcluster/internal/object"
	"spatialcluster/internal/server"
	"spatialcluster/internal/shard"
)

// Config tunes a Router. The zero value serves with the server's defaults.
type Config struct {
	// MaxInFlight bounds admitted requests; excess requests are answered
	// with 429 immediately (default 256). Shard-side admission still
	// applies per shard underneath.
	MaxInFlight int
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 256
	}
	return c
}

// Router scatters the single-store HTTP API across a sharded cluster.
// Create it with New and mount Handler on an http.Server. A Router has no
// background goroutines and nothing to shut down; the shards it fronts are
// owned by their own daemons.
type Router struct {
	cfg    Config
	pmap   *shard.Map
	shards []*server.Client
	addrs  []string

	inflight chan struct{}

	// route remembers which shard owns an object ID that was inserted or
	// updated through the router, so deletes and cross-shard updates hit
	// exactly one store. IDs bulk-built shard-side are not in it; deletes
	// of those fall back to a broadcast.
	routeMu sync.RWMutex
	route   map[uint64]int

	endpoints sync.Map // path -> *epCounter
}

type epCounter struct {
	count, errors, totalNS atomic.Int64
}

// New builds a router over one typed client per shard of the partition.
// The clients should carry a Retry configuration — the router leans on it
// to absorb transient shard failures.
func New(pmap *shard.Map, shards []*server.Client, cfg Config) (*Router, error) {
	if len(shards) != pmap.N() {
		return nil, fmt.Errorf("router: %d clients for %d shards", len(shards), pmap.N())
	}
	addrs := make([]string, len(shards))
	for i, c := range shards {
		addrs[i] = c.Base
	}
	cfg = cfg.withDefaults()
	return &Router{
		cfg:      cfg,
		pmap:     pmap,
		shards:   shards,
		addrs:    addrs,
		inflight: make(chan struct{}, cfg.MaxInFlight),
		route:    make(map[uint64]int),
	}, nil
}

// Map exposes the partition the router serves.
func (rt *Router) Map() *shard.Map { return rt.pmap }

// Handler returns the HTTP handler tree — the same paths a single server
// mounts, minus the quiesced snapshot endpoints (each shard daemon owns its
// own /save and /load).
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query/window", rt.admitted(rt.handleWindow))
	mux.HandleFunc("/query/point", rt.admitted(rt.handlePoint))
	mux.HandleFunc("/query/knn", rt.admitted(rt.handleKNN))
	mux.HandleFunc("/insert", rt.admitted(rt.handleInsert))
	mux.HandleFunc("/update", rt.admitted(rt.handleUpdate))
	mux.HandleFunc("/delete", rt.admitted(rt.handleDelete))
	mux.HandleFunc("/bin/window", rt.admitted(rt.handleBinWindow))
	mux.HandleFunc("/bin/point", rt.admitted(rt.handleBinPoint))
	mux.HandleFunc("/bin/knn", rt.admitted(rt.handleBinKNN))
	mux.HandleFunc("/bin/insert", rt.admitted(rt.handleBinInsert))
	mux.HandleFunc("/bin/update", rt.admitted(rt.handleBinUpdate))
	mux.HandleFunc("/bin/delete", rt.admitted(rt.handleBinDelete))
	mux.HandleFunc("/recluster", rt.admitted(rt.handleRecluster))
	mux.HandleFunc("/flush", rt.admitted(rt.handleFlush))
	mux.HandleFunc("/stats", rt.observed(rt.handleStats))
	mux.HandleFunc("/metrics", rt.observed(rt.handleMetrics))
	mux.HandleFunc("/shards", rt.observed(rt.handleShards))
	return mux
}

type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

func (rt *Router) counter(path string) *epCounter {
	if c, ok := rt.endpoints.Load(path); ok {
		return c.(*epCounter)
	}
	c, _ := rt.endpoints.LoadOrStore(path, &epCounter{})
	return c.(*epCounter)
}

func (rt *Router) instrument(path string, w http.ResponseWriter, r *http.Request, fn http.HandlerFunc) {
	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	start := time.Now()
	fn(rec, r)
	c := rt.counter(path)
	c.count.Add(1)
	c.totalNS.Add(time.Since(start).Nanoseconds())
	if rec.status >= 400 {
		c.errors.Add(1)
	}
}

// admitted mirrors the server's admission control: bounded concurrency,
// immediate 429 past the bound.
func (rt *Router) admitted(fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "%s needs POST", r.URL.Path)
			return
		}
		select {
		case rt.inflight <- struct{}{}:
		default:
			writeError(w, http.StatusTooManyRequests,
				"router overloaded: %d requests in flight", rt.cfg.MaxInFlight)
			return
		}
		defer func() { <-rt.inflight }()
		rt.instrument(r.URL.Path, w, r, fn)
	}
}

func (rt *Router) observed(fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "%s needs GET", r.URL.Path)
			return
		}
		rt.instrument(r.URL.Path, w, r, fn)
	}
}

// scatter runs fn for every listed shard concurrently and returns the
// lowest-indexed failure (deterministic when several shards fail at once).
func (rt *Router) scatter(targets []int, fn func(s int) error) (int, error) {
	if len(targets) == 1 {
		return targets[0], fn(targets[0])
	}
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for i, s := range targets {
		wg.Add(1)
		go func(i, s int) {
			defer wg.Done()
			errs[i] = fn(s)
		}(i, s)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return targets[i], err
		}
	}
	return -1, nil
}

func (rt *Router) allShards() []int {
	out := make([]int, rt.pmap.N())
	for i := range out {
		out[i] = i
	}
	return out
}

func (rt *Router) getRoute(id uint64) (int, bool) {
	rt.routeMu.RLock()
	defer rt.routeMu.RUnlock()
	s, ok := rt.route[id]
	return s, ok
}

func (rt *Router) setRoute(id uint64, s int) {
	rt.routeMu.Lock()
	rt.route[id] = s
	rt.routeMu.Unlock()
}

func (rt *Router) delRoute(id uint64) {
	rt.routeMu.Lock()
	delete(rt.route, id)
	rt.routeMu.Unlock()
}

func (rt *Router) routeSize() int {
	rt.routeMu.RLock()
	defer rt.routeMu.RUnlock()
	return len(rt.route)
}

// mergeQuery combines per-shard window/point answers: ID dedup (shards own
// disjoint sets, so this is belt-and-braces), ascending ID order for a
// deterministic wire answer, candidates summed.
func mergeQuery(resps []server.QueryResponse) server.QueryResponse {
	seen := make(map[uint64]bool)
	out := server.QueryResponse{IDs: []uint64{}}
	for _, r := range resps {
		out.Candidates += r.Candidates
		for _, id := range r.IDs {
			if !seen[id] {
				seen[id] = true
				out.IDs = append(out.IDs, id)
			}
		}
	}
	sort.Slice(out.IDs, func(a, b int) bool { return out.IDs[a] < out.IDs[b] })
	return out
}

// The scatter/merge cores below operate on engine-typed values and speak to
// the shards through the typed client methods, so the JSON and binary
// handlers share one routing semantics — and a Binary shard client carries
// the whole path end to end over the compact encoding. Each core returns the
// merged answer, or the failing shard index with its error.

// scatterWindow runs a window query on every overlapping shard and merges.
func (rt *Router) scatterWindow(win geom.Rect, tech string) (server.QueryResponse, int, error) {
	targets := rt.pmap.Overlapping(win)
	resps := make([]server.QueryResponse, len(targets))
	idx := make(map[int]int, len(targets))
	for i, s := range targets {
		idx[s] = i
	}
	if s, err := rt.scatter(targets, func(s int) error {
		resp, err := rt.shards[s].Window(win, tech)
		resps[idx[s]] = resp
		return err
	}); err != nil {
		return server.QueryResponse{}, s, err
	}
	return mergeQuery(resps), -1, nil
}

// scatterPoint runs a point query on every shard whose region holds p.
func (rt *Router) scatterPoint(p geom.Point) (server.QueryResponse, int, error) {
	targets := rt.pmap.Overlapping(geom.RectFromPoint(p))
	resps := make([]server.QueryResponse, len(targets))
	idx := make(map[int]int, len(targets))
	for i, s := range targets {
		idx[s] = i
	}
	if s, err := rt.scatter(targets, func(s int) error {
		resp, err := rt.shards[s].Point(p)
		resps[idx[s]] = resp
		return err
	}); err != nil {
		return server.QueryResponse{}, s, err
	}
	return mergeQuery(resps), -1, nil
}

// scatterKNN runs the wave-ordered k-NN scatter: nearest shards first, wider
// waves only while they could still improve the k-th distance.
func (rt *Router) scatterKNN(p geom.Point, k int) (server.KNNResponse, int, error) {
	bounds := rt.pmap.ShardDists(p)
	queried := make([]bool, rt.pmap.N())
	merger := shard.NewKNNMerger(k)
	candidates := 0
	for wave := shard.NextWave(bounds, queried, merger); wave != nil; wave = shard.NextWave(bounds, queried, merger) {
		resps := make([]server.KNNResponse, len(wave))
		idx := make(map[int]int, len(wave))
		for i, s := range wave {
			idx[s] = i
			queried[s] = true
		}
		if s, err := rt.scatter(wave, func(s int) error {
			resp, err := rt.shards[s].KNN(p, k)
			resps[idx[s]] = resp
			return err
		}); err != nil {
			return server.KNNResponse{}, s, err
		}
		for _, resp := range resps {
			candidates += resp.Candidates
			for i := range resp.IDs {
				merger.Add(resp.IDs[i], resp.Dists[i])
			}
		}
	}
	ids, dists := merger.Results()
	return server.KNNResponse{IDs: ids, Dists: dists, Candidates: candidates}, -1, nil
}

func (rt *Router) handleWindow(w http.ResponseWriter, r *http.Request) {
	var req server.WindowRequest
	if err := readJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	win := geom.R(req.Window[0], req.Window[1], req.Window[2], req.Window[3])
	out, s, err := rt.scatterWindow(win, req.Tech)
	if err != nil {
		shardError(w, s, err)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

func (rt *Router) handlePoint(w http.ResponseWriter, r *http.Request) {
	var req server.PointRequest
	if err := readJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	out, s, err := rt.scatterPoint(geom.Pt(req.Point[0], req.Point[1]))
	if err != nil {
		shardError(w, s, err)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

func (rt *Router) handleKNN(w http.ResponseWriter, r *http.Request) {
	var req server.KNNRequest
	if err := readJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.K < 1 {
		writeError(w, http.StatusBadRequest, "k must be positive, got %d", req.K)
		return
	}
	out, s, err := rt.scatterKNN(geom.Pt(req.Point[0], req.Point[1]), req.K)
	if err != nil {
		shardError(w, s, err)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// keyOf resolves an insert/update request's routing key: the explicit key if
// the request names one, else the vertex bounding box — the same default the
// shard itself will apply.
func keyOf(req server.InsertRequest) (geom.Rect, error) {
	if req.Key != nil {
		return geom.R(req.Key[0], req.Key[1], req.Key[2], req.Key[3]), nil
	}
	if len(req.Object.Vertices) == 0 {
		return geom.Rect{}, errors.New("object has no vertices and no key")
	}
	pts := make([]geom.Point, len(req.Object.Vertices))
	for i, v := range req.Object.Vertices {
		pts[i] = geom.Pt(v[0], v[1])
	}
	return geom.BoundingRect(pts), nil
}

// insertCore places an object on the shard owning its key.
func (rt *Router) insertCore(o *object.Object, key geom.Rect) (int, error) {
	rt.pmap.Observe(key)
	s := rt.pmap.ShardOfKey(key)
	if err := rt.shards[s].Insert(o, key); err != nil {
		return s, err
	}
	rt.setRoute(uint64(o.ID), s)
	return -1, nil
}

// updateCore replaces an object wherever it lives. An update is a no-op when
// the object exists nowhere (shard stores do not upsert), so a cross-shard
// move must first prove the object alive by deleting its old copy — only
// then is it re-created at the target.
func (rt *Router) updateCore(o *object.Object, key geom.Rect) (server.MutateResponse, int, error) {
	rt.pmap.Observe(key)
	target := rt.pmap.ShardOfKey(key)
	id := uint64(o.ID)
	prev, known := rt.getRoute(id)
	if known && prev != target {
		existed, err := rt.shards[prev].Delete(o.ID)
		if err != nil {
			return server.MutateResponse{}, prev, err
		}
		if existed {
			if err := rt.shards[target].Insert(o, key); err != nil {
				return server.MutateResponse{}, target, err
			}
			rt.setRoute(id, target)
			return server.MutateResponse{Existed: true}, -1, nil
		}
		known = false // the cache was stale; fall through to the cold path
	}
	if !known {
		// Never routed through us (bulk-built shard-side, or the cache is
		// cold): the live copy may sit on any shard. Delete everywhere but
		// the target; a hit means the object moved — re-create it there.
		others := make([]int, 0, rt.pmap.N()-1)
		for i := 0; i < rt.pmap.N(); i++ {
			if i != target {
				others = append(others, i)
			}
		}
		dels := make([]bool, rt.pmap.N())
		if len(others) > 0 {
			if s, err := rt.scatter(others, func(s int) error {
				existed, err := rt.shards[s].Delete(o.ID)
				dels[s] = existed
				return err
			}); err != nil {
				return server.MutateResponse{}, s, err
			}
		}
		for _, d := range dels {
			if d {
				if err := rt.shards[target].Insert(o, key); err != nil {
					return server.MutateResponse{}, target, err
				}
				rt.setRoute(id, target)
				return server.MutateResponse{Existed: true}, -1, nil
			}
		}
	}
	// The object lives at the target or nowhere; the shard decides which.
	existed, err := rt.shards[target].Update(o, key)
	if err != nil {
		return server.MutateResponse{}, target, err
	}
	if existed {
		rt.setRoute(id, target)
	} else {
		rt.delRoute(id)
	}
	return server.MutateResponse{Existed: existed}, -1, nil
}

// deleteCore removes an object: one call when the route cache knows its
// shard, a broadcast when only that can find it (or prove it absent).
func (rt *Router) deleteCore(id uint64) (bool, int, error) {
	existed := false
	if s, ok := rt.getRoute(id); ok {
		ex, err := rt.shards[s].Delete(object.ID(id))
		if err != nil {
			return false, s, err
		}
		existed = ex
	} else {
		outs := make([]bool, rt.pmap.N())
		if s, err := rt.scatter(rt.allShards(), func(s int) error {
			ex, err := rt.shards[s].Delete(object.ID(id))
			outs[s] = ex
			return err
		}); err != nil {
			return false, s, err
		}
		for _, ex := range outs {
			existed = existed || ex
		}
	}
	rt.delRoute(id)
	return existed, -1, nil
}

func (rt *Router) handleInsert(w http.ResponseWriter, r *http.Request) {
	var req server.InsertRequest
	if err := readJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	o, err := req.Object.ToObject()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	key, err := keyOf(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if s, err := rt.insertCore(o, key); err != nil {
		shardError(w, s, err)
		return
	}
	writeJSON(w, http.StatusOK, server.MutateResponse{})
}

func (rt *Router) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var req server.InsertRequest
	if err := readJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	o, err := req.Object.ToObject()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	key, err := keyOf(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	out, s, err := rt.updateCore(o, key)
	if err != nil {
		shardError(w, s, err)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

func (rt *Router) handleDelete(w http.ResponseWriter, r *http.Request) {
	var req server.DeleteRequest
	if err := readJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	existed, s, err := rt.deleteCore(req.ID)
	if err != nil {
		shardError(w, s, err)
		return
	}
	writeJSON(w, http.StatusOK, server.MutateResponse{Existed: existed})
}

func (rt *Router) handleRecluster(w http.ResponseWriter, r *http.Request) {
	var req server.ReclusterRequest
	if err := readJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	outs := make([]server.ReclusterResponse, rt.pmap.N())
	if s, err := rt.scatter(rt.allShards(), func(s int) error {
		return rt.shards[s].Post("/recluster", req, &outs[s])
	}); err != nil {
		shardError(w, s, err)
		return
	}
	var agg server.ReclusterResponse
	for _, o := range outs {
		agg.RepackedUnits += o.RepackedUnits
		agg.Rebuilt = agg.Rebuilt || o.Rebuilt
		if agg.Note == "" {
			agg.Note = o.Note
		}
	}
	writeJSON(w, http.StatusOK, agg)
}

func (rt *Router) handleFlush(w http.ResponseWriter, r *http.Request) {
	if s, err := rt.scatter(rt.allShards(), func(s int) error {
		return rt.shards[s].Flush()
	}); err != nil {
		shardError(w, s, err)
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	stats := make([]server.StatsResponse, rt.pmap.N())
	if s, err := rt.scatter(rt.allShards(), func(s int) error {
		st, err := rt.shards[s].Stats()
		stats[s] = st
		return err
	}); err != nil {
		shardError(w, s, err)
		return
	}
	out := StatsResponse{Shards: rt.pmap.N(), PerShard: stats}
	for _, st := range stats {
		out.Objects += st.Objects
		out.Units += st.Units
		out.Bytes += st.ObjectBytes
	}
	writeJSON(w, http.StatusOK, out)
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	ms := make([]server.Metrics, rt.pmap.N())
	if s, err := rt.scatter(rt.allShards(), func(s int) error {
		m, err := rt.shards[s].Metrics()
		ms[s] = m
		return err
	}); err != nil {
		shardError(w, s, err)
		return
	}
	px, py := rt.pmap.Pad()
	out := MetricsResponse{
		Shards:      rt.pmap.N(),
		Partition:   rt.pmap.String(),
		PadX:        px,
		PadY:        py,
		RoutedIDs:   rt.routeSize(),
		InFlight:    len(rt.inflight),
		MaxInFlight: rt.cfg.MaxInFlight,
		Router:      make(map[string]EndpointMetrics),
		PerShard:    ms,
	}
	for _, m := range ms {
		out.Objects += m.Storage.Objects
		out.ModelIOSec += m.ModelIOSec
		out.Batches += m.Batches
		out.BatchedJobs += m.BatchedJobs
		out.Rejected += m.Rejected
		out.BufferHits += m.BufferHits
		out.BufferMisses += m.BufferMisses
	}
	rt.endpoints.Range(func(k, v any) bool {
		c := v.(*epCounter)
		ep := EndpointMetrics{
			Count:   c.count.Load(),
			Errors:  c.errors.Load(),
			TotalMS: float64(c.totalNS.Load()) / 1e6,
		}
		if ep.Count > 0 {
			ep.MeanMS = ep.TotalMS / float64(ep.Count)
		}
		out.Router[k.(string)] = ep
		return true
	})
	writeJSON(w, http.StatusOK, out)
}

func (rt *Router) handleShards(w http.ResponseWriter, r *http.Request) {
	px, py := rt.pmap.Pad()
	out := ShardsResponse{Shards: make([]ShardInfo, rt.pmap.N()), PadX: px, PadY: py}
	for i := range out.Shards {
		lo, hi := rt.pmap.Range(i)
		out.Shards[i] = ShardInfo{Addr: rt.addrs[i], Lo: lo, Hi: hi}
	}
	writeJSON(w, http.StatusOK, out)
}
