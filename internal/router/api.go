package router

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"spatialcluster/internal/server"
)

// The router speaks the server's wire types for everything a single store
// answers (server.WindowRequest, server.QueryResponse, ...), so a client
// needs no routing awareness. The types here are the router-only additions:
// the aggregated introspection bodies.

// StatsResponse is the body of GET /stats: cluster-wide sums next to every
// shard's own answer.
type StatsResponse struct {
	Shards  int   `json:"shards"`
	Objects int   `json:"objects"`
	Units   int   `json:"units"`
	Bytes   int64 `json:"object_bytes"`
	// PerShard holds each shard's /stats answer, shard order.
	PerShard []server.StatsResponse `json:"per_shard"`
}

// EndpointMetrics are the router's own per-endpoint counters and latency
// quantiles (the shards keep their own; the router reports what it added).
type EndpointMetrics struct {
	Count    int64   `json:"count"`
	Errors   int64   `json:"errors"`
	Rejected int64   `json:"rejected"`
	TotalMS  float64 `json:"total_ms"`
	MeanMS   float64 `json:"mean_ms"`
	P50MS    float64 `json:"p50_ms"`
	P99MS    float64 `json:"p99_ms"`
}

// ShardClientMetrics is the router's view of one shard: every typed-client
// exchange it made, the latency quantiles of those exchanges, failures after
// retries gave up, and the retry counters of the shard's client.
type ShardClientMetrics struct {
	Addr   string            `json:"addr"`
	Calls  int64             `json:"calls"`
	Errors int64             `json:"errors"`
	P50MS  float64           `json:"p50_ms"`
	P95MS  float64           `json:"p95_ms"`
	P99MS  float64           `json:"p99_ms"`
	Retry  server.RetryStats `json:"retry"`
}

// MetricsResponse is the body of GET /metrics: the partition, the summed
// shard counters a capacity dashboard needs, the router's own endpoint
// counters, the router's view of each shard client, and every shard's full
// /metrics answer. ?format=prom (or Accept: text/plain) selects the
// Prometheus exposition instead, which carries only the router's own
// families — shards are scraped directly.
type MetricsResponse struct {
	Shards    int     `json:"shards"`
	Partition string  `json:"partition"`
	PadX      float64 `json:"pad_x"`
	PadY      float64 `json:"pad_y"`
	Uptime    float64 `json:"uptime_sec"`
	RoutedIDs int     `json:"routed_ids"` // route-cache size

	// Sums over the shards' counters.
	Objects      int     `json:"objects"`
	ModelIOSec   float64 `json:"model_io_sec"`
	Batches      int64   `json:"batches"`
	BatchedJobs  int64   `json:"batched_queries"`
	Rejected     int64   `json:"rejected_total"`
	BufferHits   int64   `json:"buffer_hits"`
	BufferMisses int64   `json:"buffer_misses"`

	InFlight    int `json:"in_flight"`
	MaxInFlight int `json:"max_in_flight"`

	// Scatter shape: KNNQueries/KNNWaves count wave-ordered k-NN rounds;
	// Fanout[w] counts scatter operations that touched exactly w shards.
	KNNQueries int64   `json:"knn_queries"`
	KNNWaves   int64   `json:"knn_waves"`
	Fanout     []int64 `json:"fanout"`

	SlowLogMS float64 `json:"slowlog_ms"`
	SlowLog   int64   `json:"slowlog_total"`

	Router    map[string]EndpointMetrics `json:"router_endpoints"`
	ShardTier []ShardClientMetrics       `json:"shard_clients"`
	PerShard  []server.Metrics           `json:"per_shard"`
}

// ShardsResponse is the body of GET /shards: where everything lives.
type ShardsResponse struct {
	Shards []ShardInfo `json:"shards"`
	PadX   float64     `json:"pad_x"`
	PadY   float64     `json:"pad_y"`
}

// ShardInfo describes one shard of the partition.
type ShardInfo struct {
	Addr string `json:"addr"`
	Lo   uint64 `json:"lo"`
	Hi   uint64 `json:"hi"`
}

// maxBodyBytes mirrors the server's request-body bound.
const maxBodyBytes = 8 << 20

func readJSON(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decoding request body: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("trailing data after request body")
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, server.ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// shardError converts a failed shard exchange into the router's answer: a
// shard's own 429 (after the client's retries gave up) passes through so the
// caller's backoff keeps working; anything else is a 502 — the cluster,
// not the request, is at fault. The message names the failing shard both by
// index and by address (shard=<addr>), so an operator can go straight from a
// client-side error to the broken daemon.
func (rt *Router) shardError(w http.ResponseWriter, shard int, err error) {
	addr := "?"
	if shard >= 0 && shard < len(rt.addrs) {
		addr = rt.addrs[shard]
	}
	if server.IsOverload(err) {
		writeError(w, http.StatusTooManyRequests, "shard %d (shard=%s) overloaded: %v", shard, addr, err)
		return
	}
	writeError(w, http.StatusBadGateway, "shard %d (shard=%s): %v", shard, addr, err)
}
