package router_test

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"spatialcluster/internal/datagen"
	"spatialcluster/internal/disk"
	"spatialcluster/internal/geom"
	"spatialcluster/internal/loadgen"
	"spatialcluster/internal/object"
	"spatialcluster/internal/router"
	"spatialcluster/internal/server"
	"spatialcluster/internal/shard"
	"spatialcluster/internal/store"
	"spatialcluster/internal/wal"
)

// buildOrg builds a cluster organization holding the given objects.
func buildOrg(smaxBytes int, objs []*object.Object, keys []geom.Rect) store.Organization {
	org := store.NewCluster(store.NewEnv(128), store.ClusterConfig{SmaxBytes: smaxBytes})
	for i, o := range objs {
		org.Insert(o, keys[i])
	}
	org.Flush()
	return org
}

// shardSubset filters a dataset to the objects a shard owns.
func shardSubset(ds *datagen.Dataset, m *shard.Map, s int) ([]*object.Object, []geom.Rect) {
	var objs []*object.Object
	var keys []geom.Rect
	for i := range ds.Objects {
		if m.ShardOfKey(ds.MBRs[i]) == s {
			objs = append(objs, ds.Objects[i])
			keys = append(keys, ds.MBRs[i])
		}
	}
	return objs, keys
}

// testCluster is a full in-process cluster: N shard servers behind a router.
type testCluster struct {
	pmap   *shard.Map
	client *server.Client   // speaks to the router
	shards []*server.Client // speak to the shards directly
	rt     *router.Router
}

// startCluster builds one server per shard over orgs and a router in front.
func startCluster(t *testing.T, pmap *shard.Map, orgs []store.Organization) *testCluster {
	t.Helper()
	clients := make([]*server.Client, len(orgs))
	for i, org := range orgs {
		s := server.New(org, server.Config{})
		hs := httptest.NewServer(s.Handler())
		t.Cleanup(hs.Close)
		clients[i] = server.NewClient(hs.URL, 16)
		clients[i].Retry = &server.Retry{Attempts: 5, BaseDelay: time.Millisecond,
			MaxDelay: 8 * time.Millisecond, Seed: 11}
	}
	rt, err := router.New(pmap, clients, router.Config{})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(rt.Handler())
	t.Cleanup(hs.Close)
	return &testCluster{pmap: pmap, client: server.NewClient(hs.URL, 16), shards: clients, rt: rt}
}

// clusterFromDataset shards ds across n stores and fronts them with a router.
func clusterFromDataset(t *testing.T, ds *datagen.Dataset, n int) *testCluster {
	t.Helper()
	pmap := shard.FromKeys(ds.MBRs, n)
	orgs := make([]store.Organization, n)
	for s := 0; s < n; s++ {
		objs, keys := shardSubset(ds, pmap, s)
		orgs[s] = buildOrg(ds.Spec.SmaxBytes(), objs, keys)
	}
	return startCluster(t, pmap, orgs)
}

func sortedU64(ids []uint64) []uint64 {
	out := append([]uint64(nil), ids...)
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

func idsToU64(ids []object.ID) []uint64 {
	out := make([]uint64, len(ids))
	for i, id := range ids {
		out[i] = uint64(id)
	}
	return out
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// agreeStream replays a query stream against the router and a single
// reference store, failing on the first divergent answer.
func agreeStream(t *testing.T, label string, tc *testCluster, ref store.Organization, stream []loadgen.Request) {
	t.Helper()
	for i, rq := range stream {
		switch rq.Kind {
		case loadgen.KindWindow:
			got, err := tc.client.Window(rq.Window, "")
			if err != nil {
				t.Fatalf("%s req %d: window: %v", label, i, err)
			}
			want := ref.WindowQuery(rq.Window, store.TechComplete)
			if !equalU64(sortedU64(got.IDs), sortedU64(idsToU64(want.IDs))) {
				t.Fatalf("%s req %d: window %v: router %v != reference %v",
					label, i, rq.Window, got.IDs, want.IDs)
			}
		case loadgen.KindPoint:
			got, err := tc.client.Point(rq.Point)
			if err != nil {
				t.Fatalf("%s req %d: point: %v", label, i, err)
			}
			want := ref.PointQuery(rq.Point)
			if !equalU64(sortedU64(got.IDs), sortedU64(idsToU64(want.IDs))) {
				t.Fatalf("%s req %d: point %v: router %v != reference %v",
					label, i, rq.Point, got.IDs, want.IDs)
			}
		case loadgen.KindKNN:
			got, err := tc.client.KNN(rq.Point, rq.K)
			if err != nil {
				t.Fatalf("%s req %d: knn: %v", label, i, err)
			}
			want := ref.NearestQuery(rq.Point, rq.K)
			if !equalU64(got.IDs, idsToU64(want.IDs)) {
				t.Fatalf("%s req %d: knn %v k=%d: router %v != reference %v (rank order)",
					label, i, rq.Point, rq.K, got.IDs, want.IDs)
			}
		}
	}
}

// TestRouterDifferential is the acceptance suite: over 1/2/4/8 shards, the
// router's window/point/k-NN answers are identical to a single reference
// store — before and after a MixedWorkload churn stream applied through the
// router's mutation endpoints (with mutation verdicts compared op by op).
func TestRouterDifferential(t *testing.T) {
	ds := datagen.Generate(datagen.Spec{Map: datagen.Map1, Series: datagen.SeriesA, Scale: 256, Seed: 7})
	stream := loadgen.NewStream(ds, loadgen.StreamSpec{N: 48, WindowArea: 0.004, K: 9, Seed: 21})
	ops := ds.MixedWorkload(datagen.MixSpec{Ops: 140, HotspotFrac: 0.5, Seed: 22})

	for _, n := range []int{1, 2, 4, 8} {
		n := n
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			tc := clusterFromDataset(t, ds, n)
			ref := buildOrg(ds.Spec.SmaxBytes(), ds.Objects, ds.MBRs)
			agreeStream(t, "fresh", tc, ref, stream)

			for i, op := range ops {
				switch op.Kind {
				case datagen.OpInsert:
					ref.Insert(op.Obj, op.Key)
					if err := tc.client.Insert(op.Obj, op.Key); err != nil {
						t.Fatalf("op %d: insert: %v", i, err)
					}
				case datagen.OpDelete:
					want := ref.Delete(op.ID)
					got, err := tc.client.Delete(op.ID)
					if err != nil {
						t.Fatalf("op %d: delete: %v", i, err)
					}
					if got != want {
						t.Fatalf("op %d: delete %d: router existed=%v, reference %v", i, op.ID, got, want)
					}
				case datagen.OpUpdate:
					want := ref.Update(op.Obj, op.Key)
					got, err := tc.client.Update(op.Obj, op.Key)
					if err != nil {
						t.Fatalf("op %d: update: %v", i, err)
					}
					if got != want {
						t.Fatalf("op %d: update %d: router existed=%v, reference %v", i, op.Obj.ID, got, want)
					}
				case datagen.OpQuery:
					got, err := tc.client.Window(op.Window, "")
					if err != nil {
						t.Fatalf("op %d: query: %v", i, err)
					}
					want := ref.WindowQuery(op.Window, store.TechComplete)
					if !equalU64(sortedU64(got.IDs), sortedU64(idsToU64(want.IDs))) {
						t.Fatalf("op %d: window %v mid-churn: router != reference", i, op.Window)
					}
				}
			}
			agreeStream(t, "churned", tc, ref, stream)
		})
	}
}

// tieObj builds a degenerate vertical sliver whose exact distance from a
// horizontally aligned query point is the horizontal offset — so two of
// them, mirrored around the query point, tie exactly.
func tieObj(id uint64, x, y float64) (*object.Object, geom.Rect) {
	o := object.New(object.ID(id), geom.NewPolyline([]geom.Point{
		geom.Pt(x, y), geom.Pt(x, y+1e-9),
	}), 0)
	return o, o.Bounds()
}

// TestRouterKNNTieAcrossBoundary pins the k-NN merge's tie handling: objects
// at exactly equal distance from the query point live on different shards,
// and k cuts through the tie group — the global (distance, ID) order must
// decide, exactly as a single store would.
func TestRouterKNNTieAcrossBoundary(t *testing.T) {
	var objs []*object.Object
	var keys []geom.Rect
	add := func(id uint64, x, y float64) {
		o, k := tieObj(id, x, y)
		objs = append(objs, o)
		keys = append(keys, k)
	}
	// Four objects at distance exactly 0.25 from (0.5, 0.5): two on each
	// side of the vertical mid-line, with IDs interleaved across sides so
	// the tie-break order alternates shards.
	add(10, 0.25, 0.5)
	add(11, 0.75, 0.5)
	add(12, 0.25, 0.5)
	add(13, 0.75, 0.5)
	// One strictly nearer and one strictly farther object as anchors.
	add(1, 0.5, 0.4)
	add(99, 0.05, 0.05)

	pmap := shard.FromKeys(keys, 2)
	left, _ := shardSubset(&datagen.Dataset{Objects: objs, MBRs: keys}, pmap, 0)
	if len(left) == 0 || len(left) == len(objs) {
		t.Fatalf("tie objects did not straddle the boundary: %d of %d on shard 0", len(left), len(objs))
	}
	orgs := make([]store.Organization, 2)
	for s := 0; s < 2; s++ {
		so, sk := shardSubset(&datagen.Dataset{Objects: objs, MBRs: keys}, pmap, s)
		orgs[s] = buildOrg(32768, so, sk)
	}
	tc := startCluster(t, pmap, orgs)
	ref := buildOrg(32768, objs, keys)

	p := geom.Pt(0.5, 0.5)
	for k := 1; k <= 6; k++ {
		got, err := tc.client.KNN(p, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		want := ref.NearestQuery(p, k)
		if !equalU64(got.IDs, idsToU64(want.IDs)) {
			t.Fatalf("k=%d: router %v != reference %v", k, got.IDs, want.IDs)
		}
	}
	// The tie group straddles the cut at k=3: nearest is id 1, then the
	// four-way tie at 0.25 resolved by ID.
	got, err := tc.client.KNN(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !equalU64(got.IDs, []uint64{1, 10, 11}) {
		t.Fatalf("k=3 tie-break answered %v, want [1 10 11]", got.IDs)
	}
}

// TestRouterZeroShardWindow: a window farther from the data space than any
// key half-extent overlaps zero shards; the router answers it empty without
// asking any shard — and agrees with the reference store.
func TestRouterZeroShardWindow(t *testing.T) {
	ds := datagen.Generate(datagen.Spec{Map: datagen.Map1, Series: datagen.SeriesA, Scale: 512, Seed: 3})
	tc := clusterFromDataset(t, ds, 4)
	ref := buildOrg(ds.Spec.SmaxBytes(), ds.Objects, ds.MBRs)

	far := geom.R(5, 5, 6, 6)
	if shards := tc.pmap.Overlapping(far); len(shards) != 0 {
		t.Fatalf("far window overlaps shards %v, want none", shards)
	}
	got, err := tc.client.Window(far, "")
	if err != nil {
		t.Fatal(err)
	}
	want := ref.WindowQuery(far, store.TechComplete)
	if len(got.IDs) != 0 || len(want.IDs) != 0 {
		t.Fatalf("far window answers: router %v, reference %v, want both empty", got.IDs, want.IDs)
	}
	// No shard saw the request: shard-side query counters stay empty.
	for s, c := range tc.shards {
		m, err := c.Metrics()
		if err != nil {
			t.Fatal(err)
		}
		if ep, ok := m.Endpoints["/query/window"]; ok && ep.Count > 0 {
			t.Fatalf("shard %d served %d window queries for a zero-shard window", s, ep.Count)
		}
	}
}

// TestRouterEmptyShard: a zero-width range owns no objects; queries spanning
// the whole space and k-NN must still answer exactly like the reference.
func TestRouterEmptyShard(t *testing.T) {
	ds := datagen.Generate(datagen.Spec{Map: datagen.Map1, Series: datagen.SeriesA, Scale: 512, Seed: 9})
	cut := geom.HilbertRange / 2
	pmap, err := shard.FromRanges([][2]uint64{{0, cut}, {cut, cut}, {cut, geom.HilbertRange}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds.MBRs {
		pmap.Observe(ds.MBRs[i])
	}
	orgs := make([]store.Organization, 3)
	for s := 0; s < 3; s++ {
		objs, keys := shardSubset(ds, pmap, s)
		orgs[s] = buildOrg(ds.Spec.SmaxBytes(), objs, keys)
	}
	if st := orgs[1].Stats(); st.Objects != 0 {
		t.Fatalf("middle shard owns %d objects, want 0", st.Objects)
	}
	tc := startCluster(t, pmap, orgs)
	ref := buildOrg(ds.Spec.SmaxBytes(), ds.Objects, ds.MBRs)
	stream := loadgen.NewStream(ds, loadgen.StreamSpec{N: 30, WindowArea: 0.01, K: 7, Seed: 31})
	agreeStream(t, "empty-shard", tc, ref, stream)
}

// flakyTransport fails the first n round trips at the connection level,
// then delegates — the same fault the typed client's retry absorbs.
type flakyTransport struct {
	inner http.RoundTripper
	fails atomic.Int64
}

func (f *flakyTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if f.fails.Add(-1) >= 0 {
		return nil, &net.OpError{Op: "read", Err: fmt.Errorf("wrapped: %w", syscall.ECONNRESET)}
	}
	return f.inner.RoundTrip(r)
}

// TestRouterShardRetry: one shard resets connections, another answers 429 —
// the router's scatter must converge through the typed clients' retry and
// still merge the correct answer.
func TestRouterShardRetry(t *testing.T) {
	ds := datagen.Generate(datagen.Spec{Map: datagen.Map1, Series: datagen.SeriesA, Scale: 512, Seed: 13})
	ref := buildOrg(ds.Spec.SmaxBytes(), ds.Objects, ds.MBRs)

	pmap := shard.FromKeys(ds.MBRs, 2)
	orgs := make([]store.Organization, 2)
	for s := 0; s < 2; s++ {
		objs, keys := shardSubset(ds, pmap, s)
		orgs[s] = buildOrg(ds.Spec.SmaxBytes(), objs, keys)
	}

	t.Run("connection reset", func(t *testing.T) {
		tc := startCluster(t, pmap, orgs)
		ft := &flakyTransport{inner: tc.shards[0].HTTP.Transport}
		ft.fails.Store(3)
		tc.shards[0].HTTP = &http.Client{Transport: ft}

		w := geom.R(0, 0, 1, 1)
		got, err := tc.client.Window(w, "")
		if err != nil {
			t.Fatalf("window through flaky shard: %v", err)
		}
		want := ref.WindowQuery(w, store.TechComplete)
		if !equalU64(sortedU64(got.IDs), sortedU64(idsToU64(want.IDs))) {
			t.Fatalf("answer through flaky shard: %d ids, want %d", len(got.IDs), len(want.IDs))
		}
		if ft.fails.Load() >= 0 {
			t.Fatal("flaky transport never fired")
		}
	})

	t.Run("429 overload", func(t *testing.T) {
		// Shard 1 sits behind a proxy that rejects its first three requests
		// with 429 — the admission answer the client retries with backoff.
		tc := startCluster(t, pmap, orgs)
		inner := tc.shards[1].Base
		var rejected atomic.Int64
		proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if rejected.Add(1) <= 3 {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusTooManyRequests)
				fmt.Fprintln(w, `{"error":"overloaded"}`)
				return
			}
			req, _ := http.NewRequest(r.Method, inner+r.URL.Path, r.Body)
			req.Header = r.Header
			resp, err := http.DefaultTransport.RoundTrip(req)
			if err != nil {
				w.WriteHeader(http.StatusBadGateway)
				return
			}
			defer resp.Body.Close()
			w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
			w.WriteHeader(resp.StatusCode)
			buf := make([]byte, 32<<10)
			for {
				n, err := resp.Body.Read(buf)
				if n > 0 {
					w.Write(buf[:n])
				}
				if err != nil {
					break
				}
			}
		}))
		defer proxy.Close()
		tc.shards[1].Base = proxy.URL

		w := geom.R(0, 0, 1, 1)
		got, err := tc.client.Window(w, "")
		if err != nil {
			t.Fatalf("window through 429ing shard: %v", err)
		}
		want := ref.WindowQuery(w, store.TechComplete)
		if !equalU64(sortedU64(got.IDs), sortedU64(idsToU64(want.IDs))) {
			t.Fatalf("answer through 429ing shard: %d ids, want %d", len(got.IDs), len(want.IDs))
		}
		if rejected.Load() <= 3 {
			t.Fatal("shard never rejected; the retry path was not exercised")
		}
	})
}

// TestRouterWALShards: each shard runs behind its own write-ahead log;
// mutations routed through the router land in exactly one shard's log, and
// recovering every shard from disk reproduces the served answers.
func TestRouterWALShards(t *testing.T) {
	ds := datagen.Generate(datagen.Spec{Map: datagen.Map1, Series: datagen.SeriesA, Scale: 512, Seed: 17})
	pmap := shard.FromKeys(ds.MBRs, 2)
	dirs := make([]string, 2)
	orgs := make([]store.Organization, 2)
	for s := 0; s < 2; s++ {
		objs, keys := shardSubset(ds, pmap, s)
		dirs[s] = filepath.Join(t.TempDir(), fmt.Sprintf("wal%d", s))
		ws, err := wal.Create(buildOrg(ds.Spec.SmaxBytes(), objs, keys), dirs[s], wal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		orgs[s] = ws
	}
	tc := startCluster(t, pmap, orgs)

	ops := ds.MixedWorkload(datagen.MixSpec{Ops: 60, Seed: 18})
	for i, op := range ops {
		var err error
		switch op.Kind {
		case datagen.OpInsert:
			err = tc.client.Insert(op.Obj, op.Key)
		case datagen.OpDelete:
			_, err = tc.client.Delete(op.ID)
		case datagen.OpUpdate:
			_, err = tc.client.Update(op.Obj, op.Key)
		case datagen.OpQuery:
			_, err = tc.client.Window(op.Window, "")
		}
		if err != nil {
			t.Fatalf("op %d (%v): %v", i, op.Kind, err)
		}
	}

	w := geom.R(0, 0, 1, 1)
	served, err := tc.client.Window(w, "")
	if err != nil {
		t.Fatal(err)
	}
	// Crash-recover both shards from their logs; the union of the recovered
	// answers must equal what the live cluster served.
	var recovered []uint64
	for s := 0; s < 2; s++ {
		rec, _, err := wal.Recover(dirs[s], func(p disk.Params) (*store.Env, error) {
			return store.NewEnvWithParams(128, p), nil
		}, wal.Options{})
		if err != nil {
			t.Fatalf("shard %d: recover: %v", s, err)
		}
		recovered = append(recovered, idsToU64(rec.WindowQuery(w, store.TechComplete).IDs)...)
		rec.Close()
	}
	if !equalU64(sortedU64(served.IDs), sortedU64(recovered)) {
		t.Fatalf("recovered cluster answers %d objects, served cluster %d",
			len(recovered), len(served.IDs))
	}
}

// TestRouterAggregation covers /stats, /metrics and /shards: sums across
// shards, the partition description, and the router's own counters.
func TestRouterAggregation(t *testing.T) {
	ds := datagen.Generate(datagen.Spec{Map: datagen.Map1, Series: datagen.SeriesA, Scale: 512, Seed: 23})
	tc := clusterFromDataset(t, ds, 3)

	// A couple of routed requests so the router counters are non-zero.
	if _, err := tc.client.Window(geom.R(0.2, 0.2, 0.4, 0.4), ""); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.client.KNN(geom.Pt(0.5, 0.5), 5); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.client.Recluster("threshold"); err != nil {
		t.Fatal(err)
	}
	if err := tc.client.Flush(); err != nil {
		t.Fatal(err)
	}

	raw, err := tc.client.Raw("/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st router.StatsResponse
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.Shards != 3 || len(st.PerShard) != 3 {
		t.Fatalf("stats shards %d/%d, want 3/3", st.Shards, len(st.PerShard))
	}
	if st.Objects != len(ds.Objects) {
		t.Fatalf("stats objects %d, want %d", st.Objects, len(ds.Objects))
	}
	perShardSum := 0
	for _, ps := range st.PerShard {
		perShardSum += ps.Objects
	}
	if perShardSum != st.Objects {
		t.Fatalf("per-shard sum %d != aggregate %d", perShardSum, st.Objects)
	}

	raw, err = tc.client.Raw("/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m router.MetricsResponse
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if m.Objects != len(ds.Objects) || m.Shards != 3 {
		t.Fatalf("metrics objects %d shards %d, want %d/3", m.Objects, m.Shards, len(ds.Objects))
	}
	if m.Partition != tc.pmap.String() {
		t.Fatalf("metrics partition %q != map %q", m.Partition, tc.pmap.String())
	}
	if ep, ok := m.Router["/query/window"]; !ok || ep.Count < 1 {
		t.Fatalf("router endpoint counters missing window: %+v", m.Router)
	}

	raw, err = tc.client.Raw("/shards")
	if err != nil {
		t.Fatal(err)
	}
	var sh router.ShardsResponse
	if err := json.Unmarshal(raw, &sh); err != nil {
		t.Fatal(err)
	}
	if len(sh.Shards) != 3 {
		t.Fatalf("shards endpoint lists %d shards", len(sh.Shards))
	}
	if sh.Shards[0].Lo != 0 || sh.Shards[2].Hi != geom.HilbertRange {
		t.Fatalf("shards endpoint ranges broken: %+v", sh.Shards)
	}
	for i := 1; i < 3; i++ {
		if sh.Shards[i].Lo != sh.Shards[i-1].Hi {
			t.Fatalf("shards endpoint not contiguous at %d: %+v", i, sh.Shards)
		}
	}
}
