package router_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"spatialcluster/internal/datagen"
	"spatialcluster/internal/geom"
	"spatialcluster/internal/loadgen"
	"spatialcluster/internal/object"
	"spatialcluster/internal/obs"
	"spatialcluster/internal/router"
	"spatialcluster/internal/server"
	"spatialcluster/internal/shard"
	"spatialcluster/internal/store"
)

// buildOrgKind builds any of the three storage organizations over objs.
func buildOrgKind(kind string, smaxBytes int, objs []*object.Object, keys []geom.Rect) store.Organization {
	var org store.Organization
	switch kind {
	case "secondary":
		org = store.NewSecondary(store.NewEnv(128))
	case "primary":
		org = store.NewPrimary(store.NewEnv(128))
	case "cluster":
		org = store.NewCluster(store.NewEnv(128), store.ClusterConfig{SmaxBytes: smaxBytes})
	default:
		panic("unknown org kind " + kind)
	}
	for i, o := range objs {
		org.Insert(o, keys[i])
	}
	org.Flush()
	return org
}

// startClusterKeep is startCluster plus handles on the shard HTTP servers,
// for tests that take shards down.
func startClusterKeep(t *testing.T, pmap *shard.Map, orgs []store.Organization) (*testCluster, []*httptest.Server) {
	t.Helper()
	clients := make([]*server.Client, len(orgs))
	servers := make([]*httptest.Server, len(orgs))
	for i, org := range orgs {
		s := server.New(org, server.Config{})
		hs := httptest.NewServer(s.Handler())
		t.Cleanup(hs.Close)
		servers[i] = hs
		clients[i] = server.NewClient(hs.URL, 16)
		clients[i].Retry = &server.Retry{Attempts: 2, BaseDelay: time.Millisecond,
			MaxDelay: 2 * time.Millisecond, Seed: 11}
	}
	rt, err := router.New(pmap, clients, router.Config{})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(rt.Handler())
	t.Cleanup(hs.Close)
	return &testCluster{pmap: pmap, client: server.NewClient(hs.URL, 16), shards: clients, rt: rt}, servers
}

// checkSpanTree validates an assembled distributed trace: one scatter span
// whose Count matches the shard[i] children, every shard span carrying its
// shard's grafted execute sub-trace, a merge span, and no span outlasting
// the trace (with slack for clock coarseness).
func checkSpanTree(t *testing.T, label string, ti *server.TraceInfo, wantShards int, wantWaves bool) {
	t.Helper()
	if ti == nil || ti.TraceID == 0 {
		t.Fatalf("%s: traced answer carried no trace: %+v", label, ti)
	}
	byID := make(map[uint32]obs.Span)
	var scatter *obs.Span
	var shardSpans, waveSpans, execSpans, mergeSpans []obs.Span
	for _, sp := range ti.Spans {
		sp := sp
		if sp.ID != 0 {
			byID[sp.ID] = sp
		}
		switch {
		case sp.Stage == "scatter":
			if scatter != nil {
				t.Fatalf("%s: two scatter spans", label)
			}
			scatter = &sp
		case strings.HasPrefix(sp.Stage, "shard["):
			shardSpans = append(shardSpans, sp)
		case strings.HasPrefix(sp.Stage, "wave["):
			waveSpans = append(waveSpans, sp)
		case sp.Stage == "execute":
			execSpans = append(execSpans, sp)
		case sp.Stage == "merge":
			mergeSpans = append(mergeSpans, sp)
		}
		const slackMS = 50
		if sp.DurMS > ti.TotalMS+slackMS {
			t.Fatalf("%s: span %q lasted %.3fms, trace wall %.3fms", label, sp.Stage, sp.DurMS, ti.TotalMS)
		}
	}
	if scatter == nil || scatter.Parent != 0 {
		t.Fatalf("%s: no root scatter span in %+v", label, ti.Spans)
	}
	if len(shardSpans) != wantShards {
		t.Fatalf("%s: %d shard spans, want %d: %+v", label, len(shardSpans), wantShards, ti.Spans)
	}
	if scatter.Count != int64(wantShards) {
		t.Fatalf("%s: scatter span Count %d, want fan-out %d", label, scatter.Count, wantShards)
	}
	if len(mergeSpans) != 1 {
		t.Fatalf("%s: %d merge spans, want 1", label, len(mergeSpans))
	}
	if len(execSpans) < wantShards {
		t.Fatalf("%s: %d execute sub-spans for %d shards — a shard's trace was not grafted",
			label, len(execSpans), wantShards)
	}
	// Every shard span hangs off the scatter span (directly, or through a
	// wave span for k-NN), and every execute span hangs under a shard span.
	for _, sp := range shardSpans {
		parent := sp.Parent
		if wantWaves {
			wv, ok := byID[parent]
			if !ok || !strings.HasPrefix(wv.Stage, "wave[") {
				t.Fatalf("%s: shard span parented to %d, want a wave span", label, parent)
			}
			parent = wv.Parent
		}
		if parent != scatter.ID {
			t.Fatalf("%s: shard span chain does not reach the scatter span", label)
		}
	}
	for _, sp := range execSpans {
		p, ok := byID[sp.Parent]
		if !ok {
			t.Fatalf("%s: execute span parented to unknown span %d", label, sp.Parent)
		}
		if !strings.HasPrefix(p.Stage, "shard[") && p.Stage != "queue_wait" && p.Stage != "execute" {
			t.Fatalf("%s: execute span parented to %q, want a shard[i] span", label, p.Stage)
		}
	}
	if wantWaves {
		if len(waveSpans) == 0 {
			t.Fatalf("%s: k-NN trace carries no wave spans", label)
		}
		var width int64
		for _, wv := range waveSpans {
			if wv.Parent != scatter.ID {
				t.Fatalf("%s: wave span parented to %d, want scatter %d", label, wv.Parent, scatter.ID)
			}
			width += wv.Count
		}
		if width != scatter.Count {
			t.Fatalf("%s: wave widths sum to %d, scatter fan-out %d", label, width, scatter.Count)
		}
	} else if len(waveSpans) != 0 {
		t.Fatalf("%s: window/point trace carries wave spans", label)
	}
}

// TestRouterTracePropagation is the distributed-tracing differential suite:
// over every storage organization and both wire protocols, traced answers
// through the router must be identical to untraced ones and to the single
// reference store — fresh and after churn routed through the cluster — and
// every trace must assemble into a sound span tree.
func TestRouterTracePropagation(t *testing.T) {
	ds := datagen.Generate(datagen.Spec{Map: datagen.Map1, Series: datagen.SeriesA, Scale: 256, Seed: 17})
	stream := loadgen.NewStream(ds, loadgen.StreamSpec{N: 12, WindowArea: 0.01, K: 7, Seed: 23})
	ops := ds.MixedWorkload(datagen.MixSpec{Ops: 40, HotspotFrac: 0.5, Seed: 24})

	for _, kind := range []string{"secondary", "primary", "cluster"} {
		for _, proto := range []string{"json", "binary"} {
			kind, proto := kind, proto
			t.Run(kind+"/"+proto, func(t *testing.T) {
				const n = 2
				pmap := shard.FromKeys(ds.MBRs, n)
				orgs := make([]store.Organization, n)
				for s := 0; s < n; s++ {
					objs, keys := shardSubset(ds, pmap, s)
					orgs[s] = buildOrgKind(kind, ds.Spec.SmaxBytes(), objs, keys)
				}
				tc := startCluster(t, pmap, orgs)
				tc.client.Binary = proto == "binary"
				ref := buildOrgKind(kind, ds.Spec.SmaxBytes(), ds.Objects, ds.MBRs)

				agree := func(phase string) {
					t.Helper()
					for i, rq := range stream {
						label := fmt.Sprintf("%s req %d", phase, i)
						switch rq.Kind {
						case loadgen.KindWindow:
							traced, err := tc.client.WindowTraced(rq.Window, "")
							if err != nil {
								t.Fatalf("%s: traced window: %v", label, err)
							}
							plain, err := tc.client.Window(rq.Window, "")
							if err != nil {
								t.Fatalf("%s: window: %v", label, err)
							}
							want := ref.WindowQuery(rq.Window, store.TechComplete)
							if !equalU64(sortedU64(traced.IDs), sortedU64(idsToU64(want.IDs))) {
								t.Fatalf("%s: traced window != reference", label)
							}
							if !equalU64(sortedU64(traced.IDs), sortedU64(plain.IDs)) ||
								traced.Candidates != plain.Candidates {
								t.Fatalf("%s: traced window != untraced", label)
							}
							checkSpanTree(t, label, traced.Trace, len(pmap.Overlapping(rq.Window)), false)
						case loadgen.KindKNN:
							traced, err := tc.client.KNNTraced(rq.Point, rq.K)
							if err != nil {
								t.Fatalf("%s: traced knn: %v", label, err)
							}
							plain, err := tc.client.KNN(rq.Point, rq.K)
							if err != nil {
								t.Fatalf("%s: knn: %v", label, err)
							}
							want := ref.NearestQuery(rq.Point, rq.K)
							if !equalU64(traced.IDs, idsToU64(want.IDs)) {
								t.Fatalf("%s: traced knn != reference (rank order)", label)
							}
							if !equalU64(traced.IDs, plain.IDs) {
								t.Fatalf("%s: traced knn != untraced", label)
							}
							sc := spanCount(traced.Trace, "shard[")
							checkSpanTree(t, label, traced.Trace, sc, true)
							if sc < 1 {
								t.Fatalf("%s: knn touched no shard", label)
							}
						case loadgen.KindPoint:
							traced, err := tc.client.PointTraced(rq.Point)
							if err != nil {
								t.Fatalf("%s: traced point: %v", label, err)
							}
							want := ref.PointQuery(rq.Point)
							if !equalU64(sortedU64(traced.IDs), sortedU64(idsToU64(want.IDs))) {
								t.Fatalf("%s: traced point != reference", label)
							}
							checkSpanTree(t, label, traced.Trace, spanCount(traced.Trace, "shard["), false)
						}
					}
				}

				agree("fresh")
				for i, op := range ops {
					switch op.Kind {
					case datagen.OpInsert:
						ref.Insert(op.Obj, op.Key)
						if err := tc.client.Insert(op.Obj, op.Key); err != nil {
							t.Fatalf("op %d: insert: %v", i, err)
						}
					case datagen.OpDelete:
						ref.Delete(op.ID)
						if _, err := tc.client.Delete(op.ID); err != nil {
							t.Fatalf("op %d: delete: %v", i, err)
						}
					case datagen.OpUpdate:
						ref.Update(op.Obj, op.Key)
						if _, err := tc.client.Update(op.Obj, op.Key); err != nil {
							t.Fatalf("op %d: update: %v", i, err)
						}
					}
				}
				agree("churned")
			})
		}
	}
}

func spanCount(ti *server.TraceInfo, prefix string) int {
	if ti == nil {
		return 0
	}
	n := 0
	for _, sp := range ti.Spans {
		if strings.HasPrefix(sp.Stage, prefix) {
			n++
		}
	}
	return n
}

// TestRouterTraceIDPropagates: a trace ID handed to the router comes back on
// the assembled trace — over both protocols.
func TestRouterTraceIDPropagates(t *testing.T) {
	ds := datagen.Generate(datagen.Spec{Map: datagen.Map1, Series: datagen.SeriesA, Scale: 128, Seed: 19})
	tc := clusterFromDataset(t, ds, 2)
	for _, binary := range []bool{false, true} {
		tc.client.Binary = binary
		const want = 0xfeedface
		resp, err := tc.client.WindowTracedID(geom.R(0, 0, 1, 1), "", want)
		if err != nil {
			t.Fatalf("binary=%v: %v", binary, err)
		}
		if resp.Trace == nil || resp.Trace.TraceID != want {
			t.Fatalf("binary=%v: trace came back as %+v, want ID %d", binary, resp.Trace, want)
		}
	}
}

// TestRouterShardErrorAddr: when shards fail, the router's error names the
// lowest-indexed failing shard by index AND address — deterministically,
// even with every shard down.
func TestRouterShardErrorAddr(t *testing.T) {
	ds := datagen.Generate(datagen.Spec{Map: datagen.Map1, Series: datagen.SeriesA, Scale: 128, Seed: 29})
	pmap := shard.FromKeys(ds.MBRs, 2)
	orgs := make([]store.Organization, 2)
	for s := 0; s < 2; s++ {
		objs, keys := shardSubset(ds, pmap, s)
		orgs[s] = buildOrg(ds.Spec.SmaxBytes(), objs, keys)
	}
	tc, servers := startClusterKeep(t, pmap, orgs)
	shard0 := tc.shards[0].Base
	for _, hs := range servers {
		hs.Close()
	}

	resp, err := http.Post(tc.client.Base+"/query/window", "application/json",
		strings.NewReader(`{"window":[0,0,1,1]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d, want 502", resp.StatusCode)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("shard 0 (shard=%s)", shard0)
	if !strings.Contains(body.Error, want) {
		t.Fatalf("error %q does not name the lowest failing shard as %q", body.Error, want)
	}
}

// TestRouterHealthReady: /healthz is liveness (always 200); /readyz requires
// every shard up and names the first one down.
func TestRouterHealthReady(t *testing.T) {
	ds := datagen.Generate(datagen.Spec{Map: datagen.Map1, Series: datagen.SeriesA, Scale: 128, Seed: 31})
	pmap := shard.FromKeys(ds.MBRs, 2)
	orgs := make([]store.Organization, 2)
	for s := 0; s < 2; s++ {
		objs, keys := shardSubset(ds, pmap, s)
		orgs[s] = buildOrg(ds.Spec.SmaxBytes(), objs, keys)
	}
	tc, servers := startClusterKeep(t, pmap, orgs)

	status := func(path string) int {
		resp, err := http.Get(tc.client.Base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if s := status("/healthz"); s != http.StatusOK {
		t.Fatalf("/healthz answered %d with the cluster up", s)
	}
	if s := status("/readyz"); s != http.StatusOK {
		t.Fatalf("/readyz answered %d with the cluster up", s)
	}

	servers[1].Close()
	resp, err := http.Get(tc.client.Base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz answered %d with a shard down, want 503", resp.StatusCode)
	}
	var buf [512]byte
	n, _ := resp.Body.Read(buf[:])
	if !strings.Contains(string(buf[:n]), "shard 1") {
		t.Fatalf("/readyz did not name the down shard: %q", buf[:n])
	}
	if s := status("/healthz"); s != http.StatusOK {
		t.Fatalf("/healthz answered %d with a shard down — liveness must not depend on shards", s)
	}
}

// TestRouterRetryCounters: the router attaches retry counters to its shard
// clients; a flaky shard shows up in the /metrics shard-client block.
func TestRouterRetryCounters(t *testing.T) {
	ds := datagen.Generate(datagen.Spec{Map: datagen.Map1, Series: datagen.SeriesA, Scale: 256, Seed: 37})
	pmap := shard.FromKeys(ds.MBRs, 2)
	orgs := make([]store.Organization, 2)
	for s := 0; s < 2; s++ {
		objs, keys := shardSubset(ds, pmap, s)
		orgs[s] = buildOrg(ds.Spec.SmaxBytes(), objs, keys)
	}
	tc := startCluster(t, pmap, orgs)
	ft := &flakyTransport{inner: tc.shards[0].HTTP.Transport}
	ft.fails.Store(2)
	tc.shards[0].HTTP = &http.Client{Transport: ft}

	if _, err := tc.client.Window(geom.R(0, 0, 1, 1), ""); err != nil {
		t.Fatalf("window through flaky shard: %v", err)
	}
	st := tc.shards[0].Counters.Stats()
	if st.RetriedConn < 2 {
		t.Fatalf("shard 0 retry counters saw %d connection retries, want >= 2 (%+v)", st.RetriedConn, st)
	}
	if st.Attempts <= st.RetriedConn {
		t.Fatalf("attempts %d not above retries %d", st.Attempts, st.RetriedConn)
	}

	raw, err := tc.client.Raw("/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m router.MetricsResponse
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if len(m.ShardTier) != 2 {
		t.Fatalf("metrics list %d shard clients, want 2", len(m.ShardTier))
	}
	if m.ShardTier[0].Retry.RetriedConn < 2 || m.ShardTier[0].Retry.Attempts == 0 {
		t.Fatalf("shard client metrics missed the retries: %+v", m.ShardTier[0])
	}
	if m.ShardTier[0].Calls == 0 || m.ShardTier[1].Calls == 0 {
		t.Fatalf("per-shard call counters empty: %+v", m.ShardTier)
	}
	if len(m.Fanout) != 3 || m.Fanout[2] == 0 {
		t.Fatalf("fanout counters did not record the 2-shard scatter: %v", m.Fanout)
	}
}
