package router

import (
	"net/http"

	"spatialcluster/internal/binproto"
	"spatialcluster/internal/framing"
	"spatialcluster/internal/geom"
	"spatialcluster/internal/object"
	"spatialcluster/internal/obs"
	"spatialcluster/internal/store"
)

// Binary wire endpoints: the same /bin/* paths a single server mounts, built
// on the same scatter/merge cores as the JSON handlers. The router decodes a
// binary request once, routes it through the typed shard clients (which may
// themselves be Binary — then the compact encoding runs end to end), and
// re-encodes the merged answer. The traced request kinds propagate exactly
// like ?trace=1 on the JSON side: the router adopts the carried trace ID,
// fans it out to the shards, and answers with a traced response kind holding
// the assembled span tree. Decode errors are a plain HTTP status with a text
// body; shard failures keep the JSON error shape of shardError, which the
// binary client parses too.

func readBinRecord(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body := http.MaxBytesReader(w, r.Body, int64(framing.RecordSize(binproto.MaxMessage)))
	payload, err := framing.ReadRecord(body, binproto.MaxMessage)
	if err != nil {
		http.Error(w, "bad binary frame: "+err.Error(), http.StatusBadRequest)
		return nil, false
	}
	return payload, true
}

func writeBinRecord(w http.ResponseWriter, payload []byte) {
	w.Header().Set("Content-Type", binproto.ContentType)
	framing.AppendRecord(w, payload)
}

// binTrace adopts a propagated nonzero trace ID, else mints a fresh trace.
func binTrace(traceID uint64) *obs.Trace {
	if traceID != 0 {
		return obs.NewTraceWithID(traceID)
	}
	return obs.NewTrace()
}

func (rt *Router) handleBinWindow(w http.ResponseWriter, r *http.Request) {
	payload, ok := readBinRecord(w, r)
	if !ok {
		return
	}
	var (
		win  [4]float64
		tech store.Technique
		err  error
		tr   *obs.Trace
	)
	if binproto.Traced(payload) {
		var tid uint64
		win, tech, tid, err = binproto.DecodeTracedWindowReq(payload)
		if err == nil {
			tr = binTrace(tid)
		}
	} else {
		win, tech, err = binproto.DecodeWindowReq(payload)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ro := rt.newReqObs(tr)
	out, s, err := rt.scatterWindow(geom.R(win[0], win[1], win[2], win[3]), binproto.TechName(tech), ro)
	ro.finish(w)
	if err != nil {
		rt.shardError(w, s, err)
		return
	}
	writeBinQuery(w, out.IDs, out.Candidates, tr)
}

func (rt *Router) handleBinPoint(w http.ResponseWriter, r *http.Request) {
	payload, ok := readBinRecord(w, r)
	if !ok {
		return
	}
	var (
		pt  [2]float64
		err error
		tr  *obs.Trace
	)
	if binproto.Traced(payload) {
		var tid uint64
		pt, tid, err = binproto.DecodeTracedPointReq(payload)
		if err == nil {
			tr = binTrace(tid)
		}
	} else {
		pt, err = binproto.DecodePointReq(payload)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ro := rt.newReqObs(tr)
	out, s, err := rt.scatterPoint(geom.Pt(pt[0], pt[1]), ro)
	ro.finish(w)
	if err != nil {
		rt.shardError(w, s, err)
		return
	}
	writeBinQuery(w, out.IDs, out.Candidates, tr)
}

// writeBinQuery encodes a merged query answer (wire-typed uint64 IDs),
// traced when the request was.
func writeBinQuery(w http.ResponseWriter, ids []uint64, candidates int, tr *obs.Trace) {
	engineIDs := make([]object.ID, len(ids))
	for i, id := range ids {
		engineIDs[i] = object.ID(id)
	}
	buf := binproto.GetBuf()
	defer binproto.PutBuf(buf)
	if tr != nil {
		*buf = binproto.AppendTracedQueryResp((*buf)[:0], engineIDs, candidates,
			tr.ID(), tr.TotalMS(), tr.Spans())
	} else {
		*buf = binproto.AppendQueryResp((*buf)[:0], engineIDs, candidates)
	}
	writeBinRecord(w, *buf)
}

func (rt *Router) handleBinKNN(w http.ResponseWriter, r *http.Request) {
	payload, ok := readBinRecord(w, r)
	if !ok {
		return
	}
	var (
		pt  [2]float64
		k   int
		err error
		tr  *obs.Trace
	)
	if binproto.Traced(payload) {
		var tid uint64
		pt, k, tid, err = binproto.DecodeTracedKNNReq(payload)
		if err == nil {
			tr = binTrace(tid)
		}
	} else {
		pt, k, err = binproto.DecodeKNNReq(payload)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ro := rt.newReqObs(tr)
	out, s, err := rt.scatterKNN(geom.Pt(pt[0], pt[1]), k, ro)
	ro.finish(w)
	if err != nil {
		rt.shardError(w, s, err)
		return
	}
	engineIDs := make([]object.ID, len(out.IDs))
	for i, id := range out.IDs {
		engineIDs[i] = object.ID(id)
	}
	buf := binproto.GetBuf()
	defer binproto.PutBuf(buf)
	if tr != nil {
		*buf = binproto.AppendTracedKNNResp((*buf)[:0], engineIDs, out.Dists, out.Candidates,
			tr.ID(), tr.TotalMS(), tr.Spans())
	} else {
		*buf = binproto.AppendKNNResp((*buf)[:0], engineIDs, out.Dists, out.Candidates)
	}
	writeBinRecord(w, *buf)
}

// decodeBinMutate parses a binary insert/update body, answering the 400.
func decodeBinMutate(w http.ResponseWriter, r *http.Request, kind byte) (*object.Object, geom.Rect, bool) {
	payload, ok := readBinRecord(w, r)
	if !ok {
		return nil, geom.Rect{}, false
	}
	o, key, err := binproto.DecodeMutateReq(payload, kind)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return nil, geom.Rect{}, false
	}
	k := o.Bounds()
	if key != nil {
		k = geom.R(key[0], key[1], key[2], key[3])
	}
	return o, k, true
}

func writeBinMutate(w http.ResponseWriter, existed bool) {
	buf := binproto.GetBuf()
	defer binproto.PutBuf(buf)
	*buf = binproto.AppendMutateResp((*buf)[:0], existed)
	writeBinRecord(w, *buf)
}

func (rt *Router) handleBinInsert(w http.ResponseWriter, r *http.Request) {
	o, key, ok := decodeBinMutate(w, r, binproto.KindInsert)
	if !ok {
		return
	}
	if s, err := rt.insertCore(o, key); err != nil {
		rt.shardError(w, s, err)
		return
	}
	writeBinMutate(w, false)
}

func (rt *Router) handleBinUpdate(w http.ResponseWriter, r *http.Request) {
	o, key, ok := decodeBinMutate(w, r, binproto.KindUpdate)
	if !ok {
		return
	}
	out, s, err := rt.updateCore(o, key)
	if err != nil {
		rt.shardError(w, s, err)
		return
	}
	writeBinMutate(w, out.Existed)
}

func (rt *Router) handleBinDelete(w http.ResponseWriter, r *http.Request) {
	payload, ok := readBinRecord(w, r)
	if !ok {
		return
	}
	id, err := binproto.DecodeDeleteReq(payload)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	existed, s, err := rt.deleteCore(id)
	if err != nil {
		rt.shardError(w, s, err)
		return
	}
	writeBinMutate(w, existed)
}
