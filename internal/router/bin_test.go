package router_test

import (
	"reflect"
	"testing"

	"spatialcluster/internal/datagen"
	"spatialcluster/internal/geom"
	"spatialcluster/internal/loadgen"
	"spatialcluster/internal/server"
	"spatialcluster/internal/store"
)

// compareRouted runs the same queries through two clients of one router and
// requires field-for-field identical merged answers.
func compareRouted(t *testing.T, phase string, jc, bc *server.Client,
	ws []geom.Rect, pts []geom.Point, ks []int) {
	t.Helper()
	for wi, w := range ws {
		jr, err := jc.Window(w, "complete")
		if err != nil {
			t.Fatalf("%s: json window %d: %v", phase, wi, err)
		}
		br, err := bc.Window(w, "complete")
		if err != nil {
			t.Fatalf("%s: bin window %d: %v", phase, wi, err)
		}
		if !reflect.DeepEqual(jr.IDs, br.IDs) || jr.Candidates != br.Candidates {
			t.Fatalf("%s: window %d: encodings disagree through the router", phase, wi)
		}
	}
	for pi, pt := range pts {
		jr, err := jc.Point(pt)
		if err != nil {
			t.Fatalf("%s: json point %d: %v", phase, pi, err)
		}
		br, err := bc.Point(pt)
		if err != nil {
			t.Fatalf("%s: bin point %d: %v", phase, pi, err)
		}
		if !reflect.DeepEqual(jr.IDs, br.IDs) || jr.Candidates != br.Candidates {
			t.Fatalf("%s: point %d: encodings disagree through the router", phase, pi)
		}
	}
	for _, k := range ks {
		for pi, pt := range pts {
			jr, err := jc.KNN(pt, k)
			if err != nil {
				t.Fatalf("%s: json %d-NN %d: %v", phase, k, pi, err)
			}
			br, err := bc.KNN(pt, k)
			if err != nil {
				t.Fatalf("%s: bin %d-NN %d: %v", phase, k, pi, err)
			}
			if !reflect.DeepEqual(jr.IDs, br.IDs) || !reflect.DeepEqual(jr.Dists, br.Dists) ||
				jr.Candidates != br.Candidates {
				t.Fatalf("%s: %d-NN %d: encodings disagree through the router", phase, k, pi)
			}
		}
	}
}

// TestRouterBinaryDifferential drives the binary protocol through the whole
// tier: client → router over /bin/*, and — in the binary-shards arm — router
// → shards over /bin/* as well, so the compact encoding runs end to end. The
// answers must match the JSON encoding and a single reference store, fresh
// and after a churn stream applied through the binary mutation endpoints.
func TestRouterBinaryDifferential(t *testing.T) {
	ds := datagen.Generate(datagen.Spec{Map: datagen.Map1, Series: datagen.SeriesA, Scale: 256, Seed: 7})
	stream := loadgen.NewStream(ds, loadgen.StreamSpec{N: 36, WindowArea: 0.004, K: 9, Seed: 27})
	ws := append(ds.Windows(0.001, 4, 5), ds.Windows(0.01, 3, 6)...)
	pts := ds.Points(5, 7)
	ks := []int{1, 10}
	ops := ds.MixedWorkload(datagen.MixSpec{Ops: 140, HotspotFrac: 0.5, Seed: 33})

	for _, shardBinary := range []bool{false, true} {
		name := "json-shards"
		if shardBinary {
			name = "binary-shards"
		}
		t.Run(name, func(t *testing.T) {
			tc := clusterFromDataset(t, ds, 4)
			if shardBinary {
				// tc.shards aliases the clients the router scatters over, so
				// this flips the router → shard hop to the binary endpoints.
				for _, sc := range tc.shards {
					sc.Binary = true
				}
			}
			ref := buildOrg(ds.Spec.SmaxBytes(), ds.Objects, ds.MBRs)
			bc := *tc.client
			bc.Binary = true
			btc := *tc
			btc.client = &bc

			agreeStream(t, name+"/fresh-bin", &btc, ref, stream)
			compareRouted(t, name+"/fresh", tc.client, &bc, ws, pts, ks)

			// Churn through the router's binary mutation endpoints, mirrored
			// on the reference — existed verdicts must agree op by op.
			for i, op := range ops {
				switch op.Kind {
				case datagen.OpInsert:
					ref.Insert(op.Obj, op.Key)
					if err := bc.Insert(op.Obj, op.Key); err != nil {
						t.Fatalf("op %d: binary insert: %v", i, err)
					}
				case datagen.OpDelete:
					want := ref.Delete(op.ID)
					got, err := bc.Delete(op.ID)
					if err != nil {
						t.Fatalf("op %d: binary delete: %v", i, err)
					}
					if got != want {
						t.Fatalf("op %d: binary delete %d: router existed=%v, reference %v", i, op.ID, got, want)
					}
				case datagen.OpUpdate:
					want := ref.Update(op.Obj, op.Key)
					got, err := bc.Update(op.Obj, op.Key)
					if err != nil {
						t.Fatalf("op %d: binary update: %v", i, err)
					}
					if got != want {
						t.Fatalf("op %d: binary update %d: router existed=%v, reference %v", i, op.Obj.ID, got, want)
					}
				case datagen.OpQuery:
					got, err := bc.Window(op.Window, "")
					if err != nil {
						t.Fatalf("op %d: binary query: %v", i, err)
					}
					want := ref.WindowQuery(op.Window, store.TechComplete)
					if !equalU64(sortedU64(got.IDs), sortedU64(idsToU64(want.IDs))) {
						t.Fatalf("op %d: window %v mid-churn: binary router != reference", i, op.Window)
					}
				}
			}

			agreeStream(t, name+"/churned-bin", &btc, ref, stream)
			compareRouted(t, name+"/churned", tc.client, &bc, ws, pts, ks)
		})
	}
}
