package join

import (
	"runtime"
	"testing"
	"time"

	"spatialcluster/internal/store"
)

// TestParallelJoinDeterministic is the core invariant of the parallel
// engine: every worker count produces identical cardinalities AND identical
// modelled I/O costs, because the dispatcher charges all reads in plane
// order regardless of how many workers refine.
func TestParallelJoinDeterministic(t *testing.T) {
	dsR, dsS := testSets(512, 2)
	for _, kind := range []string{"secondary", "primary", "cluster"} {
		var base Result
		for i, workers := range []int{0, 1, 2, 4, 8} {
			orgR := buildOrg(kind, dsR)
			orgS := buildOrg(kind, dsS)
			res := Run(orgR, orgS, Config{
				BufferPages: 400, Technique: store.TechSLM, Workers: workers,
			})
			if i == 0 {
				base = res
				if base.MBRPairs == 0 {
					t.Fatalf("%s: no candidate pairs", kind)
				}
				continue
			}
			if res.MBRPairs != base.MBRPairs || res.ResultPairs != base.ResultPairs ||
				res.ExactTests != base.ExactTests {
				t.Fatalf("%s workers=%d: pairs %d/%d/%d, want %d/%d/%d", kind, workers,
					res.MBRPairs, res.ResultPairs, res.ExactTests,
					base.MBRPairs, base.ResultPairs, base.ExactTests)
			}
			if res.MBRJoinCost != base.MBRJoinCost {
				t.Fatalf("%s workers=%d: MBR join cost %+v, want %+v",
					kind, workers, res.MBRJoinCost, base.MBRJoinCost)
			}
			if res.TransferCost != base.TransferCost {
				t.Fatalf("%s workers=%d: transfer cost %+v, want %+v",
					kind, workers, res.TransferCost, base.TransferCost)
			}
		}
	}
}

// TestParallelJoinTechniquesDeterministic covers the remaining cluster read
// techniques under a small buffer (eviction pressure) — the worker count
// must still not leak into the modelled costs.
func TestParallelJoinTechniquesDeterministic(t *testing.T) {
	dsR, dsS := testSets(512, 2)
	for _, tech := range []store.Technique{store.TechComplete, store.TechSLMVector, store.TechPageByPage} {
		var base Result
		for i, workers := range []int{1, 4} {
			orgR := buildOrg("cluster", dsR)
			orgS := buildOrg("cluster", dsS)
			res := Run(orgR, orgS, Config{BufferPages: 100, Technique: tech, Workers: workers})
			if i == 0 {
				base = res
				continue
			}
			if res.ResultPairs != base.ResultPairs || res.TransferCost != base.TransferCost {
				t.Fatalf("%v workers=%d: result %d cost %+v, want %d %+v", tech, workers,
					res.ResultPairs, res.TransferCost, base.ResultPairs, base.TransferCost)
			}
		}
	}
}

// TestParallelJoinSpeedup checks the wall-clock win of the worker pool. It
// needs real cores: on fewer than 4 CPUs the refinement workers cannot run
// concurrently and the test skips (the acceptance workload is
// BenchmarkParallelJoin / clusterbench -exp parallel on multi-core hosts).
func TestParallelJoinSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if n := runtime.GOMAXPROCS(0); n < 4 {
		t.Skipf("need >= 4 CPUs for a meaningful speedup, have %d", n)
	}
	dsR, dsS := testSets(64, 3)
	orgR := buildOrg("cluster", dsR)
	orgS := buildOrg("cluster", dsS)

	measure := func(workers int) float64 {
		best := time.Duration(1<<62 - 1)
		for i := 0; i < 3; i++ {
			orgR.Env().Buf.Retain(orgR.Tree().IsDirPage)
			orgS.Env().Buf.Retain(orgS.Tree().IsDirPage)
			start := time.Now()
			Run(orgR, orgS, Config{BufferPages: 800, Technique: store.TechSLM, Workers: workers})
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best.Seconds()
	}
	serial := measure(1)
	parallel := measure(4)
	if speedup := serial / parallel; speedup < 2 {
		t.Errorf("4-worker speedup %.2fx < 2x (serial %.3fs, parallel %.3fs)",
			speedup, serial, parallel)
	}
}
