package join

import (
	"sort"
	"sync"
	"time"

	"spatialcluster/internal/buffer"
	"spatialcluster/internal/disk"
	"spatialcluster/internal/geom"
	"spatialcluster/internal/object"
	"spatialcluster/internal/obs"
	"spatialcluster/internal/rtree"
	"spatialcluster/internal/store"
)

// ExactTestMS is the CPU cost charged per exact geometry test (paper
// section 6.3: "one test needs roughly 0.75 msec" on the decomposed
// representation).
const ExactTestMS = 0.75

// maxWorkers bounds the refinement pool; beyond this the dispatcher cannot
// keep the workers fed anyway.
const maxWorkers = 64

// Config tunes a join run.
type Config struct {
	// BufferPages is the total LRU buffer available for the join; it is
	// split evenly between the two inputs (each side buffers its own tree
	// and object pages). The paper sweeps 200–6,400 pages.
	BufferPages int
	// Technique selects how cluster units are read during object transfer
	// (complete / SLM read / SLM vector read); non-cluster organizations
	// ignore it.
	Technique store.Technique
	// SkipExactTest omits phase 3 (used by experiments that only study
	// I/O, e.g. Figures 14 and 16).
	SkipExactTest bool
	// Workers sets the size of the worker pool that materializes objects
	// and runs the refinement step (phases 2/3). Values <= 1 run
	// single-threaded. The modelled I/O cost, MBRPairs and ResultPairs are
	// identical for every worker count; only wall-clock time changes.
	Workers int
	// Overlap (with Workers > 1) overlaps the dispatcher with the worker
	// pool: the pure-CPU distinct-ID precompute moves off the dispatcher
	// into a pipelined background stage, and prepared groups are queued
	// several deep so the dispatcher materializes ahead of refinement.
	// PrepareFetch — the only stage that charges modelled I/O — stays
	// serialized on the dispatcher in plane order, so answers and modelled
	// costs are byte-identical to a non-overlapped run of any worker count;
	// only the wall-clock serialization point shrinks. Ignored when
	// Workers <= 1 or SkipExactTest is set.
	Overlap bool
	// Stages, when non-nil, accumulates wall-clock stage attribution: how
	// long the serialized dispatcher spent in the MBR join and in transfer
	// preparation, how long it stalled on a saturated worker pool, and the
	// summed worker busy time in refinement. Answers and modelled costs are
	// unchanged by observation.
	Stages *obs.JoinStages
}

// Result reports the costs and cardinalities of one join run.
type Result struct {
	MBRPairs    int // candidate pairs after the filter step
	ResultPairs int // pairs whose exact geometries intersect

	MBRJoinCost  disk.Cost // phase 1 I/O (tree pages, both sides)
	TransferCost disk.Cost // phase 2 I/O (object pages, both sides)
	ExactTests   int
	ExactTestMS  float64 // phase 3 CPU time

	// OptimumMS is the theoretical lower bound of Figure 16 for the
	// object-transfer phase: one seek and one rotational delay per
	// accessed cluster unit (or object, for non-clustered organizations)
	// and each requested page transferred exactly once.
	OptimumMS float64
}

// IOTimeMS returns the modelled I/O time of the join under params p.
func (r Result) IOTimeMS(p disk.Params) float64 {
	return r.MBRJoinCost.TimeMS(p) + r.TransferCost.TimeMS(p)
}

// TotalTimeMS returns I/O plus refinement CPU time (Figure 17).
func (r Result) TotalTimeMS(p disk.Params) float64 {
	return r.IOTimeMS(p) + r.ExactTestMS
}

// entryRef identifies one data entry: its object and its data page.
type entryRef struct {
	id   object.ID
	size int
	leaf disk.PageID
	rect geom.Rect
}

// candidate is one pair of possibly intersecting data entries.
type candidate struct {
	r, s entryRef
}

// leafPair groups the candidates of one data-page pair; objects are
// transferred in leafPair granularity so the cluster techniques can batch
// their reads.
type leafPair struct {
	leafR, leafS disk.PageID
	minX         float64
	cands        []candidate
}

// rGroup is the set of leaf pairs sharing one pinned R-side data page.
type rGroup struct {
	leafR disk.PageID
	minX  float64
	pairs []*leafPair
}

// Run executes the intersection join R ⋈ S over two organizations. Both
// organizations must be flushed (construction finished).
func Run(orgR, orgS store.Organization, cfg Config) Result {
	if cfg.BufferPages <= 0 {
		cfg.BufferPages = 1600
	}
	half := cfg.BufferPages / 2
	if half < 2 {
		half = 2
	}
	bufR := buffer.New(orgR.Env().Disk, half)
	bufS := buffer.New(orgS.Env().Disk, half)

	j := &joiner{
		orgR: orgR, orgS: orgS,
		treeR: orgR.Tree(), treeS: orgS.Tree(),
		bufR: bufR, bufS: bufS,
		pairsByLeaf: make(map[[2]disk.PageID]*leafPair),
		decodedR:    make(map[disk.PageID]*rtree.Node),
		decodedS:    make(map[disk.PageID]*rtree.Node),
		sortedR:     make(map[disk.PageID][]sweepEntry),
		sortedS:     make(map[disk.PageID][]sweepEntry),
	}

	var res Result

	// Phase 1: MBR join.
	costR0, costS0 := orgR.Env().Disk.Cost(), orgS.Env().Disk.Cost()
	phase1 := time.Now()
	j.joinNodes(j.readNode(j.treeR, j.bufR, j.treeR.Root()),
		j.readNode(j.treeS, j.bufS, j.treeS.Root()))
	if cfg.Stages != nil {
		cfg.Stages.MBRJoinNS.Add(time.Since(phase1).Nanoseconds())
	}
	res.MBRJoinCost = orgR.Env().Disk.Cost().Sub(costR0).
		Add(orgS.Env().Disk.Cost().Sub(costS0))

	// Order the transfer phase by the plane order of [BKS93b] with leaf
	// pinning: the leaf pairs of one R-side data page form a group (the R
	// page is "pinned" and processed with all its partners before moving
	// on), groups and the pairs within them are ordered by the smallest
	// lower x of the intersection regions.
	groupsByLeaf := make(map[disk.PageID]*rGroup)
	for _, lp := range j.pairsByLeaf {
		res.MBRPairs += len(lp.cands)
		g := groupsByLeaf[lp.leafR]
		if g == nil {
			g = &rGroup{leafR: lp.leafR, minX: lp.minX}
			groupsByLeaf[lp.leafR] = g
		}
		if lp.minX < g.minX {
			g.minX = lp.minX
		}
		g.pairs = append(g.pairs, lp)
	}
	groups := make([]*rGroup, 0, len(groupsByLeaf))
	for _, g := range groupsByLeaf {
		sort.Slice(g.pairs, func(a, b int) bool {
			if g.pairs[a].minX != g.pairs[b].minX {
				return g.pairs[a].minX < g.pairs[b].minX
			}
			return g.pairs[a].leafS < g.pairs[b].leafS
		})
		groups = append(groups, g)
	}
	sort.Slice(groups, func(a, b int) bool {
		if groups[a].minX != groups[b].minX {
			return groups[a].minX < groups[b].minX
		}
		return groups[a].leafR < groups[b].leafR
	})

	// The transfer optimum of Figure 16 is defined for the cluster
	// organization's read techniques only.
	_, clusterR := orgR.(*store.Cluster)
	_, clusterS := orgS.(*store.Cluster)
	var opt *optTracker
	if clusterR && clusterS {
		opt = newOptTracker()
	}

	// Phases 2 (+3): transfer objects group by group and refine.
	costR0, costS0 = orgR.Env().Disk.Cost(), orgS.Env().Disk.Cost()
	tallies := j.runGroups(groups, cfg, opt)
	for _, t := range tallies {
		res.ExactTests += t.exactTests
		res.ExactTestMS += t.exactMS
		res.ResultPairs += t.resultPairs
	}
	res.TransferCost = orgR.Env().Disk.Cost().Sub(costR0).
		Add(orgS.Env().Disk.Cost().Sub(costS0))
	if opt != nil {
		res.OptimumMS = opt.totalMS(orgR.Env().Params())
	}
	return res
}

// distinctIDs collects the distinct R-side (or S-side) object IDs of a leaf
// pair's candidates.
func distinctIDs(cands []candidate, rSide bool) []object.ID {
	seen := make(map[object.ID]bool, len(cands))
	var out []object.ID
	for _, c := range cands {
		ref := c.s
		if rSide {
			ref = c.r
		}
		if !seen[ref.id] {
			seen[ref.id] = true
			out = append(out, ref.id)
		}
	}
	return out
}

// decompose builds decomposed representations keyed by object ID.
func decompose(objs []*object.Object) map[object.ID]*geom.Decomposed {
	out := make(map[object.ID]*geom.Decomposed, len(objs))
	for _, o := range objs {
		out[o.ID] = geom.Decompose(o.Geom)
	}
	return out
}

// joiner carries the traversal state of phase 1.
type joiner struct {
	orgR, orgS   store.Organization
	treeR, treeS *rtree.Tree
	bufR, bufS   *buffer.Manager
	pairsByLeaf  map[[2]disk.PageID]*leafPair

	// decoded caches the deserialized nodes per side: the plane-order
	// descent visits the same subtree once per partner, and re-decoding a
	// 4 KB page on every visit dominated the traversal's wall-clock. The
	// cache only skips the CPU decode — the buffer Get (and with it every
	// modelled charge and LRU movement) still happens per visit, so costs
	// are unchanged. Trees are static during a join.
	decodedR, decodedS map[disk.PageID]*rtree.Node
	// sorted caches the x-sorted sweep projection of each node's entries,
	// for the same reason: a node is swept once per partner node.
	sortedR, sortedS map[disk.PageID][]sweepEntry
}

// sweepProjection returns the cached x-sorted projection of a node's entries.
func (j *joiner) sweepProjection(n *rtree.Node, rSide bool) []sweepEntry {
	cache := j.sortedS
	if rSide {
		cache = j.sortedR
	}
	if s, ok := cache[n.ID]; ok {
		return s
	}
	s := xSorted(n.Entries)
	cache[n.ID] = s
	return s
}

// readNode fetches a tree node through the join buffer.
func (j *joiner) readNode(t *rtree.Tree, m *buffer.Manager, id disk.PageID) *rtree.Node {
	data := m.Get(id)
	cache := j.decodedR
	if t == j.treeS {
		cache = j.decodedS
	}
	if n, ok := cache[id]; ok {
		return n
	}
	n := t.DecodeNode(id, data)
	cache[id] = n
	return n
}

// pairIdx is one intersecting entry pair of a node pair: indices into the
// nodes' entry lists plus the lower x of the intersection region.
type pairIdx struct {
	i, j int
	minX float64
}

// Concrete sort.Interface implementations for the traversal's hot sorts:
// sort.Sort runs the same pdqsort as sort.Slice (so the resulting order is
// bit-for-bit identical) but without reflection-based swaps, which dominated
// the phase-1 wall-clock.

type pairsByIJ []pairIdx

func (p pairsByIJ) Len() int      { return len(p) }
func (p pairsByIJ) Swap(x, y int) { p[x], p[y] = p[y], p[x] }
func (p pairsByIJ) Less(x, y int) bool {
	if p[x].i != p[y].i {
		return p[x].i < p[y].i
	}
	return p[x].j < p[y].j
}

type pairsByMinX []pairIdx

func (p pairsByMinX) Len() int           { return len(p) }
func (p pairsByMinX) Swap(x, y int)      { p[x], p[y] = p[y], p[x] }
func (p pairsByMinX) Less(x, y int) bool { return p[x].minX < p[y].minX }

// sweepEntry is one node entry prepared for the plane sweep.
type sweepEntry struct {
	idx        int
	minX, maxX float64
	minY, maxY float64
}

type sweepByMinX []sweepEntry

func (p sweepByMinX) Len() int           { return len(p) }
func (p sweepByMinX) Swap(x, y int)      { p[x], p[y] = p[y], p[x] }
func (p sweepByMinX) Less(x, y int) bool { return p[x].minX < p[y].minX }

// xSorted projects the entries' MBRs and sorts them by lower x.
func xSorted(entries []rtree.Entry) []sweepEntry {
	out := make([]sweepEntry, len(entries))
	for i := range entries {
		r := entries[i].Rect
		out[i] = sweepEntry{idx: i, minX: r.MinX, maxX: r.MaxX, minY: r.MinY, maxY: r.MaxY}
	}
	sort.Sort(sweepByMinX(out))
	return out
}

// sweepPairs computes the intersecting entry pairs of nodes a and b with a
// plane sweep over x-sorted entries ([BKSS94]'s sort-based optimization):
// both entry lists are sorted by their lower x-coordinate and merged; each
// consumed entry is paired with the not-yet-consumed entries of the other
// side whose lower x lies within its x-extent, testing only the y-overlap.
// This cuts the work per node pair from O(n·m) rectangle tests toward
// O(n·log n + m·log m + k) for k results (and the sorted projections are
// cached per node, so repeated pairings pay only O(n+m+k)). The pairs are
// returned ordered by (i, j) — the emission order of the nested loop it
// replaces — so downstream processing is unchanged.
func (j *joiner) sweepPairs(a, b *rtree.Node) []pairIdx {
	as, bs := j.sweepProjection(a, true), j.sweepProjection(b, false)

	var pairs []pairIdx
	emit := func(ea, eb sweepEntry) {
		if ea.minY <= eb.maxY && eb.minY <= ea.maxY {
			minX := ea.minX
			if eb.minX > minX {
				minX = eb.minX
			}
			pairs = append(pairs, pairIdx{i: ea.idx, j: eb.idx, minX: minX})
		}
	}
	i, k := 0, 0
	for i < len(as) && k < len(bs) {
		if as[i].minX <= bs[k].minX {
			e := as[i]
			for n := k; n < len(bs) && bs[n].minX <= e.maxX; n++ {
				emit(e, bs[n])
			}
			i++
		} else {
			e := bs[k]
			for n := i; n < len(as) && as[n].minX <= e.maxX; n++ {
				emit(as[n], e)
			}
			k++
		}
	}
	sort.Sort(pairsByIJ(pairs))
	return pairs
}

// joinNodes performs the synchronized traversal of [BKS93b]: intersecting
// entry pairs are computed by plane sweep, restricted to the intersection of
// the node regions, ordered by their lower x-coordinate, and descended in
// that order.
func (j *joiner) joinNodes(a, b *rtree.Node) {
	// Height alignment: descend the deeper tree alone until levels match.
	if a.Level > b.Level {
		for i := range a.Entries {
			if a.Entries[i].Rect.Intersects(b.Rect()) {
				j.joinNodes(j.readNode(j.treeR, j.bufR, a.Entries[i].Child), b)
			}
		}
		return
	}
	if b.Level > a.Level {
		for i := range b.Entries {
			if b.Entries[i].Rect.Intersects(a.Rect()) {
				j.joinNodes(a, j.readNode(j.treeS, j.bufS, b.Entries[i].Child))
			}
		}
		return
	}

	pairs := j.sweepPairs(a, b)
	sort.Sort(pairsByMinX(pairs))

	if a.Level == 0 {
		key := [2]disk.PageID{a.ID, b.ID}
		lp := j.pairsByLeaf[key]
		for _, p := range pairs {
			er, es := a.Entries[p.i], b.Entries[p.j]
			idR, sizeR := store.DecodeEntryID(j.orgR, er)
			idS, sizeS := store.DecodeEntryID(j.orgS, es)
			if lp == nil {
				lp = &leafPair{leafR: a.ID, leafS: b.ID, minX: p.minX}
				j.pairsByLeaf[key] = lp
			}
			lp.cands = append(lp.cands, candidate{
				r: entryRef{id: idR, size: sizeR, leaf: a.ID, rect: er.Rect},
				s: entryRef{id: idS, size: sizeS, leaf: b.ID, rect: es.Rect},
			})
		}
		return
	}
	// Directory level: pinning — group by the a-side child so one subtree
	// is joined with all its partners before moving on.
	done := make(map[int]bool, len(pairs))
	for x := 0; x < len(pairs); x++ {
		if done[x] {
			continue
		}
		ai := pairs[x].i
		childA := j.readNode(j.treeR, j.bufR, a.Entries[ai].Child)
		for y := x; y < len(pairs); y++ {
			if done[y] || pairs[y].i != ai {
				continue
			}
			done[y] = true
			childB := j.readNode(j.treeS, j.bufS, b.Entries[pairs[y].j].Child)
			j.joinNodes(childA, childB)
		}
	}
}

// groupTally is the refinement outcome of one rGroup.
type groupTally struct {
	exactTests  int
	resultPairs int
	exactMS     float64
}

// groupWork is one prepared group: the transfers were charged and captured by
// the dispatcher; materialization and refinement are pure CPU work that any
// worker can run.
type groupWork struct {
	g      *rGroup
	fetchR store.ObjectFetch
	fetchS []store.ObjectFetch // one per leaf pair, in pair order
	tally  *groupTally
}

// refine materializes the group's objects and runs the exact geometry tests.
func (w *groupWork) refine() {
	decR := decompose(w.fetchR())
	for pi, lp := range w.g.pairs {
		decS := decompose(w.fetchS[pi]())
		for _, c := range lp.cands {
			w.tally.exactTests++
			w.tally.exactMS += ExactTestMS
			if decR[c.r.id].Intersects(decS[c.s.id]) {
				w.tally.resultPairs++
			}
		}
	}
}

// prepared holds the precomputed distinct-ID lists of one group: pure CPU
// work, a function of the group's candidates only — no I/O, no shared state —
// so it can run ahead of the dispatcher without perturbing anything.
type prepared struct {
	idsR     []object.ID   // distinct R-side IDs of the whole group
	perPairR [][]object.ID // distinct R-side IDs per leaf pair (optimum tracker)
	perPairS [][]object.ID // distinct S-side IDs per leaf pair
}

// prepareIDs computes the distinct IDs once per pair and side, shared between
// the transfer and the optimum tracker.
func prepareIDs(g *rGroup) prepared {
	p := prepared{
		perPairR: make([][]object.ID, len(g.pairs)),
		perPairS: make([][]object.ID, len(g.pairs)),
	}
	seenR := map[object.ID]bool{}
	for pi, lp := range g.pairs {
		p.perPairR[pi] = distinctIDs(lp.cands, true)
		p.perPairS[pi] = distinctIDs(lp.cands, false)
		for _, id := range p.perPairR[pi] {
			if !seenR[id] {
				seenR[id] = true
				p.idsR = append(p.idsR, id)
			}
		}
	}
	return p
}

// runGroups executes phases 2 and 3 over the plane-ordered groups. The
// dispatcher (this goroutine) prepares every object transfer in plane order,
// so all modelled I/O is charged in one deterministic sequence regardless of
// cfg.Workers; with Workers > 1 the prepared groups are refined by a bounded
// worker pool. The pinned R page's objects are fetched once per group.
//
// With cfg.Overlap the distinct-ID precompute runs in a pipelined background
// goroutine (group order preserved) and the task queue deepens so the
// dispatcher materializes ahead; PrepareNS then clocks only the irreducibly
// serialized PrepareFetch work.
func (j *joiner) runGroups(groups []*rGroup, cfg Config, opt *optTracker) []groupTally {
	workers := cfg.Workers
	if workers > maxWorkers {
		workers = maxWorkers
	}
	tallies := make([]groupTally, len(groups))

	st := cfg.Stages
	pool := workers > 1 && !cfg.SkipExactTest
	overlap := cfg.Overlap && pool

	var tasks chan *groupWork
	var wg sync.WaitGroup
	if pool {
		depth := workers
		if overlap {
			depth = 4 * workers
		}
		tasks = make(chan *groupWork, depth)
		for n := 0; n < workers; n++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for w := range tasks {
					if st == nil {
						w.refine()
						continue
					}
					t0 := time.Now()
					w.refine()
					st.RefineNS.Add(time.Since(t0).Nanoseconds())
				}
			}()
		}
	}

	var preps chan prepared
	if overlap {
		preps = make(chan prepared, 2*workers)
		go func() {
			defer close(preps)
			for _, g := range groups {
				preps <- prepareIDs(g)
			}
		}()
	}

	for gi, g := range groups {
		var p prepared
		if preps != nil {
			p = <-preps
		} else {
			p = prepareIDs(g)
		}
		var prep0 time.Time
		if st != nil {
			prep0 = time.Now()
		}
		w := &groupWork{g: g, tally: &tallies[gi]}
		w.fetchR = j.orgR.PrepareFetch(g.leafR, p.idsR, j.bufR, cfg.Technique)
		if opt != nil {
			for pi := range g.pairs {
				opt.note(j.orgR, g.leafR, p.perPairR[pi], true)
			}
		}
		for pi, lp := range g.pairs {
			w.fetchS = append(w.fetchS, j.orgS.PrepareFetch(lp.leafS, p.perPairS[pi], j.bufS, cfg.Technique))
			if opt != nil {
				opt.note(j.orgS, lp.leafS, p.perPairS[pi], false)
			}
		}
		if st != nil {
			st.PrepareNS.Add(time.Since(prep0).Nanoseconds())
		}
		switch {
		case cfg.SkipExactTest:
			// I/O-only run (Figures 14 and 16): transfers are charged,
			// materialization and refinement are skipped.
		case tasks != nil:
			if st == nil {
				tasks <- w
			} else {
				t0 := time.Now()
				tasks <- w
				st.StallNS.Add(time.Since(t0).Nanoseconds())
			}
		default:
			if st == nil {
				w.refine()
			} else {
				t0 := time.Now()
				w.refine()
				st.RefineNS.Add(time.Since(t0).Nanoseconds())
			}
		}
	}
	if tasks != nil {
		close(tasks)
		wg.Wait()
	}
	return tallies
}

// optTracker accumulates the theoretical optimum of Figure 16: every storage
// unit accessed once (seek + latency), every requested page transferred
// exactly once. Pages are keyed by (side, id) directly; the per-page
// fmt.Sprintf of an earlier version showed up in dispatcher profiles.
type sidedPage struct {
	rSide bool
	page  disk.PageID
}

type optTracker struct {
	units map[string]bool
	pages map[sidedPage]bool
}

func newOptTracker() *optTracker {
	return &optTracker{units: map[string]bool{}, pages: map[sidedPage]bool{}}
}

// note registers the object demand of one leaf-pair side.
func (o *optTracker) note(org store.Organization, leaf disk.PageID, ids []object.ID, rSide bool) {
	side := "S"
	if rSide {
		side = "R"
	}
	d := store.ObjectPageDemand(org, leaf, ids)
	for _, u := range d.Units {
		o.units[side+u] = true
	}
	for _, p := range d.Pages {
		o.pages[sidedPage{rSide: rSide, page: p}] = true
	}
}

func (o *optTracker) totalMS(p disk.Params) float64 {
	return float64(len(o.units))*(p.SeekMS+p.LatencyMS) +
		float64(len(o.pages))*p.TransferMS
}
