// Package join implements the R*-tree spatial intersection join of the
// paper's section 6, following the three-step scheme of [BKSS94]:
//
//  1. MBR join: a synchronized traversal of both R*-trees computes the pairs
//     of data entries whose rectangles intersect. Pairs are processed in the
//     plane order of [BKS93b] — sorted by the smallest x-coordinate of the
//     intersection — which together with an LRU buffer reads most tree pages
//     only once.
//  2. Object transfer: the exact representations of the candidate objects
//     are read from both organizations through an LRU buffer of configurable
//     size (200–6,400 pages in the paper's experiments), using the selected
//     cluster-read technique.
//  3. Refinement: the exact geometries are tested for intersection; each
//     test is charged the paper's 0.75 ms CPU cost (section 6.3, supported
//     by a decomposed representation [SK91]).
package join

import (
	"fmt"
	"sort"

	"spatialcluster/internal/buffer"
	"spatialcluster/internal/disk"
	"spatialcluster/internal/geom"
	"spatialcluster/internal/object"
	"spatialcluster/internal/rtree"
	"spatialcluster/internal/store"
)

// ExactTestMS is the CPU cost charged per exact geometry test (paper
// section 6.3: "one test needs roughly 0.75 msec" on the decomposed
// representation).
const ExactTestMS = 0.75

// Config tunes a join run.
type Config struct {
	// BufferPages is the total LRU buffer available for the join; it is
	// split evenly between the two inputs (each side buffers its own tree
	// and object pages). The paper sweeps 200–6,400 pages.
	BufferPages int
	// Technique selects how cluster units are read during object transfer
	// (complete / SLM read / SLM vector read); non-cluster organizations
	// ignore it.
	Technique store.Technique
	// SkipExactTest omits phase 3 (used by experiments that only study
	// I/O, e.g. Figures 14 and 16).
	SkipExactTest bool
}

// Result reports the costs and cardinalities of one join run.
type Result struct {
	MBRPairs    int // candidate pairs after the filter step
	ResultPairs int // pairs whose exact geometries intersect

	MBRJoinCost  disk.Cost // phase 1 I/O (tree pages, both sides)
	TransferCost disk.Cost // phase 2 I/O (object pages, both sides)
	ExactTests   int
	ExactTestMS  float64 // phase 3 CPU time

	// OptimumMS is the theoretical lower bound of Figure 16 for the
	// object-transfer phase: one seek and one rotational delay per
	// accessed cluster unit (or object, for non-clustered organizations)
	// and each requested page transferred exactly once.
	OptimumMS float64
}

// IOTimeMS returns the modelled I/O time of the join under params p.
func (r Result) IOTimeMS(p disk.Params) float64 {
	return r.MBRJoinCost.TimeMS(p) + r.TransferCost.TimeMS(p)
}

// TotalTimeMS returns I/O plus refinement CPU time (Figure 17).
func (r Result) TotalTimeMS(p disk.Params) float64 {
	return r.IOTimeMS(p) + r.ExactTestMS
}

// entryRef identifies one data entry: its object and its data page.
type entryRef struct {
	id   object.ID
	size int
	leaf disk.PageID
	rect geom.Rect
}

// candidate is one pair of possibly intersecting data entries.
type candidate struct {
	r, s entryRef
}

// leafPair groups the candidates of one data-page pair; objects are
// transferred in leafPair granularity so the cluster techniques can batch
// their reads.
type leafPair struct {
	leafR, leafS disk.PageID
	minX         float64
	cands        []candidate
}

// rGroup is the set of leaf pairs sharing one pinned R-side data page.
type rGroup struct {
	leafR disk.PageID
	minX  float64
	pairs []*leafPair
}

// Run executes the intersection join R ⋈ S over two organizations. Both
// organizations must be flushed (construction finished).
func Run(orgR, orgS store.Organization, cfg Config) Result {
	if cfg.BufferPages <= 0 {
		cfg.BufferPages = 1600
	}
	half := cfg.BufferPages / 2
	if half < 2 {
		half = 2
	}
	bufR := buffer.New(orgR.Env().Disk, half)
	bufS := buffer.New(orgS.Env().Disk, half)

	j := &joiner{
		orgR: orgR, orgS: orgS,
		treeR: orgR.Tree(), treeS: orgS.Tree(),
		bufR: bufR, bufS: bufS,
		pairsByLeaf: make(map[[2]disk.PageID]*leafPair),
	}

	var res Result

	// Phase 1: MBR join.
	costR0, costS0 := orgR.Env().Disk.Cost(), orgS.Env().Disk.Cost()
	j.joinNodes(j.readNode(j.treeR, j.bufR, j.treeR.Root()),
		j.readNode(j.treeS, j.bufS, j.treeS.Root()))
	res.MBRJoinCost = orgR.Env().Disk.Cost().Sub(costR0).
		Add(orgS.Env().Disk.Cost().Sub(costS0))

	// Order the transfer phase by the plane order of [BKS93b] with leaf
	// pinning: the leaf pairs of one R-side data page form a group (the R
	// page is "pinned" and processed with all its partners before moving
	// on), groups and the pairs within them are ordered by the smallest
	// lower x of the intersection regions.
	groupsByLeaf := make(map[disk.PageID]*rGroup)
	for _, lp := range j.pairsByLeaf {
		res.MBRPairs += len(lp.cands)
		g := groupsByLeaf[lp.leafR]
		if g == nil {
			g = &rGroup{leafR: lp.leafR, minX: lp.minX}
			groupsByLeaf[lp.leafR] = g
		}
		if lp.minX < g.minX {
			g.minX = lp.minX
		}
		g.pairs = append(g.pairs, lp)
	}
	groups := make([]*rGroup, 0, len(groupsByLeaf))
	for _, g := range groupsByLeaf {
		sort.Slice(g.pairs, func(a, b int) bool {
			if g.pairs[a].minX != g.pairs[b].minX {
				return g.pairs[a].minX < g.pairs[b].minX
			}
			return g.pairs[a].leafS < g.pairs[b].leafS
		})
		groups = append(groups, g)
	}
	sort.Slice(groups, func(a, b int) bool {
		if groups[a].minX != groups[b].minX {
			return groups[a].minX < groups[b].minX
		}
		return groups[a].leafR < groups[b].leafR
	})

	// The transfer optimum of Figure 16 is defined for the cluster
	// organization's read techniques only.
	_, clusterR := orgR.(*store.Cluster)
	_, clusterS := orgS.(*store.Cluster)
	var opt *optTracker
	if clusterR && clusterS {
		opt = newOptTracker()
	}

	// Phase 2 (+3): transfer objects group by group and refine. The pinned
	// R page's objects are fetched once per group.
	costR0, costS0 = orgR.Env().Disk.Cost(), orgS.Env().Disk.Cost()
	for _, g := range groups {
		var idsR []object.ID
		seenR := map[object.ID]bool{}
		for _, lp := range g.pairs {
			for _, id := range distinctIDs(lp.cands, true) {
				if !seenR[id] {
					seenR[id] = true
					idsR = append(idsR, id)
				}
			}
		}
		objsR := orgR.FetchObjects(g.leafR, idsR, bufR, cfg.Technique)
		var decR map[object.ID]*geom.Decomposed
		if !cfg.SkipExactTest {
			decR = decompose(objsR)
		}
		if opt != nil {
			for _, lp := range g.pairs {
				opt.note(orgR, g.leafR, lp.cands, true)
			}
		}
		for _, lp := range g.pairs {
			idsS := distinctIDs(lp.cands, false)
			objsS := orgS.FetchObjects(lp.leafS, idsS, bufS, cfg.Technique)
			if opt != nil {
				opt.note(orgS, lp.leafS, lp.cands, false)
			}
			if cfg.SkipExactTest {
				continue
			}
			decS := decompose(objsS)
			for _, c := range lp.cands {
				res.ExactTests++
				res.ExactTestMS += ExactTestMS
				if decR[c.r.id].Intersects(decS[c.s.id]) {
					res.ResultPairs++
				}
			}
		}
	}
	res.TransferCost = orgR.Env().Disk.Cost().Sub(costR0).
		Add(orgS.Env().Disk.Cost().Sub(costS0))
	if opt != nil {
		res.OptimumMS = opt.totalMS(orgR.Env().Params())
	}
	return res
}

// distinctIDs collects the distinct R-side (or S-side) object IDs of a leaf
// pair's candidates.
func distinctIDs(cands []candidate, rSide bool) []object.ID {
	seen := make(map[object.ID]bool, len(cands))
	var out []object.ID
	for _, c := range cands {
		ref := c.s
		if rSide {
			ref = c.r
		}
		if !seen[ref.id] {
			seen[ref.id] = true
			out = append(out, ref.id)
		}
	}
	return out
}

// decompose builds decomposed representations keyed by object ID.
func decompose(objs []*object.Object) map[object.ID]*geom.Decomposed {
	out := make(map[object.ID]*geom.Decomposed, len(objs))
	for _, o := range objs {
		out[o.ID] = geom.Decompose(o.Geom)
	}
	return out
}

// joiner carries the traversal state of phase 1.
type joiner struct {
	orgR, orgS   store.Organization
	treeR, treeS *rtree.Tree
	bufR, bufS   *buffer.Manager
	pairsByLeaf  map[[2]disk.PageID]*leafPair
}

// readNode fetches a tree node through the join buffer.
func (j *joiner) readNode(t *rtree.Tree, m *buffer.Manager, id disk.PageID) *rtree.Node {
	return t.DecodeNode(id, m.Get(id))
}

// joinNodes performs the synchronized traversal of [BKS93b]: intersecting
// entry pairs are computed, restricted to the intersection of the node
// regions, ordered by their lower x-coordinate, and descended in that order.
func (j *joiner) joinNodes(a, b *rtree.Node) {
	// Height alignment: descend the deeper tree alone until levels match.
	if a.Level > b.Level {
		for i := range a.Entries {
			if a.Entries[i].Rect.Intersects(b.Rect()) {
				j.joinNodes(j.readNode(j.treeR, j.bufR, a.Entries[i].Child), b)
			}
		}
		return
	}
	if b.Level > a.Level {
		for i := range b.Entries {
			if b.Entries[i].Rect.Intersects(a.Rect()) {
				j.joinNodes(a, j.readNode(j.treeS, j.bufS, b.Entries[i].Child))
			}
		}
		return
	}

	type pairIdx struct {
		i, j int
		minX float64
	}
	var pairs []pairIdx
	for i := range a.Entries {
		ra := a.Entries[i].Rect
		for k := range b.Entries {
			inter := ra.Intersection(b.Entries[k].Rect)
			if inter.IsEmpty() {
				continue
			}
			pairs = append(pairs, pairIdx{i: i, j: k, minX: inter.MinX})
		}
	}
	sort.Slice(pairs, func(x, y int) bool { return pairs[x].minX < pairs[y].minX })

	if a.Level == 0 {
		key := [2]disk.PageID{a.ID, b.ID}
		lp := j.pairsByLeaf[key]
		for _, p := range pairs {
			er, es := a.Entries[p.i], b.Entries[p.j]
			idR, sizeR := store.DecodeEntryID(j.orgR, er)
			idS, sizeS := store.DecodeEntryID(j.orgS, es)
			if lp == nil {
				lp = &leafPair{leafR: a.ID, leafS: b.ID, minX: p.minX}
				j.pairsByLeaf[key] = lp
			}
			lp.cands = append(lp.cands, candidate{
				r: entryRef{id: idR, size: sizeR, leaf: a.ID, rect: er.Rect},
				s: entryRef{id: idS, size: sizeS, leaf: b.ID, rect: es.Rect},
			})
		}
		return
	}
	// Directory level: pinning — group by the a-side child so one subtree
	// is joined with all its partners before moving on.
	done := make(map[int]bool, len(pairs))
	for x := 0; x < len(pairs); x++ {
		if done[x] {
			continue
		}
		ai := pairs[x].i
		childA := j.readNode(j.treeR, j.bufR, a.Entries[ai].Child)
		for y := x; y < len(pairs); y++ {
			if done[y] || pairs[y].i != ai {
				continue
			}
			done[y] = true
			childB := j.readNode(j.treeS, j.bufS, b.Entries[pairs[y].j].Child)
			j.joinNodes(childA, childB)
		}
	}
}

// optTracker accumulates the theoretical optimum of Figure 16: every storage
// unit accessed once (seek + latency), every requested page transferred
// exactly once.
type optTracker struct {
	units map[string]bool
	pages map[string]bool
}

func newOptTracker() *optTracker {
	return &optTracker{units: map[string]bool{}, pages: map[string]bool{}}
}

// note registers the object demand of one leaf-pair side.
func (o *optTracker) note(org store.Organization, leaf disk.PageID, cands []candidate, rSide bool) {
	side := "S"
	if rSide {
		side = "R"
	}
	ids := distinctIDs(cands, rSide)
	d := store.ObjectPageDemand(org, leaf, ids)
	for _, u := range d.Units {
		o.units[side+u] = true
	}
	for _, p := range d.Pages {
		o.pages[fmt.Sprintf("%s%d", side, p)] = true
	}
}

func (o *optTracker) totalMS(p disk.Params) float64 {
	return float64(len(o.units))*(p.SeekMS+p.LatencyMS) +
		float64(len(o.pages))*p.TransferMS
}
