package join

import (
	"testing"

	"spatialcluster/internal/obs"
	"spatialcluster/internal/store"
)

// TestJoinStagesObservation: attaching stage clocks must not change the
// join's answers or modelled costs, and the serialized stages must have
// accumulated real time.
func TestJoinStagesObservation(t *testing.T) {
	dsR, dsS := testSets(512, 2)
	for _, workers := range []int{1, 4} {
		orgR, orgS := buildOrg("cluster", dsR), buildOrg("cluster", dsS)
		plain := Run(orgR, orgS, Config{
			BufferPages: 400, Technique: store.TechSLM, Workers: workers,
		})

		orgR, orgS = buildOrg("cluster", dsR), buildOrg("cluster", dsS)
		var st obs.JoinStages
		observed := Run(orgR, orgS, Config{
			BufferPages: 400, Technique: store.TechSLM, Workers: workers, Stages: &st,
		})

		if observed.MBRPairs != plain.MBRPairs || observed.ResultPairs != plain.ResultPairs {
			t.Fatalf("workers=%d: observed pairs %d/%d, plain %d/%d", workers,
				observed.MBRPairs, observed.ResultPairs, plain.MBRPairs, plain.ResultPairs)
		}
		if observed.MBRJoinCost != plain.MBRJoinCost || observed.TransferCost != plain.TransferCost {
			t.Fatalf("workers=%d: observation changed modelled costs", workers)
		}
		if st.MBRJoinNS.Load() <= 0 || st.PrepareNS.Load() <= 0 || st.RefineNS.Load() <= 0 {
			t.Fatalf("workers=%d: stage clocks empty: mbr=%d prepare=%d refine=%d", workers,
				st.MBRJoinNS.Load(), st.PrepareNS.Load(), st.RefineNS.Load())
		}
		if workers == 1 && st.StallNS.Load() != 0 {
			t.Fatalf("single-threaded run reports dispatcher stall %d ns", st.StallNS.Load())
		}
	}
}
