// Package join implements the R*-tree spatial intersection join of the
// paper's section 6, following the three-step scheme of [BKSS94]:
//
//  1. MBR join: a synchronized traversal of both R*-trees computes the pairs
//     of data entries whose rectangles intersect. Within a node pair the
//     intersecting entry pairs are found by a plane sweep over x-sorted
//     entries (the sort-based optimization of [BKSS94]), and pairs are
//     processed in the plane order of [BKS93b] — sorted by the smallest
//     x-coordinate of the intersection — which together with an LRU buffer
//     reads most tree pages only once.
//  2. Object transfer: the exact representations of the candidate objects
//     are read from both organizations (internal/store) through an LRU
//     buffer of configurable size (200–6,400 pages in the paper's
//     experiments), using the selected cluster-read technique.
//  3. Refinement: the exact geometries are tested for intersection; each
//     test is charged the paper's 0.75 ms CPU cost (section 6.3, supported
//     by a decomposed representation [SK91], see geom.Decomposed).
//
// Phases 2 and 3 can run on a bounded worker pool (Config.Workers): a
// dispatcher prepares the object transfers in plane order — so every read
// request is planned and charged in a deterministic sequence, as the paper's
// serialized request model demands — while workers materialize the objects
// and run the exact geometry tests on all cores. The modelled I/O cost and
// the result cardinalities are identical for every worker count.
package join
