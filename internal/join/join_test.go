package join

import (
	"testing"

	"spatialcluster/internal/datagen"
	"spatialcluster/internal/disk"
	"spatialcluster/internal/geom"
	"spatialcluster/internal/store"
)

// buildOrg constructs one organization over a dataset.
func buildOrg(kind string, ds *datagen.Dataset) store.Organization {
	env := store.NewEnv(2048)
	var org store.Organization
	switch kind {
	case "secondary":
		org = store.NewSecondary(env)
	case "primary":
		org = store.NewPrimary(env)
	case "cluster":
		org = store.NewCluster(env, store.ClusterConfig{SmaxBytes: ds.Spec.SmaxBytes()})
	default:
		panic(kind)
	}
	for i, o := range ds.Objects {
		org.Insert(o, ds.MBRs[i])
	}
	org.Flush()
	env.Buf.Clear()
	env.Disk.ResetCost()
	return org
}

func testSets(scale int, mbrScale float64) (*datagen.Dataset, *datagen.Dataset) {
	r := datagen.Generate(datagen.Spec{
		Map: datagen.Map1, Series: datagen.SeriesA, Scale: scale, Seed: 5, MBRScale: mbrScale,
	})
	s := datagen.Generate(datagen.Spec{
		Map: datagen.Map2, Series: datagen.SeriesA, Scale: scale, Seed: 5, MBRScale: mbrScale,
	})
	return r, s
}

// bruteJoin computes the reference MBR-pair and result-pair counts.
func bruteJoin(r, s *datagen.Dataset) (mbrPairs, resultPairs int) {
	for i := range r.Objects {
		for j := range s.Objects {
			if !r.MBRs[i].Intersects(s.MBRs[j]) {
				continue
			}
			mbrPairs++
			gr := geom.Decompose(r.Objects[i].Geom)
			gs := geom.Decompose(s.Objects[j].Geom)
			if gr.Intersects(gs) {
				resultPairs++
			}
		}
	}
	return
}

func TestJoinMatchesBruteForce(t *testing.T) {
	dsR, dsS := testSets(512, 2) // ~256/251 objects; MBRScale=2 for enough pairs
	wantMBR, wantRes := bruteJoin(dsR, dsS)
	if wantMBR == 0 {
		t.Fatal("test data produced no candidate pairs")
	}
	for _, kind := range []string{"secondary", "primary", "cluster"} {
		orgR := buildOrg(kind, dsR)
		orgS := buildOrg(kind, dsS)
		res := Run(orgR, orgS, Config{BufferPages: 400, Technique: store.TechComplete})
		if res.MBRPairs != wantMBR {
			t.Fatalf("%s: MBR pairs %d, want %d", kind, res.MBRPairs, wantMBR)
		}
		if res.ResultPairs != wantRes {
			t.Fatalf("%s: result pairs %d, want %d", kind, res.ResultPairs, wantRes)
		}
		if res.ExactTests != wantMBR {
			t.Fatalf("%s: exact tests %d, want %d", kind, res.ExactTests, wantMBR)
		}
		if res.ExactTestMS != float64(wantMBR)*ExactTestMS {
			t.Fatalf("%s: exact test time %.2f", kind, res.ExactTestMS)
		}
		if res.MBRJoinCost.PagesRead == 0 {
			t.Fatalf("%s: MBR join charged no I/O: %+v", kind, res.MBRJoinCost)
		}
		// The primary organization's objects arrive with the leaf pages of
		// phase 1 and can stay buffered, so only the other organizations
		// must charge transfer I/O here.
		if kind != "primary" && res.TransferCost.PagesRead == 0 {
			t.Fatalf("%s: transfer charged no I/O", kind)
		}
	}
}

func TestJoinTechniquesAgree(t *testing.T) {
	dsR, dsS := testSets(512, 2)
	wantMBR, wantRes := bruteJoin(dsR, dsS)
	for _, tech := range []store.Technique{store.TechComplete, store.TechSLM, store.TechSLMVector, store.TechPageByPage} {
		orgR := buildOrg("cluster", dsR)
		orgS := buildOrg("cluster", dsS)
		res := Run(orgR, orgS, Config{BufferPages: 400, Technique: tech})
		if res.MBRPairs != wantMBR || res.ResultPairs != wantRes {
			t.Fatalf("%v: %d/%d pairs, want %d/%d", tech,
				res.MBRPairs, res.ResultPairs, wantMBR, wantRes)
		}
	}
}

func TestJoinOptimumIsLowerBound(t *testing.T) {
	// Figure 16's "opt." is defined for the cluster organization's read
	// techniques: one seek and one rotational delay per cluster unit,
	// every requested page transferred once.
	dsR, dsS := testSets(512, 2)
	p := disk.DefaultParams()
	for _, tech := range []store.Technique{store.TechComplete, store.TechSLM, store.TechSLMVector} {
		for _, bufPages := range []int{100, 800, 6400} {
			orgR := buildOrg("cluster", dsR)
			orgS := buildOrg("cluster", dsS)
			res := Run(orgR, orgS, Config{
				BufferPages: bufPages, Technique: tech, SkipExactTest: true,
			})
			if res.OptimumMS <= 0 {
				t.Fatalf("cluster join must report an optimum")
			}
			got := res.TransferCost.TimeMS(p)
			if got < res.OptimumMS-1e-6 {
				t.Fatalf("%v buf=%d: transfer %.1f ms below optimum %.1f ms",
					tech, bufPages, got, res.OptimumMS)
			}
		}
	}
	// Non-cluster joins report no optimum.
	res := Run(buildOrg("secondary", dsR), buildOrg("secondary", dsS),
		Config{BufferPages: 100, SkipExactTest: true})
	if res.OptimumMS != 0 {
		t.Fatalf("secondary join reported optimum %.1f", res.OptimumMS)
	}
}

func TestJoinLargerBufferNotWorse(t *testing.T) {
	dsR, dsS := testSets(256, 2)
	p := disk.DefaultParams()
	var prev float64 = -1
	for _, bufPages := range []int{50, 200, 1600} {
		orgR := buildOrg("cluster", dsR)
		orgS := buildOrg("cluster", dsS)
		res := Run(orgR, orgS, Config{BufferPages: bufPages, Technique: store.TechComplete, SkipExactTest: true})
		cur := res.IOTimeMS(p)
		if prev >= 0 && cur > prev*1.02 {
			t.Fatalf("buffer %d pages made the join slower: %.1f -> %.1f ms", bufPages, prev, cur)
		}
		prev = cur
	}
}

func TestClusterJoinBeatsSecondaryAtSmallBuffers(t *testing.T) {
	// The core claim of section 6.1: with version-b-style MBR enlargement
	// and a modest buffer, the cluster organization's object transfer is
	// several times cheaper than the secondary organization's.
	dsR, dsS := testSets(256, 3)
	p := disk.DefaultParams()
	sec := Run(buildOrg("secondary", dsR), buildOrg("secondary", dsS),
		Config{BufferPages: 200, Technique: store.TechComplete, SkipExactTest: true})
	clu := Run(buildOrg("cluster", dsR), buildOrg("cluster", dsS),
		Config{BufferPages: 200, Technique: store.TechComplete, SkipExactTest: true})
	secMS := sec.TransferCost.TimeMS(p)
	cluMS := clu.TransferCost.TimeMS(p)
	if cluMS >= secMS {
		t.Fatalf("cluster transfer %.1f ms not cheaper than secondary %.1f ms", cluMS, secMS)
	}
	if speedup := secMS / cluMS; speedup < 1.5 {
		t.Fatalf("cluster speedup only %.2fx; expected a clear win", speedup)
	}
}

func TestJoinResultTimeHelpers(t *testing.T) {
	r := Result{
		MBRJoinCost:  disk.Cost{Seeks: 1, Rotations: 1, PagesRead: 5},
		TransferCost: disk.Cost{Seeks: 2, Rotations: 2, PagesRead: 10},
		ExactTestMS:  30,
	}
	p := disk.DefaultParams()
	io := r.IOTimeMS(p)
	if io != (9+6+5)+(18+12+10) {
		t.Fatalf("IOTimeMS = %g", io)
	}
	if r.TotalTimeMS(p) != io+30 {
		t.Fatalf("TotalTimeMS = %g", r.TotalTimeMS(p))
	}
}

func TestJoinEmptyInputs(t *testing.T) {
	empty := datagen.Generate(datagen.Spec{Map: datagen.Map1, Series: datagen.SeriesA, Scale: datagen.Map1Objects})
	if len(empty.Objects) > 1 {
		t.Fatalf("expected near-empty dataset, got %d", len(empty.Objects))
	}
	orgR := buildOrg("cluster", empty)
	orgS := buildOrg("cluster", empty)
	res := Run(orgR, orgS, Config{BufferPages: 100})
	if res.MBRPairs > 1 {
		t.Fatalf("tiny join produced %d pairs", res.MBRPairs)
	}
}
