package join

import (
	"testing"

	"spatialcluster/internal/obs"
	"spatialcluster/internal/store"
)

// TestOverlapDeterministic is the overlap-mode contract: for every
// organization kind and worker count, an overlapped run returns a Result
// identical in every field — cardinalities AND modelled costs — to the
// serialized single-worker run, because PrepareFetch stays on the dispatcher
// in plane order.
func TestOverlapDeterministic(t *testing.T) {
	dsR, dsS := testSets(512, 2)
	for _, kind := range []string{"secondary", "primary", "cluster"} {
		orgR := buildOrg(kind, dsR)
		orgS := buildOrg(kind, dsS)
		base := Run(orgR, orgS, Config{
			BufferPages: 400, Technique: store.TechSLM, Workers: 1,
		})
		if base.MBRPairs == 0 {
			t.Fatalf("%s: no candidate pairs", kind)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			orgR := buildOrg(kind, dsR)
			orgS := buildOrg(kind, dsS)
			res := Run(orgR, orgS, Config{
				BufferPages: 400, Technique: store.TechSLM,
				Workers: workers, Overlap: true,
			})
			if res != base {
				t.Fatalf("%s overlap workers=%d:\n got %+v\nwant %+v", kind, workers, res, base)
			}
		}
	}
}

// TestOverlapTechniquesDeterministic covers the remaining cluster read
// techniques under buffer pressure, and SkipExactTest (where overlap must be
// a no-op).
func TestOverlapTechniquesDeterministic(t *testing.T) {
	dsR, dsS := testSets(512, 2)
	for _, tech := range []store.Technique{store.TechComplete, store.TechSLMVector, store.TechPageByPage} {
		for _, skip := range []bool{false, true} {
			var base Result
			for i, workers := range []int{1, 4} {
				orgR := buildOrg("cluster", dsR)
				orgS := buildOrg("cluster", dsS)
				res := Run(orgR, orgS, Config{
					BufferPages: 100, Technique: tech,
					Workers: workers, Overlap: true, SkipExactTest: skip,
				})
				if i == 0 {
					base = res
					continue
				}
				if res != base {
					t.Fatalf("%v skip=%v overlap workers=%d:\n got %+v\nwant %+v",
						tech, skip, workers, res, base)
				}
			}
		}
	}
}

// TestOverlapStages checks the stage clocks still add up under overlap: the
// serialized stages are populated and refinement lands on the workers.
func TestOverlapStages(t *testing.T) {
	dsR, dsS := testSets(256, 2)
	orgR := buildOrg("cluster", dsR)
	orgS := buildOrg("cluster", dsS)
	var st obs.JoinStages
	res := Run(orgR, orgS, Config{
		BufferPages: 400, Technique: store.TechSLM,
		Workers: 4, Overlap: true, Stages: &st,
	})
	if res.ExactTests == 0 {
		t.Fatal("no exact tests ran")
	}
	if st.MBRJoinNS.Load() <= 0 || st.PrepareNS.Load() <= 0 {
		t.Fatalf("serialized stage clocks empty: mbr=%d prepare=%d",
			st.MBRJoinNS.Load(), st.PrepareNS.Load())
	}
	if st.RefineNS.Load() <= 0 {
		t.Fatal("refinement busy time not attributed to workers")
	}
}
