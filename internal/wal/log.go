// Package wal is the write-ahead log in front of the mutation path: every
// insert, delete, update and recluster is appended — length-prefixed and
// CRC-32-framed, the same discipline as the snapshot format — and fsynced
// before the in-memory mutation applies, so a crash loses nothing that was
// acknowledged. Recovery loads the newest checkpoint snapshot and replays
// the log tail; a torn tail (a truncated or checksum-failing final record)
// is detected and discarded, everything before it replays exactly.
//
// On disk a WAL directory holds:
//
//	snap-%016x.sdb  checkpoint snapshots (internal/snapshot format); the
//	                hex is the LSN the snapshot covers — every record with
//	                a smaller or equal LSN is baked in
//	wal-%016x.seg   log segments; the hex is the LSN of the first record.
//	                A segment starts with a 16-byte header (magic +
//	                first LSN) followed by framed records with contiguous
//	                ascending LSNs
//
// Group commit batches fsyncs two ways: Store.Apply logs a whole batch of
// mutations behind one fsync (the server's micro-batch dispatcher rides
// this), and Options.SyncEvery > 1 additionally lets that many records
// accumulate before any fsync — relaxed durability for bulk churn.
// Checkpoints write a fresh snapshot and retire fully-covered segments
// without stopping the world: mutations pause only for the in-memory
// capture, not for the snapshot write.
package wal

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"spatialcluster/internal/framing"
	"spatialcluster/internal/obs"
)

// segMagic identifies a WAL segment file and its format version.
const segMagic = "SPCLWAL\x01"

// segHeaderSize is the fixed segment prefix: magic + first LSN.
const segHeaderSize = len(segMagic) + 8

// maxRecordLen bounds a single record's framed payload; a corrupted length
// field must fail cleanly, not attempt a huge allocation.
const maxRecordLen = 16 << 20

// Options tunes a log. The zero value selects strict durability (fsync
// every commit) with sensible segment and checkpoint sizes.
type Options struct {
	// SyncEvery is the group-commit batch size: the log fsyncs once per
	// SyncEvery appended records instead of once per commit (default 1 —
	// every commit is durable before it is acknowledged). Larger values
	// trade the durability of the last few records for throughput; a batch
	// appended by Store.Apply always shares one fsync regardless.
	SyncEvery int
	// SegmentBytes is the rotation threshold: a segment reaching this size
	// is closed and a fresh one started (default 4 MB).
	SegmentBytes int64
	// CheckpointBytes triggers a background checkpoint (snapshot + segment
	// retirement) once the live log exceeds this size (default 32 MB;
	// negative disables automatic checkpoints).
	CheckpointBytes int64
	// FS overrides how segment files are created and reopened; nil selects
	// the real filesystem. The fault-injection tests script failures here.
	FS FileSystem
}

func (o Options) withDefaults() Options {
	if o.SyncEvery < 1 {
		o.SyncEvery = 1
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.CheckpointBytes == 0 {
		o.CheckpointBytes = 32 << 20
	}
	if o.FS == nil {
		o.FS = osFS{}
	}
	return o
}

func segName(first uint64) string { return fmt.Sprintf("wal-%016x.seg", first) }
func snapName(upTo uint64) string { return fmt.Sprintf("snap-%016x.sdb", upTo) }

// segment is one live segment file.
type segment struct {
	path  string
	first uint64 // LSN of the first record
	bytes int64  // size including the header
}

// Log is the append side of a write-ahead log directory. It is safe for
// concurrent use; records get contiguous ascending LSNs in append order.
// After any append or sync error the log is poisoned: every later append
// fails with the same error, so the set of acknowledged mutations is exactly
// the durable prefix a recovery will replay.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	f        File
	segs     []segment // ascending first LSN; the last one is open
	nextLSN  uint64
	unsynced int
	failed   error

	syncs      atomic.Int64
	lastSyncNS atomic.Int64
	syncHist   obs.Histogram
}

// Stats is a point-in-time summary of the log, surfaced by /stats.
type Stats struct {
	// Segments and Bytes size the live log (retired segments excluded).
	Segments int
	Bytes    int64
	// LastLSN is the newest assigned LSN (0 = nothing logged yet).
	LastLSN uint64
	// Syncs counts fsyncs; LastSyncNanos is the duration of the newest one.
	Syncs         int64
	LastSyncNanos int64
}

// openFresh creates a log whose first record will get LSN first.
func openFresh(dir string, first uint64, opts Options) (*Log, error) {
	l := &Log{dir: dir, opts: opts, nextLSN: first}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.createSegmentLocked(); err != nil {
		return nil, err
	}
	return l, nil
}

// createSegmentLocked opens a fresh segment starting at nextLSN.
func (l *Log) createSegmentLocked() error {
	path := filepath.Join(l.dir, segName(l.nextLSN))
	f, err := l.opts.FS.Create(path)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	header := make([]byte, segHeaderSize)
	copy(header, segMagic)
	binary.LittleEndian.PutUint64(header[len(segMagic):], l.nextLSN)
	if _, err := f.Write(header); err != nil {
		f.Close()
		return fmt.Errorf("wal: writing segment header: %w", err)
	}
	l.f = f
	l.segs = append(l.segs, segment{path: path, first: l.nextLSN, bytes: int64(segHeaderSize)})
	return nil
}

// rotateLocked closes the open segment and starts a fresh one. A segment
// that holds no records yet is kept as-is.
func (l *Log) rotateLocked() error {
	cur := &l.segs[len(l.segs)-1]
	if cur.first == l.nextLSN {
		return nil // still empty, nothing to rotate away from
	}
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		l.failed = fmt.Errorf("wal: closing segment: %w", err)
		return l.failed
	}
	return l.createSegmentLocked()
}

// Append logs the records as one commit: all of them are framed into the
// open segment (rotating as needed) and share at most one fsync — the group
// commit. LSNs are assigned in order; recs[i].LSN is filled in. On error
// nothing is acknowledged and the log is poisoned.
func (l *Log) Append(recs ...Record) error {
	if len(recs) == 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return l.failed
	}
	for i := range recs {
		cur := &l.segs[len(l.segs)-1]
		if cur.bytes >= l.opts.SegmentBytes {
			if err := l.rotateLocked(); err != nil {
				return err
			}
			cur = &l.segs[len(l.segs)-1]
		}
		recs[i].LSN = l.nextLSN
		n, err := framing.AppendRecord(l.f, recs[i].encode())
		cur.bytes += int64(n)
		if err != nil {
			l.failed = fmt.Errorf("wal: appending record %d: %w", recs[i].LSN, err)
			return l.failed
		}
		l.nextLSN++
		l.unsynced++
	}
	if l.unsynced >= l.opts.SyncEvery {
		return l.syncLocked()
	}
	return nil
}

// Sync forces an fsync of the open segment (a durability barrier).
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return l.failed
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.unsynced == 0 {
		return nil
	}
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		l.failed = fmt.Errorf("wal: fsync: %w", err)
		return l.failed
	}
	d := time.Since(start)
	l.lastSyncNS.Store(d.Nanoseconds())
	l.syncHist.Observe(d)
	l.syncs.Add(1)
	l.unsynced = 0
	return nil
}

// BeginCheckpoint makes everything logged so far durable, rotates to a
// fresh segment and returns the checkpoint boundary: the LSN the snapshot
// about to be captured will cover. The caller must hold the mutation lock,
// capture the store image, and then call Retire(boundary) once the snapshot
// file is safely on disk.
func (l *Log) BeginCheckpoint() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return 0, l.failed
	}
	if err := l.rotateLocked(); err != nil {
		return 0, err
	}
	return l.nextLSN - 1, nil
}

// Retire deletes snapshots and fully-covered segments below the checkpoint
// boundary: a segment is removable once every LSN it holds is <= upTo. File
// removal failures are ignored — a leftover segment is re-skipped by the
// next recovery, never replayed twice.
func (l *Log) Retire(upTo uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	keep := l.segs[:0]
	for i, s := range l.segs {
		covered := i+1 < len(l.segs) && l.segs[i+1].first <= upTo+1
		if covered {
			os.Remove(s.path)
			continue
		}
		keep = append(keep, s)
	}
	l.segs = keep

	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if lsn, ok := parseSnapName(e.Name()); ok && lsn < upTo {
			os.Remove(filepath.Join(l.dir, e.Name()))
		}
	}
}

// TailBytes returns the live log size (the bytes a recovery would read).
func (l *Log) TailBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var total int64
	for _, s := range l.segs {
		total += s.bytes
	}
	return total
}

// Stats summarizes the log.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	st := Stats{Segments: len(l.segs), LastLSN: l.nextLSN - 1}
	for _, s := range l.segs {
		st.Bytes += s.bytes
	}
	l.mu.Unlock()
	st.Syncs = l.syncs.Load()
	st.LastSyncNanos = l.lastSyncNS.Load()
	return st
}

// SyncHist exposes the fsync latency histogram (one sample per fsync) for
// the serving layer's /stats quantiles and Prometheus exposition.
func (l *Log) SyncHist() *obs.Histogram { return &l.syncHist }

// Close syncs (unless the log is already poisoned) and closes the open
// segment. The log must not be used afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	var err error
	if l.failed == nil {
		err = l.syncLocked()
	}
	if l.f != nil {
		if cerr := l.f.Close(); err == nil && l.failed == nil {
			err = cerr
		}
		l.f = nil
	}
	return err
}
