package wal_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spatialcluster/internal/datagen"
	"spatialcluster/internal/disk"
	"spatialcluster/internal/exp"
	"spatialcluster/internal/faultinject"
	"spatialcluster/internal/geom"
	"spatialcluster/internal/object"
	"spatialcluster/internal/recluster"
	"spatialcluster/internal/store"
	"spatialcluster/internal/wal"
)

// smallDataset generates the shared tiny dataset of the WAL tests.
func smallDataset() *datagen.Dataset {
	return datagen.Generate(datagen.Spec{Map: datagen.Map1, Series: datagen.SeriesA, Scale: 512, Seed: 7})
}

// buildOrg builds a flushed organization of the given kind over ds.
func buildOrg(kind exp.OrgKind, ds *datagen.Dataset) store.Organization {
	return exp.Build(kind, ds, 64).Org
}

// memEnv is the newEnv recovery callback of the tests.
func memEnv(p disk.Params) (*store.Env, error) {
	return store.NewEnvWithParams(64, p), nil
}

// testObject builds a small polyline object.
func testObject(id uint64) *object.Object {
	x := float64(id%100) / 100
	return object.New(object.ID(1_000_000+id), geom.NewPolyline([]geom.Point{
		geom.Pt(x, 0.5), geom.Pt(x+0.01, 0.51),
	}), 300)
}

// TestGroupCommit checks the two fsync-batching mechanisms: a whole Apply
// batch shares one fsync, and SyncEvery > 1 accumulates single-op commits.
func TestGroupCommit(t *testing.T) {
	ds := smallDataset()
	t.Run("batch shares one fsync", func(t *testing.T) {
		ws, err := wal.Create(buildOrg(exp.OrgCluster, ds), t.TempDir(), wal.Options{SyncEvery: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer ws.Close()
		muts := make([]wal.Mutation, 16)
		for i := range muts {
			muts[i] = wal.Mutation{Kind: wal.KindInsert, Obj: testObject(uint64(i)), Key: testObject(uint64(i)).Bounds()}
		}
		if _, err := ws.Apply(muts); err != nil {
			t.Fatal(err)
		}
		st := ws.Log().Stats()
		if st.Syncs != 1 {
			t.Fatalf("16-mutation batch took %d fsyncs, want 1", st.Syncs)
		}
		if st.LastLSN != 16 {
			t.Fatalf("last LSN %d, want 16", st.LastLSN)
		}
	})
	t.Run("SyncEvery accumulates", func(t *testing.T) {
		ws, err := wal.Create(buildOrg(exp.OrgCluster, ds), t.TempDir(), wal.Options{SyncEvery: 4})
		if err != nil {
			t.Fatal(err)
		}
		defer ws.Close()
		for i := 0; i < 8; i++ {
			o := testObject(uint64(i))
			if _, err := ws.Apply([]wal.Mutation{{Kind: wal.KindInsert, Obj: o, Key: o.Bounds()}}); err != nil {
				t.Fatal(err)
			}
		}
		if st := ws.Log().Stats(); st.Syncs != 2 {
			t.Fatalf("8 single-op commits at SyncEvery=4 took %d fsyncs, want 2", st.Syncs)
		}
	})
}

// TestCheckpointRetiresSegments checks rotation and retirement: a tiny
// segment size forces many segments, and a checkpoint retires all of them
// plus the older snapshot, leaving a store that recovers with zero replay.
func TestCheckpointRetiresSegments(t *testing.T) {
	dir := t.TempDir()
	ds := smallDataset()
	ws, err := wal.Create(buildOrg(exp.OrgCluster, ds), dir, wal.Options{SegmentBytes: 512, CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		o := testObject(uint64(i))
		ws.Insert(o, o.Bounds())
	}
	if st := ws.Log().Stats(); st.Segments < 3 {
		t.Fatalf("512-byte segments after 40 inserts: %d segments, want several", st.Segments)
	}
	if err := ws.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if st := ws.Log().Stats(); st.Segments != 1 {
		t.Fatalf("after checkpoint: %d live segments, want 1", st.Segments)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var snaps, segs int
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".sdb") {
			snaps++
		}
		if strings.HasSuffix(e.Name(), ".seg") {
			segs++
		}
	}
	if snaps != 1 || segs != 1 {
		t.Fatalf("after checkpoint the dir holds %d snapshots and %d segments, want 1 and 1", snaps, segs)
	}
	want := answers(ws)
	if err := ws.Close(); err != nil {
		t.Fatal(err)
	}

	rec, st, err := wal.Recover(dir, memEnv, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if st.Replayed != 0 || st.TornTail {
		t.Fatalf("recovery after checkpoint replayed %d records (torn %v), want 0 and false", st.Replayed, st.TornTail)
	}
	if err := diffAnswers(want, answers(rec)); err != nil {
		t.Fatalf("checkpointed store differs after recovery: %v", err)
	}
}

// TestCreateRefusesExistingLog checks that attaching a fresh log to a
// directory that already holds one fails instead of shadowing it.
func TestCreateRefusesExistingLog(t *testing.T) {
	dir := t.TempDir()
	ds := smallDataset()
	ws, err := wal.Create(buildOrg(exp.OrgCluster, ds), dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Close()
	if _, err := wal.Create(buildOrg(exp.OrgCluster, ds), dir, wal.Options{}); err == nil {
		t.Fatal("Create over an existing WAL directory succeeded")
	} else if !strings.Contains(err.Error(), "already holds") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

// TestRecoverErrors checks the hard failure modes of Recover: no snapshot,
// and corruption that is not a torn tail.
func TestRecoverErrors(t *testing.T) {
	t.Run("no snapshot", func(t *testing.T) {
		if _, _, err := wal.Recover(t.TempDir(), memEnv, wal.Options{}); err == nil {
			t.Fatal("Recover of an empty directory succeeded")
		}
	})
	t.Run("mid-history corruption", func(t *testing.T) {
		dir := t.TempDir()
		ds := smallDataset()
		// Tiny segments put early records in non-final segments.
		ws, err := wal.Create(buildOrg(exp.OrgCluster, ds), dir, wal.Options{SegmentBytes: 512, CheckpointBytes: -1})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 40; i++ {
			o := testObject(uint64(i))
			ws.Insert(o, o.Bounds())
		}
		ws.Close()
		segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
		if err != nil || len(segs) < 2 {
			t.Fatalf("want several segments, got %v (%v)", segs, err)
		}
		data, err := os.ReadFile(segs[0])
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)-3] ^= 0x40
		if err := os.WriteFile(segs[0], data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := wal.Recover(dir, memEnv, wal.Options{}); err == nil {
			t.Fatal("Recover over mid-history corruption succeeded")
		} else if !strings.Contains(err.Error(), "mid-history") {
			t.Fatalf("unhelpful error: %v", err)
		}
	})
}

// TestMutatorPanicsOnLogFailure checks the interface contract: when the log
// cannot accept a record, the error-less Organization methods panic rather
// than acknowledge an unlogged mutation.
func TestMutatorPanicsOnLogFailure(t *testing.T) {
	ds := smallDataset()
	// Op 1 is the segment header; op 2 is the first record write.
	fs := faultinject.NewFS(map[int64]faultinject.Kind{2: faultinject.Fail})
	ws, err := wal.Create(buildOrg(exp.OrgCluster, ds), t.TempDir(), wal.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Insert with a failing log did not panic")
		}
	}()
	o := testObject(1)
	ws.Insert(o, o.Bounds())
}

// TestReclusterReplays checks that a logged recluster pass replays: the
// recovered cluster store matches a reference that ran the same policy at
// the same point of the op stream.
func TestReclusterReplays(t *testing.T) {
	dir := t.TempDir()
	ds := smallDataset()
	ops := mutationOps(t, ds, 60)

	ws, err := wal.Create(buildOrg(exp.OrgCluster, ds), dir, wal.Options{CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops[:30] {
		if _, err := ws.Apply([]wal.Mutation{toMutation(op)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ws.Recluster("threshold"); err != nil {
		t.Fatal(err)
	}
	for _, op := range ops[30:] {
		if _, err := ws.Apply([]wal.Mutation{toMutation(op)}); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: drop without flush or close.

	rec, st, err := wal.Recover(dir, memEnv, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if want := len(ops) + 1; st.Replayed != want { // +1: the recluster record
		t.Fatalf("replayed %d records, want %d", st.Replayed, want)
	}

	ref := buildOrg(exp.OrgCluster, ds)
	applyRaw(ref, ops[:30])
	pol, err := recluster.ByName("threshold")
	if err != nil {
		t.Fatal(err)
	}
	pol.Maintain(ref.(*store.Cluster))
	applyRaw(ref, ops[30:])
	if err := diffAnswers(answers(ref), answers(rec)); err != nil {
		t.Fatalf("recovered store differs from reference: %v", err)
	}
}

// TestUnknownPolicy checks Recluster's name validation.
func TestUnknownPolicy(t *testing.T) {
	ds := smallDataset()
	ws, err := wal.Create(buildOrg(exp.OrgCluster, ds), t.TempDir(), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Close()
	if _, err := ws.Recluster("bogus"); err == nil {
		t.Fatal("Recluster with an unknown policy succeeded")
	}
	if st := ws.Log().Stats(); st.LastLSN != 0 {
		t.Fatalf("a rejected policy logged %d records", st.LastLSN)
	}
}
