package wal

import "os"

// File is the write handle of one segment file. The log only ever appends
// and syncs; reading happens path-based during recovery.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// FileSystem abstracts how segment files are created and reopened, so the
// fault-injection harness (internal/faultinject) can make the Nth write
// fail, short-write or flip a bit. Production uses the real filesystem.
type FileSystem interface {
	// Create makes a fresh file; it fails if the file already exists (a
	// segment name collision is always a bug).
	Create(path string) (File, error)
	// OpenAppend reopens an existing file for appending (recovery resumes
	// the last segment after truncating its torn tail).
	OpenAppend(path string) (File, error)
}

// osFS is the real filesystem.
type osFS struct{}

func (osFS) Create(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
}

func (osFS) OpenAppend(path string) (File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
}
