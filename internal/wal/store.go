package wal

import (
	"fmt"
	"sync"
	"sync/atomic"

	"spatialcluster/internal/buffer"
	"spatialcluster/internal/disk"
	"spatialcluster/internal/geom"
	"spatialcluster/internal/object"
	"spatialcluster/internal/recluster"
	"spatialcluster/internal/rtree"
	"spatialcluster/internal/store"
)

// Store wraps an organization with write-ahead logging: it implements
// store.Organization, delegates every query unchanged, and routes every
// mutation through the log — append (and fsync, per Options.SyncEvery)
// first, apply second — so an acknowledged mutation is always recoverable.
//
// The interface's mutating methods have no error returns, so they panic
// when the log cannot accept the record (the same contract as Env.sync: a
// store that cannot make its durability promise must not limp on). Callers
// that want the error — the server's dispatcher, the fault-injection tests
// — use Apply, which also gives a whole batch one fsync (group commit).
type Store struct {
	mu   sync.Mutex // serializes mutations: log order == apply order
	org  atomic.Pointer[store.Organization]
	log  *Log
	dir  string
	opts Options

	ckptWG      sync.WaitGroup
	ckptRunning atomic.Bool
	ckptErrMu   sync.Mutex
	ckptErr     error
}

// Mutation is one entry of an Apply batch.
type Mutation struct {
	Kind Kind
	Obj  *object.Object // KindInsert, KindUpdate
	Key  geom.Rect      // KindInsert, KindUpdate
	ID   object.ID      // KindDelete
}

// Underlying returns the wrapped organization. store.Unwrap uses it; going
// around the wrapper to mutate the underlying store directly forfeits
// durability.
func (s *Store) Underlying() store.Organization { return *s.org.Load() }

// Log exposes the write-ahead log (for stats and tests).
func (s *Store) Log() *Log { return s.log }

// Apply logs muts as one commit — every record shares one fsync — and then
// applies them in order, reporting for each delete/update whether the
// object existed. On error nothing is applied, nothing is acknowledged, and
// the log stays poisoned: later Apply calls fail too, so the acknowledged
// prefix is exactly what recovery replays.
func (s *Store) Apply(muts []Mutation) ([]bool, error) {
	if len(muts) == 0 {
		return nil, nil
	}
	recs := make([]Record, len(muts))
	for i, m := range muts {
		switch m.Kind {
		case KindInsert, KindUpdate:
			recs[i] = Record{Kind: m.Kind, Obj: m.Obj, Key: m.Key}
		case KindDelete:
			recs[i] = Record{Kind: m.Kind, ID: m.ID}
		default:
			return nil, fmt.Errorf("wal: cannot apply mutation of kind %v", m.Kind)
		}
	}
	s.mu.Lock()
	if err := s.log.Append(recs...); err != nil {
		s.mu.Unlock()
		return nil, err
	}
	org := s.Underlying()
	existed := make([]bool, len(muts))
	for i, m := range muts {
		switch m.Kind {
		case KindInsert:
			org.Insert(m.Obj, m.Key)
		case KindDelete:
			existed[i] = org.Delete(m.ID)
		case KindUpdate:
			existed[i] = org.Update(m.Obj, m.Key)
		}
	}
	s.mu.Unlock()
	s.maybeCheckpoint()
	return existed, nil
}

// Recluster logs and runs one maintenance pass of the named policy
// (resolved through recluster.ByName, the same resolution replay uses, so
// the replayed pass repeats this one exactly). Non-cluster organizations
// are a no-op and log nothing.
func (s *Store) Recluster(policy string) (recluster.Result, error) {
	pol, err := recluster.ByName(policy)
	if err != nil {
		return recluster.Result{}, err
	}
	s.mu.Lock()
	c, ok := store.Unwrap(s.Underlying()).(*store.Cluster)
	if !ok {
		s.mu.Unlock()
		return recluster.Result{}, nil
	}
	if err := s.log.Append(Record{Kind: KindRecluster, Policy: policy}); err != nil {
		s.mu.Unlock()
		return recluster.Result{}, err
	}
	res := pol.Maintain(c)
	s.mu.Unlock()
	s.maybeCheckpoint()
	return res, nil
}

// Checkpoint writes a fresh snapshot covering everything logged so far,
// rotates the log and retires fully-covered segments. Mutations are blocked
// only while the in-memory image is captured; the snapshot write and the
// retirement happen concurrently with new appends.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	boundary, err := s.log.BeginCheckpoint()
	if err != nil {
		s.mu.Unlock()
		return err
	}
	img, err := store.Snapshot(s.Underlying())
	s.mu.Unlock()
	if err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	if err := writeSnapshot(s.dir, boundary, img); err != nil {
		return err
	}
	s.log.Retire(boundary)
	return nil
}

// maybeCheckpoint starts a background checkpoint once the live log crosses
// Options.CheckpointBytes. At most one runs at a time; its error (if any)
// surfaces on the next call and on Close.
func (s *Store) maybeCheckpoint() {
	if s.opts.CheckpointBytes <= 0 || s.log.TailBytes() < s.opts.CheckpointBytes {
		return
	}
	if !s.ckptRunning.CompareAndSwap(false, true) {
		return
	}
	s.ckptWG.Add(1)
	go func() {
		defer s.ckptWG.Done()
		defer s.ckptRunning.Store(false)
		if err := s.Checkpoint(); err != nil {
			s.ckptErrMu.Lock()
			s.ckptErr = err
			s.ckptErrMu.Unlock()
		}
	}()
}

// CheckpointErr returns the sticky error of the newest failed background
// checkpoint, if any. A failed checkpoint never loses data — the log simply
// keeps growing — but the operator should know.
func (s *Store) CheckpointErr() error {
	s.ckptErrMu.Lock()
	defer s.ckptErrMu.Unlock()
	return s.ckptErr
}

// Rebase atomically replaces the served organization (the /load path): the
// log's history no longer describes the new store, so a checkpoint of the
// fresh organization is written at the current boundary and every older
// segment retires. The caller keeps ownership of the previous underlying
// organization (fetch it with Underlying before calling) and must quiesce
// mutations around the swap.
func (s *Store) Rebase(org store.Organization) error {
	s.ckptWG.Wait()
	s.mu.Lock()
	boundary, err := s.log.BeginCheckpoint()
	if err != nil {
		s.mu.Unlock()
		return err
	}
	img, err := store.Snapshot(org)
	if err != nil {
		s.mu.Unlock()
		return fmt.Errorf("wal: rebase: %w", err)
	}
	s.org.Store(&org)
	s.mu.Unlock()
	if err := writeSnapshot(s.dir, boundary, img); err != nil {
		return err
	}
	s.log.Retire(boundary)
	return nil
}

// Close waits for any background checkpoint, syncs and closes the log, and
// closes the underlying organization's environment (its backend). The store
// must not be used afterwards.
func (s *Store) Close() error {
	s.ckptWG.Wait()
	err := s.log.Close()
	if cerr := s.Underlying().Env().Close(); err == nil {
		err = cerr
	}
	return err
}

// mutate is the panic-on-log-failure single-op path behind the
// store.Organization mutating methods.
func (s *Store) mutate(m Mutation) bool {
	existed, err := s.Apply([]Mutation{m})
	if err != nil {
		panic(fmt.Sprintf("wal: logging %v: %v", m.Kind, err))
	}
	return existed[0]
}

// Name implements store.Organization.
func (s *Store) Name() string { return s.Underlying().Name() }

// Insert implements store.Organization. It panics when the record cannot be
// logged; use Apply for an error return.
func (s *Store) Insert(o *object.Object, key geom.Rect) {
	s.mutate(Mutation{Kind: KindInsert, Obj: o, Key: key})
}

// Delete implements store.Organization. It panics when the record cannot be
// logged; use Apply for an error return.
func (s *Store) Delete(id object.ID) bool {
	return s.mutate(Mutation{Kind: KindDelete, ID: id})
}

// Update implements store.Organization. It panics when the record cannot be
// logged; use Apply for an error return.
func (s *Store) Update(o *object.Object, key geom.Rect) bool {
	return s.mutate(Mutation{Kind: KindUpdate, Obj: o, Key: key})
}

// PointQuery implements store.Organization.
func (s *Store) PointQuery(p geom.Point) store.QueryResult {
	return s.Underlying().PointQuery(p)
}

// NearestQuery implements store.Organization.
func (s *Store) NearestQuery(p geom.Point, k int) store.NearestResult {
	return s.Underlying().NearestQuery(p, k)
}

// WindowQuery implements store.Organization.
func (s *Store) WindowQuery(w geom.Rect, tech store.Technique) store.QueryResult {
	return s.Underlying().WindowQuery(w, tech)
}

// FetchObjects implements store.Organization.
func (s *Store) FetchObjects(leaf disk.PageID, ids []object.ID, m *buffer.Manager, tech store.Technique) []*object.Object {
	return s.Underlying().FetchObjects(leaf, ids, m, tech)
}

// PrepareFetch implements store.Organization.
func (s *Store) PrepareFetch(leaf disk.PageID, ids []object.ID, m *buffer.Manager, tech store.Technique) store.ObjectFetch {
	return s.Underlying().PrepareFetch(leaf, ids, m, tech)
}

// Tree implements store.Organization.
func (s *Store) Tree() *rtree.Tree { return s.Underlying().Tree() }

// Env implements store.Organization.
func (s *Store) Env() *store.Env { return s.Underlying().Env() }

// Stats implements store.Organization.
func (s *Store) Stats() store.StorageStats { return s.Underlying().Stats() }

// Flush implements store.Organization: the underlying store flushes and the
// log syncs, making everything acknowledged so far durable. It panics when
// the sync fails (the Env.sync contract).
func (s *Store) Flush() {
	s.Underlying().Flush()
	if err := s.log.Sync(); err != nil {
		panic(fmt.Sprintf("wal: flush: %v", err))
	}
}
