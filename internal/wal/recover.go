package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"spatialcluster/internal/disk"
	"spatialcluster/internal/framing"
	"spatialcluster/internal/recluster"
	"spatialcluster/internal/snapshot"
	"spatialcluster/internal/store"
)

// parseSegName extracts the first LSN from a segment file name.
func parseSegName(name string) (uint64, bool) {
	return parseHexName(name, "wal-", ".seg")
}

// parseSnapName extracts the covered LSN from a snapshot file name.
func parseSnapName(name string) (uint64, bool) {
	return parseHexName(name, "snap-", ".sdb")
}

func parseHexName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	hex := name[len(prefix) : len(name)-len(suffix)]
	if len(hex) != 16 {
		return 0, false
	}
	n, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Exists reports whether dir holds write-ahead-log state (a checkpoint
// snapshot or a segment). A missing directory is simply empty.
func Exists(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if _, ok := parseSegName(e.Name()); ok {
			return true
		}
		if _, ok := parseSnapName(e.Name()); ok {
			return true
		}
	}
	return false
}

// Create attaches a fresh write-ahead log in dir (created if missing) to a
// built organization and returns the logging wrapper. The directory must
// not already hold WAL state — recover an existing log with Recover instead
// of silently shadowing it. Creation writes the initial checkpoint (a
// snapshot of org as handed in), so the directory alone is sufficient to
// recover from the very first crash.
func Create(org store.Organization, dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if Exists(dir) {
		return nil, fmt.Errorf("wal: %s already holds a write-ahead log (use Recover)", dir)
	}
	img, err := store.Snapshot(org)
	if err != nil {
		return nil, fmt.Errorf("wal: initial checkpoint: %w", err)
	}
	if err := writeSnapshot(dir, 0, img); err != nil {
		return nil, err
	}
	log, err := openFresh(dir, 1, opts)
	if err != nil {
		return nil, err
	}
	s := &Store{log: log, dir: dir, opts: opts}
	s.org.Store(&org)
	return s, nil
}

// writeSnapshot writes a checkpoint snapshot atomically: to a temp file
// first, renamed into place only once fully durable, so a crash mid-write
// can never leave a half snapshot under a valid name.
func writeSnapshot(dir string, upTo uint64, img *store.Image) error {
	final := filepath.Join(dir, snapName(upTo))
	tmp := final + ".tmp"
	if err := snapshot.Write(tmp, img); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: checkpoint snapshot: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: checkpoint snapshot: %w", err)
	}
	return nil
}

// RecoverStats reports what a recovery did.
type RecoverStats struct {
	// SnapshotLSN is the checkpoint the recovery started from (every
	// record <= SnapshotLSN was already baked into the snapshot).
	SnapshotLSN uint64
	// Replayed counts the records applied from the log tail.
	Replayed int
	// TornTail reports that the final record was truncated or failed its
	// checksum and was discarded — the signature of a crash mid-append.
	TornTail bool
}

// Recover rebuilds the store a WAL directory describes: the newest readable
// checkpoint snapshot is restored onto a fresh environment built by newEnv
// (which receives the snapshot's disk parameters), and the log tail is
// replayed over it. A torn final record is discarded and the segment
// truncated back to its last intact record; corruption anywhere else —
// mid-history, or an LSN gap between segments — is a hard error, because
// silently skipping an interior record would replay a different history
// than the one acknowledged. The returned store continues logging where the
// log left off.
func Recover(dir string, newEnv func(disk.Params) (*store.Env, error), opts Options) (*Store, RecoverStats, error) {
	opts = opts.withDefaults()
	var st RecoverStats

	snaps, segs, err := scanDir(dir)
	if err != nil {
		return nil, st, err
	}
	if len(snaps) == 0 {
		return nil, st, fmt.Errorf("wal: %s holds no checkpoint snapshot", dir)
	}

	// Newest readable snapshot wins; an unreadable one (a crash straddling
	// retirement, or plain corruption) falls back to the next older, whose
	// covered records are still in the log.
	var img *store.Image
	var snapErr error
	for i := len(snaps) - 1; i >= 0; i-- {
		img, snapErr = snapshot.Read(filepath.Join(dir, snapName(snaps[i])))
		if snapErr == nil {
			st.SnapshotLSN = snaps[i]
			break
		}
	}
	if img == nil {
		return nil, st, fmt.Errorf("wal: no readable checkpoint snapshot: %w", snapErr)
	}

	env, err := newEnv(img.Params)
	if err != nil {
		return nil, st, err
	}
	org, err := store.Restore(img, env)
	if err != nil {
		env.Close()
		return nil, st, fmt.Errorf("wal: restoring checkpoint: %w", err)
	}

	next := st.SnapshotLSN + 1
	for i, seg := range segs {
		last := i == len(segs)-1
		res, err := replaySegment(org, filepath.Join(dir, segName(seg)), seg, next, last)
		if err != nil {
			env.Close()
			return nil, st, err
		}
		next = res.next
		st.Replayed += res.applied
		if res.torn {
			st.TornTail = true
			break
		}
	}

	log, err := reopenLog(dir, segs, next, opts)
	if err != nil {
		env.Close()
		return nil, st, err
	}
	s := &Store{log: log, dir: dir, opts: opts}
	s.org.Store(&org)
	return s, st, nil
}

// scanDir lists the WAL directory: snapshot LSNs ascending, segment first
// LSNs ascending. Leftover temp files from an interrupted checkpoint are
// removed.
func scanDir(dir string) (snaps, segs []uint64, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if lsn, ok := parseSnapName(name); ok {
			snaps = append(snaps, lsn)
		}
		if first, ok := parseSegName(name); ok {
			segs = append(segs, first)
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return snaps, segs, nil
}

// replayResult reports one segment's replay.
type replayResult struct {
	next    uint64 // LSN the next segment must continue at
	applied int
	torn    bool
}

// replaySegment applies the records of one segment with LSN > next-1 to
// org, verifying the LSN chain is contiguous. In the last segment a torn
// record ends the log: the file is truncated back to its last intact
// record so appends can resume; anywhere else it is corruption.
func replaySegment(org store.Organization, path string, first, next uint64, last bool) (replayResult, error) {
	res := replayResult{next: next}
	f, err := os.Open(path)
	if err != nil {
		return res, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()

	header := make([]byte, segHeaderSize)
	if _, err := io.ReadFull(f, header); err != nil {
		if last && (err == io.EOF || err == io.ErrUnexpectedEOF) {
			// A crash between creating the segment file and completing its
			// header: the segment holds no records. Drop it; reopenLog will
			// start a fresh one.
			f.Close()
			os.Remove(path)
			res.torn = true
			return res, nil
		}
		return res, fmt.Errorf("wal: %s: reading segment header: %w", path, err)
	}
	if string(header[:len(segMagic)]) != segMagic {
		return res, fmt.Errorf("wal: %s: not a spatialcluster WAL segment (or an unsupported version)", path)
	}
	if got := binary.LittleEndian.Uint64(header[len(segMagic):]); got != first {
		return res, fmt.Errorf("wal: %s: header says first LSN %d, file name says %d", path, got, first)
	}

	r := bufio.NewReader(f)
	offset := int64(segHeaderSize)
	expect := first
	for {
		payload, err := framing.ReadRecord(r, maxRecordLen)
		if err == io.EOF {
			return res, nil
		}
		if rerr, ok := err.(*framing.RecordError); ok {
			if !last {
				return res, fmt.Errorf("wal: %s: corrupt record %d mid-history: %v", path, expect, rerr)
			}
			// The torn tail: discard the broken record and everything the
			// poisoned log wrote after it, and truncate so appends resume
			// exactly after the last intact record.
			f.Close()
			if terr := os.Truncate(path, offset); terr != nil {
				return res, fmt.Errorf("wal: truncating torn tail of %s: %w", path, terr)
			}
			res.torn = true
			return res, nil
		}
		if err != nil {
			return res, fmt.Errorf("wal: %s: %w", path, err)
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return res, fmt.Errorf("wal: %s: %w", path, err)
		}
		if rec.LSN != expect {
			return res, fmt.Errorf("wal: %s: record LSN %d where %d was expected", path, rec.LSN, expect)
		}
		offset += int64(framing.RecordSize(len(payload)))
		expect++
		if rec.LSN < res.next {
			continue // already baked into the snapshot
		}
		if rec.LSN != res.next {
			return res, fmt.Errorf("wal: %s: record LSN %d leaves a gap after %d", path, rec.LSN, res.next-1)
		}
		if err := applyRecord(org, &rec); err != nil {
			return res, fmt.Errorf("wal: %s: %w", path, err)
		}
		res.next++
		res.applied++
	}
}

// applyRecord replays one mutation onto the raw organization.
func applyRecord(org store.Organization, rec *Record) error {
	switch rec.Kind {
	case KindInsert:
		org.Insert(rec.Obj, rec.Key)
	case KindDelete:
		org.Delete(rec.ID)
	case KindUpdate:
		org.Update(rec.Obj, rec.Key)
	case KindRecluster:
		pol, err := recluster.ByName(rec.Policy)
		if err != nil {
			return fmt.Errorf("replaying record %d: %w", rec.LSN, err)
		}
		if c, ok := store.Unwrap(org).(*store.Cluster); ok {
			pol.Maintain(c)
		}
	default:
		return fmt.Errorf("replaying record %d: unknown kind %d", rec.LSN, byte(rec.Kind))
	}
	return nil
}

// reopenLog resumes appending after a replay: the surviving last segment is
// reopened for append, or a fresh segment is started when none survived.
func reopenLog(dir string, segs []uint64, next uint64, opts Options) (*Log, error) {
	l := &Log{dir: dir, opts: opts, nextLSN: next}
	for _, first := range segs {
		path := filepath.Join(dir, segName(first))
		fi, err := os.Stat(path)
		if err != nil {
			continue // the dropped header-torn segment
		}
		l.segs = append(l.segs, segment{path: path, first: first, bytes: fi.Size()})
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.segs) == 0 {
		if err := l.createSegmentLocked(); err != nil {
			return nil, err
		}
		return l, nil
	}
	lastSeg := l.segs[len(l.segs)-1]
	f, err := opts.FS.OpenAppend(lastSeg.path)
	if err != nil {
		return nil, fmt.Errorf("wal: reopening segment: %w", err)
	}
	l.f = f
	return l, nil
}
