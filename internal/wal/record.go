package wal

import (
	"encoding/binary"
	"fmt"
	"math"

	"spatialcluster/internal/geom"
	"spatialcluster/internal/object"
)

// Kind classifies one logged mutation.
type Kind byte

// The mutation kinds a record can carry.
const (
	KindInsert Kind = iota + 1
	KindDelete
	KindUpdate
	KindRecluster
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindInsert:
		return "insert"
	case KindDelete:
		return "delete"
	case KindUpdate:
		return "update"
	case KindRecluster:
		return "recluster"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Record is one logged mutation. Inserts and updates carry the object and
// its spatial key; deletes carry the victim ID; recluster records carry the
// policy name (resolved through recluster.ByName at replay, so maintenance
// replays deterministically). The LSN is assigned by the log on append.
type Record struct {
	LSN    uint64
	Kind   Kind
	Obj    *object.Object // insert, update
	Key    geom.Rect      // insert, update
	ID     object.ID      // delete
	Policy string         // recluster
}

// recordPrefix is the fixed prefix of every record payload: LSN (8) +
// kind (1).
const recordPrefix = 9

// keySize is the serialized spatial key: four float64 coordinates.
const keySize = 32

// encode serializes the record into the payload the framing layer wraps.
func (r *Record) encode() []byte {
	switch r.Kind {
	case KindInsert, KindUpdate:
		obj := object.Marshal(r.Obj)
		buf := make([]byte, recordPrefix+keySize+len(obj))
		r.putPrefix(buf)
		binary.LittleEndian.PutUint64(buf[recordPrefix:], math.Float64bits(r.Key.MinX))
		binary.LittleEndian.PutUint64(buf[recordPrefix+8:], math.Float64bits(r.Key.MinY))
		binary.LittleEndian.PutUint64(buf[recordPrefix+16:], math.Float64bits(r.Key.MaxX))
		binary.LittleEndian.PutUint64(buf[recordPrefix+24:], math.Float64bits(r.Key.MaxY))
		copy(buf[recordPrefix+keySize:], obj)
		return buf
	case KindDelete:
		buf := make([]byte, recordPrefix+8)
		r.putPrefix(buf)
		binary.LittleEndian.PutUint64(buf[recordPrefix:], uint64(r.ID))
		return buf
	case KindRecluster:
		buf := make([]byte, recordPrefix+len(r.Policy))
		r.putPrefix(buf)
		copy(buf[recordPrefix:], r.Policy)
		return buf
	}
	panic(fmt.Sprintf("wal: encoding record of kind %v", r.Kind))
}

func (r *Record) putPrefix(buf []byte) {
	binary.LittleEndian.PutUint64(buf, r.LSN)
	buf[8] = byte(r.Kind)
}

// decodeRecord deserializes a payload produced by encode. The payload has
// already passed its CRC, so a decode failure is a format error, not a torn
// write.
func decodeRecord(payload []byte) (Record, error) {
	if len(payload) < recordPrefix {
		return Record{}, fmt.Errorf("record payload of %d bytes shorter than the %d-byte prefix",
			len(payload), recordPrefix)
	}
	r := Record{
		LSN:  binary.LittleEndian.Uint64(payload),
		Kind: Kind(payload[8]),
	}
	body := payload[recordPrefix:]
	switch r.Kind {
	case KindInsert, KindUpdate:
		if len(body) < keySize {
			return Record{}, fmt.Errorf("record %d: %v body of %d bytes shorter than the %d-byte key",
				r.LSN, r.Kind, len(body), keySize)
		}
		r.Key = geom.Rect{
			MinX: math.Float64frombits(binary.LittleEndian.Uint64(body)),
			MinY: math.Float64frombits(binary.LittleEndian.Uint64(body[8:])),
			MaxX: math.Float64frombits(binary.LittleEndian.Uint64(body[16:])),
			MaxY: math.Float64frombits(binary.LittleEndian.Uint64(body[24:])),
		}
		obj, err := object.Unmarshal(body[keySize:])
		if err != nil {
			return Record{}, fmt.Errorf("record %d: %w", r.LSN, err)
		}
		r.Obj = obj
	case KindDelete:
		if len(body) != 8 {
			return Record{}, fmt.Errorf("record %d: delete body is %d bytes, want 8", r.LSN, len(body))
		}
		r.ID = object.ID(binary.LittleEndian.Uint64(body))
	case KindRecluster:
		r.Policy = string(body)
	default:
		return Record{}, fmt.Errorf("record %d: unknown kind %d", r.LSN, byte(r.Kind))
	}
	return r, nil
}
