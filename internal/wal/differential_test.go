package wal_test

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"spatialcluster/internal/datagen"
	"spatialcluster/internal/exp"
	"spatialcluster/internal/faultinject"
	"spatialcluster/internal/geom"
	"spatialcluster/internal/object"
	"spatialcluster/internal/store"
	"spatialcluster/internal/wal"
)

// mutationOps generates n non-query ops of the seeded mixed workload.
func mutationOps(t *testing.T, ds *datagen.Dataset, n int) []datagen.Op {
	t.Helper()
	all := ds.MixedWorkload(datagen.MixSpec{Ops: 4 * n, Seed: 3, HotspotFrac: 0.5})
	ops := make([]datagen.Op, 0, n)
	for _, op := range all {
		if op.Kind == datagen.OpQuery {
			continue
		}
		ops = append(ops, op)
		if len(ops) == n {
			return ops
		}
	}
	t.Fatalf("workload of %d ops yielded only %d mutations, want %d", 4*n, len(ops), n)
	return nil
}

// toMutation converts a workload op into an Apply entry.
func toMutation(op datagen.Op) wal.Mutation {
	switch op.Kind {
	case datagen.OpInsert:
		return wal.Mutation{Kind: wal.KindInsert, Obj: op.Obj, Key: op.Key}
	case datagen.OpDelete:
		return wal.Mutation{Kind: wal.KindDelete, ID: op.ID}
	case datagen.OpUpdate:
		return wal.Mutation{Kind: wal.KindUpdate, Obj: op.Obj, Key: op.Key}
	}
	panic(fmt.Sprintf("not a mutation: %v", op.Kind))
}

// applyRaw applies the ops directly to an unwrapped organization — the
// never-crashed reference of the differential suite.
func applyRaw(org store.Organization, ops []datagen.Op) {
	for _, op := range ops {
		switch op.Kind {
		case datagen.OpInsert:
			org.Insert(op.Obj, op.Key)
		case datagen.OpDelete:
			org.Delete(op.ID)
		case datagen.OpUpdate:
			org.Update(op.Obj, op.Key)
		}
	}
}

// probeWindows are the fixed query windows of the differential comparison.
var probeWindows = []geom.Rect{
	geom.R(0.1, 0.1, 0.4, 0.4),
	geom.R(0.3, 0.5, 0.7, 0.9),
	geom.R(0.0, 0.0, 1.0, 1.0),
	geom.R(0.45, 0.45, 0.55, 0.55),
}

// probePoints are the fixed point-query probes.
var probePoints = []geom.Point{
	geom.Pt(0.25, 0.25), geom.Pt(0.5, 0.5), geom.Pt(0.75, 0.4),
}

// answers captures the full query surface of a store: the sorted result set
// of every probe window, point probe, and the ordered k-NN lists. Two stores
// holding the same objects must produce identical answers.
func answers(org store.Organization) map[string][]object.ID {
	org.Flush()
	out := make(map[string][]object.ID)
	for i, w := range probeWindows {
		ids := append([]object.ID(nil), org.WindowQuery(w, store.TechComplete).IDs...)
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		out[fmt.Sprintf("win%d", i)] = ids
	}
	for i, p := range probePoints {
		ids := append([]object.ID(nil), org.PointQuery(p).IDs...)
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		out[fmt.Sprintf("pt%d", i)] = ids
		// k-NN answers are deterministically ordered; keep the order.
		out[fmt.Sprintf("knn%d", i)] = append([]object.ID(nil), org.NearestQuery(p, 8).IDs...)
	}
	return out
}

// diffAnswers reports the first difference between two answer sets.
func diffAnswers(want, got map[string][]object.ID) error {
	for key, w := range want {
		g := got[key]
		if len(w) != len(g) {
			return fmt.Errorf("%s: %d results, want %d", key, len(g), len(w))
		}
		for i := range w {
			if w[i] != g[i] {
				return fmt.Errorf("%s[%d]: object %d, want %d", key, i, g[i], w[i])
			}
		}
	}
	return nil
}

// allKinds is the organization comparison set of the differential suite.
var allKinds = []exp.OrgKind{exp.OrgSecondary, exp.OrgPrimary, exp.OrgCluster}

func kindSlug(kind exp.OrgKind) string {
	switch kind {
	case exp.OrgSecondary:
		return "secondary"
	case exp.OrgPrimary:
		return "primary"
	case exp.OrgCluster:
		return "cluster"
	}
	return string(kind)
}

// TestKillAtN is the kill-at-N differential suite: build a store, wrap it in
// a WAL, apply K single-op commits of a seeded mixed workload with a scripted
// fault, "crash" (drop the store without flush or close), recover, and
// require the recovered store's window/point/k-NN answers to be identical to
// a never-crashed reference that applied exactly the durable prefix. Runs for
// all three organizations.
//
// Operation numbering (SyncEvery=1, one-record commits, no rotation): op 1 is
// the segment header write, record i's write is op 2i and its fsync op 2i+1.
func TestKillAtN(t *testing.T) {
	const K, M = 60, 20
	cases := []struct {
		name   string
		faults map[int64]faultinject.Kind
		// mangle corrupts the WAL directory after the crash.
		mangle func(t *testing.T, dir string)
		// wantAcked is how many ops Apply must accept before erroring.
		wantAcked int
		// wantPrefix is the durable prefix recovery must restore, exactly.
		wantPrefix int
		wantTorn   bool
	}{
		{
			name:      "clean crash",
			wantAcked: K, wantPrefix: K, wantTorn: false,
		},
		{
			name:      "torn final record",
			mangle:    truncateTail(3),
			wantAcked: K, wantPrefix: K - 1, wantTorn: true,
		},
		{
			// The write of record M persists only half the buffer: the tail
			// is torn at M and ops M..K were never acknowledged.
			name:      "short write at record M",
			faults:    map[int64]faultinject.Kind{2 * M: faultinject.ShortWrite},
			wantAcked: M - 1, wantPrefix: M - 1, wantTorn: true,
		},
		{
			// The medium lies: record M is acknowledged but corrupt on disk,
			// so recovery truncates at M-1 — every record after the flip is
			// sacrificed to keep the replayed history contiguous.
			name:      "bit flip at record M",
			faults:    map[int64]faultinject.Kind{2 * M: faultinject.BitFlip},
			wantAcked: K, wantPrefix: M - 1, wantTorn: true,
		},
		{
			// The fsync of record M fails: the op was never acknowledged, but
			// its intact record is on disk and legitimately survives — the
			// durable prefix may exceed the acknowledged one, never trail it.
			name:      "fsync fail at record M",
			faults:    map[int64]faultinject.Kind{2*M + 1: faultinject.Fail},
			wantAcked: M - 1, wantPrefix: M, wantTorn: false,
		},
	}
	ds := smallDataset()
	for _, kind := range allKinds {
		ops := mutationOps(t, ds, K)
		for _, tc := range cases {
			t.Run(kindSlug(kind)+"/"+tc.name, func(t *testing.T) {
				dir := t.TempDir()
				opts := wal.Options{SyncEvery: 1, CheckpointBytes: -1}
				if tc.faults != nil {
					opts.FS = faultinject.NewFS(tc.faults)
				}
				ws, err := wal.Create(buildOrg(kind, ds), dir, opts)
				if err != nil {
					t.Fatal(err)
				}
				acked := 0
				for _, op := range ops {
					if _, err := ws.Apply([]wal.Mutation{toMutation(op)}); err != nil {
						break
					}
					acked++
				}
				if acked != tc.wantAcked {
					t.Fatalf("%d ops acknowledged, want %d", acked, tc.wantAcked)
				}
				// Crash: drop ws without Flush or Close.
				if tc.mangle != nil {
					tc.mangle(t, dir)
				}

				rec, st, err := wal.Recover(dir, memEnv, wal.Options{})
				if err != nil {
					t.Fatal(err)
				}
				defer rec.Close()
				if st.Replayed != tc.wantPrefix || st.TornTail != tc.wantTorn {
					t.Fatalf("recovery replayed %d records (torn %v), want %d (torn %v)",
						st.Replayed, st.TornTail, tc.wantPrefix, tc.wantTorn)
				}

				ref := buildOrg(kind, ds)
				applyRaw(ref, ops[:tc.wantPrefix])
				if err := diffAnswers(answers(ref), answers(rec)); err != nil {
					t.Fatalf("recovered store differs from never-crashed reference: %v", err)
				}
			})
		}
	}
}

// truncateTail cuts n bytes off the newest WAL segment — the torn final
// record a power cut mid-write leaves behind.
func truncateTail(n int64) func(t *testing.T, dir string) {
	return func(t *testing.T, dir string) {
		t.Helper()
		segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
		if err != nil || len(segs) == 0 {
			t.Fatalf("no segments to truncate: %v (%v)", segs, err)
		}
		sort.Strings(segs)
		last := segs[len(segs)-1]
		fi, err := os.Stat(last)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(last, fi.Size()-n); err != nil {
			t.Fatal(err)
		}
	}
}

// TestKillAfterCheckpoint crashes after a mid-stream checkpoint: recovery
// must start from the checkpoint snapshot and replay only the post-checkpoint
// tail, for all three organizations.
func TestKillAfterCheckpoint(t *testing.T) {
	const K = 60
	ds := smallDataset()
	for _, kind := range allKinds {
		t.Run(kindSlug(kind), func(t *testing.T) {
			dir := t.TempDir()
			ops := mutationOps(t, ds, K)
			ws, err := wal.Create(buildOrg(kind, ds), dir, wal.Options{CheckpointBytes: -1})
			if err != nil {
				t.Fatal(err)
			}
			for _, op := range ops[:K/2] {
				if _, err := ws.Apply([]wal.Mutation{toMutation(op)}); err != nil {
					t.Fatal(err)
				}
			}
			if err := ws.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			for _, op := range ops[K/2:] {
				if _, err := ws.Apply([]wal.Mutation{toMutation(op)}); err != nil {
					t.Fatal(err)
				}
			}
			// Crash.

			rec, st, err := wal.Recover(dir, memEnv, wal.Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer rec.Close()
			if want := K - K/2; st.Replayed != want || st.TornTail {
				t.Fatalf("recovery replayed %d records (torn %v), want %d from the checkpoint", st.Replayed, st.TornTail, want)
			}

			ref := buildOrg(kind, ds)
			applyRaw(ref, ops)
			if err := diffAnswers(answers(ref), answers(rec)); err != nil {
				t.Fatalf("recovered store differs from never-crashed reference: %v", err)
			}
		})
	}
}

// TestCrashTwice tears the tail, recovers, keeps mutating the recovered
// store, crashes again and recovers again — the recovered-from state must
// itself be recoverable.
func TestCrashTwice(t *testing.T) {
	const K, extra = 60, 10
	ds := smallDataset()
	dir := t.TempDir()
	ops := mutationOps(t, ds, K+extra)

	ws, err := wal.Create(buildOrg(exp.OrgCluster, ds), dir, wal.Options{CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops[:K] {
		if _, err := ws.Apply([]wal.Mutation{toMutation(op)}); err != nil {
			t.Fatal(err)
		}
	}
	// First crash, with a torn final record.
	truncateTail(3)(t, dir)

	mid, st, err := wal.Recover(dir, memEnv, wal.Options{CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Replayed != K-1 || !st.TornTail {
		t.Fatalf("first recovery replayed %d records (torn %v), want %d torn", st.Replayed, st.TornTail, K-1)
	}
	for _, op := range ops[K:] {
		if _, err := mid.Apply([]wal.Mutation{toMutation(op)}); err != nil {
			t.Fatal(err)
		}
	}
	// Second crash, this time clean.

	rec, st, err := wal.Recover(dir, memEnv, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if want := K - 1 + extra; st.Replayed != want || st.TornTail {
		t.Fatalf("second recovery replayed %d records (torn %v), want %d clean", st.Replayed, st.TornTail, want)
	}

	ref := buildOrg(exp.OrgCluster, ds)
	applyRaw(ref, ops[:K-1]) // the torn record K never happened
	applyRaw(ref, ops[K:])
	if err := diffAnswers(answers(ref), answers(rec)); err != nil {
		t.Fatalf("twice-recovered store differs from reference: %v", err)
	}
}
