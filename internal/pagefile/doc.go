// Package pagefile provides page-space management on top of the modelled
// disk (internal/disk): a contiguous-extent allocator with coalescing free
// list, the (restricted) binary buddy system for cluster units (paper
// section 5.3.1, after [GR93]), and an append-only sequential file with
// internal clustering for exact object representations (the secondary
// organization of paper section 3.2.1, and the exclusive-page overflow file
// of the primary organization).
//
// Allocation and freeing model the file system's bookkeeping and charge no
// I/O cost (the paper charges only data page transfers); freed extents are
// reported to the disk's storage backend (disk.Disk.FreeRun) so the memory
// backend can release the pages and the file backend can recycle them.
//
// Every manager in this package can be captured as a plain-data image
// (persist.go) and rebuilt from it, which is how store.Snapshot persists a
// whole organization without re-running construction.
package pagefile
