package pagefile

import (
	"fmt"

	"spatialcluster/internal/buffer"
	"spatialcluster/internal/disk"
)

// DefaultChunkPages is the extent size in pages that a SequentialFile grows
// by. Within a chunk, appends are physically consecutive; an object never
// spans a chunk boundary (internal clustering, paper section 3.1).
const DefaultChunkPages = 1024

// Ref locates a byte range previously appended to a SequentialFile: the
// object starts in page Page at byte offset Off and is Len bytes long,
// spanning physically consecutive pages.
type Ref struct {
	Page disk.PageID
	Off  int
	Len  int
}

// Span returns the run of pages the referenced bytes occupy.
func (r Ref) Span() disk.Run {
	n := (r.Off + r.Len + disk.PageSize - 1) / disk.PageSize
	if n == 0 {
		n = 1
	}
	return disk.Run{Start: r.Page, N: n}
}

// NumPages returns the number of pages the referenced bytes touch (the nop
// term of the paper's cost formulae).
func (r Ref) NumPages() int { return r.Span().N }

// Assemble reconstructs the referenced bytes from the spanned page contents
// (as returned by CaptureBuffered). It is pure CPU work and safe to run on
// any goroutine.
func (r Ref) Assemble(pages [][]byte) []byte { return assemble(r, pages) }

// SequentialFile is an append-only byte store with internal clustering: each
// appended object occupies physically consecutive pages, and objects are
// packed densely ("stored in a sequential file without sacrificing storage",
// paper section 5.3). The unfinished tail page is held in memory and written
// once full (or on Flush), so sequential construction pays essentially one
// transfer per page. In exclusive mode each object gets its own pages
// (the overflow file of the primary organization, paper section 5.2).
type SequentialFile struct {
	alloc      *Allocator
	chunkPages int
	exclusive  bool

	cur       Extent      // current chunk; zero when none
	nextFresh disk.PageID // next never-used page in the current chunk
	curPage   disk.PageID // page currently being filled
	curBuf    []byte      // in-memory content of curPage
	curOff    int         // next free byte within curPage
	havePage  bool
	tailDirty bool // curBuf has bytes not yet on disk

	pagesUsed  int
	bytesTotal int64
	bytesDead  int64
}

// NewSequentialFile creates a densely packed sequential file drawing chunks
// of chunkPages from alloc; chunkPages <= 0 selects DefaultChunkPages.
func NewSequentialFile(alloc *Allocator, chunkPages int) *SequentialFile {
	if chunkPages <= 0 {
		chunkPages = DefaultChunkPages
	}
	return &SequentialFile{alloc: alloc, chunkPages: chunkPages, curPage: disk.InvalidPage}
}

// NewExclusiveFile creates a sequential file in which every object occupies
// its own pages exclusively.
func NewExclusiveFile(alloc *Allocator, chunkPages int) *SequentialFile {
	f := NewSequentialFile(alloc, chunkPages)
	f.exclusive = true
	return f
}

// Append stores data and returns its Ref. Completed pages are written as
// they fill; appends stream sequentially within a chunk.
func (f *SequentialFile) Append(data []byte) Ref {
	if len(data) == 0 {
		panic("pagefile: Append of empty object")
	}
	maxPages := (len(data) + disk.PageSize - 1) / disk.PageSize
	if maxPages > f.chunkPages {
		panic(fmt.Sprintf("pagefile: object of %d bytes exceeds chunk of %d pages",
			len(data), f.chunkPages))
	}

	if f.exclusive && f.havePage && f.curOff > 0 {
		f.completeCurrentPage()
	}

	if f.cur.Pages == 0 || (!f.havePage && f.nextFresh >= f.cur.End()) {
		f.newChunk()
	}

	startOff := 0
	startPage := f.nextFresh
	if f.havePage {
		startOff = f.curOff
		startPage = f.curPage
	}
	span := (startOff + len(data) + disk.PageSize - 1) / disk.PageSize
	if startPage+disk.PageID(span) > f.cur.End() {
		// The object would cross the chunk boundary: complete the tail
		// page, pad the rest of the chunk and open a fresh one.
		if f.havePage && f.curOff > 0 {
			f.completeCurrentPage()
		}
		f.newChunk()
		startOff = 0
		startPage = f.nextFresh
	}

	ref := Ref{Page: startPage, Off: startOff, Len: len(data)}
	remaining := data
	for len(remaining) > 0 {
		f.ensurePage()
		space := disk.PageSize - f.curOff
		n := len(remaining)
		if n > space {
			n = space
		}
		copy(f.curBuf[f.curOff:], remaining[:n])
		f.curOff += n
		f.tailDirty = true
		remaining = remaining[n:]
		if f.curOff == disk.PageSize {
			f.completeCurrentPage()
		}
	}
	f.bytesTotal += int64(len(data))
	if f.exclusive && f.havePage && f.curOff > 0 {
		f.completeCurrentPage()
	}
	return ref
}

func (f *SequentialFile) newChunk() {
	f.cur = f.alloc.Alloc(f.chunkPages)
	f.nextFresh = f.cur.Start
	f.havePage = false
	f.curPage = disk.InvalidPage
	f.curBuf = nil
	f.curOff = 0
}

func (f *SequentialFile) ensurePage() {
	if f.havePage {
		return
	}
	if f.cur.Pages == 0 || f.nextFresh >= f.cur.End() {
		f.newChunk()
	}
	f.curPage = f.nextFresh
	f.nextFresh++
	f.curBuf = make([]byte, disk.PageSize)
	f.curOff = 0
	f.havePage = true
	f.pagesUsed++
}

// completeCurrentPage writes the in-memory tail page to disk and closes it.
func (f *SequentialFile) completeCurrentPage() {
	if !f.havePage {
		return
	}
	f.alloc.Disk().WriteRun(f.curPage, [][]byte{f.curBuf})
	f.havePage = false
	f.tailDirty = false
	f.curPage = disk.InvalidPage
	f.curBuf = nil
	f.curOff = 0
}

// Flush writes the unfinished tail page (if any) to disk. The page stays
// open: further appends keep filling it (and will rewrite it when it
// completes, as a real file system would).
func (f *SequentialFile) Flush() {
	if f.havePage && f.tailDirty {
		f.alloc.Disk().WriteRun(f.curPage, [][]byte{f.curBuf})
		f.tailDirty = false
	}
}

// PagesUsed returns the number of pages occupied by the file, including a
// partially filled tail page.
func (f *SequentialFile) PagesUsed() int { return f.pagesUsed }

// BytesStored returns the object bytes currently stored (appended and not
// discarded).
func (f *SequentialFile) BytesStored() int64 { return f.bytesTotal }

// DeadBytes returns the bytes of discarded objects that still occupy file
// pages (always zero in exclusive mode, where Discard frees the pages).
func (f *SequentialFile) DeadBytes() int64 { return f.bytesDead }

// Discard deletes a previously appended object. In exclusive mode the
// object's pages are returned to the allocator (they were exclusively owned).
// In shared mode the file is append-only, so the bytes remain as dead space,
// tracked by DeadBytes, until the owner compacts or drops the file. Like
// allocation, deallocation models file-system bookkeeping and charges no I/O.
// Discarding the same ref twice corrupts the accounting (and, in exclusive
// mode, trips the allocator's double-free check); callers keep the live set.
func (f *SequentialFile) Discard(ref Ref) {
	if ref.Len <= 0 {
		panic(fmt.Sprintf("pagefile: Discard of empty ref %+v", ref))
	}
	f.bytesTotal -= int64(ref.Len)
	if !f.exclusive {
		f.bytesDead += int64(ref.Len)
		return
	}
	// Exclusive mode completes the tail page after every append, so the
	// span's pages hold nothing but this object.
	span := ref.Span()
	f.alloc.Free(Extent{Start: span.Start, Pages: span.N})
	f.pagesUsed -= span.N
}

// ReadDirect reads the referenced bytes with one read request for the
// spanned consecutive pages, bypassing any buffer (every access pays seek and
// latency — the secondary organization's behaviour for exact objects).
func (f *SequentialFile) ReadDirect(ref Ref) []byte {
	f.Flush()
	span := ref.Span()
	pages := f.alloc.Disk().ReadRun(span.Start, span.N)
	return assemble(ref, pages)
}

// ReadBuffered reads the referenced bytes through the buffer manager m:
// buffered pages are hits, missing pages are fetched with a minimal-run read
// schedule.
func (f *SequentialFile) ReadBuffered(m *buffer.Manager, ref Ref) []byte {
	return assemble(ref, f.CaptureBuffered(m, ref))
}

// CaptureBuffered charges the I/O to read the referenced bytes through m and
// returns the spanned page contents. The returned slices stay valid after
// eviction (page data is immutable once buffered), so ref.Assemble can run on
// another goroutine without touching the buffer — the parallel join prepares
// transfers this way. The pages are pinned while they are captured so a
// concurrent reader's eviction pressure cannot force a mid-capture re-read.
func (f *SequentialFile) CaptureBuffered(m *buffer.Manager, ref Ref) [][]byte {
	f.Flush()
	span := ref.Span()
	ids := make([]disk.PageID, span.N)
	for i := range ids {
		ids[i] = span.Start + disk.PageID(i)
	}
	missing := m.Missing(ids)
	if len(missing) > 0 {
		m.ExecutePlan(disk.PlanRequired(missing), ids, false)
	}
	pinned := m.PinPages(ids)
	pages := make([][]byte, span.N)
	for i, id := range ids {
		data, ok := m.Touch(id)
		if !ok {
			// Evicted between ExecutePlan inserts (object larger than the
			// buffer): re-read the single page.
			data = m.Get(id)
		}
		pages[i] = data
	}
	m.UnpinPages(pinned)
	return pages
}

// assemble reconstructs the referenced bytes from the spanned page contents.
func assemble(ref Ref, pages [][]byte) []byte {
	out := make([]byte, 0, ref.Len)
	pos := ref.Off
	for _, pg := range pages {
		if len(out) == ref.Len {
			break
		}
		if pg == nil {
			pg = make([]byte, disk.PageSize)
		}
		take := ref.Len - len(out)
		if take > disk.PageSize-pos {
			take = disk.PageSize - pos
		}
		if pos+take > len(pg) {
			panic(fmt.Sprintf("pagefile: short page while reading %+v", ref))
		}
		out = append(out, pg[pos:pos+take]...)
		pos = 0
	}
	if len(out) != ref.Len {
		panic(fmt.Sprintf("pagefile: assembled %d of %d bytes for %+v", len(out), ref.Len, ref))
	}
	return out
}
