package pagefile

import (
	"fmt"
	"sort"

	"spatialcluster/internal/disk"
)

// BuddySystem manages physical units (buddies) of sizes Smax·2⁻ⁱ pages for
// cluster units, after the classical file-management buddy system [GR93]
// (paper section 5.3.1). The number of distinct sizes can be restricted: the
// paper's "restricted buddy system" uses only three sizes
// {Smax, Smax/2, Smax/4}, which already lifts the storage utilization of the
// cluster organization to that of the primary organization.
//
// Buddies are carved out of Smax-sized chunks obtained from the extent
// allocator. Within a chunk, the standard XOR rule locates the buddy of a
// block, and two free sibling buddies coalesce into their parent.
type BuddySystem struct {
	alloc      *Allocator
	maxPages   int   // Smax in pages; must be a power of two
	sizes      []int // allowed buddy sizes in pages, descending
	minPages   int   // smallest allowed size
	chunks     map[disk.PageID]*buddyChunk
	chunkBases []disk.PageID      // sorted, for O(log n) chunk lookup
	freeLists  map[int][]blockRef // size -> free blocks
	live       map[disk.PageID]int
	livePages  int // sum of buddy sizes currently allocated
	chunkCount int
}

type buddyChunk struct {
	base disk.PageID
	// freeOffsets[size] is implicit via the shared free lists; the chunk
	// tracks how many of its pages are free to know when it can be
	// returned to the allocator.
	freePages int
}

type blockRef struct {
	chunk  *buddyChunk
	offset int // pages from chunk base
}

// NewBuddySystem creates a buddy system with maxPages = Smax and numSizes
// allowed sizes Smax·2⁻ⁱ (numSizes = 1 degrades to fixed-size units; the
// paper's restricted system uses numSizes = 3, e.g. 80/40/20 KB for series
// A). Halving stops early if a size would no longer be an integral page
// count, so Smax need not be a power of two (the paper's Smax values of
// 20/40/80 pages are not).
func NewBuddySystem(alloc *Allocator, maxPages, numSizes int) *BuddySystem {
	if maxPages <= 0 {
		panic(fmt.Sprintf("pagefile: buddy Smax of %d pages", maxPages))
	}
	if numSizes < 1 {
		panic("pagefile: buddy system needs at least one size")
	}
	b := &BuddySystem{
		alloc:     alloc,
		maxPages:  maxPages,
		chunks:    make(map[disk.PageID]*buddyChunk),
		freeLists: make(map[int][]blockRef),
		live:      make(map[disk.PageID]int),
	}
	size := maxPages
	for i := 0; i < numSizes; i++ {
		b.sizes = append(b.sizes, size)
		b.minPages = size
		if size%2 != 0 {
			break
		}
		size /= 2
	}
	return b
}

// MaxPages returns Smax in pages.
func (b *BuddySystem) MaxPages() int { return b.maxPages }

// Sizes returns the allowed buddy sizes in pages, largest first.
func (b *BuddySystem) Sizes() []int { return append([]int(nil), b.sizes...) }

// SizeFor returns the smallest allowed buddy size that holds n pages; it
// panics if n exceeds Smax.
func (b *BuddySystem) SizeFor(n int) int {
	if n > b.maxPages {
		panic(fmt.Sprintf("pagefile: buddy request of %d pages exceeds Smax=%d", n, b.maxPages))
	}
	best := b.maxPages
	for _, s := range b.sizes {
		if s >= n {
			best = s
		}
	}
	return best
}

// Alloc returns a buddy of the smallest allowed size covering n pages.
func (b *BuddySystem) Alloc(n int) Extent {
	size := b.SizeFor(n)
	ref, ok := b.takeFree(size)
	if !ok {
		// Split larger free blocks down to the wanted size.
		ref, ok = b.splitDown(size)
	}
	if !ok {
		// Carve a fresh Smax chunk from the allocator.
		ext := b.alloc.Alloc(b.maxPages)
		chunk := &buddyChunk{base: ext.Start, freePages: b.maxPages}
		b.chunks[ext.Start] = chunk
		b.insertChunkBase(ext.Start)
		b.chunkCount++
		b.pushFree(b.maxPages, blockRef{chunk: chunk, offset: 0})
		if size == b.maxPages {
			ref, _ = b.takeFree(size)
		} else {
			ref, ok = b.splitDown(size)
			if !ok {
				panic("pagefile: buddy split failed on fresh chunk")
			}
		}
	}
	start := ref.chunk.base + disk.PageID(ref.offset)
	ref.chunk.freePages -= size
	b.live[start] = size
	b.livePages += size
	return Extent{Start: start, Pages: size}
}

// Free returns a buddy obtained from Alloc, coalescing free sibling pairs.
// When a whole chunk becomes free it is handed back to the extent allocator.
func (b *BuddySystem) Free(e Extent) {
	size, ok := b.live[e.Start]
	if !ok || size != e.Pages {
		panic(fmt.Sprintf("pagefile: Free of unknown buddy %+v", e))
	}
	delete(b.live, e.Start)
	b.livePages -= size
	chunk := b.chunkFor(e.Start)
	chunk.freePages += size
	offset := int(e.Start - chunk.base)

	// Coalesce up while the sibling buddy of the same size is free. The
	// sibling of the block at offset o with size s is o+s when o is the
	// lower half of its parent (o divisible by 2s), o−s otherwise.
	for size < b.maxPages {
		sibling := offset + size
		if offset%(2*size) != 0 {
			sibling = offset - size
		}
		if !b.removeFree(size, blockRef{chunk: chunk, offset: sibling}) {
			break
		}
		if sibling < offset {
			offset = sibling
		}
		size *= 2
	}
	if size == b.maxPages {
		// Whole chunk free: return it to the allocator.
		delete(b.chunks, chunk.base)
		b.removeChunkBase(chunk.base)
		b.chunkCount--
		b.alloc.Free(Extent{Start: chunk.base, Pages: b.maxPages})
		return
	}
	b.pushFree(size, blockRef{chunk: chunk, offset: offset})
}

// Grow reallocates a buddy to hold n pages: if the current buddy already
// fits, it is returned unchanged; otherwise a larger buddy is allocated, the
// old one freed, and moved=true reports that the caller must copy the
// content. It panics if n exceeds Smax.
func (b *BuddySystem) Grow(e Extent, n int) (out Extent, moved bool) {
	if n <= e.Pages {
		return e, false
	}
	b.Free(e)
	out = b.Alloc(n)
	return out, out.Start != e.Start
}

// OccupiedPages returns the pages charged to the cluster organization: every
// live buddy at its full size (unused pages inside a buddy cannot serve other
// purposes, paper section 5.3) plus unallocated holes inside carved chunks
// that sit on the buddy free lists.
func (b *BuddySystem) OccupiedPages() int {
	// Chunks are carved whole from the allocator; free buddies inside a
	// chunk are reusable for future cluster units, so utilization studies
	// may count either live pages or whole chunks. The paper charges the
	// maximum unit size per cluster unit, which corresponds to live
	// buddies here; whole-chunk accounting is available via ChunkPages.
	return b.livePages
}

// ChunkPages returns the total pages of all carved chunks.
func (b *BuddySystem) ChunkPages() int { return b.chunkCount * b.maxPages }

// LiveBuddies returns the number of currently allocated buddies.
func (b *BuddySystem) LiveBuddies() int { return len(b.live) }

func (b *BuddySystem) insertChunkBase(base disk.PageID) {
	i := sort.Search(len(b.chunkBases), func(i int) bool { return b.chunkBases[i] >= base })
	b.chunkBases = append(b.chunkBases, 0)
	copy(b.chunkBases[i+1:], b.chunkBases[i:])
	b.chunkBases[i] = base
}

func (b *BuddySystem) removeChunkBase(base disk.PageID) {
	i := sort.Search(len(b.chunkBases), func(i int) bool { return b.chunkBases[i] >= base })
	if i < len(b.chunkBases) && b.chunkBases[i] == base {
		b.chunkBases = append(b.chunkBases[:i], b.chunkBases[i+1:]...)
	}
}

func (b *BuddySystem) chunkFor(start disk.PageID) *buddyChunk {
	// Find the greatest chunk base <= start and check containment.
	i := sort.Search(len(b.chunkBases), func(i int) bool { return b.chunkBases[i] > start })
	if i > 0 {
		base := b.chunkBases[i-1]
		if start < base+disk.PageID(b.maxPages) {
			return b.chunks[base]
		}
	}
	panic(fmt.Sprintf("pagefile: page %d not in any buddy chunk", start))
}

func (b *BuddySystem) pushFree(size int, ref blockRef) {
	b.freeLists[size] = append(b.freeLists[size], ref)
}

func (b *BuddySystem) takeFree(size int) (blockRef, bool) {
	list := b.freeLists[size]
	if len(list) == 0 {
		return blockRef{}, false
	}
	ref := list[len(list)-1]
	b.freeLists[size] = list[:len(list)-1]
	return ref, true
}

func (b *BuddySystem) removeFree(size int, ref blockRef) bool {
	list := b.freeLists[size]
	for i, r := range list {
		if r.chunk == ref.chunk && r.offset == ref.offset {
			b.freeLists[size] = append(list[:i], list[i+1:]...)
			return true
		}
	}
	return false
}

// splitDown splits the smallest available block larger than size until a
// block of exactly size is free, respecting the allowed size set. It returns
// false if no larger block is available.
func (b *BuddySystem) splitDown(size int) (blockRef, bool) {
	// Find the smallest allowed size > size with a free block.
	var fromSize int
	for _, s := range b.sizes {
		if s > size && len(b.freeLists[s]) > 0 {
			fromSize = s // sizes are descending: keep the smallest match
		}
	}
	if fromSize == 0 {
		return blockRef{}, false
	}
	ref, _ := b.takeFree(fromSize)
	for fromSize > size {
		half := fromSize / 2
		// The upper half becomes free, continue splitting the lower half.
		b.pushFree(half, blockRef{chunk: ref.chunk, offset: ref.offset + half})
		fromSize = half
	}
	return ref, true
}
