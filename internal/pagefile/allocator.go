package pagefile

import (
	"fmt"
	"sort"

	"spatialcluster/internal/disk"
)

// Extent is a contiguous run of pages owned by some component.
type Extent struct {
	Start disk.PageID
	Pages int
}

// End returns the page following the extent.
func (e Extent) End() disk.PageID { return e.Start + disk.PageID(e.Pages) }

// Run converts the extent to a disk.Run.
func (e Extent) Run() disk.Run { return disk.Run{Start: e.Start, N: e.Pages} }

// Allocator hands out contiguous page extents on a disk, maintaining a free
// list with coalescing. Allocation and freeing model the file system's
// bookkeeping and are not charged I/O cost (the paper charges only data page
// transfers).
type Allocator struct {
	d    *disk.Disk
	free []Extent // sorted by Start, pairwise disjoint, coalesced
}

// NewAllocator creates an allocator over d. Any pages the disk already has
// are considered allocated (owned by whoever grew the disk).
func NewAllocator(d *disk.Disk) *Allocator {
	return &Allocator{d: d}
}

// Disk returns the underlying disk.
func (a *Allocator) Disk() *disk.Disk { return a.d }

// Alloc returns a contiguous extent of n pages, growing the disk if no free
// extent fits (first fit).
func (a *Allocator) Alloc(n int) Extent {
	if n <= 0 {
		panic(fmt.Sprintf("pagefile: Alloc(%d)", n))
	}
	for i, f := range a.free {
		if f.Pages >= n {
			out := Extent{Start: f.Start, Pages: n}
			if f.Pages == n {
				a.free = append(a.free[:i], a.free[i+1:]...)
			} else {
				a.free[i] = Extent{Start: f.Start + disk.PageID(n), Pages: f.Pages - n}
			}
			return out
		}
	}
	start := a.d.Grow(n)
	return Extent{Start: start, Pages: n}
}

// Free returns an extent to the free list, coalescing with neighbours, and
// tells the disk's backend the pages are unused (the memory backend releases
// them, the file backend zeroes them). The caller must own the extent;
// double frees corrupt the allocator and are detected by overlap checks.
func (a *Allocator) Free(e Extent) {
	if e.Pages <= 0 {
		panic(fmt.Sprintf("pagefile: Free of empty extent %+v", e))
	}
	i := sort.Search(len(a.free), func(i int) bool { return a.free[i].Start >= e.Start })
	if i > 0 && a.free[i-1].End() > e.Start {
		panic(fmt.Sprintf("pagefile: Free(%+v) overlaps free extent %+v", e, a.free[i-1]))
	}
	if i < len(a.free) && e.End() > a.free[i].Start {
		panic(fmt.Sprintf("pagefile: Free(%+v) overlaps free extent %+v", e, a.free[i]))
	}
	a.d.FreeRun(e.Start, e.Pages)
	a.free = append(a.free, Extent{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = e
	// Coalesce with successor, then predecessor.
	if i+1 < len(a.free) && a.free[i].End() == a.free[i+1].Start {
		a.free[i].Pages += a.free[i+1].Pages
		a.free = append(a.free[:i+1], a.free[i+2:]...)
	}
	if i > 0 && a.free[i-1].End() == a.free[i].Start {
		a.free[i-1].Pages += a.free[i].Pages
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
}

// FreePages returns the total number of pages on the free list.
func (a *Allocator) FreePages() int {
	var n int
	for _, f := range a.free {
		n += f.Pages
	}
	return n
}

// AllocatedPages returns the number of pages currently handed out.
func (a *Allocator) AllocatedPages() int {
	return int(a.d.NumPages()) - a.FreePages()
}

// FreeExtents returns the number of extents on the free list (a fragmentation
// indicator).
func (a *Allocator) FreeExtents() int { return len(a.free) }
