package pagefile

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"spatialcluster/internal/buffer"
	"spatialcluster/internal/disk"
)

func TestAllocatorFirstFitAndGrow(t *testing.T) {
	a := NewAllocator(disk.NewDefault())
	e1 := a.Alloc(4)
	e2 := a.Alloc(4)
	if e1.End() != e2.Start {
		t.Fatalf("fresh allocations should be adjacent: %+v %+v", e1, e2)
	}
	a.Free(e1)
	e3 := a.Alloc(2)
	if e3.Start != e1.Start {
		t.Fatalf("first fit should reuse the hole: %+v", e3)
	}
	e4 := a.Alloc(2)
	if e4.Start != e1.Start+2 {
		t.Fatalf("remainder of the hole should be used next: %+v", e4)
	}
	if a.FreePages() != 0 {
		t.Fatalf("free pages = %d", a.FreePages())
	}
}

func TestAllocatorCoalescing(t *testing.T) {
	a := NewAllocator(disk.NewDefault())
	e1, e2, e3 := a.Alloc(2), a.Alloc(2), a.Alloc(2)
	a.Free(e1)
	a.Free(e3)
	if a.FreeExtents() != 2 {
		t.Fatalf("free extents = %d, want 2", a.FreeExtents())
	}
	a.Free(e2)
	if a.FreeExtents() != 1 {
		t.Fatalf("coalescing failed: %d extents", a.FreeExtents())
	}
	if a.FreePages() != 6 {
		t.Fatalf("free pages = %d", a.FreePages())
	}
	if a.AllocatedPages() != 0 {
		t.Fatalf("allocated pages = %d", a.AllocatedPages())
	}
}

func TestAllocatorDoubleFreePanics(t *testing.T) {
	a := NewAllocator(disk.NewDefault())
	e := a.Alloc(3)
	a.Free(e)
	defer func() {
		if recover() == nil {
			t.Fatal("double free must panic")
		}
	}()
	a.Free(e)
}

func TestBuddySizeFor(t *testing.T) {
	a := NewAllocator(disk.NewDefault())
	b := NewBuddySystem(a, 16, 3) // sizes 16, 8, 4
	cases := map[int]int{1: 4, 4: 4, 5: 8, 8: 8, 9: 16, 16: 16}
	for n, want := range cases {
		if got := b.SizeFor(n); got != want {
			t.Errorf("SizeFor(%d) = %d, want %d", n, got, want)
		}
	}
	sizes := b.Sizes()
	if len(sizes) != 3 || sizes[0] != 16 || sizes[1] != 8 || sizes[2] != 4 {
		t.Fatalf("Sizes = %v", sizes)
	}
}

func TestBuddyAllocSplitCoalesce(t *testing.T) {
	a := NewAllocator(disk.NewDefault())
	b := NewBuddySystem(a, 16, 5) // sizes 16..1

	e1 := b.Alloc(1)
	if e1.Pages != 1 {
		t.Fatalf("Alloc(1) = %+v", e1)
	}
	if b.ChunkPages() != 16 {
		t.Fatalf("chunk pages = %d", b.ChunkPages())
	}
	e2 := b.Alloc(1)
	e3 := b.Alloc(2)
	if b.ChunkPages() != 16 {
		t.Fatal("all small buddies must fit in one chunk")
	}
	if b.OccupiedPages() != 4 {
		t.Fatalf("occupied = %d, want 4", b.OccupiedPages())
	}

	// Free everything: the chunk must coalesce and return to the allocator.
	b.Free(e1)
	b.Free(e2)
	b.Free(e3)
	if b.ChunkPages() != 0 || b.LiveBuddies() != 0 {
		t.Fatalf("chunk not returned: chunks=%d live=%d", b.ChunkPages(), b.LiveBuddies())
	}
	if a.FreePages() != 16 {
		t.Fatalf("allocator did not get the chunk back: %d", a.FreePages())
	}
}

func TestBuddyGrow(t *testing.T) {
	a := NewAllocator(disk.NewDefault())
	b := NewBuddySystem(a, 16, 3) // sizes 16, 8, 4

	e := b.Alloc(3) // buddy of 4
	if e.Pages != 4 {
		t.Fatalf("Alloc(3) = %+v", e)
	}
	same, moved := b.Grow(e, 4)
	if moved || same != e {
		t.Fatal("Grow within the buddy must not move")
	}
	bigger, moved := b.Grow(e, 6)
	if bigger.Pages != 8 {
		t.Fatalf("Grow to 6 pages = %+v, want buddy of 8", bigger)
	}
	_ = moved // may or may not move depending on layout
	if b.OccupiedPages() != 8 {
		t.Fatalf("occupied = %d", b.OccupiedPages())
	}
}

func TestBuddyRestrictedMinSize(t *testing.T) {
	a := NewAllocator(disk.NewDefault())
	b := NewBuddySystem(a, 16, 1) // only size 16: fixed units
	e := b.Alloc(1)
	if e.Pages != 16 {
		t.Fatalf("restricted-to-one-size Alloc(1) = %+v", e)
	}
}

// The paper's Smax values are 20/40/80 pages — not powers of two. The
// restricted buddy system of section 5.3.1 uses sizes {Smax, Smax/2, Smax/4},
// e.g. 20/10/5 pages for series A.
func TestBuddyPaperSizes(t *testing.T) {
	a := NewAllocator(disk.NewDefault())
	b := NewBuddySystem(a, 20, 3)
	sizes := b.Sizes()
	if len(sizes) != 3 || sizes[0] != 20 || sizes[1] != 10 || sizes[2] != 5 {
		t.Fatalf("Sizes = %v, want [20 10 5]", sizes)
	}
	e1 := b.Alloc(4) // buddy of 5
	e2 := b.Alloc(4)
	e3 := b.Alloc(9) // buddy of 10
	if e1.Pages != 5 || e2.Pages != 5 || e3.Pages != 10 {
		t.Fatalf("allocs: %+v %+v %+v", e1, e2, e3)
	}
	if b.ChunkPages() != 20 {
		t.Fatalf("chunk pages = %d, want one 20-page chunk", b.ChunkPages())
	}
	b.Free(e1)
	b.Free(e2)
	b.Free(e3)
	if b.ChunkPages() != 0 {
		t.Fatal("chunk must coalesce and return to the allocator")
	}
	// Halving stops at odd sizes.
	odd := NewBuddySystem(a, 20, 10)
	s := odd.Sizes()
	if s[len(s)-1] != 5 {
		t.Fatalf("odd halving sizes = %v, want min 5", s)
	}
}

func TestBuddyPanics(t *testing.T) {
	a := NewAllocator(disk.NewDefault())
	for name, f := range map[string]func(){
		"non-positive Smax": func() { NewBuddySystem(a, 0, 2) },
		"zero sizes":        func() { NewBuddySystem(a, 16, 0) },
		"oversize request":  func() { NewBuddySystem(a, 16, 2).Alloc(17) },
		"unknown free":      func() { NewBuddySystem(a, 16, 2).Free(Extent{Start: 3, Pages: 8}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

// Property: live buddies never overlap, are always one of the allowed sizes,
// aligned to their size within the chunk, and occupied pages equal the sum of
// live buddy sizes.
func TestQuickBuddyInvariants(t *testing.T) {
	f := func(ops []uint8, numSizesRaw uint8) bool {
		numSizes := 1 + int(numSizesRaw)%5
		a := NewAllocator(disk.NewDefault())
		b := NewBuddySystem(a, 16, numSizes)
		type allocation struct{ e Extent }
		var live []allocation
		for _, op := range ops {
			if op%2 == 0 || len(live) == 0 {
				n := 1 + int(op/2)%16
				e := b.Alloc(n)
				if e.Pages < n {
					return false
				}
				live = append(live, allocation{e})
			} else {
				i := int(op/2) % len(live)
				b.Free(live[i].e)
				live = append(live[:i], live[i+1:]...)
			}
			// Invariants.
			var sum int
			for i := range live {
				sum += live[i].e.Pages
				ok := false
				for _, s := range b.Sizes() {
					if live[i].e.Pages == s {
						ok = true
					}
				}
				if !ok {
					return false
				}
				for j := i + 1; j < len(live); j++ {
					ei, ej := live[i].e, live[j].e
					if ei.Start < ej.End() && ej.Start < ei.End() {
						return false // overlap
					}
				}
			}
			if b.OccupiedPages() != sum {
				return false
			}
			if b.LiveBuddies() != len(live) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSeqFileAppendReadRoundTrip(t *testing.T) {
	a := NewAllocator(disk.NewDefault())
	f := NewSequentialFile(a, 8)

	objs := [][]byte{
		bytes.Repeat([]byte{1}, 100),
		bytes.Repeat([]byte{2}, 5000), // spans pages
		bytes.Repeat([]byte{3}, 3),
		bytes.Repeat([]byte{4}, 9000), // spans 3 pages
	}
	refs := make([]Ref, len(objs))
	for i, o := range objs {
		refs[i] = f.Append(o)
	}
	f.Flush()
	for i, ref := range refs {
		got := f.ReadDirect(ref)
		if !bytes.Equal(got, objs[i]) {
			t.Fatalf("object %d: got %d bytes, first=%d", i, len(got), got[0])
		}
	}
	if f.BytesStored() != 100+5000+3+9000 {
		t.Fatalf("BytesStored = %d", f.BytesStored())
	}
}

func TestSeqFileDensePacking(t *testing.T) {
	a := NewAllocator(disk.NewDefault())
	f := NewSequentialFile(a, 64)
	// Eight 512-byte objects fit exactly in one page.
	for i := 0; i < 8; i++ {
		f.Append(make([]byte, 512))
	}
	f.Flush()
	if f.PagesUsed() != 1 {
		t.Fatalf("dense file pages = %d, want 1", f.PagesUsed())
	}
}

func TestExclusiveFilePadding(t *testing.T) {
	a := NewAllocator(disk.NewDefault())
	f := NewExclusiveFile(a, 64)
	r1 := f.Append(make([]byte, 100))
	r2 := f.Append(make([]byte, 100))
	if r1.Page == r2.Page {
		t.Fatal("exclusive objects must not share a page")
	}
	if r1.Off != 0 || r2.Off != 0 {
		t.Fatal("exclusive objects start at page boundaries")
	}
	if f.PagesUsed() != 2 {
		t.Fatalf("pages = %d, want 2", f.PagesUsed())
	}
}

func TestSeqFileChunkBoundary(t *testing.T) {
	a := NewAllocator(disk.NewDefault())
	f := NewSequentialFile(a, 2)                    // tiny chunks of 2 pages
	r1 := f.Append(make([]byte, disk.PageSize+100)) // fills chunk 1 (2 pages)
	r2 := f.Append(make([]byte, disk.PageSize+100)) // must go to a new chunk
	f.Flush()
	if r2.Page < r1.Page+2 {
		t.Fatalf("object crossed a chunk boundary: %+v then %+v", r1, r2)
	}
	if !bytes.Equal(f.ReadDirect(r1), make([]byte, disk.PageSize+100)) {
		t.Fatal("r1 content")
	}
}

func TestSeqFileReadCostIsSingleRequest(t *testing.T) {
	d := disk.NewDefault()
	a := NewAllocator(d)
	f := NewSequentialFile(a, 64)
	ref := f.Append(make([]byte, 3*disk.PageSize)) // spans 3 pages
	f.Flush()
	d.ReadRun(ref.Page+40, 1) // move head away
	before := d.Cost()
	f.ReadDirect(ref)
	diff := d.Cost().Sub(before)
	if diff.Seeks != 1 || diff.Rotations != 1 || diff.PagesRead != 3 {
		t.Fatalf("ReadDirect cost = %+v, want 1 seek, 1 rotation, 3 transfers", diff)
	}
}

func TestSeqFileReadBuffered(t *testing.T) {
	d := disk.NewDefault()
	a := NewAllocator(d)
	f := NewSequentialFile(a, 64)
	payload := bytes.Repeat([]byte{7}, 2*disk.PageSize+17)
	ref := f.Append(payload)
	f.Flush()

	m := buffer.New(d, 16)
	got := f.ReadBuffered(m, ref)
	if !bytes.Equal(got, payload) {
		t.Fatal("buffered read content mismatch")
	}
	// Second read: all pages hit, no disk cost.
	before := d.Cost()
	got = f.ReadBuffered(m, ref)
	if !bytes.Equal(got, payload) || d.Cost() != before {
		t.Fatal("second buffered read must be free")
	}
}

func TestSeqFileFlushIdempotent(t *testing.T) {
	d := disk.NewDefault()
	a := NewAllocator(d)
	f := NewSequentialFile(a, 8)
	f.Append([]byte("abc"))
	f.Flush()
	before := d.Cost()
	f.Flush()
	f.ReadDirect(Ref{Page: 0, Off: 0, Len: 3}) // triggers internal Flush too
	diff := d.Cost().Sub(before)
	if diff.PagesWritten != 0 {
		t.Fatalf("repeated flush must not rewrite: %+v", diff)
	}
}

func TestSeqFileAppendAfterFlushKeepsFilling(t *testing.T) {
	a := NewAllocator(disk.NewDefault())
	f := NewSequentialFile(a, 8)
	r1 := f.Append([]byte("aaa"))
	f.Flush()
	r2 := f.Append([]byte("bbb"))
	f.Flush()
	if r2.Page != r1.Page || r2.Off != 3 {
		t.Fatalf("append after flush must keep filling the tail page: %+v", r2)
	}
	if got := f.ReadDirect(r2); !bytes.Equal(got, []byte("bbb")) {
		t.Fatalf("r2 = %q", got)
	}
	if got := f.ReadDirect(r1); !bytes.Equal(got, []byte("aaa")) {
		t.Fatalf("r1 = %q", got)
	}
}

// Property: any sequence of appends round-trips through ReadDirect.
func TestQuickSeqFileRoundTrip(t *testing.T) {
	f := func(sizes []uint16, seed int64) bool {
		if len(sizes) == 0 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		a := NewAllocator(disk.NewDefault())
		sf := NewSequentialFile(a, 16)
		type stored struct {
			ref  Ref
			data []byte
		}
		var all []stored
		for _, s := range sizes {
			n := 1 + int(s)%10000
			data := make([]byte, n)
			rng.Read(data)
			all = append(all, stored{sf.Append(data), data})
		}
		sf.Flush()
		for _, st := range all {
			if !bytes.Equal(sf.ReadDirect(st.ref), st.data) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(9))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRefSpan(t *testing.T) {
	r := Ref{Page: 10, Off: 4000, Len: 200}
	span := r.Span()
	if span.Start != 10 || span.N != 2 {
		t.Fatalf("span = %+v, want start 10 n 2", span)
	}
	if r.NumPages() != 2 {
		t.Fatal("NumPages")
	}
	one := Ref{Page: 3, Off: 0, Len: 1}
	if one.Span().N != 1 {
		t.Fatal("single byte spans one page")
	}
}
