package pagefile

import (
	"fmt"
	"sort"

	"spatialcluster/internal/disk"
)

// This file holds the serializable images of the page-space managers. An
// image is a plain exported-field struct (gob/json-friendly) capturing
// exactly the in-memory state that cannot be rebuilt from the disk pages
// alone; store.Snapshot assembles them into a single persisted file and
// store.Restore rebuilds the managers from them. Images are deterministic:
// map-backed state is sorted before capture, so saving the same store twice
// yields identical bytes.

// AllocatorImage is the serializable state of an Allocator: its free list.
type AllocatorImage struct {
	Free []Extent
}

// Image captures the allocator's state.
func (a *Allocator) Image() AllocatorImage {
	return AllocatorImage{Free: append([]Extent(nil), a.free...)}
}

// RestoreImage replaces the allocator's state with the image's. The
// allocator must be fresh (no extents handed out yet).
func (a *Allocator) RestoreImage(img AllocatorImage) {
	a.free = append([]Extent(nil), img.Free...)
}

// SeqFileImage is the serializable state of a SequentialFile, including the
// in-memory tail page so appends can continue seamlessly after a reopen.
type SeqFileImage struct {
	ChunkPages int
	Exclusive  bool

	Cur       Extent
	NextFresh disk.PageID
	CurPage   disk.PageID
	CurBuf    []byte
	CurOff    int
	HavePage  bool
	TailDirty bool

	PagesUsed  int
	BytesTotal int64
	BytesDead  int64
}

// Image captures the file's state.
func (f *SequentialFile) Image() SeqFileImage {
	return SeqFileImage{
		ChunkPages: f.chunkPages,
		Exclusive:  f.exclusive,
		Cur:        f.cur,
		NextFresh:  f.nextFresh,
		CurPage:    f.curPage,
		CurBuf:     append([]byte(nil), f.curBuf...),
		CurOff:     f.curOff,
		HavePage:   f.havePage,
		TailDirty:  f.tailDirty,
		PagesUsed:  f.pagesUsed,
		BytesTotal: f.bytesTotal,
		BytesDead:  f.bytesDead,
	}
}

// RestoreSequentialFile rebuilds a sequential file over alloc from an image.
// The allocator must already own the image's chunk extents (it is restored
// from the same snapshot).
func RestoreSequentialFile(alloc *Allocator, img SeqFileImage) *SequentialFile {
	f := &SequentialFile{
		alloc:      alloc,
		chunkPages: img.ChunkPages,
		exclusive:  img.Exclusive,
		cur:        img.Cur,
		nextFresh:  img.NextFresh,
		curPage:    img.CurPage,
		curOff:     img.CurOff,
		havePage:   img.HavePage,
		tailDirty:  img.TailDirty,
		pagesUsed:  img.PagesUsed,
		bytesTotal: img.BytesTotal,
		bytesDead:  img.BytesDead,
	}
	if len(img.CurBuf) > 0 {
		f.curBuf = append([]byte(nil), img.CurBuf...)
	}
	return f
}

// BuddyChunkImage is one carved Smax chunk of a buddy system.
type BuddyChunkImage struct {
	Base      disk.PageID
	FreePages int
}

// BuddyBlockImage is one free block on a buddy free list.
type BuddyBlockImage struct {
	Size      int         // block size in pages
	ChunkBase disk.PageID // owning chunk
	Offset    int         // pages from chunk base
}

// BuddyLiveImage is one allocated buddy.
type BuddyLiveImage struct {
	Start disk.PageID
	Pages int
}

// BuddyImage is the serializable state of a BuddySystem.
type BuddyImage struct {
	MaxPages int
	NumSizes int
	Chunks   []BuddyChunkImage
	Free     []BuddyBlockImage
	Live     []BuddyLiveImage
}

// Image captures the buddy system's state, sorted for determinism.
func (b *BuddySystem) Image() BuddyImage {
	img := BuddyImage{MaxPages: b.maxPages, NumSizes: len(b.sizes)}
	for _, base := range b.chunkBases {
		img.Chunks = append(img.Chunks, BuddyChunkImage{
			Base: base, FreePages: b.chunks[base].freePages,
		})
	}
	for size, list := range b.freeLists {
		for _, ref := range list {
			img.Free = append(img.Free, BuddyBlockImage{
				Size: size, ChunkBase: ref.chunk.base, Offset: ref.offset,
			})
		}
	}
	sort.Slice(img.Free, func(i, j int) bool {
		a, c := img.Free[i], img.Free[j]
		if a.Size != c.Size {
			return a.Size < c.Size
		}
		if a.ChunkBase != c.ChunkBase {
			return a.ChunkBase < c.ChunkBase
		}
		return a.Offset < c.Offset
	})
	for start, size := range b.live {
		img.Live = append(img.Live, BuddyLiveImage{Start: start, Pages: size})
	}
	sort.Slice(img.Live, func(i, j int) bool { return img.Live[i].Start < img.Live[j].Start })
	return img
}

// RestoreBuddySystem rebuilds a buddy system over alloc from an image.
func RestoreBuddySystem(alloc *Allocator, img BuddyImage) (*BuddySystem, error) {
	b := NewBuddySystem(alloc, img.MaxPages, img.NumSizes)
	for _, c := range img.Chunks {
		chunk := &buddyChunk{base: c.Base, freePages: c.FreePages}
		b.chunks[c.Base] = chunk
		b.chunkBases = append(b.chunkBases, c.Base) // Chunks are sorted by base
		b.chunkCount++
	}
	for _, fr := range img.Free {
		chunk, ok := b.chunks[fr.ChunkBase]
		if !ok {
			return nil, fmt.Errorf("pagefile: buddy image references unknown chunk %d", fr.ChunkBase)
		}
		b.pushFree(fr.Size, blockRef{chunk: chunk, offset: fr.Offset})
	}
	for _, lv := range img.Live {
		b.live[lv.Start] = lv.Pages
		b.livePages += lv.Pages
	}
	return b, nil
}
