// Package snaptest is the shared snapshot-corruption table: every way a
// snapshot-v2 file can be truncated or corrupted while keeping a detectable
// signature, with the error substring each case must produce. The root
// package's persist tests drive spatialcluster.Open through it; the sdbd
// command tests drive the daemon's -load path through the same table, so
// the library and the daemon can never drift apart on what a broken
// snapshot looks like.
package snaptest

import (
	"spatialcluster/internal/snapshot"
)

// Case derives one broken snapshot from a valid one. Mutate must not modify
// its input; Want is the substring the open error must contain.
type Case struct {
	Name   string
	Mutate func(full []byte) []byte
	Want   string
}

// truncate returns a copy of full cut to keep bytes.
func truncate(keep int) func([]byte) []byte {
	return func(full []byte) []byte {
		if keep > len(full) {
			keep = len(full)
		}
		return append([]byte(nil), full[:keep]...)
	}
}

// flip returns a copy of full with one bit flipped at offset at (counted
// from the end when negative).
func flip(at int) func([]byte) []byte {
	return func(full []byte) []byte {
		out := append([]byte(nil), full...)
		i := at
		if i < 0 {
			i += len(out)
		}
		out[i] ^= 0x40
		return out
	}
}

// Truncations is the truncation table: a valid snapshot cut off at (and
// inside) every section boundary of the format — magic, length field,
// checksum, payload — must yield a descriptive error, never a panic and
// never a store. payloadLen is the size of the valid file's payload.
func Truncations(payloadLen int) []Case {
	magicEnd := len(snapshot.Magic)
	lengthEnd := magicEnd + 8
	crcEnd := lengthEnd + 4
	full := crcEnd + payloadLen
	return []Case{
		{"empty file", truncate(0), "snapshot"},
		{"mid magic", truncate(magicEnd / 2), "snapshot"},
		{"end of magic", truncate(magicEnd), "snapshot"},
		{"mid length", truncate(magicEnd + 4), "snapshot"},
		{"end of length", truncate(lengthEnd), "snapshot"},
		{"mid checksum", truncate(lengthEnd + 2), "snapshot"},
		{"end of header", truncate(crcEnd), "snapshot"},
		{"first payload byte", truncate(crcEnd + 1), "snapshot"},
		{"half the payload", truncate(crcEnd + payloadLen/2), "snapshot"},
		{"all but the last byte", truncate(full - 1), "snapshot"},
	}
}

// Corruptions is the size-preserving corruption table: bit flips anywhere in
// header or payload, a lying length field, and trailing garbage must all be
// detected descriptively.
func Corruptions(payloadLen int) []Case {
	payloadAt := snapshot.HeaderSize
	return []Case{
		{"flipped magic byte", flip(2), "not a spatialcluster snapshot"},
		{"flipped version byte", flip(len(snapshot.Magic) - 1), "not a spatialcluster snapshot"},
		{"inflated length field", flip(len(snapshot.Magic) + 2), "snapshot"},
		{"flipped checksum", flip(len(snapshot.Magic) + 9), "checksum"},
		{"flipped first payload byte", flip(payloadAt), "checksum"},
		{"flipped mid-payload byte", flip(payloadAt + payloadLen/2), "checksum"},
		{"flipped last payload byte", flip(-1), "checksum"},
		{"trailing garbage", func(full []byte) []byte {
			return append(append([]byte(nil), full...), 0xEE)
		}, "trailing"},
	}
}

// All returns both tables.
func All(payloadLen int) []Case {
	return append(Truncations(payloadLen), Corruptions(payloadLen)...)
}
