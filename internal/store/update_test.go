package store

import (
	"math/rand"
	"sync"
	"testing"

	"spatialcluster/internal/datagen"
	"spatialcluster/internal/geom"
	"spatialcluster/internal/object"
)

// liveSet is the reference state a mutation sequence is checked against.
type liveSet struct {
	objs map[object.ID]*object.Object
	mbrs map[object.ID]geom.Rect
}

func newLiveSet(ds *datagen.Dataset) *liveSet {
	ls := &liveSet{
		objs: make(map[object.ID]*object.Object, len(ds.Objects)),
		mbrs: make(map[object.ID]geom.Rect, len(ds.Objects)),
	}
	for i, o := range ds.Objects {
		ls.objs[o.ID] = o
		ls.mbrs[o.ID] = ds.MBRs[i]
	}
	return ls
}

func (ls *liveSet) window(w geom.Rect) map[object.ID]bool {
	out := map[object.ID]bool{}
	for id, o := range ls.objs {
		if ls.mbrs[id].Intersects(w) && o.Geom.IntersectsRect(w) {
			out[id] = true
		}
	}
	return out
}

// applyMix drives the same workload into an organization and the reference
// live set.
func applyMix(t *testing.T, org Organization, ls *liveSet, ops []datagen.Op) {
	t.Helper()
	for _, op := range ops {
		switch op.Kind {
		case datagen.OpInsert:
			org.Insert(op.Obj, op.Key)
			ls.objs[op.Obj.ID] = op.Obj
			ls.mbrs[op.Obj.ID] = op.Key
		case datagen.OpDelete:
			if !org.Delete(op.ID) {
				t.Fatalf("%s: delete of live object %d failed", org.Name(), op.ID)
			}
			delete(ls.objs, op.ID)
			delete(ls.mbrs, op.ID)
		case datagen.OpUpdate:
			if !org.Update(op.Obj, op.Key) {
				t.Fatalf("%s: update of live object %d failed", org.Name(), op.Obj.ID)
			}
			ls.objs[op.Obj.ID] = op.Obj
			ls.mbrs[op.Obj.ID] = op.Key
		case datagen.OpQuery:
			org.WindowQuery(op.Window, TechComplete)
		}
	}
	org.Flush()
}

func checkAgainstLiveSet(t *testing.T, org Organization, ls *liveSet, ws []geom.Rect) {
	t.Helper()
	if _, err := org.Tree().CheckInvariants(); err != nil {
		t.Fatalf("%s: tree invariants after churn: %v", org.Name(), err)
	}
	for i, w := range ws {
		res := org.WindowQuery(w, TechComplete)
		want := ls.window(w)
		if len(res.IDs) != len(want) {
			t.Fatalf("%s window %d: got %d answers, want %d", org.Name(), i, len(res.IDs), len(want))
		}
		for _, id := range res.IDs {
			if !want[id] {
				t.Fatalf("%s window %d: unexpected answer %d", org.Name(), i, id)
			}
		}
	}
	st := org.Stats()
	if st.Objects != len(ls.objs) {
		t.Fatalf("%s: stats report %d objects, want %d", org.Name(), st.Objects, len(ls.objs))
	}
}

// TestDeleteUpdateAgreeWithBruteForce churns every organization with the
// same mixed workload and checks window-query answers against a brute-force
// reference of the resulting live set.
func TestDeleteUpdateAgreeWithBruteForce(t *testing.T) {
	ds := testDataset(256)
	orgs := buildAll(t, ds, 512)
	ops := ds.MixedWorkload(datagen.MixSpec{Ops: 400, HotspotFrac: 0.5, Seed: 9})
	ws := append(ds.Windows(0.001, 15, 3), ds.Windows(0.01, 8, 4)...)
	for name, org := range orgs {
		t.Run(name, func(t *testing.T) {
			ls := newLiveSet(ds)
			applyMix(t, org, ls, ops)
			checkAgainstLiveSet(t, org, ls, ws)
		})
	}
}

// TestDeleteReturnsFalseForUnknown checks the miss paths.
func TestDeleteReturnsFalseForUnknown(t *testing.T) {
	ds := testDataset(2048)
	orgs := buildAll(t, ds, 128)
	for name, org := range orgs {
		if org.Delete(object.ID(1 << 60)) {
			t.Errorf("%s: delete of unknown object succeeded", name)
		}
		o := ds.Objects[0]
		if org.Update(object.New(object.ID(1<<60), o.Geom, 10), geom.R(0, 0, 0.1, 0.1)) {
			t.Errorf("%s: update of unknown object succeeded", name)
		}
	}
}

// TestDeletedObjectsDisappear deletes specific answers of a window and
// re-runs the query.
func TestDeletedObjectsDisappear(t *testing.T) {
	ds := testDataset(512)
	orgs := buildAll(t, ds, 256)
	w := ds.Windows(0.01, 1, 5)[0]
	for name, org := range orgs {
		before := org.WindowQuery(w, TechComplete)
		if len(before.IDs) == 0 {
			t.Fatalf("%s: empty window, pick a different seed", name)
		}
		for _, id := range before.IDs {
			if !org.Delete(id) {
				t.Fatalf("%s: delete of answer %d failed", name, id)
			}
		}
		after := org.WindowQuery(w, TechComplete)
		if len(after.IDs) != 0 {
			t.Errorf("%s: %d answers survive deletion", name, len(after.IDs))
		}
	}
}

// TestClusterUnitLifecycle walks one cluster organization through the whole
// unit life cycle — buddy growth, forced split, tombstoning, and the
// empty-unit extent free — and requires that a full delete returns all
// object storage to the allocator.
func TestClusterUnitLifecycle(t *testing.T) {
	for _, buddySizes := range []int{0, 3} {
		env := NewEnv(128)
		c := NewCluster(env, ClusterConfig{SmaxBytes: 4 * 4096, BuddySizes: buddySizes})
		rng := rand.New(rand.NewSource(4))
		var ids []object.ID
		var keys []geom.Rect
		for i := 0; i < 120; i++ {
			p := geom.Pt(rng.Float64(), rng.Float64())
			g := geom.NewPolyline([]geom.Point{p, geom.Pt(p.X+0.01, p.Y+0.01)})
			o := object.New(object.ID(i+1), g, 200+rng.Intn(600))
			c.Insert(o, o.Bounds())
			ids = append(ids, o.ID)
			keys = append(keys, o.Bounds())
		}
		c.Flush()
		if c.NumUnits() < 2 {
			t.Fatalf("buddy=%d: %d units, want a split", buddySizes, c.NumUnits())
		}

		// Tombstone a prefix and verify dead bytes show up, then delete
		// everything and verify the extents are gone.
		for _, id := range ids[:40] {
			if !c.Delete(id) {
				t.Fatalf("buddy=%d: delete %d failed", buddySizes, id)
			}
		}
		if st := c.Stats(); st.DeadBytes == 0 && st.Units == c.NumUnits() && st.Objects != 80 {
			t.Fatalf("buddy=%d: unexpected stats after partial delete: %+v", buddySizes, st)
		}
		for _, id := range ids[40:] {
			if !c.Delete(id) {
				t.Fatalf("buddy=%d: delete %d failed", buddySizes, id)
			}
		}
		st := c.Stats()
		if c.NumUnits() != 0 || st.Units != 0 {
			t.Fatalf("buddy=%d: %d units survive full delete", buddySizes, c.NumUnits())
		}
		if st.LiveBytes != 0 || st.DeadBytes != 0 || st.Objects != 0 || st.ObjectPages != 0 {
			t.Fatalf("buddy=%d: stats not empty after full delete: %+v", buddySizes, st)
		}
		// Only the tree's empty root page may remain allocated.
		if got := env.Alloc.AllocatedPages(); got != 1 {
			t.Fatalf("buddy=%d: %d pages still allocated after full delete, want 1 (empty root)", buddySizes, got)
		}
		if _, err := c.Tree().CheckInvariants(); err != nil {
			t.Fatalf("buddy=%d: %v", buddySizes, err)
		}

		// The organization stays usable: reinsert into the emptied store.
		for i, id := range ids[:10] {
			o := object.New(id, geom.NewPolyline([]geom.Point{keys[i].Center(), geom.Pt(0.5, 0.5)}), 100)
			c.Insert(o, o.Bounds())
		}
		if c.Tree().Len() != 10 {
			t.Fatalf("buddy=%d: reinsertion failed", buddySizes)
		}
	}
}

// TestClusterRepackReclaimsDeadBytes deletes enough to fragment units, then
// repacks them all and checks the dead bytes are gone and queries unchanged.
func TestClusterRepackReclaimsDeadBytes(t *testing.T) {
	ds := testDataset(256)
	env := NewEnv(256)
	c := NewCluster(env, ClusterConfig{SmaxBytes: ds.Spec.SmaxBytes(), BuddySizes: 3})
	ls := newLiveSet(ds)
	for i, o := range ds.Objects {
		c.Insert(o, ds.MBRs[i])
	}
	c.Flush()
	rng := rand.New(rand.NewSource(12))
	for _, o := range ds.Objects {
		if rng.Float64() < 0.4 {
			if !c.Delete(o.ID) {
				t.Fatalf("delete %d failed", o.ID)
			}
			delete(ls.objs, o.ID)
			delete(ls.mbrs, o.ID)
		}
	}
	if fr := c.Frag(); fr.DeadBytes == 0 {
		t.Fatal("no dead bytes after 40% deletion")
	}
	repacked := 0
	for _, uf := range c.UnitFrags() {
		if c.RepackUnit(uf.Leaf) {
			repacked++
		}
	}
	if repacked == 0 {
		t.Fatal("nothing repacked")
	}
	c.Flush()
	if fr := c.Frag(); fr.DeadBytes != 0 {
		t.Fatalf("%d dead bytes survive repack", fr.DeadBytes)
	}
	checkAgainstLiveSet(t, c, ls, ds.Windows(0.001, 15, 6))
}

// TestClusterRebuildRestoresClustering churns, rebuilds, and checks both
// correctness and that fragmentation is fully gone.
func TestClusterRebuildRestoresClustering(t *testing.T) {
	ds := testDataset(256)
	env := NewEnv(256)
	c := NewCluster(env, ClusterConfig{SmaxBytes: ds.Spec.SmaxBytes()})
	ls := newLiveSet(ds)
	for i, o := range ds.Objects {
		c.Insert(o, ds.MBRs[i])
	}
	c.Flush()
	ops := ds.MixedWorkload(datagen.MixSpec{Ops: 300, HotspotFrac: 0.7, Seed: 21})
	applyMix(t, c, ls, ops)

	allocBefore := env.Alloc.AllocatedPages()
	c.Rebuild(0)
	c.Flush()
	if fr := c.Frag(); fr.DeadBytes != 0 {
		t.Fatalf("%d dead bytes survive rebuild", fr.DeadBytes)
	}
	if got := env.Alloc.AllocatedPages(); got > allocBefore {
		t.Fatalf("rebuild grew the allocation: %d -> %d pages", allocBefore, got)
	}
	checkAgainstLiveSet(t, c, ls, ds.Windows(0.001, 15, 8))
}

// TestRebuildOnEmptyAndEmptiedStores: Rebuild must be a safe no-op on a
// fresh organization and on one whose objects were all deleted (regression:
// the surviving empty root leaf has no cluster unit and used to panic).
func TestRebuildOnEmptyAndEmptiedStores(t *testing.T) {
	ds := testDataset(2048)
	c := NewCluster(NewEnv(64), ClusterConfig{SmaxBytes: ds.Spec.SmaxBytes()})
	c.Rebuild(0) // fresh
	for i, o := range ds.Objects {
		c.Insert(o, ds.MBRs[i])
	}
	c.Flush()
	for _, o := range ds.Objects {
		if !c.Delete(o.ID) {
			t.Fatalf("delete %d failed", o.ID)
		}
	}
	c.Rebuild(0) // emptied
	if st := c.Stats(); st.Objects != 0 || st.Units != 0 {
		t.Fatalf("stats after empty rebuild: %+v", st)
	}
	// Still usable afterwards.
	o := ds.Objects[0]
	c.Insert(o, ds.MBRs[0])
	if got := c.WindowQuery(ds.MBRs[0], TechComplete); len(got.IDs) != 1 {
		t.Fatalf("insert after empty rebuild: %d answers", len(got.IDs))
	}
}

// TestMixedUpdatesDuringParallelQueries is the -race stress test of the
// update engine: one mutator applies a mixed workload through the write
// lock while RunWindowQueriesParallel hammers the organization from all
// cores. Afterwards the organization must agree with the reference state.
func TestMixedUpdatesDuringParallelQueries(t *testing.T) {
	ds := testDataset(512)
	for _, cfg := range []struct {
		name  string
		build func() Organization
	}{
		{"cluster", func() Organization {
			return NewCluster(NewEnv(192), ClusterConfig{SmaxBytes: ds.Spec.SmaxBytes(), BuddySizes: 3})
		}},
		{"secondary", func() Organization { return NewSecondary(NewEnv(192)) }},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			org := cfg.build()
			ls := newLiveSet(ds)
			for i, o := range ds.Objects {
				org.Insert(o, ds.MBRs[i])
			}
			org.Flush()
			ops := ds.MixedWorkload(datagen.MixSpec{Ops: 250, HotspotFrac: 0.5, Seed: 31})
			ws := ds.Windows(0.001, 120, 13)

			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for _, op := range ops {
					switch op.Kind {
					case datagen.OpInsert:
						org.Insert(op.Obj, op.Key)
					case datagen.OpDelete:
						org.Delete(op.ID)
					case datagen.OpUpdate:
						org.Update(op.Obj, op.Key)
					case datagen.OpQuery:
						// Mutator-side queries would race the serial read
						// path; the parallel workers below cover reads.
					}
				}
			}()
			for round := 0; round < 3; round++ {
				RunWindowQueriesParallel(org, ws, TechComplete, 4)
			}
			wg.Wait()
			org.Flush()

			// Apply the same ops to the reference (queries are no-ops).
			for _, op := range ops {
				switch op.Kind {
				case datagen.OpInsert, datagen.OpUpdate:
					ls.objs[op.Obj.ID] = op.Obj
					ls.mbrs[op.Obj.ID] = op.Key
				case datagen.OpDelete:
					delete(ls.objs, op.ID)
					delete(ls.mbrs, op.ID)
				}
			}
			checkAgainstLiveSet(t, org, ls, ws[:20])
		})
	}
}
