package store

import (
	"fmt"

	"spatialcluster/internal/disk"
	"spatialcluster/internal/object"
	"spatialcluster/internal/rtree"
)

// DecodeEntryID extracts the object ID and serialized size from a leaf entry
// of the given organization (the primary organization prefixes its payloads
// with a tag byte).
func DecodeEntryID(org Organization, e rtree.Entry) (object.ID, int) {
	if _, isPrimary := org.(*Primary); isPrimary {
		id, size := decodePayload(e.Payload[1:13])
		if e.Payload[0] == primInline {
			size = len(e.Payload) - 1
		}
		return id, size
	}
	return decodePayload(e.Payload)
}

// Demand describes the minimal I/O required to read a set of objects: the
// stable identities of the storage units that must be accessed (one seek and
// one rotational delay each, in the optimum of Figure 16) and the distinct
// pages that must be transferred.
type Demand struct {
	Units []string
	Pages []disk.PageID
}

// ObjectPageDemand reports the minimal I/O for reading the given objects of
// data page leaf from org.
func ObjectPageDemand(org Organization, leaf disk.PageID, ids []object.ID) Demand {
	switch o := org.(type) {
	case *Cluster:
		u := o.unitFor(leaf)
		return Demand{
			Units: []string{fmt.Sprintf("u%d", u.extent.Start)},
			Pages: o.requestedPages(u, ids),
		}
	case *Secondary:
		var d Demand
		seen := map[disk.PageID]bool{}
		for _, id := range ids {
			ref, ok := o.refs[id]
			if !ok {
				panic(fmt.Sprintf("store: unknown object %d", id))
			}
			// Every object is an independent access.
			d.Units = append(d.Units, fmt.Sprintf("o%d", id))
			span := ref.Span()
			for p := span.Start; p < span.End(); p++ {
				if !seen[p] {
					seen[p] = true
					d.Pages = append(d.Pages, p)
				}
			}
		}
		return d
	case *Primary:
		d := Demand{
			Units: []string{fmt.Sprintf("l%d", leaf)},
			Pages: []disk.PageID{leaf},
		}
		for _, id := range ids {
			ref, overflow := o.refs[id]
			if !overflow {
				continue // inline: comes with the leaf page
			}
			d.Units = append(d.Units, fmt.Sprintf("o%d", id))
			span := ref.Span()
			for p := span.Start; p < span.End(); p++ {
				d.Pages = append(d.Pages, p)
			}
		}
		return d
	}
	panic(fmt.Sprintf("store: unknown organization %T", org))
}
