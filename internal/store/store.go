package store

import (
	"encoding/binary"
	"fmt"
	"strings"
	"sync"

	"spatialcluster/internal/buffer"
	"spatialcluster/internal/disk"
	"spatialcluster/internal/geom"
	"spatialcluster/internal/object"
	"spatialcluster/internal/pagefile"
	"spatialcluster/internal/rtree"
)

// Technique selects how the exact objects of a qualifying cluster unit are
// read (paper sections 5.4 and 6.2). Organizations without cluster units
// ignore it.
type Technique int

// The read techniques of the evaluation.
const (
	// TechComplete transfers the whole cluster unit as soon as one of its
	// objects qualifies — the simplest technique (section 5.4).
	TechComplete Technique = iota
	// TechThreshold reads page-by-page when the overlap degree between the
	// unit region and the query window is below the geometric threshold
	// T(c), and the complete unit otherwise (section 5.4.1, [BKS93a]).
	TechThreshold
	// TechSLM reads the requested pages with the read schedule of
	// [SLM93]: gaps shorter than l = tl/tt − ½ are read through
	// (section 5.4.2). All transferred pages enter the buffer.
	TechSLM
	// TechSLMVector is TechSLM with a vector read: only requested pages
	// enter the buffer (section 6.2, Figure 15).
	TechSLMVector
	// TechPageByPage reads each requested object individually (one
	// rotational delay per object within a single seek per unit); it is
	// the fallback arm of TechThreshold and the behaviour of point
	// queries.
	TechPageByPage
)

// String implements fmt.Stringer.
func (t Technique) String() string {
	switch t {
	case TechComplete:
		return "complete"
	case TechThreshold:
		return "threshold"
	case TechSLM:
		return "SLM"
	case TechSLMVector:
		return "vector read"
	case TechPageByPage:
		return "page-by-page"
	}
	return fmt.Sprintf("Technique(%d)", int(t))
}

// TechByName parses a read technique name as used by the CLIs and the
// network API: "complete", "threshold", "SLM"/"slm", "vector", "page".
// The empty string selects TechComplete.
func TechByName(name string) (Technique, error) {
	switch strings.ToLower(name) {
	case "", "complete":
		return TechComplete, nil
	case "threshold":
		return TechThreshold, nil
	case "slm":
		return TechSLM, nil
	case "vector":
		return TechSLMVector, nil
	case "page":
		return TechPageByPage, nil
	}
	return 0, fmt.Errorf("store: unknown read technique %q (want complete, threshold, SLM, vector or page)", name)
}

// QueryResult reports a point or window query: the refined answers, the
// filter-step candidates, and the I/O cost charged while processing it.
type QueryResult struct {
	IDs            []object.ID // objects whose exact geometry qualifies
	Candidates     int         // MBR matches (filter step output)
	CandidateBytes int64       // summed serialized size of the candidates
	Cost           disk.Cost   // I/O cost of the query
}

// NearestResult reports a k-nearest-neighbor query: the (up to) k nearest
// objects by exact geometric distance in ascending order — ties broken by
// ascending object ID, so the answer list is a deterministic function of the
// stored set — plus the filter-step and I/O tallies of QueryResult.
type NearestResult struct {
	QueryResult
	// Dists[i] is the exact distance of IDs[i] to the query point.
	Dists []float64
}

// StorageStats describes the space occupied by an organization (Figure 6
// counts occupied pages; cluster units are charged at their full allocated
// size because their free space cannot serve other purposes). The
// fragmentation fields track how deletions and updates degrade that space:
// dead bytes are tombstoned object bytes that still occupy pages (cluster
// units and the secondary organization's append-only file accumulate them;
// the primary organization frees overflow pages immediately and has none).
type StorageStats struct {
	DirPages      int // R*-tree directory pages
	LeafPages     int // R*-tree data pages
	ObjectPages   int // pages holding exact objects (file or cluster units)
	OccupiedPages int // total charged pages
	Objects       int
	ObjectBytes   int64

	LiveBytes  int64   // bytes of live (queryable) objects
	DeadBytes  int64   // tombstoned bytes still occupying pages
	Units      int     // cluster units (zero for other organizations)
	ExtentUtil float64 // LiveBytes / (OccupiedPages · PageSize)
}

// fillUtil completes the derived ExtentUtil field.
func (st *StorageStats) fillUtil() {
	if st.OccupiedPages > 0 {
		st.ExtentUtil = float64(st.LiveBytes) / (float64(st.OccupiedPages) * float64(disk.PageSize))
	}
}

// ObjectFetch is a prepared object transfer: the modelled I/O has already
// been charged and the needed page bytes captured, so invoking it is pure CPU
// work (byte assembly and deserialization) that can run on any goroutine
// without touching the buffer or the disk. The parallel join's dispatcher
// prepares fetches in plane order — keeping the modelled cost deterministic,
// exactly as the paper's serialized request model demands — while a worker
// pool materializes and refines them on all cores.
type ObjectFetch func() []*object.Object

// Organization is the common interface of the three storage models.
type Organization interface {
	// Name returns the paper's name of the model ("sec. org." etc.).
	Name() string
	// Insert stores the object with the given spatial key (the key is the
	// object MBR, possibly enlarged for join version b).
	Insert(o *object.Object, key geom.Rect)
	// Delete removes the object and reclaims or tombstones its storage:
	// the primary organization frees overflow pages, the secondary
	// organization leaves dead bytes in its append-only file, and the
	// cluster organization tombstones the object inside its cluster unit,
	// returning the unit's extent to the allocator once the unit is empty.
	// It reports whether the object existed.
	Delete(id object.ID) bool
	// Update replaces the stored object of the same ID with o under the new
	// spatial key (delete + reinsert — the paper's R*-tree has no in-place
	// geometry update). It reports whether the object existed.
	Update(o *object.Object, key geom.Rect) bool
	// PointQuery returns the objects containing p (section 5.5).
	PointQuery(p geom.Point) QueryResult
	// NearestQuery returns the k objects nearest to p by exact geometric
	// distance (distance browsing, [HS95]): the R*-tree is traversed
	// best-first by MBR MinDist and candidates are refined against the
	// exact representation. Like the point query, this is a maximally
	// selective access, so the cluster organization reads the qualifying
	// objects page-by-page rather than dragging whole units (section 5.5).
	NearestQuery(p geom.Point, k int) NearestResult
	// WindowQuery returns the objects intersecting w (section 5.4).
	WindowQuery(w geom.Rect, tech Technique) QueryResult
	// FetchObjects reads the exact representations of the given objects,
	// all referenced from data page leaf, through buffer m using the given
	// technique. It is the object-transfer primitive of the spatial join.
	FetchObjects(leaf disk.PageID, ids []object.ID, m *buffer.Manager, tech Technique) []*object.Object
	// PrepareFetch charges the I/O of FetchObjects and captures the page
	// bytes, returning the deferred assembly step. FetchObjects is
	// equivalent to invoking the returned ObjectFetch immediately.
	PrepareFetch(leaf disk.PageID, ids []object.ID, m *buffer.Manager, tech Technique) ObjectFetch
	// Tree exposes the underlying R*-tree (the spatial join traverses it).
	Tree() *rtree.Tree
	// Env exposes the shared storage environment.
	Env() *Env
	// Stats reports occupied pages.
	Stats() StorageStats
	// Flush writes all buffered dirty state to disk (end of construction).
	Flush()
}

// Env bundles the shared storage substrate of one organization instance.
type Env struct {
	Disk  *disk.Disk
	Buf   *buffer.Manager
	Alloc *pagefile.Allocator
	// Parallelism is the default worker count for the parallel read paths
	// (RunWindowQueriesParallel) on this environment; 0 selects GOMAXPROCS
	// at call time. It has no effect on construction or on the paper's
	// serial figure experiments.
	Parallelism int

	// mu serializes mutations against the parallel read path. The mutating
	// Organization methods (Insert, Delete, Update, Flush) and the
	// reclusterer's repack/rebuild take the write lock;
	// RunWindowQueriesParallel takes the read lock around each query. The
	// serial query methods take no lock — single-threaded callers (the
	// paper's figure experiments) pay nothing.
	mu sync.RWMutex
}

// NewEnv creates a fresh in-memory disk with the paper's timing parameters,
// a buffer of bufPages pages, and an extent allocator.
func NewEnv(bufPages int) *Env {
	return NewEnvOn(bufPages, disk.DefaultParams(), nil)
}

// NewEnvWithParams is NewEnv with explicit disk parameters.
func NewEnvWithParams(bufPages int, p disk.Params) *Env {
	return NewEnvOn(bufPages, p, nil)
}

// NewEnvOn creates an environment whose pages live in the given backend (nil
// selects the in-memory backend). The modelled costs are identical for every
// backend; only durability and measured wall-clock I/O differ.
func NewEnvOn(bufPages int, p disk.Params, b disk.Backend) *Env {
	return NewEnvPolicy(bufPages, buffer.PolicyLRU, p, b)
}

// NewEnvPolicy is NewEnvOn with an explicit buffer replacement policy. The
// policy changes which pages stay resident — hit ratios and wall-clock — but
// never answers: every query reads the same pages either way.
func NewEnvPolicy(bufPages int, pol buffer.Policy, p disk.Params, b disk.Backend) *Env {
	d := disk.NewWithBackend(p, b)
	return &Env{
		Disk:  d,
		Buf:   buffer.NewWithPolicy(d, bufPages, pol),
		Alloc: pagefile.NewAllocator(d),
	}
}

// Params returns the disk timing parameters.
func (e *Env) Params() disk.Params { return e.Disk.Params() }

// Close releases the environment's backend (closing the backing file of a
// file-backed store). The organization must be flushed first and not used
// afterwards.
func (e *Env) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.Disk.Close()
}

// sync makes flushed pages durable on the backend. Organization.Flush calls
// it after the buffer write-back, so on a fsync-configured file backend every
// Flush is a durability barrier. Backends without real I/O make it a no-op.
func (e *Env) sync() {
	if err := e.Disk.Sync(); err != nil {
		panic(fmt.Sprintf("store: backend sync failed: %v", err))
	}
}

// leafPayloadSize is the fixed leaf payload: object ID (8) + size (4) +
// spare (2) = 14 bytes, completing the paper's 46-byte entry.
const leafPayloadSize = 14

// encodePayload packs an object reference into a fixed leaf payload.
func encodePayload(id object.ID, size int) []byte {
	p := make([]byte, leafPayloadSize)
	binary.LittleEndian.PutUint64(p, uint64(id))
	binary.LittleEndian.PutUint32(p[8:], uint32(size))
	return p
}

// decodePayload unpacks an object reference from a fixed leaf payload.
func decodePayload(p []byte) (object.ID, int) {
	return object.ID(binary.LittleEndian.Uint64(p)),
		int(binary.LittleEndian.Uint32(p[8:]))
}

// measure runs op and returns the disk cost it charged.
func measure(d *disk.Disk, op func()) disk.Cost {
	before := d.Cost()
	op()
	return d.Cost().Sub(before)
}
