// Package store implements the three organization models for storing large
// sets of spatial objects that the paper compares (section 3.2):
//
//   - Secondary organization: the R*-tree indexes MBRs plus pointers; the
//     exact representations live in a sequential file. Every access to an
//     exact object is an independent random read.
//   - Primary organization: the exact representations are stored inside the
//     R*-tree data pages; objects larger than one page overflow to
//     exclusively owned pages.
//   - Cluster organization (section 4, the paper's contribution): each data
//     page of a modified R*-tree references one cluster unit — a contiguous
//     extent of at most Smax bytes holding the exact objects of that page —
//     so spatially adjacent objects can be fetched with a single read
//     request. Units are allocated at fixed size or through the (restricted)
//     buddy system.
//
// All three organizations share one Organization interface and one Env — a
// modelled disk (internal/disk) on a pluggable storage backend, a sharded
// write-back buffer (internal/buffer), and an extent allocator
// (internal/pagefile) — so their construction and query costs are directly
// comparable, exactly as in the paper's evaluation. Because the backend sits
// below the cost model, an organization behaves identically on the
// in-memory backend and on a real file (internal/disk/filebackend); only
// wall-clock time and durability differ, and Organization.Flush becomes an
// fsync barrier on a fsync-configured file backend.
//
// Beyond the paper's static comparison the package carries the engine
// features grown around it: Delete/Update with per-organization space
// reclamation, window/point queries with the cluster read techniques
// (Technique), k-nearest-neighbor distance browsing (NearestQuery), the
// parallel read paths (RunWindowQueriesParallel, RunNearestQueriesParallel),
// the cluster organization's repair primitives used by internal/recluster
// (RepackUnit, Rebuild, Frag), Hilbert bulk loading, and whole-store
// persistence: Snapshot captures a built organization as a plain-data Image
// and Restore revives it on a fresh Env without a rebuild (persist.go); the
// root package wraps the pair into the single-file Save/Open API.
package store
