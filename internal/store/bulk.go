package store

import (
	"fmt"
	"sort"

	"spatialcluster/internal/geom"
	"spatialcluster/internal/object"
	"spatialcluster/internal/rtree"
)

// BulkLoadHilbert loads the objects into an empty cluster organization with
// static global clustering: the objects are sorted by the Hilbert index of
// their key centers, grouped into cluster units bounded by the data-page
// capacity and by Smax·fill bytes, and the R*-tree is packed bottom-up over
// the groups. All cluster units are written with purely sequential I/O, so
// construction approaches the disk's transfer rate — the classical "Hilbert
// packing" alternative to the paper's dynamic cluster organization. The
// resulting store answers queries and joins exactly like a dynamically
// built one.
//
// fill is the target utilization in (0,1]; 0 selects 0.9. keys[i] is the
// spatial key of objs[i] (pass the object MBRs, or enlarged ones).
func (c *Cluster) BulkLoadHilbert(objs []*object.Object, keys []geom.Rect, fill float64) {
	c.env.mu.Lock()
	defer c.env.mu.Unlock()
	c.bulkLoadHilbertLocked(objs, keys, fill)
}

func (c *Cluster) bulkLoadHilbertLocked(objs []*object.Object, keys []geom.Rect, fill float64) {
	if c.objects != 0 {
		panic("store: BulkLoadHilbert requires an empty cluster organization")
	}
	if len(objs) != len(keys) {
		panic(fmt.Sprintf("store: %d objects but %d keys", len(objs), len(keys)))
	}
	if len(objs) == 0 {
		return
	}
	if fill <= 0 || fill > 1 {
		fill = 0.9
	}

	// Hilbert order of the key centers.
	order := make([]int, len(objs))
	for i := range order {
		order[i] = i
	}
	hilbert := make([]uint64, len(objs))
	for i, k := range keys {
		hilbert[i] = geom.HilbertIndex(k.Center())
	}
	sort.SliceStable(order, func(a, b int) bool { return hilbert[order[a]] < hilbert[order[b]] })

	// Group into cluster units: at most fill·M entries and fill·Smax bytes.
	maxEntries := int(fill * float64(c.tree.MaxEntries()))
	if maxEntries < 1 {
		maxEntries = 1
	}
	maxBytes := int(fill * float64(c.cfg.SmaxBytes))
	type group struct {
		idxs  []int
		bytes int
	}
	var groups []group
	cur := group{}
	for _, idx := range order {
		size := objs[idx].Size()
		if size > c.cfg.SmaxBytes {
			panic(fmt.Sprintf("store: object %d of %d bytes exceeds Smax", objs[idx].ID, size))
		}
		if len(cur.idxs) > 0 && (len(cur.idxs) >= maxEntries || cur.bytes+size > maxBytes) {
			groups = append(groups, cur)
			cur = group{}
		}
		cur.idxs = append(cur.idxs, idx)
		cur.bytes += size
	}
	groups = append(groups, cur)

	// Pack the tree over the groups, then write one cluster unit per data
	// page with a single sequential request each.
	entryGroups := make([][]rtree.Entry, len(groups))
	for gi, g := range groups {
		entries := make([]rtree.Entry, len(g.idxs))
		for ei, idx := range g.idxs {
			entries[ei] = rtree.Entry{
				Rect:    keys[idx],
				Payload: encodePayload(objs[idx].ID, objs[idx].Size()),
			}
		}
		entryGroups[gi] = entries
	}
	leafIDs := c.tree.PackLeaves(entryGroups)

	for gi, g := range groups {
		leaf := leafIDs[gi]
		var blob []byte
		unitObjs := make([]unitObject, 0, len(g.idxs))
		for _, idx := range g.idxs {
			o := objs[idx]
			unitObjs = append(unitObjs, unitObject{id: o.ID, off: len(blob), size: o.Size()})
			blob = append(blob, object.Marshal(o)...)
			c.homes[o.ID] = leaf
			c.keys[o.ID] = keys[idx]
		}
		u := c.newUnit(len(blob))
		c.writeUnitDirect(u, blob)
		u.objects = unitObjs
		for i, uo := range unitObjs {
			u.index[uo.id] = i
		}
		c.units[leaf] = u
		c.objects += len(g.idxs)
		c.objectBytes += int64(g.bytes)
	}
	c.flushLocked()
}
