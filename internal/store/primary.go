package store

import (
	"fmt"

	"spatialcluster/internal/buffer"
	"spatialcluster/internal/disk"
	"spatialcluster/internal/geom"
	"spatialcluster/internal/object"
	"spatialcluster/internal/pagefile"
	"spatialcluster/internal/rtree"
)

// Payload tags of the primary organization's leaf entries.
const (
	primInline   byte = 1 // tag + serialized object
	primOverflow byte = 2 // tag + object ID (8) + size (4)
)

// Primary is the primary organization (paper section 3.2.2): the exact
// representations are stored in the data pages of the R*-tree itself, so
// spatial neighbourhood is preserved at the object level and one data page
// holds few objects. Objects not fitting into a data page are stored in a
// separate file where they occupy their pages exclusively, and the data page
// keeps only the approximation plus a pointer.
type Primary struct {
	env      *Env
	tree     *rtree.Tree
	overflow *pagefile.SequentialFile
	refs     map[object.ID]pagefile.Ref // overflow objects only

	objects     int
	objectBytes int64
	maxInline   int
}

// NewPrimary creates an empty primary organization on env.
func NewPrimary(env *Env) *Primary {
	p := &Primary{
		env:      env,
		tree:     rtree.New(env.Buf, env.Alloc, rtree.Config{VariableLeaf: true}),
		overflow: pagefile.NewExclusiveFile(env.Alloc, 0),
		refs:     make(map[object.ID]pagefile.Ref),
	}
	// One tagged inline entry must fit a page: header + rect + length
	// prefix + tag.
	p.maxInline = disk.PageSize - 2 - 32 - 2 - 1
	return p
}

// Name implements Organization.
func (p *Primary) Name() string { return "prim. org." }

// Tree implements Organization.
func (p *Primary) Tree() *rtree.Tree { return p.tree }

// Env implements Organization.
func (p *Primary) Env() *Env { return p.env }

// Insert implements Organization.
func (p *Primary) Insert(o *object.Object, key geom.Rect) {
	data := object.Marshal(o)
	if len(data) <= p.maxInline {
		payload := make([]byte, 1+len(data))
		payload[0] = primInline
		copy(payload[1:], data)
		p.tree.Insert(key, payload)
	} else {
		if _, dup := p.refs[o.ID]; dup {
			panic(fmt.Sprintf("store: duplicate object ID %d", o.ID))
		}
		ref := p.overflow.Append(data)
		p.refs[o.ID] = ref
		payload := make([]byte, 13)
		payload[0] = primOverflow
		copy(payload[1:], encodePayload(o.ID, o.Size())[:12])
		p.tree.Insert(key, payload)
	}
	p.objects++
	p.objectBytes += int64(o.Size())
}

// decodeEntry turns a leaf payload into the object, reading the overflow
// file through read if necessary.
func (p *Primary) decodeEntry(payload []byte, read func(ref pagefile.Ref) []byte) (*object.Object, int) {
	switch payload[0] {
	case primInline:
		o, err := object.Unmarshal(payload[1:])
		if err != nil {
			panic(fmt.Sprintf("store: corrupt inline object: %v", err))
		}
		return o, o.Size()
	case primOverflow:
		id, size := decodePayload(payload[1:13])
		ref, ok := p.refs[id]
		if !ok {
			panic(fmt.Sprintf("store: unknown overflow object %d", id))
		}
		o, err := object.Unmarshal(read(ref))
		if err != nil {
			panic(fmt.Sprintf("store: corrupt overflow object %d: %v", id, err))
		}
		return o, size
	}
	panic(fmt.Sprintf("store: unknown primary payload tag %d", payload[0]))
}

// PointQuery implements Organization.
func (p *Primary) PointQuery(pt geom.Point) QueryResult {
	var res QueryResult
	res.Cost = measure(p.env.Disk, func() {
		p.tree.SearchPoint(pt, func(e rtree.Entry) bool {
			o, size := p.decodeEntry(e.Payload, p.overflow.ReadDirect)
			res.Candidates++
			res.CandidateBytes += int64(size)
			if o.Geom.ContainsPoint(pt) {
				res.IDs = append(res.IDs, o.ID)
			}
			return true
		})
	})
	return res
}

// WindowQuery implements Organization. The technique argument is ignored:
// data pages already bundle their objects.
func (p *Primary) WindowQuery(w geom.Rect, _ Technique) QueryResult {
	var res QueryResult
	res.Cost = measure(p.env.Disk, func() {
		p.tree.Search(w, func(e rtree.Entry) bool {
			o, size := p.decodeEntry(e.Payload, p.overflow.ReadDirect)
			res.Candidates++
			res.CandidateBytes += int64(size)
			if o.Geom.IntersectsRect(w) {
				res.IDs = append(res.IDs, o.ID)
			}
			return true
		})
	})
	return res
}

// PrepareFetch implements Organization: the data page is read through the
// join buffer (it contains the inline objects); overflow objects cost extra
// reads. Overflow pages are captured now, deserialization is deferred to the
// returned assembly step.
func (p *Primary) PrepareFetch(leaf disk.PageID, ids []object.ID, m *buffer.Manager, _ Technique) ObjectFetch {
	want := make(map[object.ID]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	node := p.tree.DecodeNode(leaf, m.Get(leaf))
	type capturedEntry struct {
		payload []byte
		ref     pagefile.Ref
		pages   [][]byte // overflow page contents; nil for inline entries
	}
	captured := make([]capturedEntry, 0, len(ids))
	for _, e := range node.Entries {
		// Both payload kinds carry the object ID right after the tag
		// (inline objects serialize their ID first), so unwanted entries
		// are skipped without decoding or extra reads.
		if id, _ := decodePayload(e.Payload[1:]); !want[object.ID(id)] {
			continue
		}
		ce := capturedEntry{payload: e.Payload}
		if e.Payload[0] == primOverflow {
			id, _ := decodePayload(e.Payload[1:13])
			ref, ok := p.refs[id]
			if !ok {
				panic(fmt.Sprintf("store: unknown overflow object %d", id))
			}
			ce.ref = ref
			ce.pages = p.overflow.CaptureBuffered(m, ref)
		}
		captured = append(captured, ce)
	}
	return func() []*object.Object {
		out := make([]*object.Object, 0, len(captured))
		for _, ce := range captured {
			o, _ := p.decodeEntry(ce.payload, func(pagefile.Ref) []byte {
				return ce.ref.Assemble(ce.pages)
			})
			out = append(out, o)
		}
		return out
	}
}

// FetchObjects implements Organization.
func (p *Primary) FetchObjects(leaf disk.PageID, ids []object.ID, m *buffer.Manager, tech Technique) []*object.Object {
	return p.PrepareFetch(leaf, ids, m, tech)()
}

// Stats implements Organization.
func (p *Primary) Stats() StorageStats {
	st := StorageStats{
		DirPages:    p.tree.DirPages(),
		LeafPages:   p.tree.LeafPages(),
		ObjectPages: p.overflow.PagesUsed(),
		Objects:     p.objects,
		ObjectBytes: p.objectBytes,
	}
	st.OccupiedPages = st.DirPages + st.LeafPages + st.ObjectPages
	return st
}

// Flush implements Organization.
func (p *Primary) Flush() {
	p.overflow.Flush()
	p.tree.Flush()
}
