package store

import (
	"fmt"

	"spatialcluster/internal/buffer"
	"spatialcluster/internal/disk"
	"spatialcluster/internal/geom"
	"spatialcluster/internal/object"
	"spatialcluster/internal/pagefile"
	"spatialcluster/internal/rtree"
)

// Payload tags of the primary organization's leaf entries.
const (
	primInline   byte = 1 // tag + serialized object
	primOverflow byte = 2 // tag + object ID (8) + size (4)
)

// Primary is the primary organization (paper section 3.2.2): the exact
// representations are stored in the data pages of the R*-tree itself, so
// spatial neighbourhood is preserved at the object level and one data page
// holds few objects. Objects not fitting into a data page are stored in a
// separate file where they occupy their pages exclusively, and the data page
// keeps only the approximation plus a pointer.
type Primary struct {
	env      *Env
	tree     *rtree.Tree
	overflow *pagefile.SequentialFile
	refs     map[object.ID]pagefile.Ref // overflow objects only
	keys     map[object.ID]geom.Rect    // spatial key of each live object

	objects     int
	objectBytes int64
	maxInline   int
}

// NewPrimary creates an empty primary organization on env.
func NewPrimary(env *Env) *Primary {
	p := &Primary{
		env:      env,
		tree:     rtree.New(env.Buf, env.Alloc, rtree.Config{VariableLeaf: true}),
		overflow: pagefile.NewExclusiveFile(env.Alloc, 0),
		refs:     make(map[object.ID]pagefile.Ref),
		keys:     make(map[object.ID]geom.Rect),
	}
	p.maxInline = primaryMaxInline()
	return p
}

// primaryMaxInline is the largest serialized object a data page can hold
// inline: one tagged entry must fit a page next to the node header, the MBR
// and the variable-length prefix.
func primaryMaxInline() int { return disk.PageSize - 2 - 32 - 2 - 1 }

// Name implements Organization.
func (p *Primary) Name() string { return "prim. org." }

// Tree implements Organization.
func (p *Primary) Tree() *rtree.Tree { return p.tree }

// Env implements Organization.
func (p *Primary) Env() *Env { return p.env }

// Insert implements Organization.
func (p *Primary) Insert(o *object.Object, key geom.Rect) {
	p.env.mu.Lock()
	defer p.env.mu.Unlock()
	p.insertLocked(o, key)
}

func (p *Primary) insertLocked(o *object.Object, key geom.Rect) {
	if _, dup := p.keys[o.ID]; dup {
		panic(fmt.Sprintf("store: duplicate object ID %d", o.ID))
	}
	data := object.Marshal(o)
	if len(data) <= p.maxInline {
		payload := make([]byte, 1+len(data))
		payload[0] = primInline
		copy(payload[1:], data)
		p.tree.Insert(key, payload)
	} else {
		ref := p.overflow.Append(data)
		p.refs[o.ID] = ref
		payload := make([]byte, 13)
		payload[0] = primOverflow
		copy(payload[1:], encodePayload(o.ID, o.Size())[:12])
		p.tree.Insert(key, payload)
	}
	p.keys[o.ID] = key
	p.objects++
	p.objectBytes += int64(o.Size())
}

// Delete implements Organization. Inline objects vanish with their leaf
// entry; overflow objects additionally return their exclusively owned pages
// to the allocator — the primary organization is the only one that reclaims
// object space immediately on delete.
func (p *Primary) Delete(id object.ID) bool {
	p.env.mu.Lock()
	defer p.env.mu.Unlock()
	return p.deleteLocked(id)
}

func (p *Primary) deleteLocked(id object.ID) bool {
	key, ok := p.keys[id]
	if !ok {
		return false
	}
	size := 0
	if !p.tree.Delete(key, func(pl []byte) bool {
		// Both payload kinds carry the object ID right after the tag.
		pid, sz := decodePayload(pl[1:])
		if pid != id {
			return false
		}
		if pl[0] == primInline {
			sz = len(pl) - 1
		}
		size = sz
		return true
	}) {
		panic(fmt.Sprintf("store: object %d known but not in the tree", id))
	}
	if ref, overflow := p.refs[id]; overflow {
		span := ref.Span()
		for i := 0; i < span.N; i++ {
			p.env.Buf.Drop(span.Start + disk.PageID(i))
		}
		p.overflow.Discard(ref)
		delete(p.refs, id)
	}
	delete(p.keys, id)
	p.objects--
	p.objectBytes -= int64(size)
	return true
}

// Update implements Organization: delete plus reinsert (the new version may
// switch between inline and overflow storage).
func (p *Primary) Update(o *object.Object, key geom.Rect) bool {
	p.env.mu.Lock()
	defer p.env.mu.Unlock()
	if !p.deleteLocked(o.ID) {
		return false
	}
	p.insertLocked(o, key)
	return true
}

// decodeEntry turns a leaf payload into the object, reading the overflow
// file through read if necessary.
func (p *Primary) decodeEntry(payload []byte, read func(ref pagefile.Ref) []byte) (*object.Object, int) {
	switch payload[0] {
	case primInline:
		o, err := object.Unmarshal(payload[1:])
		if err != nil {
			panic(fmt.Sprintf("store: corrupt inline object: %v", err))
		}
		return o, o.Size()
	case primOverflow:
		id, size := decodePayload(payload[1:13])
		ref, ok := p.refs[id]
		if !ok {
			panic(fmt.Sprintf("store: unknown overflow object %d", id))
		}
		o, err := object.Unmarshal(read(ref))
		if err != nil {
			panic(fmt.Sprintf("store: corrupt overflow object %d: %v", id, err))
		}
		return o, size
	}
	panic(fmt.Sprintf("store: unknown primary payload tag %d", payload[0]))
}

// PointQuery implements Organization.
func (p *Primary) PointQuery(pt geom.Point) QueryResult {
	var res QueryResult
	res.Cost = measure(p.env.Disk, func() {
		p.tree.SearchPoint(pt, func(e rtree.Entry) bool {
			o, size := p.decodeEntry(e.Payload, p.overflow.ReadDirect)
			res.Candidates++
			res.CandidateBytes += int64(size)
			if o.Geom.ContainsPoint(pt) {
				res.IDs = append(res.IDs, o.ID)
			}
			return true
		})
	})
	return res
}

// WindowQuery implements Organization. The technique argument is ignored:
// data pages already bundle their objects.
func (p *Primary) WindowQuery(w geom.Rect, _ Technique) QueryResult {
	var res QueryResult
	res.Cost = measure(p.env.Disk, func() {
		p.tree.Search(w, func(e rtree.Entry) bool {
			o, size := p.decodeEntry(e.Payload, p.overflow.ReadDirect)
			res.Candidates++
			res.CandidateBytes += int64(size)
			if o.Geom.IntersectsRect(w) {
				res.IDs = append(res.IDs, o.ID)
			}
			return true
		})
	})
	return res
}

// PrepareFetch implements Organization: the data page is read through the
// join buffer (it contains the inline objects); overflow objects cost extra
// reads. Overflow pages are captured now, deserialization is deferred to the
// returned assembly step.
func (p *Primary) PrepareFetch(leaf disk.PageID, ids []object.ID, m *buffer.Manager, _ Technique) ObjectFetch {
	want := make(map[object.ID]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	node := p.tree.DecodeNode(leaf, m.Get(leaf))
	type capturedEntry struct {
		payload []byte
		ref     pagefile.Ref
		pages   [][]byte // overflow page contents; nil for inline entries
	}
	captured := make([]capturedEntry, 0, len(ids))
	for _, e := range node.Entries {
		// Both payload kinds carry the object ID right after the tag
		// (inline objects serialize their ID first), so unwanted entries
		// are skipped without decoding or extra reads.
		if id, _ := decodePayload(e.Payload[1:]); !want[object.ID(id)] {
			continue
		}
		ce := capturedEntry{payload: e.Payload}
		if e.Payload[0] == primOverflow {
			id, _ := decodePayload(e.Payload[1:13])
			ref, ok := p.refs[id]
			if !ok {
				panic(fmt.Sprintf("store: unknown overflow object %d", id))
			}
			ce.ref = ref
			ce.pages = p.overflow.CaptureBuffered(m, ref)
		}
		captured = append(captured, ce)
	}
	return func() []*object.Object {
		out := make([]*object.Object, 0, len(captured))
		for _, ce := range captured {
			o, _ := p.decodeEntry(ce.payload, func(pagefile.Ref) []byte {
				return ce.ref.Assemble(ce.pages)
			})
			out = append(out, o)
		}
		return out
	}
}

// FetchObjects implements Organization.
func (p *Primary) FetchObjects(leaf disk.PageID, ids []object.ID, m *buffer.Manager, tech Technique) []*object.Object {
	return p.PrepareFetch(leaf, ids, m, tech)()
}

// Stats implements Organization.
func (p *Primary) Stats() StorageStats {
	p.env.mu.RLock()
	defer p.env.mu.RUnlock()
	st := StorageStats{
		DirPages:    p.tree.DirPages(),
		LeafPages:   p.tree.LeafPages(),
		ObjectPages: p.overflow.PagesUsed(),
		Objects:     p.objects,
		ObjectBytes: p.objectBytes,
		LiveBytes:   p.objectBytes,
		DeadBytes:   p.overflow.DeadBytes(), // zero: exclusive pages are freed
	}
	st.OccupiedPages = st.DirPages + st.LeafPages + st.ObjectPages
	st.fillUtil()
	return st
}

// Flush implements Organization.
func (p *Primary) Flush() {
	p.env.mu.Lock()
	defer p.env.mu.Unlock()
	p.overflow.Flush()
	p.tree.Flush()
	p.env.sync()
}
