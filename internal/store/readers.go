package store

import (
	"fmt"

	"spatialcluster/internal/buffer"
	"spatialcluster/internal/disk"
	"spatialcluster/internal/geom"
	"spatialcluster/internal/object"
	"spatialcluster/internal/rtree"
)

// unitFor returns the cluster unit of a data page.
func (c *Cluster) unitFor(leaf disk.PageID) *clusterUnit {
	u := c.units[leaf]
	if u == nil {
		panic(fmt.Sprintf("store: data page %d has no cluster unit", leaf))
	}
	return u
}

// requestedPages returns the distinct unit pages covering the given objects,
// in ascending order.
func (c *Cluster) requestedPages(u *clusterUnit, ids []object.ID) []disk.PageID {
	seen := make(map[disk.PageID]bool)
	var out []disk.PageID
	for _, id := range ids {
		pos, ok := u.index[id]
		if !ok {
			panic(fmt.Sprintf("store: object %d not in this cluster unit", id))
		}
		for _, p := range u.pagesOf(u.objects[pos]) {
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	return out
}

// fetchPlan reads unit pages through m according to the technique and
// returns nothing; the pages end up in m. requested lists the pages the
// caller needs.
func (c *Cluster) fetchPlan(u *clusterUnit, requested []disk.PageID, m *buffer.Manager, tech Technique) {
	switch tech {
	case TechComplete:
		// Transfer the whole cluster unit with one read request.
		all := make([]disk.PageID, u.usedPages())
		for i := range all {
			all[i] = u.extent.Start + disk.PageID(i)
		}
		missing := m.Missing(all)
		if len(missing) == 0 {
			return
		}
		// One request for the full occupied extent: global clustering in
		// action. (If parts are buffered, the span still covers them; the
		// transfer of a page already in memory costs the same as reading
		// it, so the single covering run is charged.)
		run := disk.Run{Start: u.extent.Start, N: u.usedPages()}
		m.ExecutePlan([]disk.Run{run}, all, false)
	case TechSLM, TechSLMVector:
		missing := m.Missing(requested)
		if len(missing) == 0 {
			return
		}
		l := m.Disk().Params().SLMGapLength()
		runs := disk.PlanSLM(missing, l)
		m.ExecutePlan(runs, requested, tech == TechSLMVector)
	case TechPageByPage:
		missing := m.Missing(requested)
		if len(missing) == 0 {
			return
		}
		m.ExecutePlan(disk.PlanRequired(missing), requested, false)
	default:
		panic(fmt.Sprintf("store: technique %v not applicable to a cluster fetch", tech))
	}
}

// capturedObject is one object's assembly input: the contents of the unit
// pages it spans, captured while they were resident. Page data is immutable
// once buffered, so the slices stay valid even if the frames are evicted
// later — assembly can run on any goroutine.
type capturedObject struct {
	uo    unitObject
	pages [][]byte // page contents, first page = the one containing uo.off
}

// captureObject grabs the page contents spanned by one object; the unit's
// in-memory tail page (not yet flushed) takes precedence.
func (c *Cluster) captureObject(u *clusterUnit, uo unitObject, m *buffer.Manager) capturedObject {
	first := uo.off / disk.PageSize
	last := (uo.off + uo.size - 1) / disk.PageSize
	co := capturedObject{uo: uo, pages: make([][]byte, 0, last-first+1)}
	for pageIdx := first; pageIdx <= last; pageIdx++ {
		var pg []byte
		if pageIdx == u.tailIdx && u.tailBuf != nil {
			pg = u.tailBuf
		} else {
			pid := u.extent.Start + disk.PageID(pageIdx)
			var ok bool
			pg, ok = m.Touch(pid)
			if !ok {
				pg = m.Get(pid) // evicted mid-capture (buffer smaller than object)
			}
		}
		co.pages = append(co.pages, pg)
	}
	return co
}

// assemble reconstructs the object from its captured pages (pure CPU work).
func (co capturedObject) assemble() *object.Object {
	out := make([]byte, 0, co.uo.size)
	in := co.uo.off % disk.PageSize
	for _, pg := range co.pages {
		n := co.uo.size - len(out)
		if n > disk.PageSize-in {
			n = disk.PageSize - in
		}
		out = append(out, pg[in:in+n]...)
		in = 0
	}
	o, err := object.Unmarshal(out)
	if err != nil {
		panic(fmt.Sprintf("store: corrupt object %d in cluster unit: %v", co.uo.id, err))
	}
	return o
}

// PrepareFetch implements Organization for the cluster organization: it runs
// the read schedule of the selected technique (charging the modelled I/O) and
// captures the unit pages of the requested objects. The pages are pinned
// during the capture so a concurrent query's eviction pressure cannot force
// mid-capture re-reads. The TechThreshold decision needs the query window and
// therefore only arises in WindowQuery; join processing passes Complete, SLM,
// SLMVector or PageByPage.
func (c *Cluster) PrepareFetch(leaf disk.PageID, ids []object.ID, m *buffer.Manager, tech Technique) ObjectFetch {
	u := c.unitFor(leaf)
	requested := c.requestedPages(u, ids)
	if tech == TechThreshold {
		tech = TechComplete
	}
	c.fetchPlan(u, requested, m, tech)
	pinned := m.PinPages(requested)
	captured := make([]capturedObject, 0, len(ids))
	for _, id := range ids {
		captured = append(captured, c.captureObject(u, u.objects[u.index[id]], m))
	}
	m.UnpinPages(pinned)
	return func() []*object.Object {
		out := make([]*object.Object, 0, len(captured))
		for _, co := range captured {
			out = append(out, co.assemble())
		}
		return out
	}
}

// FetchObjects implements Organization for the cluster organization.
func (c *Cluster) FetchObjects(leaf disk.PageID, ids []object.ID, m *buffer.Manager, tech Technique) []*object.Object {
	return c.PrepareFetch(leaf, ids, m, tech)()
}

// thresholdFor computes the geometric threshold T(c) of section 5.4.1:
//
//	tcompl(c) = ts + tl + tt·size(c)
//	tpage     = ts + noe∅·(tl + nop∅·tt)
//	T(c)      = tcompl(c) / tpage
//
// where size(c) is the unit size in pages, noe∅ the average number of
// entries per data page and nop∅ the average number of pages occupied by an
// object.
func (c *Cluster) thresholdFor(u *clusterUnit) float64 {
	p := c.env.Params()
	noe := float64(c.objects) / float64(max(1, c.tree.LeafPages()))
	nop := float64(c.objectBytes)/float64(max(1, c.objects))/float64(disk.PageSize) + 1
	tcompl := p.SeekMS + p.LatencyMS + p.TransferMS*float64(u.usedPages())
	tpage := p.SeekMS + noe*(p.LatencyMS+nop*p.TransferMS)
	return tcompl / tpage
}

// WindowQuery implements Organization for the cluster organization,
// dispatching per qualifying data page on the selected technique.
func (c *Cluster) WindowQuery(w geom.Rect, tech Technique) QueryResult {
	var res QueryResult
	res.Cost = measure(c.env.Disk, func() {
		c.tree.SearchLeaves(w, func(lm rtree.LeafMatch) bool {
			u := c.unitFor(lm.Node.ID)
			ids := make([]object.ID, 0, len(lm.Matched))
			for _, i := range lm.Matched {
				id, size := decodePayload(lm.Node.Entries[i].Payload)
				ids = append(ids, id)
				res.Candidates++
				res.CandidateBytes += int64(size)
			}
			eff := tech
			if tech == TechThreshold {
				if lm.Rect.OverlapDegree(w) < c.thresholdFor(u) {
					eff = TechPageByPage
				} else {
					eff = TechComplete
				}
			}
			for _, o := range c.FetchObjects(lm.Node.ID, ids, c.env.Buf, eff) {
				if o.Geom.IntersectsRect(w) {
					res.IDs = append(res.IDs, o.ID)
				}
			}
			return true
		})
	})
	return res
}

// WindowQueryOptimum returns the theoretical lower bound of Figure 10: the
// measured R*-tree traversal cost plus, per qualifying cluster unit, one
// seek, one rotational delay and the minimum number of page transfers needed
// for the requested objects. No object data is actually moved.
func (c *Cluster) WindowQueryOptimum(w geom.Rect) (ms float64, res QueryResult) {
	p := c.env.Params()
	res.Cost = measure(c.env.Disk, func() {
		c.tree.SearchLeaves(w, func(lm rtree.LeafMatch) bool {
			u := c.unitFor(lm.Node.ID)
			ids := make([]object.ID, 0, len(lm.Matched))
			for _, i := range lm.Matched {
				id, size := decodePayload(lm.Node.Entries[i].Payload)
				ids = append(ids, id)
				res.Candidates++
				res.CandidateBytes += int64(size)
			}
			pages := c.requestedPages(u, ids)
			ms += p.SeekMS + p.LatencyMS + p.TransferMS*float64(len(pages))
			return true
		})
	})
	ms += res.Cost.TimeMS(p)
	return ms, res
}

// PointQuery implements Organization: selective queries read only the pages
// of the qualifying objects (one access per cluster unit), so the cluster
// organization performs like the secondary organization here (section 5.5).
func (c *Cluster) PointQuery(pt geom.Point) QueryResult {
	var res QueryResult
	res.Cost = measure(c.env.Disk, func() {
		c.tree.SearchLeaves(geom.RectFromPoint(pt), func(lm rtree.LeafMatch) bool {
			ids := make([]object.ID, 0, len(lm.Matched))
			for _, i := range lm.Matched {
				id, size := decodePayload(lm.Node.Entries[i].Payload)
				ids = append(ids, id)
				res.Candidates++
				res.CandidateBytes += int64(size)
			}
			for _, o := range c.FetchObjects(lm.Node.ID, ids, c.env.Buf, TechPageByPage) {
				if o.Geom.ContainsPoint(pt) {
					res.IDs = append(res.IDs, o.ID)
				}
			}
			return true
		})
	})
	return res
}
