package store

import (
	"fmt"
	"sort"

	"spatialcluster/internal/disk"
	"spatialcluster/internal/geom"
	"spatialcluster/internal/object"
	"spatialcluster/internal/pagefile"
	"spatialcluster/internal/rtree"
)

// ClusterConfig tunes the cluster organization.
type ClusterConfig struct {
	// SmaxBytes is the maximum cluster unit size (Table 1: 80/160/320 KB,
	// approximately 1.5·M·Sobj per section 4.2.1).
	SmaxBytes int
	// BuddySizes is the number of buddy sizes used for unit allocation:
	// 0 or 1 allocates fixed Smax extents (section 5.3); 3 is the paper's
	// restricted buddy system (section 5.3.1); larger values approach the
	// full buddy system.
	BuddySizes int
}

// unitObject locates one object inside a cluster unit.
type unitObject struct {
	id   object.ID
	off  int // byte offset within the unit
	size int
}

// clusterUnit is the storage cluster attached to one data page: a contiguous
// extent holding the exact representations of the page's objects in
// arbitrary (append) order. Internal clustering holds for each object; local
// clustering within a unit is irrelevant because the unit is the transfer
// granule (paper section 4.2).
type clusterUnit struct {
	extent    pagefile.Extent
	fromBuddy bool
	used      int // bytes appended (live + dead)
	dead      int // tombstoned bytes still inside the unit
	objects   []unitObject
	index     map[object.ID]int // position in objects; deleted ids are absent

	// The partially filled tail page is kept in memory and written when it
	// completes (or on Flush), exactly like the sequential file's tail
	// handling: appending to a cluster unit must not pay a
	// read-modify-write per object. This costs one page of memory per
	// open unit.
	tailIdx   int // page index within the extent; -1 when none
	tailBuf   []byte
	tailDirty bool
}

func (u *clusterUnit) usedPages() int {
	return (u.used + disk.PageSize - 1) / disk.PageSize
}

// pagesOf returns the disk pages the given object spans inside the unit.
func (u *clusterUnit) pagesOf(uo unitObject) []disk.PageID {
	first := uo.off / disk.PageSize
	last := (uo.off + uo.size - 1) / disk.PageSize
	out := make([]disk.PageID, 0, last-first+1)
	for p := first; p <= last; p++ {
		out = append(out, u.extent.Start+disk.PageID(p))
	}
	return out
}

// Cluster is the cluster organization (paper section 4): a modified R*-tree
// (no reinsertion on the data-page level) whose every data page references
// one cluster unit of at most Smax bytes. Window queries and joins can fetch
// all objects of a qualifying page with a single read request.
type Cluster struct {
	env   *Env
	cfg   ClusterConfig
	tree  *rtree.Tree
	buddy *pagefile.BuddySystem // nil for fixed-size units

	units   map[disk.PageID]*clusterUnit // data page -> unit
	homes   map[object.ID]disk.PageID    // object -> data page
	keys    map[object.ID]geom.Rect      // object -> spatial key
	pending *object.Object               // object being inserted

	objects     int
	objectBytes int64
}

// NewCluster creates an empty cluster organization on env.
func NewCluster(env *Env, cfg ClusterConfig) *Cluster {
	if cfg.SmaxBytes < 2*disk.PageSize {
		panic(fmt.Sprintf("store: Smax of %d bytes is below two pages", cfg.SmaxBytes))
	}
	c := &Cluster{
		env:   env,
		cfg:   cfg,
		units: make(map[disk.PageID]*clusterUnit),
		homes: make(map[object.ID]disk.PageID),
		keys:  make(map[object.ID]geom.Rect),
	}
	if cfg.BuddySizes > 1 {
		c.buddy = pagefile.NewBuddySystem(env.Alloc, c.smaxPages(), cfg.BuddySizes)
	}
	c.tree = c.newTree()
	return c
}

// treeConfig is the configuration of the modified R*-tree of section 4.2.1;
// fresh trees (newTree) and restored trees (persist.go) share it so the
// organization's hooks are always attached.
func (c *Cluster) treeConfig() rtree.Config {
	return rtree.Config{
		DisableLeafReinsert: true,
		DisableLeafCondense: true,
		OnLeafInsert:        c.onLeafInsert,
		OnLeafSplit:         c.onLeafSplit,
	}
}

// newTree creates the modified R*-tree of section 4.2.1 (also used when a
// full rebuild replaces the tree).
func (c *Cluster) newTree() *rtree.Tree {
	return rtree.New(c.env.Buf, c.env.Alloc, c.treeConfig())
}

func (c *Cluster) smaxPages() int { return c.cfg.SmaxBytes / disk.PageSize }

// Name implements Organization.
func (c *Cluster) Name() string { return "cluster org." }

// Tree implements Organization.
func (c *Cluster) Tree() *rtree.Tree { return c.tree }

// Env implements Organization.
func (c *Cluster) Env() *Env { return c.env }

// Config returns the cluster configuration.
func (c *Cluster) Config() ClusterConfig { return c.cfg }

// NumUnits returns the number of cluster units.
func (c *Cluster) NumUnits() int { return len(c.units) }

// Insert implements Organization. It follows section 4.2.2: (1) the R*-tree
// picks the data page, (2) the MBR entry is inserted there, (3) the object
// is appended to the page's cluster unit, and (4) the page and unit are
// split when the unit exceeds Smax or the page exceeds M entries. Steps 3
// and 4 run inside the tree's insertion via the OnLeafInsert/OnLeafSplit
// hooks.
func (c *Cluster) Insert(o *object.Object, key geom.Rect) {
	c.env.mu.Lock()
	defer c.env.mu.Unlock()
	c.insertLocked(o, key)
}

func (c *Cluster) insertLocked(o *object.Object, key geom.Rect) {
	if o.Size() > c.cfg.SmaxBytes {
		// The paper stores such objects in separate storage units
		// (footnote in section 4.2.2); the workloads of Table 1 do not
		// produce them.
		panic(fmt.Sprintf("store: object %d of %d bytes exceeds Smax=%d",
			o.ID, o.Size(), c.cfg.SmaxBytes))
	}
	if _, dup := c.homes[o.ID]; dup {
		panic(fmt.Sprintf("store: duplicate object ID %d", o.ID))
	}
	c.pending = o
	c.tree.Insert(key, encodePayload(o.ID, o.Size()))
	c.pending = nil
	c.keys[o.ID] = key
	c.objects++
	c.objectBytes += int64(o.Size())
}

// Delete implements Organization (section 4.2.2 run backwards): the entry
// leaves the R*-tree data page, and the object is tombstoned inside its
// cluster unit — the unit's contiguity makes in-place reclamation impossible
// without a rewrite, so the bytes stay as dead space until the reclusterer
// repacks the unit. A unit whose last object dies is freed whole: its extent
// returns to the buddy system or extent allocator, and its (now empty) data
// page leaves the tree.
func (c *Cluster) Delete(id object.ID) bool {
	c.env.mu.Lock()
	defer c.env.mu.Unlock()
	return c.deleteLocked(id)
}

func (c *Cluster) deleteLocked(id object.ID) bool {
	leaf, ok := c.homes[id]
	if !ok {
		return false
	}
	key := c.keys[id]
	if !c.tree.Delete(key, func(p []byte) bool {
		pid, _ := decodePayload(p)
		return pid == id
	}) {
		panic(fmt.Sprintf("store: object %d known but not in the tree", id))
	}
	u := c.unitFor(leaf)
	pos, ok := u.index[id]
	if !ok {
		panic(fmt.Sprintf("store: object %d not in its home unit", id))
	}
	size := u.objects[pos].size
	delete(u.index, id)
	u.dead += size
	delete(c.homes, id)
	delete(c.keys, id)
	c.objects--
	c.objectBytes -= int64(size)
	if len(u.index) == 0 {
		// The unit is all tombstones; its data page just left the tree
		// (DisableLeafCondense frees exactly the empty pages). Return the
		// extent — this is what keeps a churning cluster organization from
		// leaking disk.
		c.freeUnitExtent(u)
		delete(c.units, leaf)
	}
	return true
}

// Update implements Organization: delete plus reinsert. The new version is
// appended to the cluster unit of whatever data page the R*-tree now
// chooses; the old bytes stay tombstoned in the old unit. Under sustained
// updates this decays the clustering — the measurable effect the online
// reclusterer exists to repair.
func (c *Cluster) Update(o *object.Object, key geom.Rect) bool {
	c.env.mu.Lock()
	defer c.env.mu.Unlock()
	if !c.deleteLocked(o.ID) {
		return false
	}
	c.insertLocked(o, key)
	return true
}

// onLeafInsert appends the pending object to the data page's cluster unit
// and requests a split when the unit outgrew Smax.
func (c *Cluster) onLeafInsert(leaf disk.PageID, e rtree.Entry) bool {
	if c.pending == nil {
		panic("store: cluster leaf insert without a pending object")
	}
	id, _ := decodePayload(e.Payload)
	if id != c.pending.ID {
		panic(fmt.Sprintf("store: leaf insert for %d while inserting %d", id, c.pending.ID))
	}
	u := c.units[leaf]
	if u == nil {
		u = c.newUnit(c.pending.Size())
		c.units[leaf] = u
	}
	c.appendObject(u, leaf, c.pending)
	return u.used > c.cfg.SmaxBytes
}

// newUnit allocates a cluster unit able to hold at least need bytes. A unit
// may transiently exceed Smax (an insert lands before the split fires, and a
// split side may inherit more than Smax bytes); such extents come from the
// plain allocator and are replaced by regular units on the next split.
func (c *Cluster) newUnit(need int) *clusterUnit {
	ext, fromBuddy := c.allocUnitExtent(need)
	return &clusterUnit{extent: ext, fromBuddy: fromBuddy,
		index: make(map[object.ID]int), tailIdx: -1}
}

func (c *Cluster) allocUnitExtent(need int) (pagefile.Extent, bool) {
	pages := (need + disk.PageSize - 1) / disk.PageSize
	if pages < 1 {
		pages = 1
	}
	if c.buddy != nil {
		if pages <= c.buddy.MaxPages() {
			return c.buddy.Alloc(pages), true
		}
		return c.env.Alloc.Alloc(pages), false
	}
	if pages < c.smaxPages() {
		pages = c.smaxPages()
	}
	return c.env.Alloc.Alloc(pages), false
}

func (c *Cluster) freeUnitExtent(u *clusterUnit) {
	for i := 0; i < u.extent.Pages; i++ {
		c.env.Buf.Drop(u.extent.Start + disk.PageID(i))
	}
	if u.fromBuddy {
		c.buddy.Free(u.extent)
	} else {
		c.env.Alloc.Free(u.extent)
	}
}

// appendObject writes the object's bytes at the unit's append position,
// growing the unit's buddy if necessary (which moves the unit and is charged
// a read of the old and a write of the new extent).
func (c *Cluster) appendObject(u *clusterUnit, leaf disk.PageID, o *object.Object) {
	need := u.used + o.Size()
	if need > u.extent.Pages*disk.PageSize {
		c.growUnit(u, need)
	}
	c.writeBytes(u, u.used, object.Marshal(o))
	u.objects = append(u.objects, unitObject{id: o.ID, off: u.used, size: o.Size()})
	u.index[o.ID] = len(u.objects) - 1
	u.used = need
	c.homes[o.ID] = leaf
}

// growUnit moves the unit into a larger extent (the next buddy size, or a
// plain extent for transient over-Smax growth). The move is charged: the old
// extent is read and the content written to the new location, exactly the
// buddy-system construction overhead of section 5.3.1.
func (c *Cluster) growUnit(u *clusterUnit, need int) {
	data := c.readUnitPages(u)
	c.freeUnitExtent(u)
	u.extent, u.fromBuddy = c.allocUnitExtent(need)
	var blob []byte
	for _, pg := range data {
		blob = append(blob, pg...)
	}
	c.writeUnitDirect(u, blob[:u.used])
}

// writeUnitDirect writes a unit's whole content to its extent as one write
// request — the contiguity of cluster units makes moving or rebuilding them
// cheap (section 5.2). A trailing partial page stays in memory as the tail.
func (c *Cluster) writeUnitDirect(u *clusterUnit, blob []byte) {
	full := len(blob) / disk.PageSize
	rem := len(blob) % disk.PageSize
	if full > 0 {
		pages := make([][]byte, full)
		for i := range pages {
			pages[i] = blob[i*disk.PageSize : (i+1)*disk.PageSize]
		}
		// Evict any stale buffered copies before bypassing the buffer.
		for i := 0; i < full; i++ {
			c.env.Buf.Drop(u.extent.Start + disk.PageID(i))
		}
		c.env.Disk.WriteRun(u.extent.Start, pages)
	}
	if rem > 0 {
		tail := make([]byte, disk.PageSize)
		copy(tail, blob[full*disk.PageSize:])
		u.tailIdx, u.tailBuf, u.tailDirty = full, tail, true
		c.env.Buf.Drop(u.extent.Start + disk.PageID(full))
	} else {
		u.tailIdx, u.tailBuf, u.tailDirty = -1, nil, false
	}
	u.used = len(blob)
}

// readUnitPages returns the content of the unit's occupied pages. The whole
// extent is read with one sequential request that bypasses the buffer (a
// large scan must not evict the hot directory pages); buffered dirty copies
// and the in-memory tail page take precedence over the disk content.
func (c *Cluster) readUnitPages(u *clusterUnit) [][]byte {
	n := u.usedPages()
	if n == 0 {
		return nil
	}
	raw := c.env.Disk.ReadRun(u.extent.Start, n)
	out := make([][]byte, n)
	for i := 0; i < n; i++ {
		if i == u.tailIdx && u.tailBuf != nil {
			out[i] = clonePage(u.tailBuf)
			continue
		}
		if pg, ok := c.env.Buf.Touch(u.extent.Start + disk.PageID(i)); ok {
			out[i] = clonePage(pg)
			continue
		}
		out[i] = clonePage(raw[i])
	}
	return out
}

func clonePage(pg []byte) []byte {
	cp := make([]byte, disk.PageSize)
	copy(cp, pg)
	return cp
}

// writeBytes writes data into the unit starting at byte offset off. Appends
// accumulate in the in-memory tail page; completed pages are written through
// the shared buffer (so their cost is charged when they are evicted or
// flushed, with contiguous runs coalescing).
func (c *Cluster) writeBytes(u *clusterUnit, off int, data []byte) {
	for len(data) > 0 {
		pageIdx := off / disk.PageSize
		inPage := off % disk.PageSize
		n := disk.PageSize - inPage
		if n > len(data) {
			n = len(data)
		}
		pid := u.extent.Start + disk.PageID(pageIdx)
		var page []byte
		switch {
		case pageIdx == u.tailIdx && u.tailBuf != nil:
			page = u.tailBuf
		case inPage == 0:
			// Fresh page (appends only move forward).
			page = make([]byte, disk.PageSize)
		default:
			// Mid-page write without a tail buffer (only possible after a
			// grow cleared it): recover the page content.
			existing, ok := c.env.Buf.Touch(pid)
			if !ok {
				existing = c.env.Buf.Get(pid)
			}
			page = clonePage(existing)
		}
		copy(page[inPage:], data[:n])
		if inPage+n == disk.PageSize {
			// Page complete: hand it to the write-back buffer.
			c.env.Buf.Put(pid, page)
			if pageIdx == u.tailIdx {
				u.tailIdx, u.tailBuf, u.tailDirty = -1, nil, false
			}
		} else {
			u.tailIdx, u.tailBuf, u.tailDirty = pageIdx, page, true
		}
		data = data[n:]
		off += n
	}
}

// flushTail writes the unit's in-memory tail page through the buffer. The
// tail stays in memory for further appends (it will be rewritten when it
// completes, as a real file system would).
func (c *Cluster) flushTail(u *clusterUnit) {
	if u.tailDirty && u.tailBuf != nil {
		pid := u.extent.Start + disk.PageID(u.tailIdx)
		c.env.Buf.Put(pid, clonePage(u.tailBuf))
		u.tailDirty = false
	}
}

// onLeafSplit redistributes the objects of the split data page onto two new
// cluster units according to the tree's entry distribution, freeing the old
// unit. This is the cluster split of section 4.2.1: it copies large sets of
// objects, but reads the old unit with a single request thanks to global
// clustering.
func (c *Cluster) onLeafSplit(left, right disk.PageID, leftEntries, rightEntries []rtree.Entry) {
	old := c.units[left]
	if old == nil {
		panic(fmt.Sprintf("store: split of data page %d without a unit", left))
	}
	oldPages := c.readUnitPages(old)

	rebuild := func(leaf disk.PageID, entries []rtree.Entry) {
		var blob []byte
		var objs []unitObject
		for _, e := range entries {
			id, _ := decodePayload(e.Payload)
			pos, ok := old.index[id]
			if !ok {
				panic(fmt.Sprintf("store: split moves unknown object %d", id))
			}
			uo := old.objects[pos]
			objs = append(objs, unitObject{id: id, off: len(blob), size: uo.size})
			blob = append(blob, unitBytesAt(oldPages, uo.off, uo.size)...)
			c.homes[id] = leaf
		}
		u := c.newUnit(len(blob))
		c.writeUnitDirect(u, blob)
		u.objects = objs
		for i, uo := range objs {
			u.index[uo.id] = i
		}
		c.units[leaf] = u
	}

	// Free the old unit first so the buddy system can reuse its space for
	// the two smaller successors.
	c.freeUnitExtent(old)
	delete(c.units, left)

	rebuild(left, leftEntries)
	rebuild(right, rightEntries)
}

// Stats implements Organization. Every cluster unit is charged at its full
// allocated size: without the buddy system that is Smax per unit, with it
// the unit's buddy size (section 5.3).
func (c *Cluster) Stats() StorageStats {
	c.env.mu.RLock()
	defer c.env.mu.RUnlock()
	st := StorageStats{
		DirPages:    c.tree.DirPages(),
		LeafPages:   c.tree.LeafPages(),
		Objects:     c.objects,
		ObjectBytes: c.objectBytes,
		LiveBytes:   c.objectBytes,
		Units:       len(c.units),
	}
	for _, u := range c.units {
		st.ObjectPages += u.extent.Pages
		st.DeadBytes += int64(u.dead)
	}
	st.OccupiedPages = st.DirPages + st.LeafPages + st.ObjectPages
	st.fillUtil()
	return st
}

// Flush implements Organization: the in-memory unit tails are written
// through the buffer, then all dirty pages go to disk.
func (c *Cluster) Flush() {
	c.env.mu.Lock()
	defer c.env.mu.Unlock()
	c.flushLocked()
}

func (c *Cluster) flushLocked() {
	// Deterministic order: the tails' Put order decides buffer eviction and
	// write coalescing, and modelled costs must not depend on map iteration.
	leaves := make([]disk.PageID, 0, len(c.units))
	for leaf := range c.units {
		leaves = append(leaves, leaf)
	}
	sort.Slice(leaves, func(i, j int) bool { return leaves[i] < leaves[j] })
	for _, leaf := range leaves {
		c.flushTail(c.units[leaf])
	}
	c.tree.Flush()
	c.env.sync()
}
