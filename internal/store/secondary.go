package store

import (
	"fmt"

	"spatialcluster/internal/buffer"
	"spatialcluster/internal/disk"
	"spatialcluster/internal/geom"
	"spatialcluster/internal/object"
	"spatialcluster/internal/pagefile"
	"spatialcluster/internal/rtree"
)

// Secondary is the secondary organization (paper section 3.2.1): a regular
// R*-tree stores approximations (MBRs) and pointers, while the exact object
// representations are appended to a sequential file in insertion order. The
// SAM is a primary index for the approximations but only a secondary index
// for the objects, hence spatially adjacent objects are scattered through
// the file and every exact-object access during query processing pays an
// additional seek.
type Secondary struct {
	env  *Env
	tree *rtree.Tree
	file *pagefile.SequentialFile
	refs map[object.ID]pagefile.Ref
	keys map[object.ID]geom.Rect // spatial key of each live object

	objects     int
	objectBytes int64
}

// NewSecondary creates an empty secondary organization on env.
func NewSecondary(env *Env) *Secondary {
	return &Secondary{
		env:  env,
		tree: rtree.New(env.Buf, env.Alloc, rtree.Config{}),
		file: pagefile.NewSequentialFile(env.Alloc, 0),
		refs: make(map[object.ID]pagefile.Ref),
		keys: make(map[object.ID]geom.Rect),
	}
}

// Name implements Organization.
func (s *Secondary) Name() string { return "sec. org." }

// Tree implements Organization.
func (s *Secondary) Tree() *rtree.Tree { return s.tree }

// Env implements Organization.
func (s *Secondary) Env() *Env { return s.env }

// Insert implements Organization.
func (s *Secondary) Insert(o *object.Object, key geom.Rect) {
	s.env.mu.Lock()
	defer s.env.mu.Unlock()
	s.insertLocked(o, key)
}

func (s *Secondary) insertLocked(o *object.Object, key geom.Rect) {
	if _, dup := s.refs[o.ID]; dup {
		panic(fmt.Sprintf("store: duplicate object ID %d", o.ID))
	}
	ref := s.file.Append(object.Marshal(o))
	s.refs[o.ID] = ref
	s.keys[o.ID] = key
	s.tree.Insert(key, encodePayload(o.ID, o.Size()))
	s.objects++
	s.objectBytes += int64(o.Size())
}

// Delete implements Organization: the R*-tree entry is removed, and the
// object's bytes become dead space in the append-only sequential file — the
// secondary organization cannot reclaim them without compaction, exactly the
// storage decay the paper's organization comparison predicts under churn.
func (s *Secondary) Delete(id object.ID) bool {
	s.env.mu.Lock()
	defer s.env.mu.Unlock()
	return s.deleteLocked(id)
}

func (s *Secondary) deleteLocked(id object.ID) bool {
	key, ok := s.keys[id]
	if !ok {
		return false
	}
	if !s.tree.Delete(key, func(p []byte) bool {
		pid, _ := decodePayload(p)
		return pid == id
	}) {
		panic(fmt.Sprintf("store: object %d known but not in the tree", id))
	}
	ref := s.refs[id]
	s.file.Discard(ref)
	delete(s.refs, id)
	delete(s.keys, id)
	s.objects--
	s.objectBytes -= int64(ref.Len)
	return true
}

// Update implements Organization: delete plus re-append. The new version
// lands at the file's append position, so updates scatter the storage — the
// old bytes stay dead in place.
func (s *Secondary) Update(o *object.Object, key geom.Rect) bool {
	s.env.mu.Lock()
	defer s.env.mu.Unlock()
	if !s.deleteLocked(o.ID) {
		return false
	}
	s.insertLocked(o, key)
	return true
}

// readObjectDirect fetches one exact representation with an independent
// random read (the secondary organization's access pattern in queries).
func (s *Secondary) readObjectDirect(id object.ID) *object.Object {
	ref, ok := s.refs[id]
	if !ok {
		panic(fmt.Sprintf("store: unknown object %d", id))
	}
	o, err := object.Unmarshal(s.file.ReadDirect(ref))
	if err != nil {
		panic(fmt.Sprintf("store: corrupt object %d: %v", id, err))
	}
	return o
}

// PointQuery implements Organization.
func (s *Secondary) PointQuery(p geom.Point) QueryResult {
	var res QueryResult
	res.Cost = measure(s.env.Disk, func() {
		s.tree.SearchPoint(p, func(e rtree.Entry) bool {
			id, size := decodePayload(e.Payload)
			res.Candidates++
			res.CandidateBytes += int64(size)
			if o := s.readObjectDirect(id); o.Geom.ContainsPoint(p) {
				res.IDs = append(res.IDs, id)
			}
			return true
		})
	})
	return res
}

// WindowQuery implements Organization. The technique argument is ignored:
// the secondary organization can only read objects one by one.
func (s *Secondary) WindowQuery(w geom.Rect, _ Technique) QueryResult {
	var res QueryResult
	res.Cost = measure(s.env.Disk, func() {
		s.tree.Search(w, func(e rtree.Entry) bool {
			id, size := decodePayload(e.Payload)
			res.Candidates++
			res.CandidateBytes += int64(size)
			if o := s.readObjectDirect(id); o.Geom.IntersectsRect(w) {
				res.IDs = append(res.IDs, id)
			}
			return true
		})
	})
	return res
}

// PrepareFetch implements Organization: every object is an independent read
// through the join buffer (buffered pages hit for free); the captured page
// bytes are deserialized by the returned assembly step.
func (s *Secondary) PrepareFetch(_ disk.PageID, ids []object.ID, m *buffer.Manager, _ Technique) ObjectFetch {
	refs := make([]pagefile.Ref, 0, len(ids))
	pages := make([][][]byte, 0, len(ids))
	for _, id := range ids {
		ref, ok := s.refs[id]
		if !ok {
			panic(fmt.Sprintf("store: unknown object %d", id))
		}
		refs = append(refs, ref)
		pages = append(pages, s.file.CaptureBuffered(m, ref))
	}
	fetchIDs := ids
	return func() []*object.Object {
		out := make([]*object.Object, 0, len(refs))
		for i, ref := range refs {
			o, err := object.Unmarshal(ref.Assemble(pages[i]))
			if err != nil {
				panic(fmt.Sprintf("store: corrupt object %d: %v", fetchIDs[i], err))
			}
			out = append(out, o)
		}
		return out
	}
}

// FetchObjects implements Organization.
func (s *Secondary) FetchObjects(leaf disk.PageID, ids []object.ID, m *buffer.Manager, tech Technique) []*object.Object {
	return s.PrepareFetch(leaf, ids, m, tech)()
}

// Stats implements Organization.
func (s *Secondary) Stats() StorageStats {
	s.env.mu.RLock()
	defer s.env.mu.RUnlock()
	st := StorageStats{
		DirPages:    s.tree.DirPages(),
		LeafPages:   s.tree.LeafPages(),
		ObjectPages: s.file.PagesUsed(),
		Objects:     s.objects,
		ObjectBytes: s.objectBytes,
		LiveBytes:   s.objectBytes,
		DeadBytes:   s.file.DeadBytes(),
	}
	st.OccupiedPages = st.DirPages + st.LeafPages + st.ObjectPages
	st.fillUtil()
	return st
}

// Flush implements Organization.
func (s *Secondary) Flush() {
	s.env.mu.Lock()
	defer s.env.mu.Unlock()
	s.file.Flush()
	s.tree.Flush()
	s.env.sync()
}
