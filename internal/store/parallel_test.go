package store

import (
	"sort"
	"testing"

	"spatialcluster/internal/datagen"
	"spatialcluster/internal/disk"
)

// buildClusterForQueries constructs a flushed cluster organization over a
// small series-A dataset.
func buildClusterForQueries(t *testing.T, bufPages int) (*Cluster, *datagen.Dataset) {
	t.Helper()
	ds := datagen.Generate(datagen.Spec{
		Map: datagen.Map1, Series: datagen.SeriesA, Scale: 256, Seed: 9,
	})
	env := NewEnv(bufPages)
	c := NewCluster(env, ClusterConfig{SmaxBytes: ds.Spec.SmaxBytes()})
	for i, o := range ds.Objects {
		c.Insert(o, ds.MBRs[i])
	}
	c.Flush()
	env.Buf.Clear()
	env.Disk.ResetCost()
	return c, ds
}

// TestParallelWindowQueriesMatchSerial: the concurrent engine must return
// exactly the aggregate answers of a serial run — concurrency must never
// change what a query sees.
func TestParallelWindowQueriesMatchSerial(t *testing.T) {
	c, ds := buildClusterForQueries(t, 256)
	ws := ds.Windows(0.005, 48, 3)

	var serialAnswers, serialCands int
	var ids []int64
	for _, w := range ws {
		res := c.WindowQuery(w, TechSLM)
		serialAnswers += len(res.IDs)
		serialCands += res.Candidates
		for _, id := range res.IDs {
			ids = append(ids, int64(id))
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	for _, workers := range []int{1, 2, 4, 8} {
		c.Env().Buf.Retain(c.Tree().IsDirPage)
		tr := RunWindowQueriesParallel(c, ws, TechSLM, workers)
		if tr.Answers != serialAnswers || tr.Candidates != serialCands {
			t.Fatalf("workers=%d: answers/cands %d/%d, want %d/%d",
				workers, tr.Answers, tr.Candidates, serialAnswers, serialCands)
		}
		if tr.Queries != len(ws) || tr.Workers > workers {
			t.Fatalf("workers=%d: reported %d queries on %d workers", workers, tr.Queries, tr.Workers)
		}
		if tr.Cost.PagesRead == 0 {
			t.Fatalf("workers=%d: no I/O charged after cooling the object pages", workers)
		}
	}
}

// TestParallelQueriesEmptyBatch: an empty query slice must return a zeroed
// ThroughputResult without spawning the worker pool (the workers > len clamp
// is unreachable for zero queries, so the old code launched the full pool
// and reported it in Workers).
func TestParallelQueriesEmptyBatch(t *testing.T) {
	c, _ := buildClusterForQueries(t, 64)
	before := c.Env().Disk.Cost()
	tr := RunWindowQueriesParallel(c, nil, TechSLM, 8)
	if tr != (ThroughputResult{}) {
		t.Fatalf("empty window batch: got %+v, want zeroed result", tr)
	}
	nr := RunNearestQueriesParallel(c, nil, 10, 8)
	if nr != (ThroughputResult{}) {
		t.Fatalf("empty k-NN batch: got %+v, want zeroed result", nr)
	}
	if cost := c.Env().Disk.Cost().Sub(before); cost != (disk.Cost{}) {
		t.Fatalf("empty batches charged I/O: %v", cost)
	}
}

// TestParallelNearestQueriesMatchSerial: the concurrent k-NN engine must
// aggregate exactly the serial answers for every worker count.
func TestParallelNearestQueriesMatchSerial(t *testing.T) {
	c, ds := buildClusterForQueries(t, 256)
	pts := ds.Points(32, 13)
	const k = 10

	var serialAnswers, serialCands int
	for _, pt := range pts {
		res := c.NearestQuery(pt, k)
		serialAnswers += len(res.IDs)
		serialCands += res.Candidates
	}

	for _, workers := range []int{1, 2, 4, 8} {
		c.Env().Buf.Retain(c.Tree().IsDirPage)
		tr := RunNearestQueriesParallel(c, pts, k, workers)
		if tr.Answers != serialAnswers || tr.Candidates != serialCands {
			t.Fatalf("workers=%d: answers/cands %d/%d, want %d/%d",
				workers, tr.Answers, tr.Candidates, serialAnswers, serialCands)
		}
		if tr.Queries != len(pts) || tr.Workers > workers {
			t.Fatalf("workers=%d: reported %d queries on %d workers", workers, tr.Queries, tr.Workers)
		}
		if tr.Cost.PagesRead == 0 {
			t.Fatalf("workers=%d: no I/O charged after cooling the object pages", workers)
		}
	}
}

// TestParallelWindowQueriesDefaultWorkers exercises the Parallelism knob on
// the environment (workers <= 0 falls back to Env.Parallelism).
func TestParallelWindowQueriesDefaultWorkers(t *testing.T) {
	c, ds := buildClusterForQueries(t, 256)
	c.Env().Parallelism = 3
	ws := ds.Windows(0.005, 9, 4)
	tr := RunWindowQueriesParallel(c, ws, TechComplete, 0)
	if tr.Workers != 3 {
		t.Fatalf("workers = %d, want Env.Parallelism = 3", tr.Workers)
	}
	if tr.QueriesSec <= 0 {
		t.Fatalf("queries/sec = %g", tr.QueriesSec)
	}
}
