package store

import (
	"runtime"
	"sync"
	"testing"

	"spatialcluster/internal/datagen"
	"spatialcluster/internal/geom"
	"spatialcluster/internal/object"
)

// batchWorkerCounts are the pool sizes of the contention suite: one worker,
// a small pool, and whatever the host offers.
func batchWorkerCounts() []int {
	counts := []int{1, 4}
	if g := runtime.GOMAXPROCS(0); g != 1 && g != 4 {
		counts = append(counts, g)
	}
	return counts
}

// TestBatchEntryPointsMatchSerial pins the server's batched entry points
// (RunWindowQueryBatch, RunPointQueryBatch, RunNearestQueryBatch) against
// the serial query methods on a quiescent store: per-query results must be
// identical in content (and, for k-NN, rank order) for every organization
// and worker count.
func TestBatchEntryPointsMatchSerial(t *testing.T) {
	ds := datagen.Generate(datagen.Spec{
		Map: datagen.Map1, Series: datagen.SeriesA, Scale: 512, Seed: 21,
	})
	ws := append(ds.Windows(0.001, 10, 1), ds.Windows(0.01, 5, 2)...)
	pts := ds.Points(12, 3)
	ks := make([]int, len(pts))
	for i := range ks {
		ks[i] = 1 + (i%3)*9 // k ∈ {1, 10, 19}: batches may mix k
	}

	for _, kind := range []string{"secondary", "primary", "cluster"} {
		org := buildOrg(t, kind, ds, 256)
		wantW := make([][]object.ID, len(ws))
		wantWC := make([]int, len(ws))
		for i, w := range ws {
			r := org.WindowQuery(w, TechComplete)
			wantW[i], wantWC[i] = sortedIDs(r.IDs), r.Candidates
		}
		wantP := make([][]object.ID, len(pts))
		wantKNN := make([][]object.ID, len(pts))
		for i, pt := range pts {
			wantP[i] = sortedIDs(org.PointQuery(pt).IDs)
			wantKNN[i] = org.NearestQuery(pt, ks[i]).IDs
		}

		for _, workers := range batchWorkerCounts() {
			for i, r := range RunWindowQueryBatch(org, ws, TechComplete, workers) {
				if !idsEqual(sortedIDs(r.IDs), wantW[i]) {
					t.Fatalf("%s workers=%d: window %d batch answers differ", kind, workers, i)
				}
				if r.Candidates != wantWC[i] {
					t.Fatalf("%s workers=%d: window %d candidates %d, serial %d",
						kind, workers, i, r.Candidates, wantWC[i])
				}
			}
			for i, r := range RunPointQueryBatch(org, pts, workers) {
				if !idsEqual(sortedIDs(r.IDs), wantP[i]) {
					t.Fatalf("%s workers=%d: point %d batch answers differ", kind, workers, i)
				}
			}
			for i, r := range RunNearestQueryBatch(org, pts, ks, workers) {
				if !idsEqual(r.IDs, wantKNN[i]) { // ordered: rank by rank
					t.Fatalf("%s workers=%d: %d-NN %d batch answers differ",
						kind, workers, ks[i], i)
				}
			}
		}
	}
}

// TestBatchEntryPointsUnderContention exercises the batched entry points
// while a mutator churns the same store — the server's steady state. During
// the contended phase only invariants are checked (the race detector does
// the heavy lifting); after quiescing, the batched results at every worker
// count must again equal a fresh serial pass.
func TestBatchEntryPointsUnderContention(t *testing.T) {
	ds := datagen.Generate(datagen.Spec{
		Map: datagen.Map1, Series: datagen.SeriesA, Scale: 512, Seed: 23,
	})
	ws := ds.Windows(0.002, 8, 4)
	pts := ds.Points(8, 5)
	ks := []int{5, 5, 5, 5, 5, 5, 5, 5}

	for _, kind := range []string{"secondary", "primary", "cluster"} {
		for _, workers := range batchWorkerCounts() {
			org := buildOrg(t, kind, ds, 256)
			ops := ds.MixedWorkload(datagen.MixSpec{Ops: 400, HotspotFrac: 0.5, Seed: 24})

			var wg sync.WaitGroup
			stop := make(chan struct{})
			// Mutator: the deterministic churn stream, then flush.
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer close(stop)
				for _, op := range ops {
					switch op.Kind {
					case datagen.OpInsert:
						org.Insert(op.Obj, op.Key)
					case datagen.OpDelete:
						org.Delete(op.ID)
					case datagen.OpUpdate:
						org.Update(op.Obj, op.Key)
					case datagen.OpQuery:
						// The mutator's embedded queries run through the
						// batched entry point too (read/write interleaving).
						RunWindowQueryBatch(org, []geom.Rect{op.Window}, TechComplete, 1)
					}
				}
				org.Flush()
			}()
			// Readers: hammer all three batched entry points until the
			// mutator finishes. Results vary with interleaving; k-NN rank
			// ordering and answer-count sanity must hold throughout.
			for r := 0; r < 2; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						for _, qr := range RunWindowQueryBatch(org, ws, TechComplete, workers) {
							if len(qr.IDs) > qr.Candidates {
								t.Errorf("window answers %d exceed candidates %d", len(qr.IDs), qr.Candidates)
								return
							}
						}
						RunPointQueryBatch(org, pts, workers)
						for i, nr := range RunNearestQueryBatch(org, pts, ks, workers) {
							if len(nr.IDs) > ks[i] {
								t.Errorf("k-NN answers %d exceed k=%d", len(nr.IDs), ks[i])
								return
							}
							for j := 1; j < len(nr.Dists); j++ {
								if nr.Dists[j] < nr.Dists[j-1] {
									t.Errorf("k-NN distances out of order")
									return
								}
							}
						}
					}
				}()
			}
			wg.Wait()
			if t.Failed() {
				t.FailNow()
			}

			// Quiesced: batched == serial, per query, at this worker count.
			batchW := RunWindowQueryBatch(org, ws, TechComplete, workers)
			for i, w := range ws {
				if !idsEqual(sortedIDs(batchW[i].IDs), sortedIDs(org.WindowQuery(w, TechComplete).IDs)) {
					t.Fatalf("%s workers=%d: window %d differs after quiesce", kind, workers, i)
				}
			}
			batchN := RunNearestQueryBatch(org, pts, ks, workers)
			for i, pt := range pts {
				if !idsEqual(batchN[i].IDs, org.NearestQuery(pt, ks[i]).IDs) {
					t.Fatalf("%s workers=%d: k-NN %d differs after quiesce", kind, workers, i)
				}
			}
		}
	}
}
