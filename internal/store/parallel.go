package store

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"spatialcluster/internal/disk"
	"spatialcluster/internal/geom"
	"spatialcluster/internal/obs"
)

// ThroughputResult reports a parallel window-query run: the aggregate answer
// and I/O tallies plus the observed wall-clock throughput.
type ThroughputResult struct {
	Queries    int
	Answers    int       // summed qualifying objects over all queries
	Candidates int       // summed filter-step candidates
	Cost       disk.Cost // aggregate modelled I/O of the whole run
	Workers    int
	WallSec    float64
	QueriesSec float64 // queries per wall-clock second
}

// RunWindowQueriesParallel executes the window queries concurrently on a
// bounded worker pool sharing the organization's buffer and disk, and
// reports aggregate results and wall-clock throughput. workers <= 0 selects
// GOMAXPROCS. The organization must be flushed (construction finished): the
// read path is concurrency-safe, construction is not.
//
// Each query runs under the environment's read lock, so the update engine's
// mutations (Insert, Delete, Update, unit repacks) may run concurrently with
// this function — mutations serialize against in-flight queries and each
// query sees a consistent organization.
//
// Per-query Cost fields are not meaningful under concurrency (the modelled
// disk serializes no requests between snapshots), so only the aggregate cost
// over the whole run is reported. Answer sets are unaffected by concurrency.
func RunWindowQueriesParallel(org Organization, ws []geom.Rect, tech Technique, workers int) ThroughputResult {
	return RunWindowQueriesObserved(org, ws, tech, workers, nil)
}

// RunWindowQueriesObserved is RunWindowQueriesParallel with stage
// attribution: when st is non-nil, each worker's read-lock wait and
// under-lock execution time accumulate into it, so a benchmark can tell
// whether a flat speedup curve is lock contention or serialized work
// elsewhere. A nil st takes the unobserved fast path.
func RunWindowQueriesObserved(org Organization, ws []geom.Rect, tech Technique, workers int, st *obs.ParallelStages) ThroughputResult {
	return runQueriesParallel(org, len(ws), workers, st, func(i int) (answers, candidates int) {
		res := org.WindowQuery(ws[i], tech)
		return len(res.IDs), res.Candidates
	})
}

// RunNearestQueriesParallel executes the k-NN queries concurrently on the
// same bounded worker pool as RunWindowQueriesParallel, with the same
// guarantees: each query runs under the environment's read lock (so it is
// safe under concurrent updates), answer sets are unaffected by the worker
// count, and only the aggregate modelled cost is meaningful.
func RunNearestQueriesParallel(org Organization, pts []geom.Point, k int, workers int) ThroughputResult {
	return runQueriesParallel(org, len(pts), workers, nil, func(i int) (answers, candidates int) {
		res := org.NearestQuery(pts[i], k)
		return len(res.IDs), res.Candidates
	})
}

// RunWindowQueryBatch executes the window queries on the worker pool of
// RunWindowQueriesParallel and returns the per-query results in input order.
// This is the batched entry point of the network server: a micro-batch of
// concurrently arriving client queries executes with min(len(ws), workers)
// parallelism, each query under the environment's read lock, so the batch is
// safe under concurrent mutations and every client still gets its own
// answer. Answer sets are unaffected by the worker count; the per-query Cost
// fields are polluted by concurrent charging (workers > 1) and only their
// sum over a quiesced batch is meaningful.
func RunWindowQueryBatch(org Organization, ws []geom.Rect, tech Technique, workers int) []QueryResult {
	out := make([]QueryResult, len(ws))
	runQueriesParallel(org, len(ws), workers, nil, func(i int) (answers, candidates int) {
		out[i] = org.WindowQuery(ws[i], tech)
		return len(out[i].IDs), out[i].Candidates
	})
	return out
}

// RunPointQueryBatch is RunWindowQueryBatch for point queries.
func RunPointQueryBatch(org Organization, pts []geom.Point, workers int) []QueryResult {
	out := make([]QueryResult, len(pts))
	runQueriesParallel(org, len(pts), workers, nil, func(i int) (answers, candidates int) {
		out[i] = org.PointQuery(pts[i])
		return len(out[i].IDs), out[i].Candidates
	})
	return out
}

// RunNearestQueryBatch is RunWindowQueryBatch for k-NN queries; ks[i] is the
// neighbor count of pts[i] (a batch may mix different k).
func RunNearestQueryBatch(org Organization, pts []geom.Point, ks []int, workers int) []NearestResult {
	if len(ks) != len(pts) {
		panic("store: RunNearestQueryBatch needs one k per point")
	}
	out := make([]NearestResult, len(pts))
	runQueriesParallel(org, len(pts), workers, nil, func(i int) (answers, candidates int) {
		out[i] = org.NearestQuery(pts[i], ks[i])
		return len(out[i].IDs), out[i].Candidates
	})
	return out
}

// runQueriesParallel is the shared worker-pool driver: n queries are handed
// out by an atomic counter and each executes under the environment's read
// lock. An empty query batch returns a zeroed result without spawning the
// pool (the workers > n clamp would otherwise be skipped for n == 0 and
// launch every worker for nothing).
func runQueriesParallel(org Organization, n, workers int, st *obs.ParallelStages, query func(i int) (answers, candidates int)) ThroughputResult {
	if n == 0 {
		return ThroughputResult{}
	}
	if workers <= 0 {
		workers = org.Env().Parallelism
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	env := org.Env()
	var answers, candidates atomic.Int64
	var next atomic.Int64
	before := env.Disk.Cost()
	start := time.Now()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if st == nil {
					env.mu.RLock()
					a, c := query(i)
					env.mu.RUnlock()
					answers.Add(int64(a))
					candidates.Add(int64(c))
					continue
				}
				t0 := time.Now()
				env.mu.RLock()
				t1 := time.Now()
				a, c := query(i)
				env.mu.RUnlock()
				st.LockWaitNS.Add(t1.Sub(t0).Nanoseconds())
				st.ExecNS.Add(time.Since(t1).Nanoseconds())
				answers.Add(int64(a))
				candidates.Add(int64(c))
			}
		}()
	}
	wg.Wait()

	wall := time.Since(start).Seconds()
	out := ThroughputResult{
		Queries:    n,
		Answers:    int(answers.Load()),
		Candidates: int(candidates.Load()),
		Cost:       env.Disk.Cost().Sub(before),
		Workers:    workers,
		WallSec:    wall,
	}
	if wall > 0 {
		out.QueriesSec = float64(n) / wall
	}
	return out
}
