package store

import (
	"math/rand"
	"sort"
	"testing"

	"spatialcluster/internal/buffer"
	"spatialcluster/internal/datagen"
	"spatialcluster/internal/disk"
	"spatialcluster/internal/geom"
	"spatialcluster/internal/object"
	"spatialcluster/internal/rtree"
)

// testDataset returns a small deterministic dataset.
func testDataset(scale int) *datagen.Dataset {
	return datagen.Generate(datagen.Spec{
		Map: datagen.Map1, Series: datagen.SeriesA, Scale: scale, Seed: 42,
	})
}

// buildAll constructs all three organizations over the same dataset.
func buildAll(t *testing.T, ds *datagen.Dataset, bufPages int) map[string]Organization {
	t.Helper()
	orgs := map[string]Organization{
		"secondary": NewSecondary(NewEnv(bufPages)),
		"primary":   NewPrimary(NewEnv(bufPages)),
		"cluster":   NewCluster(NewEnv(bufPages), ClusterConfig{SmaxBytes: ds.Spec.SmaxBytes()}),
		"cluster-buddy": NewCluster(NewEnv(bufPages),
			ClusterConfig{SmaxBytes: ds.Spec.SmaxBytes(), BuddySizes: 3}),
	}
	for _, org := range orgs {
		for i, o := range ds.Objects {
			org.Insert(o, ds.MBRs[i])
		}
		org.Flush()
	}
	return orgs
}

// bruteWindow computes the reference answer of a window query.
func bruteWindow(ds *datagen.Dataset, w geom.Rect) map[object.ID]bool {
	out := map[object.ID]bool{}
	for i, o := range ds.Objects {
		if ds.MBRs[i].Intersects(w) && o.Geom.IntersectsRect(w) {
			out[o.ID] = true
		}
	}
	return out
}

// brutePoint computes the reference answer of a point query.
func brutePoint(ds *datagen.Dataset, p geom.Point) map[object.ID]bool {
	out := map[object.ID]bool{}
	for i, o := range ds.Objects {
		if ds.MBRs[i].ContainsPoint(p) && o.Geom.ContainsPoint(p) {
			out[o.ID] = true
		}
	}
	return out
}

func sameIDs(t *testing.T, label string, got []object.ID, want map[object.ID]bool) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d results, want %d", label, len(got), len(want))
	}
	for _, id := range got {
		if !want[id] {
			t.Fatalf("%s: unexpected result %d", label, id)
		}
	}
}

func TestAllOrganizationsAgreeOnWindowQueries(t *testing.T) {
	ds := testDataset(256) // ~513 objects
	orgs := buildAll(t, ds, 512)
	ws := ds.Windows(0.001, 20, 7)
	ws = append(ws, ds.Windows(0.01, 10, 8)...)
	for name, org := range orgs {
		techs := []Technique{TechComplete}
		if _, isCluster := org.(*Cluster); isCluster {
			techs = []Technique{TechComplete, TechThreshold, TechSLM, TechPageByPage}
		}
		for _, tech := range techs {
			for qi, w := range ws {
				org.Env().Buf.Clear()
				res := org.WindowQuery(w, tech)
				want := bruteWindow(ds, w)
				sameIDs(t, name+"/"+tech.String(), res.IDs, want)
				if res.Candidates < len(want) {
					t.Fatalf("%s: candidates %d < answers %d (query %d)",
						name, res.Candidates, len(want), qi)
				}
			}
		}
	}
}

func TestAllOrganizationsAgreeOnPointQueries(t *testing.T) {
	ds := testDataset(256)
	orgs := buildAll(t, ds, 512)
	pts := ds.Points(50, 9)
	for name, org := range orgs {
		for _, p := range pts {
			org.Env().Buf.Clear()
			res := org.PointQuery(p)
			sameIDs(t, name, res.IDs, brutePoint(ds, p))
		}
	}
}

func TestQueriesChargeIO(t *testing.T) {
	ds := testDataset(256)
	orgs := buildAll(t, ds, 64)
	w := datagen.DataSpace() // everything qualifies
	for name, org := range orgs {
		org.Env().Buf.Clear()
		org.Env().Disk.ResetCost()
		res := org.WindowQuery(w, TechComplete)
		if res.Cost.PagesRead == 0 {
			t.Fatalf("%s: full-space window query read no pages", name)
		}
		if res.Cost != org.Env().Disk.Cost() {
			t.Fatalf("%s: result cost %v != disk cost %v", name, res.Cost, org.Env().Disk.Cost())
		}
		if len(res.IDs) != len(ds.Objects) {
			t.Fatalf("%s: full-space query returned %d of %d", name, len(res.IDs), len(ds.Objects))
		}
	}
}

func TestClusterUnitInvariants(t *testing.T) {
	ds := testDataset(128) // ~1027 objects, forces cluster splits
	for _, buddySizes := range []int{0, 3} {
		env := NewEnv(1024)
		c := NewCluster(env, ClusterConfig{SmaxBytes: ds.Spec.SmaxBytes(), BuddySizes: buddySizes})
		for i, o := range ds.Objects {
			c.Insert(o, ds.MBRs[i])
		}
		c.Flush()

		smax := ds.Spec.SmaxBytes()
		leaves := map[disk.PageID]bool{}
		objects := 0
		c.Tree().WalkNodes(func(n *rtree.Node) bool {
			if !n.IsLeaf() {
				return true
			}
			leaves[n.ID] = true
			u := c.units[n.ID]
			if u == nil {
				t.Fatalf("leaf %d has no cluster unit", n.ID)
			}
			if u.used > smax {
				// Transient overshoot is split away immediately; after
				// construction no unit may exceed Smax.
				t.Fatalf("unit of leaf %d holds %d bytes > Smax %d", n.ID, u.used, smax)
			}
			if len(u.objects) != len(n.Entries) {
				t.Fatalf("leaf %d: %d entries but %d unit objects", n.ID, len(n.Entries), len(u.objects))
			}
			// Entry set and unit set must agree.
			for _, e := range n.Entries {
				id, size := decodePayload(e.Payload)
				pos, ok := u.index[id]
				if !ok {
					t.Fatalf("leaf %d: entry %d missing from unit", n.ID, id)
				}
				if u.objects[pos].size != size {
					t.Fatalf("object %d: entry size %d, unit size %d", id, size, u.objects[pos].size)
				}
				objects++
			}
			// Object extents within the unit must not overlap.
			sorted := append([]unitObject(nil), u.objects...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i].off < sorted[j].off })
			for i := 1; i < len(sorted); i++ {
				if sorted[i-1].off+sorted[i-1].size > sorted[i].off {
					t.Fatalf("leaf %d: overlapping objects in unit", n.ID)
				}
			}
			return true
		})
		if objects != len(ds.Objects) {
			t.Fatalf("units hold %d objects, want %d", objects, len(ds.Objects))
		}
		if len(leaves) != c.NumUnits() {
			t.Fatalf("%d leaves but %d units", len(leaves), c.NumUnits())
		}
		// homes agree with leaves.
		for id, leaf := range c.homes {
			if !leaves[leaf] {
				t.Fatalf("object %d homed at non-leaf %d", id, leaf)
			}
		}
	}
}

func TestClusterObjectsReadBackCorrectly(t *testing.T) {
	ds := testDataset(128)
	env := NewEnv(256)
	c := NewCluster(env, ClusterConfig{SmaxBytes: ds.Spec.SmaxBytes(), BuddySizes: 3})
	for i, o := range ds.Objects {
		c.Insert(o, ds.MBRs[i])
	}
	c.Flush()
	env.Buf.Clear()

	// Fetch every object through its unit and compare the geometry bytes.
	m := buffer.New(env.Disk, 4096)
	for i, o := range ds.Objects {
		leaf := c.homes[o.ID]
		got := c.FetchObjects(leaf, []object.ID{o.ID}, m, TechSLM)
		if len(got) != 1 || got[0].ID != o.ID {
			t.Fatalf("fetch of %d returned %v", o.ID, got)
		}
		if got[0].Bounds() != o.Bounds() || got[0].Size() != o.Size() {
			t.Fatalf("object %d corrupted through cluster storage", o.ID)
		}
		_ = i
	}
}

func TestClusterCompleteReadsUnitInOneRequest(t *testing.T) {
	ds := testDataset(256)
	env := NewEnv(512)
	c := NewCluster(env, ClusterConfig{SmaxBytes: ds.Spec.SmaxBytes()})
	for i, o := range ds.Objects {
		c.Insert(o, ds.MBRs[i])
	}
	c.Flush()
	env.Buf.Clear()
	env.Disk.ResetCost()

	// Pick one leaf and fetch one object with TechComplete: the whole unit
	// must arrive with a single read request.
	var leaf disk.PageID
	var anyID object.ID
	for id, l := range c.homes {
		leaf, anyID = l, id
		break
	}
	u := c.unitFor(leaf)
	m := buffer.New(env.Disk, 1024)
	before := env.Disk.Cost()
	c.FetchObjects(leaf, []object.ID{anyID}, m, TechComplete)
	diff := env.Disk.Cost().Sub(before)
	if diff.ReadRequests != 1 {
		t.Fatalf("complete fetch used %d read requests, want 1", diff.ReadRequests)
	}
	if diff.PagesRead != int64(u.usedPages()) {
		t.Fatalf("complete fetch read %d pages, unit has %d", diff.PagesRead, u.usedPages())
	}
	if diff.Seeks != 1 || diff.Rotations != 1 {
		t.Fatalf("complete fetch cost %+v", diff)
	}
}

func TestClusterPointQueryCheaperThanComplete(t *testing.T) {
	ds := testDataset(128)
	env := NewEnv(512)
	c := NewCluster(env, ClusterConfig{SmaxBytes: ds.Spec.SmaxBytes()})
	for i, o := range ds.Objects {
		c.Insert(o, ds.MBRs[i])
	}
	c.Flush()

	pts := ds.Points(30, 3)
	var pointCost, completeCost float64
	p := env.Params()
	for _, pt := range pts {
		env.Buf.Clear()
		res := c.PointQuery(pt)
		pointCost += res.Cost.TimeMS(p)
		env.Buf.Clear()
		res = c.WindowQuery(geom.RectFromPoint(pt), TechComplete)
		completeCost += res.Cost.TimeMS(p)
	}
	if pointCost > completeCost {
		t.Fatalf("point queries (%.1f ms) dearer than complete-unit reads (%.1f ms)",
			pointCost, completeCost)
	}
}

func TestThresholdBetweenPageByPageAndComplete(t *testing.T) {
	ds := testDataset(128)
	env := NewEnv(512)
	c := NewCluster(env, ClusterConfig{SmaxBytes: ds.Spec.SmaxBytes()})
	for i, o := range ds.Objects {
		c.Insert(o, ds.MBRs[i])
	}
	c.Flush()
	p := env.Params()

	total := map[Technique]float64{}
	for _, area := range []float64{0.00001, 0.01} {
		for _, w := range ds.Windows(area, 30, 5) {
			for _, tech := range []Technique{TechComplete, TechThreshold, TechPageByPage, TechSLM} {
				env.Buf.Clear()
				res := c.WindowQuery(w, tech)
				total[tech] += res.Cost.TimeMS(p)
			}
		}
	}
	// The threshold technique picks per unit between the two extremes, so
	// its total must not exceed the worse of the two by more than noise.
	worst := total[TechComplete]
	if total[TechPageByPage] > worst {
		worst = total[TechPageByPage]
	}
	if total[TechThreshold] > worst*1.05 {
		t.Fatalf("threshold %.1f ms worse than both extremes (complete %.1f, page %.1f)",
			total[TechThreshold], total[TechComplete], total[TechPageByPage])
	}
	// SLM never transfers more pages than complete and never uses more
	// requests than page-by-page; with the paper's parameters its total
	// time should not exceed either extreme materially.
	if total[TechSLM] > worst*1.05 {
		t.Fatalf("SLM %.1f ms worse than both extremes", total[TechSLM])
	}
}

func TestWindowQueryOptimumIsLowerBound(t *testing.T) {
	ds := testDataset(128)
	env := NewEnv(512)
	c := NewCluster(env, ClusterConfig{SmaxBytes: ds.Spec.SmaxBytes()})
	for i, o := range ds.Objects {
		c.Insert(o, ds.MBRs[i])
	}
	c.Flush()
	p := env.Params()
	for _, w := range ds.Windows(0.001, 20, 6) {
		env.Buf.Clear()
		opt, _ := c.WindowQueryOptimum(w)
		for _, tech := range []Technique{TechComplete, TechSLM, TechPageByPage, TechThreshold} {
			env.Buf.Clear()
			res := c.WindowQuery(w, tech)
			if got := res.Cost.TimeMS(p); got < opt-1e-6 {
				t.Fatalf("%v cost %.3f ms below optimum %.3f ms", tech, got, opt)
			}
		}
	}
}

func TestStorageStats(t *testing.T) {
	ds := testDataset(128)
	orgs := buildAll(t, ds, 1024)
	for name, org := range orgs {
		st := org.Stats()
		if st.Objects != len(ds.Objects) {
			t.Fatalf("%s: stats objects %d, want %d", name, st.Objects, len(ds.Objects))
		}
		if st.ObjectBytes != ds.TotalBytes() {
			t.Fatalf("%s: stats bytes %d, want %d", name, st.ObjectBytes, ds.TotalBytes())
		}
		if st.OccupiedPages != st.DirPages+st.LeafPages+st.ObjectPages {
			t.Fatalf("%s: inconsistent page totals %+v", name, st)
		}
		if st.OccupiedPages <= 0 {
			t.Fatalf("%s: no occupied pages", name)
		}
	}
	// Paper Figure 6: secondary has the best storage utilization; the
	// fixed-Smax cluster organization the worst. Figure 7: the restricted
	// buddy system brings the cluster organization close to the primary.
	sec := orgs["secondary"].Stats().OccupiedPages
	prim := orgs["primary"].Stats().OccupiedPages
	clus := orgs["cluster"].Stats().OccupiedPages
	buddy := orgs["cluster-buddy"].Stats().OccupiedPages
	if !(sec < prim && prim < clus) {
		t.Fatalf("utilization order wrong: sec=%d prim=%d cluster=%d", sec, prim, clus)
	}
	if !(buddy < clus) {
		t.Fatalf("buddy system did not improve utilization: %d vs %d", buddy, clus)
	}
	if float64(buddy) > 1.6*float64(prim) {
		t.Fatalf("restricted buddy (%d pages) should be near primary (%d pages)", buddy, prim)
	}
}

func TestPrimaryOverflowObjects(t *testing.T) {
	// Series C has a noticeable share of objects >1 page, which the
	// primary organization must push to the overflow file.
	ds := datagen.Generate(datagen.Spec{
		Map: datagen.Map1, Series: datagen.SeriesC, Scale: 256, Seed: 1,
	})
	env := NewEnv(1024)
	p := NewPrimary(env)
	for i, o := range ds.Objects {
		p.Insert(o, ds.MBRs[i])
	}
	p.Flush()
	if len(p.refs) == 0 {
		t.Fatal("series C produced no overflow objects")
	}
	if p.Stats().ObjectPages == 0 {
		t.Fatal("overflow file unused")
	}
	// Queries still agree with brute force.
	for _, w := range ds.Windows(0.01, 10, 2) {
		env.Buf.Clear()
		res := p.WindowQuery(w, TechComplete)
		sameIDs(t, "primary-C", res.IDs, bruteWindow(ds, w))
	}
}

func TestFetchObjectsAcrossOrganizations(t *testing.T) {
	ds := testDataset(256)
	orgs := buildAll(t, ds, 512)
	// Pick candidate leaf/object pairs via the tree.
	for name, org := range orgs {
		org.Env().Buf.Clear()
		m := buffer.New(org.Env().Disk, 512)
		fetched := 0
		org.Tree().WalkNodes(func(n *rtree.Node) bool {
			if !n.IsLeaf() || fetched >= 50 {
				return fetched < 50
			}
			var ids []object.ID
			for _, e := range n.Entries {
				var id object.ID
				if _, isPrim := org.(*Primary); isPrim {
					id, _ = decodePayload(e.Payload[1:])
				} else {
					id, _ = decodePayload(e.Payload)
				}
				ids = append(ids, id)
				if len(ids) == 3 {
					break
				}
			}
			got := org.FetchObjects(n.ID, ids, m, TechComplete)
			if len(got) != len(ids) {
				t.Fatalf("%s: fetched %d of %d", name, len(got), len(ids))
			}
			for i, o := range got {
				if o.ID != ids[i] {
					t.Fatalf("%s: fetched %d, want %d", name, o.ID, ids[i])
				}
			}
			fetched += len(ids)
			return true
		})
		if fetched == 0 {
			t.Fatalf("%s: no fetches exercised", name)
		}
	}
}

func TestInsertUnsortedIsDeterministic(t *testing.T) {
	ds := testDataset(512)
	build := func() disk.Cost {
		env := NewEnv(256)
		c := NewCluster(env, ClusterConfig{SmaxBytes: ds.Spec.SmaxBytes()})
		for i, o := range ds.Objects {
			c.Insert(o, ds.MBRs[i])
		}
		c.Flush()
		return env.Disk.Cost()
	}
	if build() != build() {
		t.Fatal("construction cost not deterministic")
	}
}

func TestDuplicateInsertPanics(t *testing.T) {
	ds := testDataset(1024)
	o := ds.Objects[0]
	for name, org := range map[string]Organization{
		"secondary": NewSecondary(NewEnv(64)),
		"cluster":   NewCluster(NewEnv(64), ClusterConfig{SmaxBytes: 81920}),
	} {
		org.Insert(o, o.Bounds())
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: duplicate insert must panic", name)
				}
			}()
			org.Insert(o, o.Bounds())
		}()
	}
}

func TestClusterRejectsOversizeObject(t *testing.T) {
	env := NewEnv(64)
	c := NewCluster(env, ClusterConfig{SmaxBytes: 2 * disk.PageSize})
	huge := object.New(1, geom.NewPolyline([]geom.Point{geom.Pt(0, 0), geom.Pt(1, 1)}), 3*disk.PageSize)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Insert(huge, huge.Bounds())
}

func TestTechniqueString(t *testing.T) {
	want := map[Technique]string{
		TechComplete: "complete", TechThreshold: "threshold", TechSLM: "SLM",
		TechSLMVector: "vector read", TechPageByPage: "page-by-page",
	}
	for tech, s := range want {
		if tech.String() != s {
			t.Errorf("%d: %q", int(tech), tech.String())
		}
	}
	if Technique(99).String() == "" {
		t.Error("unknown technique must stringify")
	}
}

var _ = rand.Int // keep math/rand imported if unused by edits
