package store

import (
	"path/filepath"
	"sort"
	"testing"

	"spatialcluster/internal/datagen"
	"spatialcluster/internal/disk"
	"spatialcluster/internal/disk/filebackend"
	"spatialcluster/internal/object"
)

// buildOrgOn is buildOrg over an explicit backend.
func buildOrgOn(t *testing.T, kind string, ds *datagen.Dataset, bufPages int, b disk.Backend) Organization {
	t.Helper()
	env := NewEnvOn(bufPages, disk.DefaultParams(), b)
	var org Organization
	switch kind {
	case "secondary":
		org = NewSecondary(env)
	case "primary":
		org = NewPrimary(env)
	case "cluster":
		org = NewCluster(env, ClusterConfig{SmaxBytes: ds.Spec.SmaxBytes()})
	case "cluster-buddy":
		org = NewCluster(env, ClusterConfig{SmaxBytes: ds.Spec.SmaxBytes(), BuddySizes: 3})
	default:
		t.Fatalf("unknown org kind %q", kind)
	}
	for i, o := range ds.Objects {
		org.Insert(o, ds.MBRs[i])
	}
	org.Flush()
	env.Buf.Clear()
	env.Disk.ResetCost()
	return org
}

// checkSameAnswers asserts that two organizations answer an identical query
// mix with identical result sets.
func checkSameAnswers(t *testing.T, phase string, a, b Organization, ds *datagen.Dataset) {
	t.Helper()
	ws := append(ds.Windows(0.001, 8, 5), ds.Windows(0.01, 4, 6)...)
	for wi, w := range ws {
		want := sortedIDs(a.WindowQuery(w, TechComplete).IDs)
		got := sortedIDs(b.WindowQuery(w, TechComplete).IDs)
		if !idsEqual(got, want) {
			t.Fatalf("%s: window %d: answers differ (%d vs %d)", phase, wi, len(got), len(want))
		}
	}
	for pi, pt := range ds.Points(8, 7) {
		if !idsEqual(sortedIDs(a.PointQuery(pt).IDs), sortedIDs(b.PointQuery(pt).IDs)) {
			t.Fatalf("%s: point %d: answers differ", phase, pi)
		}
		want := a.NearestQuery(pt, 10)
		got := b.NearestQuery(pt, 10)
		if !idsEqual(got.IDs, want.IDs) {
			t.Fatalf("%s: 10-NN %d: answers differ: %v vs %v", phase, pi, got.IDs, want.IDs)
		}
	}
}

// TestSnapshotRestoreRoundTrip checks, for every organization kind, that a
// snapshotted and restored store is indistinguishable from the original:
// same StorageStats, same answer sets, and still fully mutable (the restored
// store survives a churn stream and agrees with the original under the same
// stream).
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	ds := datagen.Generate(datagen.Spec{
		Map: datagen.Map1, Series: datagen.SeriesA, Scale: 256, Seed: 41,
	})
	for _, kind := range []string{"secondary", "primary", "cluster", "cluster-buddy"} {
		t.Run(kind, func(t *testing.T) {
			org := buildOrg2(t, kind, ds)

			// One deterministic stream, split at the save point: the first
			// half churns the store before saving so tombstones, dead bytes
			// and freed units are part of the snapshotted state; the second
			// half continues on both stores after the restore.
			ops := ds.MixedWorkload(datagen.MixSpec{Ops: 600, HotspotFrac: 0.5, Seed: 42})
			applyMix(t, org, newLiveSet(ds), ops[:300])
			org.Flush()

			img, err := Snapshot(org)
			if err != nil {
				t.Fatal(err)
			}
			restored, err := Restore(img, NewEnvOn(128, img.Params, nil))
			if err != nil {
				t.Fatal(err)
			}

			if got, want := restored.Stats(), org.Stats(); got != want {
				t.Fatalf("restored stats %+v, want %+v", got, want)
			}
			if restored.Name() != org.Name() {
				t.Fatalf("restored as %q, want %q", restored.Name(), org.Name())
			}
			checkSameAnswers(t, "after restore", org, restored, ds)

			// The restored store must keep working under further mutation,
			// in lock-step with the original.
			applyMix(t, org, newLiveSet(ds), ops[300:])
			applyMix(t, restored, newLiveSet(ds), ops[300:])
			org.Flush()
			restored.Flush()
			if got, want := restored.Stats(), org.Stats(); got != want {
				t.Fatalf("post-churn stats diverged: %+v vs %+v", got, want)
			}
			checkSameAnswers(t, "after post-restore churn", org, restored, ds)
		})
	}
}

// TestRestoreDoesNotResurrectDeletedOnPageZero is the regression test for a
// subtle restore bug: the live index of a restored cluster unit was rebuilt
// with a plain map lookup of c.homes, whose zero value PageID(0) matched the
// unit attached to data page 0 (the original root leaf stays a data page
// across root splits). A tombstoned object of that unit — absent from homes
// — was thereby resurrected into the index, so the unit's extent never
// returned to the allocator once its last live object died.
func TestRestoreDoesNotResurrectDeletedOnPageZero(t *testing.T) {
	ds := datagen.Generate(datagen.Spec{
		Map: datagen.Map1, Series: datagen.SeriesA, Scale: 512, Seed: 13,
	})
	org := buildOrg2(t, "cluster", ds).(*Cluster)

	// The objects homed on data page 0 (there are some as long as page 0 is
	// a live data page, which the R*-tree preserves across root splits).
	var onZero []object.ID
	for id, leaf := range org.homes {
		if leaf == 0 {
			onZero = append(onZero, id)
		}
	}
	if len(onZero) < 2 {
		t.Skipf("no unit on data page 0 in this build (%d objects)", len(onZero))
	}
	sort.Slice(onZero, func(i, j int) bool { return onZero[i] < onZero[j] })

	// Tombstone one of them, then snapshot and restore.
	if !org.Delete(onZero[0]) {
		t.Fatal("delete failed")
	}
	org.Flush()
	img, err := Snapshot(org)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(img, NewEnvOn(128, img.Params, nil))
	if err != nil {
		t.Fatal(err)
	}

	// Delete every remaining live object of that unit on both stores: the
	// unit must empty out and return its extent on both, so the storage
	// statistics stay in lock-step. A resurrected tombstone would keep the
	// restored unit's index non-empty and leak the extent.
	for _, id := range onZero[1:] {
		if !org.Delete(id) || !restored.Delete(id) {
			t.Fatalf("delete of %d diverged between original and restored", id)
		}
	}
	org.Flush()
	restored.Flush()
	if got, want := restored.Stats(), org.Stats(); got != want {
		t.Fatalf("stats diverged after emptying the page-0 unit:\nrestored %+v\noriginal %+v", got, want)
	}
}

// buildOrg2 builds including the buddy variant (buildOrg predates it).
func buildOrg2(t *testing.T, kind string, ds *datagen.Dataset) Organization {
	t.Helper()
	return buildOrgOn(t, kind, ds, 128, nil)
}

// TestSnapshotDeterministic checks that snapshotting the same store twice
// yields identical images (the byte-reproducibility of Save rests on this).
func TestSnapshotDeterministic(t *testing.T) {
	ds := datagen.Generate(datagen.Spec{
		Map: datagen.Map1, Series: datagen.SeriesA, Scale: 512, Seed: 9,
	})
	org := buildOrg2(t, "cluster-buddy", ds)
	a, err := Snapshot(org)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Snapshot(org)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Pages) != len(b.Pages) || len(a.Cluster.Units) != len(b.Cluster.Units) {
		t.Fatal("snapshot shapes differ between two captures")
	}
	for i := range a.Pages {
		if a.Pages[i].ID != b.Pages[i].ID || string(a.Pages[i].Data) != string(b.Pages[i].Data) {
			t.Fatalf("page image %d differs between two captures", i)
		}
	}
	for i := range a.Cluster.Units {
		au, bu := a.Cluster.Units[i], b.Cluster.Units[i]
		if au.Leaf != bu.Leaf || au.Extent != bu.Extent || au.Used != bu.Used {
			t.Fatalf("unit image %d differs between two captures", i)
		}
	}
}

// TestBackendsAgree builds the same organization on the memory backend and
// on the file backend and checks that modelled construction cost, storage
// statistics and all answer sets are identical — the backend choice must be
// invisible to everything but wall-clock time and durability.
func TestBackendsAgree(t *testing.T) {
	ds := datagen.Generate(datagen.Spec{
		Map: datagen.Map1, Series: datagen.SeriesA, Scale: 256, Seed: 21,
	})
	for _, kind := range []string{"secondary", "primary", "cluster"} {
		t.Run(kind, func(t *testing.T) {
			fb, err := filebackend.Open(filepath.Join(t.TempDir(), "pages.db"), filebackend.Config{})
			if err != nil {
				t.Fatal(err)
			}
			mem := buildOrgOn(t, kind, ds, 128, nil)
			file := buildOrgOn(t, kind, ds, 128, fb)
			defer file.Env().Close()

			if got, want := file.Stats(), mem.Stats(); got != want {
				t.Fatalf("file-backed stats %+v, want %+v", got, want)
			}
			checkSameAnswers(t, "mem vs file", mem, file, ds)

			// Modelled query costs must match request by request.
			w := ds.Windows(0.01, 1, 3)[0]
			cm := mem.WindowQuery(w, TechComplete).Cost
			cf := file.WindowQuery(w, TechComplete).Cost
			if cm != cf {
				t.Fatalf("modelled window cost differs: mem %v, file %v", cm, cf)
			}
			if file.Env().Disk.Measured().IOSeconds() <= 0 {
				t.Fatal("file backend measured no wall-clock I/O")
			}
			if mem.Env().Disk.Measured() != (disk.Measured{}) {
				t.Fatal("memory backend reported measured I/O")
			}
		})
	}
}
