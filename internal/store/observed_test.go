package store

import (
	"testing"

	"spatialcluster/internal/obs"
)

// TestObservedWindowQueriesMatchUnobserved: attaching stage clocks must not
// change any answer, and the clocks must actually accumulate.
func TestObservedWindowQueriesMatchUnobserved(t *testing.T) {
	c, ds := buildClusterForQueries(t, 256)
	ws := ds.Windows(0.005, 32, 3)

	plain := RunWindowQueriesParallel(c, ws, TechSLM, 4)

	var st obs.ParallelStages
	c.Env().Buf.Clear()
	c.Env().Disk.ResetCost()
	observed := RunWindowQueriesObserved(c, ws, TechSLM, 4, &st)

	if observed.Answers != plain.Answers || observed.Candidates != plain.Candidates {
		t.Fatalf("observed answers/cands %d/%d, unobserved %d/%d",
			observed.Answers, observed.Candidates, plain.Answers, plain.Candidates)
	}
	if st.ExecNS.Load() <= 0 {
		t.Fatalf("no execution time accumulated: exec=%d", st.ExecNS.Load())
	}
	if st.LockWaitNS.Load() < 0 {
		t.Fatalf("negative lock wait: %d", st.LockWaitNS.Load())
	}
	// Summed busy time cannot exceed workers × wall (with slack for clock
	// granularity).
	wallNS := observed.WallSec * 1e9
	if busy := float64(st.ExecNS.Load() + st.LockWaitNS.Load()); busy > 4*wallNS*1.5 {
		t.Fatalf("busy %.0f ns exceeds %d×wall %.0f ns", busy, 4, wallNS)
	}
}
