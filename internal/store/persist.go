package store

import (
	"fmt"
	"sort"

	"spatialcluster/internal/disk"
	"spatialcluster/internal/geom"
	"spatialcluster/internal/object"
	"spatialcluster/internal/pagefile"
	"spatialcluster/internal/rtree"
)

// This file implements whole-store persistence: Snapshot turns a built
// organization into an Image — a pure-data, exported-field struct holding
// the page contents plus every piece of in-memory state the layers below
// cannot rebuild from the pages (allocator free list, tree shape, object
// maps, open tail pages) — and Restore turns an Image back into a live
// organization on a fresh Env, without re-running construction and without
// charging any modelled I/O. The root package wraps the pair into the
// single-file Save/Open API.
//
// Images are deterministic: all map-backed state is sorted before capture,
// so snapshotting the same store twice yields identical images. A restored
// store reports the same StorageStats and answers every window, point and
// k-NN query with the same result sets as the store it was saved from (the
// differential suite checks this); only the buffer starts cold.

// PageImage is the content of one non-empty disk page.
type PageImage struct {
	ID   int64
	Data []byte
}

// ObjRef associates an object with its location in a sequential file.
type ObjRef struct {
	ID  object.ID
	Ref pagefile.Ref
}

// ObjKey associates an object with its spatial key.
type ObjKey struct {
	ID  object.ID
	Key geom.Rect
}

// ObjHome associates an object with its home data page.
type ObjHome struct {
	ID   object.ID
	Leaf disk.PageID
}

// SecondaryImage is the organization-specific state of a secondary store.
type SecondaryImage struct {
	File        pagefile.SeqFileImage
	Refs        []ObjRef
	Keys        []ObjKey
	Objects     int
	ObjectBytes int64
}

// PrimaryImage is the organization-specific state of a primary store.
type PrimaryImage struct {
	Overflow    pagefile.SeqFileImage
	Refs        []ObjRef
	Keys        []ObjKey
	Objects     int
	ObjectBytes int64
}

// UnitObjectImage locates one (live or tombstoned) object inside a unit.
type UnitObjectImage struct {
	ID   object.ID
	Off  int
	Size int
}

// UnitImage is one cluster unit, including its in-memory tail page.
type UnitImage struct {
	Leaf      disk.PageID
	Extent    pagefile.Extent
	FromBuddy bool
	Used      int
	Dead      int
	Objects   []UnitObjectImage
	TailIdx   int
	TailBuf   []byte
	TailDirty bool
}

// ClusterImage is the organization-specific state of a cluster store.
type ClusterImage struct {
	Config      ClusterConfig
	Buddy       *pagefile.BuddyImage
	Units       []UnitImage
	Homes       []ObjHome
	Keys        []ObjKey
	Objects     int
	ObjectBytes int64
}

// Image kinds.
const (
	KindSecondary = "secondary"
	KindPrimary   = "primary"
	KindCluster   = "cluster"
)

// Image is the complete serializable state of one built organization.
// Exactly one of Secondary, Primary and Cluster is non-nil, matching Kind.
type Image struct {
	Kind     string
	Params   disk.Params
	NumPages int64
	Head     int64
	Pages    []PageImage
	Alloc    pagefile.AllocatorImage
	Tree     rtree.TreeImage

	Secondary *SecondaryImage
	Primary   *PrimaryImage
	Cluster   *ClusterImage
}

// Unwrap peels layers that wrap an organization (such as the write-ahead
// log's store) down to the innermost one. Wrappers advertise themselves by
// implementing Underlying.
func Unwrap(org Organization) Organization {
	for {
		u, ok := org.(interface{ Underlying() Organization })
		if !ok {
			return org
		}
		org = u.Underlying()
	}
}

// Snapshot captures a built organization as an Image. It flushes the store
// first, so the disk pages are current; the caller must not mutate the store
// concurrently. Wrapping layers are unwrapped; only the three organizations
// of this package can be snapshotted.
func Snapshot(org Organization) (*Image, error) {
	org = Unwrap(org)
	org.Flush()
	env := org.Env()
	img := &Image{
		Params:   env.Disk.Params(),
		NumPages: int64(env.Disk.NumPages()),
		Head:     int64(env.Disk.Head()),
		Pages:    dumpPages(env.Disk),
		Alloc:    env.Alloc.Image(),
		Tree:     org.Tree().Image(),
	}
	switch s := org.(type) {
	case *Secondary:
		img.Kind = KindSecondary
		img.Secondary = &SecondaryImage{
			File:        s.file.Image(),
			Refs:        sortedRefs(s.refs),
			Keys:        sortedKeys(s.keys),
			Objects:     s.objects,
			ObjectBytes: s.objectBytes,
		}
	case *Primary:
		img.Kind = KindPrimary
		img.Primary = &PrimaryImage{
			Overflow:    s.overflow.Image(),
			Refs:        sortedRefs(s.refs),
			Keys:        sortedKeys(s.keys),
			Objects:     s.objects,
			ObjectBytes: s.objectBytes,
		}
	case *Cluster:
		img.Kind = KindCluster
		ci := &ClusterImage{
			Config:      s.cfg,
			Units:       sortedUnits(s.units),
			Homes:       sortedHomes(s.homes),
			Keys:        sortedKeys(s.keys),
			Objects:     s.objects,
			ObjectBytes: s.objectBytes,
		}
		if s.buddy != nil {
			b := s.buddy.Image()
			ci.Buddy = &b
		}
		img.Cluster = ci
	default:
		return nil, fmt.Errorf("store: cannot snapshot %T", org)
	}
	return img, nil
}

// Restore rebuilds the organization described by img on env. The
// environment must be completely fresh (empty disk, untouched allocator);
// its backend and buffer size are free to differ from the saved store's —
// the image carries only what must match, notably the disk timing
// parameters. No modelled I/O is charged.
func Restore(img *Image, env *Env) (Organization, error) {
	if env.Disk.NumPages() != 0 {
		return nil, fmt.Errorf("store: Restore needs an empty environment (disk holds %d pages)",
			env.Disk.NumPages())
	}
	if env.Disk.Params() != img.Params {
		return nil, fmt.Errorf("store: environment params %+v differ from the image's %+v",
			env.Disk.Params(), img.Params)
	}
	env.Disk.Grow(int(img.NumPages))
	for _, pg := range img.Pages {
		if pg.ID < 0 || pg.ID >= img.NumPages {
			return nil, fmt.Errorf("store: image page %d outside disk of %d pages", pg.ID, img.NumPages)
		}
		env.Disk.Poke(disk.PageID(pg.ID), pg.Data)
	}
	env.Disk.SetHead(disk.PageID(img.Head))
	env.Alloc.RestoreImage(img.Alloc)

	switch img.Kind {
	case KindSecondary:
		si := img.Secondary
		if si == nil {
			return nil, fmt.Errorf("store: image kind %q without payload", img.Kind)
		}
		s := &Secondary{
			env:         env,
			file:        pagefile.RestoreSequentialFile(env.Alloc, si.File),
			refs:        refMap(si.Refs),
			keys:        keyMap(si.Keys),
			objects:     si.Objects,
			objectBytes: si.ObjectBytes,
		}
		s.tree = rtree.Restore(env.Buf, env.Alloc, rtree.Config{}, img.Tree)
		return s, nil

	case KindPrimary:
		pi := img.Primary
		if pi == nil {
			return nil, fmt.Errorf("store: image kind %q without payload", img.Kind)
		}
		p := &Primary{
			env:         env,
			overflow:    pagefile.RestoreSequentialFile(env.Alloc, pi.Overflow),
			refs:        refMap(pi.Refs),
			keys:        keyMap(pi.Keys),
			objects:     pi.Objects,
			objectBytes: pi.ObjectBytes,
			maxInline:   primaryMaxInline(),
		}
		p.tree = rtree.Restore(env.Buf, env.Alloc, rtree.Config{VariableLeaf: true}, img.Tree)
		return p, nil

	case KindCluster:
		ci := img.Cluster
		if ci == nil {
			return nil, fmt.Errorf("store: image kind %q without payload", img.Kind)
		}
		c := &Cluster{
			env:         env,
			cfg:         ci.Config,
			units:       make(map[disk.PageID]*clusterUnit, len(ci.Units)),
			homes:       homeMap(ci.Homes),
			keys:        keyMap(ci.Keys),
			objects:     ci.Objects,
			objectBytes: ci.ObjectBytes,
		}
		if ci.Buddy != nil {
			buddy, err := pagefile.RestoreBuddySystem(env.Alloc, *ci.Buddy)
			if err != nil {
				return nil, err
			}
			c.buddy = buddy
		}
		for _, ui := range ci.Units {
			u := &clusterUnit{
				extent:    ui.Extent,
				fromBuddy: ui.FromBuddy,
				used:      ui.Used,
				dead:      ui.Dead,
				index:     make(map[object.ID]int),
				tailIdx:   ui.TailIdx,
				tailDirty: ui.TailDirty,
			}
			if len(ui.TailBuf) > 0 {
				u.tailBuf = append([]byte(nil), ui.TailBuf...)
			}
			for _, uo := range ui.Objects {
				u.objects = append(u.objects, unitObject{id: uo.ID, off: uo.Off, size: uo.Size})
			}
			// The live index is derivable: an entry is live iff the object's
			// home is this data page. A later duplicate (delete + reinsert
			// into the same unit) overwrites the tombstoned position. The
			// comma-ok lookup matters: a deleted object is absent from homes,
			// and the zero-value PageID would otherwise match data page 0.
			for pos, uo := range u.objects {
				if leaf, ok := c.homes[uo.id]; ok && leaf == ui.Leaf {
					u.index[uo.id] = pos
				}
			}
			c.units[ui.Leaf] = u
		}
		c.tree = rtree.Restore(env.Buf, env.Alloc, c.treeConfig(), img.Tree)
		return c, nil
	}
	return nil, fmt.Errorf("store: unknown image kind %q", img.Kind)
}

// dumpPages captures all non-empty disk pages without charging I/O, reading
// the disk in large batches (one backend call per batch, not per page — on
// the file backend a per-page dump would be one pread syscall per 4 KB).
func dumpPages(d *disk.Disk) []PageImage {
	const batch = 1024
	n := d.NumPages()
	var out []PageImage
	for start := disk.PageID(0); start < n; start += batch {
		run := batch
		if rem := int(n - start); rem < run {
			run = rem
		}
		for i, pg := range d.PeekRun(start, run) {
			if isZeroPage(pg) {
				continue
			}
			out = append(out, PageImage{ID: int64(start) + int64(i), Data: append([]byte(nil), pg...)})
		}
	}
	return out
}

// isZeroPage reports whether a page holds no data (nil or all zero — the two
// are indistinguishable to every reader, so zero pages are not persisted).
func isZeroPage(pg []byte) bool {
	for _, b := range pg {
		if b != 0 {
			return false
		}
	}
	return true
}

func sortedRefs(m map[object.ID]pagefile.Ref) []ObjRef {
	out := make([]ObjRef, 0, len(m))
	for id, ref := range m {
		out = append(out, ObjRef{ID: id, Ref: ref})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func sortedKeys(m map[object.ID]geom.Rect) []ObjKey {
	out := make([]ObjKey, 0, len(m))
	for id, key := range m {
		out = append(out, ObjKey{ID: id, Key: key})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func sortedHomes(m map[object.ID]disk.PageID) []ObjHome {
	out := make([]ObjHome, 0, len(m))
	for id, leaf := range m {
		out = append(out, ObjHome{ID: id, Leaf: leaf})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func sortedUnits(m map[disk.PageID]*clusterUnit) []UnitImage {
	out := make([]UnitImage, 0, len(m))
	for leaf, u := range m {
		ui := UnitImage{
			Leaf:      leaf,
			Extent:    u.extent,
			FromBuddy: u.fromBuddy,
			Used:      u.used,
			Dead:      u.dead,
			TailIdx:   u.tailIdx,
			TailDirty: u.tailDirty,
		}
		if len(u.tailBuf) > 0 {
			ui.TailBuf = append([]byte(nil), u.tailBuf...)
		}
		for _, uo := range u.objects {
			ui.Objects = append(ui.Objects, UnitObjectImage{ID: uo.id, Off: uo.off, Size: uo.size})
		}
		out = append(out, ui)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Leaf < out[j].Leaf })
	return out
}

func refMap(s []ObjRef) map[object.ID]pagefile.Ref {
	m := make(map[object.ID]pagefile.Ref, len(s))
	for _, r := range s {
		m[r.ID] = r.Ref
	}
	return m
}

func keyMap(s []ObjKey) map[object.ID]geom.Rect {
	m := make(map[object.ID]geom.Rect, len(s))
	for _, k := range s {
		m[k.ID] = k.Key
	}
	return m
}

func homeMap(s []ObjHome) map[object.ID]disk.PageID {
	m := make(map[object.ID]disk.PageID, len(s))
	for _, h := range s {
		m[h.ID] = h.Leaf
	}
	return m
}
