package store

import (
	"fmt"
	"sort"

	"spatialcluster/internal/disk"
	"spatialcluster/internal/geom"
	"spatialcluster/internal/object"
	"spatialcluster/internal/rtree"
)

// This file holds the cluster organization's reorganization primitives: the
// fragmentation report that reclustering policies decide on, the single-unit
// repack, and the full Hilbert rebuild. The policies themselves live in
// internal/recluster; everything here charges modelled I/O through the same
// disk and buffer as any other operation.

// UnitFrag describes the decay of one cluster unit: how many of its occupied
// bytes are tombstones and how many pages its extent pins down.
type UnitFrag struct {
	Leaf       disk.PageID // data page owning the unit
	LiveBytes  int
	DeadBytes  int
	AllocPages int // full allocated extent (charged size)
}

// DeadFrac returns the fraction of occupied bytes that are dead.
func (uf UnitFrag) DeadFrac() float64 {
	total := uf.LiveBytes + uf.DeadBytes
	if total == 0 {
		return 0
	}
	return float64(uf.DeadBytes) / float64(total)
}

// FragReport aggregates the fragmentation of a cluster organization.
type FragReport struct {
	Units          int
	LiveBytes      int64
	DeadBytes      int64
	AllocatedPages int      // summed unit extents
	Worst          UnitFrag // unit with the highest dead fraction
}

// DeadFrac returns the organization-wide dead-byte fraction.
func (fr FragReport) DeadFrac() float64 {
	total := fr.LiveBytes + fr.DeadBytes
	if total == 0 {
		return 0
	}
	return float64(fr.DeadBytes) / float64(total)
}

// ExtentUtil returns live bytes over allocated unit space.
func (fr FragReport) ExtentUtil() float64 {
	if fr.AllocatedPages == 0 {
		return 0
	}
	return float64(fr.LiveBytes) / (float64(fr.AllocatedPages) * float64(disk.PageSize))
}

// Frag reports the current fragmentation. It is pure bookkeeping (no I/O).
func (c *Cluster) Frag() FragReport {
	c.env.mu.RLock()
	defer c.env.mu.RUnlock()
	var fr FragReport
	fr.Units = len(c.units)
	first := true
	for leaf, u := range c.units {
		uf := c.unitFrag(leaf, u)
		fr.LiveBytes += int64(uf.LiveBytes)
		fr.DeadBytes += int64(uf.DeadBytes)
		fr.AllocatedPages += uf.AllocPages
		// Deterministic worst pick: dead fraction, ties by lowest page.
		if first || uf.DeadFrac() > fr.Worst.DeadFrac() ||
			(uf.DeadFrac() == fr.Worst.DeadFrac() && uf.Leaf < fr.Worst.Leaf) {
			fr.Worst = uf
			first = false
		}
	}
	return fr
}

// UnitFrags returns the fragmentation of every unit, worst first
// (deterministic order: dead fraction descending, then data page ascending).
func (c *Cluster) UnitFrags() []UnitFrag {
	c.env.mu.RLock()
	defer c.env.mu.RUnlock()
	out := make([]UnitFrag, 0, len(c.units))
	for leaf, u := range c.units {
		out = append(out, c.unitFrag(leaf, u))
	}
	sort.Slice(out, func(i, j int) bool {
		fi, fj := out[i].DeadFrac(), out[j].DeadFrac()
		if fi != fj {
			return fi > fj
		}
		return out[i].Leaf < out[j].Leaf
	})
	return out
}

func (c *Cluster) unitFrag(leaf disk.PageID, u *clusterUnit) UnitFrag {
	return UnitFrag{
		Leaf:       leaf,
		LiveBytes:  u.used - u.dead,
		DeadBytes:  u.dead,
		AllocPages: u.extent.Pages,
	}
}

// RepackUnit rewrites the cluster unit of data page leaf without its dead
// bytes, laying the live objects out in Hilbert order of their key centers
// (a deterministic layout that also restores spatial order inside the unit).
// The old extent is read with one sequential request, the compacted content
// written with one, and the freed space returns to the buddy system or
// extent allocator — the incremental maintenance step of section 5.2's
// "moving or rebuilding cluster units is cheap" argument. It reports whether
// the unit existed and had dead bytes to reclaim.
func (c *Cluster) RepackUnit(leaf disk.PageID) bool {
	c.env.mu.Lock()
	defer c.env.mu.Unlock()
	return c.repackUnitLocked(leaf)
}

func (c *Cluster) repackUnitLocked(leaf disk.PageID) bool {
	u := c.units[leaf]
	if u == nil || u.dead == 0 {
		return false
	}
	live := make([]unitObject, 0, len(u.index))
	for _, pos := range u.index {
		live = append(live, u.objects[pos])
	}
	sort.Slice(live, func(i, j int) bool {
		hi := geom.HilbertIndex(c.keys[live[i].id].Center())
		hj := geom.HilbertIndex(c.keys[live[j].id].Center())
		if hi != hj {
			return hi < hj
		}
		return live[i].id < live[j].id
	})

	pages := c.readUnitPages(u)
	blob := make([]byte, 0, u.used-u.dead)
	objs := make([]unitObject, 0, len(live))
	for _, uo := range live {
		objs = append(objs, unitObject{id: uo.id, off: len(blob), size: uo.size})
		blob = append(blob, unitBytesAt(pages, uo.off, uo.size)...)
	}

	c.freeUnitExtent(u)
	u.extent, u.fromBuddy = c.allocUnitExtent(len(blob))
	c.writeUnitDirect(u, blob)
	u.objects = objs
	u.index = make(map[object.ID]int, len(objs))
	for i, uo := range objs {
		u.index[uo.id] = i
	}
	u.dead = 0
	return true
}

// Rebuild reconstructs the whole organization with static global clustering:
// every live object is collected (each unit is read with one sequential
// request), the old units and tree pages are freed, and the objects are bulk
// loaded in Hilbert order at the given fill (0 selects the bulk loader's
// default). This is the heavyweight end of the reclustering spectrum — it
// restores near-optimal clustering at a cost proportional to the whole
// database.
func (c *Cluster) Rebuild(fill float64) {
	c.env.mu.Lock()
	defer c.env.mu.Unlock()

	// Collect the live objects in tree traversal order (deterministic), one
	// sequential read per unit.
	objs := make([]*object.Object, 0, c.objects)
	keys := make([]geom.Rect, 0, c.objects)
	c.tree.WalkNodes(func(n *rtree.Node) bool {
		if n.Level > 0 || len(n.Entries) == 0 {
			// An entry-less leaf is the surviving root of an emptied tree;
			// it has no cluster unit (full deletion freed it).
			return true
		}
		u := c.unitFor(n.ID)
		pages := c.readUnitPages(u)
		for _, e := range n.Entries {
			id, _ := decodePayload(e.Payload)
			pos, ok := u.index[id]
			if !ok {
				panic(fmt.Sprintf("store: rebuild found entry for unknown object %d", id))
			}
			uo := u.objects[pos]
			o, err := object.Unmarshal(unitBytesAt(pages, uo.off, uo.size))
			if err != nil {
				panic(fmt.Sprintf("store: corrupt object %d during rebuild: %v", id, err))
			}
			objs = append(objs, o)
			keys = append(keys, e.Rect)
		}
		return true
	})

	// Free the old units and tree, then load fresh.
	for _, u := range c.units {
		c.freeUnitExtent(u)
	}
	c.units = make(map[disk.PageID]*clusterUnit)
	c.homes = make(map[object.ID]disk.PageID, len(objs))
	c.keys = make(map[object.ID]geom.Rect, len(objs))
	c.objects = 0
	c.objectBytes = 0
	c.tree.Release()
	c.tree = c.newTree()
	c.bulkLoadHilbertLocked(objs, keys, fill)
}

// unitBytesAt extracts size bytes starting at unit offset off from the
// unit's page contents.
func unitBytesAt(pages [][]byte, off, size int) []byte {
	out := make([]byte, 0, size)
	for len(out) < size {
		pg := pages[off/disk.PageSize]
		in := off % disk.PageSize
		n := size - len(out)
		if n > disk.PageSize-in {
			n = disk.PageSize - in
		}
		out = append(out, pg[in:in+n]...)
		off += n
	}
	return out
}
