package store

import (
	"math"
	"sort"
	"testing"

	"spatialcluster/internal/datagen"
	"spatialcluster/internal/geom"
	"spatialcluster/internal/object"
)

// buildOrg constructs a flushed organization of the given kind over ds.
func buildOrg(t *testing.T, kind string, ds *datagen.Dataset, bufPages int) Organization {
	t.Helper()
	env := NewEnv(bufPages)
	var org Organization
	switch kind {
	case "secondary":
		org = NewSecondary(env)
	case "primary":
		org = NewPrimary(env)
	case "cluster":
		org = NewCluster(env, ClusterConfig{SmaxBytes: ds.Spec.SmaxBytes()})
	default:
		t.Fatalf("unknown org kind %q", kind)
	}
	for i, o := range ds.Objects {
		org.Insert(o, ds.MBRs[i])
	}
	org.Flush()
	env.Buf.Clear()
	env.Disk.ResetCost()
	return org
}

// bruteKNN computes the expected k-NN answer by scanning all live objects:
// ascending exact distance, ties by ascending ID.
func bruteKNN(objs map[object.ID]*object.Object, pt geom.Point, k int) ([]object.ID, []float64) {
	type cand struct {
		id   object.ID
		dist float64
	}
	all := make([]cand, 0, len(objs))
	for id, o := range objs {
		all = append(all, cand{id, o.Geom.DistToPoint(pt)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].dist != all[j].dist {
			return all[i].dist < all[j].dist
		}
		return all[i].id < all[j].id
	})
	if len(all) > k {
		all = all[:k]
	}
	ids := make([]object.ID, len(all))
	dists := make([]float64, len(all))
	for i, c := range all {
		ids[i] = c.id
		dists[i] = c.dist
	}
	return ids, dists
}

// TestNearestQueryMatchesBruteForce: every organization must return exactly
// the brute-force k nearest objects, in order, with matching distances.
func TestNearestQueryMatchesBruteForce(t *testing.T) {
	ds := datagen.Generate(datagen.Spec{
		Map: datagen.Map1, Series: datagen.SeriesA, Scale: 256, Seed: 21,
	})
	live := newLiveSet(ds).objs
	pts := ds.Points(6, 31)
	for _, kind := range []string{"secondary", "primary", "cluster"} {
		org := buildOrg(t, kind, ds, 256)
		for _, k := range []int{1, 7, 50} {
			for qi, pt := range pts {
				wantIDs, wantDists := bruteKNN(live, pt, k)
				res := org.NearestQuery(pt, k)
				if len(res.IDs) != len(wantIDs) {
					t.Fatalf("%s k=%d q=%d: %d answers, want %d", kind, k, qi, len(res.IDs), len(wantIDs))
				}
				for i := range wantIDs {
					if res.IDs[i] != wantIDs[i] {
						t.Fatalf("%s k=%d q=%d rank %d: got %d (d=%g), want %d (d=%g)",
							kind, k, qi, i, res.IDs[i], res.Dists[i], wantIDs[i], wantDists[i])
					}
					if math.Abs(res.Dists[i]-wantDists[i]) > 1e-12 {
						t.Fatalf("%s k=%d q=%d rank %d: dist %g, want %g",
							kind, k, qi, i, res.Dists[i], wantDists[i])
					}
				}
				if !sort.Float64sAreSorted(res.Dists) {
					t.Fatalf("%s k=%d q=%d: distances not ascending: %v", kind, k, qi, res.Dists)
				}
			}
		}
	}
}

// TestNearestQueryEdgeCases: k <= 0 is empty, k beyond the stored set
// returns everything, and the query charges modelled I/O when cold.
func TestNearestQueryEdgeCases(t *testing.T) {
	ds := datagen.Generate(datagen.Spec{
		Map: datagen.Map1, Series: datagen.SeriesA, Scale: 2048, Seed: 3,
	})
	pt := geom.Pt(0.5, 0.5)
	for _, kind := range []string{"secondary", "primary", "cluster"} {
		org := buildOrg(t, kind, ds, 256)

		if res := org.NearestQuery(pt, 0); len(res.IDs) != 0 || res.Candidates != 0 {
			t.Fatalf("%s: k=0 returned %d answers, %d candidates", kind, len(res.IDs), res.Candidates)
		}
		if res := org.NearestQuery(pt, -3); len(res.IDs) != 0 {
			t.Fatalf("%s: k=-3 returned %d answers", kind, len(res.IDs))
		}

		n := len(ds.Objects)
		res := org.NearestQuery(pt, n+100)
		if len(res.IDs) != n {
			t.Fatalf("%s: k beyond set returned %d of %d objects", kind, len(res.IDs), n)
		}
		if res.Cost.PagesRead == 0 {
			t.Fatalf("%s: exhaustive k-NN charged no reads", kind)
		}

		org.Env().Buf.Clear()
		res1 := org.NearestQuery(pt, 1)
		if len(res1.IDs) != 1 || res1.Cost.PagesRead == 0 {
			t.Fatalf("%s: cold 1-NN: %d answers, cost %v", kind, len(res1.IDs), res1.Cost)
		}
	}
}

// TestNearestQueryEmptyOrg: a store with no objects answers with the empty
// set for any k.
func TestNearestQueryEmptyOrg(t *testing.T) {
	ds := datagen.Generate(datagen.Spec{
		Map: datagen.Map1, Series: datagen.SeriesA, Scale: 4096, Seed: 1,
	})
	for _, kind := range []string{"secondary", "primary", "cluster"} {
		env := NewEnv(64)
		var org Organization
		switch kind {
		case "secondary":
			org = NewSecondary(env)
		case "primary":
			org = NewPrimary(env)
		case "cluster":
			org = NewCluster(env, ClusterConfig{SmaxBytes: ds.Spec.SmaxBytes()})
		}
		if res := org.NearestQuery(geom.Pt(0.3, 0.3), 5); len(res.IDs) != 0 {
			t.Fatalf("%s: empty store returned %d answers", kind, len(res.IDs))
		}
	}
}

// TestNearestQueryDeterministic: repeated cold runs return identical answers
// and identical modelled cost (the byte-reproducibility substrate of
// BENCH_knn.json).
func TestNearestQueryDeterministic(t *testing.T) {
	ds := datagen.Generate(datagen.Spec{
		Map: datagen.Map1, Series: datagen.SeriesA, Scale: 512, Seed: 8,
	})
	org := buildOrg(t, "cluster", ds, 256)
	pt := geom.Pt(0.42, 0.58)

	// Warm the directory once, then run in the steady state of a query
	// stream (directory hot, data and object pages cold) twice.
	org.NearestQuery(pt, 10)
	org.Env().Buf.Retain(org.Tree().IsDirPage)
	first := org.NearestQuery(pt, 10)
	org.Env().Buf.Retain(org.Tree().IsDirPage)
	second := org.NearestQuery(pt, 10)
	if len(first.IDs) != len(second.IDs) {
		t.Fatalf("answer counts differ: %d vs %d", len(first.IDs), len(second.IDs))
	}
	for i := range first.IDs {
		if first.IDs[i] != second.IDs[i] || first.Dists[i] != second.Dists[i] {
			t.Fatalf("rank %d differs: (%d, %g) vs (%d, %g)",
				i, first.IDs[i], first.Dists[i], second.IDs[i], second.Dists[i])
		}
	}
	if first.Cost != second.Cost {
		t.Fatalf("cold costs differ: %v vs %v", first.Cost, second.Cost)
	}
	if first.Candidates != second.Candidates {
		t.Fatalf("candidate counts differ: %d vs %d", first.Candidates, second.Candidates)
	}
}
