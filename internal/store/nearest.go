package store

import (
	"sort"

	"spatialcluster/internal/geom"
	"spatialcluster/internal/object"
	"spatialcluster/internal/rtree"
)

// knnCand is one exact-distance candidate of a k-NN query.
type knnCand struct {
	id   object.ID
	dist float64
}

// knnLess is the total order of the k-NN answer: ascending distance, ties by
// ascending object ID. Every organization ranks with this order, so answer
// sets are identical across organizations by construction.
func knnLess(a, b knnCand) bool {
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	return a.id < b.id
}

// knnAcc accumulates the k best candidates seen so far, kept sorted by
// knnLess. k is at most a few hundred in any sensible browse, so linear
// insertion beats a heap's constant factors and keeps the order obvious.
type knnAcc struct {
	k     int
	cands []knnCand
}

func (a *knnAcc) full() bool { return len(a.cands) == a.k }

// bound returns the current k-th best distance; only meaningful when full.
func (a *knnAcc) bound() float64 { return a.cands[len(a.cands)-1].dist }

// add offers a candidate; it is dropped if it does not beat the k-th best.
func (a *knnAcc) add(c knnCand) {
	if a.full() && !knnLess(c, a.cands[a.k-1]) {
		return
	}
	i := sort.Search(len(a.cands), func(i int) bool { return knnLess(c, a.cands[i]) })
	a.cands = append(a.cands, knnCand{})
	copy(a.cands[i+1:], a.cands[i:])
	a.cands[i] = c
	if len(a.cands) > a.k {
		a.cands = a.cands[:a.k]
	}
}

// nearestSearch is the shared k-NN engine of all three organizations: a
// best-first browse over the R*-tree (rtree.NearestLeaves) that stops once k
// exact answers are closer than the next data page's optimistic bound.
// fetch materializes the exact objects of the given entry indexes of one
// surfacing data page — the only organization-specific step: the secondary
// organization pays one random read per object, the primary decodes its data
// page (plus overflow reads), and the cluster organization batches the
// page's objects into one page-by-page unit access.
//
// Entries whose MBR MinDist already exceeds the current k-th best distance
// are pruned before fetch; the strict comparison keeps boundary ties in
// play, so pruning can never change the answer set.
func nearestSearch(env *Env, t *rtree.Tree, pt geom.Point, k int,
	fetch func(n *rtree.Node, idxs []int) []*object.Object) NearestResult {

	var res NearestResult
	if k <= 0 {
		return res
	}
	acc := knnAcc{k: k}
	// The stop predicate is monotone in minDist, so the traversal applies it
	// before reading a popped page — a page (or whole subtree) beyond the
	// k-th best exact distance terminates the browse without charging its
	// read.
	stop := func(minDist float64) bool {
		return acc.full() && minDist > acc.bound()
	}
	res.Cost = measure(env.Disk, func() {
		t.NearestLeaves(pt, stop, func(n *rtree.Node, minDist float64) bool {
			idxs := make([]int, 0, len(n.Entries))
			for i := range n.Entries {
				if acc.full() && n.Entries[i].Rect.MinDist(pt) > acc.bound() {
					continue
				}
				idxs = append(idxs, i)
			}
			if len(idxs) == 0 {
				return true
			}
			for _, o := range fetch(n, idxs) {
				res.Candidates++
				res.CandidateBytes += int64(o.Size())
				acc.add(knnCand{id: o.ID, dist: o.Geom.DistToPoint(pt)})
			}
			return true
		})
	})
	res.IDs = make([]object.ID, len(acc.cands))
	res.Dists = make([]float64, len(acc.cands))
	for i, c := range acc.cands {
		res.IDs[i] = c.id
		res.Dists[i] = c.dist
	}
	return res
}

// NearestQuery implements Organization for the secondary organization: every
// candidate costs an independent random read into the sequential file.
func (s *Secondary) NearestQuery(pt geom.Point, k int) NearestResult {
	return nearestSearch(s.env, s.tree, pt, k,
		func(n *rtree.Node, idxs []int) []*object.Object {
			out := make([]*object.Object, 0, len(idxs))
			for _, i := range idxs {
				id, _ := decodePayload(n.Entries[i].Payload)
				out = append(out, s.readObjectDirect(id))
			}
			return out
		})
}

// NearestQuery implements Organization for the primary organization: the
// surfacing data page already holds the inline objects; overflow objects
// cost extra reads.
func (p *Primary) NearestQuery(pt geom.Point, k int) NearestResult {
	return nearestSearch(p.env, p.tree, pt, k,
		func(n *rtree.Node, idxs []int) []*object.Object {
			out := make([]*object.Object, 0, len(idxs))
			for _, i := range idxs {
				o, _ := p.decodeEntry(n.Entries[i].Payload, p.overflow.ReadDirect)
				out = append(out, o)
			}
			return out
		})
}

// NearestQuery implements Organization for the cluster organization. The
// browse surfaces whole data pages, so the qualifying objects of one page
// are fetched with a single page-by-page unit access (one seek per unit, one
// rotational delay per requested page run) — per section 5.5 the most
// selective workload reads per-page, never per-unit.
func (c *Cluster) NearestQuery(pt geom.Point, k int) NearestResult {
	return nearestSearch(c.env, c.tree, pt, k,
		func(n *rtree.Node, idxs []int) []*object.Object {
			ids := make([]object.ID, 0, len(idxs))
			for _, i := range idxs {
				id, _ := decodePayload(n.Entries[i].Payload)
				ids = append(ids, id)
			}
			return c.FetchObjects(n.ID, ids, c.env.Buf, TechPageByPage)
		})
}
