package store

import (
	"testing"

	"spatialcluster/internal/disk"
	"spatialcluster/internal/object"
	"spatialcluster/internal/rtree"
)

func TestOrganizationNames(t *testing.T) {
	ds := testDataset(2048)
	want := map[string]Organization{
		"sec. org.":    NewSecondary(NewEnv(64)),
		"prim. org.":   NewPrimary(NewEnv(64)),
		"cluster org.": NewCluster(NewEnv(64), ClusterConfig{SmaxBytes: ds.Spec.SmaxBytes()}),
	}
	for name, org := range want {
		if org.Name() != name {
			t.Errorf("Name = %q, want %q", org.Name(), name)
		}
	}
}

func TestClusterConfigAccessor(t *testing.T) {
	cfg := ClusterConfig{SmaxBytes: 81920, BuddySizes: 3}
	c := NewCluster(NewEnv(64), cfg)
	if c.Config() != cfg {
		t.Fatalf("Config = %+v", c.Config())
	}
}

func TestNewEnvWithParams(t *testing.T) {
	p := disk.Params{SeekMS: 1, LatencyMS: 2, TransferMS: 3}
	env := NewEnvWithParams(32, p)
	if env.Params() != p {
		t.Fatalf("params = %+v", env.Params())
	}
	if env.Buf.Capacity() != 32 {
		t.Fatalf("buffer capacity = %d", env.Buf.Capacity())
	}
}

func TestDecodeEntryIDAndDemand(t *testing.T) {
	ds := testDataset(256)
	orgs := buildAll(t, ds, 512)
	for name, org := range orgs {
		count := 0
		org.Tree().WalkNodes(func(n *rtree.Node) bool {
			if !n.IsLeaf() || count > 3 {
				return count <= 3
			}
			count++
			var ids []object.ID
			for _, e := range n.Entries {
				id, size := DecodeEntryID(org, e)
				if size <= 0 {
					t.Fatalf("%s: entry size %d", name, size)
				}
				ids = append(ids, id)
			}
			d := ObjectPageDemand(org, n.ID, ids)
			if len(d.Units) == 0 {
				t.Fatalf("%s: demand without units", name)
			}
			if len(d.Pages) == 0 {
				t.Fatalf("%s: demand without pages", name)
			}
			switch org.(type) {
			case *Cluster:
				if len(d.Units) != 1 {
					t.Fatalf("cluster: %d units for one leaf", len(d.Units))
				}
			case *Secondary:
				if len(d.Units) != len(ids) {
					t.Fatalf("secondary: %d units for %d objects", len(d.Units), len(ids))
				}
			case *Primary:
				if d.Pages[0] != n.ID {
					t.Fatal("primary demand must include the leaf page")
				}
			}
			return true
		})
		if count == 0 {
			t.Fatalf("%s: no leaves visited", name)
		}
	}
}

func TestDemandConsistentWithFetchCost(t *testing.T) {
	// The demand's page count is a lower bound on the pages a cold
	// complete fetch transfers for the cluster organization.
	ds := testDataset(256)
	env := NewEnv(512)
	c := NewCluster(env, ClusterConfig{SmaxBytes: ds.Spec.SmaxBytes()})
	for i, o := range ds.Objects {
		c.Insert(o, ds.MBRs[i])
	}
	c.Flush()
	env.Buf.Clear()

	var leaf disk.PageID
	var ids []object.ID
	c.Tree().WalkNodes(func(n *rtree.Node) bool {
		if n.IsLeaf() && len(ids) == 0 {
			leaf = n.ID
			for _, e := range n.Entries {
				id, _ := decodePayload(e.Payload)
				ids = append(ids, id)
			}
		}
		return len(ids) == 0
	})
	d := ObjectPageDemand(c, leaf, ids)
	before := env.Disk.Cost()
	c.FetchObjects(leaf, ids, env.Buf, TechSLM)
	diff := env.Disk.Cost().Sub(before)
	if diff.PagesRead < int64(len(d.Pages)) {
		t.Fatalf("fetch read %d pages, demand says at least %d", diff.PagesRead, len(d.Pages))
	}
}
