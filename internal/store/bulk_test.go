package store

import (
	"testing"

	"spatialcluster/internal/datagen"
	"spatialcluster/internal/geom"
	"spatialcluster/internal/object"
	"spatialcluster/internal/rtree"
)

func bulkLoaded(t *testing.T, ds *datagen.Dataset, fill float64) (*Cluster, *Env) {
	t.Helper()
	env := NewEnv(512)
	c := NewCluster(env, ClusterConfig{SmaxBytes: ds.Spec.SmaxBytes()})
	c.BulkLoadHilbert(ds.Objects, ds.MBRs, fill)
	env.Buf.Clear()
	return c, env
}

func TestBulkLoadQueriesAgreeWithDynamic(t *testing.T) {
	ds := testDataset(128)
	bulk, benv := bulkLoaded(t, ds, 0.9)

	if n, err := bulk.Tree().CheckInvariants(); err != nil || n != len(ds.Objects) {
		t.Fatalf("bulk tree invariants: n=%d err=%v", n, err)
	}
	for _, w := range append(ds.Windows(0.001, 15, 4), ds.Windows(0.01, 10, 5)...) {
		benv.Buf.Clear()
		res := bulk.WindowQuery(w, TechComplete)
		sameIDs(t, "bulk", res.IDs, bruteWindow(ds, w))
	}
	for _, p := range ds.Points(30, 6) {
		benv.Buf.Clear()
		res := bulk.PointQuery(p)
		sameIDs(t, "bulk-point", res.IDs, brutePoint(ds, p))
	}
}

func TestBulkLoadUnitInvariants(t *testing.T) {
	ds := testDataset(128)
	c, _ := bulkLoaded(t, ds, 0.9)
	smax := ds.Spec.SmaxBytes()
	objects := 0
	c.Tree().WalkNodes(func(n *rtree.Node) bool {
		if !n.IsLeaf() {
			return true
		}
		u := c.units[n.ID]
		if u == nil {
			t.Fatalf("leaf %d without unit", n.ID)
		}
		if u.used > smax {
			t.Fatalf("unit of %d bytes exceeds Smax", u.used)
		}
		if len(u.objects) != len(n.Entries) {
			t.Fatalf("leaf %d: %d entries, %d unit objects", n.ID, len(n.Entries), len(u.objects))
		}
		objects += len(n.Entries)
		return true
	})
	if objects != len(ds.Objects) {
		t.Fatalf("units hold %d of %d objects", objects, len(ds.Objects))
	}
}

func TestBulkLoadConstructionFarCheaperThanDynamic(t *testing.T) {
	ds := testDataset(64) // ~2054 objects
	p := geom.R(0, 0, 1, 1)
	_ = p

	dynEnv := NewEnv(50)
	dyn := NewCluster(dynEnv, ClusterConfig{SmaxBytes: ds.Spec.SmaxBytes()})
	dynEnv.Disk.ResetCost()
	for i, o := range ds.Objects {
		dyn.Insert(o, ds.MBRs[i])
	}
	dyn.Flush()
	dynEnv.Buf.Clear()
	dynCost := dynEnv.Disk.Cost().TimeMS(dynEnv.Params())

	bulkEnv := NewEnv(50)
	bulk := NewCluster(bulkEnv, ClusterConfig{SmaxBytes: ds.Spec.SmaxBytes()})
	bulkEnv.Disk.ResetCost()
	bulk.BulkLoadHilbert(ds.Objects, ds.MBRs, 0.9)
	bulkEnv.Buf.Clear()
	bulkCost := bulkEnv.Disk.Cost().TimeMS(bulkEnv.Params())

	// The bulk load writes units sequentially and never splits; it runs
	// several times cheaper than dynamic insertion (4.4x at this scale,
	// growing with data size). Its cost is within ~60% of the raw
	// transfer floor (one write per object page).
	if bulkCost*3 > dynCost {
		t.Fatalf("bulk load %.0f ms not dramatically cheaper than dynamic %.0f ms", bulkCost, dynCost)
	}

	// And the packed store must still win big windows like the dynamic one.
	ws := ds.Windows(0.01, 20, 7)
	var dynMS, bulkMS float64
	for _, w := range ws {
		dynEnv.Buf.Clear()
		dynMS += dyn.WindowQuery(w, TechComplete).Cost.TimeMS(dynEnv.Params())
		bulkEnv.Buf.Clear()
		bulkMS += bulk.WindowQuery(w, TechComplete).Cost.TimeMS(bulkEnv.Params())
	}
	if bulkMS > dynMS*1.3 {
		t.Fatalf("packed store queries (%.0f ms) much worse than dynamic (%.0f ms)", bulkMS, dynMS)
	}
}

func TestBulkLoadStorageUtilization(t *testing.T) {
	ds := testDataset(128)
	dynamic := buildAll(t, ds, 512)["cluster"]
	packed, _ := bulkLoaded(t, ds, 0.9)
	if packed.Stats().OccupiedPages > dynamic.Stats().OccupiedPages {
		t.Fatalf("Hilbert packing (%d pages) must not waste more than dynamic (%d pages)",
			packed.Stats().OccupiedPages, dynamic.Stats().OccupiedPages)
	}
}

func TestBulkLoadEdgeCases(t *testing.T) {
	ds := testDataset(128)
	env := NewEnv(64)
	c := NewCluster(env, ClusterConfig{SmaxBytes: ds.Spec.SmaxBytes()})
	c.BulkLoadHilbert(nil, nil, 0.9) // empty load is a no-op
	if c.NumUnits() != 0 {
		t.Fatal("empty bulk load created units")
	}
	// Single object.
	c.BulkLoadHilbert(ds.Objects[:1], ds.MBRs[:1], 0)
	res := c.WindowQuery(ds.MBRs[0], TechComplete)
	if len(res.IDs) != 1 {
		t.Fatalf("single-object bulk store answered %d", len(res.IDs))
	}
	// Loading a non-empty store panics.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		c.BulkLoadHilbert(ds.Objects[1:2], ds.MBRs[1:2], 0)
	}()
	// Mismatched lengths panic.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		NewCluster(NewEnv(64), ClusterConfig{SmaxBytes: 81920}).
			BulkLoadHilbert(ds.Objects[:2], ds.MBRs[:1], 0)
	}()
}

func TestBulkLoadJoinCompatible(t *testing.T) {
	// Bulk-loaded stores must work as join inputs (FetchObjects path).
	ds := testDataset(256)
	c, env := bulkLoaded(t, ds, 0.9)
	var fetched int
	c.Tree().WalkNodes(func(n *rtree.Node) bool {
		if !n.IsLeaf() || fetched > 20 {
			return fetched <= 20
		}
		id, _ := decodePayload(n.Entries[0].Payload)
		objs := c.FetchObjects(n.ID, []object.ID{id}, env.Buf, TechSLM)
		if len(objs) != 1 || objs[0].ID != id {
			t.Fatalf("fetch %d failed", id)
		}
		fetched++
		return true
	})
	if fetched == 0 {
		t.Fatal("no fetches")
	}
}
