package store

import (
	"sort"
	"testing"

	"spatialcluster/internal/datagen"
	"spatialcluster/internal/object"
)

// sortedIDs returns a sorted copy of ids (window and point answers are sets;
// only k-NN answers are ordered).
func sortedIDs(ids []object.ID) []object.ID {
	out := append([]object.ID(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func idsEqual(a, b []object.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestOrganizationsAgree is the seeded differential suite: the three
// organizations are different physical layouts of the same logical relation,
// so window, point and k-NN answer sets must be identical across them — on
// the freshly built stores, again after a deterministic mixed-workload
// churn, and regardless of the worker count of the parallel read paths.
func TestOrganizationsAgree(t *testing.T) {
	ds := datagen.Generate(datagen.Spec{
		Map: datagen.Map1, Series: datagen.SeriesA, Scale: 256, Seed: 77,
	})
	kinds := []string{"secondary", "primary", "cluster"}
	orgs := make([]Organization, len(kinds))
	for i, kind := range kinds {
		orgs[i] = buildOrg(t, kind, ds, 256)
	}

	ws := append(ds.Windows(0.001, 12, 5), ds.Windows(0.01, 6, 6)...)
	pts := ds.Points(12, 7)
	ks := []int{1, 10, 100}

	checkAgreement := func(phase string) {
		t.Helper()
		// Window queries: same answer set for every organization and every
		// cluster read technique.
		for wi, w := range ws {
			want := sortedIDs(orgs[0].WindowQuery(w, TechComplete).IDs)
			for i, org := range orgs[1:] {
				got := sortedIDs(org.WindowQuery(w, TechComplete).IDs)
				if !idsEqual(got, want) {
					t.Fatalf("%s: window %d: %s answers %v, %s answers %v",
						phase, wi, kinds[i+1], got, kinds[0], want)
				}
			}
			if c, ok := orgs[2].(*Cluster); ok {
				for _, tech := range []Technique{TechThreshold, TechSLM, TechPageByPage} {
					if got := sortedIDs(c.WindowQuery(w, tech).IDs); !idsEqual(got, want) {
						t.Fatalf("%s: window %d: cluster %v answers differ", phase, wi, tech)
					}
				}
			}
		}
		// Point queries.
		for pi, pt := range pts {
			want := sortedIDs(orgs[0].PointQuery(pt).IDs)
			for i, org := range orgs[1:] {
				if got := sortedIDs(org.PointQuery(pt).IDs); !idsEqual(got, want) {
					t.Fatalf("%s: point %d: %s and %s answers differ",
						phase, pi, kinds[i+1], kinds[0])
				}
			}
		}
		// k-NN queries: the answer is an ordered list; it must match rank by
		// rank (the tie-break by ID makes it a deterministic function of the
		// stored set, not of the physical layout).
		for _, k := range ks {
			for pi, pt := range pts {
				want := orgs[0].NearestQuery(pt, k)
				for i, org := range orgs[1:] {
					got := org.NearestQuery(pt, k)
					if !idsEqual(got.IDs, want.IDs) {
						t.Fatalf("%s: k=%d point %d: %s answers %v, %s answers %v",
							phase, k, pi, kinds[i+1], got.IDs, kinds[0], want.IDs)
					}
				}
			}
		}
		// Parallel read paths: aggregate answers must equal the serial
		// aggregate for every organization and worker count.
		for oi, org := range orgs {
			var serialW, serialN int
			for _, w := range ws {
				serialW += len(org.WindowQuery(w, TechComplete).IDs)
			}
			for _, pt := range pts {
				serialN += len(org.NearestQuery(pt, 10).IDs)
			}
			for _, workers := range []int{1, 3, 8} {
				if tr := RunWindowQueriesParallel(org, ws, TechComplete, workers); tr.Answers != serialW {
					t.Fatalf("%s: %s windows with %d workers: %d answers, want %d",
						phase, kinds[oi], workers, tr.Answers, serialW)
				}
				if tr := RunNearestQueriesParallel(org, pts, 10, workers); tr.Answers != serialN {
					t.Fatalf("%s: %s k-NN with %d workers: %d answers, want %d",
						phase, kinds[oi], workers, tr.Answers, serialN)
				}
			}
		}
	}

	checkAgreement("fresh")

	// The same deterministic churn stream against every organization, then
	// the whole agreement suite again on the mutated stores.
	ops := ds.MixedWorkload(datagen.MixSpec{Ops: 600, HotspotFrac: 0.5, Seed: 78})
	for i, org := range orgs {
		ls := newLiveSet(ds)
		applyMix(t, org, ls, ops)
		if i == 0 {
			// Sanity: the stream actually mutated the store.
			if got := org.Stats().Objects; got == len(ds.Objects) {
				t.Logf("churn left the object count unchanged at %d", got)
			}
		}
	}
	checkAgreement("after churn")

	// Agreement must also hold against ground truth: the cluster answers
	// equal a brute-force scan of the live set.
	ls := newLiveSet(ds)
	for _, op := range ops {
		switch op.Kind {
		case datagen.OpInsert, datagen.OpUpdate:
			ls.objs[op.Obj.ID] = op.Obj
			ls.mbrs[op.Obj.ID] = op.Key
		case datagen.OpDelete:
			delete(ls.objs, op.ID)
			delete(ls.mbrs, op.ID)
		}
	}
	for _, pt := range pts[:4] {
		wantIDs, _ := bruteKNN(ls.objs, pt, 10)
		got := orgs[2].NearestQuery(pt, 10)
		if !idsEqual(got.IDs, wantIDs) {
			t.Fatalf("after churn: cluster 10-NN at %v = %v, brute force %v", pt, got.IDs, wantIDs)
		}
	}
}
