package server

import (
	"net/http"

	"spatialcluster/internal/binproto"
	"spatialcluster/internal/framing"
	"spatialcluster/internal/geom"
	"spatialcluster/internal/object"
)

// Binary wire endpoints. Each /bin/* path is the exact semantic twin of its
// JSON sibling — same jobs, same dispatcher, same admission control and
// metrics — with the encoding swapped: the request body is one framing
// record (length-prefixed, CRC-checked) holding a binproto message, and so
// is the response. Errors are a plain HTTP status with a text body; there is
// no binary error frame to mis-parse.

// readBinRecord reads the request's single framed record, answering the 400
// itself on a torn or oversized frame.
func readBinRecord(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body := http.MaxBytesReader(w, r.Body, int64(framing.RecordSize(binproto.MaxMessage)))
	payload, err := framing.ReadRecord(body, binproto.MaxMessage)
	if err != nil {
		http.Error(w, "bad binary frame: "+err.Error(), http.StatusBadRequest)
		return nil, false
	}
	return payload, true
}

// writeBinRecord frames payload as the response body.
func writeBinRecord(w http.ResponseWriter, payload []byte) {
	w.Header().Set("Content-Type", binproto.ContentType)
	framing.AppendRecord(w, payload)
}

func (s *Server) handleBinWindow(w http.ResponseWriter, r *http.Request) {
	payload, ok := readBinRecord(w, r)
	if !ok {
		return
	}
	win, tech, err := binproto.DecodeWindowReq(payload)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	j := &job{
		kind:   jobWindow,
		window: geom.R(win[0], win[1], win[2], win[3]),
		tech:   tech,
		done:   make(chan struct{}),
	}
	s.execute(j)
	noteJob(w, j)
	buf := binproto.GetBuf()
	defer binproto.PutBuf(buf)
	*buf = binproto.AppendQueryResp((*buf)[:0], j.qr.IDs, j.qr.Candidates)
	writeBinRecord(w, *buf)
}

func (s *Server) handleBinPoint(w http.ResponseWriter, r *http.Request) {
	payload, ok := readBinRecord(w, r)
	if !ok {
		return
	}
	pt, err := binproto.DecodePointReq(payload)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	j := &job{kind: jobPoint, pt: geom.Pt(pt[0], pt[1]), done: make(chan struct{})}
	s.execute(j)
	noteJob(w, j)
	buf := binproto.GetBuf()
	defer binproto.PutBuf(buf)
	*buf = binproto.AppendQueryResp((*buf)[:0], j.qr.IDs, j.qr.Candidates)
	writeBinRecord(w, *buf)
}

func (s *Server) handleBinKNN(w http.ResponseWriter, r *http.Request) {
	payload, ok := readBinRecord(w, r)
	if !ok {
		return
	}
	pt, k, err := binproto.DecodeKNNReq(payload)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	j := &job{kind: jobKNN, pt: geom.Pt(pt[0], pt[1]), k: k, done: make(chan struct{})}
	s.execute(j)
	noteJob(w, j)
	buf := binproto.GetBuf()
	defer binproto.PutBuf(buf)
	*buf = binproto.AppendKNNResp((*buf)[:0], j.nr.IDs, j.nr.Dists, j.nr.Candidates)
	writeBinRecord(w, *buf)
}

// decodeBinMutate parses a binary insert/update body into an engine object
// and its spatial key, answering the 400 itself.
func decodeBinMutate(w http.ResponseWriter, r *http.Request, kind byte) (*object.Object, geom.Rect, bool) {
	payload, ok := readBinRecord(w, r)
	if !ok {
		return nil, geom.Rect{}, false
	}
	o, key, err := binproto.DecodeMutateReq(payload, kind)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return nil, geom.Rect{}, false
	}
	k := o.Bounds()
	if key != nil {
		k = geom.R(key[0], key[1], key[2], key[3])
	}
	return o, k, true
}

// finishBinMutate answers a completed mutation job.
func finishBinMutate(w http.ResponseWriter, j *job) {
	noteJob(w, j)
	if j.err != nil {
		http.Error(w, j.err.Error(), http.StatusInternalServerError)
		return
	}
	buf := binproto.GetBuf()
	defer binproto.PutBuf(buf)
	*buf = binproto.AppendMutateResp((*buf)[:0], j.existed)
	writeBinRecord(w, *buf)
}

func (s *Server) handleBinInsert(w http.ResponseWriter, r *http.Request) {
	o, key, ok := decodeBinMutate(w, r, binproto.KindInsert)
	if !ok {
		return
	}
	j := &job{kind: jobInsert, obj: o, key: key, done: make(chan struct{})}
	s.execute(j)
	finishBinMutate(w, j)
}

func (s *Server) handleBinUpdate(w http.ResponseWriter, r *http.Request) {
	o, key, ok := decodeBinMutate(w, r, binproto.KindUpdate)
	if !ok {
		return
	}
	j := &job{kind: jobUpdate, obj: o, key: key, done: make(chan struct{})}
	s.execute(j)
	finishBinMutate(w, j)
}

func (s *Server) handleBinDelete(w http.ResponseWriter, r *http.Request) {
	payload, ok := readBinRecord(w, r)
	if !ok {
		return
	}
	id, err := binproto.DecodeDeleteReq(payload)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	j := &job{kind: jobDelete, id: object.ID(id), done: make(chan struct{})}
	s.execute(j)
	finishBinMutate(w, j)
}
