package server

import (
	"net/http"

	"spatialcluster/internal/binproto"
	"spatialcluster/internal/framing"
	"spatialcluster/internal/geom"
	"spatialcluster/internal/object"
	"spatialcluster/internal/obs"
	"spatialcluster/internal/store"
)

// Binary wire endpoints. Each /bin/* path is the exact semantic twin of its
// JSON sibling — same jobs, same dispatcher, same admission control and
// metrics — with the encoding swapped: the request body is one framing
// record (length-prefixed, CRC-checked) holding a binproto message, and so
// is the response. Errors are a plain HTTP status with a text body; there is
// no binary error frame to mis-parse.

// readBinRecord reads the request's single framed record, answering the 400
// itself on a torn or oversized frame.
func readBinRecord(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body := http.MaxBytesReader(w, r.Body, int64(framing.RecordSize(binproto.MaxMessage)))
	payload, err := framing.ReadRecord(body, binproto.MaxMessage)
	if err != nil {
		http.Error(w, "bad binary frame: "+err.Error(), http.StatusBadRequest)
		return nil, false
	}
	return payload, true
}

// writeBinRecord frames payload as the response body.
func writeBinRecord(w http.ResponseWriter, payload []byte) {
	w.Header().Set("Content-Type", binproto.ContentType)
	framing.AppendRecord(w, payload)
}

// binTrace starts the trace of a traced binary request, adopting a nonzero
// propagated trace ID (the traced kinds carry it right after the kind byte).
func binTrace(traceID uint64) *obs.Trace {
	if traceID != 0 {
		return obs.NewTraceWithID(traceID)
	}
	return obs.NewTrace()
}

func (s *Server) handleBinWindow(w http.ResponseWriter, r *http.Request) {
	payload, ok := readBinRecord(w, r)
	if !ok {
		return
	}
	var (
		win  [4]float64
		tech store.Technique
		err  error
		tr   *obs.Trace
	)
	if traced := binproto.Traced(payload); traced {
		var tid uint64
		win, tech, tid, err = binproto.DecodeTracedWindowReq(payload)
		if err == nil {
			tr = binTrace(tid)
		}
	} else {
		win, tech, err = binproto.DecodeWindowReq(payload)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	j := &job{
		kind:   jobWindow,
		window: geom.R(win[0], win[1], win[2], win[3]),
		tech:   tech,
		tr:     tr,
		done:   make(chan struct{}),
	}
	s.execute(j)
	noteJob(w, j)
	buf := binproto.GetBuf()
	defer binproto.PutBuf(buf)
	if tr != nil {
		*buf = binproto.AppendTracedQueryResp((*buf)[:0], j.qr.IDs, j.qr.Candidates,
			tr.ID(), tr.TotalMS(), tr.Spans())
	} else {
		*buf = binproto.AppendQueryResp((*buf)[:0], j.qr.IDs, j.qr.Candidates)
	}
	writeBinRecord(w, *buf)
}

func (s *Server) handleBinPoint(w http.ResponseWriter, r *http.Request) {
	payload, ok := readBinRecord(w, r)
	if !ok {
		return
	}
	var (
		pt  [2]float64
		err error
		tr  *obs.Trace
	)
	if binproto.Traced(payload) {
		var tid uint64
		pt, tid, err = binproto.DecodeTracedPointReq(payload)
		if err == nil {
			tr = binTrace(tid)
		}
	} else {
		pt, err = binproto.DecodePointReq(payload)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	j := &job{kind: jobPoint, pt: geom.Pt(pt[0], pt[1]), tr: tr, done: make(chan struct{})}
	s.execute(j)
	noteJob(w, j)
	buf := binproto.GetBuf()
	defer binproto.PutBuf(buf)
	if tr != nil {
		*buf = binproto.AppendTracedQueryResp((*buf)[:0], j.qr.IDs, j.qr.Candidates,
			tr.ID(), tr.TotalMS(), tr.Spans())
	} else {
		*buf = binproto.AppendQueryResp((*buf)[:0], j.qr.IDs, j.qr.Candidates)
	}
	writeBinRecord(w, *buf)
}

func (s *Server) handleBinKNN(w http.ResponseWriter, r *http.Request) {
	payload, ok := readBinRecord(w, r)
	if !ok {
		return
	}
	var (
		pt  [2]float64
		k   int
		err error
		tr  *obs.Trace
	)
	if binproto.Traced(payload) {
		var tid uint64
		pt, k, tid, err = binproto.DecodeTracedKNNReq(payload)
		if err == nil {
			tr = binTrace(tid)
		}
	} else {
		pt, k, err = binproto.DecodeKNNReq(payload)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	j := &job{kind: jobKNN, pt: geom.Pt(pt[0], pt[1]), k: k, tr: tr, done: make(chan struct{})}
	s.execute(j)
	noteJob(w, j)
	buf := binproto.GetBuf()
	defer binproto.PutBuf(buf)
	if tr != nil {
		*buf = binproto.AppendTracedKNNResp((*buf)[:0], j.nr.IDs, j.nr.Dists, j.nr.Candidates,
			tr.ID(), tr.TotalMS(), tr.Spans())
	} else {
		*buf = binproto.AppendKNNResp((*buf)[:0], j.nr.IDs, j.nr.Dists, j.nr.Candidates)
	}
	writeBinRecord(w, *buf)
}

// decodeBinMutate parses a binary insert/update body into an engine object
// and its spatial key, answering the 400 itself.
func decodeBinMutate(w http.ResponseWriter, r *http.Request, kind byte) (*object.Object, geom.Rect, bool) {
	payload, ok := readBinRecord(w, r)
	if !ok {
		return nil, geom.Rect{}, false
	}
	o, key, err := binproto.DecodeMutateReq(payload, kind)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return nil, geom.Rect{}, false
	}
	k := o.Bounds()
	if key != nil {
		k = geom.R(key[0], key[1], key[2], key[3])
	}
	return o, k, true
}

// finishBinMutate answers a completed mutation job.
func finishBinMutate(w http.ResponseWriter, j *job) {
	noteJob(w, j)
	if j.err != nil {
		http.Error(w, j.err.Error(), http.StatusInternalServerError)
		return
	}
	buf := binproto.GetBuf()
	defer binproto.PutBuf(buf)
	*buf = binproto.AppendMutateResp((*buf)[:0], j.existed)
	writeBinRecord(w, *buf)
}

func (s *Server) handleBinInsert(w http.ResponseWriter, r *http.Request) {
	o, key, ok := decodeBinMutate(w, r, binproto.KindInsert)
	if !ok {
		return
	}
	j := &job{kind: jobInsert, obj: o, key: key, done: make(chan struct{})}
	s.execute(j)
	finishBinMutate(w, j)
}

func (s *Server) handleBinUpdate(w http.ResponseWriter, r *http.Request) {
	o, key, ok := decodeBinMutate(w, r, binproto.KindUpdate)
	if !ok {
		return
	}
	j := &job{kind: jobUpdate, obj: o, key: key, done: make(chan struct{})}
	s.execute(j)
	finishBinMutate(w, j)
}

func (s *Server) handleBinDelete(w http.ResponseWriter, r *http.Request) {
	payload, ok := readBinRecord(w, r)
	if !ok {
		return
	}
	id, err := binproto.DecodeDeleteReq(payload)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	j := &job{kind: jobDelete, id: object.ID(id), done: make(chan struct{})}
	s.execute(j)
	finishBinMutate(w, j)
}
