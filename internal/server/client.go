package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"spatialcluster/internal/binproto"
	"spatialcluster/internal/framing"
	"spatialcluster/internal/geom"
	"spatialcluster/internal/object"
	"spatialcluster/internal/store"
)

// Client is a typed HTTP client for the server API. It is what the load
// generator, the serving benchmark and the tests speak; curl speaks the same
// JSON (see the README's serving quickstart).
type Client struct {
	Base string       // e.g. "http://127.0.0.1:8080"
	HTTP *http.Client // nil selects http.DefaultClient
	// Retry enables transparent retry of transient failures (nil disables).
	Retry *Retry
	// Binary reroutes the six data-plane operations (Window, Point, KNN,
	// Insert, Update, Delete) and the traced query calls over the /bin/*
	// endpoints: framed binproto messages instead of JSON, same answers
	// (traced queries use the traced message kinds, which carry the span
	// tree in the response). Control-plane calls stay JSON. A binary window
	// request always names its technique explicitly — "" encodes as
	// complete, not the server's default.
	Binary bool
	// Counters, when set, tallies every HTTP exchange and retry this client
	// performs — the router attaches one per shard client so retry activity
	// (hidden by design from callers) still shows up in /metrics.
	Counters *RetryCounters
	// ctx bounds retry sleeps; set it with WithContext.
	ctx context.Context
}

// RetryCounters is a thread-safe tally of a client's transparent retries,
// split by cause. All methods accept a nil receiver.
type RetryCounters struct {
	// Attempts counts HTTP exchanges performed, first tries included.
	Attempts atomic.Int64
	// RetriedOverload counts retries caused by a 429 admission rejection;
	// RetriedConn counts retries caused by connection-level failures (reset,
	// refused, broken pipe, unexpected EOF).
	RetriedOverload atomic.Int64
	RetriedConn     atomic.Int64
}

func (rc *RetryCounters) attempt() {
	if rc != nil {
		rc.Attempts.Add(1)
	}
}

func (rc *RetryCounters) retried(err error) {
	if rc == nil {
		return
	}
	if IsOverload(err) {
		rc.RetriedOverload.Add(1)
	} else {
		rc.RetriedConn.Add(1)
	}
}

// RetryStats is a point-in-time copy of RetryCounters for wire surfaces.
type RetryStats struct {
	Attempts        int64 `json:"attempts"`
	RetriedOverload int64 `json:"retried_overload"`
	RetriedConn     int64 `json:"retried_conn"`
}

// Stats snapshots the counters (zero value on a nil receiver).
func (rc *RetryCounters) Stats() RetryStats {
	if rc == nil {
		return RetryStats{}
	}
	return RetryStats{
		Attempts:        rc.Attempts.Load(),
		RetriedOverload: rc.RetriedOverload.Load(),
		RetriedConn:     rc.RetriedConn.Load(),
	}
}

// Retry configures transient-failure handling: 429 admission rejections and
// connection-level failures (reset, refused, unexpected EOF) are retried with
// exponential backoff and deterministic seeded jitter, up to Attempts tries
// total. Requests that reached the server and were answered with any other
// status are never retried — a 4xx/5xx answer is a verdict, not a glitch —
// and neither are non-idempotent requests that may have been applied; every
// retried failure happened before an answer was committed (429) or instead
// of one (the connection died).
type Retry struct {
	// Attempts bounds the total tries, first one included (default 4).
	Attempts int
	// BaseDelay is the backoff before the first retry; it doubles per retry
	// (default 10 ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 500 ms).
	MaxDelay time.Duration
	// Seed drives the jitter, so a retry schedule is reproducible. The
	// effective delay is uniform in [delay/2, delay).
	Seed int64
}

func (r Retry) withDefaults() Retry {
	if r.Attempts <= 0 {
		r.Attempts = 4
	}
	if r.BaseDelay <= 0 {
		r.BaseDelay = 10 * time.Millisecond
	}
	if r.MaxDelay <= 0 {
		r.MaxDelay = 500 * time.Millisecond
	}
	return r
}

// WithContext returns a shallow copy whose retry sleeps abort when ctx does.
func (c *Client) WithContext(ctx context.Context) *Client {
	cp := *c
	cp.ctx = ctx
	return &cp
}

// retryable reports whether err is a transient failure worth retrying: an
// admission 429 or a connection-level failure where no answer was received.
func retryable(err error) bool {
	if IsOverload(err) {
		return true
	}
	if errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.EPIPE) {
		return true
	}
	// A connection torn down mid-response surfaces as one of these.
	return errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF)
}

// NewClient builds a client whose transport keeps up to maxConns idle
// connections to the server — a closed-loop load generator with C clients
// needs C keep-alive connections or it measures TCP handshakes.
func NewClient(base string, maxConns int) *Client {
	tr := http.DefaultTransport.(*http.Transport).Clone()
	if maxConns > 0 {
		tr.MaxIdleConns = maxConns
		tr.MaxIdleConnsPerHost = maxConns
	}
	return &Client{Base: base, HTTP: &http.Client{Transport: tr}}
}

// StatusError is a non-2xx answer: the HTTP status plus the server's error
// message. Overload shows up as Code 429.
type StatusError struct {
	Code    int
	Message string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("server answered %d: %s", e.Code, e.Message)
}

// IsOverload reports whether err is a 429 admission rejection.
func IsOverload(err error) bool {
	se, ok := err.(*StatusError)
	return ok && se.Code == http.StatusTooManyRequests
}

// call POSTs req as JSON to path and decodes the answer into resp (which may
// be nil), retrying transient failures when Retry is set. GET endpoints pass
// a nil req. Optional hdrs are extra request headers (the traced calls
// forward the distributed trace ID this way).
func (c *Client) call(method, path string, req, resp any, hdrs ...[2]string) error {
	var data []byte
	if req != nil {
		var err error
		data, err = json.Marshal(req)
		if err != nil {
			return fmt.Errorf("encoding %s request: %w", path, err)
		}
	}
	if c.Retry == nil {
		return c.callOnce(method, path, data, req != nil, resp, hdrs)
	}
	r := c.Retry.withDefaults()
	rng := rand.New(rand.NewSource(r.Seed))
	delay := r.BaseDelay
	var err error
	for attempt := 1; ; attempt++ {
		err = c.callOnce(method, path, data, req != nil, resp, hdrs)
		if err == nil || !retryable(err) || attempt == r.Attempts {
			return err
		}
		c.Counters.retried(err)
		// Jittered sleep in [delay/2, delay), context-aware.
		d := delay/2 + time.Duration(rng.Int63n(int64(delay/2)))
		if !c.sleep(d) {
			return fmt.Errorf("%s: retry aborted after %d attempts: %w", path, attempt, err)
		}
		if delay *= 2; delay > r.MaxDelay {
			delay = r.MaxDelay
		}
	}
}

// sleep waits d, honoring the client's context; it reports false when the
// context expired first.
func (c *Client) sleep(d time.Duration) bool {
	if c.ctx == nil {
		time.Sleep(d)
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-c.ctx.Done():
		return false
	}
}

// callOnce performs one HTTP exchange.
func (c *Client) callOnce(method, path string, data []byte, hasBody bool, resp any, hdrs [][2]string) error {
	c.Counters.attempt()
	var body io.Reader
	if hasBody {
		body = bytes.NewReader(data)
	}
	hreq, err := http.NewRequest(method, c.Base+path, body)
	if err != nil {
		return err
	}
	if c.ctx != nil {
		hreq = hreq.WithContext(c.ctx)
	}
	if hasBody {
		hreq.Header.Set("Content-Type", "application/json")
	}
	for _, h := range hdrs {
		hreq.Header.Set(h[0], h[1])
	}
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	hresp, err := hc.Do(hreq)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, hresp.Body) // drain so the connection is reused
		hresp.Body.Close()
	}()
	if hresp.StatusCode >= 400 {
		var er ErrorResponse
		json.NewDecoder(hresp.Body).Decode(&er)
		return &StatusError{Code: hresp.StatusCode, Message: er.Error}
	}
	if resp == nil {
		return nil
	}
	if err := json.NewDecoder(hresp.Body).Decode(resp); err != nil {
		return fmt.Errorf("decoding %s answer: %w", path, err)
	}
	return nil
}

// Post sends req to an arbitrary POST endpoint and decodes the answer into
// resp — the escape hatch for tests and tooling that need to craft raw
// bodies past the typed methods' validation.
func (c *Client) Post(path string, req, resp any) error {
	return c.call(http.MethodPost, path, req, resp)
}

// callBin POSTs payload as one framed binproto record and returns the
// response record's payload, retrying transient failures when Retry is set.
func (c *Client) callBin(path string, payload []byte) ([]byte, error) {
	var body bytes.Buffer
	if _, err := framing.AppendRecord(&body, payload); err != nil {
		return nil, fmt.Errorf("encoding %s request: %w", path, err)
	}
	data := body.Bytes()
	if c.Retry == nil {
		return c.callBinOnce(path, data)
	}
	r := c.Retry.withDefaults()
	rng := rand.New(rand.NewSource(r.Seed))
	delay := r.BaseDelay
	for attempt := 1; ; attempt++ {
		resp, err := c.callBinOnce(path, data)
		if err == nil || !retryable(err) || attempt == r.Attempts {
			return resp, err
		}
		c.Counters.retried(err)
		d := delay/2 + time.Duration(rng.Int63n(int64(delay/2)))
		if !c.sleep(d) {
			return nil, fmt.Errorf("%s: retry aborted after %d attempts: %w", path, attempt, err)
		}
		if delay *= 2; delay > r.MaxDelay {
			delay = r.MaxDelay
		}
	}
}

// callBinOnce performs one binary HTTP exchange. Error bodies may be JSON
// (the shared admission wrapper) or plain text (the binary handlers); both
// become the StatusError message.
func (c *Client) callBinOnce(path string, data []byte) ([]byte, error) {
	c.Counters.attempt()
	hreq, err := http.NewRequest(http.MethodPost, c.Base+path, bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	if c.ctx != nil {
		hreq = hreq.WithContext(c.ctx)
	}
	hreq.Header.Set("Content-Type", binproto.ContentType)
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	hresp, err := hc.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, hresp.Body)
		hresp.Body.Close()
	}()
	if hresp.StatusCode >= 400 {
		raw, _ := io.ReadAll(io.LimitReader(hresp.Body, 4096))
		msg := strings.TrimSpace(string(raw))
		var er ErrorResponse
		if json.Unmarshal(raw, &er) == nil && er.Error != "" {
			msg = er.Error
		}
		return nil, &StatusError{Code: hresp.StatusCode, Message: msg}
	}
	payload, err := framing.ReadRecord(hresp.Body, binproto.MaxMessage)
	if err != nil {
		return nil, fmt.Errorf("decoding %s answer: %w", path, err)
	}
	return payload, nil
}

// Window runs a window query; tech "" selects the server default (on a
// Binary client, "" encodes as complete).
func (c *Client) Window(w geom.Rect, tech string) (QueryResponse, error) {
	if c.Binary {
		return c.binWindow(w, tech)
	}
	var out QueryResponse
	err := c.call(http.MethodPost, "/query/window", WindowRequest{
		Window: [4]float64{w.MinX, w.MinY, w.MaxX, w.MaxY}, Tech: tech,
	}, &out)
	return out, err
}

func (c *Client) binWindow(w geom.Rect, tech string) (QueryResponse, error) {
	t, err := store.TechByName(tech)
	if err != nil {
		return QueryResponse{}, err
	}
	buf := binproto.GetBuf()
	defer binproto.PutBuf(buf)
	*buf = binproto.AppendWindowReq((*buf)[:0], [4]float64{w.MinX, w.MinY, w.MaxX, w.MaxY}, t)
	payload, err := c.callBin("/bin/window", *buf)
	if err != nil {
		return QueryResponse{}, err
	}
	ids, cand, err := binproto.DecodeQueryResp(payload, []uint64{})
	if err != nil {
		return QueryResponse{}, err
	}
	return QueryResponse{IDs: ids, Candidates: cand}, nil
}

// WindowTraced runs a window query with per-request tracing: the answer
// carries the server's stage spans in Trace.
func (c *Client) WindowTraced(w geom.Rect, tech string) (QueryResponse, error) {
	return c.WindowTracedID(w, tech, 0)
}

// WindowTracedID is WindowTraced with an explicit trace identity to adopt —
// the router's shard fan-out passes its own trace ID so every sub-trace joins
// one distributed trace. traceID 0 lets the server mint one.
func (c *Client) WindowTracedID(w geom.Rect, tech string, traceID uint64) (QueryResponse, error) {
	if c.Binary {
		return c.binWindowTraced(w, tech, traceID)
	}
	var out QueryResponse
	err := c.call(http.MethodPost, "/query/window?trace=1", WindowRequest{
		Window: [4]float64{w.MinX, w.MinY, w.MaxX, w.MaxY}, Tech: tech,
	}, &out, traceHeader(traceID)...)
	return out, err
}

// traceHeader builds the trace-propagation header for a nonzero trace ID.
func traceHeader(traceID uint64) [][2]string {
	if traceID == 0 {
		return nil
	}
	return [][2]string{{TraceIDHeader, strconv.FormatUint(traceID, 10)}}
}

func (c *Client) binWindowTraced(w geom.Rect, tech string, traceID uint64) (QueryResponse, error) {
	t, err := store.TechByName(tech)
	if err != nil {
		return QueryResponse{}, err
	}
	buf := binproto.GetBuf()
	defer binproto.PutBuf(buf)
	*buf = binproto.AppendTracedWindowReq((*buf)[:0],
		[4]float64{w.MinX, w.MinY, w.MaxX, w.MaxY}, t, traceID)
	payload, err := c.callBin("/bin/window", *buf)
	if err != nil {
		return QueryResponse{}, err
	}
	ids, cand, tid, total, spans, err := binproto.DecodeTracedQueryResp(payload, []uint64{})
	if err != nil {
		return QueryResponse{}, err
	}
	return QueryResponse{IDs: ids, Candidates: cand,
		Trace: &TraceInfo{TraceID: tid, TotalMS: total, Spans: spans}}, nil
}

// Point runs a point query.
func (c *Client) Point(p geom.Point) (QueryResponse, error) {
	if c.Binary {
		return c.binPoint(p)
	}
	var out QueryResponse
	err := c.call(http.MethodPost, "/query/point", PointRequest{Point: [2]float64{p.X, p.Y}}, &out)
	return out, err
}

func (c *Client) binPoint(p geom.Point) (QueryResponse, error) {
	buf := binproto.GetBuf()
	defer binproto.PutBuf(buf)
	*buf = binproto.AppendPointReq((*buf)[:0], [2]float64{p.X, p.Y})
	payload, err := c.callBin("/bin/point", *buf)
	if err != nil {
		return QueryResponse{}, err
	}
	ids, cand, err := binproto.DecodeQueryResp(payload, []uint64{})
	if err != nil {
		return QueryResponse{}, err
	}
	return QueryResponse{IDs: ids, Candidates: cand}, nil
}

// PointTraced runs a point query with per-request tracing.
func (c *Client) PointTraced(p geom.Point) (QueryResponse, error) {
	return c.PointTracedID(p, 0)
}

// PointTracedID is PointTraced adopting an explicit trace identity.
func (c *Client) PointTracedID(p geom.Point, traceID uint64) (QueryResponse, error) {
	if c.Binary {
		return c.binPointTraced(p, traceID)
	}
	var out QueryResponse
	err := c.call(http.MethodPost, "/query/point?trace=1",
		PointRequest{Point: [2]float64{p.X, p.Y}}, &out, traceHeader(traceID)...)
	return out, err
}

func (c *Client) binPointTraced(p geom.Point, traceID uint64) (QueryResponse, error) {
	buf := binproto.GetBuf()
	defer binproto.PutBuf(buf)
	*buf = binproto.AppendTracedPointReq((*buf)[:0], [2]float64{p.X, p.Y}, traceID)
	payload, err := c.callBin("/bin/point", *buf)
	if err != nil {
		return QueryResponse{}, err
	}
	ids, cand, tid, total, spans, err := binproto.DecodeTracedQueryResp(payload, []uint64{})
	if err != nil {
		return QueryResponse{}, err
	}
	return QueryResponse{IDs: ids, Candidates: cand,
		Trace: &TraceInfo{TraceID: tid, TotalMS: total, Spans: spans}}, nil
}

// KNN runs a k-nearest-neighbor query.
func (c *Client) KNN(p geom.Point, k int) (KNNResponse, error) {
	if c.Binary {
		return c.binKNN(p, k)
	}
	var out KNNResponse
	err := c.call(http.MethodPost, "/query/knn", KNNRequest{Point: [2]float64{p.X, p.Y}, K: k}, &out)
	return out, err
}

func (c *Client) binKNN(p geom.Point, k int) (KNNResponse, error) {
	buf := binproto.GetBuf()
	defer binproto.PutBuf(buf)
	*buf = binproto.AppendKNNReq((*buf)[:0], [2]float64{p.X, p.Y}, k)
	payload, err := c.callBin("/bin/knn", *buf)
	if err != nil {
		return KNNResponse{}, err
	}
	ids, dists, cand, err := binproto.DecodeKNNResp(payload, []uint64{}, []float64{})
	if err != nil {
		return KNNResponse{}, err
	}
	return KNNResponse{IDs: ids, Dists: dists, Candidates: cand}, nil
}

// KNNTraced runs a k-nearest-neighbor query with per-request tracing.
func (c *Client) KNNTraced(p geom.Point, k int) (KNNResponse, error) {
	return c.KNNTracedID(p, k, 0)
}

// KNNTracedID is KNNTraced adopting an explicit trace identity.
func (c *Client) KNNTracedID(p geom.Point, k int, traceID uint64) (KNNResponse, error) {
	if c.Binary {
		return c.binKNNTraced(p, k, traceID)
	}
	var out KNNResponse
	err := c.call(http.MethodPost, "/query/knn?trace=1",
		KNNRequest{Point: [2]float64{p.X, p.Y}, K: k}, &out, traceHeader(traceID)...)
	return out, err
}

func (c *Client) binKNNTraced(p geom.Point, k int, traceID uint64) (KNNResponse, error) {
	buf := binproto.GetBuf()
	defer binproto.PutBuf(buf)
	*buf = binproto.AppendTracedKNNReq((*buf)[:0], [2]float64{p.X, p.Y}, k, traceID)
	payload, err := c.callBin("/bin/knn", *buf)
	if err != nil {
		return KNNResponse{}, err
	}
	ids, dists, cand, tid, total, spans, err := binproto.DecodeTracedKNNResp(payload, []uint64{}, []float64{})
	if err != nil {
		return KNNResponse{}, err
	}
	return KNNResponse{IDs: ids, Dists: dists, Candidates: cand,
		Trace: &TraceInfo{TraceID: tid, TotalMS: total, Spans: spans}}, nil
}

// Insert stores an object under the given spatial key (typically
// o.Bounds(), possibly enlarged).
func (c *Client) Insert(o *object.Object, key geom.Rect) error {
	if c.Binary {
		_, err := c.binMutate("/bin/insert", binproto.KindInsert, o, key)
		return err
	}
	j, err := FromObject(o)
	if err != nil {
		return err
	}
	k := [4]float64{key.MinX, key.MinY, key.MaxX, key.MaxY}
	return c.call(http.MethodPost, "/insert", InsertRequest{Object: j, Key: &k}, nil)
}

// Update replaces the object of the same ID.
func (c *Client) Update(o *object.Object, key geom.Rect) (bool, error) {
	if c.Binary {
		return c.binMutate("/bin/update", binproto.KindUpdate, o, key)
	}
	j, err := FromObject(o)
	if err != nil {
		return false, err
	}
	k := [4]float64{key.MinX, key.MinY, key.MaxX, key.MaxY}
	var out MutateResponse
	err = c.call(http.MethodPost, "/update", InsertRequest{Object: j, Key: &k}, &out)
	return out.Existed, err
}

func (c *Client) binMutate(path string, kind byte, o *object.Object, key geom.Rect) (bool, error) {
	k := [4]float64{key.MinX, key.MinY, key.MaxX, key.MaxY}
	buf := binproto.GetBuf()
	defer binproto.PutBuf(buf)
	*buf = binproto.AppendMutateReq((*buf)[:0], kind, o, &k)
	payload, err := c.callBin(path, *buf)
	if err != nil {
		return false, err
	}
	return binproto.DecodeMutateResp(payload)
}

// Delete removes an object, reporting whether it existed.
func (c *Client) Delete(id object.ID) (bool, error) {
	if c.Binary {
		buf := binproto.GetBuf()
		defer binproto.PutBuf(buf)
		*buf = binproto.AppendDeleteReq((*buf)[:0], uint64(id))
		payload, err := c.callBin("/bin/delete", *buf)
		if err != nil {
			return false, err
		}
		return binproto.DecodeMutateResp(payload)
	}
	var out MutateResponse
	err := c.call(http.MethodPost, "/delete", DeleteRequest{ID: uint64(id)}, &out)
	return out.Existed, err
}

// Recluster runs one maintenance pass of the named policy.
func (c *Client) Recluster(policy string) (ReclusterResponse, error) {
	var out ReclusterResponse
	err := c.call(http.MethodPost, "/recluster", ReclusterRequest{Policy: policy}, &out)
	return out, err
}

// Flush flushes the served store.
func (c *Client) Flush() error {
	return c.call(http.MethodPost, "/flush", struct{}{}, nil)
}

// Save snapshots the served store to a file on the server's filesystem.
func (c *Client) Save(path string) (SaveResponse, error) {
	var out SaveResponse
	err := c.call(http.MethodPost, "/save", PathRequest{Path: path}, &out)
	return out, err
}

// Load swaps the served store for one reopened from a snapshot.
func (c *Client) Load(path string) (StatsResponse, error) {
	var out StatsResponse
	err := c.call(http.MethodPost, "/load", PathRequest{Path: path}, &out)
	return out, err
}

// Stats fetches the storage statistics.
func (c *Client) Stats() (StatsResponse, error) {
	var out StatsResponse
	err := c.call(http.MethodGet, "/stats", nil, &out)
	return out, err
}

// Metrics fetches the server metrics.
func (c *Client) Metrics() (Metrics, error) {
	var out Metrics
	err := c.call(http.MethodGet, "/metrics", nil, &out)
	return out, err
}

// SlowLog fetches the slow-query log.
func (c *Client) SlowLog() (SlowLogResponse, error) {
	var out SlowLogResponse
	err := c.call(http.MethodGet, "/debug/slowlog", nil, &out)
	return out, err
}

// Raw GETs a path and returns the body bytes as-is — for scraping the
// Prometheus representation of /metrics, which is not JSON.
func (c *Client) Raw(path string) ([]byte, error) {
	hreq, err := http.NewRequest(http.MethodGet, c.Base+path, nil)
	if err != nil {
		return nil, err
	}
	if c.ctx != nil {
		hreq = hreq.WithContext(c.ctx)
	}
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	hresp, err := hc.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer hresp.Body.Close()
	body, err := io.ReadAll(hresp.Body)
	if err != nil {
		return nil, err
	}
	if hresp.StatusCode >= 400 {
		return nil, &StatusError{Code: hresp.StatusCode, Message: string(body)}
	}
	return body, nil
}
