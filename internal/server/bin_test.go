package server_test

import (
	"reflect"
	"testing"

	"spatialcluster/internal/datagen"
	"spatialcluster/internal/geom"
	"spatialcluster/internal/server"
)

// compareClients runs the same queries through two clients of one server and
// requires field-for-field identical answers — the binary encoding must be
// invisible.
func compareClients(t *testing.T, phase string, jc, bc *server.Client,
	ws []geom.Rect, pts []geom.Point, ks []int) {
	t.Helper()
	for wi, w := range ws {
		for _, tech := range []string{"", "complete", "threshold", "slm", "vector", "page"} {
			jr, err := jc.Window(w, tech)
			if err != nil {
				t.Fatalf("%s: json window %d tech %q: %v", phase, wi, tech, err)
			}
			br, err := bc.Window(w, tech)
			if err != nil {
				t.Fatalf("%s: bin window %d tech %q: %v", phase, wi, tech, err)
			}
			if !reflect.DeepEqual(jr.IDs, br.IDs) || jr.Candidates != br.Candidates {
				t.Fatalf("%s: window %d tech %q: json %d ids/%d cand, bin %d ids/%d cand",
					phase, wi, tech, len(jr.IDs), jr.Candidates, len(br.IDs), br.Candidates)
			}
		}
	}
	for pi, pt := range pts {
		jr, err := jc.Point(pt)
		if err != nil {
			t.Fatalf("%s: json point %d: %v", phase, pi, err)
		}
		br, err := bc.Point(pt)
		if err != nil {
			t.Fatalf("%s: bin point %d: %v", phase, pi, err)
		}
		if !reflect.DeepEqual(jr.IDs, br.IDs) || jr.Candidates != br.Candidates {
			t.Fatalf("%s: point %d: answers differ between encodings", phase, pi)
		}
	}
	for _, k := range ks {
		for pi, pt := range pts {
			jr, err := jc.KNN(pt, k)
			if err != nil {
				t.Fatalf("%s: json %d-NN %d: %v", phase, k, pi, err)
			}
			br, err := bc.KNN(pt, k)
			if err != nil {
				t.Fatalf("%s: bin %d-NN %d: %v", phase, k, pi, err)
			}
			if !reflect.DeepEqual(jr.IDs, br.IDs) || !reflect.DeepEqual(jr.Dists, br.Dists) ||
				jr.Candidates != br.Candidates {
				t.Fatalf("%s: %d-NN %d: answers differ between encodings", phase, k, pi)
			}
		}
	}
}

// TestBinaryDifferential is the binary protocol's differential suite: for
// every organization kind, every typed call over /bin/* must match both the
// JSON endpoints (same server, two encodings) and an in-process reference —
// on the fresh store, and again after a deterministic churn stream applied
// through the binary mutation endpoints.
func TestBinaryDifferential(t *testing.T) {
	ds := datagen.Generate(datagen.Spec{
		Map: datagen.Map1, Series: datagen.SeriesA, Scale: 256, Seed: 42,
	})
	ws := append(ds.Windows(0.001, 4, 5), ds.Windows(0.01, 3, 6)...)
	pts := ds.Points(6, 7)
	ks := []int{1, 10}
	ops := ds.MixedWorkload(datagen.MixSpec{Ops: 300, HotspotFrac: 0.5, Seed: 91})

	for _, kind := range []string{"secondary", "primary", "cluster"} {
		t.Run(kind, func(t *testing.T) {
			served := buildOrg(t, kind, ds)
			ref := buildOrg(t, kind, ds)
			_, jc := startServer(t, served, server.Config{})
			bc := *jc
			bc.Binary = true

			checkAgainstInProcess(t, "fresh-bin", &bc, ref, ws, pts, ks)
			compareClients(t, "fresh", jc, &bc, ws, pts, ks)

			// Churn through the binary mutation endpoints, mirrored on the
			// in-process reference — existed answers must agree op by op.
			for oi, op := range ops {
				switch op.Kind {
				case datagen.OpInsert:
					if err := bc.Insert(op.Obj, op.Key); err != nil {
						t.Fatalf("op %d: binary insert: %v", oi, err)
					}
					ref.Insert(op.Obj, op.Key)
				case datagen.OpDelete:
					existed, err := bc.Delete(op.ID)
					if err != nil {
						t.Fatalf("op %d: binary delete: %v", oi, err)
					}
					if want := ref.Delete(op.ID); existed != want {
						t.Fatalf("op %d: binary delete %d existed=%v, in-process %v", oi, op.ID, existed, want)
					}
				case datagen.OpUpdate:
					existed, err := bc.Update(op.Obj, op.Key)
					if err != nil {
						t.Fatalf("op %d: binary update: %v", oi, err)
					}
					if want := ref.Update(op.Obj, op.Key); existed != want {
						t.Fatalf("op %d: binary update %d existed=%v, in-process %v", oi, op.Obj.ID, existed, want)
					}
				}
			}
			ref.Flush()
			if err := jc.Flush(); err != nil {
				t.Fatalf("flush: %v", err)
			}

			checkAgainstInProcess(t, "churned-bin", &bc, ref, ws, pts, ks)
			compareClients(t, "churned", jc, &bc, ws, pts, ks)
		})
	}
}

// TestBinaryErrors checks the binary endpoints' failure discipline: malformed
// frames and payloads answer a descriptive 4xx, never a 500 or a broken
// frame, and the binary client surfaces them as StatusError.
func TestBinaryErrors(t *testing.T) {
	ds := datagen.Generate(datagen.Spec{
		Map: datagen.Map1, Series: datagen.SeriesA, Scale: 64, Seed: 2,
	})
	served := buildOrg(t, "cluster", ds)
	_, jc := startServer(t, served, server.Config{})
	bc := *jc
	bc.Binary = true

	// k = 0 is rejected client-side by the codec's decoder on the server.
	if _, err := bc.KNN(geom.Pt(0.5, 0.5), 0); err == nil {
		t.Fatal("0-NN over binary did not fail")
	} else if se, ok := err.(*server.StatusError); !ok || se.Code != 400 {
		t.Fatalf("0-NN over binary: %v, want a 400 StatusError", err)
	}

	// A JSON body on a binary endpoint is a framing error, not a panic. The
	// JSON client can't parse the plain-text error body, so only the status
	// survives — which is the contract.
	raw, err := jc.Raw("/stats")
	if err != nil || len(raw) == 0 {
		t.Fatalf("stats: %v", err)
	}
	err = jc.Post("/bin/window", struct{ X int }{1}, nil)
	if se, ok := err.(*server.StatusError); !ok || se.Code != 400 {
		t.Fatalf("JSON body on /bin/window: %v, want a 400 StatusError", err)
	}

	// An unknown technique byte is rejected with the codec's message.
	if _, err := bc.Window(geom.R(0, 0, 1, 1), "nonsense"); err == nil {
		t.Fatal("unknown technique over binary did not fail")
	}
}
