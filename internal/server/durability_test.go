package server_test

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"spatialcluster"
	"spatialcluster/internal/datagen"
	"spatialcluster/internal/disk"
	"spatialcluster/internal/geom"
	"spatialcluster/internal/object"
	"spatialcluster/internal/server"
	"spatialcluster/internal/store"
	"spatialcluster/internal/wal"
)

// walOrg builds a WAL-attached cluster store over ds at dir.
func walOrg(t *testing.T, ds *datagen.Dataset, dir string) *wal.Store {
	t.Helper()
	ws, err := wal.Create(buildOrg(t, "cluster", ds), dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return ws
}

// testObj builds a small polyline object for mutation tests.
func testObj(id uint64) *object.Object {
	x := float64(id%97) / 100
	return object.New(object.ID(1_000_000+id), geom.NewPolyline([]geom.Point{
		geom.Pt(x, 0.3), geom.Pt(x+0.01, 0.31),
	}), 200)
}

// TestWALServing drives mutations and queries through a server over a
// WAL-attached store, checks /stats reports the log, and verifies that a
// crash (dropping the store unflushed) loses nothing that was acknowledged.
func TestWALServing(t *testing.T) {
	ds := datagen.Generate(datagen.Spec{Map: datagen.Map1, Series: datagen.SeriesA, Scale: 512, Seed: 5})
	dir := filepath.Join(t.TempDir(), "wal")
	ws := walOrg(t, ds, dir)
	_, c := startServer(t, ws, server.Config{})

	const n = 24
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < n/4; i++ {
				o := testObj(uint64(w*100 + i))
				if err := c.Insert(o, o.Bounds()); err != nil {
					t.Errorf("insert: %v", err)
				}
			}
		}(w)
	}
	wg.Wait()
	if _, err := c.Delete(testObj(0).ID); err != nil {
		t.Fatal(err)
	}

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.WAL == nil {
		t.Fatal("/stats of a WAL-attached store reports no wal block")
	}
	if st.WAL.LastLSN != n+1 {
		t.Fatalf("/stats last_lsn %d, want %d", st.WAL.LastLSN, n+1)
	}
	if st.WAL.Syncs < 1 || st.WAL.Syncs > n+1 {
		t.Fatalf("/stats syncs %d outside [1, %d]", st.WAL.Syncs, n+1)
	}
	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.Storage.WAL == nil || m.Storage.WAL.LastLSN != st.WAL.LastLSN {
		t.Fatalf("/metrics wal block %+v does not match /stats %+v", m.Storage.WAL, st.WAL)
	}

	w := geom.R(0, 0, 1, 1)
	want := sortedIDs(ws.WindowQuery(w, store.TechComplete).IDs)
	// Crash: recover from the directory without flushing or closing ws. The
	// live log keeps its file handles; recovery only reads.
	rec, rst, err := wal.Recover(dir, func(p disk.Params) (*store.Env, error) {
		return store.NewEnvWithParams(128, p), nil
	}, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rst.Replayed != n+1 || rst.TornTail {
		t.Fatalf("recovery replayed %d records (torn %v), want %d clean", rst.Replayed, rst.TornTail, n+1)
	}
	got := sortedIDs(rec.WindowQuery(w, store.TechComplete).IDs)
	if !equalU64(want, got) {
		t.Fatalf("recovered store answers %d objects, served store %d", len(got), len(want))
	}
}

// flakyTransport fails the first n round trips at the connection level, then
// delegates.
type flakyTransport struct {
	inner http.RoundTripper
	fails atomic.Int64
}

func (f *flakyTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if f.fails.Add(-1) >= 0 {
		return nil, &net.OpError{Op: "read", Err: fmt.Errorf("wrapped: %w", syscall.ECONNRESET)}
	}
	return f.inner.RoundTrip(r)
}

// TestClientRetryFlaky checks that the typed client converges through a
// flaky transport (connection resets) and through 429 admission rejections,
// with bounded attempts and context-aware sleeps.
func TestClientRetryFlaky(t *testing.T) {
	retry := &server.Retry{Attempts: 5, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond, Seed: 42}
	t.Run("connection resets", func(t *testing.T) {
		ds := datagen.Generate(datagen.Spec{Map: datagen.Map1, Series: datagen.SeriesA, Scale: 1024, Seed: 5})
		_, c := startServer(t, buildOrg(t, "cluster", ds), server.Config{})
		ft := &flakyTransport{inner: c.HTTP.Transport}
		ft.fails.Store(3)
		c.HTTP = &http.Client{Transport: ft}
		c.Retry = retry
		st, err := c.Stats()
		if err != nil {
			t.Fatalf("client did not converge through 3 resets: %v", err)
		}
		if st.Objects != len(ds.Objects) {
			t.Fatalf("converged answer reports %d objects, want %d", st.Objects, len(ds.Objects))
		}
	})
	t.Run("429 overload", func(t *testing.T) {
		var calls atomic.Int64
		hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if calls.Add(1) <= 3 {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusTooManyRequests)
				fmt.Fprintln(w, `{"error":"overloaded"}`)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintln(w, `{"org":"cluster org.","objects":7}`)
		}))
		defer hs.Close()
		c := server.NewClient(hs.URL, 4)
		c.Retry = retry
		st, err := c.Stats()
		if err != nil {
			t.Fatalf("client did not converge through 429s: %v", err)
		}
		if st.Objects != 7 || calls.Load() != 4 {
			t.Fatalf("objects %d after %d calls, want 7 after 4", st.Objects, calls.Load())
		}
	})
	t.Run("attempts bounded", func(t *testing.T) {
		var calls atomic.Int64
		hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			calls.Add(1)
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprintln(w, `{"error":"overloaded"}`)
		}))
		defer hs.Close()
		c := server.NewClient(hs.URL, 4)
		c.Retry = retry
		if _, err := c.Stats(); !server.IsOverload(err) {
			t.Fatalf("exhausted retries should surface the 429, got %v", err)
		}
		if calls.Load() != int64(retry.Attempts) {
			t.Fatalf("%d calls, want exactly %d attempts", calls.Load(), retry.Attempts)
		}
	})
	t.Run("context aborts the backoff", func(t *testing.T) {
		hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprintln(w, `{"error":"overloaded"}`)
		}))
		defer hs.Close()
		c := server.NewClient(hs.URL, 4)
		c.Retry = &server.Retry{Attempts: 100, BaseDelay: 50 * time.Millisecond, Seed: 1}
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		defer cancel()
		start := time.Now()
		_, err := c.WithContext(ctx).Stats()
		if err == nil {
			t.Fatal("cancelled retry loop reported success")
		}
		if e := time.Since(start); e > 2*time.Second {
			t.Fatalf("retry loop outlived its context by %v", e)
		}
	})
}

// TestShutdownRacesMutations races Shutdown against in-flight mutations:
// workers insert objects with disjoint ID ranges until the server refuses,
// and afterwards the store must hold exactly the base data plus every
// acknowledged insert — as if the acknowledged subset had been applied
// lock-step serially (inserts of distinct IDs commute). Runs plain and
// WAL-attached; the WAL arm additionally recovers the log and requires the
// recovered store to agree.
func TestShutdownRacesMutations(t *testing.T) {
	ds := datagen.Generate(datagen.Spec{Map: datagen.Map1, Series: datagen.SeriesA, Scale: 512, Seed: 5})
	for _, withWAL := range []bool{false, true} {
		name := "plain"
		if withWAL {
			name = "wal"
		}
		t.Run(name, func(t *testing.T) {
			var org store.Organization
			dir := filepath.Join(t.TempDir(), "wal")
			if withWAL {
				org = walOrg(t, ds, dir)
			} else {
				org = buildOrg(t, "cluster", ds)
			}
			s := server.New(org, server.Config{})
			hs := httptest.NewServer(s.Handler())
			defer hs.Close()

			base := make(map[uint64]bool)
			for _, id := range org.WindowQuery(geom.R(0, 0, 1, 1), store.TechComplete).IDs {
				base[uint64(id)] = true
			}

			const workers = 8
			acked := make([]([]uint64), workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					c := server.NewClient(hs.URL, 2)
					for i := 0; ; i++ {
						o := testObj(uint64(w*10000 + i))
						if err := c.Insert(o, o.Bounds()); err != nil {
							return // refused: shutting down (503) or overloaded
						}
						acked[w] = append(acked[w], uint64(o.ID))
					}
				}(w)
			}
			time.Sleep(20 * time.Millisecond) // let the workers get going
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := s.Shutdown(ctx); err != nil {
				t.Fatalf("shutdown racing mutations: %v", err)
			}
			wg.Wait()

			want := make(map[uint64]bool, len(base))
			for id := range base {
				want[id] = true
			}
			total := 0
			for _, ids := range acked {
				total += len(ids)
				for _, id := range ids {
					want[id] = true
				}
			}
			if total == 0 {
				t.Fatal("no insert was acknowledged before the drain; the race tested nothing")
			}
			check := func(label string, got []object.ID) {
				if len(got) != len(want) {
					t.Fatalf("%s: %d objects, want %d (base %d + %d acked)",
						label, len(got), len(want), len(base), total)
				}
				for _, id := range got {
					if !want[uint64(id)] {
						t.Fatalf("%s: object %d present but never acknowledged", label, id)
					}
				}
			}
			check("drained store", org.WindowQuery(geom.R(0, 0, 1, 1), store.TechComplete).IDs)

			if withWAL {
				if err := spatialcluster.CloseStore(org); err != nil {
					t.Fatal(err)
				}
				rec, _, err := spatialcluster.RecoverStore(spatialcluster.StoreConfig{WALPath: dir, BufferPages: 128})
				if err != nil {
					t.Fatal(err)
				}
				defer spatialcluster.CloseStore(rec)
				check("recovered store", rec.WindowQuery(geom.R(0, 0, 1, 1), store.TechComplete).IDs)
			}
		})
	}
}
