package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"spatialcluster/internal/geom"
	"spatialcluster/internal/object"
	"spatialcluster/internal/obs"
)

// This file defines the wire types of the HTTP/JSON API and the codec
// between them and the engine's native types. Object IDs travel as JSON
// integers: encoding/json round-trips uint64 digits exactly (Go clients are
// lossless); JavaScript clients must treat them as opaque strings.

// ObjectJSON is the wire form of a stored spatial object.
type ObjectJSON struct {
	ID       uint64       `json:"id"`
	Kind     string       `json:"kind"` // "polyline" or "polygon"
	Vertices [][2]float64 `json:"vertices"`
	Pad      int          `json:"pad,omitempty"` // extra payload bytes
}

// toObject validates and converts the wire form. The constructors of geom
// panic on degenerate vertex chains, so the counts are checked here first —
// a malformed request must become a 400, never a server panic.
func (j ObjectJSON) toObject() (*object.Object, error) {
	if j.Pad < 0 {
		return nil, fmt.Errorf("object %d: negative pad %d", j.ID, j.Pad)
	}
	pts := make([]geom.Point, len(j.Vertices))
	for i, v := range j.Vertices {
		pts[i] = geom.Pt(v[0], v[1])
	}
	var g geom.Geometry
	switch j.Kind {
	case "polyline":
		if len(pts) < 2 {
			return nil, fmt.Errorf("object %d: polyline needs at least 2 vertices, got %d", j.ID, len(pts))
		}
		g = geom.NewPolyline(pts)
	case "polygon":
		if len(pts) < 3 {
			return nil, fmt.Errorf("object %d: polygon needs at least 3 vertices, got %d", j.ID, len(pts))
		}
		g = geom.NewPolygon(pts)
	default:
		return nil, fmt.Errorf("object %d: unknown kind %q (want polyline or polygon)", j.ID, j.Kind)
	}
	return object.New(object.ID(j.ID), g, j.Pad), nil
}

// ToObject validates and converts the wire form into an engine object — the
// exported face of toObject for gateways (the router) that need the engine
// type to re-encode a request.
func (j ObjectJSON) ToObject() (*object.Object, error) { return j.toObject() }

// FromObject converts an engine object to its wire form.
func FromObject(o *object.Object) (ObjectJSON, error) {
	j := ObjectJSON{ID: uint64(o.ID), Pad: o.Pad}
	var pts []geom.Point
	switch g := o.Geom.(type) {
	case *geom.Polyline:
		j.Kind, pts = "polyline", g.Vertices
	case *geom.Polygon:
		j.Kind, pts = "polygon", g.Vertices
	default:
		return ObjectJSON{}, fmt.Errorf("object %d: geometry %T has no wire form", o.ID, o.Geom)
	}
	j.Vertices = make([][2]float64, len(pts))
	for i, p := range pts {
		j.Vertices[i] = [2]float64{p.X, p.Y}
	}
	return j, nil
}

// WindowRequest asks for the objects intersecting a window.
type WindowRequest struct {
	Window [4]float64 `json:"window"` // x1,y1,x2,y2 (any corner order)
	Tech   string     `json:"tech,omitempty"`
}

// PointRequest asks for the objects containing a point.
type PointRequest struct {
	Point [2]float64 `json:"point"`
}

// KNNRequest asks for the k objects nearest to a point.
type KNNRequest struct {
	Point [2]float64 `json:"point"`
	K     int        `json:"k"`
}

// QueryResponse answers a window or point query.
type QueryResponse struct {
	IDs        []uint64   `json:"ids"`
	Candidates int        `json:"candidates"`
	Trace      *TraceInfo `json:"trace,omitempty"` // set by ?trace=1
}

// KNNResponse answers a k-NN query: IDs in ascending exact-distance order
// (ties by ID) with the matching distances.
type KNNResponse struct {
	IDs        []uint64   `json:"ids"`
	Dists      []float64  `json:"dists"`
	Candidates int        `json:"candidates"`
	Trace      *TraceInfo `json:"trace,omitempty"` // set by ?trace=1
}

// TraceInfo is the per-request trace attached to an answer when the request
// asked for one with ?trace=1: the end-to-end wall time and the attributed
// stage spans (queue wait, execution, WAL commit) with their I/O deltas.
// Through the router the spans form a tree — one sub-trace grafted in per
// shard touched — and TraceID is the identity shared by every hop.
type TraceInfo struct {
	TraceID uint64     `json:"trace_id,omitempty"`
	TotalMS float64    `json:"total_ms"`
	Spans   []obs.Span `json:"spans"`
}

// InsertRequest stores an object. Key is the spatial key (MBR); omitted or
// empty it defaults to the object's bounds.
type InsertRequest struct {
	Object ObjectJSON  `json:"object"`
	Key    *[4]float64 `json:"key,omitempty"`
}

// DeleteRequest removes an object by ID.
type DeleteRequest struct {
	ID uint64 `json:"id"`
}

// MutateResponse answers insert/update/delete.
type MutateResponse struct {
	Existed bool       `json:"existed"` // delete/update: the object was present
	Trace   *TraceInfo `json:"trace,omitempty"`
}

// SlowLogResponse is the body of GET /debug/slowlog: the retained slow-query
// ring, newest first.
type SlowLogResponse struct {
	ThresholdMS float64         `json:"threshold_ms"` // negative: recording disabled
	Total       int64           `json:"total"`        // entries ever recorded, evicted included
	Entries     []obs.SlowEntry `json:"entries"`
}

// ReclusterRequest runs one maintenance pass of the named policy.
type ReclusterRequest struct {
	Policy string `json:"policy"`
}

// ReclusterResponse reports the maintenance pass.
type ReclusterResponse struct {
	RepackedUnits int    `json:"repacked_units"`
	Rebuilt       bool   `json:"rebuilt"`
	Note          string `json:"note,omitempty"` // set when the organization has no cluster units
}

// PathRequest names a snapshot file for /save and /load.
type PathRequest struct {
	Path string `json:"path"`
}

// SaveResponse reports a written snapshot.
type SaveResponse struct {
	Path  string `json:"path"`
	Bytes int64  `json:"bytes"`
}

// StatsResponse reports the served organization and its storage statistics.
type StatsResponse struct {
	Org           string  `json:"org"`
	Objects       int     `json:"objects"`
	OccupiedPages int     `json:"occupied_pages"`
	DirPages      int     `json:"dir_pages"`
	LeafPages     int     `json:"leaf_pages"`
	ObjectPages   int     `json:"object_pages"`
	ObjectBytes   int64   `json:"object_bytes"`
	LiveBytes     int64   `json:"live_bytes"`
	DeadBytes     int64   `json:"dead_bytes"`
	Units         int     `json:"units"`
	ExtentUtil    float64 `json:"extent_util"`
	// WAL reports the write-ahead log of a WAL-attached store (absent when
	// the store was started without one).
	WAL *WALStats `json:"wal,omitempty"`
	// Warning is set by /load when the swap succeeded but cleanup of the
	// previous store did not (the answer is still the new store's stats).
	Warning string `json:"warning,omitempty"`
}

// WALStats reports the write-ahead log inside StatsResponse and Metrics.
// The fsync quantiles come from a per-sync latency histogram — group commit
// means one sync can cover many mutations, so the tail here is the tail of
// commit durability, not of individual requests.
type WALStats struct {
	Segments    int     `json:"segments"`
	Bytes       int64   `json:"bytes"`
	LastLSN     uint64  `json:"last_lsn"`
	Syncs       int64   `json:"syncs"`
	LastFsyncMS float64 `json:"last_fsync_ms"`
	FsyncP50MS  float64 `json:"fsync_p50_ms"`
	FsyncP95MS  float64 `json:"fsync_p95_ms"`
	FsyncP99MS  float64 `json:"fsync_p99_ms"`
}

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
}

// maxBodyBytes bounds request bodies; a polyline of a million vertices is a
// client bug, not a request.
const maxBodyBytes = 8 << 20

// readJSON decodes the request body into v, rejecting trailing garbage.
func readJSON(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decoding request body: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("trailing data after request body")
	}
	return nil
}

// writeJSON encodes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v) // a failed write means the client is gone; nothing to do
}

// writeError sends an ErrorResponse.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// idsToWire converts object IDs to the wire form.
func idsToWire(ids []object.ID) []uint64 {
	out := make([]uint64, len(ids))
	for i, id := range ids {
		out[i] = uint64(id)
	}
	return out
}
