package server

import (
	"sort"
	"sync"
	"time"

	"spatialcluster/internal/buffer"
	"spatialcluster/internal/disk"
)

// EndpointMetrics are the latency counters of one endpoint.
type EndpointMetrics struct {
	Count    int64   `json:"count"`
	Errors   int64   `json:"errors"` // 4xx/5xx answers (429 counted separately)
	Rejected int64   `json:"rejected"`
	TotalMS  float64 `json:"total_ms"`
	MaxMS    float64 `json:"max_ms"`
	MeanMS   float64 `json:"mean_ms"`
	LastMS   float64 `json:"last_ms"`

	totalNS int64
	maxNS   int64
	lastNS  int64
}

// Metrics is the body of GET /metrics: everything the operator needs to see
// whether the paper's cost rankings survive sustained load.
type Metrics struct {
	Org     string        `json:"org"`
	Uptime  float64       `json:"uptime_sec"`
	Storage StatsResponse `json:"storage"`

	// Buffer behaviour since the server started serving.
	BufferHits     int64   `json:"buffer_hits"`
	BufferMisses   int64   `json:"buffer_misses"`
	BufferHitRatio float64 `json:"buffer_hit_ratio"`

	// Modelled I/O charged so far (the paper's metric) next to the real
	// wall-clock I/O the backend performed (zero on the memory backend).
	ModelCost     disk.Cost `json:"model_cost"`
	ModelIOSec    float64   `json:"model_io_sec"`
	MeasuredIOSec float64   `json:"measured_io_sec"`
	MeasuredReads int64     `json:"measured_reads"`
	Throttle      float64   `json:"throttle"`

	// Micro-batch shape: how many dispatcher batches ran, how many queries
	// they carried, and the largest batch observed.
	Batches     int64   `json:"batches"`
	BatchedJobs int64   `json:"batched_queries"`
	MeanBatch   float64 `json:"mean_batch"`
	MaxBatch    int64   `json:"max_batch"`
	SerialMode  bool    `json:"serial_mode"`
	InFlight    int     `json:"in_flight"`
	MaxInFlight int     `json:"max_in_flight"`
	Rejected    int64   `json:"rejected_total"` // 429 answers

	Endpoints map[string]EndpointMetrics `json:"endpoints"`
}

// metricsRegistry aggregates per-endpoint counters and batch shape.
type metricsRegistry struct {
	start time.Time

	mu        sync.Mutex
	endpoints map[string]*EndpointMetrics

	// batch shape, written by the dispatcher
	batches     int64
	batchedJobs int64
	maxBatch    int64
	rejected    int64
}

func newMetricsRegistry() *metricsRegistry {
	return &metricsRegistry{start: time.Now(), endpoints: make(map[string]*EndpointMetrics)}
}

func (m *metricsRegistry) endpoint(path string) *EndpointMetrics {
	ep := m.endpoints[path]
	if ep == nil {
		ep = &EndpointMetrics{}
		m.endpoints[path] = ep
	}
	return ep
}

// record tallies one completed request.
func (m *metricsRegistry) record(path string, d time.Duration, isErr bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ep := m.endpoint(path)
	ep.Count++
	if isErr {
		ep.Errors++
	}
	ns := d.Nanoseconds()
	ep.totalNS += ns
	ep.lastNS = ns
	if ns > ep.maxNS {
		ep.maxNS = ns
	}
}

// reject tallies one 429 answer.
func (m *metricsRegistry) reject(path string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.endpoint(path).Rejected++
	m.rejected++
}

// batch tallies one dispatcher batch of n queries.
func (m *metricsRegistry) batch(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.batches++
	m.batchedJobs += int64(n)
	if int64(n) > m.maxBatch {
		m.maxBatch = int64(n)
	}
}

// snapshot fills the registry-owned fields of a Metrics value.
func (m *metricsRegistry) snapshot(out *Metrics) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out.Uptime = time.Since(m.start).Seconds()
	out.Batches = m.batches
	out.BatchedJobs = m.batchedJobs
	out.MaxBatch = m.maxBatch
	out.Rejected = m.rejected
	if m.batches > 0 {
		out.MeanBatch = float64(m.batchedJobs) / float64(m.batches)
	}
	out.Endpoints = make(map[string]EndpointMetrics, len(m.endpoints))
	names := make([]string, 0, len(m.endpoints))
	for path := range m.endpoints {
		names = append(names, path)
	}
	sort.Strings(names)
	for _, path := range names {
		ep := *m.endpoints[path]
		ep.TotalMS = float64(ep.totalNS) / 1e6
		ep.MaxMS = float64(ep.maxNS) / 1e6
		ep.LastMS = float64(ep.lastNS) / 1e6
		if ep.Count > 0 {
			ep.MeanMS = ep.TotalMS / float64(ep.Count)
		}
		out.Endpoints[path] = ep
	}
}

// fillBuffer derives the buffer ratio fields from a buffer.Stats snapshot.
func fillBuffer(out *Metrics, st buffer.Stats) {
	out.BufferHits, out.BufferMisses = st.Hits, st.Misses
	if total := st.Hits + st.Misses; total > 0 {
		out.BufferHitRatio = float64(st.Hits) / float64(total)
	}
}
