package server

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"spatialcluster/internal/buffer"
	"spatialcluster/internal/disk"
	"spatialcluster/internal/obs"
)

// EndpointMetrics are the latency counters of one endpoint as reported in the
// /metrics JSON body.
type EndpointMetrics struct {
	Count    int64   `json:"count"`
	Errors   int64   `json:"errors"` // 4xx/5xx answers (429 counted separately)
	Rejected int64   `json:"rejected"`
	TotalMS  float64 `json:"total_ms"`
	MaxMS    float64 `json:"max_ms"`
	MeanMS   float64 `json:"mean_ms"`
	LastMS   float64 `json:"last_ms"`
	P50MS    float64 `json:"p50_ms"`
	P95MS    float64 `json:"p95_ms"`
	P99MS    float64 `json:"p99_ms"`
}

// Metrics is the body of GET /metrics: everything the operator needs to see
// whether the paper's cost rankings survive sustained load.
type Metrics struct {
	Org     string        `json:"org"`
	Uptime  float64       `json:"uptime_sec"`
	Storage StatsResponse `json:"storage"`

	// Buffer behaviour since the server started serving.
	BufferHits     int64   `json:"buffer_hits"`
	BufferMisses   int64   `json:"buffer_misses"`
	BufferHitRatio float64 `json:"buffer_hit_ratio"`

	// Modelled I/O charged so far (the paper's metric) next to the real
	// wall-clock I/O the backend performed (zero on the memory backend).
	ModelCost     disk.Cost `json:"model_cost"`
	ModelIOSec    float64   `json:"model_io_sec"`
	MeasuredIOSec float64   `json:"measured_io_sec"`
	MeasuredReads int64     `json:"measured_reads"`
	Throttle      float64   `json:"throttle"`

	// Micro-batch shape: how many dispatcher batches ran, how many queries
	// they carried, and the largest batch observed.
	Batches     int64   `json:"batches"`
	BatchedJobs int64   `json:"batched_queries"`
	MeanBatch   float64 `json:"mean_batch"`
	MaxBatch    int64   `json:"max_batch"`
	SerialMode  bool    `json:"serial_mode"`
	InFlight    int     `json:"in_flight"`
	MaxInFlight int     `json:"max_in_flight"`
	Rejected    int64   `json:"rejected_total"` // 429 answers

	// Slow-query log shape: entries ever recorded and the threshold.
	SlowLogTotal int64   `json:"slowlog_total"`
	SlowLogMS    float64 `json:"slowlog_threshold_ms"`

	Endpoints map[string]EndpointMetrics `json:"endpoints"`
}

// endpointCounters are the live per-endpoint counters. Everything is atomic so
// recording never contends with scraping: a request on the hot path does a
// handful of uncontended atomic adds, and a /metrics scrape reads snapshots
// without stalling the dispatcher.
type endpointCounters struct {
	count    atomic.Int64
	errors   atomic.Int64
	rejected atomic.Int64
	totalNS  atomic.Int64
	lastNS   atomic.Int64
	maxNS    atomic.Int64
	hist     obs.Histogram
}

func (c *endpointCounters) observe(d time.Duration, isErr bool) {
	ns := d.Nanoseconds()
	c.count.Add(1)
	if isErr {
		c.errors.Add(1)
	}
	c.totalNS.Add(ns)
	c.lastNS.Store(ns)
	for {
		old := c.maxNS.Load()
		if ns <= old || c.maxNS.CompareAndSwap(old, ns) {
			break
		}
	}
	c.hist.Observe(d)
}

// metricsRegistry aggregates per-endpoint counters and batch shape. The
// endpoint map is a sync.Map (endpoints are created once and then only read);
// all counters are atomics — there is no registry-wide lock.
type metricsRegistry struct {
	start time.Time

	endpoints sync.Map // path -> *endpointCounters

	// batch shape, written by the dispatcher
	batches     atomic.Int64
	batchedJobs atomic.Int64
	maxBatch    atomic.Int64
	rejected    atomic.Int64
}

func newMetricsRegistry() *metricsRegistry {
	return &metricsRegistry{start: time.Now()}
}

func (m *metricsRegistry) endpoint(path string) *endpointCounters {
	if ep, ok := m.endpoints.Load(path); ok {
		return ep.(*endpointCounters)
	}
	ep, _ := m.endpoints.LoadOrStore(path, &endpointCounters{})
	return ep.(*endpointCounters)
}

// record tallies one completed request.
func (m *metricsRegistry) record(path string, d time.Duration, isErr bool) {
	m.endpoint(path).observe(d, isErr)
}

// reject tallies one 429 answer.
func (m *metricsRegistry) reject(path string) {
	m.endpoint(path).rejected.Add(1)
	m.rejected.Add(1)
}

// batch tallies one dispatcher batch of n queries.
func (m *metricsRegistry) batch(n int) {
	m.batches.Add(1)
	m.batchedJobs.Add(int64(n))
	for {
		old := m.maxBatch.Load()
		if int64(n) <= old || m.maxBatch.CompareAndSwap(old, int64(n)) {
			break
		}
	}
}

// each visits the endpoints in sorted path order with their live counters.
func (m *metricsRegistry) each(fn func(path string, c *endpointCounters)) {
	var names []string
	m.endpoints.Range(func(k, _ any) bool {
		names = append(names, k.(string))
		return true
	})
	sort.Strings(names)
	for _, path := range names {
		ep, _ := m.endpoints.Load(path)
		fn(path, ep.(*endpointCounters))
	}
}

// snapshot fills the registry-owned fields of a Metrics value.
func (m *metricsRegistry) snapshot(out *Metrics) {
	out.Uptime = time.Since(m.start).Seconds()
	out.Batches = m.batches.Load()
	out.BatchedJobs = m.batchedJobs.Load()
	out.MaxBatch = m.maxBatch.Load()
	out.Rejected = m.rejected.Load()
	if out.Batches > 0 {
		out.MeanBatch = float64(out.BatchedJobs) / float64(out.Batches)
	}
	out.Endpoints = make(map[string]EndpointMetrics)
	m.each(func(path string, c *endpointCounters) {
		ep := EndpointMetrics{
			Count:    c.count.Load(),
			Errors:   c.errors.Load(),
			Rejected: c.rejected.Load(),
			TotalMS:  float64(c.totalNS.Load()) / 1e6,
			MaxMS:    float64(c.maxNS.Load()) / 1e6,
			LastMS:   float64(c.lastNS.Load()) / 1e6,
		}
		if ep.Count > 0 {
			ep.MeanMS = ep.TotalMS / float64(ep.Count)
			s := c.hist.Snapshot()
			ep.P50MS = s.Quantile(0.50).Seconds() * 1000
			ep.P95MS = s.Quantile(0.95).Seconds() * 1000
			ep.P99MS = s.Quantile(0.99).Seconds() * 1000
		}
		out.Endpoints[path] = ep
	})
}

// fillBuffer derives the buffer ratio fields from a buffer.Stats snapshot.
func fillBuffer(out *Metrics, st buffer.Stats) {
	out.BufferHits, out.BufferMisses = st.Hits, st.Misses
	if total := st.Hits + st.Misses; total > 0 {
		out.BufferHitRatio = float64(st.Hits) / float64(total)
	}
}
