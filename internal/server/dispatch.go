package server

import (
	"time"

	"spatialcluster/internal/geom"
	"spatialcluster/internal/store"
)

// The micro-batching dispatcher. Query handlers do not execute queries
// themselves: they enqueue a job and wait. A single dispatcher goroutine
// takes the first pending job, keeps accumulating whatever arrives within
// Config.BatchWait (up to Config.MaxBatch), and executes the whole batch on
// the store's parallel worker pool. Under a burst of B concurrent clients
// the batch runs with min(B, Config.Workers) parallelism — the server
// inherits the parallel query engine instead of serializing queries.
//
// Mutations never enter the dispatcher: the organization's mutating methods
// take the environment's write lock themselves and therefore serialize
// against in-flight batches (whose queries hold the read lock).

// jobKind discriminates the query types a batch can mix.
type jobKind uint8

const (
	jobWindow jobKind = iota
	jobPoint
	jobKNN
)

// job is one enqueued query plus its result slot. The handler owns the
// request/response fields; the dispatcher fills exactly one result field and
// closes done.
type job struct {
	kind   jobKind
	window geom.Rect
	tech   store.Technique
	pt     geom.Point
	k      int

	qr   store.QueryResult
	nr   store.NearestResult
	done chan struct{}
}

// dispatch is the dispatcher goroutine. It exits when quit closes; Shutdown
// closes quit only after draining all in-flight requests, so no job can be
// left waiting.
func (s *Server) dispatch() {
	defer s.dispatchWG.Done()
	for {
		var first *job
		select {
		case first = <-s.jobs:
		case <-s.quit:
			return
		}
		batch := make([]*job, 1, s.cfg.MaxBatch)
		batch[0] = first
		if s.cfg.BatchWait > 0 {
			timer := time.NewTimer(s.cfg.BatchWait)
		accumulate:
			for len(batch) < s.cfg.MaxBatch {
				select {
				case j := <-s.jobs:
					batch = append(batch, j)
				case <-timer.C:
					break accumulate
				}
			}
			timer.Stop()
		} else {
			// No accumulation window: take only what has already arrived.
		drain:
			for len(batch) < s.cfg.MaxBatch {
				select {
				case j := <-s.jobs:
					batch = append(batch, j)
				default:
					break drain
				}
			}
		}
		s.runBatch(batch)
	}
}

// runBatch executes one micro-batch: jobs are grouped by kind (window jobs
// further by technique, k-NN jobs carry per-query k), each group runs on the
// store's batched entry point, and every job's done channel is closed once
// its result slot is filled.
func (s *Server) runBatch(batch []*job) {
	org := s.organization()
	s.metrics.batch(len(batch))

	winByTech := make(map[store.Technique][]int)
	var ptIdx, knnIdx []int
	for i, j := range batch {
		switch j.kind {
		case jobWindow:
			winByTech[j.tech] = append(winByTech[j.tech], i)
		case jobPoint:
			ptIdx = append(ptIdx, i)
		case jobKNN:
			knnIdx = append(knnIdx, i)
		}
	}

	for tech, idxs := range winByTech {
		ws := make([]geom.Rect, len(idxs))
		for bi, i := range idxs {
			ws[bi] = batch[i].window
		}
		for bi, r := range store.RunWindowQueryBatch(org, ws, tech, s.cfg.Workers) {
			batch[idxs[bi]].qr = r
		}
	}
	if len(ptIdx) > 0 {
		pts := make([]geom.Point, len(ptIdx))
		for bi, i := range ptIdx {
			pts[bi] = batch[i].pt
		}
		for bi, r := range store.RunPointQueryBatch(org, pts, s.cfg.Workers) {
			batch[ptIdx[bi]].qr = r
		}
	}
	if len(knnIdx) > 0 {
		pts := make([]geom.Point, len(knnIdx))
		ks := make([]int, len(knnIdx))
		for bi, i := range knnIdx {
			pts[bi], ks[bi] = batch[i].pt, batch[i].k
		}
		for bi, r := range store.RunNearestQueryBatch(org, pts, ks, s.cfg.Workers) {
			batch[knnIdx[bi]].nr = r
		}
	}

	for _, j := range batch {
		close(j.done)
	}
}

// execute runs one query job: through the dispatcher in batched mode, or
// serialized behind the exclusive query mutex otherwise. Serial mode is the
// pre-dispatcher baseline — the only safe way to serve the store's
// single-threaded query API under concurrent mutations is one query at a
// time — and exists so the serving benchmark can measure what micro-batching
// buys (ServerBench's batch_gain verdict).
func (s *Server) execute(j *job) {
	if s.cfg.Serial {
		s.serialMu.Lock()
		defer s.serialMu.Unlock()
		s.runBatch([]*job{j})
		<-j.done
		return
	}
	s.jobs <- j
	<-j.done
}
