package server

import (
	"time"

	"spatialcluster/internal/buffer"
	"spatialcluster/internal/disk"
	"spatialcluster/internal/geom"
	"spatialcluster/internal/object"
	"spatialcluster/internal/obs"
	"spatialcluster/internal/store"
	"spatialcluster/internal/wal"
)

// The micro-batching dispatcher. Query and mutation handlers do not execute
// requests themselves: they enqueue a job and wait. A single dispatcher
// goroutine takes the first pending job, keeps accumulating whatever arrives
// within Config.BatchWait (up to Config.MaxBatch), and executes the whole
// batch — queries on the store's parallel worker pool (under a burst of B
// concurrent clients a batch runs with min(B, Config.Workers) parallelism),
// mutations applied in batch order.
//
// On a WAL-attached store the mutation half of a batch goes through one
// wal.Store.Apply call, so all its records share one fsync: the group commit
// rides the same micro-batching that amortizes query dispatch. N concurrent
// clients pay ~1 fsync per batch, not per mutation.

// jobKind discriminates the request types a batch can mix.
type jobKind uint8

const (
	jobWindow jobKind = iota
	jobPoint
	jobKNN
	jobInsert
	jobDelete
	jobUpdate
)

// job is one enqueued request plus its result slot. The handler owns the
// request/response fields; the dispatcher fills the result fields and closes
// done.
type job struct {
	kind   jobKind
	window geom.Rect
	tech   store.Technique
	pt     geom.Point
	k      int
	obj    *object.Object // insert, update
	key    geom.Rect      // insert, update
	id     object.ID      // delete

	qr      store.QueryResult
	nr      store.NearestResult
	existed bool  // delete/update answer
	err     error // mutation failure (the WAL refused the record)
	done    chan struct{}

	// Observability. tr is non-nil when the request asked for ?trace=1 — a
	// traced job executes individually on the dispatcher goroutine so the
	// engine counter deltas around it are attributable to it alone. enqueued
	// is stamped by execute; the dispatcher fills queueNS/execNS for every
	// job (the slow-query log wants them even untraced).
	tr       *obs.Trace
	enqueued time.Time
	queueNS  int64
	execNS   int64
}

// dispatch is the dispatcher goroutine. It exits when quit closes; Shutdown
// closes quit only after draining all in-flight requests, so no job can be
// left waiting.
func (s *Server) dispatch() {
	defer s.dispatchWG.Done()
	for {
		var first *job
		select {
		case first = <-s.jobs:
		case <-s.quit:
			return
		}
		batch := make([]*job, 1, s.cfg.MaxBatch)
		batch[0] = first
		if s.cfg.BatchWait > 0 {
			timer := time.NewTimer(s.cfg.BatchWait)
		accumulate:
			for len(batch) < s.cfg.MaxBatch {
				select {
				case j := <-s.jobs:
					batch = append(batch, j)
				case <-timer.C:
					break accumulate
				}
			}
			timer.Stop()
		} else {
			// No accumulation window: take only what has already arrived.
		drain:
			for len(batch) < s.cfg.MaxBatch {
				select {
				case j := <-s.jobs:
					batch = append(batch, j)
				default:
					break drain
				}
			}
		}
		s.runBatch(batch)
	}
}

// runBatch executes one micro-batch: jobs are grouped by kind (window jobs
// further by technique, k-NN jobs carry per-query k), each group runs on the
// store's batched entry point, and every job's done channel is closed once
// its result slot is filled.
func (s *Server) runBatch(batch []*job) {
	org := s.organization()
	s.metrics.batch(len(batch))

	// Every job's queue wait ends now: the dispatcher picked its batch up.
	picked := time.Now()
	for _, j := range batch {
		if !j.enqueued.IsZero() {
			wait := picked.Sub(j.enqueued)
			j.queueNS = wait.Nanoseconds()
			j.tr.Observe("queue_wait", j.enqueued, wait)
		}
	}

	winByTech := make(map[store.Technique][]int)
	var ptIdx, knnIdx, mutIdx, traced []int
	for i, j := range batch {
		switch j.kind {
		case jobWindow, jobPoint, jobKNN:
			// Traced queries leave the grouped path: each runs alone so the
			// engine counter deltas around it belong to it.
			if j.tr != nil {
				traced = append(traced, i)
				continue
			}
			switch j.kind {
			case jobWindow:
				winByTech[j.tech] = append(winByTech[j.tech], i)
			case jobPoint:
				ptIdx = append(ptIdx, i)
			case jobKNN:
				knnIdx = append(knnIdx, i)
			}
		case jobInsert, jobDelete, jobUpdate:
			mutIdx = append(mutIdx, i)
		}
	}

	// Mutations first, in batch (≈ arrival) order, so the queries of the
	// same batch observe them — one consistent serialization per batch.
	if len(mutIdx) > 0 {
		s.applyMutations(org, batch, mutIdx)
	}

	for _, i := range traced {
		s.runTracedQuery(org, batch[i])
	}

	// groupExec assigns a group's wall time to each member: for the
	// slow-query log, a grouped job "executed" for as long as its group did.
	groupExec := func(idxs []int, start time.Time) {
		ns := time.Since(start).Nanoseconds()
		for _, i := range idxs {
			batch[i].execNS = ns
		}
	}

	for tech, idxs := range winByTech {
		ws := make([]geom.Rect, len(idxs))
		for bi, i := range idxs {
			ws[bi] = batch[i].window
		}
		start := time.Now()
		for bi, r := range store.RunWindowQueryBatch(org, ws, tech, s.cfg.Workers) {
			batch[idxs[bi]].qr = r
		}
		groupExec(idxs, start)
	}
	if len(ptIdx) > 0 {
		pts := make([]geom.Point, len(ptIdx))
		for bi, i := range ptIdx {
			pts[bi] = batch[i].pt
		}
		start := time.Now()
		for bi, r := range store.RunPointQueryBatch(org, pts, s.cfg.Workers) {
			batch[ptIdx[bi]].qr = r
		}
		groupExec(ptIdx, start)
	}
	if len(knnIdx) > 0 {
		pts := make([]geom.Point, len(knnIdx))
		ks := make([]int, len(knnIdx))
		for bi, i := range knnIdx {
			pts[bi], ks[bi] = batch[i].pt, batch[i].k
		}
		start := time.Now()
		for bi, r := range store.RunNearestQueryBatch(org, pts, ks, s.cfg.Workers) {
			batch[knnIdx[bi]].nr = r
		}
		groupExec(knnIdx, start)
	}

	for _, j := range batch {
		close(j.done)
	}
}

// ioSnap is a snapshot of the engine's resource counters, taken around a
// traced execution. Batches run one at a time on the dispatcher goroutine, so
// the delta of two snapshots around an individually-run job is attributable
// to that job alone.
type ioSnap struct {
	cost   disk.Cost
	meas   disk.Measured
	buf    buffer.Stats
	wal    wal.Stats
	hasWAL bool
}

func takeIOSnap(org store.Organization) ioSnap {
	env := org.Env()
	snap := ioSnap{cost: env.Disk.Cost(), meas: env.Disk.Measured(), buf: env.Buf.Stats()}
	if ws, ok := org.(*wal.Store); ok {
		snap.wal = ws.Log().Stats()
		snap.hasWAL = true
	}
	return snap
}

// delta computes the obs.IO consumed since the snapshot was taken.
func (before ioSnap) delta(org store.Organization) *obs.IO {
	env := org.Env()
	after := takeIOSnap(org)
	c := after.cost.Sub(before.cost)
	m := after.meas.Sub(before.meas)
	io := &obs.IO{
		BufferHits:   after.buf.Hits - before.buf.Hits,
		BufferMisses: after.buf.Misses - before.buf.Misses,
		PagesRead:    c.PagesRead,
		ReadRequests: c.ReadRequests,
		ModelMS:      c.TimeMS(env.Params()),
		MeasuredNS:   m.ReadNS + m.WriteNS + m.SyncNS,
	}
	if before.hasWAL {
		io.WALBytes = after.wal.Bytes - before.wal.Bytes
		io.WALSyncs = after.wal.Syncs - before.wal.Syncs
		if io.WALSyncs > 0 {
			// The job ran alone, so the log's last sync was its sync.
			io.WALSyncNS = after.wal.LastSyncNanos
		}
	}
	return io
}

// runTracedQuery executes one traced query as its own 1-element batch call
// (the same store entry point the grouped path uses, so answers are
// identical) with counter snapshots around it.
func (s *Server) runTracedQuery(org store.Organization, j *job) {
	start := time.Now()
	before := takeIOSnap(org)
	switch j.kind {
	case jobWindow:
		j.qr = store.RunWindowQueryBatch(org, []geom.Rect{j.window}, j.tech, s.cfg.Workers)[0]
	case jobPoint:
		j.qr = store.RunPointQueryBatch(org, []geom.Point{j.pt}, s.cfg.Workers)[0]
	case jobKNN:
		j.nr = store.RunNearestQueryBatch(org, []geom.Point{j.pt}, []int{j.k}, s.cfg.Workers)[0]
	}
	d := time.Since(start)
	j.execNS = d.Nanoseconds()
	j.tr.ObserveIO("execute", start, d, before.delta(org))
}

// applyMutations applies the mutation jobs of one batch in order. Traced
// mutations break the group: each applies alone (its own WAL append and
// fsync) so the trace's WAL attribution is its own, at the cost of losing the
// group commit for that batch — the trace observes a worst-case commit, which
// is what a latency investigation wants to see.
func (s *Server) applyMutations(org store.Organization, batch []*job, mutIdx []int) {
	var pending []int
	flush := func() {
		if len(pending) > 0 {
			s.applyMutationGroup(org, batch, pending)
			pending = pending[:0]
		}
	}
	for _, i := range mutIdx {
		j := batch[i]
		if j.tr == nil {
			pending = append(pending, i)
			continue
		}
		flush()
		start := time.Now()
		before := takeIOSnap(org)
		s.applyMutationGroup(org, batch, []int{i})
		d := time.Since(start)
		j.execNS = d.Nanoseconds()
		j.tr.ObserveIO("apply", start, d, before.delta(org))
	}
	flush()
}

// applyMutationGroup applies one run of mutation jobs in order. On a
// WAL-attached store the whole group goes through one Apply call — one log
// append batch, one fsync (the group commit). A WAL failure fails every
// mutation of the group: none were acknowledged, none applied.
func (s *Server) applyMutationGroup(org store.Organization, batch []*job, mutIdx []int) {
	if ws, ok := org.(*wal.Store); ok {
		muts := make([]wal.Mutation, len(mutIdx))
		for bi, i := range mutIdx {
			j := batch[i]
			switch j.kind {
			case jobInsert:
				muts[bi] = wal.Mutation{Kind: wal.KindInsert, Obj: j.obj, Key: j.key}
			case jobDelete:
				muts[bi] = wal.Mutation{Kind: wal.KindDelete, ID: j.id}
			case jobUpdate:
				muts[bi] = wal.Mutation{Kind: wal.KindUpdate, Obj: j.obj, Key: j.key}
			}
		}
		existed, err := ws.Apply(muts)
		for bi, i := range mutIdx {
			if err != nil {
				batch[i].err = err
				continue
			}
			batch[i].existed = existed[bi]
		}
		return
	}
	for _, i := range mutIdx {
		j := batch[i]
		switch j.kind {
		case jobInsert:
			org.Insert(j.obj, j.key)
		case jobDelete:
			j.existed = org.Delete(j.id)
		case jobUpdate:
			j.existed = org.Update(j.obj, j.key)
		}
	}
}

// execute runs one query job: through the dispatcher in batched mode, or
// serialized behind the exclusive query mutex otherwise. Serial mode is the
// pre-dispatcher baseline — the only safe way to serve the store's
// single-threaded query API under concurrent mutations is one query at a
// time — and exists so the serving benchmark can measure what micro-batching
// buys (ServerBench's batch_gain verdict).
func (s *Server) execute(j *job) {
	j.enqueued = time.Now()
	if s.cfg.Serial {
		// Serial mode's queue is the mutex: the wait for it is the queue wait.
		s.serialMu.Lock()
		defer s.serialMu.Unlock()
		s.runBatch([]*job{j})
		<-j.done
		return
	}
	s.jobs <- j
	<-j.done
}
