package server

import (
	"time"

	"spatialcluster/internal/geom"
	"spatialcluster/internal/object"
	"spatialcluster/internal/store"
	"spatialcluster/internal/wal"
)

// The micro-batching dispatcher. Query and mutation handlers do not execute
// requests themselves: they enqueue a job and wait. A single dispatcher
// goroutine takes the first pending job, keeps accumulating whatever arrives
// within Config.BatchWait (up to Config.MaxBatch), and executes the whole
// batch — queries on the store's parallel worker pool (under a burst of B
// concurrent clients a batch runs with min(B, Config.Workers) parallelism),
// mutations applied in batch order.
//
// On a WAL-attached store the mutation half of a batch goes through one
// wal.Store.Apply call, so all its records share one fsync: the group commit
// rides the same micro-batching that amortizes query dispatch. N concurrent
// clients pay ~1 fsync per batch, not per mutation.

// jobKind discriminates the request types a batch can mix.
type jobKind uint8

const (
	jobWindow jobKind = iota
	jobPoint
	jobKNN
	jobInsert
	jobDelete
	jobUpdate
)

// job is one enqueued request plus its result slot. The handler owns the
// request/response fields; the dispatcher fills the result fields and closes
// done.
type job struct {
	kind   jobKind
	window geom.Rect
	tech   store.Technique
	pt     geom.Point
	k      int
	obj    *object.Object // insert, update
	key    geom.Rect      // insert, update
	id     object.ID      // delete

	qr      store.QueryResult
	nr      store.NearestResult
	existed bool  // delete/update answer
	err     error // mutation failure (the WAL refused the record)
	done    chan struct{}
}

// dispatch is the dispatcher goroutine. It exits when quit closes; Shutdown
// closes quit only after draining all in-flight requests, so no job can be
// left waiting.
func (s *Server) dispatch() {
	defer s.dispatchWG.Done()
	for {
		var first *job
		select {
		case first = <-s.jobs:
		case <-s.quit:
			return
		}
		batch := make([]*job, 1, s.cfg.MaxBatch)
		batch[0] = first
		if s.cfg.BatchWait > 0 {
			timer := time.NewTimer(s.cfg.BatchWait)
		accumulate:
			for len(batch) < s.cfg.MaxBatch {
				select {
				case j := <-s.jobs:
					batch = append(batch, j)
				case <-timer.C:
					break accumulate
				}
			}
			timer.Stop()
		} else {
			// No accumulation window: take only what has already arrived.
		drain:
			for len(batch) < s.cfg.MaxBatch {
				select {
				case j := <-s.jobs:
					batch = append(batch, j)
				default:
					break drain
				}
			}
		}
		s.runBatch(batch)
	}
}

// runBatch executes one micro-batch: jobs are grouped by kind (window jobs
// further by technique, k-NN jobs carry per-query k), each group runs on the
// store's batched entry point, and every job's done channel is closed once
// its result slot is filled.
func (s *Server) runBatch(batch []*job) {
	org := s.organization()
	s.metrics.batch(len(batch))

	winByTech := make(map[store.Technique][]int)
	var ptIdx, knnIdx, mutIdx []int
	for i, j := range batch {
		switch j.kind {
		case jobWindow:
			winByTech[j.tech] = append(winByTech[j.tech], i)
		case jobPoint:
			ptIdx = append(ptIdx, i)
		case jobKNN:
			knnIdx = append(knnIdx, i)
		case jobInsert, jobDelete, jobUpdate:
			mutIdx = append(mutIdx, i)
		}
	}

	// Mutations first, in batch (≈ arrival) order, so the queries of the
	// same batch observe them — one consistent serialization per batch.
	if len(mutIdx) > 0 {
		s.applyMutations(org, batch, mutIdx)
	}

	for tech, idxs := range winByTech {
		ws := make([]geom.Rect, len(idxs))
		for bi, i := range idxs {
			ws[bi] = batch[i].window
		}
		for bi, r := range store.RunWindowQueryBatch(org, ws, tech, s.cfg.Workers) {
			batch[idxs[bi]].qr = r
		}
	}
	if len(ptIdx) > 0 {
		pts := make([]geom.Point, len(ptIdx))
		for bi, i := range ptIdx {
			pts[bi] = batch[i].pt
		}
		for bi, r := range store.RunPointQueryBatch(org, pts, s.cfg.Workers) {
			batch[ptIdx[bi]].qr = r
		}
	}
	if len(knnIdx) > 0 {
		pts := make([]geom.Point, len(knnIdx))
		ks := make([]int, len(knnIdx))
		for bi, i := range knnIdx {
			pts[bi], ks[bi] = batch[i].pt, batch[i].k
		}
		for bi, r := range store.RunNearestQueryBatch(org, pts, ks, s.cfg.Workers) {
			batch[knnIdx[bi]].nr = r
		}
	}

	for _, j := range batch {
		close(j.done)
	}
}

// applyMutations applies the mutation jobs of one batch in order. On a
// WAL-attached store the whole group goes through one Apply call — one log
// append batch, one fsync (the group commit). A WAL failure fails every
// mutation of the batch: none were acknowledged, none applied.
func (s *Server) applyMutations(org store.Organization, batch []*job, mutIdx []int) {
	if ws, ok := org.(*wal.Store); ok {
		muts := make([]wal.Mutation, len(mutIdx))
		for bi, i := range mutIdx {
			j := batch[i]
			switch j.kind {
			case jobInsert:
				muts[bi] = wal.Mutation{Kind: wal.KindInsert, Obj: j.obj, Key: j.key}
			case jobDelete:
				muts[bi] = wal.Mutation{Kind: wal.KindDelete, ID: j.id}
			case jobUpdate:
				muts[bi] = wal.Mutation{Kind: wal.KindUpdate, Obj: j.obj, Key: j.key}
			}
		}
		existed, err := ws.Apply(muts)
		for bi, i := range mutIdx {
			if err != nil {
				batch[i].err = err
				continue
			}
			batch[i].existed = existed[bi]
		}
		return
	}
	for _, i := range mutIdx {
		j := batch[i]
		switch j.kind {
		case jobInsert:
			org.Insert(j.obj, j.key)
		case jobDelete:
			j.existed = org.Delete(j.id)
		case jobUpdate:
			j.existed = org.Update(j.obj, j.key)
		}
	}
}

// execute runs one query job: through the dispatcher in batched mode, or
// serialized behind the exclusive query mutex otherwise. Serial mode is the
// pre-dispatcher baseline — the only safe way to serve the store's
// single-threaded query API under concurrent mutations is one query at a
// time — and exists so the serving benchmark can measure what micro-batching
// buys (ServerBench's batch_gain verdict).
func (s *Server) execute(j *job) {
	if s.cfg.Serial {
		s.serialMu.Lock()
		defer s.serialMu.Unlock()
		s.runBatch([]*job{j})
		<-j.done
		return
	}
	s.jobs <- j
	<-j.done
}
