package server_test

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"spatialcluster"
	"spatialcluster/internal/datagen"
	"spatialcluster/internal/geom"
	"spatialcluster/internal/object"
	"spatialcluster/internal/server"
	"spatialcluster/internal/store"
)

// buildOrg constructs a flushed organization of the given kind over ds.
func buildOrg(t *testing.T, kind string, ds *datagen.Dataset) store.Organization {
	t.Helper()
	env := store.NewEnv(128)
	var org store.Organization
	switch kind {
	case "secondary":
		org = store.NewSecondary(env)
	case "primary":
		org = store.NewPrimary(env)
	case "cluster":
		org = store.NewCluster(env, store.ClusterConfig{SmaxBytes: ds.Spec.SmaxBytes()})
	default:
		t.Fatalf("unknown org kind %q", kind)
	}
	for i, o := range ds.Objects {
		org.Insert(o, ds.MBRs[i])
	}
	org.Flush()
	return org
}

// startServer mounts a server on an httptest listener and returns a client.
func startServer(t *testing.T, org store.Organization, cfg server.Config) (*server.Server, *server.Client) {
	t.Helper()
	s := server.New(org, cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, server.NewClient(hs.URL, 16)
}

func sortedWire(ids []uint64) []uint64 {
	out := append([]uint64(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedIDs(ids []object.ID) []uint64 {
	out := make([]uint64, len(ids))
	for i, id := range ids {
		out[i] = uint64(id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkAgainstInProcess compares every query answer served over HTTP with
// the same query executed in-process on the reference organization.
func checkAgainstInProcess(t *testing.T, phase string, c *server.Client, ref store.Organization,
	ws []geom.Rect, pts []geom.Point, ks []int) {
	t.Helper()
	for wi, w := range ws {
		got, err := c.Window(w, "")
		if err != nil {
			t.Fatalf("%s: window %d: %v", phase, wi, err)
		}
		want := ref.WindowQuery(w, store.TechComplete)
		if !equalU64(sortedWire(got.IDs), sortedIDs(want.IDs)) {
			t.Fatalf("%s: window %d: served %d answers, in-process %d",
				phase, wi, len(got.IDs), len(want.IDs))
		}
		if got.Candidates != want.Candidates {
			t.Fatalf("%s: window %d: served %d candidates, in-process %d",
				phase, wi, got.Candidates, want.Candidates)
		}
	}
	for pi, pt := range pts {
		got, err := c.Point(pt)
		if err != nil {
			t.Fatalf("%s: point %d: %v", phase, pi, err)
		}
		want := ref.PointQuery(pt)
		if !equalU64(sortedWire(got.IDs), sortedIDs(want.IDs)) {
			t.Fatalf("%s: point %d: served answers differ from in-process", phase, pi)
		}
	}
	for _, k := range ks {
		for pi, pt := range pts {
			got, err := c.KNN(pt, k)
			if err != nil {
				t.Fatalf("%s: %d-NN %d: %v", phase, k, pi, err)
			}
			want := ref.NearestQuery(pt, k)
			if len(got.IDs) != len(want.IDs) {
				t.Fatalf("%s: %d-NN %d: served %d answers, in-process %d",
					phase, k, pi, len(got.IDs), len(want.IDs))
			}
			for i := range want.IDs { // ordered: rank by rank
				if got.IDs[i] != uint64(want.IDs[i]) {
					t.Fatalf("%s: %d-NN %d: rank %d served %d, in-process %d",
						phase, k, pi, i, got.IDs[i], want.IDs[i])
				}
			}
		}
	}
}

// TestServedAnswersMatchInProcess is the serving layer's differential suite:
// for every organization, window/point/k-NN answers served over HTTP must be
// identical to in-process calls — on the fresh store, and again after the
// same deterministic churn stream has been applied through the HTTP mutation
// endpoints (served store) and through direct calls (reference store).
func TestServedAnswersMatchInProcess(t *testing.T) {
	ds := datagen.Generate(datagen.Spec{
		Map: datagen.Map1, Series: datagen.SeriesA, Scale: 256, Seed: 42,
	})
	ws := append(ds.Windows(0.001, 8, 5), ds.Windows(0.01, 4, 6)...)
	pts := ds.Points(8, 7)
	ks := []int{1, 10}
	ops := ds.MixedWorkload(datagen.MixSpec{Ops: 400, HotspotFrac: 0.5, Seed: 43})

	for _, kind := range []string{"secondary", "primary", "cluster"} {
		for _, mode := range []string{"batched", "serial"} {
			t.Run(kind+"/"+mode, func(t *testing.T) {
				served := buildOrg(t, kind, ds)
				ref := buildOrg(t, kind, ds)
				_, c := startServer(t, served, server.Config{Serial: mode == "serial"})

				checkAgainstInProcess(t, "fresh", c, ref, ws, pts, ks)

				// The same churn stream through both paths.
				for _, op := range ops {
					switch op.Kind {
					case datagen.OpInsert:
						if err := c.Insert(op.Obj, op.Key); err != nil {
							t.Fatalf("insert over HTTP: %v", err)
						}
						ref.Insert(op.Obj, op.Key)
					case datagen.OpDelete:
						existed, err := c.Delete(op.ID)
						if err != nil {
							t.Fatalf("delete over HTTP: %v", err)
						}
						if want := ref.Delete(op.ID); existed != want {
							t.Fatalf("delete %d over HTTP existed=%v, in-process %v", op.ID, existed, want)
						}
					case datagen.OpUpdate:
						existed, err := c.Update(op.Obj, op.Key)
						if err != nil {
							t.Fatalf("update over HTTP: %v", err)
						}
						if want := ref.Update(op.Obj, op.Key); existed != want {
							t.Fatalf("update %d over HTTP existed=%v, in-process %v", op.Obj.ID, existed, want)
						}
					case datagen.OpQuery:
						got, err := c.Window(op.Window, "")
						if err != nil {
							t.Fatalf("query over HTTP: %v", err)
						}
						want := ref.WindowQuery(op.Window, store.TechComplete)
						if !equalU64(sortedWire(got.IDs), sortedIDs(want.IDs)) {
							t.Fatalf("mid-churn window answers differ")
						}
					}
				}
				if err := c.Flush(); err != nil {
					t.Fatalf("flush over HTTP: %v", err)
				}
				ref.Flush()

				checkAgainstInProcess(t, "after churn", c, ref, ws, pts, ks)

				// Storage statistics must agree too: the HTTP mutation path
				// is the same engine, not a lookalike.
				st, err := c.Stats()
				if err != nil {
					t.Fatal(err)
				}
				want := ref.Stats()
				if st.Objects != want.Objects || st.LiveBytes != want.LiveBytes ||
					st.DeadBytes != want.DeadBytes || st.Units != want.Units {
					t.Fatalf("served stats %+v, in-process %+v", st, want)
				}
			})
		}
	}
}

// TestConcurrentClientsAgree hammers a batched server with concurrent
// clients issuing a fixed query set and verifies every single response
// matches the serial in-process answer — micro-batching must never mix up
// result slots.
func TestConcurrentClientsAgree(t *testing.T) {
	ds := datagen.Generate(datagen.Spec{
		Map: datagen.Map1, Series: datagen.SeriesA, Scale: 512, Seed: 9,
	})
	org := buildOrg(t, "cluster", ds)
	ref := buildOrg(t, "cluster", ds)
	_, c := startServer(t, org, server.Config{Workers: 4, MaxBatch: 16})

	ws := ds.Windows(0.001, 24, 3)
	want := make([][]uint64, len(ws))
	for i, w := range ws {
		want[i] = sortedIDs(ref.WindowQuery(w, store.TechComplete).IDs)
	}

	const clients = 12
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			for round := 0; round < 6; round++ {
				i := (cl + round*7) % len(ws)
				got, err := c.Window(ws[i], "")
				if err != nil {
					errs <- err
					return
				}
				if !equalU64(sortedWire(got.IDs), want[i]) {
					errs <- &server.StatusError{Code: 0, Message: "answer mismatch"}
					return
				}
			}
		}(cl)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent client: %v", err)
	}

	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.Batches == 0 || m.BatchedJobs == 0 {
		t.Fatalf("no batches recorded: %+v", m)
	}
}

// TestAdmissionControl verifies the 429 path: with one admission slot and a
// throttled disk, a second concurrent query must be rejected, and the
// rejection must be visible in the metrics.
func TestAdmissionControl(t *testing.T) {
	ds := datagen.Generate(datagen.Spec{
		Map: datagen.Map1, Series: datagen.SeriesA, Scale: 1024, Seed: 5,
	})
	org := buildOrg(t, "cluster", ds)
	// Replay modelled time at full speed: every query now takes tens of
	// milliseconds of wall clock, so the occupied slot is observable.
	org.Env().Disk.SetThrottle(1)
	defer org.Env().Disk.SetThrottle(0)
	_, c := startServer(t, org, server.Config{MaxInFlight: 1})

	w := ds.Windows(0.01, 1, 1)[0]
	// Volleys of concurrent requests against a single admission slot: with
	// the disk replaying modelled time, each admitted query holds the slot
	// for tens of milliseconds, so the other requests of its volley must be
	// rejected. Repeat until a 429 is observed (scheduling can in principle
	// serialize one volley; it cannot serialize them forever).
	deadline := time.Now().Add(10 * time.Second)
	sawOverload := false
	for !sawOverload {
		if time.Now().After(deadline) {
			t.Fatal("never saw a 429 with MaxInFlight=1 and a throttled disk")
		}
		const volley = 8
		errs := make(chan error, volley)
		for i := 0; i < volley; i++ {
			go func() {
				_, err := c.Window(w, "")
				errs <- err
			}()
		}
		for i := 0; i < volley; i++ {
			if server.IsOverload(<-errs) {
				sawOverload = true
			}
		}
	}
	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.Rejected == 0 {
		t.Fatalf("metrics show no rejections: %+v", m)
	}
}

// TestSaveLoadOverHTTP snapshots a live store over HTTP, mutates it, loads
// the snapshot back, and expects the pre-mutation answers again.
func TestSaveLoadOverHTTP(t *testing.T) {
	ds := datagen.Generate(datagen.Spec{
		Map: datagen.Map1, Series: datagen.SeriesA, Scale: 1024, Seed: 11,
	})
	org := buildOrg(t, "cluster", ds)
	_, c := startServer(t, org, server.Config{})

	w := ds.Windows(0.01, 1, 2)[0]
	before, err := c.Window(w, "")
	if err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(t.TempDir(), "live.sdb")
	sv, err := c.Save(snap)
	if err != nil {
		t.Fatal(err)
	}
	if sv.Bytes == 0 {
		t.Fatal("snapshot reported zero bytes")
	}

	// Mutate: delete everything the window returned.
	for _, id := range before.IDs {
		if _, err := c.Delete(object.ID(id)); err != nil {
			t.Fatal(err)
		}
	}
	mutated, err := c.Window(w, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(mutated.IDs) != 0 {
		t.Fatalf("window still answers %d after deleting all answers", len(mutated.IDs))
	}

	if _, err := c.Load(snap); err != nil {
		t.Fatal(err)
	}
	after, err := c.Window(w, "")
	if err != nil {
		t.Fatal(err)
	}
	if !equalU64(sortedWire(after.IDs), sortedWire(before.IDs)) {
		t.Fatal("loaded snapshot does not answer like the saved store")
	}
}

// TestShutdownSnapshot verifies graceful shutdown: drain, flush, snapshot.
func TestShutdownSnapshot(t *testing.T) {
	ds := datagen.Generate(datagen.Spec{
		Map: datagen.Map1, Series: datagen.SeriesA, Scale: 2048, Seed: 3,
	})
	org := buildOrg(t, "cluster", ds)
	snap := filepath.Join(t.TempDir(), "exit.sdb")
	s := server.New(org, server.Config{SnapshotPath: snap})
	hs := httptest.NewServer(s.Handler())
	c := server.NewClient(hs.URL, 4)

	w := ds.Windows(0.01, 1, 4)[0]
	want, err := c.Window(w, "")
	if err != nil {
		t.Fatal(err)
	}
	hs.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.Shutdown(ctx); err != nil { // idempotent
		t.Fatal(err)
	}

	reopened, err := spatialcluster.Open(snap, spatialcluster.StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	got := reopened.WindowQuery(w, store.TechComplete)
	if !equalU64(sortedIDs(got.IDs), sortedWire(want.IDs)) {
		t.Fatal("shutdown snapshot does not answer like the served store")
	}
}

// TestBadRequests: malformed input must answer 4xx, never panic the server.
func TestBadRequests(t *testing.T) {
	ds := datagen.Generate(datagen.Spec{
		Map: datagen.Map1, Series: datagen.SeriesA, Scale: 4096, Seed: 1,
	})
	org := buildOrg(t, "cluster", ds)
	_, c := startServer(t, org, server.Config{})

	if _, err := c.Window(geom.R(0, 0, 1, 1), "psychic"); err == nil {
		t.Fatal("unknown technique accepted")
	}
	if _, err := c.KNN(geom.Pt(0.5, 0.5), 0); err == nil {
		t.Fatal("k = 0 accepted")
	}
	// A degenerate polyline must be rejected by validation, not by a panic
	// inside the geometry constructor.
	bad := server.ObjectJSON{ID: 999, Kind: "polyline", Vertices: [][2]float64{{0.1, 0.1}}}
	if _, err := badInsert(c, bad); err == nil {
		t.Fatal("1-vertex polyline accepted")
	}
	if _, err := badInsert(c, server.ObjectJSON{ID: 1, Kind: "blob"}); err == nil {
		t.Fatal("unknown geometry kind accepted")
	}
	if _, err := c.Load(""); err == nil {
		t.Fatal("empty load path accepted")
	}
	if _, err := c.Save(""); err == nil {
		t.Fatal("empty save path accepted")
	}
	// The server must still be alive and correct after all of that.
	if _, err := c.Stats(); err != nil {
		t.Fatalf("server unhealthy after bad requests: %v", err)
	}
}

// badInsert posts a raw ObjectJSON (bypassing the client's own validation).
func badInsert(c *server.Client, o server.ObjectJSON) (server.MutateResponse, error) {
	var out server.MutateResponse
	err := c.Post("/insert", server.InsertRequest{Object: o}, &out)
	return out, err
}
