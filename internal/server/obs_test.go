package server_test

import (
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"spatialcluster/internal/datagen"
	"spatialcluster/internal/server"
	"spatialcluster/internal/wal"
)

func obsDataset() *datagen.Dataset {
	return datagen.Generate(datagen.Spec{Map: datagen.Map1, Series: datagen.SeriesA, Scale: 256, Seed: 7})
}

// TestTracedAnswersIdentical is the trace differential: a traced query must
// return exactly the answer of its untraced twin, its spans must include the
// dispatcher stages, and the summed span durations must not exceed the
// trace's wall clock (spans are disjoint stages of one request).
func TestTracedAnswersIdentical(t *testing.T) {
	ds := obsDataset()
	org := buildOrg(t, "cluster", ds)
	_, c := startServer(t, org, server.Config{Workers: 4})

	ws := ds.Windows(0.001, 12, 5)
	pts := ds.Points(8, 6)
	for wi, w := range ws {
		plain, err := c.Window(w, "")
		if err != nil {
			t.Fatalf("window %d: %v", wi, err)
		}
		traced, err := c.WindowTraced(w, "")
		if err != nil {
			t.Fatalf("traced window %d: %v", wi, err)
		}
		if !equalU64(sortedWire(plain.IDs), sortedWire(traced.IDs)) || plain.Candidates != traced.Candidates {
			t.Fatalf("window %d: traced answer differs from untraced", wi)
		}
		if plain.Trace != nil {
			t.Fatalf("window %d: untraced answer carries a trace", wi)
		}
		checkTrace(t, fmt.Sprintf("window %d", wi), traced.Trace, "execute")
	}
	for pi, pt := range pts {
		plain, err := c.KNN(pt, 5)
		if err != nil {
			t.Fatalf("knn %d: %v", pi, err)
		}
		traced, err := c.KNNTraced(pt, 5)
		if err != nil {
			t.Fatalf("traced knn %d: %v", pi, err)
		}
		if !equalU64(plain.IDs, traced.IDs) {
			t.Fatalf("knn %d: traced answer differs from untraced", pi)
		}
		checkTrace(t, fmt.Sprintf("knn %d", pi), traced.Trace, "execute")
	}
}

// checkTrace validates the invariants of one returned trace: the named stage
// is present, every span fits inside the total, and the summed stage
// durations do not exceed the request wall.
func checkTrace(t *testing.T, what string, tr *server.TraceInfo, wantStage string) {
	t.Helper()
	if tr == nil {
		t.Fatalf("%s: no trace in answer", what)
	}
	if len(tr.Spans) == 0 {
		t.Fatalf("%s: trace has no spans", what)
	}
	var sum float64
	seen := map[string]bool{}
	for _, sp := range tr.Spans {
		if sp.DurMS < 0 || sp.StartMS < 0 {
			t.Fatalf("%s: negative span %+v", what, sp)
		}
		sum += sp.DurMS
		seen[sp.Stage] = true
	}
	if !seen["queue_wait"] {
		t.Fatalf("%s: no queue_wait span: %+v", what, tr.Spans)
	}
	if !seen[wantStage] {
		t.Fatalf("%s: no %s span: %+v", what, wantStage, tr.Spans)
	}
	// Generous slack: TotalMS is clocked later than the last span ends, so
	// the inequality is structural, but scheduling noise should not flake it.
	if sum > tr.TotalMS+1 {
		t.Fatalf("%s: span sum %.3f ms exceeds wall %.3f ms", what, sum, tr.TotalMS)
	}
}

// TestTracedMutationWAL checks that a traced insert against a WAL-attached
// store reports its commit: an apply span with WAL bytes and a sync.
func TestTracedMutationWAL(t *testing.T) {
	ds := obsDataset()
	ws, err := wal.Create(buildOrg(t, "cluster", ds), t.TempDir(), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Close()
	_, c := startServer(t, ws, server.Config{})

	var out server.MutateResponse
	obj, err := server.FromObject(ds.Objects[0])
	if err != nil {
		t.Fatal(err)
	}
	obj.ID = 9_000_001
	if err := c.Post("/insert?trace=1", server.InsertRequest{Object: obj}, &out); err != nil {
		t.Fatal(err)
	}
	if out.Trace == nil {
		t.Fatal("no trace in traced insert answer")
	}
	var apply *struct {
		bytes, syncs int64
	}
	for _, sp := range out.Trace.Spans {
		if sp.Stage == "apply" {
			if sp.IO == nil {
				t.Fatalf("apply span has no IO attribution: %+v", sp)
			}
			apply = &struct{ bytes, syncs int64 }{sp.IO.WALBytes, sp.IO.WALSyncs}
		}
	}
	if apply == nil {
		t.Fatalf("no apply span: %+v", out.Trace.Spans)
	}
	if apply.bytes <= 0 || apply.syncs <= 0 {
		t.Fatalf("apply span reports wal_bytes=%d wal_syncs=%d, want both positive",
			apply.bytes, apply.syncs)
	}
}

// promSampleLine matches one exposition sample line.
var promSampleLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? ` +
		`(-?[0-9.e+-]+|[+-]Inf|NaN)$`)

// TestPromExposition scrapes a live server's /metrics in Prometheus format
// and validates the exposition: every line parses, every histogram's bucket
// counts are cumulative/monotone and end in le="+Inf" equal to _count, and
// the core families are present. Both negotiation paths (?format=prom and
// Accept: text/plain) must answer the same format.
func TestPromExposition(t *testing.T) {
	ds := obsDataset()
	org := buildOrg(t, "cluster", ds)
	_, c := startServer(t, org, server.Config{})

	// Traffic first, so counters and histograms are non-trivial.
	for _, w := range ds.Windows(0.001, 20, 3) {
		if _, err := c.Window(w, ""); err != nil {
			t.Fatal(err)
		}
	}

	body, err := c.Raw("/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, family := range []string{
		"sdb_requests_total", "sdb_request_duration_seconds_bucket",
		"sdb_buffer_hit_ratio", "sdb_model_io_seconds_total",
		"sdb_batches_total", "sdb_uptime_seconds", "sdb_slowlog_total",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("exposition lacks %s", family)
		}
	}

	type histState struct {
		buckets  []float64
		inf      float64
		count    float64
		haveInf  bool
		haveCnt  bool
		haveSmpl bool
	}
	hists := map[string]*histState{} // keyed by full label set
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promSampleLine.MatchString(line) {
			t.Fatalf("line does not parse as exposition format: %q", line)
		}
		sp := strings.LastIndexByte(line, ' ')
		val, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("value of %q: %v", line, err)
		}
		name := line[:sp]
		const fam = "sdb_request_duration_seconds"
		switch {
		case strings.HasPrefix(name, fam+"_bucket"):
			key := endpointOf(name)
			h := hists[key]
			if h == nil {
				h = &histState{}
				hists[key] = h
			}
			h.haveSmpl = true
			if strings.Contains(name, `le="+Inf"`) {
				h.haveInf, h.inf = true, val
			} else {
				h.buckets = append(h.buckets, val)
			}
		case strings.HasPrefix(name, fam+"_count"):
			key := endpointOf(name)
			h := hists[key]
			if h == nil {
				h = &histState{}
				hists[key] = h
			}
			h.haveCnt, h.count = true, val
		}
	}
	if len(hists) == 0 {
		t.Fatal("no request_duration histograms in exposition")
	}
	for key, h := range hists {
		if !h.haveSmpl || !h.haveInf || !h.haveCnt {
			t.Fatalf("%s: incomplete histogram family (buckets=%v inf=%v count=%v)",
				key, h.haveSmpl, h.haveInf, h.haveCnt)
		}
		for i := 1; i < len(h.buckets); i++ {
			if h.buckets[i] < h.buckets[i-1] {
				t.Fatalf("%s: bucket counts not monotone: %v", key, h.buckets)
			}
		}
		if n := len(h.buckets); n > 0 && h.buckets[n-1] > h.inf {
			t.Fatalf("%s: finite bucket %g above +Inf %g", key, h.buckets[n-1], h.inf)
		}
		if h.inf != h.count {
			t.Fatalf("%s: le=\"+Inf\" %g != _count %g", key, h.inf, h.count)
		}
	}

	// Accept-header negotiation answers the same format; explicit
	// ?format=json keeps JSON for a text/plain client.
	viaAccept := scrapeWithAccept(t, c, "/metrics", "text/plain")
	if !strings.HasPrefix(viaAccept, "# HELP") {
		t.Fatalf("Accept: text/plain did not select exposition format: %.60q", viaAccept)
	}
	viaJSON := scrapeWithAccept(t, c, "/metrics?format=json", "text/plain")
	if !strings.HasPrefix(strings.TrimSpace(viaJSON), "{") {
		t.Fatalf("?format=json did not force JSON: %.60q", viaJSON)
	}
}

// endpointOf extracts the endpoint label value of a sample name.
func endpointOf(name string) string {
	m := regexp.MustCompile(`endpoint="([^"]*)"`).FindStringSubmatch(name)
	if m == nil {
		return ""
	}
	return m[1]
}

// scrapeWithAccept GETs a path with an Accept header and returns the body.
func scrapeWithAccept(t *testing.T, c *server.Client, path, accept string) string {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, c.Base+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", accept)
	resp, err := c.HTTP.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestSlowLogEndpoint runs queries against a server whose slowlog threshold
// records everything, and checks the ring answers over HTTP.
func TestSlowLogEndpoint(t *testing.T) {
	ds := obsDataset()
	org := buildOrg(t, "secondary", ds)
	_, c := startServer(t, org, server.Config{SlowLogMS: 1e-9})

	ws := ds.Windows(0.001, 5, 11)
	for _, w := range ws {
		if _, err := c.Window(w, ""); err != nil {
			t.Fatal(err)
		}
	}
	sl, err := c.SlowLog()
	if err != nil {
		t.Fatal(err)
	}
	if sl.Total < int64(len(ws)) {
		t.Fatalf("slowlog total %d, want at least %d", sl.Total, len(ws))
	}
	if len(sl.Entries) == 0 {
		t.Fatal("slowlog has no entries")
	}
	seenWindow := false
	for i, e := range sl.Entries {
		if e.Endpoint == "/query/window" {
			seenWindow = true
			if e.WallMS <= 0 {
				t.Fatalf("entry %d: non-positive wall %g", i, e.WallMS)
			}
			if e.ExecMS > e.WallMS {
				t.Fatalf("entry %d: exec %g ms exceeds wall %g ms", i, e.ExecMS, e.WallMS)
			}
		}
		if i > 0 && sl.Entries[i-1].Seq < e.Seq {
			t.Fatal("slowlog entries not newest-first")
		}
	}
	if !seenWindow {
		t.Fatalf("no window-query entries in slowlog: %+v", sl.Entries)
	}

	// A negative threshold disables recording.
	_, cOff := startServer(t, buildOrg(t, "secondary", ds), server.Config{SlowLogMS: -1})
	if _, err := cOff.Window(ws[0], ""); err != nil {
		t.Fatal(err)
	}
	slOff, err := cOff.SlowLog()
	if err != nil {
		t.Fatal(err)
	}
	if slOff.Total != 0 || len(slOff.Entries) != 0 {
		t.Fatalf("disabled slowlog recorded %d entries", slOff.Total)
	}
}

// TestMetricsQuantiles checks that the JSON /metrics carries the latency
// quantiles per endpoint, with the old fields intact.
func TestMetricsQuantiles(t *testing.T) {
	ds := obsDataset()
	org := buildOrg(t, "primary", ds)
	_, c := startServer(t, org, server.Config{})

	for _, w := range ds.Windows(0.001, 10, 13) {
		if _, err := c.Window(w, ""); err != nil {
			t.Fatal(err)
		}
	}
	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	ep, ok := m.Endpoints["/query/window"]
	if !ok {
		t.Fatalf("no /query/window endpoint in metrics: %v", m.Endpoints)
	}
	if ep.Count != 10 {
		t.Fatalf("count %d, want 10", ep.Count)
	}
	if ep.P50MS <= 0 || ep.P95MS <= 0 || ep.P99MS <= 0 {
		t.Fatalf("quantiles not populated: p50=%g p95=%g p99=%g", ep.P50MS, ep.P95MS, ep.P99MS)
	}
	if ep.P50MS > ep.P95MS || ep.P95MS > ep.P99MS {
		t.Fatalf("quantiles not monotone: p50=%g p95=%g p99=%g", ep.P50MS, ep.P95MS, ep.P99MS)
	}
	if ep.MeanMS <= 0 || ep.MaxMS <= 0 || ep.TotalMS <= 0 {
		t.Fatalf("legacy fields lost: mean=%g max=%g total=%g", ep.MeanMS, ep.MaxMS, ep.TotalMS)
	}
	// The histogram's bucket-resolution quantile must bracket the exact mean
	// loosely — p99 at least the mean is a weak sanity bound that catches
	// unit mistakes (ns vs ms) without flaking on scheduling noise.
	if ep.P99MS < ep.MeanMS/2 {
		t.Fatalf("p99 %g ms implausibly below mean %g ms", ep.P99MS, ep.MeanMS)
	}
}

// TestPprofGate checks the pprof mount is present exactly when configured.
func TestPprofGate(t *testing.T) {
	ds := obsDataset()
	_, cOn := startServer(t, buildOrg(t, "secondary", ds), server.Config{Pprof: true})
	if _, err := cOn.Raw("/debug/pprof/cmdline"); err != nil {
		t.Fatalf("pprof enabled but /debug/pprof/cmdline failed: %v", err)
	}
	_, cOff := startServer(t, buildOrg(t, "secondary", ds), server.Config{})
	if _, err := cOff.Raw("/debug/pprof/cmdline"); err == nil {
		t.Fatal("pprof disabled but /debug/pprof/cmdline answered")
	}
}

// TestScrapeUnderLoad is the -race stress of the lock-free registry: queries,
// mutations, JSON scrapes, Prometheus scrapes and slowlog reads all run
// concurrently. The assertions are weak (no errors, counters move); the data
// race detector is the real check.
func TestScrapeUnderLoad(t *testing.T) {
	ds := obsDataset()
	org := buildOrg(t, "cluster", ds)
	_, c := startServer(t, org, server.Config{Workers: 4, SlowLogMS: 1e-9})

	ws := ds.Windows(0.001, 64, 17)
	pts := ds.Points(64, 19)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}

	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var err error
				if i%3 == 0 {
					_, err = c.WindowTraced(ws[(g*16+i)%len(ws)], "")
				} else {
					_, err = c.Window(ws[(g*16+i)%len(ws)], "")
				}
				if err != nil {
					fail(err)
					return
				}
				if _, err = c.Point(pts[(g*16+i)%len(pts)]); err != nil {
					fail(err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() { // scraper goroutine: both formats plus slowlog
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := c.Metrics(); err != nil {
				fail(err)
				return
			}
			if _, err := c.Raw("/metrics?format=prom"); err != nil {
				fail(err)
				return
			}
			if _, err := c.SlowLog(); err != nil {
				fail(err)
				return
			}
		}
	}()
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}

	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.Endpoints["/query/window"].Count == 0 || m.Endpoints["/metrics"].Count == 0 {
		t.Fatalf("counters did not move under load: %+v", m.Endpoints)
	}
}
