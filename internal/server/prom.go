package server

import (
	"io"

	"spatialcluster/internal/obs"
	"spatialcluster/internal/wal"
)

// Prometheus exposition of /metrics. The JSON body stays the default and the
// source of truth; this file maps the same filled Metrics value (plus the
// live per-endpoint histograms) to text exposition format 0.0.4 so a stock
// Prometheus server can scrape sdbd with no adapter.

const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// writeProm renders m as Prometheus text exposition. m must already be fully
// filled (handleMetrics does that for both representations).
func (s *Server) writeProm(w io.Writer, m *Metrics) {
	b := func(v bool) float64 {
		if v {
			return 1
		}
		return 0
	}

	obs.PromHead(w, "sdb_info", "Served storage organization.", "gauge")
	obs.PromSample(w, "sdb_info", [][2]string{{"org", m.Org}}, 1)
	obs.PromHead(w, "sdb_uptime_seconds", "Seconds since the server started.", "gauge")
	obs.PromSample(w, "sdb_uptime_seconds", nil, m.Uptime)

	obs.PromHead(w, "sdb_requests_total", "Completed requests by endpoint.", "counter")
	s.metrics.each(func(path string, c *endpointCounters) {
		obs.PromSample(w, "sdb_requests_total", [][2]string{{"endpoint", path}}, float64(c.count.Load()))
	})
	obs.PromHead(w, "sdb_request_errors_total", "4xx/5xx answers by endpoint (429 excluded).", "counter")
	s.metrics.each(func(path string, c *endpointCounters) {
		obs.PromSample(w, "sdb_request_errors_total", [][2]string{{"endpoint", path}}, float64(c.errors.Load()))
	})
	obs.PromHead(w, "sdb_requests_rejected_total", "429 admission rejections by endpoint.", "counter")
	s.metrics.each(func(path string, c *endpointCounters) {
		obs.PromSample(w, "sdb_requests_rejected_total", [][2]string{{"endpoint", path}}, float64(c.rejected.Load()))
	})
	obs.PromHead(w, "sdb_request_duration_seconds", "Request latency by endpoint.", "histogram")
	s.metrics.each(func(path string, c *endpointCounters) {
		obs.PromHistogram(w, "sdb_request_duration_seconds", [][2]string{{"endpoint", path}}, c.hist.Snapshot())
	})

	obs.PromHead(w, "sdb_in_flight", "Requests currently admitted.", "gauge")
	obs.PromSample(w, "sdb_in_flight", nil, float64(m.InFlight))
	obs.PromHead(w, "sdb_max_in_flight", "Admission limit.", "gauge")
	obs.PromSample(w, "sdb_max_in_flight", nil, float64(m.MaxInFlight))

	obs.PromHead(w, "sdb_batches_total", "Dispatcher micro-batches executed.", "counter")
	obs.PromSample(w, "sdb_batches_total", nil, float64(m.Batches))
	obs.PromHead(w, "sdb_batched_jobs_total", "Jobs carried by micro-batches.", "counter")
	obs.PromSample(w, "sdb_batched_jobs_total", nil, float64(m.BatchedJobs))
	obs.PromHead(w, "sdb_batch_max", "Largest micro-batch observed.", "gauge")
	obs.PromSample(w, "sdb_batch_max", nil, float64(m.MaxBatch))

	obs.PromHead(w, "sdb_buffer_hits_total", "Buffer pool hits.", "counter")
	obs.PromSample(w, "sdb_buffer_hits_total", nil, float64(m.BufferHits))
	obs.PromHead(w, "sdb_buffer_misses_total", "Buffer pool misses.", "counter")
	obs.PromSample(w, "sdb_buffer_misses_total", nil, float64(m.BufferMisses))
	obs.PromHead(w, "sdb_buffer_hit_ratio", "Buffer pool hit ratio since start.", "gauge")
	obs.PromSample(w, "sdb_buffer_hit_ratio", nil, m.BufferHitRatio)

	obs.PromHead(w, "sdb_model_io_seconds_total",
		"Modelled I/O time charged by the paper's cost formulas.", "counter")
	obs.PromSample(w, "sdb_model_io_seconds_total", nil, m.ModelIOSec)
	obs.PromHead(w, "sdb_model_pages_read_total", "Modelled pages read.", "counter")
	obs.PromSample(w, "sdb_model_pages_read_total", nil, float64(m.ModelCost.PagesRead))
	obs.PromHead(w, "sdb_measured_io_seconds_total",
		"Wall-clock backend I/O time (zero on the memory backend).", "counter")
	obs.PromSample(w, "sdb_measured_io_seconds_total", nil, m.MeasuredIOSec)
	obs.PromHead(w, "sdb_measured_reads_total", "Backend read calls performed.", "counter")
	obs.PromSample(w, "sdb_measured_reads_total", nil, float64(m.MeasuredReads))

	obs.PromHead(w, "sdb_objects", "Objects stored.", "gauge")
	obs.PromSample(w, "sdb_objects", nil, float64(m.Storage.Objects))
	obs.PromHead(w, "sdb_occupied_pages", "Pages occupied by the organization.", "gauge")
	obs.PromSample(w, "sdb_occupied_pages", nil, float64(m.Storage.OccupiedPages))

	if m.Storage.WAL != nil {
		wl := m.Storage.WAL
		obs.PromHead(w, "sdb_wal_segments", "Write-ahead log segment files.", "gauge")
		obs.PromSample(w, "sdb_wal_segments", nil, float64(wl.Segments))
		obs.PromHead(w, "sdb_wal_bytes", "Write-ahead log size in bytes.", "gauge")
		obs.PromSample(w, "sdb_wal_bytes", nil, float64(wl.Bytes))
		obs.PromHead(w, "sdb_wal_syncs_total", "Write-ahead log fsyncs.", "counter")
		obs.PromSample(w, "sdb_wal_syncs_total", nil, float64(wl.Syncs))
		obs.PromHead(w, "sdb_wal_last_fsync_seconds", "Duration of the last WAL fsync.", "gauge")
		obs.PromSample(w, "sdb_wal_last_fsync_seconds", nil, wl.LastFsyncMS/1000)
		if ws, ok := s.organization().(*wal.Store); ok {
			obs.PromHead(w, "sdb_wal_fsync_seconds", "WAL fsync latency.", "histogram")
			obs.PromHistogram(w, "sdb_wal_fsync_seconds", nil, ws.Log().SyncHist().Snapshot())
		}
	}

	obs.PromHead(w, "sdb_slowlog_total", "Slow-query log entries ever recorded.", "counter")
	obs.PromSample(w, "sdb_slowlog_total", nil, float64(m.SlowLogTotal))
	obs.PromHead(w, "sdb_throttle", "Wall-clock fraction of modelled I/O time actually slept.", "gauge")
	obs.PromSample(w, "sdb_throttle", nil, m.Throttle)
	obs.PromHead(w, "sdb_serial_mode", "1 when the micro-batching dispatcher is disabled.", "gauge")
	obs.PromSample(w, "sdb_serial_mode", nil, b(m.SerialMode))
}
