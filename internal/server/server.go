package server

import (
	"context"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"spatialcluster"
	"spatialcluster/internal/geom"
	"spatialcluster/internal/object"
	"spatialcluster/internal/obs"
	"spatialcluster/internal/recluster"
	"spatialcluster/internal/store"
	"spatialcluster/internal/wal"
)

// Config tunes a Server. The zero value selects micro-batched execution with
// sensible defaults.
type Config struct {
	// Workers is the worker-pool size a micro-batch executes with (default
	// 8). It bounds in-store parallelism per batch, not HTTP concurrency.
	Workers int
	// MaxBatch caps how many queries one dispatcher batch may carry
	// (default 64).
	MaxBatch int
	// BatchWait is how long the dispatcher keeps accumulating after the
	// first pending query before it fires the batch (default 200 µs;
	// negative disables accumulation — batches carry only what has already
	// arrived).
	BatchWait time.Duration
	// MaxInFlight bounds admitted requests; excess requests are answered
	// with 429 immediately (default 256).
	MaxInFlight int
	// Serial disables the micro-batching dispatcher: queries execute one at
	// a time behind an exclusive mutex. This is the baseline arm of the
	// serving benchmark, not a production setting.
	Serial bool
	// DefaultTech is the cluster read technique of queries that do not name
	// one (default TechComplete).
	DefaultTech store.Technique
	// SnapshotPath, when set, makes Shutdown save the store there after
	// draining and flushing.
	SnapshotPath string
	// OpenConfig is the store configuration POST /load reopens snapshots
	// with (buffer size, backend, path). The organization kind and disk
	// parameters always come from the snapshot itself, and the disk
	// throttle of the previously served store carries over. Note that a
	// file backend here needs a path that is fresh on every load — the
	// previous store still owns its own backing file until the swap — so
	// /load serves snapshots from memory unless the owner arranges
	// otherwise.
	OpenConfig spatialcluster.StoreConfig
	// SlowLogMS is the slow-query log threshold in milliseconds: every
	// request at least this slow is kept in the /debug/slowlog ring. Zero
	// selects the 250 ms default; negative disables the log.
	SlowLogMS float64
	// Pprof mounts net/http/pprof under /debug/pprof/ on the handler tree.
	// Off by default: profiling endpoints on a benchmark server distort the
	// numbers they would explain.
	Pprof bool
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.BatchWait == 0 {
		c.BatchWait = 200 * time.Microsecond
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 256
	}
	return c
}

// Server serves one storage organization over HTTP. Create it with New,
// mount Handler on an http.Server, and call Shutdown when done.
type Server struct {
	cfg Config

	orgMu sync.RWMutex // guards org (swapped by /load while quiesced)
	org   store.Organization

	jobs       chan *job
	quit       chan struct{}
	dispatchWG sync.WaitGroup
	serialMu   sync.Mutex // serial-mode query serialization

	inflight chan struct{} // admission semaphore, capacity MaxInFlight
	exclMu   sync.Mutex    // serializes quiescing endpoints (/save, /load)
	closed   atomic.Bool

	metrics *metricsRegistry
	slow    *obs.SlowLog
}

// New creates a server over a flushed organization and starts its
// dispatcher. The caller keeps ownership of the organization's backend;
// Shutdown flushes but does not close it.
func New(org store.Organization, cfg Config) *Server {
	cfg = cfg.withDefaults()
	slowThreshold := time.Duration(cfg.SlowLogMS * float64(time.Millisecond))
	if cfg.SlowLogMS == 0 {
		slowThreshold = 250 * time.Millisecond
	}
	s := &Server{
		cfg:      cfg,
		org:      org,
		jobs:     make(chan *job, cfg.MaxInFlight),
		quit:     make(chan struct{}),
		inflight: make(chan struct{}, cfg.MaxInFlight),
		metrics:  newMetricsRegistry(),
		slow:     obs.NewSlowLog(slowThreshold, 128),
	}
	if !cfg.Serial {
		s.dispatchWG.Add(1)
		go s.dispatch()
	}
	return s
}

// organization returns the currently served organization.
func (s *Server) organization() store.Organization {
	s.orgMu.RLock()
	defer s.orgMu.RUnlock()
	return s.org
}

// Organization exposes the currently served organization — after a /load
// this differs from the one the server was created with (the daemon closes
// the served store's backend on exit, so it must ask, not remember).
func (s *Server) Organization() store.Organization { return s.organization() }

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query/window", s.admitted(s.handleWindow))
	mux.HandleFunc("/query/point", s.admitted(s.handlePoint))
	mux.HandleFunc("/query/knn", s.admitted(s.handleKNN))
	mux.HandleFunc("/insert", s.admitted(s.handleInsert))
	mux.HandleFunc("/update", s.admitted(s.handleUpdate))
	mux.HandleFunc("/delete", s.admitted(s.handleDelete))
	mux.HandleFunc("/bin/window", s.admitted(s.handleBinWindow))
	mux.HandleFunc("/bin/point", s.admitted(s.handleBinPoint))
	mux.HandleFunc("/bin/knn", s.admitted(s.handleBinKNN))
	mux.HandleFunc("/bin/insert", s.admitted(s.handleBinInsert))
	mux.HandleFunc("/bin/update", s.admitted(s.handleBinUpdate))
	mux.HandleFunc("/bin/delete", s.admitted(s.handleBinDelete))
	mux.HandleFunc("/recluster", s.admitted(s.handleRecluster))
	mux.HandleFunc("/flush", s.admitted(s.handleFlush))
	mux.HandleFunc("/save", s.quiesced(s.handleSave))
	mux.HandleFunc("/load", s.quiesced(s.handleLoad))
	mux.HandleFunc("/stats", s.observed("/stats", s.handleStats))
	mux.HandleFunc("/metrics", s.observed("/metrics", s.handleMetrics))
	mux.HandleFunc("/debug/slowlog", s.observed("/debug/slowlog", s.handleSlowLog))
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	if s.cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// statusRecorder captures the response status for the metrics counters, plus
// the dispatcher's queue/execute attribution for the slow-query log (handlers
// copy it off the job with noteJob).
type statusRecorder struct {
	http.ResponseWriter
	status  int
	queueNS int64
	execNS  int64
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

// noteJob hands a finished job's dispatcher attribution to the wrapper, for
// the slow-query log. w is the wrapper's statusRecorder on the instrumented
// paths; anything else (a bare ResponseWriter in a test) is a no-op.
func noteJob(w http.ResponseWriter, j *job) {
	if rec, ok := w.(*statusRecorder); ok {
		rec.queueNS, rec.execNS = j.queueNS, j.execNS
	}
}

// finish feeds one completed request into the metrics registry and the
// slow-query log.
func (s *Server) finish(path string, start time.Time, rec *statusRecorder) {
	d := time.Since(start)
	s.metrics.record(path, d, rec.status >= 400)
	s.slow.Note(obs.SlowEntry{
		Endpoint: path,
		Status:   rec.status,
		Time:     start,
		WallMS:   d.Seconds() * 1000,
		QueueMS:  float64(rec.queueNS) / 1e6,
		ExecMS:   float64(rec.execNS) / 1e6,
	})
}

// observed instruments an endpoint without admission control (read-only
// introspection must keep answering under overload).
func (s *Server) observed(path string, fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "%s needs GET", path)
			return
		}
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		fn(rec, r)
		s.finish(path, start, rec)
	}
}

// admitted wraps a POST endpoint with admission control: when MaxInFlight
// requests are already being served the request is rejected with 429
// immediately — bounded latency under overload beats an unbounded queue.
func (s *Server) admitted(fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		path := r.URL.Path
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "%s needs POST", path)
			return
		}
		if s.closed.Load() {
			writeError(w, http.StatusServiceUnavailable, "server is shutting down")
			return
		}
		select {
		case s.inflight <- struct{}{}:
		default:
			s.metrics.reject(path)
			writeError(w, http.StatusTooManyRequests,
				"overloaded: %d requests in flight", s.cfg.MaxInFlight)
			return
		}
		defer func() { <-s.inflight }()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		fn(rec, r)
		s.finish(path, start, rec)
	}
}

// quiesceTimeout caps how long /save, /load and Shutdown wait for in-flight
// requests to drain.
const quiesceTimeout = 30 * time.Second

// quiesce waits until no other request is in flight by acquiring every
// admission permit, and returns a release function. It must not be called
// while holding a permit.
func (s *Server) quiesce(ctx context.Context) (release func(), err error) {
	ctx, cancel := context.WithTimeout(ctx, quiesceTimeout)
	defer cancel()
	held := 0
	releaseHeld := func() {
		for i := 0; i < held; i++ {
			<-s.inflight
		}
	}
	for held < s.cfg.MaxInFlight {
		select {
		case s.inflight <- struct{}{}:
			held++
		case <-ctx.Done():
			releaseHeld()
			return nil, fmt.Errorf("waiting for %d in-flight requests: %w",
				s.cfg.MaxInFlight-held, ctx.Err())
		}
	}
	return releaseHeld, nil
}

// quiesced wraps an endpoint that needs the store to itself (/save reads
// unsynchronized bookkeeping maps, /load swaps the organization). The
// handler runs with every admission permit held: no query or mutation is in
// flight, and new ones wait in the 429 path.
func (s *Server) quiesced(fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		path := r.URL.Path
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "%s needs POST", path)
			return
		}
		if s.closed.Load() {
			writeError(w, http.StatusServiceUnavailable, "server is shutting down")
			return
		}
		s.exclMu.Lock()
		defer s.exclMu.Unlock()
		release, err := s.quiesce(r.Context())
		if err != nil {
			writeError(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
		defer release()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		fn(rec, r)
		s.finish(path, start, rec)
	}
}

// TraceIDHeader is the JSON protocol's trace-context hop: a gateway (the
// router) forwards its trace ID here alongside ?trace=1, so the shard's
// sub-trace shares the identity of the distributed trace it belongs to.
const TraceIDHeader = "X-Sdb-Trace-Id"

// traceFor starts a trace when the request asked for one with ?trace=1 (any
// non-empty value except "0"); otherwise it returns nil, which every trace
// method accepts and ignores. A propagated trace ID in TraceIDHeader is
// adopted instead of minting a fresh one.
func traceFor(r *http.Request) *obs.Trace {
	if v := r.URL.Query().Get("trace"); v != "" && v != "0" {
		if h := r.Header.Get(TraceIDHeader); h != "" {
			if id, err := strconv.ParseUint(h, 10, 64); err == nil {
				return obs.NewTraceWithID(id)
			}
		}
		return obs.NewTrace()
	}
	return nil
}

// traceInfo converts a finished trace to its wire form (nil stays nil).
func traceInfo(tr *obs.Trace) *TraceInfo {
	if tr == nil {
		return nil
	}
	return &TraceInfo{TraceID: tr.ID(), TotalMS: tr.TotalMS(), Spans: tr.Spans()}
}

// handleHealthz answers liveness: the process serves HTTP. Always 200.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "/healthz needs GET")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz answers readiness: 200 while the server accepts work, 503
// once shutdown has begun (load balancers stop routing before the drain).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "/readyz needs GET")
		return
	}
	if s.closed.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleWindow(w http.ResponseWriter, r *http.Request) {
	var req WindowRequest
	if err := readJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	tech, err := store.TechByName(req.Tech)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Tech == "" {
		tech = s.cfg.DefaultTech
	}
	j := &job{
		kind:   jobWindow,
		window: geom.R(req.Window[0], req.Window[1], req.Window[2], req.Window[3]),
		tech:   tech,
		tr:     traceFor(r),
		done:   make(chan struct{}),
	}
	s.execute(j)
	noteJob(w, j)
	writeJSON(w, http.StatusOK, QueryResponse{
		IDs: idsToWire(j.qr.IDs), Candidates: j.qr.Candidates, Trace: traceInfo(j.tr),
	})
}

func (s *Server) handlePoint(w http.ResponseWriter, r *http.Request) {
	var req PointRequest
	if err := readJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	j := &job{kind: jobPoint, pt: geom.Pt(req.Point[0], req.Point[1]), tr: traceFor(r), done: make(chan struct{})}
	s.execute(j)
	noteJob(w, j)
	writeJSON(w, http.StatusOK, QueryResponse{
		IDs: idsToWire(j.qr.IDs), Candidates: j.qr.Candidates, Trace: traceInfo(j.tr),
	})
}

func (s *Server) handleKNN(w http.ResponseWriter, r *http.Request) {
	var req KNNRequest
	if err := readJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.K < 1 {
		writeError(w, http.StatusBadRequest, "k must be positive, got %d", req.K)
		return
	}
	j := &job{kind: jobKNN, pt: geom.Pt(req.Point[0], req.Point[1]), k: req.K, tr: traceFor(r), done: make(chan struct{})}
	s.execute(j)
	noteJob(w, j)
	writeJSON(w, http.StatusOK, KNNResponse{
		IDs: idsToWire(j.nr.IDs), Dists: j.nr.Dists, Candidates: j.nr.Candidates, Trace: traceInfo(j.tr),
	})
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	o, key, ok := decodeInsert(w, r)
	if !ok {
		return
	}
	j := &job{kind: jobInsert, obj: o, key: key, tr: traceFor(r), done: make(chan struct{})}
	s.execute(j)
	noteJob(w, j)
	if j.err != nil {
		writeError(w, http.StatusInternalServerError, "%v", j.err)
		return
	}
	writeJSON(w, http.StatusOK, MutateResponse{Trace: traceInfo(j.tr)})
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	o, key, ok := decodeInsert(w, r)
	if !ok {
		return
	}
	j := &job{kind: jobUpdate, obj: o, key: key, tr: traceFor(r), done: make(chan struct{})}
	s.execute(j)
	noteJob(w, j)
	if j.err != nil {
		writeError(w, http.StatusInternalServerError, "%v", j.err)
		return
	}
	writeJSON(w, http.StatusOK, MutateResponse{Existed: j.existed, Trace: traceInfo(j.tr)})
}

// decodeInsert parses an insert/update body into an engine object and its
// spatial key (the object's bounds when the request names none), answering
// the 400 itself on malformed input.
func decodeInsert(w http.ResponseWriter, r *http.Request) (*object.Object, geom.Rect, bool) {
	var req InsertRequest
	if err := readJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return nil, geom.Rect{}, false
	}
	o, err := req.Object.toObject()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return nil, geom.Rect{}, false
	}
	key := o.Bounds()
	if req.Key != nil {
		key = geom.R(req.Key[0], req.Key[1], req.Key[2], req.Key[3])
	}
	return o, key, true
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	var req DeleteRequest
	if err := readJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	j := &job{kind: jobDelete, id: object.ID(req.ID), tr: traceFor(r), done: make(chan struct{})}
	s.execute(j)
	noteJob(w, j)
	if j.err != nil {
		writeError(w, http.StatusInternalServerError, "%v", j.err)
		return
	}
	writeJSON(w, http.StatusOK, MutateResponse{Existed: j.existed, Trace: traceInfo(j.tr)})
}

func (s *Server) handleRecluster(w http.ResponseWriter, r *http.Request) {
	var req ReclusterRequest
	if err := readJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	pol, err := recluster.ByName(req.Policy)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	org := s.organization()
	if _, isCluster := store.Unwrap(org).(*store.Cluster); !isCluster {
		writeJSON(w, http.StatusOK, ReclusterResponse{
			Note: fmt.Sprintf("policy %s ignored: %s has no cluster units", pol.Name(), org.Name()),
		})
		return
	}
	var res recluster.Result
	if ws, ok := org.(*wal.Store); ok {
		// The WAL logs the pass so replay repeats it at the same point of
		// the mutation history.
		res, err = ws.Recluster(req.Policy)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
	} else {
		res = pol.Maintain(store.Unwrap(org).(*store.Cluster))
	}
	org.Flush()
	writeJSON(w, http.StatusOK, ReclusterResponse{RepackedUnits: res.RepackedUnits, Rebuilt: res.Rebuilt})
}

func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	s.organization().Flush()
	writeJSON(w, http.StatusOK, struct{}{})
}

func (s *Server) handleSave(w http.ResponseWriter, r *http.Request) {
	var req PathRequest
	if err := readJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Path == "" {
		writeError(w, http.StatusBadRequest, "save needs a path")
		return
	}
	if err := spatialcluster.Save(s.organization(), req.Path); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	st, err := os.Stat(req.Path)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, SaveResponse{Path: req.Path, Bytes: st.Size()})
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	var req PathRequest
	if err := readJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Path == "" {
		writeError(w, http.StatusBadRequest, "load needs a path")
		return
	}
	fresh, err := spatialcluster.Open(req.Path, s.cfg.OpenConfig)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// On a WAL-attached store the wrapper stays: the fresh organization is
	// rebased under it (checkpoint of the new state + retirement of the log
	// history, which no longer describes the served data) and the previous
	// underlying organization is what gets closed. The store is quiesced (we
	// hold every admission permit), so the swap cannot race a request.
	var old store.Organization
	if ws, ok := s.organization().(*wal.Store); ok {
		old = ws.Underlying()
		if err := ws.Rebase(fresh); err != nil {
			fresh.Env().Close()
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
	} else {
		s.orgMu.Lock()
		old = s.org
		s.org = fresh
		s.orgMu.Unlock()
	}
	// The serving environment carries over: the snapshot decides the data,
	// the daemon's flags decide how it is served (wall-clock throttle; the
	// buffer size and backend come from OpenConfig).
	fresh.Env().Disk.SetThrottle(old.Env().Disk.Throttle())
	resp := s.statsResponse(s.organization())
	// The load has already succeeded at this point — a close failure of the
	// previous store's backend is a warning, not an error.
	if err := old.Env().Close(); err != nil {
		resp.Warning = fmt.Sprintf("loaded, but closing the previous store's backend failed: %v", err)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.statsResponse(s.organization()))
}

func (s *Server) statsResponse(org store.Organization) StatsResponse {
	st := org.Stats()
	resp := StatsResponse{
		Org:           org.Name(),
		Objects:       st.Objects,
		OccupiedPages: st.OccupiedPages,
		DirPages:      st.DirPages,
		LeafPages:     st.LeafPages,
		ObjectPages:   st.ObjectPages,
		ObjectBytes:   st.ObjectBytes,
		LiveBytes:     st.LiveBytes,
		DeadBytes:     st.DeadBytes,
		Units:         st.Units,
		ExtentUtil:    st.ExtentUtil,
	}
	if ws, ok := org.(*wal.Store); ok {
		ls := ws.Log().Stats()
		hs := ws.Log().SyncHist().Snapshot()
		resp.WAL = &WALStats{
			Segments:    ls.Segments,
			Bytes:       ls.Bytes,
			LastLSN:     ls.LastLSN,
			Syncs:       ls.Syncs,
			LastFsyncMS: float64(ls.LastSyncNanos) / 1e6,
			FsyncP50MS:  hs.Quantile(0.50).Seconds() * 1000,
			FsyncP95MS:  hs.Quantile(0.95).Seconds() * 1000,
			FsyncP99MS:  hs.Quantile(0.99).Seconds() * 1000,
		}
	}
	return resp
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	org := s.organization()
	env := org.Env()
	m := Metrics{
		Org:         org.Name(),
		Storage:     s.statsResponse(org),
		SerialMode:  s.cfg.Serial,
		InFlight:    len(s.inflight),
		MaxInFlight: s.cfg.MaxInFlight,
		Throttle:    env.Disk.Throttle(),
	}
	m.ModelCost = env.Disk.Cost()
	m.ModelIOSec = m.ModelCost.TimeSec(env.Params())
	meas := env.Disk.Measured()
	m.MeasuredIOSec = meas.IOSeconds()
	m.MeasuredReads = meas.Reads
	m.SlowLogTotal = s.slow.Total()
	m.SlowLogMS = s.slow.Threshold().Seconds() * 1000
	fillBuffer(&m, env.Buf.Stats())
	s.metrics.snapshot(&m)
	if PromWanted(r) {
		w.Header().Set("Content-Type", promContentType)
		s.writeProm(w, &m)
		return
	}
	writeJSON(w, http.StatusOK, m)
}

// PromWanted decides the /metrics representation: ?format=prom (or json)
// wins; otherwise an Accept header asking for text/plain — what a Prometheus
// scraper sends — selects the exposition format. The default stays JSON for
// curl and the existing clients.
func PromWanted(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prom":
		return true
	case "json":
		return false
	}
	return strings.Contains(r.Header.Get("Accept"), "text/plain")
}

func (s *Server) handleSlowLog(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, SlowLogResponse{
		ThresholdMS: s.slow.Threshold().Seconds() * 1000,
		Total:       s.slow.Total(),
		Entries:     s.slow.Entries(),
	})
}

// Shutdown drains in-flight requests, stops the dispatcher, flushes the
// store and — when Config.SnapshotPath is set — saves a snapshot. The HTTP
// listener must be shut down first (http.Server.Shutdown), so no new
// requests race the drain. Shutdown does not close the store's backend; the
// owner does.
func (s *Server) Shutdown(ctx context.Context) error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	s.exclMu.Lock()
	defer s.exclMu.Unlock()
	release, err := s.quiesce(ctx)
	if err != nil {
		return fmt.Errorf("server: shutdown: %w", err)
	}
	defer release()
	if !s.cfg.Serial {
		close(s.quit)
		s.dispatchWG.Wait()
	}
	org := s.organization()
	org.Flush()
	if s.cfg.SnapshotPath != "" {
		if err := spatialcluster.Save(org, s.cfg.SnapshotPath); err != nil {
			return fmt.Errorf("server: shutdown snapshot: %w", err)
		}
	}
	return nil
}
