// Package server is the network serving layer: an HTTP/JSON API over a live
// storage organization, multiplexing many concurrent clients onto the
// parallel query engine of internal/store.
//
// The paper's evaluation measures query cost one request at a time; the
// serving layer answers the follow-up question — what those costs mean under
// sustained multi-client load. Its centerpiece is the micro-batching
// dispatcher: queries arriving concurrently are collected into small batches
// and fed to the store's batched entry points (RunWindowQueryBatch and
// friends), so a burst of B requests executes with min(B, workers)
// parallelism under the environment's read lock instead of serializing.
// Mutations (insert/delete/update, recluster) go through the organization's
// own write-locked methods and interleave safely with in-flight batches.
//
// The server enforces admission control — at most Config.MaxInFlight
// requests are in flight, the rest are rejected with 429 — and supports
// graceful shutdown: draining in-flight requests, flushing the store, and
// optionally saving a snapshot. /metrics exposes storage statistics, buffer
// hit ratio, modelled vs measured I/O, batch shape, and per-endpoint latency
// counters.
//
// Endpoints (all request/response bodies are JSON; see api.go):
//
//	POST /query/window  {"window":[x1,y1,x2,y2],"tech":"complete"}
//	POST /query/point   {"point":[x,y]}
//	POST /query/knn     {"point":[x,y],"k":10}
//	POST /insert        {"object":{...},"key":[x1,y1,x2,y2]}
//	POST /update        {"object":{...}}
//	POST /delete        {"id":17}
//	POST /recluster     {"policy":"threshold"}
//	POST /flush         {}
//	POST /save          {"path":"store.sdb"}
//	POST /load          {"path":"store.sdb"}
//	GET  /stats
//	GET  /metrics
//
// The daemon wrapping this package is cmd/sdbd; the load-generation harness
// driving it is internal/loadgen; the benchmark comparing micro-batched
// against serialized execution is exp.ServerBench (BENCH_server.json).
package server
