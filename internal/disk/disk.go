package disk

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Disk is a simulated magnetic disk: a linear array of 4 KB pages plus the
// cost accountant. The head position is tracked so that a write request
// starting exactly where the previous one ended streams on without seek or
// latency; anything else pays at least a rotational delay, and a full seek
// unless the request is chained to an uninterrupted access of the same
// storage unit.
//
// Concurrency: cost accounting is atomic and the page store is guarded by a
// read-write lock, so any number of concurrent readers can share one disk
// (the parallel query and join engines rely on this). The cost model itself
// still serializes requests ("such a read request will not be interrupted by
// other requests", paper section 3.1): a Cost snapshot taken while requests
// are in flight may be torn across components, and the write-streaming
// discount is only meaningful for the single-threaded construction phase.
// Callers that need exact per-operation costs must serialize the charging
// operations themselves, as the join dispatcher does.
type Disk struct {
	params Params

	mu    sync.RWMutex // guards pages
	pages [][]byte

	head atomic.Int64 // page following the last transferred one

	// Cost components, updated atomically.
	seeks         atomic.Int64
	rotations     atomic.Int64
	pagesRead     atomic.Int64
	pagesWritten  atomic.Int64
	readRequests  atomic.Int64
	writeRequests atomic.Int64
}

// New creates an empty disk with the given timing parameters.
func New(params Params) *Disk {
	return &Disk{params: params}
}

// NewDefault creates an empty disk with the paper's timing parameters.
func NewDefault() *Disk { return New(DefaultParams()) }

// Params returns the timing parameters of the disk.
func (d *Disk) Params() Params { return d.params }

// NumPages returns the current size of the disk in pages.
func (d *Disk) NumPages() PageID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return PageID(len(d.pages))
}

// Grow extends the disk by n pages and returns the ID of the first new page.
// Growing models formatting fresh cylinders; it costs nothing.
func (d *Disk) Grow(n int) PageID {
	if n < 0 {
		panic("disk: negative Grow")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	first := PageID(len(d.pages))
	d.pages = append(d.pages, make([][]byte, n)...)
	return first
}

// Cost returns a snapshot of the accumulated I/O cost.
func (d *Disk) Cost() Cost {
	return Cost{
		Seeks:         d.seeks.Load(),
		Rotations:     d.rotations.Load(),
		PagesRead:     d.pagesRead.Load(),
		PagesWritten:  d.pagesWritten.Load(),
		ReadRequests:  d.readRequests.Load(),
		WriteRequests: d.writeRequests.Load(),
	}
}

// ResetCost clears the accumulated I/O cost (e.g. between the construction
// and the query phase of an experiment).
func (d *Disk) ResetCost() {
	d.seeks.Store(0)
	d.rotations.Store(0)
	d.pagesRead.Store(0)
	d.pagesWritten.Store(0)
	d.readRequests.Store(0)
	d.writeRequests.Store(0)
}

// TimeMS returns the modelled time of the accumulated cost in milliseconds.
func (d *Disk) TimeMS() float64 { return d.Cost().TimeMS(d.params) }

// checkRunLocked validates a run; the caller holds d.mu (read or write).
func (d *Disk) checkRunLocked(start PageID, n int) {
	if n <= 0 {
		panic(fmt.Sprintf("disk: empty run [%d,+%d)", start, n))
	}
	if start < 0 || start+PageID(n) > PageID(len(d.pages)) {
		panic(fmt.Sprintf("disk: run [%d,+%d) outside disk of %d pages",
			start, n, len(d.pages)))
	}
}

// chargeRead accounts one read request of n consecutive pages starting at
// start. chained marks a follow-up request within an uninterrupted access to
// the same storage unit (no extra seek). Reads follow the paper's formulas
// exactly: a fresh request always pays seek and latency (tcompl = ts + tl +
// size·tt, section 5.4.1), with no head-position streaming discount.
func (d *Disk) chargeRead(start PageID, n int, chained bool) {
	if chained {
		d.rotations.Add(1)
	} else {
		d.seeks.Add(1)
		d.rotations.Add(1)
	}
	d.pagesRead.Add(int64(n))
	d.readRequests.Add(1)
	d.head.Store(int64(start) + int64(n))
}

// chargeWrite accounts one write request. Unlike reads, a write starting
// exactly at the head position streams on for free: this models the buffered
// sequential writing of construction (appending to a sequential file or
// writing out a freshly split cluster unit back-to-back).
func (d *Disk) chargeWrite(start PageID, n int, chained bool) {
	switch {
	case int64(start) == d.head.Load():
		// Streaming continuation: the head is already there.
	case chained:
		d.rotations.Add(1)
	default:
		d.seeks.Add(1)
		d.rotations.Add(1)
	}
	d.pagesWritten.Add(int64(n))
	d.writeRequests.Add(1)
	d.head.Store(int64(start) + int64(n))
}

// ReadRun issues one read request for n physically consecutive pages and
// returns their contents. Unwritten pages read as nil. The returned slices
// alias disk storage and must not be modified.
func (d *Disk) ReadRun(start PageID, n int) [][]byte {
	return d.readRun(start, n, false)
}

// ReadRunChained is ReadRun for a follow-up request within an uninterrupted
// access to one storage unit: it is charged a rotational delay but no seek
// (paper section 5.4.3).
func (d *Disk) ReadRunChained(start PageID, n int) [][]byte {
	return d.readRun(start, n, true)
}

func (d *Disk) readRun(start PageID, n int, chained bool) [][]byte {
	d.mu.RLock()
	defer d.mu.RUnlock()
	d.checkRunLocked(start, n)
	d.chargeRead(start, n, chained)
	out := make([][]byte, n)
	copy(out, d.pages[start:start+PageID(n)])
	return out
}

// ReadPage issues one read request for a single page.
func (d *Disk) ReadPage(id PageID) []byte { return d.ReadRun(id, 1)[0] }

// WriteRun issues one write request for n physically consecutive pages.
// data[i] is written to page start+i; each slice must be at most PageSize
// bytes and is copied. A nil slice clears the page.
func (d *Disk) WriteRun(start PageID, data [][]byte) {
	d.writeRun(start, data, false)
}

// WriteRunChained is WriteRun without the seek charge, for follow-up requests
// within an uninterrupted access.
func (d *Disk) WriteRunChained(start PageID, data [][]byte) {
	d.writeRun(start, data, true)
}

func (d *Disk) writeRun(start PageID, data [][]byte, chained bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.checkRunLocked(start, len(data))
	d.chargeWrite(start, len(data), chained)
	for i, buf := range data {
		d.storePageLocked(start+PageID(i), buf)
	}
}

// WritePage issues one write request for a single page.
func (d *Disk) WritePage(id PageID, data []byte) {
	d.WriteRun(id, [][]byte{data})
}

func (d *Disk) storePageLocked(id PageID, buf []byte) {
	if len(buf) > PageSize {
		panic(fmt.Sprintf("disk: page data of %d bytes exceeds page size", len(buf)))
	}
	if buf == nil {
		d.pages[id] = nil
		return
	}
	cp := make([]byte, len(buf))
	copy(cp, buf)
	d.pages[id] = cp
}

// Peek returns the content of a page without charging any I/O cost. It is
// intended for assertions and tests; production paths must use ReadRun.
func (d *Disk) Peek(id PageID) []byte {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id < 0 || id >= PageID(len(d.pages)) {
		panic(fmt.Sprintf("disk: Peek(%d) outside disk of %d pages", id, len(d.pages)))
	}
	return d.pages[id]
}

// Poke stores page content without charging any I/O cost. It is intended for
// tests; production paths must use WriteRun.
func (d *Disk) Poke(id PageID, data []byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if id < 0 || id >= PageID(len(d.pages)) {
		panic(fmt.Sprintf("disk: Poke(%d) outside disk of %d pages", id, len(d.pages)))
	}
	d.storePageLocked(id, data)
}

// Head returns the current head position (the page following the last
// transferred page).
func (d *Disk) Head() PageID { return PageID(d.head.Load()) }
