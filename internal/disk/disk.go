package disk

import "fmt"

// Disk is a simulated magnetic disk: a linear array of 4 KB pages plus the
// cost accountant. The head position is tracked so that a request starting
// exactly where the previous one ended streams on without seek or latency;
// anything else pays at least a rotational delay, and a full seek unless the
// request is chained to an uninterrupted access of the same storage unit.
//
// Disk is not safe for concurrent use; the simulation is single-threaded by
// design because the cost model serializes requests anyway ("such a read
// request will not be interrupted by other requests", paper section 3.1).
type Disk struct {
	params Params
	pages  [][]byte
	head   PageID // page following the last transferred one
	cost   Cost
}

// New creates an empty disk with the given timing parameters.
func New(params Params) *Disk {
	return &Disk{params: params, head: 0}
}

// NewDefault creates an empty disk with the paper's timing parameters.
func NewDefault() *Disk { return New(DefaultParams()) }

// Params returns the timing parameters of the disk.
func (d *Disk) Params() Params { return d.params }

// NumPages returns the current size of the disk in pages.
func (d *Disk) NumPages() PageID { return PageID(len(d.pages)) }

// Grow extends the disk by n pages and returns the ID of the first new page.
// Growing models formatting fresh cylinders; it costs nothing.
func (d *Disk) Grow(n int) PageID {
	if n < 0 {
		panic("disk: negative Grow")
	}
	first := PageID(len(d.pages))
	d.pages = append(d.pages, make([][]byte, n)...)
	return first
}

// Cost returns a snapshot of the accumulated I/O cost.
func (d *Disk) Cost() Cost { return d.cost }

// ResetCost clears the accumulated I/O cost (e.g. between the construction
// and the query phase of an experiment).
func (d *Disk) ResetCost() { d.cost = Cost{} }

// TimeMS returns the modelled time of the accumulated cost in milliseconds.
func (d *Disk) TimeMS() float64 { return d.cost.TimeMS(d.params) }

func (d *Disk) checkRun(start PageID, n int) {
	if n <= 0 {
		panic(fmt.Sprintf("disk: empty run [%d,+%d)", start, n))
	}
	if start < 0 || start+PageID(n) > d.NumPages() {
		panic(fmt.Sprintf("disk: run [%d,+%d) outside disk of %d pages",
			start, n, d.NumPages()))
	}
}

// chargeRead accounts one read request of n consecutive pages starting at
// start. chained marks a follow-up request within an uninterrupted access to
// the same storage unit (no extra seek). Reads follow the paper's formulas
// exactly: a fresh request always pays seek and latency (tcompl = ts + tl +
// size·tt, section 5.4.1), with no head-position streaming discount.
func (d *Disk) chargeRead(start PageID, n int, chained bool) {
	if chained {
		d.cost.Rotations++
	} else {
		d.cost.Seeks++
		d.cost.Rotations++
	}
	d.cost.PagesRead += int64(n)
	d.cost.ReadRequests++
	d.head = start + PageID(n)
}

// chargeWrite accounts one write request. Unlike reads, a write starting
// exactly at the head position streams on for free: this models the buffered
// sequential writing of construction (appending to a sequential file or
// writing out a freshly split cluster unit back-to-back).
func (d *Disk) chargeWrite(start PageID, n int, chained bool) {
	switch {
	case start == d.head:
		// Streaming continuation: the head is already there.
	case chained:
		d.cost.Rotations++
	default:
		d.cost.Seeks++
		d.cost.Rotations++
	}
	d.cost.PagesWritten += int64(n)
	d.cost.WriteRequests++
	d.head = start + PageID(n)
}

// ReadRun issues one read request for n physically consecutive pages and
// returns their contents. Unwritten pages read as nil. The returned slices
// alias disk storage and must not be modified.
func (d *Disk) ReadRun(start PageID, n int) [][]byte {
	return d.readRun(start, n, false)
}

// ReadRunChained is ReadRun for a follow-up request within an uninterrupted
// access to one storage unit: it is charged a rotational delay but no seek
// (paper section 5.4.3).
func (d *Disk) ReadRunChained(start PageID, n int) [][]byte {
	return d.readRun(start, n, true)
}

func (d *Disk) readRun(start PageID, n int, chained bool) [][]byte {
	d.checkRun(start, n)
	d.chargeRead(start, n, chained)
	out := make([][]byte, n)
	copy(out, d.pages[start:start+PageID(n)])
	return out
}

// ReadPage issues one read request for a single page.
func (d *Disk) ReadPage(id PageID) []byte { return d.ReadRun(id, 1)[0] }

// WriteRun issues one write request for n physically consecutive pages.
// data[i] is written to page start+i; each slice must be at most PageSize
// bytes and is copied. A nil slice clears the page.
func (d *Disk) WriteRun(start PageID, data [][]byte) {
	d.writeRun(start, data, false)
}

// WriteRunChained is WriteRun without the seek charge, for follow-up requests
// within an uninterrupted access.
func (d *Disk) WriteRunChained(start PageID, data [][]byte) {
	d.writeRun(start, data, true)
}

func (d *Disk) writeRun(start PageID, data [][]byte, chained bool) {
	d.checkRun(start, len(data))
	d.chargeWrite(start, len(data), chained)
	for i, buf := range data {
		d.storePage(start+PageID(i), buf)
	}
}

// WritePage issues one write request for a single page.
func (d *Disk) WritePage(id PageID, data []byte) {
	d.WriteRun(id, [][]byte{data})
}

func (d *Disk) storePage(id PageID, buf []byte) {
	if len(buf) > PageSize {
		panic(fmt.Sprintf("disk: page data of %d bytes exceeds page size", len(buf)))
	}
	if buf == nil {
		d.pages[id] = nil
		return
	}
	cp := make([]byte, len(buf))
	copy(cp, buf)
	d.pages[id] = cp
}

// Peek returns the content of a page without charging any I/O cost. It is
// intended for assertions and tests; production paths must use ReadRun.
func (d *Disk) Peek(id PageID) []byte {
	if id < 0 || id >= d.NumPages() {
		panic(fmt.Sprintf("disk: Peek(%d) outside disk of %d pages", id, d.NumPages()))
	}
	return d.pages[id]
}

// Poke stores page content without charging any I/O cost. It is intended for
// tests; production paths must use WriteRun.
func (d *Disk) Poke(id PageID, data []byte) {
	if id < 0 || id >= d.NumPages() {
		panic(fmt.Sprintf("disk: Poke(%d) outside disk of %d pages", id, d.NumPages()))
	}
	d.storePage(id, data)
}

// Head returns the current head position (the page following the last
// transferred page).
func (d *Disk) Head() PageID { return d.head }
