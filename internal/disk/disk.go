package disk

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Disk is the modelled magnetic disk: a linear array of 4 KB pages plus the
// cost accountant. The pages themselves live in a pluggable Backend (in
// memory by default, in a real file via internal/disk/filebackend); the cost
// model is identical for every backend, so modelled numbers can be compared
// against the backend's measured wall-clock I/O. The head position is
// tracked so that a write request starting exactly where the previous one
// ended streams on without seek or latency; anything else pays at least a
// rotational delay, and a full seek unless the request is chained to an
// uninterrupted access of the same storage unit.
//
// Concurrency: cost accounting is atomic and backend access is guarded by a
// read-write lock, so any number of concurrent readers can share one disk
// (the parallel query and join engines rely on this). The cost model itself
// still serializes requests ("such a read request will not be interrupted by
// other requests", paper section 3.1): a Cost snapshot taken while requests
// are in flight may be torn across components, and the write-streaming
// discount is only meaningful for the single-threaded construction phase.
// Callers that need exact per-operation costs must serialize the charging
// operations themselves, as the join dispatcher does.
type Disk struct {
	params Params

	mu sync.RWMutex // guards the backend
	b  Backend

	head atomic.Int64 // page following the last transferred one

	// throttle holds the float64 bits of the wall-clock throttle factor:
	// every charged request additionally sleeps its modelled time times this
	// factor. Zero (the default) disables sleeping entirely.
	throttle atomic.Uint64

	// Cost components, updated atomically.
	seeks         atomic.Int64
	rotations     atomic.Int64
	pagesRead     atomic.Int64
	pagesWritten  atomic.Int64
	readRequests  atomic.Int64
	writeRequests atomic.Int64
}

// New creates an empty in-memory disk with the given timing parameters.
func New(params Params) *Disk { return NewWithBackend(params, NewMemBackend()) }

// NewDefault creates an empty in-memory disk with the paper's timing
// parameters.
func NewDefault() *Disk { return New(DefaultParams()) }

// NewWithBackend creates a disk whose pages live in the given backend. The
// cost model charges the same modelled time regardless of the backend.
func NewWithBackend(params Params, b Backend) *Disk {
	if b == nil {
		b = NewMemBackend()
	}
	return &Disk{params: params, b: b}
}

// Params returns the timing parameters of the disk.
func (d *Disk) Params() Params { return d.params }

// Backend returns the physical page store behind the disk.
func (d *Disk) Backend() Backend { return d.b }

// NumPages returns the current size of the disk in pages.
func (d *Disk) NumPages() PageID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.b.NumPages()
}

// Grow extends the disk by n pages and returns the ID of the first new page.
// Growing models formatting fresh cylinders; it costs nothing.
func (d *Disk) Grow(n int) PageID {
	if n < 0 {
		panic("disk: negative Grow")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.b.Alloc(n)
}

// FreeRun tells the backend that the run [start, start+n) is unused, so it
// can release the memory or punch a hole in the backing file. Like Grow it
// models file-system bookkeeping and charges no I/O; the extent allocator
// calls it when an extent is returned.
func (d *Disk) FreeRun(start PageID, n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	checkBackendRun(d.b, start, n)
	d.b.Free(start, n)
}

// Sync makes all written pages durable (backend Flush; fsync on a
// fsync-configured file backend). It charges no modelled cost: durability is
// a property of the real medium, not of the paper's timing model.
func (d *Disk) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.b.Flush()
}

// Close releases the backend. The disk must not be used afterwards.
func (d *Disk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.b.Close()
}

// Measured reports the backend's real wall-clock I/O counters (all zero for
// the in-memory backend).
func (d *Disk) Measured() Measured { return d.b.Measured() }

// Cost returns a snapshot of the accumulated I/O cost.
func (d *Disk) Cost() Cost {
	return Cost{
		Seeks:         d.seeks.Load(),
		Rotations:     d.rotations.Load(),
		PagesRead:     d.pagesRead.Load(),
		PagesWritten:  d.pagesWritten.Load(),
		ReadRequests:  d.readRequests.Load(),
		WriteRequests: d.writeRequests.Load(),
	}
}

// ResetCost clears the accumulated I/O cost (e.g. between the construction
// and the query phase of an experiment).
func (d *Disk) ResetCost() {
	d.seeks.Store(0)
	d.rotations.Store(0)
	d.pagesRead.Store(0)
	d.pagesWritten.Store(0)
	d.readRequests.Store(0)
	d.writeRequests.Store(0)
}

// TimeMS returns the modelled time of the accumulated cost in milliseconds.
func (d *Disk) TimeMS() float64 { return d.Cost().TimeMS(d.params) }

// SetThrottle makes every subsequent request sleep its modelled time times
// factor, turning the cost model into a wall-clock simulation: a throttled
// disk behaves like real hardware that is `1/factor` times faster than the
// paper's 1994 drive (factor 1 replays the modelled times exactly; factor
// 0.002 compresses a 15 ms request to 30 µs). Zero — the default — disables
// sleeping. The serving benchmark uses this to make the server I/O-bound the
// way the paper's hardware was, so that multiplexing concurrent queries onto
// the worker pool yields real wall-clock gains; cost accounting and query
// answers are completely unaffected.
func (d *Disk) SetThrottle(factor float64) {
	if factor < 0 || math.IsNaN(factor) || math.IsInf(factor, 0) {
		panic(fmt.Sprintf("disk: bad throttle factor %v", factor))
	}
	d.throttle.Store(math.Float64bits(factor))
}

// Throttle returns the current wall-clock throttle factor (zero = off).
func (d *Disk) Throttle() float64 {
	return math.Float64frombits(d.throttle.Load())
}

// throttleSleep sleeps the throttled share of one request's modelled time.
// It must be called after all disk locks are released, so concurrent
// requests overlap their sleeps exactly like independent in-flight I/Os.
func (d *Disk) throttleSleep(requestMS float64) {
	f := d.Throttle()
	if f == 0 || requestMS <= 0 {
		return
	}
	time.Sleep(time.Duration(requestMS * f * float64(time.Millisecond)))
}

// chargeRead accounts one read request of n consecutive pages starting at
// start and returns the modelled time of this request in milliseconds (the
// throttle sleeps that long, scaled). chained marks a follow-up request
// within an uninterrupted access to the same storage unit (no extra seek).
// Reads follow the paper's formulas exactly: a fresh request always pays
// seek and latency (tcompl = ts + tl + size·tt, section 5.4.1), with no
// head-position streaming discount.
func (d *Disk) chargeRead(start PageID, n int, chained bool) float64 {
	ms := d.params.LatencyMS + float64(n)*d.params.TransferMS
	if chained {
		d.rotations.Add(1)
	} else {
		d.seeks.Add(1)
		d.rotations.Add(1)
		ms += d.params.SeekMS
	}
	d.pagesRead.Add(int64(n))
	d.readRequests.Add(1)
	d.head.Store(int64(start) + int64(n))
	return ms
}

// chargeWrite accounts one write request. Unlike reads, a write starting
// exactly at the head position streams on for free: this models the buffered
// sequential writing of construction (appending to a sequential file or
// writing out a freshly split cluster unit back-to-back).
func (d *Disk) chargeWrite(start PageID, n int, chained bool) float64 {
	ms := float64(n) * d.params.TransferMS
	switch {
	case int64(start) == d.head.Load():
		// Streaming continuation: the head is already there.
	case chained:
		d.rotations.Add(1)
		ms += d.params.LatencyMS
	default:
		d.seeks.Add(1)
		d.rotations.Add(1)
		ms += d.params.SeekMS + d.params.LatencyMS
	}
	d.pagesWritten.Add(int64(n))
	d.writeRequests.Add(1)
	d.head.Store(int64(start) + int64(n))
	return ms
}

// ReadRun issues one read request for n physically consecutive pages and
// returns their contents. Unwritten pages read as nil. The returned slices
// may alias backend storage and must not be modified.
func (d *Disk) ReadRun(start PageID, n int) [][]byte {
	return d.readRun(start, n, false)
}

// ReadRunChained is ReadRun for a follow-up request within an uninterrupted
// access to one storage unit: it is charged a rotational delay but no seek
// (paper section 5.4.3).
func (d *Disk) ReadRunChained(start PageID, n int) [][]byte {
	return d.readRun(start, n, true)
}

func (d *Disk) readRun(start PageID, n int, chained bool) [][]byte {
	out, ms := d.readRunLocked(start, n, chained)
	d.throttleSleep(ms) // after unlocking: concurrent sleeps overlap
	return out
}

func (d *Disk) readRunLocked(start PageID, n int, chained bool) ([][]byte, float64) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	checkBackendRun(d.b, start, n)
	ms := d.chargeRead(start, n, chained)
	return d.b.ReadRun(start, n), ms
}

// ReadPage issues one read request for a single page.
func (d *Disk) ReadPage(id PageID) []byte { return d.ReadRun(id, 1)[0] }

// WriteRun issues one write request for n physically consecutive pages.
// data[i] is written to page start+i; each slice must be at most PageSize
// bytes and is copied. A nil slice clears the page.
func (d *Disk) WriteRun(start PageID, data [][]byte) {
	d.writeRun(start, data, false)
}

// WriteRunChained is WriteRun without the seek charge, for follow-up requests
// within an uninterrupted access.
func (d *Disk) WriteRunChained(start PageID, data [][]byte) {
	d.writeRun(start, data, true)
}

func (d *Disk) writeRun(start PageID, data [][]byte, chained bool) {
	d.throttleSleep(d.writeRunLocked(start, data, chained))
}

func (d *Disk) writeRunLocked(start PageID, data [][]byte, chained bool) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	checkBackendRun(d.b, start, len(data))
	checkPageSizes(data)
	ms := d.chargeWrite(start, len(data), chained)
	d.b.WriteRun(start, data)
	return ms
}

// WritePage issues one write request for a single page.
func (d *Disk) WritePage(id PageID, data []byte) {
	d.WriteRun(id, [][]byte{data})
}

func checkPageSizes(data [][]byte) {
	for _, buf := range data {
		if len(buf) > PageSize {
			panic(fmt.Sprintf("disk: page data of %d bytes exceeds page size", len(buf)))
		}
	}
}

// Peek returns the content of a page without charging any I/O cost. It is
// intended for assertions, tests and snapshotting; production query paths
// must use ReadRun.
func (d *Disk) Peek(id PageID) []byte {
	d.mu.RLock()
	defer d.mu.RUnlock()
	checkBackendRun(d.b, id, 1)
	return d.b.ReadRun(id, 1)[0]
}

// PeekRun is Peek for n consecutive pages: one uncharged backend read for
// the whole run. Snapshotting uses it to dump the disk in large batches
// instead of one backend call per page.
func (d *Disk) PeekRun(start PageID, n int) [][]byte {
	d.mu.RLock()
	defer d.mu.RUnlock()
	checkBackendRun(d.b, start, n)
	return d.b.ReadRun(start, n)
}

// Poke stores page content without charging any I/O cost. It is intended for
// tests and snapshot restoration; production paths must use WriteRun.
func (d *Disk) Poke(id PageID, data []byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	checkBackendRun(d.b, id, 1)
	checkPageSizes([][]byte{data})
	d.b.WriteRun(id, [][]byte{data})
}

// Head returns the current head position (the page following the last
// transferred page).
func (d *Disk) Head() PageID { return PageID(d.head.Load()) }

// SetHead positions the head without charging any cost. Snapshot restoration
// uses it so a reopened disk charges subsequent writes exactly like the disk
// it was saved from (the head decides the write-streaming discount).
func (d *Disk) SetHead(id PageID) { d.head.Store(int64(id)) }
