package disk

import (
	"reflect"
	"testing"
)

// TestPlanSLMTable pins down the gap/break-even boundaries and the l < 1
// degradation for duplicate-heavy inputs.
func TestPlanSLMTable(t *testing.T) {
	cases := []struct {
		name      string
		requested []PageID
		l         int
		want      []Run
	}{
		{
			name: "empty", requested: nil, l: 5, want: nil,
		},
		{
			name: "single", requested: []PageID{7}, l: 5,
			want: []Run{{Start: 7, N: 1}},
		},
		{
			name: "gap below break-even merges", requested: []PageID{0, 3}, l: 3,
			want: []Run{{Start: 0, N: 4}}, // gap 2 < l=3: read through
		},
		{
			name: "gap at break-even splits", requested: []PageID{0, 3}, l: 2,
			want: []Run{{Start: 0, N: 1}, {Start: 3, N: 1}}, // gap 2 >= l=2
		},
		{
			name: "gap exactly l-1 merges", requested: []PageID{10, 14}, l: 4,
			want: []Run{{Start: 10, N: 5}}, // gap 3 = l-1: largest read-through
		},
		{
			name: "adjacent pages always share a run", requested: []PageID{4, 5, 6}, l: 0,
			want: []Run{{Start: 4, N: 3}},
		},
		{
			name: "l=0 degrades to maximal runs", requested: []PageID{0, 2, 3}, l: 0,
			want: []Run{{Start: 0, N: 1}, {Start: 2, N: 2}},
		},
		{
			name: "negative l degrades to maximal runs", requested: []PageID{0, 1, 5}, l: -3,
			want: []Run{{Start: 0, N: 2}, {Start: 5, N: 1}},
		},
		{
			name: "duplicate-heavy input collapses", requested: []PageID{9, 9, 9, 9, 9}, l: 0,
			want: []Run{{Start: 9, N: 1}},
		},
		{
			name:      "duplicates across runs with l=0",
			requested: []PageID{3, 7, 3, 7, 8, 3, 8}, l: 0,
			want: []Run{{Start: 3, N: 1}, {Start: 7, N: 2}},
		},
		{
			name:      "unsorted duplicates with read-through",
			requested: []PageID{12, 4, 12, 6, 4}, l: 3,
			want: []Run{{Start: 4, N: 3}, {Start: 12, N: 1}}, // gap 5 >= 3 splits
		},
		{
			name: "paper default l=5 reads through gap 4", requested: []PageID{0, 5, 11}, l: 5,
			want: []Run{{Start: 0, N: 6}, {Start: 11, N: 1}}, // gaps 4 and 5
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := PlanSLM(tc.requested, tc.l)
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("PlanSLM(%v, %d) = %v, want %v", tc.requested, tc.l, got, tc.want)
			}
		})
	}
}

// TestPlanSLMDoesNotMutateInput: the planner must leave the caller's request
// list untouched — callers iterate it after planning.
func TestPlanSLMDoesNotMutateInput(t *testing.T) {
	requested := []PageID{9, 2, 9, 4, 2, 0}
	orig := append([]PageID(nil), requested...)
	PlanSLM(requested, 3)
	if !reflect.DeepEqual(requested, orig) {
		t.Fatalf("PlanSLM mutated its input: %v, want %v", requested, orig)
	}
	PlanRequired(requested)
	if !reflect.DeepEqual(requested, orig) {
		t.Fatalf("PlanRequired mutated its input: %v, want %v", requested, orig)
	}
}

// TestPlanSLMGapLengthBoundary ties the planner to the parameter formula:
// with the paper's parameters l = 6/1 - 0.5 -> 5, so a 4-page gap is read
// through and a 5-page gap breaks the request.
func TestPlanSLMGapLengthBoundary(t *testing.T) {
	l := DefaultParams().SLMGapLength()
	if l != 5 {
		t.Fatalf("default SLM gap length = %d, want 5", l)
	}
	merged := PlanSLM([]PageID{0, 5}, l) // gap 4
	if len(merged) != 1 || merged[0].N != 6 {
		t.Fatalf("gap l-1 must merge: %v", merged)
	}
	split := PlanSLM([]PageID{0, 6}, l) // gap 5
	if len(split) != 2 {
		t.Fatalf("gap l must split: %v", split)
	}
	// Break-even in modelled time: reading through a gap of g pages costs
	// g extra transfers, splitting costs one extra rotational delay, so
	// read-through wins strictly below tl/tt = 6 and splitting wins above.
	p := DefaultParams()
	if ScheduleCost(merged, p) >= ScheduleCost([]Run{{0, 1}, {5, 1}}, p) {
		t.Fatal("read-through of a gap below break-even must be strictly cheaper")
	}
	wide := PlanSLM([]PageID{0, 7}, l) // gap 6 = tl/tt: splitting wins
	if len(wide) != 2 {
		t.Fatalf("gap above l must split: %v", wide)
	}
	if ScheduleCost(wide, p) > ScheduleCost([]Run{{0, 8}}, p) {
		t.Fatal("split above break-even must not be more expensive")
	}
}
