package disk

import "fmt"

// Backend is the physical page store behind a Disk. The Disk owns the
// paper's cost model — seeks, rotational delays and page transfers are
// charged per request regardless of the backend — while the backend owns the
// bytes: where pages physically live and what real I/O (if any) moving them
// costs. Two implementations exist:
//
//   - the in-memory MemBackend (the default), which keeps the page array of
//     the original simulated disk and performs no real I/O, and
//   - the file-backed store in internal/disk/filebackend, which maps pages
//     onto an os.File (page id × PageSize), supports fsync-on-flush
//     durability, and reports measured wall-clock I/O next to the model.
//
// Contract: the Disk serializes all backend calls through its own lock —
// WriteRun, Alloc, Free and Flush are called with the write lock held,
// ReadRun and NumPages with at least the read lock — so a backend needs no
// internal synchronization for the page data itself. Only the Measured
// counters must tolerate concurrent ReadRun callers (the parallel query
// engine reads under the shared read lock).
type Backend interface {
	// NumPages returns the current backend size in pages.
	NumPages() PageID
	// Alloc extends the backend by n fresh pages and returns the ID of the
	// first new page. Fresh pages read as zero.
	Alloc(n int) PageID
	// Free declares the run [start, start+n) unused. It is a reclamation
	// hint, not a shrink: page IDs stay valid and later reads of a freed
	// page return zeroes or stale bytes — callers must never read a page
	// they have not rewritten (the extent allocator guarantees this).
	Free(start PageID, n int)
	// ReadRun returns the contents of n consecutive pages. Slices may alias
	// backend storage and must not be modified; pages never written may be
	// returned as nil (all-zero).
	ReadRun(start PageID, n int) [][]byte
	// WriteRun stores data[i] into page start+i. Each slice is at most
	// PageSize bytes and must be copied (or otherwise made durable) before
	// returning; a nil slice clears the page.
	WriteRun(start PageID, data [][]byte)
	// Flush makes all written pages durable (fsync for the file backend
	// when configured; a no-op in memory).
	Flush() error
	// Close releases backend resources. The backend must not be used after.
	Close() error
	// Measured reports the wall-clock I/O the backend has really performed,
	// for modelled-vs-measured comparisons. The memory backend reports
	// zeroes.
	Measured() Measured
}

// Measured tallies real (wall-clock) backend I/O, the counterpart of the
// modelled Cost. exp.BackendBench reports the two side by side.
type Measured struct {
	Reads        int64 // read calls issued to the medium
	Writes       int64 // write calls issued to the medium
	Syncs        int64 // fsync calls
	PagesRead    int64 // pages transferred medium -> memory
	PagesWritten int64 // pages transferred memory -> medium
	ReadNS       int64 // wall-clock nanoseconds spent reading
	WriteNS      int64 // wall-clock nanoseconds spent writing
	SyncNS       int64 // wall-clock nanoseconds spent syncing
}

// Sub returns the component-wise difference m − o; use it to measure one
// operation from two snapshots.
func (m Measured) Sub(o Measured) Measured {
	return Measured{
		Reads:        m.Reads - o.Reads,
		Writes:       m.Writes - o.Writes,
		Syncs:        m.Syncs - o.Syncs,
		PagesRead:    m.PagesRead - o.PagesRead,
		PagesWritten: m.PagesWritten - o.PagesWritten,
		ReadNS:       m.ReadNS - o.ReadNS,
		WriteNS:      m.WriteNS - o.WriteNS,
		SyncNS:       m.SyncNS - o.SyncNS,
	}
}

// IOSeconds returns the total wall-clock seconds spent in backend I/O.
func (m Measured) IOSeconds() float64 {
	return float64(m.ReadNS+m.WriteNS+m.SyncNS) / 1e9
}

// MemBackend is the default Backend: a linear page array in memory, the
// storage of the paper's simulated disk. All I/O is free in wall-clock terms;
// only the Disk's modelled cost applies.
type MemBackend struct {
	pages [][]byte
}

// NewMemBackend creates an empty in-memory backend.
func NewMemBackend() *MemBackend { return &MemBackend{} }

// NumPages implements Backend.
func (b *MemBackend) NumPages() PageID { return PageID(len(b.pages)) }

// Alloc implements Backend.
func (b *MemBackend) Alloc(n int) PageID {
	first := PageID(len(b.pages))
	b.pages = append(b.pages, make([][]byte, n)...)
	return first
}

// Free implements Backend: the page contents are released so freed runs do
// not pin memory; the IDs remain valid and read as zero until rewritten.
func (b *MemBackend) Free(start PageID, n int) {
	for i := 0; i < n; i++ {
		b.pages[start+PageID(i)] = nil
	}
}

// ReadRun implements Backend. The returned slices alias the stored pages.
func (b *MemBackend) ReadRun(start PageID, n int) [][]byte {
	out := make([][]byte, n)
	copy(out, b.pages[start:start+PageID(n)])
	return out
}

// WriteRun implements Backend, copying each page.
func (b *MemBackend) WriteRun(start PageID, data [][]byte) {
	for i, buf := range data {
		if buf == nil {
			b.pages[start+PageID(i)] = nil
			continue
		}
		cp := make([]byte, len(buf))
		copy(cp, buf)
		b.pages[start+PageID(i)] = cp
	}
}

// Flush implements Backend (a no-op: memory is as durable as it gets).
func (b *MemBackend) Flush() error { return nil }

// Close implements Backend.
func (b *MemBackend) Close() error { return nil }

// Measured implements Backend: the memory backend performs no real I/O.
func (b *MemBackend) Measured() Measured { return Measured{} }

// checkBackendRun validates a run against a backend's size; shared by Disk
// and backend tests.
func checkBackendRun(b Backend, start PageID, n int) {
	if n <= 0 {
		panic(fmt.Sprintf("disk: empty run [%d,+%d)", start, n))
	}
	if start < 0 || start+PageID(n) > b.NumPages() {
		panic(fmt.Sprintf("disk: run [%d,+%d) outside disk of %d pages",
			start, n, b.NumPages()))
	}
}
