package disk

import "fmt"

// PageSize is the size of one disk page in bytes (paper section 5.1).
const PageSize = 4096

// PageID addresses a page on a disk. Two pages are physically consecutive
// iff their IDs differ by one.
type PageID int64

// InvalidPage is a sentinel for "no page".
const InvalidPage PageID = -1

// Params holds the disk timing parameters in milliseconds.
type Params struct {
	SeekMS     float64 // average seek time ts
	LatencyMS  float64 // average rotational delay tl
	TransferMS float64 // transfer time tt for one page
}

// DefaultParams are the values of the paper's test environment
// (section 5.1, after [HS94]): ts = 9 ms, tl = 6 ms, tt = 1 ms per 4 KB page.
func DefaultParams() Params {
	return Params{SeekMS: 9, LatencyMS: 6, TransferMS: 1}
}

// SLMGapLength returns l = tl/tt − 1/2, the break-even sequence length of the
// SLM read-schedule technique [SLM93] (paper section 5.4.2): a run of up to l
// non-requested pages is cheaper to read through than to skip with an extra
// rotational delay.
func (p Params) SLMGapLength() int {
	l := p.LatencyMS/p.TransferMS - 0.5
	if l < 0 {
		return 0
	}
	return int(l)
}

// Cost is a tally of I/O work. It is a plain value: snapshot, subtract and
// add as needed.
type Cost struct {
	Seeks         int64 // number of seek operations
	Rotations     int64 // number of rotational delays
	PagesRead     int64 // pages transferred disk -> memory
	PagesWritten  int64 // pages transferred memory -> disk
	ReadRequests  int64 // number of read requests issued
	WriteRequests int64 // number of write requests issued
}

// Add returns the component-wise sum of c and d.
func (c Cost) Add(d Cost) Cost {
	return Cost{
		Seeks:         c.Seeks + d.Seeks,
		Rotations:     c.Rotations + d.Rotations,
		PagesRead:     c.PagesRead + d.PagesRead,
		PagesWritten:  c.PagesWritten + d.PagesWritten,
		ReadRequests:  c.ReadRequests + d.ReadRequests,
		WriteRequests: c.WriteRequests + d.WriteRequests,
	}
}

// Sub returns the component-wise difference c − d; use it to measure the
// cost of an operation from two snapshots.
func (c Cost) Sub(d Cost) Cost {
	return Cost{
		Seeks:         c.Seeks - d.Seeks,
		Rotations:     c.Rotations - d.Rotations,
		PagesRead:     c.PagesRead - d.PagesRead,
		PagesWritten:  c.PagesWritten - d.PagesWritten,
		ReadRequests:  c.ReadRequests - d.ReadRequests,
		WriteRequests: c.WriteRequests - d.WriteRequests,
	}
}

// Pages returns the total number of transferred pages.
func (c Cost) Pages() int64 { return c.PagesRead + c.PagesWritten }

// TimeMS returns the modelled I/O time of c in milliseconds under params p.
func (c Cost) TimeMS(p Params) float64 {
	return float64(c.Seeks)*p.SeekMS +
		float64(c.Rotations)*p.LatencyMS +
		float64(c.Pages())*p.TransferMS
}

// TimeSec returns the modelled I/O time in seconds.
func (c Cost) TimeSec(p Params) float64 { return c.TimeMS(p) / 1000 }

// String implements fmt.Stringer.
func (c Cost) String() string {
	return fmt.Sprintf("seeks=%d rot=%d read=%d written=%d reqs=%d/%d",
		c.Seeks, c.Rotations, c.PagesRead, c.PagesWritten,
		c.ReadRequests, c.WriteRequests)
}
