package disk

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestDefaultParams(t *testing.T) {
	p := DefaultParams()
	if p.SeekMS != 9 || p.LatencyMS != 6 || p.TransferMS != 1 {
		t.Fatalf("default params = %+v, want 9/6/1 (paper section 5.1)", p)
	}
	// l = 6/1 - 0.5 = 5.5 -> 5
	if l := p.SLMGapLength(); l != 5 {
		t.Fatalf("SLM gap length = %d, want 5", l)
	}
}

func TestCostArithmetic(t *testing.T) {
	a := Cost{Seeks: 2, Rotations: 3, PagesRead: 4, PagesWritten: 1, ReadRequests: 2, WriteRequests: 1}
	b := Cost{Seeks: 1, Rotations: 1, PagesRead: 2, PagesWritten: 2, ReadRequests: 1, WriteRequests: 2}
	sum := a.Add(b)
	if sum.Seeks != 3 || sum.Rotations != 4 || sum.PagesRead != 6 || sum.PagesWritten != 3 {
		t.Fatalf("Add = %+v", sum)
	}
	if got := sum.Sub(b); got != a {
		t.Fatalf("Sub did not invert Add: %+v", got)
	}
	if a.Pages() != 5 {
		t.Fatalf("Pages = %d", a.Pages())
	}
	// 2*9 + 3*6 + 5*1 = 41 ms
	if ms := a.TimeMS(DefaultParams()); ms != 41 {
		t.Fatalf("TimeMS = %g, want 41", ms)
	}
	if s := a.TimeSec(DefaultParams()); s != 0.041 {
		t.Fatalf("TimeSec = %g", s)
	}
	if a.String() == "" {
		t.Fatal("String must be non-empty")
	}
}

func TestDiskReadWriteRoundTrip(t *testing.T) {
	d := NewDefault()
	start := d.Grow(4)
	if start != 0 || d.NumPages() != 4 {
		t.Fatalf("Grow: start=%d pages=%d", start, d.NumPages())
	}
	data := [][]byte{[]byte("alpha"), []byte("beta"), nil, []byte("delta")}
	d.WriteRun(start, data)
	got := d.ReadRun(start, 4)
	for i := range data {
		if !bytes.Equal(got[i], data[i]) {
			t.Fatalf("page %d: got %q want %q", i, got[i], data[i])
		}
	}
	// Writes copy their input.
	buf := []byte("mutate-me")
	d.WritePage(1, buf)
	buf[0] = 'X'
	if got := d.Peek(1); got[0] == 'X' {
		t.Fatal("WritePage must copy the caller's buffer")
	}
}

func TestDiskCostCharging(t *testing.T) {
	d := NewDefault()
	d.Grow(100)

	// First random read: seek + latency + 3 transfers.
	d.ReadRun(10, 3)
	c := d.Cost()
	if c.Seeks != 1 || c.Rotations != 1 || c.PagesRead != 3 || c.ReadRequests != 1 {
		t.Fatalf("first read cost = %+v", c)
	}

	// A fresh read always pays seek and latency, even at the head position
	// (the paper's tcompl formula has no streaming discount for reads).
	d.ReadRun(13, 2)
	c = d.Cost()
	if c.Seeks != 2 || c.Rotations != 2 || c.PagesRead != 5 {
		t.Fatalf("follow-up read cost = %+v", c)
	}

	// Chained read elsewhere in the same unit: latency only.
	d.ReadRunChained(20, 1)
	c = d.Cost()
	if c.Seeks != 2 || c.Rotations != 3 || c.PagesRead != 6 {
		t.Fatalf("chained read cost = %+v", c)
	}

	// New random read: full seek + latency again.
	d.ReadRun(50, 1)
	c = d.Cost()
	if c.Seeks != 3 || c.Rotations != 4 {
		t.Fatalf("random read cost = %+v", c)
	}

	// Writes are charged like reads, except that a write continuing at the
	// head position streams for free (buffered sequential construction).
	d.WriteRun(80, [][]byte{nil, nil})
	c = d.Cost()
	if c.Seeks != 4 || c.Rotations != 5 || c.PagesWritten != 2 || c.WriteRequests != 1 {
		t.Fatalf("write cost = %+v", c)
	}
	d.WriteRun(82, [][]byte{nil}) // streams on after the previous write
	c = d.Cost()
	if c.Seeks != 4 || c.Rotations != 5 || c.PagesWritten != 3 {
		t.Fatalf("streaming write cost = %+v", c)
	}

	d.ResetCost()
	if d.Cost() != (Cost{}) {
		t.Fatal("ResetCost must clear counters")
	}
}

func TestDiskHeadTracking(t *testing.T) {
	d := NewDefault()
	d.Grow(10)
	d.ReadRun(2, 3)
	if d.Head() != 5 {
		t.Fatalf("head = %d, want 5", d.Head())
	}
	d.WriteRun(5, [][]byte{nil}) // streams on
	if got := d.Cost(); got.Seeks != 1 {
		t.Fatalf("sequential write after read must not seek: %+v", got)
	}
}

func TestDiskBoundsPanics(t *testing.T) {
	d := NewDefault()
	d.Grow(2)
	for name, f := range map[string]func(){
		"read past end":  func() { d.ReadRun(1, 2) },
		"negative start": func() { d.ReadRun(-1, 1) },
		"empty run":      func() { d.ReadRun(0, 0) },
		"oversize page":  func() { d.WritePage(0, make([]byte, PageSize+1)) },
		"peek range":     func() { d.Peek(5) },
		"poke range":     func() { d.Poke(5, nil) },
		"negative grow":  func() { d.Grow(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

// TestPlanSLMPaperExample reproduces Figure 9 of the paper: pages
// y n y y n n n y y n y y with l = 3. Reading through the short gaps costs
// 2 tl + 9 tt = 21 ms; reading only required pages costs 4 tl + 7 tt = 31 ms
// (the figure omits the common seek).
func TestPlanSLMPaperExample(t *testing.T) {
	requested := []PageID{0, 2, 3, 7, 8, 10, 11}
	p := Params{SeekMS: 0, LatencyMS: 6, TransferMS: 1}

	slm := PlanSLM(append([]PageID(nil), requested...), 3)
	if len(slm) != 2 {
		t.Fatalf("SLM runs = %v, want 2 runs", slm)
	}
	if got := ScheduleCost(slm, p); got != 21 {
		t.Fatalf("SLM cost = %g, want 21 (2tl+9tt)", got)
	}
	if TotalPages(slm) != 9 {
		t.Fatalf("SLM pages = %d, want 9", TotalPages(slm))
	}

	req := PlanRequired(append([]PageID(nil), requested...))
	if len(req) != 4 {
		t.Fatalf("required runs = %v, want 4 runs", req)
	}
	if got := ScheduleCost(req, p); got != 31 {
		t.Fatalf("required cost = %g, want 31 (4tl+7tt)", got)
	}
}

func TestPlanSLMEdgeCases(t *testing.T) {
	if got := PlanSLM(nil, 5); got != nil {
		t.Fatalf("empty plan = %v", got)
	}
	// Duplicates and disorder are normalized.
	runs := PlanSLM([]PageID{5, 3, 5, 4}, 1)
	if len(runs) != 1 || runs[0] != (Run{Start: 3, N: 3}) {
		t.Fatalf("normalized runs = %v", runs)
	}
	// l <= 0 degrades to adjacent-only merging.
	runs = PlanSLM([]PageID{0, 2}, 0)
	if len(runs) != 2 {
		t.Fatalf("l=0 runs = %v", runs)
	}
	if !runs[0].Contains(0) || runs[0].Contains(1) {
		t.Fatal("Run.Contains misbehaves")
	}
}

// Property: the SLM schedule covers every requested page exactly once, never
// overlaps, and — with the exact break-even gap l = tl/tt + 1 (merge iff the
// gap transfers cost at most one rotational delay) — is never more expensive
// than either naive alternative (read-everything-in-one-span or
// read-only-required). The paper's l = tl/tt − ½ is within one page of this
// threshold; see TestPlanSLMPaperThresholdClose.
func TestQuickPlanSLMProperties(t *testing.T) {
	params := DefaultParams()
	l := int(params.LatencyMS/params.TransferMS) + 1
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		rng.Seed(seed)
		n := 1 + rng.Intn(40)
		req := make([]PageID, n)
		for i := range req {
			req[i] = PageID(rng.Intn(100))
		}
		sorted := normalize(append([]PageID(nil), req...))
		runs := PlanSLM(append([]PageID(nil), req...), l)

		// Coverage of every requested page, no overlapping runs, ordered.
		for i, r := range runs {
			if r.N <= 0 {
				return false
			}
			if i > 0 && runs[i-1].End() >= r.Start {
				return false
			}
		}
		for _, p := range sorted {
			ok := false
			for _, r := range runs {
				if r.Contains(p) {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}

		cost := ScheduleCost(runs, params)
		span := Run{Start: sorted[0], N: int(sorted[len(sorted)-1]-sorted[0]) + 1}
		oneSpan := ScheduleCost([]Run{span}, params)
		required := ScheduleCost(PlanRequired(append([]PageID(nil), req...)), params)
		const eps = 1e-9
		return cost <= oneSpan+eps && cost <= required+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// The paper's gap formula stays within 2 pages of the exact dominance
// threshold for the default parameters, so its schedules are within one
// rotational delay of optimal per gap decision.
func TestPlanSLMPaperThresholdClose(t *testing.T) {
	p := DefaultParams()
	paper := p.SLMGapLength()
	exact := int(p.LatencyMS/p.TransferMS) + 1
	if diff := exact - paper; diff < 0 || diff > 2 {
		t.Fatalf("paper l=%d, exact l=%d: unexpectedly far apart", paper, exact)
	}
}

// TestThrottle covers the wall-clock throttle: off by default, sleeps at
// least the scaled modelled time when set, never affects the charged cost,
// and rejects nonsense factors.
func TestThrottle(t *testing.T) {
	d := New(Params{SeekMS: 4, LatencyMS: 2, TransferMS: 1})
	d.Grow(8)
	if d.Throttle() != 0 {
		t.Fatalf("default throttle %g, want 0", d.Throttle())
	}

	d.WriteRun(0, [][]byte{{1}, {2}}) // unthrottled baseline
	costBefore := d.Cost()

	d.SetThrottle(1) // replay modelled time 1:1
	if d.Throttle() != 1 {
		t.Fatalf("throttle %g, want 1", d.Throttle())
	}
	start := time.Now()
	d.ReadRun(0, 2) // fresh read: ts + tl + 2*tt = 8 ms modelled
	if elapsed := time.Since(start); elapsed < 8*time.Millisecond {
		t.Fatalf("throttled read of 8 modelled ms took only %v", elapsed)
	}
	start = time.Now()
	d.WriteRun(4, [][]byte{{3}}) // non-streaming write: ts + tl + tt = 7 ms
	if elapsed := time.Since(start); elapsed < 7*time.Millisecond {
		t.Fatalf("throttled write of 7 modelled ms took only %v", elapsed)
	}

	// The throttle must not change what is charged.
	d.SetThrottle(0)
	want := Cost{Seeks: 2, Rotations: 2, PagesRead: 2, PagesWritten: 1, ReadRequests: 1, WriteRequests: 1}
	if got := d.Cost().Sub(costBefore); got != want {
		t.Fatalf("throttled ops charged %+v, want %+v", got, want)
	}

	for _, bad := range []float64{-1, math.NaN(), math.Inf(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("SetThrottle(%v) did not panic", bad)
				}
			}()
			d.SetThrottle(bad)
		}()
	}
}
