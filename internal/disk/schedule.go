package disk

import "sort"

// Run is a maximal set of physically consecutive pages read or written by a
// single request.
type Run struct {
	Start PageID
	N     int
}

// End returns the page following the last page of the run.
func (r Run) End() PageID { return r.Start + PageID(r.N) }

// Contains reports whether the run covers page id.
func (r Run) Contains(id PageID) bool { return id >= r.Start && id < r.End() }

// normalize returns a sorted, deduplicated copy of a set of page IDs. The
// input slice is left untouched: callers routinely plan a schedule and then
// iterate the original request list, so mutating it in place (as an earlier
// version did) silently reordered pages under the caller.
func normalize(pages []PageID) []PageID {
	if len(pages) == 0 {
		return nil
	}
	sorted := make([]PageID, len(pages))
	copy(sorted, pages)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	out := sorted[:0]
	for i, p := range sorted {
		if i == 0 || p != sorted[i-1] {
			out = append(out, p)
		}
	}
	return out
}

// PlanSLM computes the close-to-optimal read schedule of Seeger, Larson and
// McFadyen [SLM93] (paper section 5.4.2) for a set of requested pages: the
// pages are read in ascending order and a gap of g non-requested pages is
// read through when g < l, where l = tl/tt − 1/2 is the break-even length;
// a gap of length >= l interrupts the request (costing one extra rotational
// delay but saving the gap transfers).
//
// The requested slice may be unsorted and contain duplicates (duplicate-heavy
// inputs arise when several objects of one unit share pages); it is never
// modified. Any l < 1 — including the l = 0 that SLMGapLength yields for
// latency-poor disks and negative values — degrades to reading only maximal
// runs of requested pages: duplicates collapse, adjacent pages (gap 0) share
// a run, and every positive gap breaks the request.
func PlanSLM(requested []PageID, l int) []Run {
	pages := normalize(requested)
	if len(pages) == 0 {
		return nil
	}
	if l < 1 {
		l = 1 // merge only truly adjacent pages
	}
	runs := []Run{{Start: pages[0], N: 1}}
	for _, p := range pages[1:] {
		cur := &runs[len(runs)-1]
		gap := int(p - cur.End())
		if gap < l {
			// Read through the gap (gap may be 0 for adjacent pages).
			cur.N += gap + 1
		} else {
			runs = append(runs, Run{Start: p, N: 1})
		}
	}
	return runs
}

// PlanRequired computes the page-by-page schedule that reads only requested
// pages, merging exactly adjacent ones into single requests (the "reading
// only required pages" alternative of the paper's Figure 9).
func PlanRequired(requested []PageID) []Run {
	return PlanSLM(requested, 1)
}

// ScheduleCost returns the modelled cost of executing runs as one
// uninterrupted access to a single storage unit: the first run pays seek and
// latency, every further run pays one additional rotational delay, and every
// covered page pays a transfer (paper section 5.4.3).
func ScheduleCost(runs []Run, p Params) float64 {
	if len(runs) == 0 {
		return 0
	}
	var pages int
	for _, r := range runs {
		pages += r.N
	}
	return p.SeekMS + float64(len(runs))*p.LatencyMS + float64(pages)*p.TransferMS
}

// TotalPages returns the number of pages covered by runs.
func TotalPages(runs []Run) int {
	var n int
	for _, r := range runs {
		n += r.N
	}
	return n
}
