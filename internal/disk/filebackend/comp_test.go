package filebackend

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"spatialcluster/internal/disk"
)

// coordPage builds a page of slowly varying float64 coordinates — the shape
// of a real object page — plus a zero tail like a partially filled page.
func coordPage(seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	pg := make([]byte, disk.PageSize)
	x, y := rng.Float64(), rng.Float64()
	for off := 0; off < disk.PageSize*3/4; off += 16 {
		x += (rng.Float64() - 0.5) * 1e-3
		y += (rng.Float64() - 0.5) * 1e-3
		binary.LittleEndian.PutUint64(pg[off:], math.Float64bits(x))
		binary.LittleEndian.PutUint64(pg[off+8:], math.Float64bits(y))
	}
	return pg
}

func TestCompressPageRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	random := make([]byte, disk.PageSize)
	rng.Read(random)

	cases := map[string][]byte{
		"zero":   make([]byte, disk.PageSize),
		"coords": coordPage(7),
		"random": random,
	}
	for name, pg := range cases {
		enc := compressPage(nil, pg)
		if enc == nil {
			if name != "random" {
				t.Errorf("%s page did not compress", name)
			}
			continue
		}
		if name == "random" {
			t.Error("random page compressed below PageSize")
			continue
		}
		if len(enc) >= disk.PageSize {
			t.Errorf("%s page encoding is %d bytes", name, len(enc))
		}
		dec := make([]byte, disk.PageSize)
		if err := decompressPage(dec, enc); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(dec, pg) {
			t.Fatalf("%s page did not round-trip", name)
		}
	}
	// A coordinate page should shrink substantially, not marginally.
	if enc := compressPage(nil, cases["coords"]); len(enc) > disk.PageSize*3/4 {
		t.Errorf("coordinate page compressed to only %d of %d bytes", len(enc), disk.PageSize)
	}
}

func TestDecompressRejectsMalformed(t *testing.T) {
	enc := compressPage(nil, coordPage(3))
	dec := make([]byte, disk.PageSize)
	if err := decompressPage(dec, enc[:len(enc)-1]); err == nil {
		t.Fatal("truncated encoding accepted")
	}
	if err := decompressPage(dec, append(append([]byte{}, enc...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	if err := decompressPage(dec, nil); err == nil {
		t.Fatal("empty encoding accepted")
	}
}

// TestCompressedBackendEquivalence drives a compressed file backend, a raw
// file backend and the memory backend through the same operation sequence:
// every read must observe identical bytes on all three.
func TestCompressedBackendEquivalence(t *testing.T) {
	dir := t.TempDir()
	cb, err := Open(filepath.Join(dir, "comp.db"), Config{Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cb.Close()
	fb, err := Open(filepath.Join(dir, "raw.db"), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()
	mb := disk.NewMemBackend()

	rng := rand.New(rand.NewSource(2))
	random := make([]byte, disk.PageSize)
	rng.Read(random)
	for _, b := range []disk.Backend{cb, fb, mb} {
		b.Alloc(8)
		b.WriteRun(0, [][]byte{coordPage(1), coordPage(2), random})
		b.WriteRun(5, [][]byte{[]byte("short page"), nil})
		b.Free(1, 1)
		b.Alloc(2)
		b.WriteRun(8, [][]byte{coordPage(9)})
	}
	if cb.NumPages() != 10 || fb.NumPages() != 10 {
		t.Fatalf("NumPages: comp %d raw %d, want 10", cb.NumPages(), fb.NumPages())
	}
	for _, run := range [][2]int{{0, 10}, {0, 1}, {2, 3}, {8, 2}} {
		got := cb.ReadRun(disk.PageID(run[0]), run[1])
		want := mb.ReadRun(disk.PageID(run[0]), run[1])
		for i := range want {
			w := make([]byte, disk.PageSize)
			copy(w, want[i])
			if !bytes.Equal(got[i], w) {
				t.Fatalf("run %v: page %d differs from mem backend", run, run[0]+i)
			}
		}
	}

	st := cb.CompStats()
	if st.PagesComp == 0 || st.PagesRaw == 0 || st.PagesZero == 0 {
		t.Fatalf("expected all three slot kinds, got %+v", st)
	}
	if st.Saved() <= 0 {
		t.Fatalf("compression saved %d bytes on a compressible workload", st.Saved())
	}
	if fb.CompStats() != (CompStats{}) {
		t.Fatalf("raw backend reported compression stats: %+v", fb.CompStats())
	}
}

// TestCompressedReopen checks the slot headers rebuild the length table and
// the pages survive a close/reopen cycle.
func TestCompressedReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "comp.db")
	cb, err := Open(path, Config{Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	cb.Alloc(4)
	want := coordPage(11)
	cb.WriteRun(1, [][]byte{want, nil})
	if err := cb.Close(); err != nil {
		t.Fatal(err)
	}

	cb2, err := Open(path, Config{Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cb2.Close()
	if cb2.NumPages() != 4 {
		t.Fatalf("reopened with %d pages, want 4", cb2.NumPages())
	}
	if got := cb2.ReadRun(1, 1)[0]; !bytes.Equal(got, want) {
		t.Fatal("compressed page content lost across reopen")
	}
	if got := cb2.ReadRun(3, 1)[0]; !bytes.Equal(got, make([]byte, disk.PageSize)) {
		t.Fatal("never-written page is not zero after reopen")
	}

	// A compressed file must not open as raw, nor a raw file as compressed.
	if _, err := Open(path, Config{}); err == nil {
		t.Fatal("compressed file opened as raw")
	}
	rawPath := filepath.Join(t.TempDir(), "raw.db")
	fb, err := Open(rawPath, Config{})
	if err != nil {
		t.Fatal(err)
	}
	fb.Alloc(2)
	fb.WriteRun(0, [][]byte{coordPage(1)})
	fb.Close()
	if _, err := Open(rawPath, Config{Compress: true}); err == nil {
		t.Fatal("raw file opened as compressed")
	}
}

// TestDiskCostInvariantCompressed charges the same modelled costs on the
// compressed backend as on the memory backend.
func TestDiskCostInvariantCompressed(t *testing.T) {
	cb, err := Open(filepath.Join(t.TempDir(), "comp.db"), Config{Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	dComp := disk.NewWithBackend(disk.DefaultParams(), cb)
	dMem := disk.NewDefault()
	for _, d := range []*disk.Disk{dComp, dMem} {
		d.Grow(16)
		d.WriteRun(0, [][]byte{coordPage(1), coordPage(2)})
		d.ReadRun(0, 2)
		d.ReadRunChained(4, 3)
		d.WritePage(9, coordPage(3))
	}
	if dComp.Cost() != dMem.Cost() {
		t.Fatalf("modelled cost differs: compressed %v, mem %v", dComp.Cost(), dMem.Cost())
	}
	if err := dComp.Close(); err != nil {
		t.Fatal(err)
	}
}
