package filebackend

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"spatialcluster/internal/disk"
)

// TestGenerateCorpus regenerates the checked-in fuzz seeds when
// REGEN_CORPUS=1; otherwise it only verifies they exist.
func TestGenerateCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzDecompressPage")
	if os.Getenv("REGEN_CORPUS") != "1" {
		if _, err := os.Stat(dir); err != nil {
			t.Fatalf("fuzz corpus missing: %v (regenerate with REGEN_CORPUS=1)", err)
		}
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(name string, data []byte) {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("seed_zero", compressPage(nil, make([]byte, disk.PageSize)))
	write("seed_coords", compressPage(nil, coordPage(5)))
	write("seed_unterminated", []byte{0x80, 0x80, 0x80})
}
