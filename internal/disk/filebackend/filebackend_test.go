package filebackend

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"spatialcluster/internal/disk"
)

// fill returns a page-sized buffer filled with b.
func fill(b byte) []byte {
	buf := make([]byte, disk.PageSize)
	for i := range buf {
		buf[i] = b
	}
	return buf
}

// TestMemEquivalence drives a mem backend and a file backend through the
// same operation sequence and checks that every read observes identical
// bytes (nil pages count as all-zero).
func TestMemEquivalence(t *testing.T) {
	fb, err := Open(filepath.Join(t.TempDir(), "pages.db"), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()
	mb := disk.NewMemBackend()

	norm := func(pages [][]byte) [][]byte {
		out := make([][]byte, len(pages))
		for i, pg := range pages {
			full := make([]byte, disk.PageSize)
			copy(full, pg)
			out[i] = full
		}
		return out
	}
	check := func(step string, start disk.PageID, n int) {
		t.Helper()
		got, want := norm(fb.ReadRun(start, n)), norm(mb.ReadRun(start, n))
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("%s: page %d differs between backends", step, start+disk.PageID(i))
			}
		}
	}

	for _, b := range []disk.Backend{fb, mb} {
		if first := b.Alloc(8); first != 0 {
			t.Fatalf("Alloc returned %d, want 0", first)
		}
		b.WriteRun(2, [][]byte{fill('a'), fill('b'), fill('c')})
		b.WriteRun(6, [][]byte{[]byte("short page content")}) // padded with zeroes
		b.Free(3, 1)
		b.Alloc(4)
		b.WriteRun(9, [][]byte{fill('z')})
	}
	if fb.NumPages() != mb.NumPages() || fb.NumPages() != 12 {
		t.Fatalf("NumPages: file %d mem %d, want 12", fb.NumPages(), mb.NumPages())
	}
	check("full scan", 0, 12)

	m := fb.Measured()
	if m.Writes == 0 || m.Reads == 0 || m.PagesWritten == 0 {
		t.Fatalf("file backend reported no measured I/O: %+v", m)
	}
	if (mb.Measured() != disk.Measured{}) {
		t.Fatalf("mem backend reported measured I/O: %+v", mb.Measured())
	}
}

// TestReopen checks that a closed backing file reopens with its pages intact.
func TestReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	fb, err := Open(path, Config{Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	fb.Alloc(4)
	fb.WriteRun(1, [][]byte{fill('x'), fill('y')})
	if err := fb.Flush(); err != nil {
		t.Fatal(err)
	}
	if fb.Measured().Syncs != 1 {
		t.Fatalf("Flush with Fsync did not sync: %+v", fb.Measured())
	}
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}

	fb2, err := Open(path, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer fb2.Close()
	if fb2.NumPages() != 4 {
		t.Fatalf("reopened with %d pages, want 4", fb2.NumPages())
	}
	if got := fb2.ReadRun(1, 1)[0]; !bytes.Equal(got, fill('x')) {
		t.Fatal("page 1 content lost across reopen")
	}
	if got := fb2.ReadRun(3, 1)[0]; !bytes.Equal(got, make([]byte, disk.PageSize)) {
		t.Fatal("never-written page 3 is not zero")
	}
}

// TestOpenRejectsTornFile checks that a file with a partial page is refused.
func TestOpenRejectsTornFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.db")
	if err := os.WriteFile(path, make([]byte, disk.PageSize+17), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Config{}); err == nil {
		t.Fatal("Open accepted a torn file")
	}
}

// TestDiskOnFileBackend runs the modelled disk over the file backend and
// checks that modelled costs are charged exactly as on the memory backend.
func TestDiskOnFileBackend(t *testing.T) {
	fb, err := Open(filepath.Join(t.TempDir(), "pages.db"), Config{})
	if err != nil {
		t.Fatal(err)
	}
	dFile := disk.NewWithBackend(disk.DefaultParams(), fb)
	dMem := disk.NewDefault()
	for _, d := range []*disk.Disk{dFile, dMem} {
		d.Grow(16)
		d.WriteRun(0, [][]byte{fill('a'), fill('b')})
		d.ReadRun(0, 2)
		d.ReadRunChained(4, 3)
		d.WritePage(9, fill('q'))
	}
	if dFile.Cost() != dMem.Cost() {
		t.Fatalf("modelled cost differs: file %v, mem %v", dFile.Cost(), dMem.Cost())
	}
	if dFile.Measured().IOSeconds() <= 0 {
		t.Fatal("file-backed disk measured no wall-clock I/O")
	}
	if err := dFile.Close(); err != nil {
		t.Fatal(err)
	}
}
