package filebackend

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"time"

	"spatialcluster/internal/disk"
)

// Compressed file layout. Every page lives in a fixed slot of
// PageSize+slotHeaderLen bytes so page IDs keep their arithmetic offsets; the
// slot starts with a 4-byte header
//
//	flag u8 | stored length u16 (little-endian) | reserved u8
//
// followed by storedLen payload bytes; the rest of the slot is slack that is
// never written. Slot 0 is the file header (compMagic, then zeros), so a
// compressed file can never be confused with a raw page image. The flags:
//
//	flagZero (0): an all-zero page, stored in 0 bytes. Truncate-extended
//	              slots are all zeros, so a fresh Alloc needs no write.
//	flagRaw  (1): the page verbatim (compression did not shrink it).
//	flagComp (2): the delta+varint encoding of compressPage.
//
// Writes put only header+payload on disk (the measured byte saving); a
// multi-page read transfers the whole run span in one positioned read —
// reading through the inter-slot slack exactly like the SLM schedule reads
// through gaps — and decompresses each slot out of it.
const (
	slotHeaderLen = 4
	slotSize      = disk.PageSize + slotHeaderLen

	flagZero = 0
	flagRaw  = 1
	flagComp = 2
)

// compMagic heads slot 0 of a compressed backing file.
const compMagic = "SPCLCMP\x01"

// CompStats reports what the compressed page store paid and saved so far:
// logical page bytes vs bytes put on disk, and the CPU time spent coding.
// All fields are monotone counters.
type CompStats struct {
	PagesZero    int64 // pages stored as all-zero markers
	PagesRaw     int64 // pages stored verbatim (incompressible)
	PagesComp    int64 // pages stored delta+varint encoded
	RawBytes     int64 // logical bytes presented for writing
	StoredBytes  int64 // header+payload bytes actually written
	CompressNS   int64
	DecompressNS int64
}

// Saved returns the written bytes avoided by compression.
func (s CompStats) Saved() int64 { return s.RawBytes - s.StoredBytes }

// CodecSeconds returns the CPU time spent encoding and decoding.
func (s CompStats) CodecSeconds() float64 {
	return float64(s.CompressNS+s.DecompressNS) / 1e9
}

// pageWords is the page as 8-byte little-endian words, the unit of the
// delta coding.
const pageWords = disk.PageSize / 8

// compressPage appends the delta+varint encoding of one page to dst: each
// 8-byte word is XORed with the word two back and the result written as a
// uvarint. The stride of two matches the x,y-interleaved vertex layout of
// object pages, so each coordinate deltas against the previous vertex's same
// axis: nearby vertices share sign, exponent and high mantissa bits, making
// the XOR small; zero padding (every partially filled page) collapses to one
// byte per word. Returns nil when the encoding would not shrink the page —
// the caller stores it raw.
func compressPage(dst, page []byte) []byte {
	base := len(dst)
	var prev [2]uint64
	for off := 0; off < disk.PageSize; off += 8 {
		lane := (off / 8) & 1
		w := binary.LittleEndian.Uint64(page[off:])
		dst = binary.AppendUvarint(dst, w^prev[lane])
		prev[lane] = w
		if len(dst)-base >= disk.PageSize {
			return nil
		}
	}
	return dst
}

// decompressPage decodes a compressPage encoding into page (PageSize bytes).
// Any malformed input — short stream, overlong stream, varint overflow —
// yields a descriptive error, never a panic.
func decompressPage(page, enc []byte) error {
	var prev [2]uint64
	off := 0
	for i := 0; i < pageWords; i++ {
		delta, n := binary.Uvarint(enc[off:])
		if n <= 0 {
			return fmt.Errorf("compressed page: word %d of %d: truncated or overflowing varint", i, pageWords)
		}
		if n > 1 && enc[off+n-1] == 0 {
			// The encoder emits minimal varints only; a zero continuation
			// tail is corruption, and rejecting it keeps decoding canonical.
			return fmt.Errorf("compressed page: word %d of %d: non-minimal varint", i, pageWords)
		}
		off += n
		prev[i&1] ^= delta
		binary.LittleEndian.PutUint64(page[i*8:], prev[i&1])
	}
	if off != len(enc) {
		return fmt.Errorf("compressed page: %d trailing bytes after %d words", len(enc)-off, pageWords)
	}
	return nil
}

// isZeroPage reports whether every byte of the (possibly short) page is zero.
func isZeroPage(p []byte) bool {
	for _, b := range p {
		if b != 0 {
			return false
		}
	}
	return true
}

// slotOff returns the file offset of a page's slot (slot 0 is the header).
func slotOff(id disk.PageID) int64 { return (int64(id) + 1) * slotSize }

// openCompressed validates or initializes the compressed file layout and
// rebuilds the in-memory stored-length table from the slot headers.
func (b *FileBackend) openCompressed(st os.FileInfo) error {
	if st.Size() == 0 {
		header := make([]byte, slotSize)
		copy(header, compMagic)
		if _, err := b.f.WriteAt(header, 0); err != nil {
			return fmt.Errorf("filebackend: initializing compressed %s: %w", b.f.Name(), err)
		}
		b.numPages.Store(0)
		return nil
	}
	if st.Size()%slotSize != 0 {
		return fmt.Errorf("filebackend: compressed %s holds %d bytes, not a whole number of %d-byte slots",
			b.f.Name(), st.Size(), slotSize)
	}
	buf := make([]byte, st.Size())
	if _, err := b.f.ReadAt(buf, 0); err != nil && err != io.EOF {
		return fmt.Errorf("filebackend: reading compressed %s: %w", b.f.Name(), err)
	}
	if string(buf[:len(compMagic)]) != compMagic {
		return fmt.Errorf("filebackend: %s is not a compressed page file (bad magic)", b.f.Name())
	}
	n := st.Size()/slotSize - 1
	b.lens = make([]uint16, n)
	for i := int64(0); i < n; i++ {
		slot := buf[(i+1)*slotSize:]
		flag, ln := slot[0], binary.LittleEndian.Uint16(slot[1:])
		if err := checkSlotHeader(flag, ln); err != nil {
			return fmt.Errorf("filebackend: %s page %d: %w", b.f.Name(), i, err)
		}
		b.lens[i] = ln
	}
	b.numPages.Store(n)
	return nil
}

// checkSlotHeader validates a slot header's flag/length combination.
func checkSlotHeader(flag byte, ln uint16) error {
	switch flag {
	case flagZero:
		if ln != 0 {
			return fmt.Errorf("zero page with stored length %d", ln)
		}
	case flagRaw:
		if ln != disk.PageSize {
			return fmt.Errorf("raw page with stored length %d, want %d", ln, disk.PageSize)
		}
	case flagComp:
		if ln == 0 || ln >= disk.PageSize {
			return fmt.Errorf("compressed page with implausible stored length %d", ln)
		}
	default:
		return fmt.Errorf("unknown slot flag %d", flag)
	}
	return nil
}

// allocCompressed extends the file by n zero slots (flagZero headers are all
// zeros, so Truncate is the whole write).
func (b *FileBackend) allocCompressed(n int) disk.PageID {
	first := b.numPages.Load()
	if err := b.f.Truncate(slotOff(disk.PageID(first + int64(n)))); err != nil {
		panic(fmt.Sprintf("filebackend: extending %s: %v", b.f.Name(), err))
	}
	b.lens = append(b.lens, make([]uint16, n)...)
	b.numPages.Store(first + int64(n))
	return disk.PageID(first)
}

// freeCompressed stamps the freed slots back to zero pages: one 4-byte header
// write per slot, counted as one write call like the raw backend's zeroing.
func (b *FileBackend) freeCompressed(start disk.PageID, n int) {
	header := make([]byte, slotHeaderLen)
	for i := 0; i < n; i++ {
		b.writeAt(header, slotOff(start+disk.PageID(i)))
		b.lens[int(start)+i] = 0
	}
	b.writes.Add(1)
	b.pagesWritten.Add(int64(n))
}

// readRunCompressed transfers the run span in one positioned read (through
// the inter-slot slack) and decodes each slot out of it.
func (b *FileBackend) readRunCompressed(start disk.PageID, n int) [][]byte {
	last := int(start) + n - 1
	span := slotOff(disk.PageID(last)) + slotHeaderLen + int64(b.lens[last]) - slotOff(start)
	buf := make([]byte, span)
	t0 := time.Now()
	if _, err := b.f.ReadAt(buf, slotOff(start)); err != nil && err != io.EOF {
		panic(fmt.Sprintf("filebackend: reading pages [%d,+%d) of %s: %v", start, n, b.f.Name(), err))
	}
	b.readNS.Add(time.Since(t0).Nanoseconds())
	b.reads.Add(1)
	b.pagesRead.Add(int64(n))

	out := make([][]byte, n)
	pages := make([]byte, n*disk.PageSize)
	for i := range out {
		out[i] = pages[i*disk.PageSize : (i+1)*disk.PageSize]
		slot := buf[int64(i)*slotSize:]
		flag, ln := slot[0], binary.LittleEndian.Uint16(slot[1:])
		if err := checkSlotHeader(flag, ln); err != nil {
			panic(fmt.Sprintf("filebackend: %s page %d: %v", b.f.Name(), int(start)+i, err))
		}
		payload := slot[slotHeaderLen : slotHeaderLen+int(ln)]
		switch flag {
		case flagZero: // out[i] is already zero
		case flagRaw:
			copy(out[i], payload)
		case flagComp:
			t1 := time.Now()
			if err := decompressPage(out[i], payload); err != nil {
				panic(fmt.Sprintf("filebackend: %s page %d: %v", b.f.Name(), int(start)+i, err))
			}
			b.decompressNS.Add(time.Since(t1).Nanoseconds())
		}
	}
	return out
}

// writeRunCompressed encodes and writes each page's slot with one positioned
// write of exactly header+payload bytes — the slack is never transferred.
func (b *FileBackend) writeRunCompressed(start disk.PageID, data [][]byte) {
	slot := make([]byte, 0, slotSize)
	for i, pg := range data {
		id := start + disk.PageID(i)
		slot = slot[:slotHeaderLen]
		slot[0], slot[1], slot[2], slot[3] = 0, 0, 0, 0
		switch {
		case isZeroPage(pg):
			b.pagesZero.Add(1)
		default:
			full := pg
			if len(full) < disk.PageSize {
				full = make([]byte, disk.PageSize)
				copy(full, pg)
			}
			t0 := time.Now()
			enc := compressPage(slot, full)
			b.compressNS.Add(time.Since(t0).Nanoseconds())
			if enc == nil {
				slot = append(slot[:slotHeaderLen], full...)
				slot[0] = flagRaw
				b.pagesRaw.Add(1)
			} else {
				slot = enc
				slot[0] = flagComp
				b.pagesComp.Add(1)
			}
			binary.LittleEndian.PutUint16(slot[1:], uint16(len(slot)-slotHeaderLen))
		}
		b.writeAt(slot, slotOff(id))
		b.lens[id] = uint16(len(slot) - slotHeaderLen)
		b.rawBytes.Add(disk.PageSize)
		b.storedBytes.Add(int64(len(slot)))
	}
	b.writes.Add(1)
	b.pagesWritten.Add(int64(len(data)))
}

// CompStats reports the compression counters (all zero when the backend was
// opened without Config.Compress). Safe to call concurrently.
func (b *FileBackend) CompStats() CompStats {
	return CompStats{
		PagesZero:    b.pagesZero.Load(),
		PagesRaw:     b.pagesRaw.Load(),
		PagesComp:    b.pagesComp.Load(),
		RawBytes:     b.rawBytes.Load(),
		StoredBytes:  b.storedBytes.Load(),
		CompressNS:   b.compressNS.Load(),
		DecompressNS: b.decompressNS.Load(),
	}
}
