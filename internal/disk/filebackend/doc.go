// Package filebackend implements disk.Backend on a real file: page id i
// lives at byte offset i·disk.PageSize of one os.File. It is the bridge from
// the paper's modelled world to measurable reality — a store built on it
// performs real reads, writes and (optionally) fsyncs, so the modelled cost
// of every workload can be put next to measured wall-clock I/O
// (exp.BackendBench does exactly that), and the file outlives the process.
//
// Semantics match the in-memory backend exactly from the caller's point of
// view: fresh pages read as zero, Free is a reclamation hint that leaves the
// page IDs valid, and modelled costs are identical because the disk layer
// charges them before the backend runs. The only observable differences are
// wall-clock time (reported through Measured) and durability (Config.Fsync
// turns every Flush into an fsync barrier).
//
// Concurrency follows the disk.Backend contract: the owning Disk serializes
// writes and lets reads run concurrently, and the backend uses the
// positionless ReadAt/WriteAt so concurrent readers never race on a shared
// file offset. The Measured counters are atomic.
package filebackend
