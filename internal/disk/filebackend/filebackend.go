package filebackend

import (
	"fmt"
	"io"
	"os"
	"sync/atomic"
	"time"

	"spatialcluster/internal/disk"
)

// Config tunes a file backend.
type Config struct {
	// Fsync makes every Flush call fsync the backing file, turning the
	// buffer's flush points into durability barriers. Without it, Flush
	// only pushes the pages into the OS page cache.
	Fsync bool
	// Compress stores every page delta+varint encoded in a fixed slot (see
	// comp.go for the layout): writes put only the encoded bytes on disk
	// and CompStats reports the bytes-saved vs CPU-spent tradeoff. Modelled
	// costs, query answers and storage statistics are unchanged — the
	// choice is invisible above the backend. A backing file is either raw
	// or compressed for its whole life; Open rejects a mismatch.
	Compress bool
}

// FileBackend is a disk.Backend over one os.File.
type FileBackend struct {
	f        *os.File
	cfg      Config
	numPages atomic.Int64

	// lens holds the stored payload length per page slot when compressing
	// (only touched by the serialized Backend calls, like the file offsets).
	lens []uint16

	reads, writes, syncs    atomic.Int64
	pagesRead, pagesWritten atomic.Int64
	readNS, writeNS, syncNS atomic.Int64

	pagesZero, pagesRaw, pagesComp atomic.Int64
	rawBytes, storedBytes          atomic.Int64
	compressNS, decompressNS       atomic.Int64
}

// Open creates or opens the backing file at path. An existing file must have
// a whole number of pages; its pages become the backend's initial contents
// (this is how a persisted store's page image is reopened in place).
func Open(path string, cfg Config) (*FileBackend, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("filebackend: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("filebackend: %w", err)
	}
	b := &FileBackend{f: f, cfg: cfg}
	if cfg.Compress {
		if err := b.openCompressed(st); err != nil {
			f.Close()
			return nil, err
		}
		return b, nil
	}
	if st.Size()%disk.PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("filebackend: %s holds %d bytes, not a whole number of %d-byte pages",
			path, st.Size(), disk.PageSize)
	}
	b.numPages.Store(st.Size() / disk.PageSize)
	return b, nil
}

// Path returns the backing file's name.
func (b *FileBackend) Path() string { return b.f.Name() }

// NumPages implements disk.Backend.
func (b *FileBackend) NumPages() disk.PageID {
	return disk.PageID(b.numPages.Load())
}

// Alloc implements disk.Backend: the file is extended by n zero pages.
func (b *FileBackend) Alloc(n int) disk.PageID {
	if b.cfg.Compress {
		return b.allocCompressed(n)
	}
	first := b.numPages.Load()
	if err := b.f.Truncate((first + int64(n)) * disk.PageSize); err != nil {
		panic(fmt.Sprintf("filebackend: extending %s: %v", b.f.Name(), err))
	}
	b.numPages.Store(first + int64(n))
	return disk.PageID(first)
}

// Free implements disk.Backend. The file keeps its size (page IDs stay
// valid); the freed range is zeroed so a freed-then-reallocated page reads
// the same as on the memory backend. The zeroing is a real write and is
// counted as one in Measured.
func (b *FileBackend) Free(start disk.PageID, n int) {
	if b.cfg.Compress {
		b.freeCompressed(start, n)
		return
	}
	zero := make([]byte, n*disk.PageSize)
	b.writeAt(zero, int64(start)*disk.PageSize)
	b.writes.Add(1)
	b.pagesWritten.Add(int64(n))
}

// ReadRun implements disk.Backend with one positioned read for the whole run.
func (b *FileBackend) ReadRun(start disk.PageID, n int) [][]byte {
	if b.cfg.Compress {
		return b.readRunCompressed(start, n)
	}
	buf := make([]byte, n*disk.PageSize)
	t0 := time.Now()
	if _, err := b.f.ReadAt(buf, int64(start)*disk.PageSize); err != nil && err != io.EOF {
		panic(fmt.Sprintf("filebackend: reading pages [%d,+%d) of %s: %v", start, n, b.f.Name(), err))
	}
	b.readNS.Add(time.Since(t0).Nanoseconds())
	b.reads.Add(1)
	b.pagesRead.Add(int64(n))
	out := make([][]byte, n)
	for i := range out {
		out[i] = buf[i*disk.PageSize : (i+1)*disk.PageSize]
	}
	return out
}

// WriteRun implements disk.Backend with one positioned write for the whole
// run. Short and nil slices are padded with zeroes to a full page.
func (b *FileBackend) WriteRun(start disk.PageID, data [][]byte) {
	if b.cfg.Compress {
		b.writeRunCompressed(start, data)
		return
	}
	buf := make([]byte, len(data)*disk.PageSize)
	for i, pg := range data {
		copy(buf[i*disk.PageSize:(i+1)*disk.PageSize], pg)
	}
	b.writeAt(buf, int64(start)*disk.PageSize)
	b.writes.Add(1)
	b.pagesWritten.Add(int64(len(data)))
}

func (b *FileBackend) writeAt(buf []byte, off int64) {
	t0 := time.Now()
	if _, err := b.f.WriteAt(buf, off); err != nil {
		panic(fmt.Sprintf("filebackend: writing %s: %v", b.f.Name(), err))
	}
	b.writeNS.Add(time.Since(t0).Nanoseconds())
}

// Flush implements disk.Backend: an fsync barrier when Config.Fsync is set,
// otherwise a no-op (the writes already sit in the OS page cache).
func (b *FileBackend) Flush() error {
	if !b.cfg.Fsync {
		return nil
	}
	t0 := time.Now()
	err := b.f.Sync()
	b.syncNS.Add(time.Since(t0).Nanoseconds())
	b.syncs.Add(1)
	if err != nil {
		return fmt.Errorf("filebackend: fsync %s: %w", b.f.Name(), err)
	}
	return nil
}

// Close implements disk.Backend, syncing once regardless of Config.Fsync so
// a cleanly closed store is always durable.
func (b *FileBackend) Close() error {
	if err := b.f.Sync(); err != nil {
		b.f.Close()
		return fmt.Errorf("filebackend: fsync %s: %w", b.f.Name(), err)
	}
	if err := b.f.Close(); err != nil {
		return fmt.Errorf("filebackend: close: %w", err)
	}
	return nil
}

// Measured implements disk.Backend.
func (b *FileBackend) Measured() disk.Measured {
	return disk.Measured{
		Reads:        b.reads.Load(),
		Writes:       b.writes.Load(),
		Syncs:        b.syncs.Load(),
		PagesRead:    b.pagesRead.Load(),
		PagesWritten: b.pagesWritten.Load(),
		ReadNS:       b.readNS.Load(),
		WriteNS:      b.writeNS.Load(),
		SyncNS:       b.syncNS.Load(),
	}
}

var _ disk.Backend = (*FileBackend)(nil)
