package filebackend

import (
	"bytes"
	"testing"

	"spatialcluster/internal/disk"
)

// FuzzDecompressPage drives the page decoder with arbitrary bytes: it must
// never panic, and an accepted input must re-encode to the same bytes or be
// an expansion the encoder would have stored raw.
func FuzzDecompressPage(f *testing.F) {
	f.Add(compressPage(nil, make([]byte, disk.PageSize)))
	f.Add(compressPage(nil, coordPage(5)))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x80}, 64)) // unterminated varints
	f.Add(bytes.Repeat([]byte{0}, pageWords))

	f.Fuzz(func(t *testing.T, enc []byte) {
		page := make([]byte, disk.PageSize)
		if err := decompressPage(page, enc); err != nil {
			return
		}
		re := compressPage(nil, page)
		if re == nil {
			// The page is incompressible, so the accepted encoding was an
			// expansion past PageSize — the encoder never emits those.
			if len(enc) < disk.PageSize {
				t.Fatalf("accepted %d-byte encoding of an incompressible page", len(enc))
			}
			return
		}
		if !bytes.Equal(re, enc) {
			t.Fatalf("re-encode mismatch: %d vs %d bytes", len(re), len(enc))
		}
	})
}
