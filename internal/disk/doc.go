// Package disk models the magnetic-disk secondary storage that the paper's
// evaluation is based on, and owns the boundary between modelled cost and
// physical bytes.
//
// A Disk is a linear array of PageSize pages addressed by PageID (physically
// consecutive pages have consecutive IDs) plus the explicit I/O cost model
// with the three components of the paper (section 3.1):
//
//   - seek time ts     — move the head to the proper track (9 ms default)
//   - latency time tl  — rotational delay (6 ms default)
//   - transfer time tt — transfer one 4 KB page (1 ms default)
//
// A read request for k physically consecutive pages costs ts + tl + k·tt.
// Requests that continue an uninterrupted access to the same storage unit
// (paper section 5.4.3: one seek suffices per cluster unit) are charged
// tl + k·tt, and a write request that starts exactly at the current head
// position streams on at k·tt. Every experiment in this repository reports
// the times accumulated here rather than wall-clock time.
//
// Where the pages physically live is pluggable: the Backend interface
// separates the cost accountant (Disk) from the byte store. The default
// MemBackend keeps everything in memory — the original simulated disk —
// while the file-backed implementation in the nested package
// internal/disk/filebackend maps pages onto a real os.File with optional
// fsync-on-flush durability and wall-clock Measured counters. Modelled costs
// are charged before the backend runs and are therefore identical for every
// backend; comparing them with Measured is the job of the backend benchmark
// in internal/exp.
//
// The read-schedule planners (PlanSLM, PlanRequired, schedule.go) implement
// the [SLM93] gap/break-even policy used by the cluster read techniques; the
// buffer manager in internal/buffer executes their plans.
package disk
