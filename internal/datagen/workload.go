package datagen

import (
	"math"
	"math/rand"

	"spatialcluster/internal/geom"
)

// NumQueries is the paper's query count per window size (section 5.4: "for
// each test, 678 queries were started").
const NumQueries = 678

// WindowAreas are the query window areas of Figure 8, as fractions of the
// data space area (0.001% to 10%).
var WindowAreas = []float64{0.00001, 0.0001, 0.001, 0.01, 0.1}

// WindowAreaLabel formats an area fraction the way the paper labels it
// (e.g. "0.001%", "10 %").
func WindowAreaLabel(frac float64) string {
	switch frac {
	case 0.00001:
		return "0.001%"
	case 0.0001:
		return "0.01%"
	case 0.001:
		return "0.1%"
	case 0.01:
		return "1%"
	case 0.1:
		return "10%"
	}
	return ""
}

// Windows generates n square query windows of the given area fraction. The
// distribution follows the paper (section 5.4): each window center is a
// point inside the MBR of a randomly chosen stored object, so query load
// follows data density. Windows are clipped to the data space.
func (d *Dataset) Windows(areaFrac float64, n int, seed int64) []geom.Rect {
	rng := rand.New(rand.NewSource(seed))
	space := DataSpace()
	side := math.Sqrt(areaFrac * space.Area())
	out := make([]geom.Rect, n)
	for i := range out {
		c := d.randomMBRPoint(rng)
		w := geom.R(c.X-side/2, c.Y-side/2, c.X+side/2, c.Y+side/2)
		out[i] = w.Intersection(space)
	}
	return out
}

// Points generates n point-query locations: the centers of the windows of
// section 5.4 (the paper's point queries reuse the window centers,
// section 5.5).
func (d *Dataset) Points(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	out := make([]geom.Point, n)
	for i := range out {
		out[i] = d.randomMBRPoint(rng)
	}
	return out
}

// randomMBRPoint picks a uniform point inside the MBR of a random object.
func (d *Dataset) randomMBRPoint(rng *rand.Rand) geom.Point {
	r := d.MBRs[rng.Intn(len(d.MBRs))]
	return geom.Pt(
		r.MinX+rng.Float64()*r.Width(),
		r.MinY+rng.Float64()*r.Height(),
	)
}
