package datagen

import (
	"bytes"
	"testing"
)

func TestDatasetFileRoundTrip(t *testing.T) {
	ds := Generate(Spec{Map: Map2, Series: SeriesB, Scale: 512, Seed: 17, MBRScale: 4})
	var buf bytes.Buffer
	if err := ds.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Spec != ds.Spec {
		t.Fatalf("spec round trip: %+v != %+v", got.Spec, ds.Spec)
	}
	if len(got.Objects) != len(ds.Objects) {
		t.Fatalf("object count %d != %d", len(got.Objects), len(ds.Objects))
	}
	for i := range ds.Objects {
		if got.Objects[i].ID != ds.Objects[i].ID ||
			got.Objects[i].Size() != ds.Objects[i].Size() ||
			got.Objects[i].Bounds() != ds.Objects[i].Bounds() {
			t.Fatalf("object %d differs after round trip", i)
		}
		if got.MBRs[i] != ds.MBRs[i] {
			t.Fatalf("MBR %d differs after round trip (MBRScale lost?)", i)
		}
	}
}

func TestReadFromErrors(t *testing.T) {
	if _, err := ReadFrom(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input must error")
	}
	if _, err := ReadFrom(bytes.NewReader(make([]byte, 64))); err == nil {
		t.Fatal("bad magic must error")
	}
	// Truncated object section.
	ds := Generate(Spec{Map: Map1, Series: SeriesA, Scale: 4096, Seed: 1})
	var buf bytes.Buffer
	if err := ds.Write(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-10]
	if _, err := ReadFrom(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated input must error")
	}
}
