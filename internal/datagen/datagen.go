package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"spatialcluster/internal/geom"
	"spatialcluster/internal/object"
)

// MapID selects one of the two test maps.
type MapID int

// The two maps of the paper's test environment.
const (
	Map1 MapID = 1 // streets
	Map2 MapID = 2 // administrative boundaries, rivers, railway tracks
)

// Series selects one of the three object-size test series of Table 1.
type Series byte

// The three test series.
const (
	SeriesA Series = 'A'
	SeriesB Series = 'B'
	SeriesC Series = 'C'
)

// Full object counts of the paper's maps (Table 1).
const (
	Map1Objects = 131461
	Map2Objects = 128971
)

// table1 holds the per-combination targets of Table 1: average object size
// in bytes and the maximum cluster unit size Smax in KB.
var table1 = map[MapID]map[Series]struct {
	AvgSize int
	SmaxKB  int
}{
	Map1: {
		SeriesA: {625, 80},
		SeriesB: {1247, 160},
		SeriesC: {2490, 320},
	},
	Map2: {
		SeriesA: {781, 80},
		SeriesB: {1558, 160},
		SeriesC: {3113, 320},
	},
}

// Spec describes a dataset to generate.
type Spec struct {
	Map    MapID
	Series Series
	// Scale divides the full object count; 1 is the paper's full size,
	// 8 the default experiment scale. Zero means 1.
	Scale int
	// Seed makes generation deterministic; specs with equal fields
	// produce identical datasets.
	Seed int64
	// MBRScale enlarges object MBRs used as spatial keys (the paper's
	// join version b derives larger MBR extensions from the same data,
	// section 6.1). Zero means 1 (version a).
	MBRScale float64
}

// Name returns the paper's designation, e.g. "A-1".
func (s Spec) Name() string { return fmt.Sprintf("%c-%d", s.Series, s.Map) }

func (s Spec) normalized() Spec {
	if s.Scale <= 0 {
		s.Scale = 1
	}
	if s.MBRScale == 0 {
		s.MBRScale = 1
	}
	return s
}

// NumObjects returns the object count after scaling.
func (s Spec) NumObjects() int {
	s = s.normalized()
	full := Map1Objects
	if s.Map == Map2 {
		full = Map2Objects
	}
	return full / s.Scale
}

// AvgObjectSize returns the target average serialized object size (Table 1).
func (s Spec) AvgObjectSize() int { return table1[s.Map][s.Series].AvgSize }

// SmaxBytes returns the maximum cluster unit size of Table 1 in bytes.
func (s Spec) SmaxBytes() int { return table1[s.Map][s.Series].SmaxKB * 1024 }

// SmaxPages returns Smax in 4 KB pages (a power of two for the buddy system:
// 20 KB pages for series A, 40 for B, 80 for C — the paper's 80/160/320 KB).
func (s Spec) SmaxPages() int { return s.SmaxBytes() / 4096 }

// Dataset is a generated map: the objects plus their spatial keys.
type Dataset struct {
	Spec    Spec
	Objects []*object.Object
	// MBRs[i] is the spatial key of Objects[i]: the object MBR, enlarged
	// by Spec.MBRScale for join version b.
	MBRs []geom.Rect
}

// Generate produces the dataset for spec. Generation is deterministic in
// the spec.
func Generate(spec Spec) *Dataset {
	spec = spec.normalized()
	if _, ok := table1[spec.Map]; !ok {
		panic(fmt.Sprintf("datagen: unknown map %d", spec.Map))
	}
	if _, ok := table1[spec.Map][spec.Series]; !ok {
		panic(fmt.Sprintf("datagen: unknown series %c", spec.Series))
	}
	rng := rand.New(rand.NewSource(spec.Seed ^ int64(spec.Map)<<32 ^ int64(spec.Series)<<24))
	n := spec.NumObjects()
	ds := &Dataset{
		Spec:    spec,
		Objects: make([]*object.Object, 0, n),
		MBRs:    make([]geom.Rect, 0, n),
	}

	centers := urbanCenters(rng)
	sizer := newSizer(rng, spec.AvgObjectSize(), spec.SmaxBytes())

	// Object extents shrink with the square root of the object count so
	// that the number of MBR intersections per object — which drives the
	// join experiments (paper section 6.1: 0.65 per MBR in version a) —
	// is independent of the experiment scale. TIGER/Line objects are
	// small chains relative to the mapped area.
	ext := math.Sqrt(float64(spec.Scale))

	for i := 0; i < n; i++ {
		var g geom.Geometry
		if spec.Map == Map1 {
			g = genStreet(rng, centers, ext)
		} else {
			switch {
			case i%10 < 3:
				g = genCorridor(rng, centers, ext) // rivers and railway tracks
			default:
				g = genBoundary(rng, centers, ext) // administrative boundaries
			}
		}
		pad := sizer.padFor(g.NumVertices())
		o := object.New(object.ID(uint64(spec.Map)<<56|uint64(i)), g, pad)
		ds.Objects = append(ds.Objects, o)
		ds.MBRs = append(ds.MBRs, o.Bounds().Scale(spec.MBRScale))
	}
	return ds
}

// TotalBytes returns the summed serialized size of all objects.
func (d *Dataset) TotalBytes() int64 {
	var sum int64
	for _, o := range d.Objects {
		sum += int64(o.Size())
	}
	return sum
}

// MeasuredAvgSize returns the realized average object size in bytes.
func (d *Dataset) MeasuredAvgSize() float64 {
	if len(d.Objects) == 0 {
		return 0
	}
	return float64(d.TotalBytes()) / float64(len(d.Objects))
}

// DataSpace returns the data space all generators draw from (the unit
// square).
func DataSpace() geom.Rect { return geom.R(0, 0, 1, 1) }

// urbanCenter models a population center: objects cluster around it.
type urbanCenter struct {
	pos    geom.Point
	spread float64
	weight float64
}

// urbanCenters draws the shared set of population centers. The mixture of a
// few dominant cities, many towns and a uniform background reproduces the
// strong spatial clustering of TIGER street data.
func urbanCenters(rng *rand.Rand) []urbanCenter {
	var cs []urbanCenter
	total := 0.0
	for i := 0; i < 40; i++ {
		w := math.Pow(rng.Float64(), 2) // few heavy, many light centers
		c := urbanCenter{
			pos:    geom.Pt(0.05+0.9*rng.Float64(), 0.05+0.9*rng.Float64()),
			spread: 0.01 + 0.05*rng.Float64(),
			weight: w,
		}
		cs = append(cs, c)
		total += w
	}
	for i := range cs {
		cs[i].weight /= total
	}
	return cs
}

// samplePos draws an object anchor: 85% clustered around a center, 15%
// uniform background (rural areas).
func samplePos(rng *rand.Rand, centers []urbanCenter) geom.Point {
	if rng.Float64() < 0.15 {
		return geom.Pt(rng.Float64(), rng.Float64())
	}
	u := rng.Float64()
	for _, c := range centers {
		if u < c.weight {
			x := clamp01(c.pos.X + rng.NormFloat64()*c.spread)
			y := clamp01(c.pos.Y + rng.NormFloat64()*c.spread)
			return geom.Pt(x, y)
		}
		u -= c.weight
	}
	return geom.Pt(rng.Float64(), rng.Float64())
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// genStreet produces a short zigzag polyline anchored near a center: a
// street of a few blocks with slight bends, mostly axis-parallel as in a
// street grid.
func genStreet(rng *rand.Rand, centers []urbanCenter, ext float64) geom.Geometry {
	start := samplePos(rng, centers)
	nSegs := 3 + rng.Intn(10)
	step := (0.00002 + 0.00008*rng.Float64()) * ext
	horizontal := rng.Intn(2) == 0
	verts := []geom.Point{start}
	cur := start
	for i := 0; i < nSegs; i++ {
		dx, dy := 0.0, 0.0
		if horizontal {
			dx = step * (1 + 0.2*rng.NormFloat64())
			dy = step * 0.1 * rng.NormFloat64()
		} else {
			dy = step * (1 + 0.2*rng.NormFloat64())
			dx = step * 0.1 * rng.NormFloat64()
		}
		if rng.Float64() < 0.2 {
			horizontal = !horizontal // a street turning a corner
		}
		cur = geom.Pt(clamp01(cur.X+dx), clamp01(cur.Y+dy))
		verts = append(verts, cur)
	}
	return geom.NewPolyline(dedupe(verts))
}

// genCorridor produces a long polyline crossing a large part of the data
// space with momentum — a river or railway track.
func genCorridor(rng *rand.Rand, centers []urbanCenter, ext float64) geom.Geometry {
	start := samplePos(rng, centers)
	n := 12 + rng.Intn(40)
	heading := 2 * math.Pi * rng.Float64()
	step := (0.00004 + 0.00012*rng.Float64()) * ext
	verts := []geom.Point{start}
	cur := start
	for i := 0; i < n; i++ {
		heading += 0.35 * rng.NormFloat64() // meandering
		cur = geom.Pt(
			clamp01(cur.X+step*math.Cos(heading)),
			clamp01(cur.Y+step*math.Sin(heading)),
		)
		verts = append(verts, cur)
	}
	return geom.NewPolyline(dedupe(verts))
}

// genBoundary produces a simple star-shaped polygon around an anchor — an
// administrative boundary.
func genBoundary(rng *rand.Rand, centers []urbanCenter, ext float64) geom.Geometry {
	c := samplePos(rng, centers)
	n := 6 + rng.Intn(18)
	radius := (0.0002 + 0.001*rng.Float64()) * ext
	verts := make([]geom.Point, 0, n)
	for i := 0; i < n; i++ {
		ang := 2 * math.Pi * float64(i) / float64(n)
		r := radius * (0.6 + 0.8*rng.Float64())
		verts = append(verts, geom.Pt(
			clamp01(c.X+r*math.Cos(ang)),
			clamp01(c.Y+r*math.Sin(ang)),
		))
	}
	return geom.NewPolygon(verts)
}

// dedupe removes consecutive duplicate vertices (clamping can collapse
// steps at the data space border) while keeping at least two.
func dedupe(verts []geom.Point) []geom.Point {
	out := verts[:1]
	for _, v := range verts[1:] {
		if !v.Eq(out[len(out)-1]) {
			out = append(out, v)
		}
	}
	if len(out) < 2 {
		out = append(out, geom.Pt(out[0].X+1e-6, out[0].Y+1e-6))
	}
	return out
}

// sizer draws serialized object sizes with the Table 1 average: the object's
// geometry bytes are fixed by its vertex count, and exponential padding
// provides the long-tailed size distribution of real map objects (in series
// C a noticeable share of objects exceeds one 4 KB page, which drives the
// primary organization's behaviour in Figures 5 and 12).
type sizer struct {
	rng     *rand.Rand
	avgSize int
	maxSize int
}

func newSizer(rng *rand.Rand, avgSize, maxSize int) *sizer {
	return &sizer{rng: rng, avgSize: avgSize, maxSize: maxSize}
}

// padFor returns padding bytes for an object with the given vertex count so
// that sizes average approximately the series target.
func (s *sizer) padFor(nVertices int) int {
	base := object.SizeFor(nVertices, 0)
	mean := float64(s.avgSize - base)
	if mean < 1 {
		mean = 1
	}
	pad := int(s.rng.ExpFloat64() * mean)
	if base+pad > s.maxSize {
		pad = s.maxSize - base
	}
	if pad < 0 {
		pad = 0
	}
	return pad
}
