// Package datagen generates the synthetic TIGER-like test data and the
// workloads of the reproduction. The paper's evaluation (section 5.1) uses
// two maps derived from US Bureau of the Census TIGER/Line data for
// Californian counties:
//
//	map 1: 131,461 street objects
//	map 2: 128,971 administrative boundaries, rivers and railway tracks
//
// and three test series A, B, C that differ only in the average object size
// (Table 1). This package reproduces the statistical properties that the
// experiments depend on — object counts, clustered spatial distribution,
// polyline/polygon geometry, and the per-series size distributions — with a
// deterministic pseudo-random generator, because the original TIGER extracts
// are not available.
//
// Next to the datasets it generates the query and update workloads: window
// and point query sets (workload.go, the 678-query batches of Figures 8–12)
// and deterministic mixed insert/delete/update/query streams with hotspot
// skew (MixedWorkload, mixed.go) for the dynamic benchmarks. The same
// (spec, seed) pair always yields the identical dataset and stream, which is
// what makes every BENCH_*.json artifact byte-reproducible. Datasets can be
// written to and read from map files (io.go, the mapgen command).
package datagen
