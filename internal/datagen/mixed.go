package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"spatialcluster/internal/geom"
	"spatialcluster/internal/object"
)

// OpKind classifies one operation of a mixed workload.
type OpKind byte

// The operation kinds of the mixed workload.
const (
	OpInsert OpKind = iota
	OpDelete
	OpUpdate
	OpQuery
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpUpdate:
		return "update"
	case OpQuery:
		return "query"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Op is one operation of a mixed workload. Inserts and updates carry the
// object and its spatial key; deletes carry the victim ID; queries carry the
// window.
type Op struct {
	Kind   OpKind
	Obj    *object.Object // insert, update
	Key    geom.Rect      // insert, update
	ID     object.ID      // delete (updates use Obj.ID)
	Window geom.Rect      // query
}

// MixSpec describes a mixed insert/delete/update/query workload over a
// generated dataset. Workload generation is deterministic: equal specs over
// equal datasets produce identical op streams.
type MixSpec struct {
	// Ops is the number of operations to generate.
	Ops int
	// Fractions of the four op kinds; they are normalized by their sum.
	// All zero selects the default mix 0.2/0.3/0.3/0.2.
	InsertFrac, DeleteFrac, UpdateFrac, QueryFrac float64
	// HotspotFrac is the share of delete/update victims and query centers
	// drawn from the hotspot region instead of the whole data space —
	// update skew concentrates clustering decay the way real workloads do.
	// Zero disables the hotspot.
	HotspotFrac float64
	// HotspotSide is the side length of the square hotspot region; the
	// center is drawn data-density-weighted from the seed. Default 0.2.
	HotspotSide float64
	// WindowArea is the area fraction of generated query windows
	// (default 0.001, the middle window size of Figure 8).
	WindowArea float64
	// Seed drives all generation.
	Seed int64
}

func (m MixSpec) normalized() MixSpec {
	if m.InsertFrac == 0 && m.DeleteFrac == 0 && m.UpdateFrac == 0 && m.QueryFrac == 0 {
		m.InsertFrac, m.DeleteFrac, m.UpdateFrac, m.QueryFrac = 0.2, 0.3, 0.3, 0.2
	}
	if m.HotspotSide <= 0 {
		m.HotspotSide = 0.2
	}
	if m.WindowArea <= 0 {
		m.WindowArea = 0.001
	}
	return m
}

// insertIDBit tags the IDs of workload-inserted objects so they can never
// collide with the dataset's generated IDs (map<<56 | index).
const insertIDBit = uint64(1) << 48

// mixInit seeds the workload generator and draws the hotspot region (the
// first random decision of the stream, so Hotspot can reproduce it).
func (d *Dataset) mixInit(spec MixSpec) (*rand.Rand, geom.Rect) {
	rng := rand.New(rand.NewSource(spec.Seed ^ 0x6d69786564)) // "mixed"
	hc := d.randomMBRPoint(rng)
	hotspot := geom.R(hc.X-spec.HotspotSide/2, hc.Y-spec.HotspotSide/2,
		hc.X+spec.HotspotSide/2, hc.Y+spec.HotspotSide/2).Intersection(DataSpace())
	return rng, hotspot
}

// Hotspot returns the hotspot region MixedWorkload will use for spec.
func (d *Dataset) Hotspot(spec MixSpec) geom.Rect {
	_, hotspot := d.mixInit(spec.normalized())
	return hotspot
}

// MixedWorkload generates a deterministic mixed workload over the dataset:
// the op stream tracks its own view of the live object set, so deletes and
// updates always name an object that is live at that point of the stream
// (applying the stream in order to a store built from the dataset never
// misses), and inserts use fresh IDs. When a delete or update finds the
// live set empty it degrades to an insert, so the stream always has exactly
// spec.Ops operations even for mixes that exhaust the store.
func (d *Dataset) MixedWorkload(spec MixSpec) []Op {
	spec = spec.normalized()
	rng, hotspot := d.mixInit(spec)
	sum := spec.InsertFrac + spec.DeleteFrac + spec.UpdateFrac + spec.QueryFrac
	if sum <= 0 {
		panic(fmt.Sprintf("datagen: mixed workload with fraction sum %g", sum))
	}
	pInsert := spec.InsertFrac / sum
	pDelete := pInsert + spec.DeleteFrac/sum
	pUpdate := pDelete + spec.UpdateFrac/sum

	// The generator's own geometry sources: fresh centers and sizer drawn
	// from the workload seed (the dataset does not retain its own).
	centers := urbanCenters(rng)
	sizer := newSizer(rng, d.Spec.AvgObjectSize(), d.Spec.SmaxBytes())
	ext := math.Sqrt(float64(d.Spec.normalized().Scale))
	mbrScale := d.Spec.normalized().MBRScale

	w := &mixState{
		rng:     rng,
		live:    make(map[object.ID]geom.Point, len(d.Objects)),
		inHot:   make(map[object.ID]bool),
		hotspot: hotspot,
	}
	for i, o := range d.Objects {
		c := d.MBRs[i].Center()
		w.add(o.ID, c)
	}
	nextID := uint64(d.Spec.Map)<<56 | insertIDBit

	genObject := func(id object.ID) (*object.Object, geom.Rect) {
		var g geom.Geometry
		if d.Spec.Map == Map1 {
			g = genStreet(rng, centers, ext)
		} else if rng.Float64() < 0.3 {
			g = genCorridor(rng, centers, ext)
		} else {
			g = genBoundary(rng, centers, ext)
		}
		o := object.New(id, g, sizer.padFor(g.NumVertices()))
		return o, o.Bounds().Scale(mbrScale)
	}

	side := math.Sqrt(spec.WindowArea * DataSpace().Area())
	ops := make([]Op, 0, spec.Ops)
	insert := func() Op {
		id := object.ID(nextID)
		nextID++
		o, key := genObject(id)
		w.add(id, key.Center())
		return Op{Kind: OpInsert, Obj: o, Key: key}
	}
	for len(ops) < spec.Ops {
		r := rng.Float64()
		hot := rng.Float64() < spec.HotspotFrac
		switch {
		case r < pInsert:
			ops = append(ops, insert())
		case r < pDelete:
			id, ok := w.pickVictim(hot)
			if !ok {
				// Nothing live to delete: fall back to an insert so the
				// stream always reaches the requested length (a pure-delete
				// mix would otherwise loop forever on an exhausted store).
				ops = append(ops, insert())
				continue
			}
			w.remove(id)
			ops = append(ops, Op{Kind: OpDelete, ID: id})
		case r < pUpdate:
			id, ok := w.pickVictim(hot)
			if !ok {
				ops = append(ops, insert())
				continue
			}
			o, key := genObject(id)
			w.update(id, key.Center())
			ops = append(ops, Op{Kind: OpUpdate, Obj: o, Key: key})
		default:
			c := w.queryCenter(hot, d, rng)
			win := geom.R(c.X-side/2, c.Y-side/2, c.X+side/2, c.Y+side/2).
				Intersection(DataSpace())
			ops = append(ops, Op{Kind: OpQuery, Window: win})
		}
	}
	return ops
}

// mixState tracks the workload generator's view of the live object set,
// with a secondary pool of hotspot residents for skewed victim selection.
// All picks are by slice index, never by map iteration, so the stream is
// deterministic. Each live id appears at most once per pool (updates only
// move the recorded center), so pool size is bounded by the live-set size
// plus lazily pruned stale entries and victim selection stays unbiased.
type mixState struct {
	rng     *rand.Rand
	live    map[object.ID]geom.Point // id -> current key center
	all     []object.ID
	hot     []object.ID        // ids added while inside the hotspot (lazily pruned)
	inHot   map[object.ID]bool // membership of the hot pool
	hotspot geom.Rect
}

func (w *mixState) add(id object.ID, center geom.Point) {
	w.live[id] = center
	w.all = append(w.all, id)
	w.addHot(id, center)
}

// update records an updated object's new center, adding it to the hotspot
// pool if the update moved it in (moves out are pruned lazily on pick).
func (w *mixState) update(id object.ID, center geom.Point) {
	w.live[id] = center
	w.addHot(id, center)
}

func (w *mixState) addHot(id object.ID, center geom.Point) {
	if w.hotspot.ContainsPoint(center) && !w.inHot[id] {
		w.hot = append(w.hot, id)
		w.inHot[id] = true
	}
}

func (w *mixState) remove(id object.ID) { delete(w.live, id) }

// pickVictim draws a live object ID, preferring the hotspot pool when hot is
// set. Stale pool entries (deleted, or moved out of the hotspot by an
// update) are pruned lazily by swap-remove.
func (w *mixState) pickVictim(hot bool) (object.ID, bool) {
	if hot {
		if id, ok := w.pickFrom(&w.hot, true); ok {
			return id, true
		}
	}
	return w.pickFrom(&w.all, false)
}

func (w *mixState) pickFrom(pool *[]object.ID, needHot bool) (object.ID, bool) {
	for len(*pool) > 0 {
		i := w.rng.Intn(len(*pool))
		id := (*pool)[i]
		center, live := w.live[id]
		if live && (!needHot || w.hotspot.ContainsPoint(center)) {
			return id, true
		}
		last := len(*pool) - 1
		(*pool)[i] = (*pool)[last]
		*pool = (*pool)[:last]
		if needHot {
			delete(w.inHot, id)
		}
	}
	return 0, false
}

// queryCenter draws a query window center: inside the hotspot when hot,
// data-density-weighted otherwise.
func (w *mixState) queryCenter(hot bool, d *Dataset, rng *rand.Rand) geom.Point {
	if hot && w.hotspot.Area() > 0 {
		return geom.Pt(
			w.hotspot.MinX+rng.Float64()*w.hotspot.Width(),
			w.hotspot.MinY+rng.Float64()*w.hotspot.Height(),
		)
	}
	return d.randomMBRPoint(rng)
}
