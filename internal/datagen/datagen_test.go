package datagen

import (
	"math"
	"testing"

	"spatialcluster/internal/geom"
	"spatialcluster/internal/object"
)

func TestSpecTable1(t *testing.T) {
	cases := []struct {
		spec    Spec
		name    string
		objects int
		avgSize int
		smaxKB  int
	}{
		{Spec{Map: Map1, Series: SeriesA}, "A-1", 131461, 625, 80},
		{Spec{Map: Map1, Series: SeriesB}, "B-1", 131461, 1247, 160},
		{Spec{Map: Map1, Series: SeriesC}, "C-1", 131461, 2490, 320},
		{Spec{Map: Map2, Series: SeriesA}, "A-2", 128971, 781, 80},
		{Spec{Map: Map2, Series: SeriesB}, "B-2", 128971, 1558, 160},
		{Spec{Map: Map2, Series: SeriesC}, "C-2", 128971, 3113, 320},
	}
	for _, c := range cases {
		if got := c.spec.Name(); got != c.name {
			t.Errorf("Name = %q, want %q", got, c.name)
		}
		if got := c.spec.NumObjects(); got != c.objects {
			t.Errorf("%s: NumObjects = %d, want %d", c.name, got, c.objects)
		}
		if got := c.spec.AvgObjectSize(); got != c.avgSize {
			t.Errorf("%s: AvgObjectSize = %d, want %d", c.name, got, c.avgSize)
		}
		if got := c.spec.SmaxBytes(); got != c.smaxKB*1024 {
			t.Errorf("%s: SmaxBytes = %d, want %d KB", c.name, got, c.smaxKB)
		}
		if got := c.spec.SmaxPages(); got != c.smaxKB/4 {
			t.Errorf("%s: SmaxPages = %d, want %d", c.name, got, c.smaxKB/4)
		}
	}
	// Smax must support the restricted buddy system's three sizes
	// {Smax, Smax/2, Smax/4} in integral pages (paper section 5.3.1).
	for _, s := range []Series{SeriesA, SeriesB, SeriesC} {
		p := Spec{Map: Map1, Series: s}.SmaxPages()
		if p%4 != 0 {
			t.Errorf("series %c: Smax of %d pages not divisible by 4", s, p)
		}
	}
}

func TestSpecScale(t *testing.T) {
	s := Spec{Map: Map1, Series: SeriesA, Scale: 8}
	if got := s.NumObjects(); got != 131461/8 {
		t.Fatalf("scaled NumObjects = %d", got)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := Spec{Map: Map1, Series: SeriesA, Scale: 256, Seed: 7}
	d1 := Generate(spec)
	d2 := Generate(spec)
	if len(d1.Objects) != len(d2.Objects) {
		t.Fatal("non-deterministic object count")
	}
	for i := range d1.Objects {
		if d1.MBRs[i] != d2.MBRs[i] {
			t.Fatalf("object %d: MBR differs between runs", i)
		}
		if d1.Objects[i].Size() != d2.Objects[i].Size() {
			t.Fatalf("object %d: size differs between runs", i)
		}
	}
}

func TestGenerateSizeDistribution(t *testing.T) {
	for _, spec := range []Spec{
		{Map: Map1, Series: SeriesA, Scale: 16},
		{Map: Map1, Series: SeriesC, Scale: 16},
		{Map: Map2, Series: SeriesB, Scale: 16},
	} {
		d := Generate(spec)
		if len(d.Objects) != spec.NumObjects() {
			t.Fatalf("%s: count %d", spec.Name(), len(d.Objects))
		}
		avg := d.MeasuredAvgSize()
		target := float64(spec.AvgObjectSize())
		if math.Abs(avg-target)/target > 0.1 {
			t.Errorf("%s: measured avg size %.0f, target %.0f (>10%% off)",
				spec.Name(), avg, target)
		}
		for i, o := range d.Objects {
			if o.Size() > spec.SmaxBytes() {
				t.Fatalf("%s: object %d of %d bytes exceeds Smax", spec.Name(), i, o.Size())
			}
			if !DataSpace().Expand(1e-9).ContainsRect(o.Bounds()) {
				t.Fatalf("%s: object %d outside data space: %v", spec.Name(), i, o.Bounds())
			}
		}
	}
}

func TestSeriesCHasMultiPageObjects(t *testing.T) {
	d := Generate(Spec{Map: Map1, Series: SeriesC, Scale: 16})
	over := 0
	for _, o := range d.Objects {
		if o.Size() > 4096 {
			over++
		}
	}
	frac := float64(over) / float64(len(d.Objects))
	if frac < 0.05 || frac > 0.5 {
		t.Fatalf("series C objects >1 page: %.1f%%, expected a noticeable share", frac*100)
	}
}

func TestSeriesAMostlySmallObjects(t *testing.T) {
	d := Generate(Spec{Map: Map1, Series: SeriesA, Scale: 16})
	over := 0
	for _, o := range d.Objects {
		if o.Size() > 4096 {
			over++
		}
	}
	if frac := float64(over) / float64(len(d.Objects)); frac > 0.02 {
		t.Fatalf("series A objects >1 page: %.2f%%, expected almost none", frac*100)
	}
}

func TestGenerateClustering(t *testing.T) {
	// Clustered data: a small fraction of the space contains a large
	// fraction of objects. Compare against a uniform yardstick using a
	// 10x10 grid: the top-10 cells of clustered data should hold far more
	// than 10% of the objects.
	d := Generate(Spec{Map: Map1, Series: SeriesA, Scale: 16, Seed: 3})
	var grid [100]int
	for _, o := range d.Objects {
		c := o.Bounds().Center()
		gx, gy := int(c.X*10), int(c.Y*10)
		if gx > 9 {
			gx = 9
		}
		if gy > 9 {
			gy = 9
		}
		grid[gy*10+gx]++
	}
	cells := append([]int(nil), grid[:]...)
	// Selection: top 10 cells.
	top := 0
	for k := 0; k < 10; k++ {
		maxI := 0
		for i, v := range cells {
			if v > cells[maxI] {
				maxI = i
			}
			_ = v
		}
		top += cells[maxI]
		cells[maxI] = -1
	}
	if frac := float64(top) / float64(len(d.Objects)); frac < 0.3 {
		t.Fatalf("top-10 grid cells hold only %.0f%% of objects; data not clustered", frac*100)
	}
}

func TestMap2HasPolygonsAndCorridors(t *testing.T) {
	d := Generate(Spec{Map: Map2, Series: SeriesA, Scale: 64})
	polygons, lines := 0, 0
	for _, o := range d.Objects {
		switch o.Geom.(type) {
		case *geom.Polygon:
			polygons++
		case *geom.Polyline:
			lines++
		}
	}
	if polygons == 0 || lines == 0 {
		t.Fatalf("map 2 mixture: %d polygons, %d polylines", polygons, lines)
	}
}

func TestMBRScale(t *testing.T) {
	a := Generate(Spec{Map: Map1, Series: SeriesA, Scale: 256, Seed: 1})
	b := Generate(Spec{Map: Map1, Series: SeriesA, Scale: 256, Seed: 1, MBRScale: 3})
	for i := range a.MBRs {
		if b.MBRs[i].Area() < a.MBRs[i].Area() {
			t.Fatalf("object %d: scaled MBR smaller than original", i)
		}
		got := b.MBRs[i].Width()
		want := a.MBRs[i].Width() * 3
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("object %d: width %g, want %g", i, got, want)
		}
	}
	// Objects themselves are unchanged.
	for i := range a.Objects {
		if a.Objects[i].Bounds() != b.Objects[i].Bounds() {
			t.Fatal("MBRScale must not alter the geometry")
		}
	}
}

func TestObjectIDsUnique(t *testing.T) {
	d := Generate(Spec{Map: Map2, Series: SeriesA, Scale: 64})
	seen := map[object.ID]bool{}
	for _, o := range d.Objects {
		if seen[o.ID] {
			t.Fatalf("duplicate object ID %d", o.ID)
		}
		seen[o.ID] = true
	}
}

func TestWindows(t *testing.T) {
	d := Generate(Spec{Map: Map1, Series: SeriesA, Scale: 64, Seed: 5})
	for _, area := range WindowAreas {
		ws := d.Windows(area, 100, 11)
		if len(ws) != 100 {
			t.Fatalf("window count %d", len(ws))
		}
		for _, w := range ws {
			if !DataSpace().ContainsRect(w) {
				t.Fatalf("window %v outside data space", w)
			}
			if w.Area() > area*1.0001 {
				t.Fatalf("window area %g exceeds %g", w.Area(), area)
			}
		}
		// Unclipped windows must have the exact area; check the median one.
		interior := 0
		for _, w := range ws {
			if w.MinX > 0 && w.MinY > 0 && w.MaxX < 1 && w.MaxY < 1 {
				interior++
				if math.Abs(w.Area()-area)/area > 1e-9 {
					t.Fatalf("interior window area %g, want %g", w.Area(), area)
				}
			}
		}
		if interior == 0 {
			t.Fatal("no interior windows generated")
		}
	}
	// Determinism.
	w1 := d.Windows(0.001, 10, 42)
	w2 := d.Windows(0.001, 10, 42)
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatal("windows not deterministic")
		}
	}
}

func TestWindowAreaLabels(t *testing.T) {
	want := map[float64]string{
		0.00001: "0.001%", 0.0001: "0.01%", 0.001: "0.1%", 0.01: "1%", 0.1: "10%",
	}
	for f, label := range want {
		if got := WindowAreaLabel(f); got != label {
			t.Errorf("label(%g) = %q, want %q", f, got, label)
		}
	}
	if WindowAreaLabel(0.5) != "" {
		t.Error("unknown area must yield empty label")
	}
}

func TestPoints(t *testing.T) {
	d := Generate(Spec{Map: Map1, Series: SeriesA, Scale: 64, Seed: 5})
	pts := d.Points(NumQueries, 13)
	if len(pts) != 678 {
		t.Fatalf("point count %d", len(pts))
	}
	for _, p := range pts {
		if !DataSpace().ContainsPoint(p) {
			t.Fatalf("point %v outside data space", p)
		}
	}
}

func TestGeneratePanicsOnBadSpec(t *testing.T) {
	for name, spec := range map[string]Spec{
		"bad map":    {Map: 9, Series: SeriesA},
		"bad series": {Map: Map1, Series: 'Z'},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			Generate(spec)
		}()
	}
}
