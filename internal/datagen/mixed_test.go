package datagen

import (
	"reflect"
	"testing"

	"spatialcluster/internal/object"
)

// TestWorkloadDeterminism is the table-driven determinism contract of all
// workload generators: the same seed must reproduce the identical stream,
// and a different seed must not.
func TestWorkloadDeterminism(t *testing.T) {
	ds := Generate(Spec{Map: Map1, Series: SeriesA, Scale: 512, Seed: 2})
	cases := []struct {
		name string
		gen  func(seed int64) any
	}{
		{"windows", func(seed int64) any { return ds.Windows(0.001, 50, seed) }},
		{"points", func(seed int64) any { return ds.Points(50, seed) }},
		{"mixed", func(seed int64) any {
			return ds.MixedWorkload(MixSpec{Ops: 200, HotspotFrac: 0.5, Seed: seed})
		}},
		{"mixed-custom-fracs", func(seed int64) any {
			return ds.MixedWorkload(MixSpec{
				Ops: 150, InsertFrac: 1, DeleteFrac: 2, UpdateFrac: 3, QueryFrac: 1,
				HotspotFrac: 0.8, HotspotSide: 0.1, WindowArea: 0.01, Seed: seed,
			})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, b := tc.gen(7), tc.gen(7)
			if !reflect.DeepEqual(a, b) {
				t.Fatal("same seed produced different streams")
			}
			if c := tc.gen(8); reflect.DeepEqual(a, c) {
				t.Fatal("different seeds produced identical streams")
			}
		})
	}
}

// TestMixedWorkloadStreamValidity checks the structural guarantees of the op
// stream: requested length, self-consistent live tracking (no victim is
// named twice after its delete), fresh non-colliding insert IDs, and that
// every op kind occurs under the default mix.
func TestMixedWorkloadStreamValidity(t *testing.T) {
	ds := Generate(Spec{Map: Map2, Series: SeriesB, Scale: 512, Seed: 3})
	ops := ds.MixedWorkload(MixSpec{Ops: 500, HotspotFrac: 0.5, Seed: 5})
	if len(ops) != 500 {
		t.Fatalf("got %d ops, want 500", len(ops))
	}

	live := map[object.ID]bool{}
	for _, o := range ds.Objects {
		live[o.ID] = true
	}
	counts := map[OpKind]int{}
	for i, op := range ops {
		counts[op.Kind]++
		switch op.Kind {
		case OpInsert:
			if live[op.Obj.ID] {
				t.Fatalf("op %d: insert of existing ID %d", i, op.Obj.ID)
			}
			if uint64(op.Obj.ID)&insertIDBit == 0 {
				t.Fatalf("op %d: insert ID %d not tagged", i, op.Obj.ID)
			}
			if op.Obj.Size() > ds.Spec.SmaxBytes() {
				t.Fatalf("op %d: inserted object exceeds Smax", i)
			}
			live[op.Obj.ID] = true
		case OpDelete:
			if !live[op.ID] {
				t.Fatalf("op %d: delete of dead ID %d", i, op.ID)
			}
			delete(live, op.ID)
		case OpUpdate:
			if !live[op.Obj.ID] {
				t.Fatalf("op %d: update of dead ID %d", i, op.Obj.ID)
			}
			if op.Obj.Size() > ds.Spec.SmaxBytes() {
				t.Fatalf("op %d: updated object exceeds Smax", i)
			}
		case OpQuery:
			if op.Window.IsEmpty() || !DataSpace().ContainsRect(op.Window) {
				t.Fatalf("op %d: bad query window %v", i, op.Window)
			}
		default:
			t.Fatalf("op %d: unknown kind %v", i, op.Kind)
		}
	}
	for _, kind := range []OpKind{OpInsert, OpDelete, OpUpdate, OpQuery} {
		if counts[kind] == 0 {
			t.Errorf("default mix produced no %v ops", kind)
		}
	}
}

// TestMixedWorkloadHotspotSkew: with full hotspot preference the delete
// victims must concentrate inside the hotspot region (until its residents
// are exhausted), far more than under unskewed selection.
func TestMixedWorkloadHotspotSkew(t *testing.T) {
	ds := Generate(Spec{Map: Map1, Series: SeriesA, Scale: 256, Seed: 4})
	mbrOf := map[object.ID]int{}
	for i, o := range ds.Objects {
		mbrOf[o.ID] = i
	}
	inHot := func(hf float64) (hot, total int) {
		spec := MixSpec{
			Ops: 200, InsertFrac: 0, DeleteFrac: 1, UpdateFrac: 0, QueryFrac: 0,
			HotspotFrac: hf, HotspotSide: 0.3, Seed: 6,
		}
		region := ds.Hotspot(spec)
		for _, op := range ds.MixedWorkload(spec) {
			if op.Kind != OpDelete {
				continue
			}
			total++
			if region.ContainsPoint(ds.MBRs[mbrOf[op.ID]].Center()) {
				hot++
			}
		}
		return hot, total
	}
	skewHot, skewTotal := inHot(1)
	unifHot, unifTotal := inHot(0)
	if skewTotal == 0 || unifTotal == 0 {
		t.Fatal("no deletes generated")
	}
	if skewHot <= unifHot {
		t.Errorf("hotspot victims: skewed %d/%d vs uniform %d/%d — no concentration",
			skewHot, skewTotal, unifHot, unifTotal)
	}
}

// TestMixedWorkloadExhaustionFallsBackToInserts: a pure-delete mix whose op
// count exceeds the object count must terminate with exactly the requested
// ops, degrading to inserts once the live set is empty (regression: this
// used to loop forever).
func TestMixedWorkloadExhaustionFallsBackToInserts(t *testing.T) {
	ds := Generate(Spec{Map: Map1, Series: SeriesA, Scale: 4096, Seed: 2}) // ~32 objects
	n := len(ds.Objects)
	ops := ds.MixedWorkload(MixSpec{Ops: 3 * n, DeleteFrac: 1, Seed: 3})
	if len(ops) != 3*n {
		t.Fatalf("got %d ops, want %d", len(ops), 3*n)
	}
	inserts := 0
	for _, op := range ops {
		if op.Kind == OpInsert {
			inserts++
		}
	}
	if inserts == 0 {
		t.Fatal("no insert fallbacks in an exhausting pure-delete stream")
	}
}

// TestOpKindString pins the enum labels used in reports.
func TestOpKindString(t *testing.T) {
	want := map[OpKind]string{OpInsert: "insert", OpDelete: "delete", OpUpdate: "update", OpQuery: "query"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("OpKind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
	if OpKind(99).String() != "OpKind(99)" {
		t.Errorf("unknown kind formats as %q", OpKind(99).String())
	}
}
