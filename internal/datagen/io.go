package datagen

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"spatialcluster/internal/object"
)

// fileMagic identifies the binary map file format of cmd/mapgen.
const fileMagic = 0x53434d50 // "SCMP"

// Write serializes the dataset to w: a fixed header with the generation
// spec followed by length-prefixed object serializations. MBRs are not
// stored; they are recomputed (and re-scaled) on load.
func (d *Dataset) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	hdr := []any{
		uint32(fileMagic),
		uint32(d.Spec.Map),
		uint32(d.Spec.Series),
		uint32(d.Spec.Scale),
		uint64(d.Spec.Seed),
		float64(d.Spec.MBRScale),
		uint64(len(d.Objects)),
	}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("datagen: write header: %w", err)
		}
	}
	for _, o := range d.Objects {
		buf := object.Marshal(o)
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(buf))); err != nil {
			return fmt.Errorf("datagen: write object length: %w", err)
		}
		if _, err := bw.Write(buf); err != nil {
			return fmt.Errorf("datagen: write object: %w", err)
		}
	}
	return bw.Flush()
}

// ReadFrom deserializes a dataset written by Write.
func ReadFrom(r io.Reader) (*Dataset, error) {
	br := bufio.NewReader(r)
	var magic, mapID, series, scale uint32
	var seed, count uint64
	var mbrScale float64
	for _, v := range []any{&magic, &mapID, &series, &scale, &seed, &mbrScale, &count} {
		if err := binary.Read(br, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("datagen: read header: %w", err)
		}
	}
	if magic != fileMagic {
		return nil, fmt.Errorf("datagen: bad magic %#x", magic)
	}
	spec := Spec{
		Map:      MapID(mapID),
		Series:   Series(series),
		Scale:    int(scale),
		Seed:     int64(seed),
		MBRScale: mbrScale,
	}.normalized()
	ds := &Dataset{Spec: spec}
	for i := uint64(0); i < count; i++ {
		var n uint32
		if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
			return nil, fmt.Errorf("datagen: read object %d length: %w", i, err)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("datagen: read object %d: %w", i, err)
		}
		o, err := object.Unmarshal(buf)
		if err != nil {
			return nil, fmt.Errorf("datagen: object %d: %w", i, err)
		}
		ds.Objects = append(ds.Objects, o)
		ds.MBRs = append(ds.MBRs, o.Bounds().Scale(spec.MBRScale))
	}
	return ds, nil
}
