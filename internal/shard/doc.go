// Package shard partitions the Hilbert key space across N store instances.
//
// A Map splits the Hilbert index space [0, geom.HilbertRange) into N
// contiguous ranges. Every object belongs to exactly one shard — the one
// owning the Hilbert index of its spatial key's center — so mutations route
// to a single store and the shards hold disjoint object sets. Queries route
// to the minimal set of shards whose region can hold a qualifying object:
//
//   - Overlapping maps a window (or point) to the shards whose Hilbert
//     region intersects the window expanded by the largest key half-extent
//     seen (an object's center can sit up to that far outside any window the
//     object intersects).
//   - ShardDists lower-bounds, per shard, the distance from a query point to
//     any object owned by that shard — the bound the k-NN scatter-gather
//     uses to prune shards, mirroring the monotone stop of the best-first
//     leaf traversal (store.nearestSearch / rtree.NearestLeaves).
//
// Both run a recursive descent over aligned 2^k × 2^k cell blocks of the
// curve. An aligned block is a recursion square of the curve, so its cells
// occupy one contiguous index interval (geom.HilbertBlockRange): a block
// whose interval lies inside one shard's range resolves immediately, and the
// descent recurses only into blocks that straddle a shard boundary — at most
// one per boundary per level, so the walk touches O(4 · HilbertOrder · N)
// blocks regardless of how fine the partition is.
//
// The spatial reasoning assumes objects live in the unit square (the clamp
// in geom.HilbertCellOf is monotone, so clamped centers preserve window
// coverage exactly, but an object entirely outside [0,1]² could be closer to
// a query point than its shard's clamped region suggests). The data
// generator and the wire API both produce unit-square data.
package shard
