package shard

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"spatialcluster/internal/geom"
)

// Map is an immutable partition of the Hilbert index space into N contiguous
// ranges, plus a monotonically growing record of the largest key half-extent
// routed through it. The cuts never change after construction; the pad is
// updated atomically, so a Map is safe for concurrent use by the router.
type Map struct {
	// cuts are the N-1 interior boundaries, ascending. Shard i owns
	// [Lo(i), Hi(i)) with Lo(0) = 0 and Hi(N-1) = geom.HilbertRange.
	// Duplicate cuts are legal and make the shard between them empty.
	cuts []uint64
	// padX/padY hold math.Float64bits of the largest key half-extent seen
	// on each axis; queries are expanded by them before shard overlap is
	// decided, because an object's routing center can sit up to a
	// half-extent outside any window the object intersects.
	padX, padY atomic.Uint64
}

// Uniform returns a Map splitting the index space into n equal ranges.
// n must be at least 1.
func Uniform(n int) *Map {
	if n < 1 {
		panic(fmt.Sprintf("shard.Uniform: n = %d", n))
	}
	cuts := make([]uint64, n-1)
	step := geom.HilbertRange / uint64(n)
	for i := range cuts {
		cuts[i] = uint64(i+1) * step
	}
	return &Map{cuts: cuts}
}

// FromKeys returns a Map whose n ranges hold equal quantiles of the given
// spatial keys (by Hilbert index of the key center), and whose pad covers the
// keys' half-extents. The construction is deterministic: the same keys in any
// order yield the same Map. With no keys it degrades to Uniform(n).
func FromKeys(keys []geom.Rect, n int) *Map {
	if n < 1 {
		panic(fmt.Sprintf("shard.FromKeys: n = %d", n))
	}
	if len(keys) == 0 {
		return Uniform(n)
	}
	m := &Map{cuts: make([]uint64, n-1)}
	idx := make([]uint64, len(keys))
	for i, k := range keys {
		idx[i] = geom.HilbertIndex(k.Center())
		m.Observe(k)
	}
	sort.Slice(idx, func(a, b int) bool { return idx[a] < idx[b] })
	for i := 1; i < n; i++ {
		m.cuts[i-1] = idx[i*len(idx)/n]
	}
	return m
}

// FromRanges builds a Map from explicit per-shard [lo, hi) index ranges,
// validating that they partition the full index space in order — the
// constructor behind the router daemon's -shards flag.
func FromRanges(ranges [][2]uint64) (*Map, error) {
	if len(ranges) == 0 {
		return nil, errors.New("no shard ranges")
	}
	if ranges[0][0] != 0 {
		return nil, fmt.Errorf("first shard range starts at %d, must start at 0", ranges[0][0])
	}
	for i, r := range ranges {
		if r[1] < r[0] {
			return nil, fmt.Errorf("shard %d: inverted range %d-%d", i, r[0], r[1])
		}
		if i > 0 {
			switch prev := ranges[i-1][1]; {
			case r[0] < prev:
				return nil, fmt.Errorf("shard %d: range %d-%d overlaps shard %d ending at %d",
					i, r[0], r[1], i-1, prev)
			case r[0] > prev:
				return nil, fmt.Errorf("shard %d: gap %d-%d before range", i, prev, r[0])
			}
		}
	}
	if last := ranges[len(ranges)-1][1]; last != geom.HilbertRange {
		return nil, fmt.Errorf("last shard range ends at %d, must end at %d",
			last, geom.HilbertRange)
	}
	cuts := make([]uint64, len(ranges)-1)
	for i := range cuts {
		cuts[i] = ranges[i][1]
	}
	return &Map{cuts: cuts}, nil
}

// N returns the number of shards.
func (m *Map) N() int { return len(m.cuts) + 1 }

// Range returns the half-open Hilbert index interval owned by shard i.
func (m *Map) Range(i int) (lo, hi uint64) {
	if i > 0 {
		lo = m.cuts[i-1]
	}
	hi = geom.HilbertRange
	if i < len(m.cuts) {
		hi = m.cuts[i]
	}
	return lo, hi
}

// Ranges returns every shard's [lo, hi) interval; FromRanges round-trips it.
func (m *Map) Ranges() [][2]uint64 {
	out := make([][2]uint64, m.N())
	for i := range out {
		out[i][0], out[i][1] = m.Range(i)
	}
	return out
}

// String renders the partition as "lo-hi,lo-hi,..." — the textual form the
// router daemon's -shards flag and /shards endpoint speak.
func (m *Map) String() string {
	var b strings.Builder
	for i := 0; i < m.N(); i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		lo, hi := m.Range(i)
		b.WriteString(strconv.FormatUint(lo, 10))
		b.WriteByte('-')
		b.WriteString(strconv.FormatUint(hi, 10))
	}
	return b.String()
}

// ShardOfIndex returns the shard owning Hilbert index d.
func (m *Map) ShardOfIndex(d uint64) int {
	return sort.Search(len(m.cuts), func(j int) bool { return m.cuts[j] > d })
}

// ShardOfKey returns the shard owning an object with the given spatial key:
// the shard of the Hilbert index of the key's center. It does not grow the
// pad; mutation paths call Observe as well.
func (m *Map) ShardOfKey(key geom.Rect) int {
	return m.ShardOfIndex(geom.HilbertIndex(key.Center()))
}

// Observe grows the pad to cover the key's half-extents. Every key routed to
// a shard must be observed (FromKeys observes its sample itself), or windows
// near a shard boundary could miss objects whose center lies across it.
func (m *Map) Observe(key geom.Rect) {
	if key.IsEmpty() {
		return
	}
	growMax(&m.padX, key.Width()/2)
	growMax(&m.padY, key.Height()/2)
}

// SetPad forces the pad to at least (px, py) — for routers fronting shards
// whose data was built out of band, where the build-time extents never
// passed through Observe.
func (m *Map) SetPad(px, py float64) {
	growMax(&m.padX, px)
	growMax(&m.padY, py)
}

// Pad returns the current per-axis pad.
func (m *Map) Pad() (px, py float64) {
	return math.Float64frombits(m.padX.Load()), math.Float64frombits(m.padY.Load())
}

func growMax(a *atomic.Uint64, v float64) {
	if v < 0 || math.IsNaN(v) {
		return
	}
	for {
		old := a.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if a.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// expand grows w by the pad on each axis and clamps every endpoint into
// [0,1]. Object centers live in [0,1]² (clamped there by HilbertCellOf), so
// a grown window disjoint from the unit square can cover no center at all —
// it overlaps zero shards (ok false). Otherwise clamping the endpoints
// (rather than intersecting with the unit square) matters: HilbertCellOf
// clamps centers the same monotone way, so a center's clamped image lies in
// the clamped expanded window exactly when the unclamped center lies in the
// unclamped one.
func (m *Map) expand(w geom.Rect) (q geom.Rect, ok bool) {
	px, py := m.Pad()
	grown := geom.Rect{
		MinX: w.MinX - px, MinY: w.MinY - py,
		MaxX: w.MaxX + px, MaxY: w.MaxY + py,
	}
	if !grown.Intersects(geom.R(0, 0, 1, 1)) {
		return geom.Rect{}, false
	}
	return geom.Rect{
		MinX: clamp01(grown.MinX), MinY: clamp01(grown.MinY),
		MaxX: clamp01(grown.MaxX), MaxY: clamp01(grown.MaxY),
	}, true
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Overlapping returns, ascending, the shards whose region can own an object
// intersecting window w: the shards whose Hilbert region intersects w
// expanded by the pad. An empty w overlaps no shard.
func (m *Map) Overlapping(w geom.Rect) []int {
	if w.IsEmpty() {
		return nil
	}
	q, ok := m.expand(w)
	if !ok {
		return nil
	}
	hit := make([]bool, m.N())
	m.overlapDescend(0, 0, geom.HilbertSide, q, hit)
	out := make([]int, 0, len(hit))
	for i, h := range hit {
		if h {
			out = append(out, i)
		}
	}
	return out
}

// overlapDescend marks the shards whose region intersects q, descending the
// curve's aligned blocks. A block resolves without recursion when it misses
// q, lies inside one shard, or lies entirely inside q (then every shard its
// interval touches is hit) — so recursion continues only at blocks that
// partially overlap q while straddling a boundary.
func (m *Map) overlapDescend(x, y, size uint32, q geom.Rect, hit []bool) {
	r := geom.HilbertBlockRect(x, y, size)
	if !r.Intersects(q) {
		return
	}
	lo, hi := geom.HilbertBlockRange(x, y, size)
	s1, s2 := m.ShardOfIndex(lo), m.ShardOfIndex(hi-1)
	if s1 == s2 {
		hit[s1] = true
		return
	}
	if q.ContainsRect(r) {
		for i := s1; i <= s2; i++ {
			hit[i] = true
		}
		return
	}
	half := size / 2
	m.overlapDescend(x, y, half, q, hit)
	m.overlapDescend(x+half, y, half, q, hit)
	m.overlapDescend(x, y+half, half, q, hit)
	m.overlapDescend(x+half, y+half, half, q, hit)
}

// ShardDists lower-bounds, per shard, the exact distance from p to any
// object the shard owns: the minimum over the shard's Hilbert blocks of
// MinDist(p, block expanded by the pad). A shard containing p's cell gets 0;
// an empty shard (zero-width range) keeps +Inf. The k-NN scatter uses these
// with the same strict comparison as the best-first leaf traversal: a shard
// is pruned only when its bound strictly exceeds the k-th global distance.
func (m *Map) ShardDists(p geom.Point) []float64 {
	dists := make([]float64, m.N())
	for i := range dists {
		dists[i] = math.Inf(1)
	}
	px, py := m.Pad()
	m.distDescend(0, 0, geom.HilbertSide, p, px, py, dists)
	return dists
}

func (m *Map) distDescend(x, y, size uint32, p geom.Point, px, py float64, dists []float64) {
	lo, hi := geom.HilbertBlockRange(x, y, size)
	s1, s2 := m.ShardOfIndex(lo), m.ShardOfIndex(hi-1)
	r := geom.HilbertBlockRect(x, y, size)
	r.MinX, r.MinY, r.MaxX, r.MaxY = r.MinX-px, r.MinY-py, r.MaxX+px, r.MaxY+py
	d := r.MinDist(p)
	if s1 == s2 {
		if d < dists[s1] {
			dists[s1] = d
		}
		return
	}
	// The block can only lower the bounds of shards s1..s2, and never below
	// its own MinDist: recursing is useless once they are all at or below d.
	useful := false
	for i := s1; i <= s2; i++ {
		if d < dists[i] {
			useful = true
			break
		}
	}
	if !useful {
		return
	}
	half := size / 2
	m.distDescend(x, y, half, p, px, py, dists)
	m.distDescend(x+half, y, half, p, px, py, dists)
	m.distDescend(x, y+half, half, p, px, py, dists)
	m.distDescend(x+half, y+half, half, p, px, py, dists)
}

// Counts tallies how many of the given keys route to each shard — the
// balance diagnostic reported by benchmarks and the /shards endpoint.
func (m *Map) Counts(keys []geom.Rect) []int {
	out := make([]int, m.N())
	for _, k := range keys {
		out[m.ShardOfKey(k)]++
	}
	return out
}

// ParseRanges parses the textual partition form produced by String.
func ParseRanges(s string) (*Map, error) {
	parts := strings.Split(s, ",")
	ranges := make([][2]uint64, 0, len(parts))
	for _, part := range parts {
		lohi := strings.SplitN(strings.TrimSpace(part), "-", 2)
		if len(lohi) != 2 {
			return nil, fmt.Errorf("range %q: want lo-hi", part)
		}
		lo, err := strconv.ParseUint(lohi[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("range %q: %v", part, err)
		}
		hi, err := strconv.ParseUint(lohi[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("range %q: %v", part, err)
		}
		ranges = append(ranges, [2]uint64{lo, hi})
	}
	return FromRanges(ranges)
}
