package shard

import "math"

// The k-NN scatter-gather merge. Each shard answers a k-NN query with its
// own top k (exact distances, ties by ID — the store's order); the router
// merges them into the global top k with the same monotone stop the
// best-first leaf traversal uses: once the accumulator is full, a shard
// whose distance lower bound strictly exceeds the k-th global distance
// cannot contribute, while a shard tied with the bound still can. Because a
// queried shard always returns its full k, its contribution is complete —
// no re-query is ever needed: any object the shard withheld is preceded by
// k closer-or-equal objects that were offered to the merger.

// Neighbor is one merged k-NN answer entry.
type Neighbor struct {
	ID   uint64
	Dist float64
}

// KNNMerger accumulates per-shard k-NN answers into the global top k,
// ordered by (distance, ID) exactly like the single-store answer.
type KNNMerger struct {
	k     int
	items []Neighbor
}

// NewKNNMerger returns a merger for the global top k.
func NewKNNMerger(k int) *KNNMerger {
	if k < 0 {
		k = 0
	}
	return &KNNMerger{k: k}
}

// Add offers one neighbor. Shards own disjoint objects, so a duplicate ID is
// a routing bug upstream; the merger still keeps only the closer entry
// rather than answering with a duplicate.
func (m *KNNMerger) Add(id uint64, dist float64) {
	if m.k == 0 {
		return
	}
	for i, it := range m.items {
		if it.ID == id {
			if less(dist, id, it.Dist, it.ID) {
				m.items = append(m.items[:i], m.items[i+1:]...)
				break
			}
			return
		}
	}
	pos := len(m.items)
	for pos > 0 && less(dist, id, m.items[pos-1].Dist, m.items[pos-1].ID) {
		pos--
	}
	if pos == m.k {
		return
	}
	m.items = append(m.items, Neighbor{})
	copy(m.items[pos+1:], m.items[pos:])
	m.items[pos] = Neighbor{ID: id, Dist: dist}
	if len(m.items) > m.k {
		m.items = m.items[:m.k]
	}
}

func less(d1 float64, id1 uint64, d2 float64, id2 uint64) bool {
	if d1 != d2 {
		return d1 < d2
	}
	return id1 < id2
}

// Full reports whether the merger holds k entries.
func (m *KNNMerger) Full() bool { return len(m.items) == m.k }

// Bound returns the k-th global distance, or +Inf while the merger is not
// yet full — the cut against which shard lower bounds are compared.
func (m *KNNMerger) Bound() float64 {
	if !m.Full() || m.k == 0 {
		return math.Inf(1)
	}
	return m.items[len(m.items)-1].Dist
}

// Results returns the merged answer in (distance, ID) order.
func (m *KNNMerger) Results() (ids []uint64, dists []float64) {
	ids = make([]uint64, len(m.items))
	dists = make([]float64, len(m.items))
	for i, it := range m.items {
		ids[i], dists[i] = it.ID, it.Dist
	}
	return ids, dists
}

// NextWave plans the next round of shard queries: among the shards not yet
// queried and not provably incapable (prune only when the merger is full AND
// the shard's bound strictly exceeds the global bound — ties survive, as in
// the leaf traversal), it returns those tied at the minimum bound. Querying
// wave by wave visits shards in best-first bound order and stops as soon as
// the remaining bounds prove completeness; nil means done.
func NextWave(dists []float64, queried []bool, m *KNNMerger) []int {
	best := math.Inf(1)
	for i, d := range dists {
		if queried[i] {
			continue
		}
		if m.Full() && d > m.Bound() {
			continue
		}
		if d < best {
			best = d
		}
	}
	if math.IsInf(best, 1) {
		return nil
	}
	var wave []int
	for i, d := range dists {
		if !queried[i] && d == best {
			wave = append(wave, i)
		}
	}
	return wave
}
