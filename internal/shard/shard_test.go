package shard

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"spatialcluster/internal/geom"
)

func randKeys(rng *rand.Rand, n int, maxHalf float64) []geom.Rect {
	keys := make([]geom.Rect, n)
	for i := range keys {
		cx, cy := rng.Float64(), rng.Float64()
		hx, hy := rng.Float64()*maxHalf, rng.Float64()*maxHalf
		keys[i] = geom.R(cx-hx, cy-hy, cx+hx, cy+hy)
	}
	return keys
}

func TestUniformPartition(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 8} {
		m := Uniform(n)
		if m.N() != n {
			t.Fatalf("Uniform(%d).N() = %d", n, m.N())
		}
		var prev uint64
		for i := 0; i < n; i++ {
			lo, hi := m.Range(i)
			if lo != prev || hi < lo {
				t.Fatalf("Uniform(%d) shard %d: range [%d,%d) after %d", n, i, lo, hi, prev)
			}
			prev = hi
		}
		if prev != geom.HilbertRange {
			t.Fatalf("Uniform(%d) ends at %d", n, prev)
		}
	}
}

func TestShardOfIndexMatchesRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := FromKeys(randKeys(rng, 500, 0.02), 5)
	for trial := 0; trial < 2000; trial++ {
		d := rng.Uint64() % geom.HilbertRange
		s := m.ShardOfIndex(d)
		lo, hi := m.Range(s)
		if d < lo || d >= hi {
			t.Fatalf("index %d -> shard %d owning [%d,%d)", d, s, lo, hi)
		}
	}
}

func TestFromKeysBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	keys := randKeys(rng, 4000, 0.01)
	m := FromKeys(keys, 4)
	for i, c := range m.Counts(keys) {
		if c < 500 || c > 1500 {
			t.Fatalf("shard %d holds %d of 4000 keys — quantile split badly unbalanced", i, c)
		}
	}
	// Deterministic: shuffled keys give the identical partition.
	shuffled := append([]geom.Rect(nil), keys...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	if FromKeys(shuffled, 4).String() != m.String() {
		t.Fatal("FromKeys depends on key order")
	}
}

func TestRangesRoundTrip(t *testing.T) {
	m := FromKeys(randKeys(rand.New(rand.NewSource(3)), 300, 0.02), 6)
	m2, err := ParseRanges(m.String())
	if err != nil {
		t.Fatalf("ParseRanges(%q): %v", m.String(), err)
	}
	if m2.String() != m.String() {
		t.Fatalf("round trip %q -> %q", m.String(), m2.String())
	}
}

func TestFromRangesValidation(t *testing.T) {
	full := geom.HilbertRange
	cases := []struct {
		name   string
		ranges [][2]uint64
	}{
		{"empty", nil},
		{"bad start", [][2]uint64{{1, full}}},
		{"bad end", [][2]uint64{{0, full - 1}}},
		{"inverted", [][2]uint64{{0, 10}, {20, 10}, {10, full}}},
		{"overlap", [][2]uint64{{0, 100}, {50, full}}},
		{"gap", [][2]uint64{{0, 100}, {200, full}}},
	}
	for _, tc := range cases {
		if _, err := FromRanges(tc.ranges); err == nil {
			t.Errorf("%s: FromRanges accepted %v", tc.name, tc.ranges)
		}
	}
	if _, err := FromRanges([][2]uint64{{0, 100}, {100, 100}, {100, full}}); err != nil {
		t.Errorf("empty middle shard rejected: %v", err)
	}
}

// TestOverlappingCovers is the routing soundness property: every object
// intersecting a window is owned by one of the shards Overlapping returns.
func TestOverlappingCovers(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{1, 2, 4, 8} {
		keys := randKeys(rng, 600, 0.03)
		m := FromKeys(keys, n)
		for trial := 0; trial < 200; trial++ {
			w := geom.R(rng.Float64()*1.2-0.1, rng.Float64()*1.2-0.1,
				rng.Float64()*1.2-0.1, rng.Float64()*1.2-0.1)
			shards := m.Overlapping(w)
			in := make(map[int]bool, len(shards))
			for _, s := range shards {
				in[s] = true
			}
			for _, k := range keys {
				if k.Intersects(w) && !in[m.ShardOfKey(k)] {
					t.Fatalf("n=%d: key %v intersects %v but shard %d not in %v",
						n, k, w, m.ShardOfKey(k), shards)
				}
			}
		}
	}
}

func TestOverlappingEdges(t *testing.T) {
	m := FromKeys(randKeys(rand.New(rand.NewSource(5)), 400, 0.02), 4)
	if got := m.Overlapping(geom.EmptyRect()); got != nil {
		t.Fatalf("empty window overlaps %v", got)
	}
	// The full square overlaps every non-empty shard region; with 4
	// quantile shards of 400 keys none is empty.
	if got := m.Overlapping(geom.R(0, 0, 1, 1)); len(got) != 4 {
		t.Fatalf("unit window overlaps %v, want all 4", got)
	}
	// A window farther from the unit square than the pad can cover no
	// object center: it overlaps zero shards.
	if got := m.Overlapping(geom.R(2, 2, 3, 3)); len(got) != 0 {
		t.Fatalf("far window overlaps %v, want none", got)
	}
	// A window just outside the square but within pad reach still hits the
	// boundary shards.
	px, _ := m.Pad()
	if got := m.Overlapping(geom.R(1+px/2, 0.4, 1.5, 0.6)); len(got) == 0 {
		t.Fatal("near-boundary window overlaps no shard; boundary keys could be missed")
	}
}

// TestShardDistsLowerBound: a shard's bound never exceeds the distance from
// the query point to any key the shard owns.
func TestShardDistsLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{1, 3, 8} {
		keys := randKeys(rng, 500, 0.03)
		m := FromKeys(keys, n)
		for trial := 0; trial < 100; trial++ {
			p := geom.Pt(rng.Float64(), rng.Float64())
			dists := m.ShardDists(p)
			if len(dists) != n {
				t.Fatalf("n=%d: %d bounds", n, len(dists))
			}
			for _, k := range keys {
				s := m.ShardOfKey(k)
				if d := k.MinDist(p); dists[s] > d+1e-12 {
					t.Fatalf("n=%d: shard %d bound %g > dist %g to key %v",
						n, s, dists[s], d, k)
				}
			}
		}
	}
}

func TestShardDistsEmptyShard(t *testing.T) {
	// A zero-width range owns no cell: its bound stays +Inf.
	m, err := FromRanges([][2]uint64{{0, 100}, {100, 100}, {100, geom.HilbertRange}})
	if err != nil {
		t.Fatal(err)
	}
	dists := m.ShardDists(geom.Pt(0.5, 0.5))
	if !math.IsInf(dists[1], 1) {
		t.Fatalf("empty shard bound = %g, want +Inf", dists[1])
	}
	if math.IsInf(dists[0], 1) || math.IsInf(dists[2], 1) {
		t.Fatalf("non-empty shard bounds = %v", dists)
	}
}

func TestKNNMergerOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	type obj struct {
		id   uint64
		dist float64
	}
	objs := make([]obj, 60)
	for i := range objs {
		// Coarse distances force (dist, ID) ties.
		objs[i] = obj{id: uint64(i), dist: float64(rng.Intn(10)) / 10}
	}
	m := NewKNNMerger(12)
	for _, o := range objs {
		m.Add(o.id, o.dist)
	}
	sort.Slice(objs, func(a, b int) bool {
		if objs[a].dist != objs[b].dist {
			return objs[a].dist < objs[b].dist
		}
		return objs[a].id < objs[b].id
	})
	ids, dists := m.Results()
	if len(ids) != 12 {
		t.Fatalf("merged %d, want 12", len(ids))
	}
	for i := range ids {
		if ids[i] != objs[i].id || dists[i] != objs[i].dist {
			t.Fatalf("rank %d: got (%d,%g), want (%d,%g)",
				i, ids[i], dists[i], objs[i].id, objs[i].dist)
		}
	}
	if m.Bound() != objs[11].dist {
		t.Fatalf("bound %g, want %g", m.Bound(), objs[11].dist)
	}
}

func TestKNNMergerDuplicateID(t *testing.T) {
	m := NewKNNMerger(3)
	m.Add(7, 0.5)
	m.Add(7, 0.2) // closer duplicate wins
	m.Add(7, 0.9) // farther duplicate ignored
	m.Add(1, 0.3)
	ids, dists := m.Results()
	if len(ids) != 2 || ids[0] != 7 || dists[0] != 0.2 || ids[1] != 1 {
		t.Fatalf("got %v %v", ids, dists)
	}
}

// TestKNNWaveSimulation runs the full scatter-gather protocol in-process
// against a brute-force global answer, including boundary ties.
func TestKNNWaveSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	type obj struct {
		id uint64
		pt geom.Point
	}
	for _, n := range []int{1, 2, 4, 8} {
		objs := make([]obj, 300)
		keys := make([]geom.Rect, len(objs))
		for i := range objs {
			// Snap to a coarse grid so exact distance ties happen often,
			// including across shard boundaries.
			objs[i] = obj{id: uint64(i + 1),
				pt: geom.Pt(float64(rng.Intn(20))/20, float64(rng.Intn(20))/20)}
			keys[i] = geom.RectFromPoint(objs[i].pt)
		}
		m := FromKeys(keys, n)
		perShard := make([][]obj, n)
		for i, o := range objs {
			s := m.ShardOfKey(keys[i])
			perShard[s] = append(perShard[s], o)
		}
		for trial := 0; trial < 50; trial++ {
			p := geom.Pt(float64(rng.Intn(40))/40, float64(rng.Intn(40))/40)
			const k = 10
			// Global brute-force answer.
			want := append([]obj(nil), objs...)
			sort.Slice(want, func(a, b int) bool {
				da, db := want[a].pt.Dist(p), want[b].pt.Dist(p)
				if da != db {
					return da < db
				}
				return want[a].id < want[b].id
			})
			want = want[:k]
			// Scatter-gather protocol.
			bounds := m.ShardDists(p)
			queried := make([]bool, n)
			merger := NewKNNMerger(k)
			waves := 0
			for wave := NextWave(bounds, queried, merger); wave != nil; wave = NextWave(bounds, queried, merger) {
				waves++
				if waves > n+1 {
					t.Fatalf("n=%d: wave loop did not terminate", n)
				}
				for _, s := range wave {
					queried[s] = true
					// The shard answers with its local top k.
					local := append([]obj(nil), perShard[s]...)
					sort.Slice(local, func(a, b int) bool {
						da, db := local[a].pt.Dist(p), local[b].pt.Dist(p)
						if da != db {
							return da < db
						}
						return local[a].id < local[b].id
					})
					if len(local) > k {
						local = local[:k]
					}
					for _, o := range local {
						merger.Add(o.id, o.pt.Dist(p))
					}
				}
			}
			ids, _ := merger.Results()
			if len(ids) != k {
				t.Fatalf("n=%d: merged %d, want %d", n, len(ids), k)
			}
			for i := range ids {
				if ids[i] != want[i].id {
					t.Fatalf("n=%d trial %d rank %d: got %d, want %d",
						n, trial, i, ids[i], want[i].id)
				}
			}
		}
	}
}

func TestObservePadGrows(t *testing.T) {
	m := Uniform(4)
	if px, py := m.Pad(); px != 0 || py != 0 {
		t.Fatalf("fresh pad %g,%g", px, py)
	}
	near := func(a, b float64) bool { return math.Abs(a-b) < 1e-12 }
	m.Observe(geom.R(0.1, 0.2, 0.3, 0.24))
	if px, py := m.Pad(); !near(px, 0.1) || !near(py, 0.02) {
		t.Fatalf("pad %g,%g after observe", px, py)
	}
	m.Observe(geom.R(0.5, 0.5, 0.52, 0.9)) // grows y only
	if px, py := m.Pad(); !near(px, 0.1) || !near(py, 0.2) {
		t.Fatalf("pad %g,%g after second observe", px, py)
	}
	m.Observe(geom.EmptyRect()) // no NaN poisoning
	if px, py := m.Pad(); !near(px, 0.1) || !near(py, 0.2) {
		t.Fatalf("pad %g,%g after empty observe", px, py)
	}
}
