package recluster

import (
	"fmt"

	"spatialcluster/internal/disk"
	"spatialcluster/internal/store"
)

// Result reports one maintenance invocation.
type Result struct {
	RepackedUnits int       // units rewritten without their dead bytes
	Rebuilt       bool      // whole organization reloaded in Hilbert order
	Cost          disk.Cost // modelled I/O charged by the maintenance
}

// Add accumulates r2 into r.
func (r Result) Add(r2 Result) Result {
	return Result{
		RepackedUnits: r.RepackedUnits + r2.RepackedUnits,
		Rebuilt:       r.Rebuilt || r2.Rebuilt,
		Cost:          r.Cost.Add(r2.Cost),
	}
}

// Policy decides, from the organization's fragmentation, which maintenance
// to run. Maintain is called between workload batches (or after every
// operation, if the caller likes); it must be cheap when there is nothing to
// do. Implementations mutate the organization through its public repack and
// rebuild primitives, which take the environment's write lock — Maintain is
// therefore safe to run concurrently with RunWindowQueriesParallel.
type Policy interface {
	Name() string
	Maintain(c *store.Cluster) Result
}

// measure runs op and returns the disk cost it charged.
func measure(c *store.Cluster, op func()) disk.Cost {
	before := c.Env().Disk.Cost()
	op()
	return c.Env().Disk.Cost().Sub(before)
}

// Threshold repacks every degraded unit once the organization-wide dead
// fraction crosses TotalDeadFrac: all units whose own dead fraction is at
// least UnitDeadFrac are rewritten. Between crossings it does nothing, so
// maintenance cost arrives in bursts — the classic "reorganize when
// fragmentation exceeds a bound" policy.
type Threshold struct {
	// TotalDeadFrac triggers maintenance (default 0.25).
	TotalDeadFrac float64
	// UnitDeadFrac selects the units to repack (default 0.10).
	UnitDeadFrac float64
}

func (p Threshold) params() (total, unit float64) {
	total, unit = p.TotalDeadFrac, p.UnitDeadFrac
	if total <= 0 {
		total = 0.25
	}
	if unit <= 0 {
		unit = 0.10
	}
	return total, unit
}

// Name implements Policy.
func (p Threshold) Name() string {
	total, unit := p.params()
	return fmt.Sprintf("threshold(%.2f/%.2f)", total, unit)
}

// Maintain implements Policy.
func (p Threshold) Maintain(c *store.Cluster) Result {
	total, unit := p.params()
	if c.Frag().DeadFrac() < total {
		return Result{}
	}
	var res Result
	res.Cost = measure(c, func() {
		for _, uf := range c.UnitFrags() {
			if uf.DeadFrac() < unit {
				break // UnitFrags is sorted worst first
			}
			if c.RepackUnit(uf.Leaf) {
				res.RepackedUnits++
			}
		}
	})
	return res
}

// Incremental repacks at most one unit per call — the worst one, if its dead
// fraction reaches MinDeadFrac. It spreads maintenance I/O evenly through
// the workload instead of bursting, at the price of tolerating a baseline of
// fragmentation.
type Incremental struct {
	// MinDeadFrac is the worst unit's dead fraction below which nothing is
	// done (default 0.10).
	MinDeadFrac float64
}

func (p Incremental) min() float64 {
	if p.MinDeadFrac <= 0 {
		return 0.10
	}
	return p.MinDeadFrac
}

// Name implements Policy.
func (p Incremental) Name() string { return fmt.Sprintf("incremental(%.2f)", p.min()) }

// Maintain implements Policy.
func (p Incremental) Maintain(c *store.Cluster) Result {
	worst := c.Frag().Worst
	if worst.DeadFrac() < p.min() {
		return Result{}
	}
	var res Result
	res.Cost = measure(c, func() {
		if c.RepackUnit(worst.Leaf) {
			res.RepackedUnits = 1
		}
	})
	return res
}

// FullRebuild reloads the whole organization in Hilbert order once the
// dead fraction reaches TotalDeadFrac — maximal restored clustering
// (bulk-load quality) for maximal maintenance cost.
type FullRebuild struct {
	// TotalDeadFrac triggers the rebuild (default 0.25).
	TotalDeadFrac float64
	// Fill is the bulk loader's target utilization; 0 selects its default.
	Fill float64
}

func (p FullRebuild) total() float64 {
	if p.TotalDeadFrac <= 0 {
		return 0.25
	}
	return p.TotalDeadFrac
}

// Name implements Policy.
func (p FullRebuild) Name() string { return fmt.Sprintf("rebuild(%.2f)", p.total()) }

// Maintain implements Policy.
func (p FullRebuild) Maintain(c *store.Cluster) Result {
	fr := c.Frag()
	if fr.Units == 0 || fr.DeadFrac() < p.total() {
		return Result{}
	}
	var res Result
	res.Cost = measure(c, func() {
		c.Rebuild(p.Fill)
		res.Rebuilt = true
	})
	return res
}

// None is the do-nothing baseline policy.
type None struct{}

// Name implements Policy.
func (None) Name() string { return "none" }

// Maintain implements Policy.
func (None) Maintain(*store.Cluster) Result { return Result{} }

// ByName returns the built-in policy with the given name ("none",
// "threshold", "incremental", "rebuild") with default parameters, or an
// error for an unknown name.
func ByName(name string) (Policy, error) {
	switch name {
	case "none", "":
		return None{}, nil
	case "threshold":
		return Threshold{}, nil
	case "incremental":
		return Incremental{}, nil
	case "rebuild":
		return FullRebuild{}, nil
	}
	return nil, fmt.Errorf("recluster: unknown policy %q", name)
}
