// Package recluster implements online reclustering for the cluster
// organization: pluggable policies that watch the fragmentation left behind
// by deletes and updates (tombstoned bytes inside cluster units) and decide
// when and how much of the clustering to restore. The repair primitives —
// single-unit repack and full Hilbert rebuild — live on store.Cluster and
// charge modelled I/O like every other operation, so a policy's maintenance
// cost shows up in the same ledger as the query savings it buys. This is the
// dynamic-reorganization half that Brinkhoff & Kriegel's static evaluation
// leaves open (and that made structures like grid files practical as DBMS
// storage).
//
// Three policies ship: Threshold (burst repack of every degraded unit once
// the organization's dead-byte fraction crosses a bound), Incremental
// (repack the worst unit per call) and FullRebuild (Hilbert bulk reload).
// ByName resolves the CLI spelling used by sdb -policy and the dynamic
// benchmark in internal/exp.
package recluster
