package recluster

import (
	"testing"

	"spatialcluster/internal/datagen"
	"spatialcluster/internal/store"
)

// churnedCluster builds a cluster organization and deletes a fraction of it.
func churnedCluster(t *testing.T, deleteFrac float64) (*store.Cluster, *datagen.Dataset) {
	t.Helper()
	ds := datagen.Generate(datagen.Spec{
		Map: datagen.Map1, Series: datagen.SeriesA, Scale: 256, Seed: 8,
	})
	c := store.NewCluster(store.NewEnv(256), store.ClusterConfig{
		SmaxBytes: ds.Spec.SmaxBytes(), BuddySizes: 3,
	})
	for i, o := range ds.Objects {
		c.Insert(o, ds.MBRs[i])
	}
	c.Flush()
	n := int(deleteFrac * float64(len(ds.Objects)))
	for _, o := range ds.Objects[:n] {
		if !c.Delete(o.ID) {
			t.Fatalf("delete %d failed", o.ID)
		}
	}
	return c, ds
}

func TestPoliciesIdleBelowThreshold(t *testing.T) {
	c, _ := churnedCluster(t, 0.02) // ~2% dead: below every default trigger
	for _, p := range []Policy{Threshold{}, FullRebuild{}, None{}} {
		if res := p.Maintain(c); res.RepackedUnits != 0 || res.Rebuilt || res.Cost.Pages() != 0 {
			t.Errorf("%s acted on a healthy organization: %+v", p.Name(), res)
		}
	}
}

func TestThresholdRepacksDegradedUnits(t *testing.T) {
	c, _ := churnedCluster(t, 0.4)
	before := c.Frag()
	if before.DeadFrac() < 0.25 {
		t.Fatalf("setup: dead fraction %.2f below trigger", before.DeadFrac())
	}
	res := Threshold{}.Maintain(c)
	if res.RepackedUnits == 0 {
		t.Fatal("threshold policy repacked nothing")
	}
	if res.Cost.Pages() == 0 {
		t.Fatal("maintenance charged no I/O")
	}
	after := c.Frag()
	if after.DeadFrac() >= 0.10 {
		t.Fatalf("dead fraction %.2f still above the unit trigger after repack", after.DeadFrac())
	}
	if after.LiveBytes != before.LiveBytes {
		t.Fatalf("live bytes changed: %d -> %d", before.LiveBytes, after.LiveBytes)
	}
	// A second call finds nothing to do.
	res2 := Threshold{}.Maintain(c)
	if res2.RepackedUnits != 0 {
		t.Fatalf("second maintain repacked %d units", res2.RepackedUnits)
	}
}

func TestIncrementalRepacksOneUnitPerCall(t *testing.T) {
	c, _ := churnedCluster(t, 0.4)
	worstBefore := c.Frag().Worst
	res := Incremental{}.Maintain(c)
	if res.RepackedUnits != 1 {
		t.Fatalf("repacked %d units, want 1", res.RepackedUnits)
	}
	for _, uf := range c.UnitFrags() {
		if uf.Leaf == worstBefore.Leaf && uf.DeadBytes != 0 {
			t.Fatalf("worst unit still has %d dead bytes", uf.DeadBytes)
		}
	}
}

func TestFullRebuildClearsAllFragmentation(t *testing.T) {
	c, _ := churnedCluster(t, 0.4)
	res := FullRebuild{}.Maintain(c)
	if !res.Rebuilt {
		t.Fatal("rebuild did not trigger")
	}
	fr := c.Frag()
	if fr.DeadBytes != 0 {
		t.Fatalf("%d dead bytes after rebuild", fr.DeadBytes)
	}
	if _, err := c.Tree().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestByName(t *testing.T) {
	for name, want := range map[string]string{
		"none": "none", "threshold": "threshold(0.25/0.10)",
		"incremental": "incremental(0.10)", "rebuild": "rebuild(0.25)",
	} {
		p, err := ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name() != want {
			t.Errorf("%s: Name() = %q, want %q", name, p.Name(), want)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("unknown policy accepted")
	}
}
