package framing

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzReadRecord drives the stream-record parser with arbitrary bytes: no
// input panics, every outcome is a payload, io.EOF, or a *RecordError, and an
// accepted payload re-frames to the exact bytes consumed.
func FuzzReadRecord(f *testing.F) {
	var seed bytes.Buffer
	AppendRecord(&seed, []byte("hello"))
	f.Add(seed.Bytes())
	var two bytes.Buffer
	AppendRecord(&two, nil)
	AppendRecord(&two, []byte{0xde, 0xad, 0xbe, 0xef})
	f.Add(two.Bytes())
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0})                     // truncated header
	f.Add([]byte{255, 255, 255, 255, 0, 0, 0, 0}) // implausible length
	f.Add(seed.Bytes()[:RecordSize(5)-1])         // truncated payload

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			before := len(data) - r.Len()
			payload, err := ReadRecord(r, 1<<16)
			if err == io.EOF {
				if before != len(data) {
					t.Fatalf("io.EOF with %d bytes unread", len(data)-before)
				}
				return
			}
			if err != nil {
				var re *RecordError
				if !errors.As(err, &re) {
					t.Fatalf("error is %T (%v), want *RecordError", err, err)
				}
				return
			}
			consumed := (len(data) - r.Len()) - before
			var buf bytes.Buffer
			if n, err := AppendRecord(&buf, payload); err != nil || n != consumed {
				t.Fatalf("re-framing wrote %d bytes (%v), parser consumed %d", n, err, consumed)
			}
			if !bytes.Equal(buf.Bytes(), data[before:before+consumed]) {
				t.Fatalf("re-framed record differs from input bytes")
			}
		}
	})
}
