// Package framing is the length-prefixed, CRC-32-framed byte discipline
// shared by the snapshot file format (version 2, PR 4/5) and the write-ahead
// log. Two shapes exist:
//
//   - whole files (WriteFile/ReadFile): one payload behind a fixed header —
//     magic | uint64 length | uint32 CRC-32 | payload — verified section by
//     section so truncation and corruption yield descriptive errors, never a
//     panic and never silently wrong bytes;
//   - streams of records (AppendRecord/ReadRecord): each record is
//     uint32 length | uint32 CRC-32 | payload, so a reader can detect the
//     torn tail a crash leaves behind — a truncated or checksum-failing
//     record — and distinguish it from a clean end of stream.
//
// All integers are little-endian; the checksum is CRC-32 (IEEE) over the
// payload only.
package framing

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// fileHeaderLen is the fixed header after the magic: length + CRC-32.
const fileHeaderLen = 8 + 4

// HeaderSize returns the fixed prefix before a file's payload: magic +
// length + CRC-32.
func HeaderSize(magic string) int { return len(magic) + fileHeaderLen }

// WriteFile writes one framed payload to path (truncating an existing file)
// and fsyncs it before closing: after WriteFile returns nil the bytes are
// durable.
func WriteFile(path, magic string, payload []byte) error {
	header := make([]byte, HeaderSize(magic))
	copy(header, magic)
	binary.LittleEndian.PutUint64(header[len(magic):], uint64(len(payload)))
	binary.LittleEndian.PutUint32(header[len(magic)+8:], crc32.ChecksumIEEE(payload))

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(header); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Write(payload); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads and verifies a framed file section by section. kind names
// the file format in error messages (e.g. "spatialcluster snapshot"); errors
// carry no path — the caller adds its own context. The length field is
// checked against the real file size before the payload is allocated, so a
// corrupted length fails cleanly instead of attempting a huge allocation.
func ReadFile(path, magic, kind string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}

	headerSize := HeaderSize(magic)
	header := make([]byte, headerSize)
	if _, err := io.ReadFull(f, header); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("truncated %s: file holds %d of the %d header bytes",
				kind, fi.Size(), headerSize)
		}
		return nil, fmt.Errorf("reading %s header: %w", kind, err)
	}
	if string(header[:len(magic)]) != magic {
		return nil, fmt.Errorf("not a %s (or an unsupported format version)", kind)
	}
	length := binary.LittleEndian.Uint64(header[len(magic):])
	sum := binary.LittleEndian.Uint32(header[len(magic)+8:])

	want := int64(headerSize) + int64(length)
	if int64(length) < 0 || want != fi.Size() {
		if fi.Size() < want {
			return nil, fmt.Errorf("truncated %s: payload holds %d of %d bytes",
				kind, fi.Size()-int64(headerSize), length)
		}
		return nil, fmt.Errorf("corrupted %s: %d trailing bytes after the %d-byte payload",
			kind, fi.Size()-want, length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(f, payload); err != nil {
		return nil, fmt.Errorf("reading %s payload of %d bytes: %w", kind, length, err)
	}
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return nil, fmt.Errorf("corrupted %s: payload checksum %08x, header says %08x",
			kind, got, sum)
	}
	return payload, nil
}

// recordHeaderLen frames every stream record: uint32 length + uint32 CRC-32.
const recordHeaderLen = 8

// RecordError reports a record that cannot be read back intact — truncated
// mid-header, truncated mid-payload, an implausible length, or a checksum
// mismatch. At the tail of a write-ahead log segment it is the signature of
// a torn write; anywhere else it is corruption.
type RecordError struct {
	Reason string
}

func (e *RecordError) Error() string { return "invalid record: " + e.Reason }

// AppendRecord writes one framed record to w and returns the bytes written
// (header + payload). A short write returns the underlying error.
func AppendRecord(w io.Writer, payload []byte) (int, error) {
	buf := make([]byte, recordHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(payload))
	copy(buf[recordHeaderLen:], payload)
	n, err := w.Write(buf)
	if err == nil && n != len(buf) {
		err = io.ErrShortWrite
	}
	return n, err
}

// RecordSize returns the framed size of a payload without writing it.
func RecordSize(payloadLen int) int { return recordHeaderLen + payloadLen }

// ReadRecord reads the next framed record from r. It returns the payload on
// success, io.EOF at a clean end of stream (no bytes remain), and a
// *RecordError when the record is truncated, oversized (length > maxLen) or
// fails its checksum. maxLen bounds the allocation a corrupted length field
// can cause.
func ReadRecord(r io.Reader, maxLen uint32) ([]byte, error) {
	header := make([]byte, recordHeaderLen)
	if _, err := io.ReadFull(r, header); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		if err == io.ErrUnexpectedEOF {
			return nil, &RecordError{Reason: "truncated record header"}
		}
		return nil, err
	}
	length := binary.LittleEndian.Uint32(header)
	sum := binary.LittleEndian.Uint32(header[4:])
	if length > maxLen {
		return nil, &RecordError{Reason: fmt.Sprintf("implausible record length %d (max %d)", length, maxLen)}
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, &RecordError{Reason: fmt.Sprintf("truncated record payload: %d bytes promised", length)}
		}
		return nil, err
	}
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return nil, &RecordError{Reason: fmt.Sprintf("record checksum %08x, header says %08x", got, sum)}
	}
	return payload, nil
}
