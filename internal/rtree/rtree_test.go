package rtree

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"spatialcluster/internal/buffer"
	"spatialcluster/internal/disk"
	"spatialcluster/internal/geom"
	"spatialcluster/internal/pagefile"
)

func newTestTree(t *testing.T, cfg Config) *Tree {
	if t != nil {
		t.Helper()
	}
	d := disk.NewDefault()
	m := buffer.New(d, 4096)
	a := pagefile.NewAllocator(d)
	return New(m, a, cfg)
}

func payloadFor(id uint64) []byte {
	p := make([]byte, 14)
	binary.LittleEndian.PutUint64(p, id)
	return p
}

func payloadID(p []byte) uint64 { return binary.LittleEndian.Uint64(p) }

func randRect(rng *rand.Rand) geom.Rect {
	x, y := rng.Float64(), rng.Float64()
	return geom.R(x, y, x+rng.Float64()*0.05, y+rng.Float64()*0.05)
}

func TestPaperCapacity(t *testing.T) {
	tr := newTestTree(t, Config{})
	// (4096-2)/46 = 89 entries per page, paper section 4.2.
	if tr.MaxEntries() != 89 {
		t.Fatalf("M = %d, want 89", tr.MaxEntries())
	}
	if tr.MinEntries() != 35 {
		t.Fatalf("m = %d, want 35 (40%% of M)", tr.MinEntries())
	}
	if tr.PayloadSize() != 14 {
		t.Fatalf("payload size = %d, want 14", tr.PayloadSize())
	}
}

func TestEmptyTree(t *testing.T) {
	tr := newTestTree(t, Config{})
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatalf("empty tree: len=%d height=%d", tr.Len(), tr.Height())
	}
	found := 0
	tr.Search(geom.R(0, 0, 1, 1), func(Entry) bool { found++; return true })
	if found != 0 {
		t.Fatal("search on empty tree found entries")
	}
	if n, err := tr.CheckInvariants(); err != nil || n != 0 {
		t.Fatalf("invariants: n=%d err=%v", n, err)
	}
}

func TestInsertAndExactSearch(t *testing.T) {
	tr := newTestTree(t, Config{})
	rng := rand.New(rand.NewSource(1))
	type stored struct {
		r  geom.Rect
		id uint64
	}
	var all []stored
	for i := 0; i < 2000; i++ {
		r := randRect(rng)
		tr.Insert(r, payloadFor(uint64(i)))
		all = append(all, stored{r, uint64(i)})
	}
	if tr.Len() != 2000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if n, err := tr.CheckInvariants(); err != nil || n != 2000 {
		t.Fatalf("invariants: n=%d err=%v", n, err)
	}
	if tr.Height() < 2 {
		t.Fatalf("height = %d, expected splits", tr.Height())
	}

	// Compare several window queries against brute force.
	for q := 0; q < 50; q++ {
		w := randRect(rng).Scale(4)
		want := map[uint64]bool{}
		for _, s := range all {
			if s.r.Intersects(w) {
				want[s.id] = true
			}
		}
		got := map[uint64]bool{}
		tr.Search(w, func(e Entry) bool {
			got[payloadID(e.Payload)] = true
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("query %d: got %d results, want %d", q, len(got), len(want))
		}
		for id := range want {
			if !got[id] {
				t.Fatalf("query %d: missing id %d", q, id)
			}
		}
	}
}

func TestSearchEarlyStop(t *testing.T) {
	tr := newTestTree(t, Config{})
	for i := 0; i < 100; i++ {
		tr.Insert(geom.R(0.4, 0.4, 0.6, 0.6), payloadFor(uint64(i)))
	}
	calls := 0
	tr.Search(geom.R(0, 0, 1, 1), func(Entry) bool {
		calls++
		return calls < 5
	})
	if calls != 5 {
		t.Fatalf("early stop after %d calls", calls)
	}
}

func TestSearchPoint(t *testing.T) {
	tr := newTestTree(t, Config{})
	tr.Insert(geom.R(0, 0, 0.5, 0.5), payloadFor(1))
	tr.Insert(geom.R(0.6, 0.6, 1, 1), payloadFor(2))
	var ids []uint64
	tr.SearchPoint(geom.Pt(0.25, 0.25), func(e Entry) bool {
		ids = append(ids, payloadID(e.Payload))
		return true
	})
	if len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("point query ids = %v", ids)
	}
}

func TestNodeMarshalRoundTrip(t *testing.T) {
	tr := newTestTree(t, Config{})
	n := &Node{ID: 7, Level: 0}
	for i := 0; i < 89; i++ {
		n.Entries = append(n.Entries, Entry{
			Rect:    geom.R(float64(i), 0, float64(i)+1, 1),
			Payload: payloadFor(uint64(i)),
		})
	}
	buf := tr.marshalNode(n)
	if len(buf) != disk.PageSize {
		t.Fatalf("marshal length = %d", len(buf))
	}
	got := tr.unmarshalNode(7, buf)
	if got.Level != 0 || len(got.Entries) != 89 {
		t.Fatalf("round trip: level=%d count=%d", got.Level, len(got.Entries))
	}
	for i := range got.Entries {
		if got.Entries[i].Rect != n.Entries[i].Rect {
			t.Fatalf("entry %d rect mismatch", i)
		}
		if payloadID(got.Entries[i].Payload) != uint64(i) {
			t.Fatalf("entry %d payload mismatch", i)
		}
	}

	// Directory node round trip.
	dirTree := newTestTree(t, Config{})
	dn := &Node{ID: 9, Level: 2}
	dn.Entries = []Entry{{Rect: geom.R(0, 0, 1, 1), Child: 1234567}}
	got = dirTree.unmarshalNode(9, dirTree.marshalNode(dn))
	if got.Level != 2 || got.Entries[0].Child != 1234567 {
		t.Fatalf("dir round trip: %+v", got)
	}
}

func TestOversizePayloadPanics(t *testing.T) {
	tr := newTestTree(t, Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.Insert(geom.R(0, 0, 1, 1), make([]byte, 15))
}

func TestInvalidRectPanics(t *testing.T) {
	tr := newTestTree(t, Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.Insert(geom.EmptyRect(), payloadFor(1))
}

func TestVariableLeafInsertSearch(t *testing.T) {
	tr := newTestTree(t, Config{VariableLeaf: true})
	rng := rand.New(rand.NewSource(3))
	// Variable payloads of 100..1500 bytes force byte-budget splits.
	var rects []geom.Rect
	for i := 0; i < 400; i++ {
		r := randRect(rng)
		p := make([]byte, 100+rng.Intn(1400))
		binary.LittleEndian.PutUint64(p, uint64(i))
		tr.Insert(r, p)
		rects = append(rects, r)
	}
	if n, err := tr.CheckInvariants(); err != nil || n != 400 {
		t.Fatalf("invariants: n=%d err=%v", n, err)
	}
	// Every page must fit its byte budget.
	tr.WalkNodes(func(n *Node) bool {
		if b := tr.nodeBytes(n); b > disk.PageSize {
			t.Fatalf("node %d: %d bytes", n.ID, b)
		}
		return true
	})
	w := geom.R(0, 0, 1.2, 1.2)
	got := 0
	tr.Search(w, func(e Entry) bool { got++; return true })
	want := 0
	for _, r := range rects {
		if r.Intersects(w) {
			want++
		}
	}
	if got != want {
		t.Fatalf("full-space query: got %d, want %d", got, want)
	}
}

func TestOnLeafInsertForceSplit(t *testing.T) {
	splits := 0
	var cfg Config
	cfg.DisableLeafReinsert = true
	inserted := 0
	cfg.OnLeafInsert = func(leaf disk.PageID, e Entry) bool {
		inserted++
		return inserted%10 == 0 // force a split every 10 inserts
	}
	cfg.OnLeafSplit = func(left, right disk.PageID, le, re []Entry) {
		splits++
		if len(le) == 0 || len(re) == 0 {
			t.Fatalf("split produced an empty side: %d/%d", len(le), len(re))
		}
	}
	tr := newTestTree(t, cfg)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		tr.Insert(randRect(rng), payloadFor(uint64(i)))
	}
	if splits < 9 {
		t.Fatalf("forced splits = %d, want >= 9", splits)
	}
	if n, err := tr.CheckInvariants(); err != nil || n != 100 {
		t.Fatalf("invariants: n=%d err=%v", n, err)
	}
}

func TestOnLeafSplitReportsAllEntries(t *testing.T) {
	var cfg Config
	cfg.DisableLeafReinsert = true
	seen := map[uint64]disk.PageID{}
	cfg.OnLeafSplit = func(left, right disk.PageID, le, re []Entry) {
		for _, e := range le {
			seen[payloadID(e.Payload)] = left
		}
		for _, e := range re {
			seen[payloadID(e.Payload)] = right
		}
	}
	tr := newTestTree(t, cfg)
	rng := rand.New(rand.NewSource(5))
	homes := map[uint64]disk.PageID{}
	for i := 0; i < 3000; i++ {
		id := uint64(i)
		leaf := tr.Insert(randRect(rng), payloadFor(id))
		homes[id] = leaf
	}
	for id, leaf := range seen {
		homes[id] = leaf // splits may relocate earlier entries; last wins
	}
	// Verify via a full scan that every entry is on the leaf we believe.
	// Because OnLeafSplit fires in split order and later splits override,
	// the reconstructed map must match the actual tree exactly.
	actual := map[uint64]disk.PageID{}
	tr.WalkNodes(func(n *Node) bool {
		if n.IsLeaf() {
			for _, e := range n.Entries {
				actual[payloadID(e.Payload)] = n.ID
			}
		}
		return true
	})
	if len(actual) != 3000 {
		t.Fatalf("scan found %d entries", len(actual))
	}
	for id, leaf := range actual {
		if homes[id] != leaf {
			t.Fatalf("entry %d: tracked leaf %d, actual %d", id, homes[id], leaf)
		}
	}
}

func TestDeleteBasic(t *testing.T) {
	tr := newTestTree(t, Config{})
	r1 := geom.R(0, 0, 0.1, 0.1)
	tr.Insert(r1, payloadFor(1))
	tr.Insert(geom.R(0.5, 0.5, 0.6, 0.6), payloadFor(2))
	if !tr.DeleteByPayload(r1, payloadFor(1)) {
		t.Fatal("delete failed")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.DeleteByPayload(r1, payloadFor(1)) {
		t.Fatal("double delete succeeded")
	}
	count := 0
	tr.Search(geom.R(0, 0, 1, 1), func(Entry) bool { count++; return true })
	if count != 1 {
		t.Fatalf("post-delete search count = %d", count)
	}
}

func TestDeleteManyWithCondense(t *testing.T) {
	tr := newTestTree(t, Config{})
	rng := rand.New(rand.NewSource(6))
	type stored struct {
		r  geom.Rect
		id uint64
	}
	var all []stored
	for i := 0; i < 3000; i++ {
		r := randRect(rng)
		tr.Insert(r, payloadFor(uint64(i)))
		all = append(all, stored{r, uint64(i)})
	}
	heightBefore := tr.Height()
	// Delete 90% in random order.
	perm := rng.Perm(len(all))
	for _, i := range perm[:2700] {
		if !tr.DeleteByPayload(all[i].r, payloadFor(all[i].id)) {
			t.Fatalf("delete of %d failed", all[i].id)
		}
	}
	if tr.Len() != 300 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if n, err := tr.CheckInvariants(); err != nil || n != 300 {
		t.Fatalf("invariants after deletes: n=%d err=%v", n, err)
	}
	if tr.Height() > heightBefore {
		t.Fatalf("height grew during deletion: %d -> %d", heightBefore, tr.Height())
	}
	// The remaining 10% must still be findable.
	remaining := map[uint64]bool{}
	for _, i := range perm[2700:] {
		remaining[all[i].id] = true
	}
	found := map[uint64]bool{}
	tr.Search(geom.R(-1, -1, 2, 2), func(e Entry) bool {
		found[payloadID(e.Payload)] = true
		return true
	})
	for id := range remaining {
		if !found[id] {
			t.Fatalf("id %d lost after condensation", id)
		}
	}
}

func TestSearchLeaves(t *testing.T) {
	tr := newTestTree(t, Config{})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		tr.Insert(randRect(rng), payloadFor(uint64(i)))
	}
	w := geom.R(0.2, 0.2, 0.6, 0.6)
	viaLeaves := 0
	tr.SearchLeaves(w, func(lm LeafMatch) bool {
		if len(lm.Matched) == 0 {
			t.Fatal("leaf match without matched entries")
		}
		if !lm.Rect.Intersects(w) {
			t.Fatal("leaf rect does not intersect the window")
		}
		for _, idx := range lm.Matched {
			if !lm.Node.Entries[idx].Rect.Intersects(w) {
				t.Fatal("matched entry does not intersect the window")
			}
		}
		viaLeaves += len(lm.Matched)
		return true
	})
	direct := 0
	tr.Search(w, func(Entry) bool { direct++; return true })
	if viaLeaves != direct {
		t.Fatalf("SearchLeaves found %d, Search found %d", viaLeaves, direct)
	}
}

func TestTreeChargesIO(t *testing.T) {
	d := disk.NewDefault()
	m := buffer.New(d, 8) // tiny buffer forces real I/O
	a := pagefile.NewAllocator(d)
	tr := New(m, a, Config{})
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 5000; i++ {
		tr.Insert(randRect(rng), payloadFor(uint64(i)))
	}
	tr.Flush()
	if d.Cost().PagesWritten == 0 {
		t.Fatal("construction wrote no pages")
	}
	d.ResetCost()
	tr.Search(geom.R(0, 0, 1, 1), func(Entry) bool { return true })
	if d.Cost().PagesRead == 0 {
		t.Fatal("full-space query with tiny buffer read no pages")
	}
}

func TestPersistenceAcrossBufferClear(t *testing.T) {
	d := disk.NewDefault()
	m := buffer.New(d, 64)
	a := pagefile.NewAllocator(d)
	tr := New(m, a, Config{})
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 800; i++ {
		tr.Insert(randRect(rng), payloadFor(uint64(i)))
	}
	m.Clear() // flush everything, drop all frames
	// The tree must still answer correctly purely from disk.
	count := 0
	tr.Search(geom.R(-1, -1, 2, 2), func(Entry) bool { count++; return true })
	if count != 800 {
		t.Fatalf("post-clear search found %d of 800", count)
	}
}

func TestPageAccounting(t *testing.T) {
	tr := newTestTree(t, Config{})
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 2000; i++ {
		tr.Insert(randRect(rng), payloadFor(uint64(i)))
	}
	var leaves, dirs int
	tr.WalkNodes(func(n *Node) bool {
		if n.IsLeaf() {
			leaves++
		} else {
			dirs++
		}
		return true
	})
	if leaves != tr.LeafPages() || dirs != tr.DirPages() {
		t.Fatalf("accounting: walked %d/%d, tracked %d/%d",
			leaves, dirs, tr.LeafPages(), tr.DirPages())
	}
}

// Property: after any mixture of inserts and deletes the tree satisfies its
// invariants and contains exactly the reference set.
func TestQuickInsertDelete(t *testing.T) {
	f := func(ops []uint32, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := newTestTree(nil, Config{})
		ref := map[uint64]geom.Rect{}
		nextID := uint64(0)
		for _, op := range ops {
			if op%3 != 0 || len(ref) == 0 {
				r := randRect(rng)
				tr.Insert(r, payloadFor(nextID))
				ref[nextID] = r
				nextID++
			} else {
				// Delete a random existing entry.
				var id uint64
				k := int(op/3) % len(ref)
				for cand := range ref {
					if k == 0 {
						id = cand
						break
					}
					k--
				}
				if !tr.DeleteByPayload(ref[id], payloadFor(id)) {
					return false
				}
				delete(ref, id)
			}
		}
		n, err := tr.CheckInvariants()
		if err != nil || n != len(ref) {
			return false
		}
		found := map[uint64]bool{}
		tr.Search(geom.R(-10, -10, 10, 10), func(e Entry) bool {
			found[payloadID(e.Payload)] = true
			return true
		})
		if len(found) != len(ref) {
			return false
		}
		for id := range ref {
			if !found[id] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(20))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: queries return exactly the brute-force result for random data,
// in all tree modes.
func TestQuickQueryCorrectnessAllModes(t *testing.T) {
	modes := map[string]Config{
		"standard":      {},
		"no-leaf-reins": {DisableLeafReinsert: true},
		"no-reins":      {DisableReinsert: true},
		"variable-leaf": {VariableLeaf: true},
	}
	for name, cfg := range modes {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(21))
			tr := newTestTree(t, cfg)
			var rects []geom.Rect
			for i := 0; i < 1500; i++ {
				r := randRect(rng)
				p := payloadFor(uint64(i))
				if cfg.VariableLeaf {
					p = append(p, make([]byte, rng.Intn(600))...)
				}
				tr.Insert(r, p)
				rects = append(rects, r)
			}
			if n, err := tr.CheckInvariants(); err != nil || n != 1500 {
				t.Fatalf("invariants: n=%d err=%v", n, err)
			}
			for q := 0; q < 30; q++ {
				w := randRect(rng).Scale(6)
				want := 0
				for _, r := range rects {
					if r.Intersects(w) {
						want++
					}
				}
				got := 0
				tr.Search(w, func(Entry) bool { got++; return true })
				if got != want {
					t.Fatalf("query %d: got %d, want %d", q, got, want)
				}
			}
		})
	}
}

func BenchmarkInsert(b *testing.B) {
	d := disk.NewDefault()
	m := buffer.New(d, 4096)
	a := pagefile.NewAllocator(d)
	tr := New(m, a, Config{})
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(randRect(rng), payloadFor(uint64(i)))
	}
}

func BenchmarkWindowQuery(b *testing.B) {
	d := disk.NewDefault()
	m := buffer.New(d, 4096)
	a := pagefile.NewAllocator(d)
	tr := New(m, a, Config{})
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20000; i++ {
		tr.Insert(randRect(rng), payloadFor(uint64(i)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := randRect(rng).Scale(3)
		tr.Search(w, func(Entry) bool { return true })
	}
}

func ExampleTree_Search() {
	d := disk.NewDefault()
	m := buffer.New(d, 256)
	a := pagefile.NewAllocator(d)
	tr := New(m, a, Config{})
	tr.Insert(geom.R(0, 0, 1, 1), []byte("unit-square....")[:14])
	n := 0
	tr.Search(geom.R(0.5, 0.5, 2, 2), func(e Entry) bool { n++; return true })
	fmt.Println(n)
	// Output: 1
}
