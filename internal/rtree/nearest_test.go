package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"spatialcluster/internal/geom"
)

// TestNearestLeavesOrderAndCompleteness: the best-first browse must surface
// every data page exactly once, in nondecreasing MinDist order, with each
// reported bound equal to MinDist(pt, page MBR).
func TestNearestLeavesOrderAndCompleteness(t *testing.T) {
	tr := newTestTree(t, Config{})
	rng := rand.New(rand.NewSource(42))
	const n = 2000
	for i := 0; i < n; i++ {
		tr.Insert(randRect(rng), payloadFor(uint64(i)))
	}
	if tr.Height() < 2 {
		t.Fatalf("tree too small to exercise the traversal: height %d", tr.Height())
	}

	pt := geom.Pt(0.3, 0.7)
	var prev float64 = -1
	entries := 0
	seen := make(map[int64]bool)
	tr.NearestLeaves(pt, nil, func(n *Node, minDist float64) bool {
		if minDist < prev {
			t.Fatalf("page %d surfaced at dist %g after %g", n.ID, minDist, prev)
		}
		prev = minDist
		if want := n.Rect().MinDist(pt); minDist != want {
			t.Fatalf("page %d reported dist %g, MBR MinDist %g", n.ID, minDist, want)
		}
		if seen[int64(n.ID)] {
			t.Fatalf("page %d surfaced twice", n.ID)
		}
		seen[int64(n.ID)] = true
		entries += len(n.Entries)
		return true
	})
	if entries != n {
		t.Fatalf("browse saw %d entries, tree holds %d", entries, n)
	}
	if len(seen) != tr.LeafPages() {
		t.Fatalf("browse saw %d pages, tree has %d", len(seen), tr.LeafPages())
	}
}

// TestNearestLeavesMatchesBruteForce: collecting the nearest k entry
// rectangles through the browse (with the standard termination rule) must
// match a brute-force scan over all entries by MinDist.
func TestNearestLeavesMatchesBruteForce(t *testing.T) {
	tr := newTestTree(t, Config{})
	rng := rand.New(rand.NewSource(5))
	const n = 1500
	rects := make([]geom.Rect, n)
	for i := 0; i < n; i++ {
		rects[i] = randRect(rng)
		tr.Insert(rects[i], payloadFor(uint64(i)))
	}
	for _, k := range []int{1, 10, 100} {
		pt := geom.Pt(rng.Float64(), rng.Float64())

		type cand struct {
			id   uint64
			dist float64
		}
		var all []cand
		for i, r := range rects {
			all = append(all, cand{uint64(i), r.MinDist(pt)})
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].dist != all[j].dist {
				return all[i].dist < all[j].dist
			}
			return all[i].id < all[j].id
		})

		var got []cand
		stop := func(minDist float64) bool {
			if len(got) < k {
				return false
			}
			sort.Slice(got, func(i, j int) bool {
				if got[i].dist != got[j].dist {
					return got[i].dist < got[j].dist
				}
				return got[i].id < got[j].id
			})
			got = got[:k]
			return minDist > got[k-1].dist
		}
		tr.NearestLeaves(pt, stop, func(nd *Node, minDist float64) bool {
			for i := range nd.Entries {
				got = append(got, cand{payloadID(nd.Entries[i].Payload), nd.Entries[i].Rect.MinDist(pt)})
			}
			return true
		})
		sort.Slice(got, func(i, j int) bool {
			if got[i].dist != got[j].dist {
				return got[i].dist < got[j].dist
			}
			return got[i].id < got[j].id
		})
		if len(got) > k {
			got = got[:k]
		}
		for i := 0; i < k; i++ {
			if got[i] != all[i] {
				t.Fatalf("k=%d rank %d: browse found %+v, brute force %+v", k, i, got[i], all[i])
			}
		}
	}
}

// TestNearestLeavesEmptyAndStop: an empty tree surfaces nothing; returning
// false stops after the first page.
func TestNearestLeavesEmptyAndStop(t *testing.T) {
	tr := newTestTree(t, Config{})
	calls := 0
	tr.NearestLeaves(geom.Pt(0.5, 0.5), nil, func(n *Node, _ float64) bool {
		if len(n.Entries) > 0 {
			t.Fatalf("empty tree surfaced %d entries", len(n.Entries))
		}
		calls++
		return true
	})
	if calls > 1 {
		t.Fatalf("empty tree surfaced %d pages", calls)
	}

	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		tr.Insert(randRect(rng), payloadFor(uint64(i)))
	}
	calls = 0
	tr.NearestLeaves(geom.Pt(0.5, 0.5), nil, func(*Node, float64) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Fatalf("stopped browse surfaced %d pages, want 1", calls)
	}

	// A stop predicate that fires immediately must end the browse before any
	// page is read or surfaced (the I/O-saving contract of the bound check).
	tr.Buffer().Clear()
	before := tr.Buffer().Disk().Cost()
	tr.NearestLeaves(geom.Pt(0.5, 0.5),
		func(float64) bool { return true },
		func(*Node, float64) bool {
			t.Fatal("page surfaced past a firing stop predicate")
			return false
		})
	if cost := tr.Buffer().Disk().Cost().Sub(before); cost.PagesRead != 0 {
		t.Fatalf("stopped-before-read browse charged %d page reads", cost.PagesRead)
	}
}
