package rtree

import (
	"fmt"
	"sort"

	"spatialcluster/internal/disk"
	"spatialcluster/internal/geom"
)

// Insert adds a leaf entry with rectangle r and the given payload and
// returns the data page the entry was placed on. The returned page is only
// meaningful as a stable home of the entry when leaf reinserts are disabled
// (cluster organization); with reinserts enabled a later forced reinsertion
// may move the entry.
func (t *Tree) Insert(r geom.Rect, payload []byte) disk.PageID {
	if !r.Valid() {
		panic(fmt.Sprintf("rtree: Insert of invalid rect %v", r))
	}
	if !t.cfg.VariableLeaf && len(payload) > t.payloadSize() {
		panic(fmt.Sprintf("rtree: payload of %d bytes exceeds fixed slot of %d",
			len(payload), t.payloadSize()))
	}
	if t.cfg.VariableLeaf && rectSize+varLenSize+len(payload) > t.cfg.PageBytes-nodeHeaderSize {
		panic(fmt.Sprintf("rtree: payload of %d bytes exceeds one page", len(payload)))
	}

	type pending struct {
		e     Entry
		level int
	}
	queue := []pending{{e: Entry{Rect: r, Payload: payload}, level: 0}}
	reinserted := make(map[int]bool)
	first := true
	var landed disk.PageID
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		var removed []Entry
		var removedLevel int
		id := t.insertOne(p.e, p.level, first, reinserted, &removed, &removedLevel)
		if first {
			landed = id
			first = false
		}
		for _, e := range removed {
			queue = append(queue, pending{e: e, level: removedLevel})
		}
	}
	t.size++
	return landed
}

// insertOne performs a full root-to-level descent, places e, and resolves
// overflow bottom-up along the descent path. Entries evicted by a forced
// reinsert are appended to *removed for the caller to re-insert.
func (t *Tree) insertOne(e Entry, level int, fresh bool, reinserted map[int]bool,
	removed *[]Entry, removedLevel *int) disk.PageID {

	path := t.choosePath(e.Rect, level)
	leafIdx := len(path) - 1
	target := path[leafIdx].node
	target.Entries = append(target.Entries, e)
	landed := target.ID

	force := false
	if level == 0 && fresh && t.cfg.OnLeafInsert != nil {
		force = t.cfg.OnLeafInsert(target.ID, e)
	}
	t.writeNodeIfFits(target)
	t.adjustPathRects(path)

	// Resolve overflow bottom-up. Splitting a node adds an entry to its
	// parent, which may overflow in turn.
	for i := leafIdx; i >= 0; i-- {
		n := path[i].node
		overfull := t.overfull(n)
		forceHere := force && i == leafIdx
		if !overfull && !forceHere {
			continue
		}
		allowReinsert := overfull && !forceHere && !t.cfg.DisableReinsert &&
			!(n.Level == 0 && t.cfg.DisableLeafReinsert) &&
			i > 0 && // never reinsert from the root
			!reinserted[n.Level]
		if allowReinsert {
			reinserted[n.Level] = true
			evicted := t.evictForReinsert(n)
			t.writeNode(n)
			t.adjustPathRects(path[:i+1])
			*removed = append(*removed, evicted...)
			*removedLevel = n.Level
			break // node no longer overfull; nothing propagates up
		}
		t.splitAt(path, i)
	}
	return landed
}

// adjustPathRects recomputes the parent entry rectangles along the path,
// bottom-up, writing changed nodes.
func (t *Tree) adjustPathRects(path []pathElem) {
	for i := len(path) - 1; i >= 1; i-- {
		child := path[i].node
		parent := path[i-1].node
		nr := child.Rect()
		if parent.Entries[path[i].entryIdx].Rect != nr {
			parent.Entries[path[i].entryIdx].Rect = nr
			t.writeNodeIfFits(parent)
		}
	}
}

// evictForReinsert removes the ReinsertFraction of entries whose rectangle
// centers lie farthest from the center of the node's MBR ([BKSS90] forced
// reinsert) and returns them, farthest first.
func (t *Tree) evictForReinsert(n *Node) []Entry {
	p := int(t.cfg.ReinsertFraction * float64(len(n.Entries)))
	if p < 1 {
		p = 1
	}
	center := n.Rect().Center()
	type distEntry struct {
		d float64
		e Entry
	}
	des := make([]distEntry, len(n.Entries))
	for i, e := range n.Entries {
		des[i] = distEntry{d: e.Rect.Center().Dist2(center), e: e}
	}
	sort.SliceStable(des, func(i, j int) bool { return des[i].d > des[j].d })
	evicted := make([]Entry, p)
	for i := 0; i < p; i++ {
		evicted[i] = des[i].e
	}
	n.Entries = n.Entries[:0]
	for _, de := range des[p:] {
		n.Entries = append(n.Entries, de.e)
	}
	// Variable leaves: the count-based fraction may not free enough bytes;
	// keep evicting the farthest entries until the node fits.
	for t.overfull(n) && len(n.Entries) > 1 {
		evicted = append(evicted, n.Entries[0])
		n.Entries = n.Entries[1:]
	}
	return evicted
}

// splitAt splits path[i].node and installs the new siblings in the parent
// (growing the tree at the root). The path above i stays valid; the parent
// may now be overfull, which the caller's loop resolves. The usual result is
// exactly two nodes; only variable leaves with near-page-size payloads can
// require more (no two-way byte partition exists).
func (t *Tree) splitAt(path []pathElem, i int) {
	n := path[i].node
	parts := t.splitNodeMulti(n) // parts[0] == n
	for _, p := range parts {
		t.writeNode(p)
	}
	if n.Level == 0 && t.cfg.OnLeafSplit != nil {
		if len(parts) != 2 {
			panic("rtree: multi-way leaf split with a cluster organization attached")
		}
		t.cfg.OnLeafSplit(n.ID, parts[1].ID, n.Entries, parts[1].Entries)
	}

	if i == 0 {
		// Root split: grow the tree by one level.
		newRoot := &Node{ID: t.allocPage(n.Level + 1), Level: n.Level + 1}
		for _, p := range parts {
			newRoot.Entries = append(newRoot.Entries, Entry{Rect: p.Rect(), Child: p.ID})
		}
		t.root = newRoot.ID
		t.height++
		t.writeNode(newRoot)
		return
	}
	parent := path[i-1].node
	parent.Entries[path[i].entryIdx].Rect = n.Rect()
	for _, p := range parts[1:] {
		parent.Entries = append(parent.Entries, Entry{Rect: p.Rect(), Child: p.ID})
	}
	t.writeNodeIfFits(parent)
	t.adjustPathRects(path[:i])
}

// splitNodeMulti splits n (in place) and returns all resulting nodes,
// n first. It re-splits any part that is still overfull, which can only
// happen for variable leaves.
func (t *Tree) splitNodeMulti(n *Node) []*Node {
	out := []*Node{n, t.splitNode(n)}
	for i := 0; i < len(out); i++ {
		for t.overfull(out[i]) && len(out[i].Entries) > 1 {
			out = append(out, t.splitNode(out[i]))
		}
	}
	return out
}

// splitNode distributes the entries of n onto n and a fresh sibling using
// the R* split: choose the split axis by minimal margin sum, then the
// distribution by minimal overlap (ties: minimal total area). For variable
// leaves, distributions whose halves exceed the page byte budget are
// rejected; if all candidates are rejected the bytes-balanced distribution
// is used.
func (t *Tree) splitNode(n *Node) *Node {
	entries := n.Entries
	count := len(entries)
	m := int(t.cfg.MinFillRatio * float64(count))
	if m < 1 {
		m = 1
	}
	if count < 2 {
		panic(fmt.Sprintf("rtree: splitting node %d with %d entries", n.ID, count))
	}
	if m > count/2 {
		m = count / 2
	}

	axisSorts := candidateSorts(entries)
	bestAxis, bestMargin := 0, -1.0
	for axis, sorts := range axisSorts {
		margin := 0.0
		for _, s := range sorts {
			for k := m; k <= count-m; k++ {
				lr, rr := groupRects(s, k)
				margin += lr.Margin() + rr.Margin()
			}
		}
		if bestMargin < 0 || margin < bestMargin {
			bestAxis, bestMargin = axis, margin
		}
	}

	type candidate struct {
		sorted  []Entry
		k       int
		overlap float64
		area    float64
		fits    bool
	}
	var best *candidate
	betterOf := func(a, b *candidate) *candidate {
		if a == nil {
			return b
		}
		if a.fits != b.fits {
			if b.fits {
				return b
			}
			return a
		}
		if b.overlap < a.overlap ||
			(b.overlap == a.overlap && b.area < a.area) {
			return b
		}
		return a
	}
	for _, s := range axisSorts[bestAxis] {
		for k := m; k <= count-m; k++ {
			lr, rr := groupRects(s, k)
			c := &candidate{
				sorted:  s,
				k:       k,
				overlap: lr.OverlapArea(rr),
				area:    lr.Area() + rr.Area(),
				fits:    t.splitFits(n.Level, s, k),
			}
			best = betterOf(best, c)
		}
	}
	if best == nil {
		panic("rtree: no split candidate")
	}
	if !best.fits {
		// Variable leaves: fall back to the byte-balanced cut on the best
		// axis's min-sort.
		s := axisSorts[bestAxis][0]
		best = &candidate{sorted: s, k: t.byteBalancedCut(n.Level, s)}
	}

	left := append([]Entry(nil), best.sorted[:best.k]...)
	right := append([]Entry(nil), best.sorted[best.k:]...)
	n.Entries = left
	sibling := &Node{ID: t.allocPage(n.Level), Level: n.Level, Entries: right}
	return sibling
}

// candidateSorts returns, per axis, the entry orders considered by the R*
// split: sorted by lower and by upper rectangle value.
func candidateSorts(entries []Entry) [2][][]Entry {
	var out [2][][]Entry
	keys := []func(e *Entry) (float64, float64){
		func(e *Entry) (float64, float64) { return e.Rect.MinX, e.Rect.MaxX },
		func(e *Entry) (float64, float64) { return e.Rect.MinY, e.Rect.MaxY },
	}
	for axis, key := range keys {
		byMin := append([]Entry(nil), entries...)
		sort.SliceStable(byMin, func(i, j int) bool {
			a, _ := key(&byMin[i])
			b, _ := key(&byMin[j])
			return a < b
		})
		byMax := append([]Entry(nil), entries...)
		sort.SliceStable(byMax, func(i, j int) bool {
			_, a := key(&byMax[i])
			_, b := key(&byMax[j])
			return a < b
		})
		out[axis] = [][]Entry{byMin, byMax}
	}
	return out
}

// groupRects returns the MBRs of s[:k] and s[k:].
func groupRects(s []Entry, k int) (geom.Rect, geom.Rect) {
	l, r := geom.EmptyRect(), geom.EmptyRect()
	for i := 0; i < k; i++ {
		l = l.Union(s[i].Rect)
	}
	for i := k; i < len(s); i++ {
		r = r.Union(s[i].Rect)
	}
	return l, r
}

// splitFits reports whether both halves of the distribution fit their pages.
func (t *Tree) splitFits(level int, s []Entry, k int) bool {
	if level > 0 || !t.cfg.VariableLeaf {
		return true // fixed entries: any k between m and count-m fits
	}
	bytesOf := func(part []Entry) int {
		b := nodeHeaderSize
		for i := range part {
			b += t.entryBytes(level, &part[i])
		}
		return b
	}
	return bytesOf(s[:k]) <= t.cfg.PageBytes && bytesOf(s[k:]) <= t.cfg.PageBytes
}

// byteBalancedCut returns the k that best balances the serialized bytes of
// the two halves.
func (t *Tree) byteBalancedCut(level int, s []Entry) int {
	total := 0
	for i := range s {
		total += t.entryBytes(level, &s[i])
	}
	bestK, bestDiff := 1, -1
	acc := 0
	for k := 1; k < len(s); k++ {
		acc += t.entryBytes(level, &s[k-1])
		diff := acc - (total - acc)
		if diff < 0 {
			diff = -diff
		}
		if bestDiff < 0 || diff < bestDiff {
			bestK, bestDiff = k, diff
		}
	}
	return bestK
}
