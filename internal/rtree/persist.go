package rtree

import (
	"sort"

	"spatialcluster/internal/buffer"
	"spatialcluster/internal/disk"
	"spatialcluster/internal/pagefile"
)

// The tree's nodes live entirely on disk pages; the only in-memory state a
// reopened tree needs back is the root pointer, the shape counters, and the
// page-level bookkeeping. Snapshot captures exactly that (deterministically
// sorted), and Restore rebuilds a live tree over a disk whose pages were
// restored by the caller — no node is read or written, so reopening a tree
// charges no modelled I/O.

// PageLevel records the tree level of one live node page (level 0 = data
// page).
type PageLevel struct {
	ID    disk.PageID
	Level int
}

// TreeImage is the serializable shape of a Tree. The Config is not part of
// the image: it contains function hooks, so the owning organization supplies
// the same Config it builds fresh trees with.
type TreeImage struct {
	Root       disk.PageID
	Height     int
	Size       int
	LeafPages  int
	DirPages   int
	PageLevels []PageLevel
}

// Image captures the tree's in-memory state, sorted for determinism.
func (t *Tree) Image() TreeImage {
	img := TreeImage{
		Root:      t.root,
		Height:    t.height,
		Size:      t.size,
		LeafPages: t.leafPages,
		DirPages:  t.dirPages,
	}
	for id, level := range t.pageLevels {
		img.PageLevels = append(img.PageLevels, PageLevel{ID: id, Level: level})
	}
	sort.Slice(img.PageLevels, func(i, j int) bool {
		return img.PageLevels[i].ID < img.PageLevels[j].ID
	})
	return img
}

// Restore rebuilds a tree from an image over buf and alloc, whose underlying
// disk must already hold the tree's node pages. cfg must be the same
// configuration the tree was built with (the organization re-supplies its
// hooks). No I/O is charged.
func Restore(buf *buffer.Manager, alloc *pagefile.Allocator, cfg Config, img TreeImage) *Tree {
	t := newShell(buf, alloc, cfg)
	t.root = img.Root
	t.height = img.Height
	t.size = img.Size
	t.leafPages = img.LeafPages
	t.dirPages = img.DirPages
	for _, pl := range img.PageLevels {
		t.pageLevels[pl.ID] = pl.Level
	}
	return t
}
