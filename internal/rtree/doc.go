// Package rtree implements the R*-tree of Beckmann, Kriegel, Schneider and
// Seeger [BKSS90], the spatial access method at the heart of all three
// organization models of the paper. Nodes are serialized to 4 KB disk pages
// and accessed through the write-back buffer manager (internal/buffer), so
// every tree operation is charged realistic I/O cost on whatever storage
// backend the disk runs.
//
// Three departures from the textbook R*-tree are configurable, all required
// by the cluster organization (paper section 4.2.1):
//
//   - DisableLeafReinsert turns off forced reinsertion at the data-page
//     level (a reinsert would move a complete spatial object between
//     cluster units),
//   - DisableLeafCondense keeps underfull data pages in place on deletion —
//     a data page is condensed only once it is empty — for the same reason,
//     and
//   - the OnLeafInsert hook lets the organization force a data-page split
//     when the attached cluster unit exceeds its maximum size Smax, while
//     OnLeafSplit reports how the entries were distributed so the
//     organization can redistribute the objects.
//
// The primary organization stores serialized objects directly in the leaves;
// VariableLeaf=true switches leaf capacity from entry count to a byte budget.
//
// Beyond insertion and deletion the tree offers Search/SearchPoint (window
// and point filters), NearestLeaves — the Hjaltason–Samet best-first
// traversal [HS95] that surfaces whole data pages in ascending MBR-MinDist
// order for the k-NN engine in internal/store — and bulk loading in Hilbert
// order (bulk.go) for static global clustering and full rebuilds.
//
// A built tree's in-memory state (root, shape counters, page levels) can be
// captured with Image and revived with Restore over a disk whose pages were
// restored by store.Restore; reopening charges no I/O (persist.go).
package rtree
