package rtree

import (
	"math/rand"
	"testing"

	"spatialcluster/internal/buffer"
	"spatialcluster/internal/disk"
	"spatialcluster/internal/geom"
	"spatialcluster/internal/pagefile"
)

func TestTreeAccessors(t *testing.T) {
	d := disk.NewDefault()
	m := buffer.New(d, 256)
	a := pagefile.NewAllocator(d)
	tr := New(m, a, Config{})
	if tr.Buffer() != m {
		t.Fatal("Buffer accessor")
	}
	if tr.Root() == disk.InvalidPage {
		t.Fatal("Root must be valid")
	}
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 1000; i++ {
		tr.Insert(randRect(rng), payloadFor(uint64(i)))
	}
	// Page classification bookkeeping matches a walk.
	dirs, leaves := 0, 0
	tr.WalkNodes(func(n *Node) bool {
		if tr.IsDirPage(n.ID) {
			dirs++
			if n.IsLeaf() {
				t.Fatalf("leaf %d classified as directory", n.ID)
			}
		}
		if !tr.IsNodePage(n.ID) {
			t.Fatalf("node %d not classified as node page", n.ID)
		}
		if n.IsLeaf() {
			leaves++
		}
		return true
	})
	if dirs != tr.DirPages() || leaves != tr.LeafPages() {
		t.Fatalf("classification: %d/%d vs tracked %d/%d", dirs, leaves, tr.DirPages(), tr.LeafPages())
	}
	if tr.IsDirPage(999999) || tr.IsNodePage(999999) {
		t.Fatal("unknown pages must not classify")
	}

	// DecodeNode round-trips through a foreign buffer.
	other := buffer.New(d, 64)
	tr.Flush()
	root := tr.DecodeNode(tr.Root(), other.Get(tr.Root()))
	if root.Level != tr.Height()-1 {
		t.Fatalf("decoded root level %d, height %d", root.Level, tr.Height())
	}
}

func TestVariableLeafPathologicalSplit(t *testing.T) {
	// Payloads sized so that no two-way split fits a page: the tree must
	// fall back to a multi-way split and stay consistent.
	tr := newTestTree(t, Config{VariableLeaf: true})
	big := disk.PageSize * 3 / 4
	for i := 0; i < 30; i++ {
		p := make([]byte, big)
		p[0] = byte(i)
		x := float64(i) / 30
		tr.Insert(geom.R(x, 0, x+0.01, 0.01), p)
	}
	if n, err := tr.CheckInvariants(); err != nil || n != 30 {
		t.Fatalf("invariants: n=%d err=%v", n, err)
	}
	tr.WalkNodes(func(n *Node) bool {
		if b := tr.nodeBytes(n); b > disk.PageSize {
			t.Fatalf("node %d: %d bytes", n.ID, b)
		}
		return true
	})
	got := 0
	tr.Search(geom.R(-1, -1, 2, 2), func(Entry) bool { got++; return true })
	if got != 30 {
		t.Fatalf("search found %d of 30", got)
	}
}

func TestDeleteDownToEmpty(t *testing.T) {
	tr := newTestTree(t, Config{})
	rng := rand.New(rand.NewSource(33))
	type stored struct {
		r  geom.Rect
		id uint64
	}
	var all []stored
	for i := 0; i < 1200; i++ {
		r := randRect(rng)
		tr.Insert(r, payloadFor(uint64(i)))
		all = append(all, stored{r, uint64(i)})
	}
	for _, s := range all {
		if !tr.DeleteByPayload(s.r, payloadFor(s.id)) {
			t.Fatalf("delete %d failed", s.id)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting everything", tr.Len())
	}
	if tr.Height() != 1 {
		t.Fatalf("height = %d, tree should have collapsed", tr.Height())
	}
	if n, err := tr.CheckInvariants(); err != nil || n != 0 {
		t.Fatalf("invariants: n=%d err=%v", n, err)
	}
	// And it keeps working afterwards.
	tr.Insert(geom.R(0, 0, 1, 1), payloadFor(7))
	found := 0
	tr.Search(geom.R(0, 0, 1, 1), func(Entry) bool { found++; return true })
	if found != 1 {
		t.Fatal("reuse after emptying failed")
	}
}

func TestDeleteMismatchedPayload(t *testing.T) {
	tr := newTestTree(t, Config{})
	r := geom.R(0, 0, 0.1, 0.1)
	tr.Insert(r, payloadFor(1))
	if tr.DeleteByPayload(r, payloadFor(2)) {
		t.Fatal("delete with wrong payload must fail")
	}
	if tr.Len() != 1 {
		t.Fatal("entry lost")
	}
	// nil matcher deletes by rect alone.
	if !tr.Delete(r, nil) {
		t.Fatal("delete by rect failed")
	}
}
