package rtree

import (
	"bytes"

	"spatialcluster/internal/disk"
	"spatialcluster/internal/geom"
)

// Delete removes the first leaf entry whose rectangle equals r and whose
// payload satisfies match (nil matches any payload). It returns true if an
// entry was removed. Underfull nodes are condensed: their remaining entries
// are removed and re-inserted at their original level, as in [Gut84].
func (t *Tree) Delete(r geom.Rect, match func(payload []byte) bool) bool {
	if match == nil {
		match = func([]byte) bool { return true }
	}
	path, idx := t.findEntry(t.root, -1, r, match)
	if path == nil {
		return false
	}
	leaf := path[len(path)-1].node
	leaf.Entries = append(leaf.Entries[:idx], leaf.Entries[idx+1:]...)
	t.writeNode(leaf)
	t.size--

	type orphan struct {
		e     Entry
		level int
	}
	var orphans []orphan

	// Condense bottom-up: drop underfull nodes, collecting their entries.
	for i := len(path) - 1; i >= 1; i-- {
		n := path[i].node
		parent := path[i-1].node
		if t.shouldCondense(n) {
			for _, e := range n.Entries {
				orphans = append(orphans, orphan{e: e, level: n.Level})
			}
			parent.Entries = append(parent.Entries[:path[i].entryIdx],
				parent.Entries[path[i].entryIdx+1:]...)
			t.freePage(n.ID, n.Level)
			t.writeNode(parent)
			// Fix entryIdx of the (former) sibling recorded deeper in the
			// path — none: we walk bottom-up, deeper elements already
			// processed. Parent index shifts only matter for path[i],
			// which we just consumed.
			continue
		}
		parent.Entries[path[i].entryIdx].Rect = n.Rect()
		t.writeNode(parent)
	}

	// Shrink the root while it is a directory node with a single child.
	for t.height > 1 {
		root := t.ReadNode(t.root)
		if len(root.Entries) != 1 || root.Level == 0 {
			break
		}
		child := root.Entries[0].Child
		t.freePage(root.ID, root.Level)
		t.root = child
		t.height--
	}

	// Re-insert orphans at their original levels.
	for _, o := range orphans {
		t.reinsertEntry(o.e, o.level)
	}
	return true
}

// shouldCondense reports whether deletion's condense step removes node n and
// re-distributes its entries. With DisableLeafCondense, data pages stay in
// place until they are completely empty, so leaf entries (and with them the
// objects of an attached cluster unit) never migrate between data pages.
func (t *Tree) shouldCondense(n *Node) bool {
	if n.Level == 0 && t.cfg.DisableLeafCondense {
		return len(n.Entries) == 0
	}
	return t.underfull(n)
}

// reinsertEntry inserts an orphaned entry back at the given level, handling
// overflow (without forced reinsert, as is conventional during condensation).
func (t *Tree) reinsertEntry(e Entry, level int) {
	// The root shrink may have left the tree shorter than the orphan's
	// level. Grow the tree by wrapping the root until a node at that level
	// exists: this grafts the orphan's whole subtree without relocating any
	// of its entries (relocations would move objects between cluster units).
	for level >= t.height {
		oldRoot := t.ReadNode(t.root)
		newRoot := &Node{
			ID:      t.allocPage(oldRoot.Level + 1),
			Level:   oldRoot.Level + 1,
			Entries: []Entry{{Rect: oldRoot.Rect(), Child: oldRoot.ID}},
		}
		t.root = newRoot.ID
		t.height++
		t.writeNode(newRoot)
	}
	reinserted := map[int]bool{0: true, level: true}
	var removed []Entry
	var removedLevel int
	t.insertOne(e, level, false, reinserted, &removed, &removedLevel)
	for _, re := range removed {
		t.reinsertEntry(re, removedLevel)
	}
}

// findEntry locates the leaf containing the entry to delete and returns the
// root-to-leaf path (with entryIdx being each node's index within its
// parent) plus the entry index in the leaf, or nil if not found.
func (t *Tree) findEntry(id disk.PageID, entryIdx int, r geom.Rect,
	match func([]byte) bool) ([]pathElem, int) {

	n := t.ReadNode(id)
	self := pathElem{node: n, entryIdx: entryIdx}
	if n.Level == 0 {
		for i := range n.Entries {
			if n.Entries[i].Rect == r && match(n.Entries[i].Payload) {
				return []pathElem{self}, i
			}
		}
		return nil, 0
	}
	for i := range n.Entries {
		if !n.Entries[i].Rect.ContainsRect(r) {
			continue
		}
		sub, idx := t.findEntry(n.Entries[i].Child, i, r, match)
		if sub != nil {
			return append([]pathElem{self}, sub...), idx
		}
	}
	return nil, 0
}

// DeleteByPayload removes the first leaf entry whose rectangle equals r and
// whose payload equals payload byte-wise.
func (t *Tree) DeleteByPayload(r geom.Rect, payload []byte) bool {
	return t.Delete(r, func(p []byte) bool { return bytes.Equal(p, payload) })
}
