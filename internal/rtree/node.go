package rtree

import (
	"encoding/binary"
	"fmt"
	"math"

	"spatialcluster/internal/disk"
	"spatialcluster/internal/geom"
)

// nodeHeaderSize is the on-page node header: level (1 byte) + count (1 byte).
// With 46-byte entries this yields M = (4096-2)/46 = 89 entries per page,
// matching the paper's parameters (section 4.2: page 4 KB, entry 46 bytes).
const nodeHeaderSize = 2

// rectSize is the serialized size of an MBR (4 float64 coordinates).
const rectSize = 32

// varLenSize is the length prefix of a variable-size leaf payload.
const varLenSize = 2

// Entry is one slot of a node: a rectangle plus either a child page
// reference (directory levels) or an opaque payload (leaf level). The
// organization models put the object identifier and size into the payload.
type Entry struct {
	Rect    geom.Rect
	Child   disk.PageID // directory entry: page of the child node
	Payload []byte      // leaf entry: organization-defined bytes
}

// Node is the in-memory form of one tree node. Level 0 is the leaf (data
// page) level.
type Node struct {
	ID      disk.PageID
	Level   int
	Entries []Entry
}

// IsLeaf reports whether the node is a data page.
func (n *Node) IsLeaf() bool { return n.Level == 0 }

// Rect returns the minimum bounding rectangle of all entries — the region of
// the data page, which the cluster organization uses as the region of the
// attached cluster unit.
func (n *Node) Rect() geom.Rect {
	r := geom.EmptyRect()
	for i := range n.Entries {
		r = r.Union(n.Entries[i].Rect)
	}
	return r
}

func putRect(buf []byte, r geom.Rect) {
	binary.LittleEndian.PutUint64(buf[0:], math.Float64bits(r.MinX))
	binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(r.MinY))
	binary.LittleEndian.PutUint64(buf[16:], math.Float64bits(r.MaxX))
	binary.LittleEndian.PutUint64(buf[24:], math.Float64bits(r.MaxY))
}

func getRect(buf []byte) geom.Rect {
	return geom.Rect{
		MinX: math.Float64frombits(binary.LittleEndian.Uint64(buf[0:])),
		MinY: math.Float64frombits(binary.LittleEndian.Uint64(buf[8:])),
		MaxX: math.Float64frombits(binary.LittleEndian.Uint64(buf[16:])),
		MaxY: math.Float64frombits(binary.LittleEndian.Uint64(buf[24:])),
	}
}

// marshalNode serializes n into a page-sized buffer according to cfg.
func (t *Tree) marshalNode(n *Node) []byte {
	if len(n.Entries) > 255 {
		panic(fmt.Sprintf("rtree: node %d with %d entries exceeds count byte", n.ID, len(n.Entries)))
	}
	buf := make([]byte, t.cfg.PageBytes)
	buf[0] = byte(n.Level)
	buf[1] = byte(len(n.Entries))
	off := nodeHeaderSize
	for i := range n.Entries {
		e := &n.Entries[i]
		putRect(buf[off:], e.Rect)
		off += rectSize
		if n.Level > 0 {
			binary.LittleEndian.PutUint64(buf[off:], uint64(e.Child))
			off += t.cfg.EntrySize - rectSize // child + reserved bytes
			continue
		}
		if t.cfg.VariableLeaf {
			binary.LittleEndian.PutUint16(buf[off:], uint16(len(e.Payload)))
			off += varLenSize
			copy(buf[off:], e.Payload)
			off += len(e.Payload)
		} else {
			copy(buf[off:off+t.payloadSize()], e.Payload)
			off += t.cfg.EntrySize - rectSize
		}
	}
	if off > t.cfg.PageBytes {
		panic(fmt.Sprintf("rtree: node %d serialization of %d bytes overflows the page", n.ID, off))
	}
	return buf
}

// unmarshalNode deserializes the page content of node id. A nil or empty
// buffer is the zero page — unallocated backends and snapshot restores both
// elide all-zero pages — and a zero page is exactly how an empty leaf node
// (level 0, no entries) marshals, so it decodes as one.
func (t *Tree) unmarshalNode(id disk.PageID, buf []byte) *Node {
	if len(buf) == 0 {
		return &Node{ID: id, Level: 0, Entries: []Entry{}}
	}
	if len(buf) < nodeHeaderSize {
		panic(fmt.Sprintf("rtree: page %d holds no node (len %d)", id, len(buf)))
	}
	n := &Node{ID: id, Level: int(buf[0])}
	count := int(buf[1])
	n.Entries = make([]Entry, count)
	off := nodeHeaderSize
	for i := 0; i < count; i++ {
		e := &n.Entries[i]
		e.Rect = getRect(buf[off:])
		off += rectSize
		if n.Level > 0 {
			e.Child = disk.PageID(binary.LittleEndian.Uint64(buf[off:]))
			off += t.cfg.EntrySize - rectSize
			continue
		}
		if t.cfg.VariableLeaf {
			l := int(binary.LittleEndian.Uint16(buf[off:]))
			off += varLenSize
			e.Payload = append([]byte(nil), buf[off:off+l]...)
			off += l
		} else {
			e.Payload = append([]byte(nil), buf[off:off+t.payloadSize()]...)
			off += t.cfg.EntrySize - rectSize
		}
	}
	return n
}

// entryBytes returns the on-page size of entry e at the given level.
func (t *Tree) entryBytes(level int, e *Entry) int {
	if level > 0 || !t.cfg.VariableLeaf {
		return t.cfg.EntrySize
	}
	return rectSize + varLenSize + len(e.Payload)
}

// nodeBytes returns the serialized size of the node.
func (t *Tree) nodeBytes(n *Node) int {
	b := nodeHeaderSize
	for i := range n.Entries {
		b += t.entryBytes(n.Level, &n.Entries[i])
	}
	return b
}

// overfull reports whether the node exceeds its capacity: entry count beyond
// M for fixed layouts, byte budget for variable leaves (which are also
// bounded by the count byte).
func (t *Tree) overfull(n *Node) bool {
	if n.Level == 0 && t.cfg.VariableLeaf {
		return t.nodeBytes(n) > t.cfg.PageBytes || len(n.Entries) > 255
	}
	return len(n.Entries) > t.maxEntries
}

// underfull reports whether the node has fallen below the minimum fill used
// by deletion's condense step.
func (t *Tree) underfull(n *Node) bool {
	if n.Level == 0 && t.cfg.VariableLeaf {
		return len(n.Entries) < 2
	}
	return len(n.Entries) < t.minEntries
}
