package rtree

import (
	"math/rand"
	"testing"

	"spatialcluster/internal/disk"
	"spatialcluster/internal/geom"
)

// TestDeleteLeafCondenseDisabled: with DisableLeafCondense, data pages are
// never condensed while they hold entries, so surviving entries stay on the
// page they were placed on — the invariant the cluster organization's
// object-to-unit mapping depends on. Empty pages must still be freed.
func TestDeleteLeafCondenseDisabled(t *testing.T) {
	tr := newTestTree(t, Config{DisableLeafReinsert: true, DisableLeafCondense: true})
	rng := rand.New(rand.NewSource(11))
	type stored struct {
		r  geom.Rect
		id uint64
	}
	var all []stored
	for i := 0; i < 2500; i++ {
		r := randRect(rng)
		tr.Insert(r, payloadFor(uint64(i)))
		all = append(all, stored{r, uint64(i)})
	}
	// Record where every entry lives after construction.
	home := map[uint64]disk.PageID{}
	tr.WalkNodes(func(n *Node) bool {
		if n.Level == 0 {
			for _, e := range n.Entries {
				home[payloadID(e.Payload)] = n.ID
			}
		}
		return true
	})

	perm := rng.Perm(len(all))
	deleted := map[uint64]bool{}
	for _, i := range perm[:2300] {
		if !tr.DeleteByPayload(all[i].r, payloadFor(all[i].id)) {
			t.Fatalf("delete of %d failed", all[i].id)
		}
		deleted[all[i].id] = true
	}
	if n, err := tr.CheckInvariants(); err != nil || n != 200 {
		t.Fatalf("invariants: n=%d err=%v", n, err)
	}

	leaves := 0
	tr.WalkNodes(func(n *Node) bool {
		if n.Level == 0 {
			leaves++
			if len(n.Entries) == 0 && tr.Height() > 1 {
				t.Fatalf("empty non-root leaf %d survives", n.ID)
			}
			for _, e := range n.Entries {
				id := payloadID(e.Payload)
				if deleted[id] {
					t.Fatalf("deleted entry %d still present", id)
				}
				if home[id] != n.ID {
					t.Fatalf("entry %d moved from page %d to %d", id, home[id], n.ID)
				}
			}
		}
		return true
	})
	if leaves != tr.LeafPages() {
		t.Fatalf("leaf bookkeeping: %d walked, %d counted", leaves, tr.LeafPages())
	}
}

// buildShrinkScenario hand-builds the smallest tree in which deleting one
// entry condenses a directory node while the root shrink collapses the tree
// to a single leaf, leaving a level-1 orphan above the new height:
//
//	root(2){A,B}; A(1){L1,L2} with L1 underfull after the delete; B(1){L4}
//
// Deleting from L1 condenses L1, then A; the root shrinks through B down to
// leaf L4 (height 1), and L2's pointer must be grafted back as an orphan at
// level 1 >= height.
func buildShrinkScenario(t *testing.T) (*Tree, geom.Rect, []uint64) {
	t.Helper()
	tr := newTestTree(t, Config{PageBytes: 256}) // M=5, m=2
	mkLeaf := func(ids []uint64, base geom.Rect) *Node {
		n := &Node{ID: tr.allocPage(0), Level: 0}
		for k, id := range ids {
			r := geom.R(base.MinX+float64(k)*0.01, base.MinY+float64(k)*0.01,
				base.MinX+float64(k)*0.01+0.005, base.MinY+float64(k)*0.01+0.005)
			n.Entries = append(n.Entries, Entry{Rect: r, Payload: payloadFor(id)})
		}
		tr.writeNode(n)
		return n
	}
	mkDir := func(level int, children ...*Node) *Node {
		n := &Node{ID: tr.allocPage(level), Level: level}
		for _, c := range children {
			n.Entries = append(n.Entries, Entry{Rect: c.Rect(), Child: c.ID})
		}
		tr.writeNode(n)
		return n
	}

	l1 := mkLeaf([]uint64{1, 2}, geom.R(0.0, 0.0, 0, 0))
	l2 := mkLeaf([]uint64{3, 4}, geom.R(0.1, 0.1, 0, 0))
	l4 := mkLeaf([]uint64{5, 6, 7}, geom.R(0.8, 0.8, 0, 0))
	a := mkDir(1, l1, l2)
	b := mkDir(1, l4)
	root := mkDir(2, a, b)
	tr.root = root.ID
	tr.height = 3
	tr.size = 7
	if _, err := tr.CheckInvariants(); err != nil {
		t.Fatalf("scenario construction: %v", err)
	}
	return tr, l1.Entries[0].Rect, []uint64{2, 3, 4, 5, 6, 7}
}

// TestDeleteGraftsOrphanAboveShrunkRoot is the regression test for orphan
// re-insertion when the root shrink leaves the tree shorter than the
// orphan's level: the subtree must be grafted by growing the tree, not by
// dissolving it (which mis-leveled its entries and moved leaf entries
// between pages).
func TestDeleteGraftsOrphanAboveShrunkRoot(t *testing.T) {
	tr, victim, survivors := buildShrinkScenario(t)
	if !tr.DeleteByPayload(victim, payloadFor(1)) {
		t.Fatal("delete failed")
	}
	if n, err := tr.CheckInvariants(); err != nil || n != len(survivors) {
		t.Fatalf("invariants after graft: n=%d err=%v", n, err)
	}
	found := map[uint64]bool{}
	tr.Search(geom.R(0, 0, 1, 1), func(e Entry) bool {
		found[payloadID(e.Payload)] = true
		return true
	})
	for _, id := range survivors {
		if !found[id] {
			t.Fatalf("entry %d lost by the graft", id)
		}
	}
	if len(found) != len(survivors) {
		t.Fatalf("found %d entries, want %d", len(found), len(survivors))
	}
}

// TestDeleteGraftKeepsLeafEntriesInPlace repeats the shrink scenario with
// leaf condensation disabled and verifies no leaf entry changed its page —
// required by the cluster organization even through the graft path.
func TestDeleteGraftKeepsLeafEntriesInPlace(t *testing.T) {
	tr, victim, _ := buildShrinkScenario(t)
	tr.cfg.DisableLeafCondense = true
	home := map[uint64]disk.PageID{}
	tr.WalkNodes(func(n *Node) bool {
		if n.Level == 0 {
			for _, e := range n.Entries {
				home[payloadID(e.Payload)] = n.ID
			}
		}
		return true
	})
	if !tr.DeleteByPayload(victim, payloadFor(1)) {
		t.Fatal("delete failed")
	}
	if _, err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	tr.WalkNodes(func(n *Node) bool {
		if n.Level == 0 {
			for _, e := range n.Entries {
				if id := payloadID(e.Payload); home[id] != n.ID {
					t.Fatalf("leaf entry %d moved from %d to %d", id, home[id], n.ID)
				}
			}
		}
		return true
	})
}

// TestDeleteCondenseSoak mass-deletes under both condense modes across
// seeds, checking invariants and the surviving set each time.
func TestDeleteCondenseSoak(t *testing.T) {
	for _, disable := range []bool{false, true} {
		for seed := int64(0); seed < 3; seed++ {
			tr := newTestTree(t, Config{DisableLeafCondense: disable})
			rng := rand.New(rand.NewSource(seed))
			type stored struct {
				r  geom.Rect
				id uint64
			}
			var all []stored
			for i := 0; i < 800; i++ {
				r := randRect(rng)
				tr.Insert(r, payloadFor(uint64(i)))
				all = append(all, stored{r, uint64(i)})
			}
			perm := rng.Perm(len(all))
			for k, i := range perm {
				if !tr.DeleteByPayload(all[i].r, payloadFor(all[i].id)) {
					t.Fatalf("disable=%v seed=%d: delete %d failed", disable, seed, all[i].id)
				}
				if k%97 == 0 {
					if _, err := tr.CheckInvariants(); err != nil {
						t.Fatalf("disable=%v seed=%d after %d deletes: %v", disable, seed, k+1, err)
					}
				}
			}
			if tr.Len() != 0 {
				t.Fatalf("disable=%v seed=%d: %d entries remain", disable, seed, tr.Len())
			}
		}
	}
}
