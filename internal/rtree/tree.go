package rtree

import (
	"fmt"

	"spatialcluster/internal/buffer"
	"spatialcluster/internal/disk"
	"spatialcluster/internal/geom"
	"spatialcluster/internal/pagefile"
)

// DefaultEntrySize is the paper's entry size: MBR plus pointer information,
// 46 bytes (section 5.1).
const DefaultEntrySize = 46

// Config tunes the tree. The zero value is completed by New with the paper's
// parameters.
type Config struct {
	// PageBytes is the node page size; default disk.PageSize (4 KB).
	PageBytes int
	// EntrySize is the on-page size of a directory or fixed leaf entry;
	// default DefaultEntrySize (46 B), yielding M = 89.
	EntrySize int
	// MinFillRatio is m/M; default 0.4 as in [BKSS90].
	MinFillRatio float64
	// ReinsertFraction is the share of entries removed on forced reinsert;
	// default 0.3 as in [BKSS90].
	ReinsertFraction float64
	// DisableLeafReinsert turns off forced reinsertion on the data-page
	// level (cluster organization, paper section 4.2.1).
	DisableLeafReinsert bool
	// DisableLeafCondense keeps underfull data pages in place on Delete:
	// a data page is only condensed (freed) once it is empty. The cluster
	// organization requires this for the same reason it disables leaf
	// reinsertion — relocating a data-page entry means copying a complete
	// spatial object between cluster units. The resulting under-occupied
	// pages are the clustering decay that the online reclusterer repairs.
	DisableLeafCondense bool
	// DisableReinsert turns off forced reinsertion entirely (for ablation
	// experiments).
	DisableReinsert bool
	// VariableLeaf switches leaf capacity to a byte budget; leaf entries
	// then carry variable-size payloads (primary organization).
	VariableLeaf bool

	// OnLeafInsert, if set, is invoked after an entry is placed in a data
	// page and before overflow treatment. Returning true forces a split of
	// that data page (cluster unit exceeded Smax).
	OnLeafInsert func(leaf disk.PageID, e Entry) (forceSplit bool)
	// OnLeafSplit, if set, is invoked after a data page split distributed
	// the entries of page left onto left and right.
	OnLeafSplit func(left, right disk.PageID, leftEntries, rightEntries []Entry)
}

func (c Config) withDefaults() Config {
	if c.PageBytes == 0 {
		c.PageBytes = disk.PageSize
	}
	if c.EntrySize == 0 {
		c.EntrySize = DefaultEntrySize
	}
	if c.MinFillRatio == 0 {
		c.MinFillRatio = 0.4
	}
	if c.ReinsertFraction == 0 {
		c.ReinsertFraction = 0.3
	}
	return c
}

// Tree is a paged R*-tree. Mutations (Insert, Delete, bulk load) are not
// safe for concurrent use, but once construction is finished the read path
// (Search, SearchPoint, SearchLeaves, ReadNode, DecodeNode, the Is*Page
// bookkeeping) is safe for any number of concurrent readers: node decoding
// is pure, and all page traffic goes through the sharded buffer manager.
type Tree struct {
	cfg   Config
	buf   *buffer.Manager
	alloc *pagefile.Allocator

	root   disk.PageID
	height int // number of levels; 1 = root is a leaf
	size   int // number of leaf entries

	maxEntries int // M
	minEntries int // m

	leafPages int
	dirPages  int

	// pageLevels records the level of every live node page, so callers can
	// distinguish directory from data pages (e.g. for selective buffer
	// eviction) without reading them.
	pageLevels map[disk.PageID]int
}

// newShell builds a tree with its configuration applied and its capacities
// (M, m) derived, but no nodes yet. New allocates a fresh root into it;
// Restore fills it from a snapshot image — sharing the shell keeps the two
// construction paths' sizing identical by construction.
func newShell(buf *buffer.Manager, alloc *pagefile.Allocator, cfg Config) *Tree {
	cfg = cfg.withDefaults()
	if cfg.EntrySize < rectSize+8 {
		panic(fmt.Sprintf("rtree: entry size %d cannot hold an MBR and a pointer", cfg.EntrySize))
	}
	t := &Tree{cfg: cfg, buf: buf, alloc: alloc, pageLevels: make(map[disk.PageID]int)}
	t.maxEntries = (cfg.PageBytes - nodeHeaderSize) / cfg.EntrySize
	if t.maxEntries > 255 {
		t.maxEntries = 255
	}
	t.minEntries = int(cfg.MinFillRatio * float64(t.maxEntries))
	if t.minEntries < 2 {
		t.minEntries = 2
	}
	return t
}

// New creates an empty tree whose nodes live on pages allocated from alloc
// and are accessed through buf.
func New(buf *buffer.Manager, alloc *pagefile.Allocator, cfg Config) *Tree {
	t := newShell(buf, alloc, cfg)
	rootNode := &Node{ID: t.allocPage(0), Level: 0}
	t.root = rootNode.ID
	t.height = 1
	t.writeNode(rootNode)
	return t
}

// payloadSize returns the fixed payload bytes of a leaf entry.
func (t *Tree) payloadSize() int { return t.cfg.EntrySize - rectSize }

// PayloadSize exposes the fixed payload capacity of leaf entries (14 bytes
// with the paper's parameters).
func (t *Tree) PayloadSize() int { return t.payloadSize() }

// MaxEntries returns M, the node capacity in entries.
func (t *Tree) MaxEntries() int { return t.maxEntries }

// MinEntries returns m, the minimum node fill.
func (t *Tree) MinEntries() int { return t.minEntries }

// Len returns the number of stored leaf entries.
func (t *Tree) Len() int { return t.size }

// Height returns the number of levels (1 = the root is a leaf).
func (t *Tree) Height() int { return t.height }

// Root returns the page of the root node.
func (t *Tree) Root() disk.PageID { return t.root }

// LeafPages and DirPages return the page counts per level class.
func (t *Tree) LeafPages() int { return t.leafPages }

// DirPages returns the number of directory pages.
func (t *Tree) DirPages() int { return t.dirPages }

// Buffer returns the buffer manager the tree reads through (shared with the
// organization model).
func (t *Tree) Buffer() *buffer.Manager { return t.buf }

func (t *Tree) allocPage(level int) disk.PageID {
	ext := t.alloc.Alloc(1)
	if level == 0 {
		t.leafPages++
	} else {
		t.dirPages++
	}
	t.pageLevels[ext.Start] = level
	return ext.Start
}

func (t *Tree) freePage(id disk.PageID, level int) {
	t.buf.Drop(id)
	t.alloc.Free(pagefile.Extent{Start: id, Pages: 1})
	if level == 0 {
		t.leafPages--
	} else {
		t.dirPages--
	}
	delete(t.pageLevels, id)
}

// IsDirPage reports whether page id holds a live directory node of this
// tree. It is pure bookkeeping and charges no I/O.
func (t *Tree) IsDirPage(id disk.PageID) bool {
	level, ok := t.pageLevels[id]
	return ok && level > 0
}

// IsNodePage reports whether page id holds any live node of this tree.
func (t *Tree) IsNodePage(id disk.PageID) bool {
	_, ok := t.pageLevels[id]
	return ok
}

// ReadNode loads the node stored on page id, charging buffer/disk cost.
func (t *Tree) ReadNode(id disk.PageID) *Node {
	return t.unmarshalNode(id, t.buf.Get(id))
}

// DecodeNode deserializes a node from page content obtained elsewhere (e.g.
// through a different buffer manager during join processing).
func (t *Tree) DecodeNode(id disk.PageID, page []byte) *Node {
	return t.unmarshalNode(id, page)
}

func (t *Tree) writeNode(n *Node) {
	t.buf.Put(n.ID, t.marshalNode(n))
}

// writeNodeIfFits persists n unless it is transiently overfull; overfull
// nodes are always split (or trimmed by a reinsert) before the insertion
// completes, and the resolution writes the resulting nodes.
func (t *Tree) writeNodeIfFits(n *Node) {
	if !t.overfull(n) {
		t.writeNode(n)
	}
}

// Flush writes all dirty tree pages back to disk.
func (t *Tree) Flush() { t.buf.Flush() }

// Release frees every node page of the tree back to the allocator and drops
// the buffered copies, using the page-level bookkeeping (no I/O is charged —
// deallocation is metadata work). The tree must not be used afterwards; it
// exists so a full rebuild can reclaim the old tree's pages.
func (t *Tree) Release() {
	ids := make([]disk.PageID, 0, len(t.pageLevels))
	for id := range t.pageLevels {
		ids = append(ids, id)
	}
	for _, id := range ids {
		t.freePage(id, t.pageLevels[id])
	}
	t.root = disk.InvalidPage
	t.height = 0
	t.size = 0
}

// pathElem records one step of a root-to-node descent.
type pathElem struct {
	node     *Node
	entryIdx int // index in the parent's entry list pointing at node; -1 for root
}

// choosePath descends from the root to the given level, always following the
// subtree chosen by the R* ChooseSubtree criterion for rectangle r, and
// returns the nodes along the way (path[0] is the root).
func (t *Tree) choosePath(r geom.Rect, level int) []pathElem {
	path := []pathElem{{node: t.ReadNode(t.root), entryIdx: -1}}
	for {
		cur := path[len(path)-1].node
		if cur.Level == level {
			return path
		}
		idx := t.chooseSubtree(cur, r)
		child := t.ReadNode(cur.Entries[idx].Child)
		path = append(path, pathElem{node: child, entryIdx: idx})
	}
}

// chooseSubtree picks the entry of dir node n to descend into for rectangle
// r, per [BKSS90]: for nodes whose children are leaves, minimize overlap
// enlargement (ties: area enlargement, then area); higher up, minimize area
// enlargement (ties: area).
func (t *Tree) chooseSubtree(n *Node, r geom.Rect) int {
	if len(n.Entries) == 0 {
		panic("rtree: chooseSubtree on empty node")
	}
	childrenAreLeaves := n.Level == 1
	best := 0
	if childrenAreLeaves {
		bestOverlap, bestEnl, bestArea := overlapEnlargement(n.Entries, 0, r),
			n.Entries[0].Rect.Enlargement(r), n.Entries[0].Rect.Area()
		for i := 1; i < len(n.Entries); i++ {
			ov := overlapEnlargement(n.Entries, i, r)
			enl := n.Entries[i].Rect.Enlargement(r)
			area := n.Entries[i].Rect.Area()
			if ov < bestOverlap ||
				(ov == bestOverlap && enl < bestEnl) ||
				(ov == bestOverlap && enl == bestEnl && area < bestArea) {
				best, bestOverlap, bestEnl, bestArea = i, ov, enl, area
			}
		}
		return best
	}
	bestEnl, bestArea := n.Entries[0].Rect.Enlargement(r), n.Entries[0].Rect.Area()
	for i := 1; i < len(n.Entries); i++ {
		enl := n.Entries[i].Rect.Enlargement(r)
		area := n.Entries[i].Rect.Area()
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

// overlapEnlargement returns how much the overlap of entry i with its
// siblings grows when i is enlarged to cover r.
func overlapEnlargement(entries []Entry, i int, r geom.Rect) float64 {
	old := entries[i].Rect
	grown := old.Union(r)
	var delta float64
	for j := range entries {
		if j == i {
			continue
		}
		delta += grown.OverlapArea(entries[j].Rect) - old.OverlapArea(entries[j].Rect)
	}
	return delta
}
