package rtree

import (
	"fmt"

	"spatialcluster/internal/disk"
	"spatialcluster/internal/geom"
)

// Search invokes fn for every leaf entry whose rectangle intersects w, in
// tree traversal order; fn returning false stops the search. This is the
// filter step of the window query (paper section 4.2.2).
func (t *Tree) Search(w geom.Rect, fn func(e Entry) bool) {
	t.searchNode(t.root, w, fn)
}

func (t *Tree) searchNode(id disk.PageID, w geom.Rect, fn func(e Entry) bool) bool {
	n := t.ReadNode(id)
	for i := range n.Entries {
		e := &n.Entries[i]
		if !e.Rect.Intersects(w) {
			continue
		}
		if n.Level > 0 {
			if !t.searchNode(e.Child, w, fn) {
				return false
			}
			continue
		}
		if !fn(*e) {
			return false
		}
	}
	return true
}

// SearchPoint invokes fn for every leaf entry whose rectangle contains p
// (the filter step of the point query).
func (t *Tree) SearchPoint(p geom.Point, fn func(e Entry) bool) {
	t.Search(geom.RectFromPoint(p), fn)
}

// LeafMatch describes the qualifying entries of one data page for a window
// query. Rect is the region of the whole data page (the region of the
// attached cluster unit in the cluster organization); Matched indexes the
// entries of Node whose rectangles intersect the window.
type LeafMatch struct {
	Node    *Node
	Rect    geom.Rect
	Matched []int
}

// SearchLeaves invokes fn once per data page that contains at least one
// qualifying entry; fn returning false stops the search. The cluster-read
// techniques operate on this per-data-page granularity.
func (t *Tree) SearchLeaves(w geom.Rect, fn func(lm LeafMatch) bool) {
	t.searchLeaves(t.root, w, fn)
}

func (t *Tree) searchLeaves(id disk.PageID, w geom.Rect, fn func(lm LeafMatch) bool) bool {
	n := t.ReadNode(id)
	if n.Level > 0 {
		for i := range n.Entries {
			if n.Entries[i].Rect.Intersects(w) {
				if !t.searchLeaves(n.Entries[i].Child, w, fn) {
					return false
				}
			}
		}
		return true
	}
	var matched []int
	for i := range n.Entries {
		if n.Entries[i].Rect.Intersects(w) {
			matched = append(matched, i)
		}
	}
	if len(matched) == 0 {
		return true
	}
	return fn(LeafMatch{Node: n, Rect: n.Rect(), Matched: matched})
}

// WalkNodes invokes fn for every node of the tree, parents before children;
// fn returning false prunes the subtree. It charges I/O like any traversal
// and is used by statistics and integrity checks.
func (t *Tree) WalkNodes(fn func(n *Node) bool) {
	t.walk(t.root, fn)
}

func (t *Tree) walk(id disk.PageID, fn func(n *Node) bool) {
	n := t.ReadNode(id)
	if !fn(n) {
		return
	}
	if n.Level == 0 {
		return
	}
	for i := range n.Entries {
		t.walk(n.Entries[i].Child, fn)
	}
}

// CheckInvariants walks the whole tree and verifies the R*-tree structural
// invariants: parent rectangles exactly bound their children, levels
// decrease by one along edges, leaf level is 0, and all nodes except the
// root hold at least one entry. It returns the number of leaf entries seen.
// Intended for tests.
func (t *Tree) CheckInvariants() (int, error) {
	return t.checkNode(t.root, t.height-1, true)
}

func (t *Tree) checkNode(id disk.PageID, wantLevel int, isRoot bool) (int, error) {
	n := t.ReadNode(id)
	if n.Level != wantLevel {
		return 0, fmt.Errorf("node %d: level %d, want %d", id, n.Level, wantLevel)
	}
	if !isRoot && len(n.Entries) == 0 {
		return 0, fmt.Errorf("node %d: empty non-root node", id)
	}
	if n.Level == 0 {
		return len(n.Entries), nil
	}
	var total int
	for i := range n.Entries {
		e := &n.Entries[i]
		child := t.ReadNode(e.Child)
		if cr := child.Rect(); cr != e.Rect {
			return 0, fmt.Errorf("node %d entry %d: rect %v, child MBR %v", id, i, e.Rect, cr)
		}
		sub, err := t.checkNode(e.Child, wantLevel-1, false)
		if err != nil {
			return 0, err
		}
		total += sub
	}
	return total, nil
}
