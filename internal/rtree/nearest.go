package rtree

import (
	"container/heap"

	"spatialcluster/internal/disk"
	"spatialcluster/internal/geom"
)

// nnItem is one pending subtree of the incremental nearest-neighbor
// traversal: a node page together with the optimistic distance bound of its
// MBR. seq breaks distance ties deterministically (insertion order), so the
// visit order never depends on heap internals.
type nnItem struct {
	child disk.PageID
	dist  float64
	seq   int
}

// nnHeap is a min-heap over (dist, seq).
type nnHeap []nnItem

func (h nnHeap) Len() int { return len(h) }
func (h nnHeap) Less(i, j int) bool {
	if h[i].dist != h[j].dist {
		return h[i].dist < h[j].dist
	}
	return h[i].seq < h[j].seq
}
func (h nnHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *nnHeap) Push(x any)   { *h = append(*h, x.(nnItem)) }
func (h *nnHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// NearestLeaves visits the data pages of the tree in ascending order of
// MinDist(pt, page MBR) — the best-first incremental nearest-neighbor
// traversal of Hjaltason and Samet [HS95], at data-page granularity: a
// priority queue holds subtrees keyed by the optimistic distance of their
// MBR, and the nearest subtree is expanded first. fn receives each surfacing
// data page together with its bound; returning false stops the browse.
//
// stop, if non-nil, is consulted with a popped page's bound BEFORE the page
// is read: distances pop in nondecreasing order, so a monotone predicate
// ("k answers found and minDist exceeds the k-th exact distance") ends the
// browse without charging the I/O of a page that cannot contribute. fn's
// return value remains a generic early exit for non-monotone conditions.
//
// Surfacing whole data pages (rather than single entries) lets the cluster
// organization batch the object fetches of one page into a single unit
// access, and the nondecreasing bound gives callers the standard k-NN
// termination rule: once k exact answers are closer than the next page's
// MinDist, no better answer can exist. Node reads charge I/O like any
// traversal.
func (t *Tree) NearestLeaves(pt geom.Point, stop func(minDist float64) bool, fn func(n *Node, minDist float64) bool) {
	h := &nnHeap{{child: t.root, dist: 0}}
	seq := 1
	for h.Len() > 0 {
		it := heap.Pop(h).(nnItem)
		if stop != nil && stop(it.dist) {
			return
		}
		n := t.ReadNode(it.child)
		if n.Level == 0 {
			if !fn(n, it.dist) {
				return
			}
			continue
		}
		for i := range n.Entries {
			e := &n.Entries[i]
			heap.Push(h, nnItem{child: e.Child, dist: e.Rect.MinDist(pt), seq: seq})
			seq++
		}
	}
}
