package rtree

import (
	"fmt"

	"spatialcluster/internal/disk"
)

// PackLeaves bulk-loads an empty tree bottom-up from pre-grouped leaf entry
// sets (the caller chooses the grouping and its order, typically a Hilbert
// sort — static global clustering). It returns the page IDs of the created
// data pages, in input order, so an organization model can attach its
// storage (e.g. cluster units) to them. Directory levels are packed at the
// same fill as the input's largest group, preserving spatial order.
//
// PackLeaves panics if the tree is not empty or a group exceeds the node
// capacity.
func (t *Tree) PackLeaves(groups [][]Entry) []disk.PageID {
	if t.size != 0 || t.height != 1 {
		panic("rtree: PackLeaves requires an empty tree")
	}
	if len(groups) == 0 {
		return nil
	}

	// Replace the pre-allocated empty root; it becomes the first leaf.
	leafIDs := make([]disk.PageID, len(groups))
	level := make([]*Node, len(groups))
	for i, g := range groups {
		if len(g) == 0 {
			panic(fmt.Sprintf("rtree: empty bulk-load group %d", i))
		}
		n := &Node{Level: 0, Entries: append([]Entry(nil), g...)}
		if i == 0 {
			n.ID = t.root // reuse the pre-allocated root page as a leaf
		} else {
			n.ID = t.allocPage(0)
		}
		if t.overfull(n) {
			panic(fmt.Sprintf("rtree: bulk-load group %d with %d entries overflows a page",
				i, len(g)))
		}
		t.writeNode(n)
		t.size += len(g)
		leafIDs[i] = n.ID
		level[i] = n
	}

	// Pack directory levels bottom-up until one node remains. The fan-out
	// mirrors the leaf fill so the directory keeps the same utilization.
	fanout := 0
	for _, g := range groups {
		if len(g) > fanout {
			fanout = len(g)
		}
	}
	if fanout < 2 {
		fanout = 2
	}
	if fanout > t.maxEntries {
		fanout = t.maxEntries
	}
	curLevel := 0
	for len(level) > 1 {
		curLevel++
		var parents []*Node
		for start := 0; start < len(level); start += fanout {
			end := start + fanout
			if end > len(level) {
				end = len(level)
			}
			p := &Node{ID: t.allocPage(curLevel), Level: curLevel}
			for _, child := range level[start:end] {
				p.Entries = append(p.Entries, Entry{Rect: child.Rect(), Child: child.ID})
			}
			t.writeNode(p)
			parents = append(parents, p)
		}
		// Avoid a single-child root chain: if only one parent was created
		// for >1 children, it becomes the root below.
		level = parents
	}
	t.root = level[0].ID
	t.height = curLevel + 1
	return leafIDs
}
