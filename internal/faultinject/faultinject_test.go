package faultinject

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spatialcluster/internal/disk"
)

func TestFSScriptedFaults(t *testing.T) {
	fs := NewFS(map[int64]Kind{2: Fail, 3: ShortWrite, 4: BitFlip, 5: Fail})
	path := filepath.Join(t.TempDir(), "f")
	f, err := fs.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := []byte("0123456789abcdef")

	if n, err := f.Write(buf); err != nil || n != len(buf) { // op 1: clean
		t.Fatalf("clean write: n=%d err=%v", n, err)
	}
	if _, err := f.Write(buf); err == nil || !strings.Contains(err.Error(), "write failed") { // op 2: Fail
		t.Fatalf("scripted Fail: err=%v", err)
	}
	if n, err := f.Write(buf); err == nil || n != len(buf)/2 { // op 3: ShortWrite
		t.Fatalf("scripted ShortWrite: n=%d err=%v", n, err)
	}
	if n, err := f.Write(buf); err != nil || n != len(buf) { // op 4: BitFlip reports success
		t.Fatalf("scripted BitFlip: n=%d err=%v", n, err)
	}
	if err := f.Sync(); err == nil { // op 5: Fail on sync
		t.Fatal("scripted sync Fail succeeded")
	}
	if err := f.Sync(); err != nil { // op 6: clean
		t.Fatalf("clean sync: %v", err)
	}
	if got := fs.Ops(); got != 6 {
		t.Fatalf("Ops() = %d, want 6", got)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Clean(16) + short(8) + flipped(16) bytes reached the file.
	if want := 16 + 8 + 16; len(data) != want {
		t.Fatalf("file holds %d bytes, want %d", len(data), want)
	}
	flipped := data[24:]
	if flipped[len(flipped)/2] != buf[len(buf)/2]^0x10 {
		t.Fatal("BitFlip write did not corrupt the middle byte")
	}
	if string(data[:16]) != string(buf) {
		t.Fatal("clean write corrupted")
	}
}

func TestBackendScriptedFaults(t *testing.T) {
	inner := disk.NewMemBackend()
	b := NewBackend(inner, map[int64]Kind{1: Fail, 3: BitFlip, 4: Fail})
	page := make([]byte, disk.PageSize)
	for i := range page {
		page[i] = byte(i)
	}
	start := b.Alloc(1)

	b.WriteRun(start, [][]byte{page}) // op 1: Fail — dropped
	if got := inner.ReadRun(start, 1)[0]; got != nil {
		t.Fatal("dropped run reached the backend")
	}
	b.WriteRun(start, [][]byte{page}) // op 2: clean
	if got := inner.ReadRun(start, 1)[0]; got[1] != 1 {
		t.Fatal("clean run did not reach the backend")
	}
	b.WriteRun(start, [][]byte{page}) // op 3: BitFlip
	got := inner.ReadRun(start, 1)[0]
	if got[len(got)/2] == page[len(page)/2] {
		t.Fatal("BitFlip run did not corrupt the page")
	}
	if err := b.Flush(); err == nil { // op 4: Fail
		t.Fatal("scripted Flush fault succeeded")
	}
	if err := b.Flush(); err != nil { // op 5: clean
		t.Fatalf("clean Flush: %v", err)
	}
	if page[0] != 0 || page[len(page)/2] != byte(len(page)/2) {
		t.Fatal("BitFlip mutated the caller's buffer")
	}
	if got := b.Ops(); got != 5 {
		t.Fatalf("Ops() = %d, want 5", got)
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{Fail: "fail", ShortWrite: "short-write", BitFlip: "bit-flip", Kind(9): "Kind(9)"}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("Kind(%d).String() = %q, want %q", int(k), k.String(), s)
		}
	}
}
