// Package faultinject is the scriptable fault layer of the durability
// tests: a wal.FileSystem whose Nth operation fails, short-writes or flips
// a bit, and a disk.Backend wrapper that drops or corrupts the Nth page
// write. The kill-at-N differential suite scripts these to "crash" a store
// at a chosen operation and then checks that recovery restores exactly the
// acknowledged prefix.
package faultinject

import (
	"fmt"
	"os"
	"sync"

	"spatialcluster/internal/wal"
)

// Kind selects what happens at a scripted operation.
type Kind int

// The fault kinds.
const (
	// Fail makes the operation return an error without any effect.
	Fail Kind = iota
	// ShortWrite persists only the first half of the buffer, then errors —
	// the torn write a crash mid-write leaves behind. On a sync it degrades
	// to Fail.
	ShortWrite
	// BitFlip silently corrupts one bit of the buffer and reports success —
	// the medium lied. On a sync it is a no-op.
	BitFlip
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Fail:
		return "fail"
	case ShortWrite:
		return "short-write"
	case BitFlip:
		return "bit-flip"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// FS is a wal.FileSystem that counts every Write and Sync across all files
// it has opened (1-based, in call order) and injects the scripted fault
// when the counter hits its operation number.
type FS struct {
	mu     sync.Mutex
	ops    int64
	faults map[int64]Kind
}

// NewFS builds a fault-injecting filesystem. faults maps 1-based operation
// numbers (Writes and Syncs combined, in call order) to the fault to inject.
func NewFS(faults map[int64]Kind) *FS {
	m := make(map[int64]Kind, len(faults))
	for op, k := range faults {
		m[op] = k
	}
	return &FS{faults: m}
}

// Ops returns how many operations have been counted so far.
func (fs *FS) Ops() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.ops
}

// next advances the operation counter and returns the fault scheduled for
// this operation, if any.
func (fs *FS) next() (Kind, bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.ops++
	k, ok := fs.faults[fs.ops]
	return k, ok
}

// Create implements wal.FileSystem.
func (fs *FS) Create(path string) (wal.File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return &file{fs: fs, f: f}, nil
}

// OpenAppend implements wal.FileSystem.
func (fs *FS) OpenAppend(path string) (wal.File, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &file{fs: fs, f: f}, nil
}

// file wraps one real file with the shared fault counter.
type file struct {
	fs *FS
	f  *os.File
}

func (w *file) Write(p []byte) (int, error) {
	kind, hit := w.fs.next()
	if !hit {
		return w.f.Write(p)
	}
	switch kind {
	case Fail:
		return 0, fmt.Errorf("faultinject: write failed (op %d)", w.fs.Ops())
	case ShortWrite:
		n, err := w.f.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, fmt.Errorf("faultinject: short write %d of %d bytes (op %d)", n, len(p), w.fs.Ops())
	case BitFlip:
		q := append([]byte(nil), p...)
		q[len(q)/2] ^= 0x10
		return w.f.Write(q)
	}
	return w.f.Write(p)
}

func (w *file) Sync() error {
	kind, hit := w.fs.next()
	if hit && (kind == Fail || kind == ShortWrite) {
		return fmt.Errorf("faultinject: fsync failed (op %d)", w.fs.Ops())
	}
	return w.f.Sync()
}

func (w *file) Close() error { return w.f.Close() }
