package faultinject

import (
	"fmt"
	"sync"

	"spatialcluster/internal/disk"
)

// Backend wraps a disk.Backend with the same scripted-fault discipline as
// FS: operations (WriteRun and Flush calls, combined, 1-based) are counted,
// and the scripted one misbehaves. WriteRun cannot return an error (the
// Disk contract), so Fail and ShortWrite silently drop the run — the page
// image a powered-off drive never persisted — while BitFlip corrupts one
// bit and "succeeds". On Flush, Fail and ShortWrite return an error (which
// Env.sync turns into a panic, the store's give-up-don't-limp contract).
type Backend struct {
	inner disk.Backend

	mu     sync.Mutex
	ops    int64
	faults map[int64]Kind
}

// NewBackend wraps inner with scripted faults, keyed by 1-based operation
// number over WriteRun and Flush calls in order.
func NewBackend(inner disk.Backend, faults map[int64]Kind) *Backend {
	m := make(map[int64]Kind, len(faults))
	for op, k := range faults {
		m[op] = k
	}
	return &Backend{inner: inner, faults: m}
}

// Ops returns how many operations have been counted so far.
func (b *Backend) Ops() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.ops
}

func (b *Backend) next() (Kind, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ops++
	k, ok := b.faults[b.ops]
	return k, ok
}

// NumPages implements disk.Backend.
func (b *Backend) NumPages() disk.PageID { return b.inner.NumPages() }

// Alloc implements disk.Backend.
func (b *Backend) Alloc(n int) disk.PageID { return b.inner.Alloc(n) }

// Free implements disk.Backend.
func (b *Backend) Free(start disk.PageID, n int) { b.inner.Free(start, n) }

// ReadRun implements disk.Backend.
func (b *Backend) ReadRun(start disk.PageID, n int) [][]byte { return b.inner.ReadRun(start, n) }

// WriteRun implements disk.Backend, injecting the scripted fault.
func (b *Backend) WriteRun(start disk.PageID, data [][]byte) {
	kind, hit := b.next()
	if !hit {
		b.inner.WriteRun(start, data)
		return
	}
	switch kind {
	case Fail, ShortWrite:
		return // the run never reached the medium
	case BitFlip:
		corrupted := make([][]byte, len(data))
		copy(corrupted, data)
		for i, pg := range corrupted {
			if len(pg) > 0 {
				q := append([]byte(nil), pg...)
				q[len(q)/2] ^= 0x10
				corrupted[i] = q
				break
			}
		}
		b.inner.WriteRun(start, corrupted)
	}
}

// Flush implements disk.Backend, injecting the scripted fault.
func (b *Backend) Flush() error {
	kind, hit := b.next()
	if hit && (kind == Fail || kind == ShortWrite) {
		return fmt.Errorf("faultinject: flush failed (op %d)", b.Ops())
	}
	return b.inner.Flush()
}

// Close implements disk.Backend.
func (b *Backend) Close() error { return b.inner.Close() }

// Measured implements disk.Backend.
func (b *Backend) Measured() disk.Measured { return b.inner.Measured() }
