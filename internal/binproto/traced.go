package binproto

import (
	"fmt"
	"math"

	"spatialcluster/internal/object"
	"spatialcluster/internal/obs"
	"spatialcluster/internal/store"
)

// Traced message kinds. Setting KindTraceBit on a query request kind asks the
// receiver to trace the request and answer with the matching traced response
// kind; the trace ID travels immediately after the kind byte so a gateway can
// propagate one identity across its whole fan-out:
//
//	traced window  0x41: traceID u64 | tech u8 | x1 y1 x2 y2 f64   (42 bytes)
//	traced point   0x42: traceID u64 | x y f64                     (25 bytes)
//	traced knn     0x43: traceID u64 | x y f64 | k u32             (29 bytes)
//
//	traced query response 0xc1: candidates u32 | n u32 | n×id u64 | trace
//	traced knn response   0xc2: candidates u32 | n u32 | n×id u64 | n×dist f64 | trace
//
// where trace is the obs.AppendTrace encoding (trace ID, total wall ms and
// the span tree), consuming the remainder of the payload. Mutations have no
// traced binary kind; traced mutations ride the JSON protocol.
const (
	// KindTraceBit distinguishes a traced query message from its untraced
	// base kind (response kinds keep their 0x80 bit as well).
	KindTraceBit byte = 0x40

	KindTracedWindow byte = KindWindow | KindTraceBit // 0x41
	KindTracedPoint  byte = KindPoint | KindTraceBit  // 0x42
	KindTracedKNN    byte = KindKNN | KindTraceBit    // 0x43

	KindTracedQueryResp byte = KindQueryResp | KindTraceBit // 0xc1
	KindTracedKNNResp   byte = KindKNNResp | KindTraceBit   // 0xc2
)

// Traced reports whether a payload leads with a traced message kind — the
// one-byte sniff the servers use to route a /bin/* body to the traced
// decoders.
func Traced(p []byte) bool {
	return len(p) > 0 && p[0]&KindTraceBit != 0
}

// AppendTracedWindowReq encodes a traced window query request. traceID 0
// asks the receiver to mint its own trace identity.
func AppendTracedWindowReq(dst []byte, win [4]float64, tech store.Technique, traceID uint64) []byte {
	dst = appendU64(append(dst, KindTracedWindow), traceID)
	dst = append(dst, byte(tech))
	for _, v := range win {
		dst = appendF64(dst, v)
	}
	return dst
}

// DecodeTracedWindowReq decodes a traced window query request.
func DecodeTracedWindowReq(p []byte) (win [4]float64, tech store.Technique, traceID uint64, err error) {
	r := &reader{p: p}
	r.checkKind(KindTracedWindow, "traced window")
	traceID = r.u64("trace id")
	t := r.u8("technique")
	for i := range win {
		win[i] = r.f64("window coordinate")
	}
	if err = r.done("traced window"); err != nil {
		return win, 0, 0, err
	}
	tech = store.Technique(t)
	if tech < store.TechComplete || tech > store.TechPageByPage {
		return win, 0, 0, fmt.Errorf("binproto: unknown technique %d", t)
	}
	return win, tech, traceID, nil
}

// AppendTracedPointReq encodes a traced point query request.
func AppendTracedPointReq(dst []byte, pt [2]float64, traceID uint64) []byte {
	dst = appendU64(append(dst, KindTracedPoint), traceID)
	dst = appendF64(dst, pt[0])
	return appendF64(dst, pt[1])
}

// DecodeTracedPointReq decodes a traced point query request.
func DecodeTracedPointReq(p []byte) (pt [2]float64, traceID uint64, err error) {
	r := &reader{p: p}
	r.checkKind(KindTracedPoint, "traced point")
	traceID = r.u64("trace id")
	pt[0] = r.f64("point x")
	pt[1] = r.f64("point y")
	return pt, traceID, r.done("traced point")
}

// AppendTracedKNNReq encodes a traced k-nearest-neighbor request.
func AppendTracedKNNReq(dst []byte, pt [2]float64, k int, traceID uint64) []byte {
	dst = appendU64(append(dst, KindTracedKNN), traceID)
	dst = appendF64(dst, pt[0])
	dst = appendF64(dst, pt[1])
	return appendU32(dst, uint32(k))
}

// DecodeTracedKNNReq decodes a traced k-nearest-neighbor request.
func DecodeTracedKNNReq(p []byte) (pt [2]float64, k int, traceID uint64, err error) {
	r := &reader{p: p}
	r.checkKind(KindTracedKNN, "traced knn")
	traceID = r.u64("trace id")
	pt[0] = r.f64("point x")
	pt[1] = r.f64("point y")
	kk := r.u32("k")
	if err = r.done("traced knn"); err != nil {
		return pt, 0, 0, err
	}
	if kk == 0 || kk > math.MaxInt32 {
		return pt, 0, 0, fmt.Errorf("binproto: implausible k %d", kk)
	}
	return pt, int(kk), traceID, nil
}

// AppendTracedQueryResp encodes a window/point answer plus its trace.
func AppendTracedQueryResp(dst []byte, ids []object.ID, candidates int, traceID uint64, totalMS float64, spans []obs.Span) []byte {
	dst = append(dst, KindTracedQueryResp)
	dst = appendU32(dst, uint32(candidates))
	dst = appendU32(dst, uint32(len(ids)))
	for _, id := range ids {
		dst = appendU64(dst, uint64(id))
	}
	return obs.AppendTrace(dst, traceID, totalMS, spans)
}

// DecodeTracedQueryResp decodes a traced window/point answer: the IDs append
// to ids[:0], and the embedded trace comes back decoded.
func DecodeTracedQueryResp(p []byte, ids []uint64) (out []uint64, candidates int, traceID uint64, totalMS float64, spans []obs.Span, err error) {
	r := &reader{p: p}
	r.checkKind(KindTracedQueryResp, "traced query response")
	cand := r.u32("candidate count")
	n := r.u32("id count")
	if r.err == nil && int(n) > (len(p)-r.off)/8 {
		r.err = fmt.Errorf("binproto: id count %d exceeds remaining payload", n)
	}
	out = ids[:0]
	for i := uint32(0); i < n && r.err == nil; i++ {
		out = append(out, r.u64("object id"))
	}
	trace := r.rest()
	if r.err != nil {
		return nil, 0, 0, 0, nil, r.err
	}
	traceID, totalMS, spans, err = obs.DecodeTrace(trace)
	if err != nil {
		return nil, 0, 0, 0, nil, err
	}
	return out, int(cand), traceID, totalMS, spans, nil
}

// AppendTracedKNNResp encodes a k-NN answer plus its trace.
func AppendTracedKNNResp(dst []byte, ids []object.ID, dists []float64, candidates int, traceID uint64, totalMS float64, spans []obs.Span) []byte {
	dst = append(dst, KindTracedKNNResp)
	dst = appendU32(dst, uint32(candidates))
	dst = appendU32(dst, uint32(len(ids)))
	for _, id := range ids {
		dst = appendU64(dst, uint64(id))
	}
	for _, d := range dists {
		dst = appendF64(dst, d)
	}
	return obs.AppendTrace(dst, traceID, totalMS, spans)
}

// DecodeTracedKNNResp decodes a traced k-NN answer into ids[:0] and
// dists[:0] plus the embedded trace.
func DecodeTracedKNNResp(p []byte, ids []uint64, dists []float64) (outIDs []uint64, outDists []float64, candidates int, traceID uint64, totalMS float64, spans []obs.Span, err error) {
	r := &reader{p: p}
	r.checkKind(KindTracedKNNResp, "traced knn response")
	cand := r.u32("candidate count")
	n := r.u32("id count")
	if r.err == nil && int(n) > (len(p)-r.off)/16 {
		r.err = fmt.Errorf("binproto: id count %d exceeds remaining payload", n)
	}
	outIDs, outDists = ids[:0], dists[:0]
	for i := uint32(0); i < n && r.err == nil; i++ {
		outIDs = append(outIDs, r.u64("object id"))
	}
	for i := uint32(0); i < n && r.err == nil; i++ {
		outDists = append(outDists, r.f64("distance"))
	}
	trace := r.rest()
	if r.err != nil {
		return nil, nil, 0, 0, 0, nil, r.err
	}
	traceID, totalMS, spans, err = obs.DecodeTrace(trace)
	if err != nil {
		return nil, nil, 0, 0, 0, nil, err
	}
	return outIDs, outDists, int(cand), traceID, totalMS, spans, nil
}
