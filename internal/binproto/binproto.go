// Package binproto is the compact binary wire format served by
// internal/server and internal/router next to HTTP/JSON. A binary request or
// response body is exactly one framing record —
//
//	uint32 length | uint32 CRC-32 | payload
//
// (the record discipline of internal/framing, shared with the write-ahead
// log) — whose payload starts with a one-byte message kind followed by the
// kind's fixed little-endian field layout:
//
//	window  0x01: tech u8 | x1 y1 x2 y2 f64        (34 bytes)
//	point   0x02: x y f64                          (17 bytes)
//	knn     0x03: x y f64 | k u32                  (21 bytes)
//	insert  0x04: hasKey u8 | [x1 y1 x2 y2 f64] | object.Marshal bytes
//	update  0x05: same layout as insert
//	delete  0x06: id u64                           (9 bytes)
//
//	query response  0x81: candidates u32 | n u32 | n×id u64
//	knn response    0x82: candidates u32 | n u32 | n×id u64 | n×dist f64
//	mutate response 0x83: existed u8               (2 bytes)
//
// Every decoder is exact-length: trailing bytes are an error, truncation is
// an error, and no input can panic the decoder (the fuzz targets in this
// package enforce that). Errors travel as plain HTTP status codes with a
// text/plain body — only success bodies are binary.
//
// Encoding appends to caller buffers; GetBuf/PutBuf pool the scratch so the
// serving hot path allocates nothing per request beyond the answer slice the
// caller asked for.
package binproto

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"spatialcluster/internal/object"
	"spatialcluster/internal/store"
)

// Message kinds: requests count up from 1, responses from 0x81.
const (
	KindWindow byte = 0x01
	KindPoint  byte = 0x02
	KindKNN    byte = 0x03
	KindInsert byte = 0x04
	KindUpdate byte = 0x05
	KindDelete byte = 0x06

	KindQueryResp  byte = 0x81
	KindKNNResp    byte = 0x82
	KindMutateResp byte = 0x83
)

// MaxMessage bounds the framed payload length a reader accepts — the binary
// twin of the JSON API's request body cap.
const MaxMessage = 8 << 20

// ContentType is the Content-Type of binary request and response bodies.
const ContentType = "application/x-spatialcluster-bin"

// bufPool recycles encode scratch buffers across requests.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}

// GetBuf returns a pooled, empty scratch buffer for encoding.
func GetBuf() *[]byte {
	b := bufPool.Get().(*[]byte)
	*b = (*b)[:0]
	return b
}

// PutBuf returns a scratch buffer to the pool.
func PutBuf(b *[]byte) { bufPool.Put(b) }

func appendU32(dst []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, v)
}

func appendU64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

func appendF64(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

// reader walks a payload with bounds checks; the first short read poisons it.
type reader struct {
	p   []byte
	off int
	err error
}

func (r *reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("binproto: truncated %s at byte %d of %d", what, r.off, len(r.p))
	}
}

func (r *reader) u8(what string) byte {
	if r.err != nil {
		return 0
	}
	if r.off+1 > len(r.p) {
		r.fail(what)
		return 0
	}
	v := r.p[r.off]
	r.off++
	return v
}

func (r *reader) u32(what string) uint32 {
	if r.err != nil {
		return 0
	}
	if r.off+4 > len(r.p) {
		r.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint32(r.p[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64(what string) uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.p) {
		r.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.p[r.off:])
	r.off += 8
	return v
}

func (r *reader) f64(what string) float64 {
	return math.Float64frombits(r.u64(what))
}

// rest returns every unread byte and marks the payload consumed.
func (r *reader) rest() []byte {
	if r.err != nil {
		return nil
	}
	v := r.p[r.off:]
	r.off = len(r.p)
	return v
}

// done enforces the exact-length contract.
func (r *reader) done(kind string) error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.p) {
		return fmt.Errorf("binproto: %d trailing bytes after %s message", len(r.p)-r.off, kind)
	}
	return nil
}

// checkKind consumes and verifies the leading kind byte.
func (r *reader) checkKind(want byte, name string) {
	if got := r.u8("message kind"); r.err == nil && got != want {
		r.err = fmt.Errorf("binproto: message kind 0x%02x, want %s (0x%02x)", got, name, want)
	}
}

// TechName returns the canonical wire name of a technique — the string the
// JSON API parses with store.TechByName. (Technique.String is a display name,
// not a wire name.) Gateways translating a binary technique byte into a JSON
// request use this.
func TechName(t store.Technique) string {
	switch t {
	case store.TechThreshold:
		return "threshold"
	case store.TechSLM:
		return "slm"
	case store.TechSLMVector:
		return "vector"
	case store.TechPageByPage:
		return "page"
	}
	return "complete"
}

// --- requests ---

// AppendWindowReq encodes a window query request.
func AppendWindowReq(dst []byte, win [4]float64, tech store.Technique) []byte {
	dst = append(dst, KindWindow, byte(tech))
	for _, v := range win {
		dst = appendF64(dst, v)
	}
	return dst
}

// DecodeWindowReq decodes a window query request, validating the technique.
func DecodeWindowReq(p []byte) (win [4]float64, tech store.Technique, err error) {
	r := &reader{p: p}
	r.checkKind(KindWindow, "window")
	t := r.u8("technique")
	for i := range win {
		win[i] = r.f64("window coordinate")
	}
	if err = r.done("window"); err != nil {
		return win, 0, err
	}
	tech = store.Technique(t)
	if tech < store.TechComplete || tech > store.TechPageByPage {
		return win, 0, fmt.Errorf("binproto: unknown technique %d", t)
	}
	return win, tech, nil
}

// AppendPointReq encodes a point query request.
func AppendPointReq(dst []byte, pt [2]float64) []byte {
	dst = append(dst, KindPoint)
	dst = appendF64(dst, pt[0])
	return appendF64(dst, pt[1])
}

// DecodePointReq decodes a point query request.
func DecodePointReq(p []byte) (pt [2]float64, err error) {
	r := &reader{p: p}
	r.checkKind(KindPoint, "point")
	pt[0] = r.f64("point x")
	pt[1] = r.f64("point y")
	return pt, r.done("point")
}

// AppendKNNReq encodes a k-nearest-neighbor request.
func AppendKNNReq(dst []byte, pt [2]float64, k int) []byte {
	dst = append(dst, KindKNN)
	dst = appendF64(dst, pt[0])
	dst = appendF64(dst, pt[1])
	return appendU32(dst, uint32(k))
}

// DecodeKNNReq decodes a k-nearest-neighbor request.
func DecodeKNNReq(p []byte) (pt [2]float64, k int, err error) {
	r := &reader{p: p}
	r.checkKind(KindKNN, "knn")
	pt[0] = r.f64("point x")
	pt[1] = r.f64("point y")
	kk := r.u32("k")
	if err = r.done("knn"); err != nil {
		return pt, 0, err
	}
	if kk == 0 || kk > math.MaxInt32 {
		return pt, 0, fmt.Errorf("binproto: implausible k %d", kk)
	}
	return pt, int(kk), nil
}

// AppendMutateReq encodes an insert (KindInsert) or update (KindUpdate)
// request: the optional spatial key followed by the object's storage
// serialization, reused verbatim as its wire form.
func AppendMutateReq(dst []byte, kind byte, o *object.Object, key *[4]float64) []byte {
	dst = append(dst, kind)
	if key != nil {
		dst = append(dst, 1)
		for _, v := range key {
			dst = appendF64(dst, v)
		}
	} else {
		dst = append(dst, 0)
	}
	return append(dst, object.Marshal(o)...)
}

// DecodeMutateReq decodes an insert or update request. The kind byte selects
// which; the decoded object has been through object.Unmarshal's validation,
// so a malformed body is an error, never a panic.
func DecodeMutateReq(p []byte, kind byte) (o *object.Object, key *[4]float64, err error) {
	name := "insert"
	if kind == KindUpdate {
		name = "update"
	}
	r := &reader{p: p}
	r.checkKind(kind, name)
	switch r.u8("key flag") {
	case 0:
	case 1:
		var k [4]float64
		for i := range k {
			k[i] = r.f64("key coordinate")
		}
		key = &k
	default:
		if r.err == nil {
			r.err = fmt.Errorf("binproto: %s key flag must be 0 or 1", name)
		}
	}
	body := r.rest()
	if r.err != nil {
		return nil, nil, r.err
	}
	o, err = object.Unmarshal(body)
	if err != nil {
		return nil, nil, err
	}
	// Unmarshal tolerates nonzero reserved and padding bytes; the wire format
	// does not — an accepted message always re-encodes to the same bytes.
	if body[9] != 0 || body[10] != 0 || body[11] != 0 {
		return nil, nil, fmt.Errorf("binproto: %s object reserved bytes must be zero", name)
	}
	for _, b := range body[len(body)-o.Pad:] {
		if b != 0 {
			return nil, nil, fmt.Errorf("binproto: %s object padding bytes must be zero", name)
		}
	}
	return o, key, nil
}

// AppendDeleteReq encodes a delete request.
func AppendDeleteReq(dst []byte, id uint64) []byte {
	return appendU64(append(dst, KindDelete), id)
}

// DecodeDeleteReq decodes a delete request.
func DecodeDeleteReq(p []byte) (id uint64, err error) {
	r := &reader{p: p}
	r.checkKind(KindDelete, "delete")
	id = r.u64("object id")
	return id, r.done("delete")
}

// --- responses ---

// AppendQueryResp encodes a window/point answer.
func AppendQueryResp(dst []byte, ids []object.ID, candidates int) []byte {
	dst = append(dst, KindQueryResp)
	dst = appendU32(dst, uint32(candidates))
	dst = appendU32(dst, uint32(len(ids)))
	for _, id := range ids {
		dst = appendU64(dst, uint64(id))
	}
	return dst
}

// DecodeQueryResp decodes a window/point answer, appending the IDs to
// ids[:0] so a caller-kept slice makes the decode allocation-free.
func DecodeQueryResp(p []byte, ids []uint64) (out []uint64, candidates int, err error) {
	r := &reader{p: p}
	r.checkKind(KindQueryResp, "query response")
	cand := r.u32("candidate count")
	n := r.u32("id count")
	if r.err == nil && int(n) > (len(p)-r.off)/8 {
		r.err = fmt.Errorf("binproto: id count %d exceeds remaining payload", n)
	}
	out = ids[:0]
	for i := uint32(0); i < n && r.err == nil; i++ {
		out = append(out, r.u64("object id"))
	}
	if err = r.done("query response"); err != nil {
		return nil, 0, err
	}
	return out, int(cand), nil
}

// AppendKNNResp encodes a k-NN answer.
func AppendKNNResp(dst []byte, ids []object.ID, dists []float64, candidates int) []byte {
	dst = append(dst, KindKNNResp)
	dst = appendU32(dst, uint32(candidates))
	dst = appendU32(dst, uint32(len(ids)))
	for _, id := range ids {
		dst = appendU64(dst, uint64(id))
	}
	for _, d := range dists {
		dst = appendF64(dst, d)
	}
	return dst
}

// DecodeKNNResp decodes a k-NN answer into ids[:0] and dists[:0].
func DecodeKNNResp(p []byte, ids []uint64, dists []float64) (outIDs []uint64, outDists []float64, candidates int, err error) {
	r := &reader{p: p}
	r.checkKind(KindKNNResp, "knn response")
	cand := r.u32("candidate count")
	n := r.u32("id count")
	if r.err == nil && int(n) > (len(p)-r.off)/16 {
		r.err = fmt.Errorf("binproto: id count %d exceeds remaining payload", n)
	}
	outIDs, outDists = ids[:0], dists[:0]
	for i := uint32(0); i < n && r.err == nil; i++ {
		outIDs = append(outIDs, r.u64("object id"))
	}
	for i := uint32(0); i < n && r.err == nil; i++ {
		outDists = append(outDists, r.f64("distance"))
	}
	if err = r.done("knn response"); err != nil {
		return nil, nil, 0, err
	}
	return outIDs, outDists, int(cand), nil
}

// AppendMutateResp encodes an insert/update/delete answer.
func AppendMutateResp(dst []byte, existed bool) []byte {
	dst = append(dst, KindMutateResp)
	if existed {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// DecodeMutateResp decodes an insert/update/delete answer.
func DecodeMutateResp(p []byte) (existed bool, err error) {
	r := &reader{p: p}
	r.checkKind(KindMutateResp, "mutate response")
	switch r.u8("existed flag") {
	case 0:
	case 1:
		existed = true
	default:
		if r.err == nil {
			r.err = fmt.Errorf("binproto: existed flag must be 0 or 1")
		}
	}
	return existed, r.done("mutate response")
}
