package binproto

import (
	"testing"

	"spatialcluster/internal/geom"
	"spatialcluster/internal/object"
	"spatialcluster/internal/obs"
	"spatialcluster/internal/store"
)

// FuzzDecodeRequests drives every request decoder with arbitrary bytes: no
// input may panic, and an accepted input must re-encode to the same bytes
// (the decoders are exact-length, so acceptance implies canonical form).
func FuzzDecodeRequests(f *testing.F) {
	f.Add(AppendWindowReq(nil, [4]float64{0, 0, 1, 1}, store.TechSLM))
	f.Add(AppendPointReq(nil, [2]float64{0.5, 0.5}))
	f.Add(AppendKNNReq(nil, [2]float64{0.5, 0.5}, 10))
	obj := object.New(7, geom.NewPolyline([]geom.Point{{X: 0, Y: 0}, {X: 1, Y: 1}}), 3)
	f.Add(AppendMutateReq(nil, KindInsert, obj, &[4]float64{0, 0, 1, 1}))
	f.Add(AppendMutateReq(nil, KindUpdate, obj, nil))
	f.Add(AppendDeleteReq(nil, 99))
	f.Add(AppendTracedWindowReq(nil, [4]float64{0, 0, 1, 1}, store.TechComplete, 77))
	f.Add(AppendTracedPointReq(nil, [2]float64{0.5, 0.5}, 0))
	f.Add(AppendTracedKNNReq(nil, [2]float64{0.5, 0.5}, 10, 1<<40))
	f.Add([]byte{})
	f.Add([]byte{KindWindow})
	f.Add([]byte{KindTracedWindow})

	f.Fuzz(func(t *testing.T, p []byte) {
		if win, tech, err := DecodeWindowReq(p); err == nil {
			if got := AppendWindowReq(nil, win, tech); string(got) != string(p) {
				t.Fatalf("window re-encode mismatch: %x vs %x", got, p)
			}
		}
		if pt, err := DecodePointReq(p); err == nil {
			if got := AppendPointReq(nil, pt); string(got) != string(p) {
				t.Fatalf("point re-encode mismatch: %x vs %x", got, p)
			}
		}
		if pt, k, err := DecodeKNNReq(p); err == nil {
			if got := AppendKNNReq(nil, pt, k); string(got) != string(p) {
				t.Fatalf("knn re-encode mismatch: %x vs %x", got, p)
			}
		}
		for _, kind := range []byte{KindInsert, KindUpdate} {
			if o, key, err := DecodeMutateReq(p, kind); err == nil {
				if got := AppendMutateReq(nil, kind, o, key); string(got) != string(p) {
					t.Fatalf("mutate re-encode mismatch: %x vs %x", got, p)
				}
			}
		}
		if id, err := DecodeDeleteReq(p); err == nil {
			if got := AppendDeleteReq(nil, id); string(got) != string(p) {
				t.Fatalf("delete re-encode mismatch: %x vs %x", got, p)
			}
		}
		if win, tech, tid, err := DecodeTracedWindowReq(p); err == nil {
			if got := AppendTracedWindowReq(nil, win, tech, tid); string(got) != string(p) {
				t.Fatalf("traced window re-encode mismatch: %x vs %x", got, p)
			}
		}
		if pt, tid, err := DecodeTracedPointReq(p); err == nil {
			if got := AppendTracedPointReq(nil, pt, tid); string(got) != string(p) {
				t.Fatalf("traced point re-encode mismatch: %x vs %x", got, p)
			}
		}
		if pt, k, tid, err := DecodeTracedKNNReq(p); err == nil {
			if got := AppendTracedKNNReq(nil, pt, k, tid); string(got) != string(p) {
				t.Fatalf("traced knn re-encode mismatch: %x vs %x", got, p)
			}
		}
	})
}

// FuzzDecodeResponses drives the response decoders: no panic, and accepted
// inputs round-trip. NaN distances are excluded from the re-encode check
// (NaN != NaN, but the bit pattern still matches — compare bytes only).
func FuzzDecodeResponses(f *testing.F) {
	f.Add(AppendQueryResp(nil, []object.ID{1, 2, 3}, 5))
	f.Add(AppendKNNResp(nil, []object.ID{4}, []float64{0.25}, 2))
	f.Add(AppendMutateResp(nil, true))
	spans := []obs.Span{
		{ID: 1, Stage: "scatter", DurMS: 2, Count: 2},
		{ID: 2, Parent: 1, Stage: "execute", StartMS: 0.5, DurMS: 1,
			IO: &obs.IO{BufferHits: 3, ModelMS: 0.25}},
	}
	f.Add(AppendTracedQueryResp(nil, []object.ID{1, 2}, 4, 99, 3.5, spans))
	f.Add(AppendTracedKNNResp(nil, []object.ID{4}, []float64{0.25}, 2, 7, 1.5, spans))
	f.Add(AppendTracedQueryResp(nil, nil, 0, 0, 0, nil))
	f.Add([]byte{KindQueryResp, 0, 0, 0, 0, 255, 255, 255, 255})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, p []byte) {
		if ids, cand, err := DecodeQueryResp(p, nil); err == nil {
			oids := make([]object.ID, len(ids))
			for i, id := range ids {
				oids[i] = object.ID(id)
			}
			if got := AppendQueryResp(nil, oids, cand); string(got) != string(p) {
				t.Fatalf("query resp re-encode mismatch: %x vs %x", got, p)
			}
		}
		if ids, dists, cand, err := DecodeKNNResp(p, nil, nil); err == nil {
			oids := make([]object.ID, len(ids))
			for i, id := range ids {
				oids[i] = object.ID(id)
			}
			if got := AppendKNNResp(nil, oids, dists, cand); string(got) != string(p) {
				t.Fatalf("knn resp re-encode mismatch: %x vs %x", got, p)
			}
		}
		if existed, err := DecodeMutateResp(p); err == nil {
			if got := AppendMutateResp(nil, existed); string(got) != string(p) {
				t.Fatalf("mutate resp re-encode mismatch: %x vs %x", got, p)
			}
		}
		if ids, cand, tid, total, spans, err := DecodeTracedQueryResp(p, nil); err == nil {
			oids := make([]object.ID, len(ids))
			for i, id := range ids {
				oids[i] = object.ID(id)
			}
			if got := AppendTracedQueryResp(nil, oids, cand, tid, total, spans); string(got) != string(p) {
				t.Fatalf("traced query resp re-encode mismatch: %x vs %x", got, p)
			}
		}
		if ids, dists, cand, tid, total, spans, err := DecodeTracedKNNResp(p, nil, nil); err == nil {
			oids := make([]object.ID, len(ids))
			for i, id := range ids {
				oids[i] = object.ID(id)
			}
			if got := AppendTracedKNNResp(nil, oids, dists, cand, tid, total, spans); string(got) != string(p) {
				t.Fatalf("traced knn resp re-encode mismatch: %x vs %x", got, p)
			}
		}
	})
}
