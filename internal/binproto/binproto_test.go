package binproto

import (
	"math"
	"reflect"
	"testing"

	"spatialcluster/internal/geom"
	"spatialcluster/internal/object"
	"spatialcluster/internal/store"
)

func TestWindowRoundTrip(t *testing.T) {
	win := [4]float64{0.1, 0.2, 0.3, 0.4}
	for tech := store.TechComplete; tech <= store.TechPageByPage; tech++ {
		p := AppendWindowReq(nil, win, tech)
		gotWin, gotTech, err := DecodeWindowReq(p)
		if err != nil {
			t.Fatalf("tech %v: %v", tech, err)
		}
		if gotWin != win || gotTech != tech {
			t.Fatalf("round trip: got %v/%v, want %v/%v", gotWin, gotTech, win, tech)
		}
	}
}

func TestWindowRejects(t *testing.T) {
	win := [4]float64{0, 0, 1, 1}
	if _, _, err := DecodeWindowReq(AppendWindowReq(nil, win, store.Technique(9))); err == nil {
		t.Fatal("unknown technique accepted")
	}
	p := AppendWindowReq(nil, win, store.TechSLM)
	if _, _, err := DecodeWindowReq(p[:len(p)-1]); err == nil {
		t.Fatal("truncated window accepted")
	}
	if _, _, err := DecodeWindowReq(append(p, 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	if _, _, err := DecodeWindowReq(AppendPointReq(nil, [2]float64{0, 0})); err == nil {
		t.Fatal("wrong message kind accepted")
	}
}

func TestPointKNNRoundTrip(t *testing.T) {
	pt := [2]float64{0.25, -1.5}
	gotPt, err := DecodePointReq(AppendPointReq(nil, pt))
	if err != nil || gotPt != pt {
		t.Fatalf("point: got %v, %v", gotPt, err)
	}
	gotPt, k, err := DecodeKNNReq(AppendKNNReq(nil, pt, 17))
	if err != nil || gotPt != pt || k != 17 {
		t.Fatalf("knn: got %v/%d, %v", gotPt, k, err)
	}
	if _, _, err := DecodeKNNReq(AppendKNNReq(nil, pt, 0)); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestMutateRoundTrip(t *testing.T) {
	o := object.New(42, geom.NewPolyline([]geom.Point{{X: 0.1, Y: 0.2}, {X: 0.3, Y: 0.4}}), 7)
	key := &[4]float64{0, 0, 1, 1}
	for _, kind := range []byte{KindInsert, KindUpdate} {
		for _, k := range []*[4]float64{nil, key} {
			p := AppendMutateReq(nil, kind, o, k)
			gotO, gotK, err := DecodeMutateReq(p, kind)
			if err != nil {
				t.Fatalf("kind 0x%02x: %v", kind, err)
			}
			if gotO.ID != o.ID || gotO.Pad != o.Pad || !reflect.DeepEqual(gotK, k) {
				t.Fatalf("kind 0x%02x: object/key mismatch", kind)
			}
		}
	}
	// Insert payload presented to the update decoder must fail on kind.
	if _, _, err := DecodeMutateReq(AppendMutateReq(nil, KindInsert, o, nil), KindUpdate); err == nil {
		t.Fatal("kind cross-decode accepted")
	}
	// A corrupt object body errors instead of panicking.
	p := AppendMutateReq(nil, KindInsert, o, nil)
	if _, _, err := DecodeMutateReq(p[:len(p)-3], KindInsert); err == nil {
		t.Fatal("truncated object accepted")
	}
}

func TestDeleteRoundTrip(t *testing.T) {
	id, err := DecodeDeleteReq(AppendDeleteReq(nil, math.MaxUint64))
	if err != nil || id != math.MaxUint64 {
		t.Fatalf("got %d, %v", id, err)
	}
}

func TestQueryRespRoundTrip(t *testing.T) {
	ids := []object.ID{3, 1, math.MaxUint64}
	p := AppendQueryResp(nil, ids, 9)
	scratch := make([]uint64, 0, 8)
	got, cand, err := DecodeQueryResp(p, scratch)
	if err != nil || cand != 9 {
		t.Fatalf("cand %d, %v", cand, err)
	}
	want := []uint64{3, 1, math.MaxUint64}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ids %v, want %v", got, want)
	}
	if &got[0] != &scratch[:1][0] {
		t.Fatal("decode did not reuse the caller's slice")
	}
	// An id count promising more than the payload holds must not allocate.
	if _, _, err := DecodeQueryResp(AppendQueryResp(nil, nil, 0)[:8], nil); err == nil {
		t.Fatal("truncated count accepted")
	}
}

func TestKNNRespRoundTrip(t *testing.T) {
	ids := []object.ID{5, 6}
	dists := []float64{0.5, 1.25}
	p := AppendKNNResp(nil, ids, dists, 4)
	gotIDs, gotDists, cand, err := DecodeKNNResp(p, nil, nil)
	if err != nil || cand != 4 {
		t.Fatalf("cand %d, %v", cand, err)
	}
	if !reflect.DeepEqual(gotIDs, []uint64{5, 6}) || !reflect.DeepEqual(gotDists, dists) {
		t.Fatalf("got %v/%v", gotIDs, gotDists)
	}
}

func TestMutateRespRoundTrip(t *testing.T) {
	for _, existed := range []bool{false, true} {
		got, err := DecodeMutateResp(AppendMutateResp(nil, existed))
		if err != nil || got != existed {
			t.Fatalf("existed %v: got %v, %v", existed, got, err)
		}
	}
	if _, err := DecodeMutateResp([]byte{KindMutateResp, 2}); err == nil {
		t.Fatal("existed flag 2 accepted")
	}
}

func TestPooledBuf(t *testing.T) {
	b := GetBuf()
	*b = AppendDeleteReq(*b, 1)
	if len(*b) != 9 {
		t.Fatalf("len %d", len(*b))
	}
	PutBuf(b)
	b2 := GetBuf()
	if len(*b2) != 0 {
		t.Fatal("pooled buffer not reset")
	}
	PutBuf(b2)
}
