package object

import (
	"encoding/binary"
	"fmt"
	"math"

	"spatialcluster/internal/geom"
)

// ID identifies a spatial object.
type ID uint64

// Geometry type tags in the serialization.
const (
	typePolyline byte = 1
	typePolygon  byte = 2
)

// HeaderSize is the fixed size of the serialization header:
// ID (8) + type (1) + reserved (3) + vertex count (4) + pad length (4).
const HeaderSize = 8 + 1 + 3 + 4 + 4

// VertexSize is the serialized size of one vertex (two float64).
const VertexSize = 16

// Object is a spatial object with exact geometry.
type Object struct {
	ID   ID
	Geom geom.Geometry
	Pad  int // extra payload bytes appended to the serialization
}

// New creates an object; pad must be non-negative.
func New(id ID, g geom.Geometry, pad int) *Object {
	if g == nil {
		panic("object: nil geometry")
	}
	if pad < 0 {
		panic("object: negative padding")
	}
	return &Object{ID: id, Geom: g, Pad: pad}
}

// Bounds returns the MBR of the object (its spatial key).
func (o *Object) Bounds() geom.Rect { return o.Geom.Bounds() }

// Size returns the serialized size in bytes.
func (o *Object) Size() int {
	return HeaderSize + VertexSize*o.Geom.NumVertices() + o.Pad
}

// SizeFor returns the serialized size of an object with n vertices and the
// given padding, without constructing it.
func SizeFor(nVertices, pad int) int {
	return HeaderSize + VertexSize*nVertices + pad
}

// Marshal serializes the object.
func Marshal(o *Object) []byte {
	var typ byte
	var verts []geom.Point
	switch g := o.Geom.(type) {
	case *geom.Polyline:
		typ, verts = typePolyline, g.Vertices
	case *geom.Polygon:
		typ, verts = typePolygon, g.Vertices
	default:
		panic(fmt.Sprintf("object: unsupported geometry %T", o.Geom))
	}
	buf := make([]byte, o.Size())
	binary.LittleEndian.PutUint64(buf[0:], uint64(o.ID))
	buf[8] = typ
	binary.LittleEndian.PutUint32(buf[12:], uint32(len(verts)))
	binary.LittleEndian.PutUint32(buf[16:], uint32(o.Pad))
	off := HeaderSize
	for _, v := range verts {
		binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v.X))
		binary.LittleEndian.PutUint64(buf[off+8:], math.Float64bits(v.Y))
		off += VertexSize
	}
	return buf
}

// Unmarshal deserializes an object previously produced by Marshal.
func Unmarshal(buf []byte) (*Object, error) {
	if len(buf) < HeaderSize {
		return nil, fmt.Errorf("object: buffer of %d bytes shorter than header", len(buf))
	}
	id := ID(binary.LittleEndian.Uint64(buf[0:]))
	typ := buf[8]
	n := int(binary.LittleEndian.Uint32(buf[12:]))
	pad := int(binary.LittleEndian.Uint32(buf[16:]))
	want := HeaderSize + VertexSize*n + pad
	if len(buf) != want {
		return nil, fmt.Errorf("object %d: buffer is %d bytes, serialization says %d",
			id, len(buf), want)
	}
	verts := make([]geom.Point, n)
	off := HeaderSize
	for i := range verts {
		verts[i].X = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
		verts[i].Y = math.Float64frombits(binary.LittleEndian.Uint64(buf[off+8:]))
		off += VertexSize
	}
	var g geom.Geometry
	switch typ {
	case typePolyline:
		if n < 2 {
			return nil, fmt.Errorf("object %d: polyline with %d vertices", id, n)
		}
		g = geom.NewPolyline(verts)
	case typePolygon:
		if n < 3 {
			return nil, fmt.Errorf("object %d: polygon with %d vertices", id, n)
		}
		g = geom.NewPolygon(verts)
	default:
		return nil, fmt.Errorf("object %d: unknown geometry type %d", id, typ)
	}
	return &Object{ID: id, Geom: g, Pad: pad}, nil
}
