// Package object defines the spatial objects stored by the organization
// models (internal/store): an identifier, an exact geometry (polyline or
// polygon from internal/geom), and a binary serialization whose length
// determines how many disk pages the object occupies. Objects may carry
// padding bytes so that workload generators (internal/datagen) can control
// the exact serialized size distribution — the paper's test series A, B and
// C differ only in average object size (Table 1).
//
// The serialization (Marshal/Unmarshal) is the on-disk format everywhere an
// exact representation is stored: the secondary organization's sequential
// file, the primary organization's data pages and overflow file, and the
// cluster organization's cluster units.
package object
