package object

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"spatialcluster/internal/geom"
)

func TestMarshalRoundTripPolyline(t *testing.T) {
	g := geom.NewPolyline([]geom.Point{geom.Pt(0.1, 0.2), geom.Pt(0.3, 0.4), geom.Pt(0.5, 0.6)})
	o := New(42, g, 100)
	buf := Marshal(o)
	if len(buf) != o.Size() {
		t.Fatalf("Marshal length %d != Size %d", len(buf), o.Size())
	}
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 42 || got.Pad != 100 {
		t.Fatalf("round trip header: %+v", got)
	}
	gl, ok := got.Geom.(*geom.Polyline)
	if !ok || len(gl.Vertices) != 3 || !gl.Vertices[2].Eq(geom.Pt(0.5, 0.6)) {
		t.Fatalf("round trip geometry: %+v", got.Geom)
	}
	if got.Bounds() != o.Bounds() {
		t.Fatal("bounds changed in round trip")
	}
}

func TestMarshalRoundTripPolygon(t *testing.T) {
	g := geom.NewPolygon([]geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 1)})
	o := New(7, g, 0)
	got, err := Unmarshal(Marshal(o))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got.Geom.(*geom.Polygon); !ok {
		t.Fatalf("expected polygon, got %T", got.Geom)
	}
}

func TestSizeFor(t *testing.T) {
	g := geom.NewPolyline([]geom.Point{geom.Pt(0, 0), geom.Pt(1, 1)})
	o := New(1, g, 33)
	if o.Size() != SizeFor(2, 33) {
		t.Fatalf("Size=%d SizeFor=%d", o.Size(), SizeFor(2, 33))
	}
	if SizeFor(0, 0) != HeaderSize {
		t.Fatal("SizeFor(0,0) must be the header size")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Fatal("short buffer must error")
	}
	o := New(1, geom.NewPolyline([]geom.Point{geom.Pt(0, 0), geom.Pt(1, 1)}), 5)
	buf := Marshal(o)
	if _, err := Unmarshal(buf[:len(buf)-1]); err == nil {
		t.Fatal("truncated buffer must error")
	}
	bad := append([]byte(nil), buf...)
	bad[8] = 99 // unknown type
	if _, err := Unmarshal(bad); err == nil {
		t.Fatal("unknown geometry type must error")
	}
}

func TestNewPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"nil geometry": func() { New(1, nil, 0) },
		"negative pad": func() {
			New(1, geom.NewPolyline([]geom.Point{geom.Pt(0, 0), geom.Pt(1, 1)}), -1)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

// Property: Marshal/Unmarshal round-trips arbitrary polylines bit-exactly.
func TestQuickRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	f := func(idRaw uint64, nRaw, padRaw uint8) bool {
		n := 2 + int(nRaw)%50
		pad := int(padRaw)
		verts := make([]geom.Point, n)
		for i := range verts {
			verts[i] = geom.Pt(rng.Float64(), rng.Float64())
		}
		o := New(ID(idRaw), geom.NewPolyline(verts), pad)
		buf := Marshal(o)
		got, err := Unmarshal(buf)
		if err != nil {
			return false
		}
		if got.ID != o.ID || got.Pad != o.Pad {
			return false
		}
		return bytes.Equal(Marshal(got), buf)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
