package loadgen

import (
	"errors"
	"testing"
)

func TestServerStatsDelta(t *testing.T) {
	before := ServerStats{Batches: 10, BatchedJobs: 40, Rejected: 1,
		BufferHits: 100, BufferMisses: 100, ModelIOSec: 1.5}
	after := ServerStats{Batches: 16, BatchedJobs: 70, Rejected: 4,
		BufferHits: 190, BufferMisses: 110, ModelIOSec: 2.0}
	d := after.Sub(before)
	if d.Batches != 6 || d.BatchedJobs != 30 || d.Rejected != 3 {
		t.Fatalf("delta %+v", d)
	}
	if d.MeanBatch != 5 {
		t.Fatalf("mean batch %g, want 5", d.MeanBatch)
	}
	if d.HitRatio != 0.9 {
		t.Fatalf("hit ratio %g, want 0.9 (90 hits, 10 misses over the run)", d.HitRatio)
	}
	if d.ModelIOSec != 0.5 {
		t.Fatalf("model io %g, want 0.5", d.ModelIOSec)
	}
}

func TestMultiScraper(t *testing.T) {
	a := func() (ServerStats, error) {
		return ServerStats{Batches: 3, BatchedJobs: 9, BufferHits: 10, ModelIOSec: 0.5}, nil
	}
	b := func() (ServerStats, error) {
		return ServerStats{Batches: 2, BatchedJobs: 4, BufferMisses: 5, Rejected: 1, ModelIOSec: 0.25}, nil
	}
	st, err := MultiScraper(a, b)()
	if err != nil {
		t.Fatal(err)
	}
	want := ServerStats{Batches: 5, BatchedJobs: 13, Rejected: 1,
		BufferHits: 10, BufferMisses: 5, ModelIOSec: 0.75}
	if st != want {
		t.Fatalf("summed scrape %+v, want %+v", st, want)
	}

	// One endpoint down fails the whole scrape — a partial sum would make
	// the bracketing delta lie.
	down := func() (ServerStats, error) { return ServerStats{}, errors.New("down") }
	if _, err := MultiScraper(a, down)(); err == nil {
		t.Fatal("scrape with a down endpoint did not fail")
	}
	// ... and WithServerStats then omits the delta rather than failing.
	res := WithServerStats(MultiScraper(a, down), func() Result { return Result{Requests: 2} })
	if res.Requests != 2 || res.Server != nil {
		t.Fatalf("down endpoint altered the run result: %+v", res)
	}
}

func TestWithServerStats(t *testing.T) {
	calls := 0
	scrape := func() (ServerStats, error) {
		calls++
		return ServerStats{Batches: int64(calls) * 10}, nil
	}
	res := WithServerStats(scrape, func() Result { return Result{Requests: 7} })
	if res.Requests != 7 {
		t.Fatalf("run result lost: %+v", res)
	}
	if res.Server == nil || res.Server.Batches != 10 {
		t.Fatalf("server delta %+v, want batches 10", res.Server)
	}

	// A failing scrape must not fail the run — just omit the delta.
	failing := func() (ServerStats, error) { return ServerStats{}, errors.New("down") }
	res = WithServerStats(failing, func() Result { return Result{Requests: 3} })
	if res.Requests != 3 || res.Server != nil {
		t.Fatalf("failing scrape altered the result: %+v", res)
	}
}
