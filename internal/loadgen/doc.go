// Package loadgen generates deterministic query load against a serving
// layer and measures what comes back: throughput, errors, and latency
// quantiles (p50/p95/p99).
//
// A load run has three independent parts:
//
//   - a request stream — a seeded, deterministic sequence of window, point
//     and k-NN queries drawn from a datagen dataset (NewStream), in the
//     spirit of datagen.MixedWorkload: equal specs yield identical streams,
//     so the answers of a run are reproducible even though its timing is
//     not;
//   - an arrival process — closed-loop (ClosedLoop: C clients, each issuing
//     its next request as soon as the previous one answers; offered load
//     adapts to the server) or open-loop (OpenLoop: seeded Poisson arrivals
//     at a fixed rate; offered load does not adapt, so queueing delay shows
//     up in the latencies);
//   - a transport — any Do func. exp.ServerBench wires in the HTTP client
//     of internal/server; unit tests wire in an in-process stub.
//
// The split matters: the stream decides the deterministic (modelled)
// columns of BENCH_server.json, the arrival process and transport decide
// only the wall_* columns.
package loadgen
