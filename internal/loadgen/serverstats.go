package loadgen

import "fmt"

// Server-side observation of a load run: the drivers can scrape the target's
// /metrics before and after a run and report the counter deltas next to the
// client-side latency histogram, so "the client saw p99 = 40 ms" comes with
// "the server ran 312 batches at 0.97 hit ratio" in the same result. The
// types here are deliberately backend-agnostic (plain numbers, no server
// import): the caller adapts its metrics client into a Scraper.

// ServerStats is one scrape of the target's counters — the subset a load run
// attributes its behaviour to.
type ServerStats struct {
	Batches      int64 // dispatcher micro-batches executed
	BatchedJobs  int64 // jobs carried by those batches
	Rejected     int64 // 429 admission rejections
	BufferHits   int64
	BufferMisses int64
	ModelIOSec   float64 // modelled I/O seconds charged
}

// Scraper fetches the target's current ServerStats.
type Scraper func() (ServerStats, error)

// ServerDelta is the server-side change over one load run.
type ServerDelta struct {
	Batches     int64
	BatchedJobs int64
	MeanBatch   float64 // jobs per batch over the run
	Rejected    int64
	HitRatio    float64 // buffer hit ratio over the run (not since start)
	ModelIOSec  float64
}

// Sub computes the delta between two scrapes.
func (after ServerStats) Sub(before ServerStats) ServerDelta {
	d := ServerDelta{
		Batches:     after.Batches - before.Batches,
		BatchedJobs: after.BatchedJobs - before.BatchedJobs,
		Rejected:    after.Rejected - before.Rejected,
		ModelIOSec:  after.ModelIOSec - before.ModelIOSec,
	}
	if d.Batches > 0 {
		d.MeanBatch = float64(d.BatchedJobs) / float64(d.Batches)
	}
	hits := after.BufferHits - before.BufferHits
	misses := after.BufferMisses - before.BufferMisses
	if hits+misses > 0 {
		d.HitRatio = float64(hits) / float64(hits+misses)
	}
	return d
}

// String renders the delta for human benchmark output.
func (d ServerDelta) String() string {
	return fmt.Sprintf("batches=%d mean_batch=%.1f hit_ratio=%.3f rejected=%d model_io=%.3fs",
		d.Batches, d.MeanBatch, d.HitRatio, d.Rejected, d.ModelIOSec)
}

// Add accumulates another scrape into s — the cluster-wide total is the sum
// of the per-shard counters.
func (s ServerStats) Add(o ServerStats) ServerStats {
	s.Batches += o.Batches
	s.BatchedJobs += o.BatchedJobs
	s.Rejected += o.Rejected
	s.BufferHits += o.BufferHits
	s.BufferMisses += o.BufferMisses
	s.ModelIOSec += o.ModelIOSec
	return s
}

// MultiScraper sums scrapes across several endpoints — a sharded cluster
// observed as one target. The scrapes run sequentially in argument order; a
// failure of any endpoint fails the whole scrape (a partial sum would make
// the delta lie).
func MultiScraper(scrapers ...Scraper) Scraper {
	return func() (ServerStats, error) {
		var sum ServerStats
		for i, scrape := range scrapers {
			st, err := scrape()
			if err != nil {
				return ServerStats{}, fmt.Errorf("scraping endpoint %d of %d: %w", i, len(scrapers), err)
			}
			sum = sum.Add(st)
		}
		return sum, nil
	}
}

// WithServerStats brackets a load run with two scrapes and attaches the delta
// to the run's Result. A scrape failure leaves Result.Server nil rather than
// failing the run — observation must not break the measurement.
func WithServerStats(scrape Scraper, run func() Result) Result {
	before, errB := scrape()
	res := run()
	if errB != nil {
		return res
	}
	after, errA := scrape()
	if errA != nil {
		return res
	}
	d := after.Sub(before)
	res.Server = &d
	return res
}
