package loadgen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"spatialcluster/internal/datagen"
	"spatialcluster/internal/geom"
	"spatialcluster/internal/store"
)

// Kind classifies one generated request.
type Kind uint8

// The request kinds of a stream.
const (
	KindWindow Kind = iota
	KindPoint
	KindKNN
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindWindow:
		return "window"
	case KindPoint:
		return "point"
	case KindKNN:
		return "knn"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Request is one query of a load stream.
type Request struct {
	Kind   Kind
	Window geom.Rect       // KindWindow
	Tech   store.Technique // KindWindow
	Point  geom.Point      // KindPoint, KindKNN
	K      int             // KindKNN
}

// Do executes one request against the system under test and returns the
// number of answers. It must be safe for concurrent use.
type Do func(Request) (answers int, err error)

// StreamSpec describes a deterministic query stream over a dataset.
type StreamSpec struct {
	// N is the stream length.
	N int
	// WindowFrac/PointFrac/KNNFrac weight the request kinds; they are
	// normalized by their sum. All zero selects 0.5/0.25/0.25.
	WindowFrac, PointFrac, KNNFrac float64
	// WindowArea is the window area as a fraction of the data space
	// (default 0.001, the middle size of Figure 8).
	WindowArea float64
	// Tech is the read technique of the window queries.
	Tech store.Technique
	// K is the neighbor count of the k-NN queries (default 10).
	K int
	// Seed drives the whole stream.
	Seed int64
}

func (s StreamSpec) normalized() StreamSpec {
	if s.WindowFrac == 0 && s.PointFrac == 0 && s.KNNFrac == 0 {
		s.WindowFrac, s.PointFrac, s.KNNFrac = 0.5, 0.25, 0.25
	}
	if s.WindowArea <= 0 {
		s.WindowArea = 0.001
	}
	if s.K <= 0 {
		s.K = 10
	}
	return s
}

// NewStream generates a deterministic request stream over ds: query centers
// are drawn data-density-weighted (the convention of the paper's query
// workloads), kinds by the spec's weights. Equal (ds, spec) yield identical
// streams.
func NewStream(ds *datagen.Dataset, spec StreamSpec) []Request {
	spec = spec.normalized()
	sum := spec.WindowFrac + spec.PointFrac + spec.KNNFrac
	if sum <= 0 {
		panic(fmt.Sprintf("loadgen: stream with fraction sum %g", sum))
	}
	pWindow := spec.WindowFrac / sum
	pPoint := pWindow + spec.PointFrac/sum

	// One windows/points pool each, consumed in order: the per-kind pools
	// keep the stream identical to the established workload generators.
	n := spec.N
	ws := ds.Windows(spec.WindowArea, n, spec.Seed+1)
	pts := ds.Points(n, spec.Seed+2)

	rng := rand.New(rand.NewSource(spec.Seed ^ 0x6c6f6164)) // "load"
	out := make([]Request, 0, n)
	wi, pi := 0, 0
	for len(out) < n {
		r := rng.Float64()
		switch {
		case r < pWindow:
			out = append(out, Request{Kind: KindWindow, Window: ws[wi%len(ws)], Tech: spec.Tech})
			wi++
		case r < pPoint:
			out = append(out, Request{Kind: KindPoint, Point: pts[pi%len(pts)]})
			pi++
		default:
			out = append(out, Request{Kind: KindKNN, Point: pts[pi%len(pts)], K: spec.K})
			pi++
		}
	}
	return out
}

// Result reports one load run. Requests, Errors and Answers are functions
// of the stream and the served store (deterministic); Wall, QPS and the
// latency quantiles are wall-clock measurements.
type Result struct {
	Requests int
	Errors   int
	Answers  int
	Wall     time.Duration
	QPS      float64
	Lat      Histogram
	// Server is the server-side counter delta over the run when the driver
	// was bracketed with WithServerStats; nil otherwise.
	Server *ServerDelta
}

// ClosedLoop drives the stream with a fixed population of clients: client i
// executes requests i, i+clients, i+2·clients, … back to back, so the
// offered load adapts to the server's speed (the classic closed-loop model).
// The request-to-client assignment is deterministic; only timing varies.
func ClosedLoop(do Do, reqs []Request, clients int) Result {
	if clients < 1 {
		clients = 1
	}
	if clients > len(reqs) {
		clients = len(reqs)
	}
	res := Result{Requests: len(reqs)}
	if len(reqs) == 0 {
		return res
	}
	type tally struct {
		answers, errors int
		lat             []time.Duration
	}
	tallies := make([]tally, clients)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			t := &tallies[c]
			for i := c; i < len(reqs); i += clients {
				t0 := time.Now()
				a, err := do(reqs[i])
				t.lat = append(t.lat, time.Since(t0))
				if err != nil {
					t.errors++
					continue
				}
				t.answers += a
			}
		}(c)
	}
	wg.Wait()
	res.Wall = time.Since(start)
	for i := range tallies {
		res.Answers += tallies[i].answers
		res.Errors += tallies[i].errors
		res.Lat.samples = append(res.Lat.samples, tallies[i].lat...)
	}
	res.Lat.seal()
	if res.Wall > 0 {
		res.QPS = float64(len(reqs)) / res.Wall.Seconds()
	}
	return res
}

// OpenLoop drives the stream with seeded Poisson arrivals at the given mean
// rate (requests per second): request i fires at its arrival time in its own
// goroutine whether or not earlier requests have answered, so a server
// slower than the offered rate accumulates queueing delay — visible in the
// latency quantiles, which a closed loop structurally cannot show. The
// arrival schedule is deterministic in (len(reqs), rate, seed).
func OpenLoop(do Do, reqs []Request, rate float64, seed int64) Result {
	res := Result{Requests: len(reqs)}
	if len(reqs) == 0 {
		return res
	}
	if rate <= 0 {
		panic(fmt.Sprintf("loadgen: open loop needs a positive rate, got %g", rate))
	}
	// Pre-draw the whole arrival schedule so the goroutine launches do not
	// perturb the randomness.
	rng := rand.New(rand.NewSource(seed ^ 0x6f70656e)) // "open"
	arrivals := make([]time.Duration, len(reqs))
	var at float64 // seconds
	for i := range arrivals {
		at += rng.ExpFloat64() / rate
		arrivals[i] = time.Duration(at * float64(time.Second))
	}

	type sample struct {
		answers, errs int
		lat           time.Duration
	}
	samples := make([]sample, len(reqs))
	start := time.Now()
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if d := arrivals[i] - time.Since(start); d > 0 {
				time.Sleep(d)
			}
			t0 := time.Now()
			a, err := do(reqs[i])
			samples[i].lat = time.Since(t0)
			if err != nil {
				samples[i].errs = 1
				return
			}
			samples[i].answers = a
		}(i)
	}
	wg.Wait()
	res.Wall = time.Since(start)
	res.Lat.samples = make([]time.Duration, len(reqs))
	for i := range samples {
		res.Answers += samples[i].answers
		res.Errors += samples[i].errs
		res.Lat.samples[i] = samples[i].lat
	}
	res.Lat.seal()
	if res.Wall > 0 {
		res.QPS = float64(len(reqs)) / res.Wall.Seconds()
	}
	return res
}

// Histogram holds the latency samples of a run and answers exact quantiles
// (runs are at most a few thousand requests; keeping the samples beats
// bucket-resolution error).
type Histogram struct {
	samples []time.Duration // sorted after seal
	sum     time.Duration
}

func (h *Histogram) seal() {
	sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
	h.sum = 0
	for _, s := range h.samples {
		h.sum += s
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() int { return len(h.samples) }

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by nearest-rank.
func (h *Histogram) Quantile(q float64) time.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(h.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.samples) {
		idx = len(h.samples) - 1
	}
	return h.samples[idx]
}

// P50, P95 and P99 are the standard tail-latency quantiles.
func (h *Histogram) P50() time.Duration { return h.Quantile(0.50) }

// P95 is the 95th percentile.
func (h *Histogram) P95() time.Duration { return h.Quantile(0.95) }

// P99 is the 99th percentile.
func (h *Histogram) P99() time.Duration { return h.Quantile(0.99) }

// Mean returns the mean latency.
func (h *Histogram) Mean() time.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	return h.sum / time.Duration(len(h.samples))
}

// Max returns the largest sample.
func (h *Histogram) Max() time.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	return h.samples[len(h.samples)-1]
}

// Buckets renders a coarse log-2 histogram (for human output; the benchmark
// emits quantiles).
func (h *Histogram) Buckets() string {
	if len(h.samples) == 0 {
		return "(no samples)"
	}
	counts := map[int]int{}
	lo, hi := 64, 0
	for _, s := range h.samples {
		b := 0
		for d := s; d > time.Microsecond; d >>= 1 {
			b++
		}
		counts[b]++
		if b < lo {
			lo = b
		}
		if b > hi {
			hi = b
		}
	}
	out := ""
	for b := lo; b <= hi; b++ {
		if counts[b] == 0 {
			continue
		}
		out += fmt.Sprintf("  ≤%-10v %d\n", time.Microsecond<<b, counts[b])
	}
	return out
}
