package loadgen

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spatialcluster/internal/datagen"
)

func testDataset() *datagen.Dataset {
	return datagen.Generate(datagen.Spec{
		Map: datagen.Map1, Series: datagen.SeriesA, Scale: 2048, Seed: 2,
	})
}

// TestStreamDeterministic: equal specs yield identical streams; the kind
// mix follows the weights.
func TestStreamDeterministic(t *testing.T) {
	ds := testDataset()
	spec := StreamSpec{N: 500, Seed: 7}
	a, b := NewStream(ds, spec), NewStream(ds, spec)
	if len(a) != 500 || len(b) != 500 {
		t.Fatalf("stream lengths %d, %d", len(a), len(b))
	}
	counts := map[Kind]int{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams differ at %d", i)
		}
		counts[a[i].Kind]++
	}
	// Default mix 0.5/0.25/0.25: windows must dominate, nothing absent.
	if counts[KindWindow] <= counts[KindPoint] || counts[KindWindow] <= counts[KindKNN] {
		t.Fatalf("unexpected kind mix %v", counts)
	}
	for k, n := range counts {
		if n == 0 {
			t.Fatalf("kind %v absent from default mix", k)
		}
	}
	for _, r := range a {
		if r.Kind == KindKNN && r.K != 10 {
			t.Fatalf("default k = %d, want 10", r.K)
		}
	}

	if c := NewStream(ds, StreamSpec{N: 500, Seed: 8}); c[0] == a[0] && c[1] == a[1] && c[2] == a[2] {
		t.Fatal("different seeds produced the same stream head")
	}

	only := NewStream(ds, StreamSpec{N: 50, WindowFrac: 1, Seed: 7})
	for _, r := range only {
		if r.Kind != KindWindow {
			t.Fatalf("window-only stream contains %v", r.Kind)
		}
	}
}

// TestClosedLoop: every request executes exactly once, answers sum
// deterministically, errors are counted, concurrency is bounded by the
// client count.
func TestClosedLoop(t *testing.T) {
	ds := testDataset()
	reqs := NewStream(ds, StreamSpec{N: 200, Seed: 3})

	var mu sync.Mutex
	seen := make(map[int]int)
	var cur, peak atomic.Int64
	i := atomic.Int64{}
	do := func(r Request) (int, error) {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		defer cur.Add(-1)
		idx := int(i.Add(1)) - 1
		mu.Lock()
		seen[idx]++
		mu.Unlock()
		if idx%50 == 49 {
			return 0, errors.New("synthetic failure")
		}
		return 2, nil
	}
	res := ClosedLoop(do, reqs, 8)
	if res.Requests != 200 || res.Lat.Count() != 200 {
		t.Fatalf("requests %d, samples %d, want 200", res.Requests, res.Lat.Count())
	}
	if res.Errors != 4 {
		t.Fatalf("errors %d, want 4", res.Errors)
	}
	if res.Answers != (200-4)*2 {
		t.Fatalf("answers %d, want %d", res.Answers, (200-4)*2)
	}
	if p := peak.Load(); p > 8 {
		t.Fatalf("observed %d concurrent requests with 8 clients", p)
	}
	if res.QPS <= 0 || res.Wall <= 0 {
		t.Fatalf("no throughput measured: %+v", res)
	}
}

// TestOpenLoop: all requests fire, arrivals follow the seeded schedule, and
// quantiles are ordered.
func TestOpenLoop(t *testing.T) {
	ds := testDataset()
	reqs := NewStream(ds, StreamSpec{N: 100, Seed: 4})
	var n atomic.Int64
	do := func(r Request) (int, error) {
		n.Add(1)
		time.Sleep(100 * time.Microsecond)
		return 1, nil
	}
	res := OpenLoop(do, reqs, 5000, 9)
	if got := int(n.Load()); got != 100 {
		t.Fatalf("executed %d of 100 requests", got)
	}
	if res.Answers != 100 || res.Errors != 0 {
		t.Fatalf("answers %d errors %d", res.Answers, res.Errors)
	}
	if res.Lat.P50() > res.Lat.P95() || res.Lat.P95() > res.Lat.P99() || res.Lat.P99() > res.Lat.Max() {
		t.Fatalf("quantiles out of order: p50=%v p95=%v p99=%v max=%v",
			res.Lat.P50(), res.Lat.P95(), res.Lat.P99(), res.Lat.Max())
	}
	// 100 arrivals at 5000/s ≈ 20 ms of schedule; the run must take at
	// least that long (minus nothing: the last arrival bounds the wall).
	if res.Wall < 5*time.Millisecond {
		t.Fatalf("open loop finished implausibly fast: %v", res.Wall)
	}
}

// TestHistogram pins the nearest-rank quantile arithmetic.
func TestHistogram(t *testing.T) {
	var h Histogram
	for i := 100; i >= 1; i-- { // reversed insert order must not matter
		h.samples = append(h.samples, time.Duration(i)*time.Millisecond)
	}
	h.seal()
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 50 * time.Millisecond},
		{0.95, 95 * time.Millisecond},
		{0.99, 99 * time.Millisecond},
		{1.00, 100 * time.Millisecond},
		{0.00, 1 * time.Millisecond},
	}
	for _, tc := range cases {
		if got := h.Quantile(tc.q); got != tc.want {
			t.Fatalf("Quantile(%g) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if h.Mean() != 50500*time.Microsecond {
		t.Fatalf("mean %v", h.Mean())
	}
	var empty Histogram
	if empty.P50() != 0 || empty.Max() != 0 || empty.Mean() != 0 {
		t.Fatal("empty histogram quantiles not zero")
	}
}
