// Package snapshot reads and writes whole-store snapshot files: a framed
// (magic, length, CRC-32 — see internal/framing) gob encoding of a
// store.Image. The root package's Save/Open wrap this pair into the public
// API; the write-ahead log uses it directly for its checkpoint snapshots, so
// a WAL checkpoint and a /save snapshot are the same file format.
package snapshot

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"spatialcluster/internal/framing"
	"spatialcluster/internal/store"
)

// Magic identifies a spatialcluster snapshot file and its format version.
// Bump the trailing byte on incompatible format changes.
const Magic = "SPCLSNAP\x02"

// HeaderSize is the fixed prefix before the payload: magic + length + CRC-32.
const HeaderSize = len(Magic) + 8 + 4

// Kind names the format in error messages.
const Kind = "spatialcluster snapshot"

// Encode serializes an image to the snapshot payload (the bytes behind the
// framing header). Encoding the same image twice yields identical bytes.
func Encode(img *store.Image) ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(img); err != nil {
		return nil, fmt.Errorf("encoding snapshot: %w", err)
	}
	return payload.Bytes(), nil
}

// Write serializes an image to a framed snapshot file at path and fsyncs it.
func Write(path string, img *store.Image) error {
	payload, err := Encode(img)
	if err != nil {
		return err
	}
	return framing.WriteFile(path, Magic, payload)
}

// Read reads back a snapshot file, verifying magic, length and checksum
// before decoding. A truncated, corrupted or foreign file yields a
// descriptive error naming the failing section.
func Read(path string) (*store.Image, error) {
	payload, err := framing.ReadFile(path, Magic, Kind)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	var img store.Image
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&img); err != nil {
		return nil, fmt.Errorf("%s: decoding snapshot: %w", path, err)
	}
	return &img, nil
}
