package snapshot

import (
	"os"
	"path/filepath"
	"testing"

	"spatialcluster/internal/framing"
)

// FuzzRead drives the snapshot-v2 header parser (magic, length, CRC-32) and
// the gob payload decode behind it with arbitrary file bytes: Read must
// return an image or a descriptive error, never panic, and never trust a
// corrupted length field into a huge allocation (framing checks the length
// against the real file size first).
func FuzzRead(f *testing.F) {
	// A header with a bad checksum, magic-only, a wrong version byte, an
	// empty file, and a correctly framed non-gob payload.
	bad := make([]byte, 0, 64)
	bad = append(bad, Magic...)
	bad = append(bad, 5, 0, 0, 0, 0, 0, 0, 0) // length 5
	bad = append(bad, 0x3b, 0x7f, 0x2c, 0xea) // checksum that will not match
	bad = append(bad, 'h', 'e', 'l', 'l', 'o')
	f.Add(bad)
	f.Add([]byte(Magic))
	f.Add([]byte("SPCLSNAP\x01"))
	f.Add([]byte{})
	tmp := f.TempDir()
	framed := filepath.Join(tmp, "framed")
	if err := framing.WriteFile(framed, Magic, []byte("not a gob image")); err != nil {
		f.Fatal(err)
	}
	if b, err := os.ReadFile(framed); err == nil {
		f.Add(b)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "snap")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		img, err := Read(path)
		if err == nil && img == nil {
			t.Fatal("Read returned nil image and nil error")
		}
	})
}
