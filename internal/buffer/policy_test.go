package buffer

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"spatialcluster/internal/disk"
)

const propPages = 512

func newPolicyBuf(capacity int, p Policy) *Manager {
	d := disk.NewDefault()
	d.Grow(propPages)
	for id := 0; id < propPages; id += 64 {
		data := make([][]byte, 64)
		for j := range data {
			pg := make([]byte, 8)
			pg[0] = byte(id + j)
			data[j] = pg
		}
		d.WriteRun(disk.PageID(id), data)
	}
	return NewWithPolicy(d, capacity, p)
}

// runStream drives m through a deterministic random op stream and checks the
// buffer invariants after every step. It returns a digest of the final state.
func runStream(t *testing.T, m *Manager, seed int64, ops int) string {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pinned := map[disk.PageID]int{}
	page := func() disk.PageID {
		if rng.Intn(2) == 0 {
			return disk.PageID(rng.Intn(32)) // hot set
		}
		return disk.PageID(rng.Intn(propPages))
	}
	for i := 0; i < ops; i++ {
		id := page()
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			m.Get(id)
		case 4, 5:
			m.Put(id, []byte{byte(id), 0xff})
		case 6:
			if m.Pin(id) {
				pinned[id]++
			}
		case 7:
			if pinned[id] > 0 {
				m.Unpin(id)
				if pinned[id]--; pinned[id] == 0 {
					delete(pinned, id)
				}
			}
		case 8:
			if pinned[id] == 0 {
				m.Drop(id)
			}
		case 9:
			if rng.Intn(20) == 0 {
				m.Flush()
			} else {
				m.Touch(id)
			}
		}

		// Invariants: pinned frames stay resident, the ghost lists stay
		// within their bound, probationers are a subset of the frames.
		for id := range pinned {
			if !m.Contains(id) {
				t.Fatalf("op %d: pinned page %d was evicted", i, id)
			}
		}
		if g, cap := m.GhostLen(), m.GhostCapacity(); g > cap {
			t.Fatalf("op %d: ghost list holds %d entries, bound %d", i, g, cap)
		}
		if a1, n := m.ProbationLen(), m.Len(); a1 < 0 || a1 > n {
			t.Fatalf("op %d: probation queue %d of %d frames", i, a1, n)
		}
	}
	for id, n := range pinned {
		for j := 0; j < n; j++ {
			m.Unpin(id)
		}
	}
	st := m.Stats()
	return fmt.Sprintf("len=%d a1=%d ghost=%d hits=%d misses=%d evictions=%d flushed=%d cost=%+v",
		m.Len(), m.ProbationLen(), m.GhostLen(), st.Hits, st.Misses, st.Evictions, st.Flushed,
		m.Disk().Cost())
}

// TestPolicyPropertyStream runs randomized op streams against both policies:
// invariants hold at every step and equal seeds yield identical behavior.
func TestPolicyPropertyStream(t *testing.T) {
	for _, policy := range []Policy{PolicyLRU, Policy2Q} {
		for seed := int64(1); seed <= 6; seed++ {
			t.Run(fmt.Sprintf("%v/seed%d", policy, seed), func(t *testing.T) {
				a := runStream(t, newPolicyBuf(48, policy), seed, 4000)
				b := runStream(t, newPolicyBuf(48, policy), seed, 4000)
				if a != b {
					t.Fatalf("same seed, different behavior:\n%s\n%s", a, b)
				}
			})
		}
	}
}

// TestPolicyAllPinnedOverflow pins more pages than the capacity: inserts must
// overflow rather than fail or evict a pinned frame, for both policies.
func TestPolicyAllPinnedOverflow(t *testing.T) {
	for _, policy := range []Policy{PolicyLRU, Policy2Q} {
		m := newPolicyBuf(8, policy)
		for id := disk.PageID(0); id < 12; id++ {
			m.Get(id)
			if !m.Pin(id) {
				t.Fatalf("%v: page %d not resident right after Get", policy, id)
			}
		}
		if m.Len() < 12 {
			t.Fatalf("%v: %d frames buffered, want overflow to 12", policy, m.Len())
		}
		for id := disk.PageID(0); id < 12; id++ {
			if _, ok := m.Peek(id); !ok {
				t.Fatalf("%v: pinned page %d missing", policy, id)
			}
			m.Unpin(id)
		}
	}
}

// TestPolicyConcurrentInvariants hammers a 2Q buffer from many goroutines
// (run under -race): pinned pages stay resident for the pin's duration and
// the ghost bound holds throughout.
func TestPolicyConcurrentInvariants(t *testing.T) {
	m := newPolicyBuf(32, Policy2Q)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 2000; i++ {
				id := disk.PageID(rng.Intn(propPages))
				switch rng.Intn(4) {
				case 0:
					m.Get(id)
				case 1:
					m.Put(id, []byte{byte(id)})
				case 2:
					m.Get(id)
					if m.Pin(id) {
						if _, ok := m.Peek(id); !ok {
							t.Errorf("worker %d: pinned page %d not resident", w, id)
						}
						m.Unpin(id)
					}
				case 3:
					m.Touch(id)
				}
				if g, cap := m.GhostLen(), m.GhostCapacity(); g > cap {
					t.Errorf("worker %d: ghost list %d over bound %d", w, g, cap)
				}
			}
		}(w)
	}
	wg.Wait()
	m.Flush()
}

// TestScanResistance interleaves a hot working set with long sequential
// scans: 2Q must keep the hot set resident and beat LRU's hit ratio.
func TestScanResistance(t *testing.T) {
	ratio := func(policy Policy) float64 {
		m := newPolicyBuf(64, policy)
		hot := 24
		// Warm the hot set past probation (2Q needs the re-reference).
		for round := 0; round < 3; round++ {
			for id := 0; id < hot; id++ {
				m.Get(disk.PageID(id))
			}
		}
		m.ResetStats()
		next := hot
		for round := 0; round < 40; round++ {
			for id := 0; id < hot; id++ {
				m.Get(disk.PageID(id))
			}
			// A scan of one-touch pages, longer than the buffer.
			for j := 0; j < 96; j++ {
				m.Get(disk.PageID(hot + (next+j)%(propPages-hot)))
			}
			next += 96
		}
		st := m.Stats()
		return float64(st.Hits) / float64(st.Hits+st.Misses)
	}
	lru, twoQ := ratio(PolicyLRU), ratio(Policy2Q)
	t.Logf("hit ratio: lru %.3f, 2q %.3f", lru, twoQ)
	if twoQ <= lru {
		t.Fatalf("2Q hit ratio %.3f not above LRU %.3f on a scan-heavy stream", twoQ, lru)
	}
}
